// Benchmark harness: one target per experiment of the per-experiment index
// in DESIGN.md (E1-E11). Each benchmark executes the experiment, prints its
// table once, reports the headline metric, and fails on any guarantee
// violation — so `go test -bench=. -benchmem` regenerates every evaluable
// artifact of the paper in one run. Use -short for the quick sweeps.
package hybrid_test

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	hybrid "repro"
	"repro/internal/experiments"
)

const benchSeed = 20200615 // the paper's arXiv date

var printOnce sync.Map

func runExperiment(b *testing.B, id string, f func(experiments.Config) experiments.Table) {
	b.Helper()
	cfg := experiments.Config{Seed: benchSeed, Quick: testing.Short()}
	var table experiments.Table
	for i := 0; i < b.N; i++ {
		table = f(cfg)
	}
	if _, done := printOnce.LoadOrStore(id, true); !done {
		fmt.Println(table.String())
	}
	for _, fail := range table.Failures {
		b.Errorf("%s: %s", id, fail)
	}
	if rounds := lastRounds(table); rounds > 0 {
		b.ReportMetric(rounds, "rounds")
	}
}

// lastRounds pulls the last row's first integer-looking "rounds" column for
// ReportMetric (best effort; the tables are the real output).
func lastRounds(t experiments.Table) float64 {
	if len(t.Rows) == 0 {
		return 0
	}
	for i, h := range t.Header {
		if h == "rounds" || h == "thm1.1 rounds" || h == "HYBRID rounds" || h == "thm1.3 rounds" {
			row := t.Rows[len(t.Rows)-1]
			if i < len(row) {
				if v, err := strconv.ParseFloat(row[i], 64); err == nil {
					return v
				}
			}
		}
	}
	return 0
}

func BenchmarkE1TokenRouting(b *testing.B) {
	runExperiment(b, "E1", experiments.E1TokenRouting)
}

func BenchmarkE2HelperSets(b *testing.B) {
	runExperiment(b, "E2", experiments.E2HelperSets)
}

func BenchmarkE3APSP(b *testing.B) {
	runExperiment(b, "E3", experiments.E3APSP)
}

func BenchmarkE4CliqueSim(b *testing.B) {
	runExperiment(b, "E4", experiments.E4CliqueSim)
}

func BenchmarkE5KSSP(b *testing.B) {
	runExperiment(b, "E5", experiments.E5KSSP)
}

func BenchmarkE6SSSP(b *testing.B) {
	runExperiment(b, "E6", experiments.E6SSSP)
}

func BenchmarkE7Diameter(b *testing.B) {
	runExperiment(b, "E7", experiments.E7Diameter)
}

func BenchmarkE8KSSPLowerBound(b *testing.B) {
	runExperiment(b, "E8", experiments.E8KSSPLowerBound)
}

func BenchmarkE9DiameterLowerBound(b *testing.B) {
	runExperiment(b, "E9", experiments.E9DiameterLowerBound)
}

func BenchmarkE10RecvLoad(b *testing.B) {
	runExperiment(b, "E10", experiments.E10RecvLoad)
}

func BenchmarkE11ModeComparison(b *testing.B) {
	runExperiment(b, "E11", experiments.E11ModeComparison)
}

func BenchmarkA1HelperQBoost(b *testing.B) {
	runExperiment(b, "A1", experiments.A1HelperQBoost)
}

func BenchmarkA2GlobalSendFactor(b *testing.B) {
	runExperiment(b, "A2", experiments.A2GlobalSendFactor)
}

func BenchmarkA3SkeletonHFactor(b *testing.B) {
	runExperiment(b, "A3", experiments.A3SkeletonHFactor)
}

func BenchmarkA4HashIndependence(b *testing.B) {
	runExperiment(b, "A4", experiments.A4HashIndependence)
}

// BenchmarkEngineAPSP compares the three round engines on grid-graph APSP
// (Theorem 1.1) across sizes, on both unweighted grids and weighted grids
// (WithRandomWeights; the Corollary 4.6/4.8 weighted regime's local
// topology). All engines produce byte-identical results (engines_test.go);
// what this measures is pure engine wall-clock — EngineStep runs the
// step-native APSP machine, the others the goroutine form. Sizes above
// 1024 are opt-in via HYBRID_BENCH_XL=1 (pass -timeout 0: the n=16384
// instance runs for a long time; see also cmd/hybridsim for one-off XL
// runs).
func BenchmarkEngineAPSP(b *testing.B) {
	for _, n := range []int{256, 1024, 4096, 16384} {
		side := 1
		for side*side < n {
			side++
		}
		for _, weighted := range []bool{false, true} {
			graphName := "grid"
			if weighted {
				graphName = "wgrid"
			}
			for _, eng := range []hybrid.Engine{hybrid.EngineLegacy, hybrid.EngineSharded, hybrid.EngineStep} {
				b.Run(fmt.Sprintf("graph=%s/n=%d/engine=%s", graphName, n, eng), func(b *testing.B) {
					if n > 1024 && os.Getenv("HYBRID_BENCH_XL") == "" {
						b.Skip("set HYBRID_BENCH_XL=1 (and -timeout 0) for sizes above 1024")
					}
					g := hybrid.GridGraph(side, side)
					if weighted {
						wrng := rand.New(rand.NewSource(benchSeed + int64(n)))
						g = hybrid.WithRandomWeights(g, 8, wrng)
					}
					var rounds int
					for i := 0; i < b.N; i++ {
						res, err := hybrid.New(g, hybrid.WithSeed(benchSeed), hybrid.WithEngine(eng)).APSP()
						if err != nil {
							b.Fatal(err)
						}
						rounds = res.Metrics.Rounds
					}
					b.ReportMetric(float64(rounds), "rounds")
				})
			}
		}
	}
}

// BenchmarkEngineTokenRouting compares the engines on an all-nodes token
// routing instance (Theorem 2.2), a workload with dense per-round
// messaging: the regime the sharded engine's preallocated inboxes and
// per-shard staging are built for. (internal/sim's engine benchmarks
// isolate the raw delivery gap.)
func BenchmarkEngineTokenRouting(b *testing.B) {
	g := hybrid.GridGraph(32, 32)
	n := g.N()
	specs := make([]hybrid.RoutingSpec, n)
	for v := range specs {
		next := (v + 1) % n
		prev := (v - 1 + n) % n
		specs[v] = hybrid.RoutingSpec{
			Send:   []hybrid.RoutingToken{{Label: hybrid.RoutingLabel{S: v, R: next}, Value: int64(v)}},
			Expect: []hybrid.RoutingLabel{{S: prev, R: v}},
			InS:    true,
			InR:    true,
			KS:     1,
			KR:     1,
			PS:     1,
			PR:     1,
		}
	}
	for _, eng := range []hybrid.Engine{hybrid.EngineLegacy, hybrid.EngineSharded, hybrid.EngineStep} {
		b.Run(fmt.Sprintf("engine=%s", eng), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := hybrid.New(g, hybrid.WithSeed(benchSeed), hybrid.WithEngine(eng)).TokenRouting(specs)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFacadeAPSP measures the end-to-end wall-clock cost of the
// public-API Theorem 1.1 pipeline on a mid-size graph (engine overhead
// included), reporting the HYBRID round count as a metric.
func BenchmarkFacadeAPSP(b *testing.B) {
	g := hybrid.GridGraph(10, 10)
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := hybrid.New(g, hybrid.WithSeed(benchSeed)).APSP()
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Metrics.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkFacadeDiameter measures the (3/2+eps) diameter pipeline.
func BenchmarkFacadeDiameter(b *testing.B) {
	g := hybrid.GridGraph(10, 10)
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := hybrid.New(g, hybrid.WithSeed(benchSeed)).Diameter(hybrid.DiamCor52(0.5))
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Metrics.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkFacadeAPSPRepeated measures the repeated-call workload the
// Network session cache targets: two APSP runs on one Network, the second
// reusing the cached routing session. The reported metrics are the two
// round counts; their gap is the setup cost the cache deletes.
func BenchmarkFacadeAPSPRepeated(b *testing.B) {
	g := hybrid.GridGraph(10, 10)
	var first, second int
	for i := 0; i < b.N; i++ {
		net := hybrid.New(g, hybrid.WithSeed(benchSeed), hybrid.WithEngine(hybrid.EngineStep))
		r1, err := net.APSP()
		if err != nil {
			b.Fatal(err)
		}
		r2, err := net.APSP()
		if err != nil {
			b.Fatal(err)
		}
		first, second = r1.Metrics.Rounds, r2.Metrics.Rounds
	}
	b.ReportMetric(float64(first), "rounds-first")
	b.ReportMetric(float64(second), "rounds-cached")
}
