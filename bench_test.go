// Benchmark harness: one target per experiment of the per-experiment index
// in DESIGN.md (E1-E11). Each benchmark executes the experiment, prints its
// table once, reports the headline metric, and fails on any guarantee
// violation — so `go test -bench=. -benchmem` regenerates every evaluable
// artifact of the paper in one run. Use -short for the quick sweeps.
package hybrid_test

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	hybrid "repro"
	"repro/internal/experiments"
)

const benchSeed = 20200615 // the paper's arXiv date

var printOnce sync.Map

func runExperiment(b *testing.B, id string, f func(experiments.Config) experiments.Table) {
	b.Helper()
	cfg := experiments.Config{Seed: benchSeed, Quick: testing.Short()}
	var table experiments.Table
	for i := 0; i < b.N; i++ {
		table = f(cfg)
	}
	if _, done := printOnce.LoadOrStore(id, true); !done {
		fmt.Println(table.String())
	}
	for _, fail := range table.Failures {
		b.Errorf("%s: %s", id, fail)
	}
	if rounds := lastRounds(table); rounds > 0 {
		b.ReportMetric(rounds, "rounds")
	}
}

// lastRounds pulls the last row's first integer-looking "rounds" column for
// ReportMetric (best effort; the tables are the real output).
func lastRounds(t experiments.Table) float64 {
	if len(t.Rows) == 0 {
		return 0
	}
	for i, h := range t.Header {
		if h == "rounds" || h == "thm1.1 rounds" || h == "HYBRID rounds" || h == "thm1.3 rounds" {
			row := t.Rows[len(t.Rows)-1]
			if i < len(row) {
				if v, err := strconv.ParseFloat(row[i], 64); err == nil {
					return v
				}
			}
		}
	}
	return 0
}

func BenchmarkE1TokenRouting(b *testing.B) {
	runExperiment(b, "E1", experiments.E1TokenRouting)
}

func BenchmarkE2HelperSets(b *testing.B) {
	runExperiment(b, "E2", experiments.E2HelperSets)
}

func BenchmarkE3APSP(b *testing.B) {
	runExperiment(b, "E3", experiments.E3APSP)
}

func BenchmarkE4CliqueSim(b *testing.B) {
	runExperiment(b, "E4", experiments.E4CliqueSim)
}

func BenchmarkE5KSSP(b *testing.B) {
	runExperiment(b, "E5", experiments.E5KSSP)
}

func BenchmarkE6SSSP(b *testing.B) {
	runExperiment(b, "E6", experiments.E6SSSP)
}

func BenchmarkE7Diameter(b *testing.B) {
	runExperiment(b, "E7", experiments.E7Diameter)
}

func BenchmarkE8KSSPLowerBound(b *testing.B) {
	runExperiment(b, "E8", experiments.E8KSSPLowerBound)
}

func BenchmarkE9DiameterLowerBound(b *testing.B) {
	runExperiment(b, "E9", experiments.E9DiameterLowerBound)
}

func BenchmarkE10RecvLoad(b *testing.B) {
	runExperiment(b, "E10", experiments.E10RecvLoad)
}

func BenchmarkE11ModeComparison(b *testing.B) {
	runExperiment(b, "E11", experiments.E11ModeComparison)
}

func BenchmarkA1HelperQBoost(b *testing.B) {
	runExperiment(b, "A1", experiments.A1HelperQBoost)
}

func BenchmarkA2GlobalSendFactor(b *testing.B) {
	runExperiment(b, "A2", experiments.A2GlobalSendFactor)
}

func BenchmarkA3SkeletonHFactor(b *testing.B) {
	runExperiment(b, "A3", experiments.A3SkeletonHFactor)
}

func BenchmarkA4HashIndependence(b *testing.B) {
	runExperiment(b, "A4", experiments.A4HashIndependence)
}

// BenchmarkFacadeAPSP measures the end-to-end wall-clock cost of the
// public-API Theorem 1.1 pipeline on a mid-size graph (engine overhead
// included), reporting the HYBRID round count as a metric.
func BenchmarkFacadeAPSP(b *testing.B) {
	g := hybrid.GridGraph(10, 10)
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := hybrid.New(g, hybrid.WithSeed(benchSeed)).APSP()
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Metrics.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkFacadeDiameter measures the (3/2+eps) diameter pipeline.
func BenchmarkFacadeDiameter(b *testing.B) {
	g := hybrid.GridGraph(10, 10)
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := hybrid.New(g, hybrid.WithSeed(benchSeed)).Diameter(hybrid.DiameterCor52, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Metrics.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}
