package hybrid

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/lowerbound"
)

// Re-exports of the graph substrate so downstream users can build local
// topologies without reaching into internal packages. The aliases share
// identity with the internal types, so values flow freely across the API.

// Graph is a weighted undirected local communication graph on nodes 0..n-1.
type Graph = graph.Graph

// Neighbor is one adjacency entry.
type Neighbor = graph.Neighbor

// Edge is one undirected weighted edge.
type Edge = graph.Edge

// Inf is the distance reported for unreachable pairs.
const Inf = graph.Inf

// NewGraph returns an empty graph on n nodes; add edges with AddEdge.
func NewGraph(n int) *Graph { return graph.New(n) }

// PathGraph returns the n-node path (diameter n-1 — the LOCAL worst case).
func PathGraph(n int) *Graph { return graph.Path(n) }

// CycleGraph returns the n-cycle.
func CycleGraph(n int) *Graph { return graph.Cycle(n) }

// GridGraph returns the rows x cols grid.
func GridGraph(rows, cols int) *Graph { return graph.Grid(rows, cols) }

// CompleteGraph returns K_n.
func CompleteGraph(n int) *Graph { return graph.Complete(n) }

// GNPGraph returns a connected Erdős–Rényi graph (spanning tree overlaid).
func GNPGraph(n int, p float64, rng *rand.Rand) *Graph { return graph.GNP(n, p, rng) }

// RandomTreeGraph returns a random-attachment tree on n nodes (each node
// i > 0 attaches to a uniform earlier node) — the sparsest connected
// topology, a useful stress case for cluster formation and flooding.
func RandomTreeGraph(n int, rng *rand.Rand) *Graph { return graph.RandomTree(n, rng) }

// SparseGraph returns a connected sparse random graph with about
// extraFraction*n non-tree edges.
func SparseGraph(n int, extraFraction float64, rng *rand.Rand) *Graph {
	return graph.SparseConnected(n, extraFraction, rng)
}

// GeometricGraph returns a connected random geometric graph — the paper's
// motivating wireless topology (short-range local links).
func GeometricGraph(n int, radius float64, rng *rand.Rand) *Graph {
	return graph.RandomGeometric(n, radius, rng)
}

// BarbellGraph returns two k-cliques joined by a bridgeLen-edge path.
func BarbellGraph(k, bridgeLen int) *Graph { return graph.Barbell(k, bridgeLen) }

// WithRandomWeights copies g with weights drawn uniformly from [1, maxW].
func WithRandomWeights(g *Graph, maxW int64, rng *rand.Rand) *Graph {
	return graph.WithRandomWeights(g, maxW, rng)
}

// Dijkstra returns exact single-source distances (sequential ground truth).
func Dijkstra(g *Graph, src int) []int64 { return graph.Dijkstra(g, src) }

// ExactAPSP returns the exact distance matrix (sequential ground truth).
func ExactAPSP(g *Graph) [][]int64 { return graph.APSP(g) }

// HopDiameter returns D(G) := max hop distance (the paper's diameter).
func HopDiameter(g *Graph) int64 { return graph.HopDiameter(g) }

// WeightedDiameter returns the maximum weighted distance.
func WeightedDiameter(g *Graph) int64 { return graph.WeightedDiameter(g) }

// GammaGraph builds the Figure 2 lower-bound family Γ^{a,b}_{k,ℓ,W}
// encoding a set-disjointness instance (Theorem 1.6); see
// internal/lowerbound for the dichotomy verifiers.
func GammaGraph(k, l int, w int64, a, b []bool) (*Graph, error) {
	gm, err := lowerbound.BuildGamma(lowerbound.GammaParams{K: k, L: l, W: w}, a, b)
	if err != nil {
		return nil, err
	}
	return gm.G, nil
}
