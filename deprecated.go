package hybrid

import "fmt"

// This file holds the pre-spec-value enum API, kept as thin shims: every
// old enum+eps pair maps onto exactly the spec value that replaced it, so
// a shim call and its spec-value twin produce identical results for a
// fixed seed (pinned by TestDeprecatedShimsMatchSpecValues). New code
// should use the spec values (Cor46, DiamCor52, ...) directly — they carry
// their guarantee strings into the results.

// KSSPVariant selects the CLIQUE algorithm plugged into the Theorem 4.1
// framework.
//
// Deprecated: use the KSSPSpec values (Cor46, Cor47, Cor48, KSSPRealMM).
type KSSPVariant int

// The k-SSP variants of Theorem 1.2 plus the real-message instantiations.
//
// Deprecated: use the KSSPSpec values (Cor46, Cor47, Cor48, KSSPRealMM).
const (
	// VariantCor46 is Corollary 4.6; use Cor46(eps) instead.
	VariantCor46 KSSPVariant = iota + 1
	// VariantCor47 is Corollary 4.7; use Cor47(eps) instead.
	VariantCor47
	// VariantCor48 is Corollary 4.8; use Cor48(eps) instead.
	VariantCor48
	// VariantRealMM is the real-message semiring MM; use KSSPRealMM(eta)
	// instead.
	VariantRealMM
)

// spec maps the enum onto its spec value, reproducing the old eps
// defaulting (eps <= 0 meant 0.5, and RealMM derived η = 1/ε).
func (v KSSPVariant) spec(eps float64) (KSSPSpec, error) {
	eps = defaultEps(eps)
	switch v {
	case VariantCor46:
		return Cor46(eps), nil
	case VariantCor47:
		return Cor47(eps), nil
	case VariantCor48:
		return Cor48(eps), nil
	case VariantRealMM:
		return KSSPRealMM(1 / eps), nil
	default:
		return KSSPSpec{}, fmt.Errorf("hybrid: unknown k-SSP variant %d", v)
	}
}

// KSSPByVariant solves k-SSP selecting the algorithm by the old enum+eps
// pair.
//
// Deprecated: use KSSP with a spec value, e.g.
// net.KSSP(sources, hybrid.Cor46(eps)).
func (nw *Network) KSSPByVariant(sources []int, variant KSSPVariant, eps float64) (*KSSPResult, error) {
	spec, err := variant.spec(eps)
	if err != nil {
		return nil, err
	}
	return nw.KSSP(sources, spec)
}

// DiameterVariant selects the CLIQUE diameter algorithm of Theorem 1.4.
//
// Deprecated: use the DiameterSpec values (DiamCor52, DiamCor53,
// DiamRealMM).
type DiameterVariant int

// The diameter variants.
//
// Deprecated: use the DiameterSpec values (DiamCor52, DiamCor53,
// DiamRealMM).
const (
	// DiameterCor52 is Corollary 5.2; use DiamCor52(eps) instead.
	DiameterCor52 DiameterVariant = iota + 1
	// DiameterCor53 is Corollary 5.3; use DiamCor53(eps) instead.
	DiameterCor53
	// DiameterRealMM is the real-message exact skeleton diameter; use
	// DiamRealMM(eta) instead.
	DiameterRealMM
)

// spec maps the enum onto its spec value, reproducing the old eps
// defaulting.
func (v DiameterVariant) spec(eps float64) (DiameterSpec, error) {
	eps = defaultEps(eps)
	switch v {
	case DiameterCor52:
		return DiamCor52(eps), nil
	case DiameterCor53:
		return DiamCor53(eps), nil
	case DiameterRealMM:
		return DiamRealMM(1 / eps), nil
	default:
		return DiameterSpec{}, fmt.Errorf("hybrid: unknown diameter variant %d", v)
	}
}

// DiameterByVariant estimates the diameter selecting the algorithm by the
// old enum+eps pair.
//
// Deprecated: use Diameter with a spec value, e.g.
// net.Diameter(hybrid.DiamCor52(eps)).
func (nw *Network) DiameterByVariant(variant DiameterVariant, eps float64) (*DiameterResult, error) {
	spec, err := variant.spec(eps)
	if err != nil {
		return nil, err
	}
	return nw.Diameter(spec)
}
