// Tests of the persistent warm-start cache at facade level: a warm-started
// run (in-memory or from disk) must produce byte-identical results to a
// cold run on every engine, while skipping session and skeleton
// construction — which the golden round trace pins as exact round counts
// and an exact cache-agreement event sequence, so any persistence
// regression surfaces as a one-line diff.
package hybrid_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	hybrid "repro"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with the observed values")

// warmStartModes runs APSP on a 7x7 grid in the three cache modes — cold,
// warm-memory (second call on one Network), warm-disk (fresh Network
// restored from a saved cache file) — on the given engine, returning the
// per-mode results and the cache-agreement trace of each mode's final run.
func warmStartModes(t *testing.T, eng hybrid.Engine, dir string) (cold, warmMem, warmDisk *hybrid.APSPResult, traces map[string][]string) {
	t.Helper()
	g := hybrid.GridGraph(7, 7)
	const seed = 42
	traces = map[string][]string{}
	record := func(mode string) hybrid.Option {
		return hybrid.WithCacheTrace(func(ev string) {
			traces[mode] = append(traces[mode], ev)
		})
	}

	coldNet := hybrid.New(g, hybrid.WithSeed(seed), hybrid.WithEngine(eng),
		hybrid.WithCacheDir(dir), record("cold"))
	var err error
	cold, err = coldNet.APSP()
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if err := coldNet.SaveCache(); err != nil {
		t.Fatalf("save: %v", err)
	}

	// Warm-memory: the same Network's caches, populated by the cold run.
	memNet := hybrid.New(g, hybrid.WithSeed(seed), hybrid.WithEngine(eng), record("warm-memory"))
	if _, err := memNet.APSP(); err != nil {
		t.Fatalf("warm-memory populate: %v", err)
	}
	traces["warm-memory"] = nil // keep only the second (warm) run's events
	warmMem, err = memNet.APSP()
	if err != nil {
		t.Fatalf("warm-memory: %v", err)
	}

	// Warm-disk: a fresh Network restored from the cold run's cache file.
	diskNet := hybrid.New(g, hybrid.WithSeed(seed), hybrid.WithEngine(eng),
		hybrid.WithCacheDir(dir), record("warm-disk"))
	loaded, err := diskNet.LoadCache()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !loaded {
		t.Fatal("LoadCache found no file after SaveCache")
	}
	warmDisk, err = diskNet.APSP()
	if err != nil {
		t.Fatalf("warm-disk: %v", err)
	}
	return cold, warmMem, warmDisk, traces
}

// TestWarmStartByteIdentical is the warm-start analogue of the engine
// matrix: for every engine, all three modes agree byte-for-byte on Dist;
// within each mode all engines agree on the full Metrics; and the warm
// modes take strictly fewer rounds than cold while warm-disk reproduces
// warm-memory's Metrics exactly (the restored cache is
// indistinguishable from the in-memory one).
func TestWarmStartByteIdentical(t *testing.T) {
	type modes struct{ cold, warmMem, warmDisk *hybrid.APSPResult }
	perEngine := map[hybrid.Engine]modes{}
	for _, eng := range allEngines {
		dir := t.TempDir()
		cold, warmMem, warmDisk, _ := warmStartModes(t, eng, dir)
		perEngine[eng] = modes{cold, warmMem, warmDisk}

		if !reflect.DeepEqual(cold.Dist, warmMem.Dist) {
			t.Errorf("%s: warm-memory Dist differs from cold", eng)
		}
		if !reflect.DeepEqual(cold.Dist, warmDisk.Dist) {
			t.Errorf("%s: warm-disk Dist differs from cold", eng)
		}
		if warmDisk.Metrics != warmMem.Metrics {
			t.Errorf("%s: warm-disk metrics %+v differ from warm-memory %+v", eng, warmDisk.Metrics, warmMem.Metrics)
		}
		if warmMem.Metrics.Rounds >= cold.Metrics.Rounds {
			t.Errorf("%s: warm run saved nothing: %d rounds vs cold %d",
				eng, warmMem.Metrics.Rounds, cold.Metrics.Rounds)
		}
	}
	oracle := perEngine[hybrid.EngineLegacy]
	for _, eng := range allEngines[1:] {
		got := perEngine[eng]
		if oracle.cold.Metrics != got.cold.Metrics {
			t.Errorf("cold metrics differ: legacy %+v %s %+v", oracle.cold.Metrics, eng, got.cold.Metrics)
		}
		if oracle.warmDisk.Metrics != got.warmDisk.Metrics {
			t.Errorf("warm-disk metrics differ: legacy %+v %s %+v", oracle.warmDisk.Metrics, eng, got.warmDisk.Metrics)
		}
		if !reflect.DeepEqual(oracle.warmDisk.Dist, got.warmDisk.Dist) {
			t.Errorf("warm-disk Dist differs between legacy and %s", eng)
		}
	}
}

// TestGoldenRoundTrace pins the exact round counts and cache-agreement
// event sequences of the three modes for a fixed seed against
// testdata/warmstart_trace.golden. The trace is first asserted
// engine-independent, so the golden file guards the protocol, not an
// engine. Regenerate with: go test -run TestGoldenRoundTrace -update .
func TestGoldenRoundTrace(t *testing.T) {
	var goldenBody string
	for i, eng := range allEngines {
		cold, warmMem, warmDisk, traces := warmStartModes(t, eng, t.TempDir())
		var b strings.Builder
		fmt.Fprintf(&b, "graph=grid7x7 seed=42 algo=apsp\n")
		for _, mode := range []struct {
			name string
			res  *hybrid.APSPResult
		}{{"cold", cold}, {"warm-memory", warmMem}, {"warm-disk", warmDisk}} {
			fmt.Fprintf(&b, "%s rounds=%d\n", mode.name, mode.res.Metrics.Rounds)
			for _, ev := range traces[mode.name] {
				fmt.Fprintf(&b, "%s agreement: %s\n", mode.name, ev)
			}
		}
		body := b.String()
		if i == 0 {
			goldenBody = body
		} else if body != goldenBody {
			t.Fatalf("round trace differs between engines:\n%s engine:\n%s\nlegacy engine:\n%s", eng, body, goldenBody)
		}
	}

	path := filepath.Join("testdata", "warmstart_trace.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(goldenBody), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if string(want) != goldenBody {
		t.Errorf("round trace diverged from golden file (regenerate with -update if intended):\ngot:\n%s\nwant:\n%s", goldenBody, want)
	}
}

// TestCorruptCacheFallsBackCold pins the rejection paths: corrupted bytes,
// a wrong format version, and a cache recorded for a different instance
// are all rejected by LoadCache with an error — leaving the Network cold,
// so the subsequent run is byte-identical to a never-cached one.
func TestCorruptCacheFallsBackCold(t *testing.T) {
	g := hybrid.GridGraph(7, 7)
	const seed = 42
	freshCold, err := hybrid.New(g, hybrid.WithSeed(seed)).APSP()
	if err != nil {
		t.Fatal(err)
	}

	saveValid := func(t *testing.T, dir string) string {
		t.Helper()
		net := hybrid.New(g, hybrid.WithSeed(seed), hybrid.WithCacheDir(dir))
		if _, err := net.APSP(); err != nil {
			t.Fatal(err)
		}
		if err := net.SaveCache(); err != nil {
			t.Fatal(err)
		}
		return net.CachePath()
	}

	cases := map[string]func(t *testing.T, dir string){
		"corrupt bytes": func(t *testing.T, dir string) {
			path := saveValid(t, dir)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0x5a
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"truncated": func(t *testing.T, dir string) {
			path := saveValid(t, dir)
			if err := os.Truncate(path, 10); err != nil {
				t.Fatal(err)
			}
		},
		"wrong instance": func(t *testing.T, dir string) {
			// A valid cache file for a different seed, renamed into the
			// place this instance expects: the payload identity check
			// must reject it.
			other := hybrid.New(g, hybrid.WithSeed(seed+1), hybrid.WithCacheDir(dir))
			if _, err := other.APSP(); err != nil {
				t.Fatal(err)
			}
			if err := other.SaveCache(); err != nil {
				t.Fatal(err)
			}
			want := hybrid.New(g, hybrid.WithSeed(seed), hybrid.WithCacheDir(dir)).CachePath()
			if err := os.Rename(other.CachePath(), want); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, sabotage := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			sabotage(t, dir)
			net := hybrid.New(g, hybrid.WithSeed(seed), hybrid.WithCacheDir(dir))
			loaded, err := net.LoadCache()
			if err == nil || loaded {
				t.Fatalf("sabotaged cache accepted: loaded=%v err=%v", loaded, err)
			}
			res, err := net.APSP()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Dist, freshCold.Dist) || res.Metrics != freshCold.Metrics {
				t.Error("run after rejected cache differs from a never-cached cold run")
			}
		})
	}
}

// TestLoadCacheNoFileIsCold pins the (false, nil) contract for a missing
// file and the explicit error when no directory was configured.
func TestLoadCacheNoFileIsCold(t *testing.T) {
	g := hybrid.GridGraph(4, 4)
	net := hybrid.New(g, hybrid.WithSeed(1), hybrid.WithCacheDir(t.TempDir()))
	loaded, err := net.LoadCache()
	if loaded || err != nil {
		t.Errorf("missing file: got loaded=%v err=%v, want false, nil", loaded, err)
	}
	bare := hybrid.New(g, hybrid.WithSeed(1))
	if _, err := bare.LoadCache(); err == nil {
		t.Error("LoadCache without WithCacheDir succeeded")
	}
	if err := bare.SaveCache(); err == nil {
		t.Error("SaveCache without WithCacheDir succeeded")
	}
	if p := bare.CachePath(); p != "" {
		t.Errorf("CachePath without WithCacheDir = %q, want empty", p)
	}
}
