// Tests of the persistent warm-start cache at facade level: a warm-started
// run (in-memory or from disk) must produce byte-identical results to a
// cold run on every engine, while skipping session and skeleton
// construction — which the golden round trace pins as exact round counts
// and an exact cache-agreement event sequence, so any persistence
// regression surfaces as a one-line diff.
package hybrid_test

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	hybrid "repro"
	"repro/internal/chaos"
	"repro/internal/persist"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with the observed values")

// warmStartModes runs APSP on a 7x7 grid in the four cache modes — cold,
// warm-memory (second call on one Network), warm-disk (fresh Network
// restored from the saved cache files), cross-seed (fresh Network under a
// NEW seed that finds only the seed-independent structural section) — on
// the given engine, returning the per-mode results and the cache-agreement
// trace of each mode's final run.
func warmStartModes(t *testing.T, eng hybrid.Engine, dir string) (cold, warmMem, warmDisk, crossSeed *hybrid.APSPResult, traces map[string][]string) {
	t.Helper()
	g := hybrid.GridGraph(7, 7)
	const seed = 42
	traces = map[string][]string{}
	record := func(mode string) hybrid.Option {
		return hybrid.WithCacheTrace(func(ev string) {
			traces[mode] = append(traces[mode], ev)
		})
	}

	coldNet := hybrid.New(g, hybrid.WithSeed(seed), hybrid.WithEngine(eng),
		hybrid.WithCacheDir(dir), record("cold"))
	var err error
	cold, err = coldNet.APSP()
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if err := coldNet.SaveCache(); err != nil {
		t.Fatalf("save: %v", err)
	}

	// Warm-memory: the same Network's caches, populated by the cold run.
	memNet := hybrid.New(g, hybrid.WithSeed(seed), hybrid.WithEngine(eng), record("warm-memory"))
	if _, err := memNet.APSP(); err != nil {
		t.Fatalf("warm-memory populate: %v", err)
	}
	traces["warm-memory"] = nil // keep only the second (warm) run's events
	warmMem, err = memNet.APSP()
	if err != nil {
		t.Fatalf("warm-memory: %v", err)
	}

	// Warm-disk: a fresh Network restored from the cold run's cache file.
	diskNet := hybrid.New(g, hybrid.WithSeed(seed), hybrid.WithEngine(eng),
		hybrid.WithCacheDir(dir), record("warm-disk"))
	status, err := diskNet.LoadCache()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !status.Structural || !status.Seed {
		t.Fatalf("LoadCache after SaveCache restored %+v, want both sections", status)
	}
	warmDisk, err = diskNet.APSP()
	if err != nil {
		t.Fatalf("warm-disk: %v", err)
	}

	// Cross-seed: a fresh Network under a different seed. Its own seed file
	// does not exist, but the structural section (keyed by graph only)
	// does: the run reuses the cluster structures and rebuilds the
	// seed-dependent state.
	crossNet := hybrid.New(g, hybrid.WithSeed(seed+1), hybrid.WithEngine(eng),
		hybrid.WithCacheDir(dir), record("cross-seed"))
	status, err = crossNet.LoadCache()
	if err != nil {
		t.Fatalf("cross-seed load: %v", err)
	}
	if !status.Structural || status.Seed {
		t.Fatalf("cross-seed LoadCache restored %+v, want structural only", status)
	}
	crossSeed, err = crossNet.APSP()
	if err != nil {
		t.Fatalf("cross-seed: %v", err)
	}
	return cold, warmMem, warmDisk, crossSeed, traces
}

// TestWarmStartByteIdentical is the warm-start analogue of the engine
// matrix: for every engine, all modes sharing a seed agree byte-for-byte
// on Dist; within each mode all engines agree on the full Metrics; the
// warm modes take strictly fewer rounds than cold while warm-disk
// reproduces warm-memory's Metrics exactly (the restored cache is
// indistinguishable from the in-memory one); and the cross-seed mode —
// same graph, new seed, structural section only — reproduces that seed's
// cold results byte-for-byte while landing strictly between its cold and
// full-warm round counts.
func TestWarmStartByteIdentical(t *testing.T) {
	type modes struct{ cold, warmMem, warmDisk, crossSeed *hybrid.APSPResult }
	g := hybrid.GridGraph(7, 7)
	perEngine := map[hybrid.Engine]modes{}
	for _, eng := range allEngines {
		dir := t.TempDir()
		cold, warmMem, warmDisk, crossSeed, _ := warmStartModes(t, eng, dir)
		perEngine[eng] = modes{cold, warmMem, warmDisk, crossSeed}

		if !reflect.DeepEqual(cold.Dist, warmMem.Dist) {
			t.Errorf("%s: warm-memory Dist differs from cold", eng)
		}
		if !reflect.DeepEqual(cold.Dist, warmDisk.Dist) {
			t.Errorf("%s: warm-disk Dist differs from cold", eng)
		}
		if warmDisk.Metrics != warmMem.Metrics {
			t.Errorf("%s: warm-disk metrics %+v differ from warm-memory %+v", eng, warmDisk.Metrics, warmMem.Metrics)
		}
		if warmMem.Metrics.Rounds >= cold.Metrics.Rounds {
			t.Errorf("%s: warm run saved nothing: %d rounds vs cold %d",
				eng, warmMem.Metrics.Rounds, cold.Metrics.Rounds)
		}

		// Cross-seed: byte-identical to that seed's own cold run, strictly
		// between cold and full warm on rounds. (The full-warm bound uses
		// the seed-42 warm run — the protocol's warm round count is
		// seed-independent here, and the golden trace pins both numbers.)
		coldB, err := hybrid.New(g, hybrid.WithSeed(43), hybrid.WithEngine(eng)).APSP()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(coldB.Dist, crossSeed.Dist) {
			t.Errorf("%s: cross-seed Dist differs from the new seed's cold run", eng)
		}
		if !(crossSeed.Metrics.Rounds < coldB.Metrics.Rounds) {
			t.Errorf("%s: cross-seed warm start saved nothing: %d rounds vs cold %d",
				eng, crossSeed.Metrics.Rounds, coldB.Metrics.Rounds)
		}
		if !(crossSeed.Metrics.Rounds > warmMem.Metrics.Rounds) {
			t.Errorf("%s: cross-seed run at %d rounds is not above the full-warm %d",
				eng, crossSeed.Metrics.Rounds, warmMem.Metrics.Rounds)
		}
	}
	oracle := perEngine[hybrid.EngineLegacy]
	for _, eng := range allEngines[1:] {
		got := perEngine[eng]
		if oracle.cold.Metrics != got.cold.Metrics {
			t.Errorf("cold metrics differ: legacy %+v %s %+v", oracle.cold.Metrics, eng, got.cold.Metrics)
		}
		if oracle.warmDisk.Metrics != got.warmDisk.Metrics {
			t.Errorf("warm-disk metrics differ: legacy %+v %s %+v", oracle.warmDisk.Metrics, eng, got.warmDisk.Metrics)
		}
		if !reflect.DeepEqual(oracle.warmDisk.Dist, got.warmDisk.Dist) {
			t.Errorf("warm-disk Dist differs between legacy and %s", eng)
		}
		if oracle.crossSeed.Metrics != got.crossSeed.Metrics {
			t.Errorf("cross-seed metrics differ: legacy %+v %s %+v", oracle.crossSeed.Metrics, eng, got.crossSeed.Metrics)
		}
		if !reflect.DeepEqual(oracle.crossSeed.Dist, got.crossSeed.Dist) {
			t.Errorf("cross-seed Dist differs between legacy and %s", eng)
		}
	}
}

// TestGoldenRoundTrace pins the exact round counts and cache-agreement
// event sequences of the three modes for a fixed seed against
// testdata/warmstart_trace.golden. The trace is first asserted
// engine-independent, so the golden file guards the protocol, not an
// engine. Regenerate with: go test -run TestGoldenRoundTrace -update .
func TestGoldenRoundTrace(t *testing.T) {
	var goldenBody string
	for i, eng := range allEngines {
		cold, warmMem, warmDisk, crossSeed, traces := warmStartModes(t, eng, t.TempDir())
		var b strings.Builder
		fmt.Fprintf(&b, "graph=grid7x7 seed=42 algo=apsp (cross-seed=43)\n")
		for _, mode := range []struct {
			name string
			res  *hybrid.APSPResult
		}{{"cold", cold}, {"warm-memory", warmMem}, {"warm-disk", warmDisk}, {"cross-seed", crossSeed}} {
			fmt.Fprintf(&b, "%s rounds=%d\n", mode.name, mode.res.Metrics.Rounds)
			for _, ev := range traces[mode.name] {
				fmt.Fprintf(&b, "%s agreement: %s\n", mode.name, ev)
			}
		}
		body := b.String()
		if i == 0 {
			goldenBody = body
		} else if body != goldenBody {
			t.Fatalf("round trace differs between engines:\n%s engine:\n%s\nlegacy engine:\n%s", eng, body, goldenBody)
		}
	}

	path := filepath.Join("testdata", "warmstart_trace.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(goldenBody), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if string(want) != goldenBody {
		t.Errorf("round trace diverged from golden file (regenerate with -update if intended):\ngot:\n%s\nwant:\n%s", goldenBody, want)
	}
}

// TestCorruptCacheFallsBackCold pins the rejection paths: corrupted bytes,
// a wrong format version, and a cache recorded for a different instance
// are all rejected by LoadCache with an error — leaving the Network cold,
// so the subsequent run is byte-identical to a never-cached one.
func TestCorruptCacheFallsBackCold(t *testing.T) {
	g := hybrid.GridGraph(7, 7)
	const seed = 42
	freshCold, err := hybrid.New(g, hybrid.WithSeed(seed)).APSP()
	if err != nil {
		t.Fatal(err)
	}

	saveValid := func(t *testing.T, dir string) string {
		t.Helper()
		net := hybrid.New(g, hybrid.WithSeed(seed), hybrid.WithCacheDir(dir))
		if _, err := net.APSP(); err != nil {
			t.Fatal(err)
		}
		if err := net.SaveCache(); err != nil {
			t.Fatal(err)
		}
		return net.CachePath()
	}

	cases := map[string]func(t *testing.T, dir string){
		"corrupt bytes": func(t *testing.T, dir string) {
			path := saveValid(t, dir)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0x5a
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"truncated": func(t *testing.T, dir string) {
			path := saveValid(t, dir)
			if err := os.Truncate(path, 10); err != nil {
				t.Fatal(err)
			}
		},
		"wrong instance": func(t *testing.T, dir string) {
			// A valid cache file for a different seed, renamed into the
			// place this instance expects: the payload identity check
			// must reject it.
			other := hybrid.New(g, hybrid.WithSeed(seed+1), hybrid.WithCacheDir(dir))
			if _, err := other.APSP(); err != nil {
				t.Fatal(err)
			}
			if err := other.SaveCache(); err != nil {
				t.Fatal(err)
			}
			want := hybrid.New(g, hybrid.WithSeed(seed), hybrid.WithCacheDir(dir)).CachePath()
			if err := os.Rename(other.CachePath(), want); err != nil {
				t.Fatal(err)
			}
		},
		"v1 format file": func(t *testing.T, dir string) {
			// The real v1 upgrade shape: the v1 release wrote a SINGLE
			// file under the same name v2 uses for its seed section, and
			// no structural file. It must be rejected with a clean version
			// error (not misread, not misreported as a missing sibling).
			net := hybrid.New(g, hybrid.WithSeed(seed), hybrid.WithCacheDir(dir))
			if err := persist.Save(net.CachePath(), 1, struct{ Legacy string }{"v1 payload"}); err != nil {
				t.Fatal(err)
			}
		},
		"truncated compressed payload": func(t *testing.T, dir string) {
			// A flate stream cut short and re-framed behind a fresh, valid
			// header: only the decompressor can notice, and it must.
			path := saveValid(t, dir)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			reframed := reframe(data[24:len(data)-20], 2)
			if err := os.WriteFile(path, reframed, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"dangling structural section": func(t *testing.T, dir string) {
			// A seed file whose structural counterpart vanished: its dedup
			// references cannot be resolved, so the set must be rejected
			// rather than the seed file silently ignored.
			saveValid(t, dir)
			structs, err := filepath.Glob(filepath.Join(dir, "*-struct.hybc"))
			if err != nil || len(structs) != 1 {
				t.Fatalf("structural files: %v, %v", structs, err)
			}
			if err := os.Remove(structs[0]); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, sabotage := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			sabotage(t, dir)
			net := hybrid.New(g, hybrid.WithSeed(seed), hybrid.WithCacheDir(dir))
			status, err := net.LoadCache()
			if err == nil || status.Any() {
				t.Fatalf("sabotaged cache accepted: status=%+v err=%v", status, err)
			}
			if name == "v1 format file" && !strings.Contains(err.Error(), "format v1") {
				t.Errorf("v1 file not rejected as a version mismatch: %v", err)
			}
			res, err := net.APSP()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Dist, freshCold.Dist) || res.Metrics != freshCold.Metrics {
				t.Error("run after rejected cache differs from a never-cached cold run")
			}
		})
	}
}

// TestChaosShortWriteFallsBackCold closes the crash-safety loop through the
// chaos layer: a torn cache write (injected via the persist FS seam, the
// moral equivalent of a crash between write and fsync) is reported as a
// successful save, but the next LoadCache rejects the torn file and the
// subsequent run is byte-identical to a never-cached cold run.
func TestChaosShortWriteFallsBackCold(t *testing.T) {
	g := hybrid.GridGraph(7, 7)
	const seed = 42
	freshCold, err := hybrid.New(g, hybrid.WithSeed(seed)).APSP()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	warm := hybrid.New(g, hybrid.WithSeed(seed), hybrid.WithCacheDir(dir))
	if _, err := warm.APSP(); err != nil {
		t.Fatal(err)
	}
	plan := chaos.NewPlan().ShortWrites(".hybc", 10, 1)
	restore := persist.SetFS(plan.FS())
	if err := warm.SaveCache(); err != nil {
		restore()
		t.Fatalf("torn save must still report success (the crash happens after): %v", err)
	}
	restore()
	if got := plan.Stats().ShortWrites; got != 1 {
		t.Fatalf("short writes fired = %d, want 1", got)
	}

	net := hybrid.New(g, hybrid.WithSeed(seed), hybrid.WithCacheDir(dir))
	status, err := net.LoadCache()
	if err == nil {
		t.Fatalf("torn cache accepted: status=%+v", status)
	}
	if !errors.Is(err, persist.ErrCorrupt) {
		t.Errorf("torn cache rejected as %v, want ErrCorrupt", err)
	}
	if status.Any() {
		t.Errorf("torn cache restored sections: %+v", status)
	}
	res, err := net.APSP()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Dist, freshCold.Dist) || res.Metrics != freshCold.Metrics {
		t.Error("run after torn cache differs from a never-cached cold run")
	}
}

// reframe wraps body in a fresh, internally consistent cache-file header
// (magic, version, length, FNV-64a checksum) — the shape a deliberately
// malformed-but-checksummed payload arrives in.
func reframe(body []byte, version uint32) []byte {
	h := fnv.New64a()
	h.Write(body)
	out := make([]byte, 24, 24+len(body))
	copy(out[0:4], "HYWC")
	binary.LittleEndian.PutUint32(out[4:8], version)
	binary.LittleEndian.PutUint64(out[8:16], uint64(len(body)))
	binary.LittleEndian.PutUint64(out[16:24], h.Sum64())
	return append(out, body...)
}

// TestLoadCacheNoFileIsCold pins the (false, nil) contract for a missing
// file and the explicit error when no directory was configured.
func TestLoadCacheNoFileIsCold(t *testing.T) {
	g := hybrid.GridGraph(4, 4)
	net := hybrid.New(g, hybrid.WithSeed(1), hybrid.WithCacheDir(t.TempDir()))
	status, err := net.LoadCache()
	if status.Any() || err != nil {
		t.Errorf("missing file: got status=%+v err=%v, want zero, nil", status, err)
	}
	bare := hybrid.New(g, hybrid.WithSeed(1))
	if _, err := bare.LoadCache(); err == nil {
		t.Error("LoadCache without WithCacheDir succeeded")
	}
	if err := bare.SaveCache(); err == nil {
		t.Error("SaveCache without WithCacheDir succeeded")
	}
	if p := bare.CachePath(); p != "" {
		t.Errorf("CachePath without WithCacheDir = %q, want empty", p)
	}
}

// BenchmarkSnapshotSaveLoad measures the on-disk codec round trip over a
// populated warm-start cache (10x10 grid APSP), reporting the total cache
// file size alongside the save and load wall times — the package-level
// twin of cmd/benchwarm's end-to-end JSON record.
func BenchmarkSnapshotSaveLoad(b *testing.B) {
	g := hybrid.GridGraph(10, 10)
	dir := b.TempDir()
	net := hybrid.New(g, hybrid.WithSeed(1), hybrid.WithEngine(hybrid.EngineStep), hybrid.WithCacheDir(dir))
	if _, err := net.APSP(); err != nil {
		b.Fatal(err)
	}
	if err := net.SaveCache(); err != nil {
		b.Fatal(err)
	}
	structInfo, seedInfo := net.CacheFiles()
	totalBytes := float64(structInfo.Bytes + seedInfo.Bytes)

	b.Run("save", func(b *testing.B) {
		b.ReportMetric(totalBytes, "cache-bytes")
		for i := 0; i < b.N; i++ {
			if err := net.SaveCache(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load", func(b *testing.B) {
		b.ReportMetric(totalBytes, "cache-bytes")
		for i := 0; i < b.N; i++ {
			fresh := hybrid.New(g, hybrid.WithSeed(1), hybrid.WithCacheDir(dir))
			status, err := fresh.LoadCache()
			if err != nil {
				b.Fatal(err)
			}
			if !status.Seed {
				b.Fatal("load restored nothing")
			}
		}
	})
}
