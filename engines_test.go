// Differential tests between the two round engines: for fixed seeds, the
// legacy goroutine-per-node engine and the sharded v2 engine must produce
// byte-identical distances, diameter estimates, and cost metrics on every
// algorithm of the public API. The legacy engine is the oracle; any
// divergence is an engine bug by definition.
package hybrid_test

import (
	"math/rand"
	"reflect"
	"testing"

	hybrid "repro"
)

// engineSuite returns the small graph suite the differential tests run on:
// a grid, a random sparse graph, and a path (worst case for flooding).
func engineSuite(t *testing.T) map[string]*hybrid.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	suite := map[string]*hybrid.Graph{
		"grid":   hybrid.GridGraph(7, 7),
		"random": hybrid.SparseGraph(48, 1.4, rng),
		"path":   hybrid.PathGraph(40),
	}
	suite["weighted-grid"] = hybrid.WithRandomWeights(hybrid.GridGraph(6, 6), 9, rng)
	return suite
}

func bothEngines(t *testing.T, g *hybrid.Graph, seed int64) (legacy, sharded *hybrid.Network) {
	t.Helper()
	return hybrid.New(g, hybrid.WithSeed(seed), hybrid.WithEngine(hybrid.EngineLegacy)),
		hybrid.New(g, hybrid.WithSeed(seed), hybrid.WithEngine(hybrid.EngineSharded))
}

func TestEnginesAgreeAPSP(t *testing.T) {
	for name, g := range engineSuite(t) {
		legacy, sharded := bothEngines(t, g, 101)
		lres, err := legacy.APSP()
		if err != nil {
			t.Fatalf("%s legacy: %v", name, err)
		}
		sres, err := sharded.APSP()
		if err != nil {
			t.Fatalf("%s sharded: %v", name, err)
		}
		if !reflect.DeepEqual(lres.Dist, sres.Dist) {
			t.Errorf("%s: APSP distance matrices differ between engines", name)
		}
		if lres.Metrics != sres.Metrics {
			t.Errorf("%s: APSP metrics differ: legacy %+v sharded %+v", name, lres.Metrics, sres.Metrics)
		}
		// The oracle itself must be exact.
		if want := hybrid.ExactAPSP(g); !reflect.DeepEqual(lres.Dist, want) {
			t.Errorf("%s: legacy APSP diverges from sequential ground truth", name)
		}
	}
}

func TestEnginesAgreeSSSP(t *testing.T) {
	for name, g := range engineSuite(t) {
		legacy, sharded := bothEngines(t, g, 202)
		lres, err := legacy.SSSP(0)
		if err != nil {
			t.Fatalf("%s legacy: %v", name, err)
		}
		sres, err := sharded.SSSP(0)
		if err != nil {
			t.Fatalf("%s sharded: %v", name, err)
		}
		if !reflect.DeepEqual(lres.Dist, sres.Dist) {
			t.Errorf("%s: SSSP distances differ between engines", name)
		}
		if lres.Metrics.Rounds != sres.Metrics.Rounds {
			t.Errorf("%s: SSSP round counts differ: %d vs %d", name, lres.Metrics.Rounds, sres.Metrics.Rounds)
		}
	}
}

func TestEnginesAgreeDiameter(t *testing.T) {
	for name, g := range engineSuite(t) {
		if name == "weighted-grid" {
			continue // Diameter is defined on unweighted graphs.
		}
		legacy, sharded := bothEngines(t, g, 303)
		lres, err := legacy.Diameter(hybrid.DiameterCor52, 0.5)
		if err != nil {
			t.Fatalf("%s legacy: %v", name, err)
		}
		sres, err := sharded.Diameter(hybrid.DiameterCor52, 0.5)
		if err != nil {
			t.Fatalf("%s sharded: %v", name, err)
		}
		if lres.Estimate != sres.Estimate {
			t.Errorf("%s: diameter estimates differ: %d vs %d", name, lres.Estimate, sres.Estimate)
		}
		if lres.Metrics != sres.Metrics {
			t.Errorf("%s: diameter metrics differ", name)
		}
	}
}

func TestEnginesAgreeKSSP(t *testing.T) {
	g := hybrid.GridGraph(6, 6)
	legacy, sharded := bothEngines(t, g, 404)
	sources := []int{0, 17, 35}
	lres, err := legacy.KSSP(sources, hybrid.VariantCor47, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := sharded.KSSP(sources, hybrid.VariantCor47, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lres.Dist, sres.Dist) {
		t.Error("KSSP estimates differ between engines")
	}
	if lres.Metrics != sres.Metrics {
		t.Errorf("KSSP metrics differ: legacy %+v sharded %+v", lres.Metrics, sres.Metrics)
	}
}
