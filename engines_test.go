// Differential tests between the four round engines: for fixed seeds, the
// legacy goroutine-per-node engine, the sharded v2 engine, the
// goroutine-free step engine, and the multi-process distributed engine
// must produce byte-identical distances, diameter estimates, round counts,
// and cost metrics on every algorithm of the public API. The legacy engine
// is the oracle; any divergence is an engine (or step-port, or wire
// protocol) bug by definition. On EngineStep, APSP and TokenRouting
// exercise the step-native machines; SSSP, KSSP and Diameter exercise the
// goroutine-backed adapter. EngineDist additionally routes every global
// message through worker OS processes (see internal/dist).
package hybrid_test

import (
	"math/rand"
	"reflect"
	"testing"

	hybrid "repro"
)

// allEngines is the engine matrix every differential test sweeps.
var allEngines = []hybrid.Engine{hybrid.EngineLegacy, hybrid.EngineSharded, hybrid.EngineStep, hybrid.EngineDist}

// engineSuite returns the small graph suite the differential tests run on:
// a grid, a random sparse graph, a path (worst case for flooding), and a
// weighted grid.
func engineSuite(t *testing.T) map[string]*hybrid.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	suite := map[string]*hybrid.Graph{
		"grid":   hybrid.GridGraph(7, 7),
		"random": hybrid.SparseGraph(48, 1.4, rng),
		"path":   hybrid.PathGraph(40),
	}
	suite["weighted-grid"] = hybrid.WithRandomWeights(hybrid.GridGraph(6, 6), 9, rng)
	return suite
}

func engineNet(g *hybrid.Graph, seed int64, eng hybrid.Engine) *hybrid.Network {
	return hybrid.New(g, hybrid.WithSeed(seed), hybrid.WithEngine(eng))
}

func TestEnginesAgreeAPSP(t *testing.T) {
	for name, g := range engineSuite(t) {
		oracle, err := engineNet(g, 101, hybrid.EngineLegacy).APSP()
		if err != nil {
			t.Fatalf("%s legacy: %v", name, err)
		}
		// The oracle itself must be exact.
		if want := hybrid.ExactAPSP(g); !reflect.DeepEqual(oracle.Dist, want) {
			t.Errorf("%s: legacy APSP diverges from sequential ground truth", name)
		}
		for _, eng := range allEngines[1:] {
			res, err := engineNet(g, 101, eng).APSP()
			if err != nil {
				t.Fatalf("%s %s: %v", name, eng, err)
			}
			if !reflect.DeepEqual(oracle.Dist, res.Dist) {
				t.Errorf("%s: APSP distance matrices differ between legacy and %s", name, eng)
			}
			if oracle.Metrics != res.Metrics {
				t.Errorf("%s: APSP metrics differ: legacy %+v %s %+v", name, oracle.Metrics, eng, res.Metrics)
			}
		}
	}
}

func TestEnginesAgreeAPSPBaseline(t *testing.T) {
	g := hybrid.GridGraph(6, 6)
	oracle, err := engineNet(g, 707, hybrid.EngineLegacy).APSPBaseline()
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range allEngines[1:] {
		res, err := engineNet(g, 707, eng).APSPBaseline()
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if !reflect.DeepEqual(oracle.Dist, res.Dist) {
			t.Errorf("baseline APSP distances differ between legacy and %s", eng)
		}
		if oracle.Metrics != res.Metrics {
			t.Errorf("baseline APSP metrics differ: legacy %+v %s %+v", oracle.Metrics, eng, res.Metrics)
		}
	}
}

func TestEnginesAgreeSSSP(t *testing.T) {
	for name, g := range engineSuite(t) {
		oracle, err := engineNet(g, 202, hybrid.EngineLegacy).SSSP(0)
		if err != nil {
			t.Fatalf("%s legacy: %v", name, err)
		}
		for _, eng := range allEngines[1:] {
			res, err := engineNet(g, 202, eng).SSSP(0)
			if err != nil {
				t.Fatalf("%s %s: %v", name, eng, err)
			}
			if !reflect.DeepEqual(oracle.Dist, res.Dist) {
				t.Errorf("%s: SSSP distances differ between legacy and %s", name, eng)
			}
			if oracle.Metrics.Rounds != res.Metrics.Rounds {
				t.Errorf("%s: SSSP round counts differ: %d vs %d (%s)", name, oracle.Metrics.Rounds, res.Metrics.Rounds, eng)
			}
		}
	}
}

func TestEnginesAgreeDiameter(t *testing.T) {
	for name, g := range engineSuite(t) {
		if name == "weighted-grid" {
			continue // Diameter is defined on unweighted graphs.
		}
		oracle, err := engineNet(g, 303, hybrid.EngineLegacy).Diameter(hybrid.DiamCor52(0.5))
		if err != nil {
			t.Fatalf("%s legacy: %v", name, err)
		}
		for _, eng := range allEngines[1:] {
			res, err := engineNet(g, 303, eng).Diameter(hybrid.DiamCor52(0.5))
			if err != nil {
				t.Fatalf("%s %s: %v", name, eng, err)
			}
			if oracle.Estimate != res.Estimate {
				t.Errorf("%s: diameter estimates differ: %d vs %d (%s)", name, oracle.Estimate, res.Estimate, eng)
			}
			if oracle.Metrics != res.Metrics {
				t.Errorf("%s: diameter metrics differ between legacy and %s", name, eng)
			}
		}
	}
}

func TestEnginesAgreeKSSP(t *testing.T) {
	g := hybrid.GridGraph(6, 6)
	sources := []int{0, 17, 35}
	oracle, err := engineNet(g, 404, hybrid.EngineLegacy).KSSP(sources, hybrid.Cor47(0.5))
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range allEngines[1:] {
		res, err := engineNet(g, 404, eng).KSSP(sources, hybrid.Cor47(0.5))
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if !reflect.DeepEqual(oracle.Dist, res.Dist) {
			t.Errorf("KSSP estimates differ between legacy and %s", eng)
		}
		if oracle.Metrics != res.Metrics {
			t.Errorf("KSSP metrics differ: legacy %+v %s %+v", oracle.Metrics, eng, res.Metrics)
		}
	}
}

func TestEnginesAgreeTokenRouting(t *testing.T) {
	g := hybrid.GridGraph(6, 6)
	n := g.N()
	specs := make([]hybrid.RoutingSpec, n)
	for v := range specs {
		next := (v + 1) % n
		prev := (v - 1 + n) % n
		specs[v] = hybrid.RoutingSpec{
			Send:   []hybrid.RoutingToken{{Label: hybrid.RoutingLabel{S: v, R: next}, Value: int64(v)}},
			Expect: []hybrid.RoutingLabel{{S: prev, R: v}},
			InS:    true,
			InR:    true,
			KS:     1,
			KR:     1,
			PS:     1,
			PR:     1,
		}
	}
	oracleOut, oracleM, err := engineNet(g, 505, hybrid.EngineLegacy).TokenRouting(specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range allEngines[1:] {
		out, m, err := engineNet(g, 505, eng).TokenRouting(specs)
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if !reflect.DeepEqual(oracleOut, out) {
			t.Errorf("routed tokens differ between legacy and %s", eng)
		}
		if oracleM != m {
			t.Errorf("routing metrics differ: legacy %+v %s %+v", oracleM, eng, m)
		}
	}
}

// TestEnginesAgreeKSSPRealMM covers the real-message CLIQUE simulation
// path at facade level: every simulated round routes actual tokens through
// a RouteMachine on EngineStep, and all engines must stay byte-identical.
func TestEnginesAgreeKSSPRealMM(t *testing.T) {
	g := hybrid.GridGraph(5, 5)
	sources := []int{0, 24}
	oracle, err := engineNet(g, 606, hybrid.EngineLegacy).KSSP(sources, hybrid.KSSPRealMM(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range allEngines[1:] {
		res, err := engineNet(g, 606, eng).KSSP(sources, hybrid.KSSPRealMM(2))
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if !reflect.DeepEqual(oracle.Dist, res.Dist) {
			t.Errorf("RealMM KSSP estimates differ between legacy and %s", eng)
		}
		if oracle.Metrics != res.Metrics {
			t.Errorf("RealMM KSSP metrics differ: legacy %+v %s %+v", oracle.Metrics, eng, res.Metrics)
		}
	}
}

// TestEnginesAgreeWeightedDiameterApprox covers the weighted footnote-6
// pipeline (SSSP + eccentricity doubling) across the engine matrix.
func TestEnginesAgreeWeightedDiameterApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := hybrid.WithRandomWeights(hybrid.GridGraph(5, 5), 6, rng)
	oracle, err := engineNet(g, 808, hybrid.EngineLegacy).WeightedDiameterApprox()
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range allEngines[1:] {
		res, err := engineNet(g, 808, eng).WeightedDiameterApprox()
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if oracle.Estimate != res.Estimate {
			t.Errorf("weighted diameter estimates differ: %d vs %d (%s)", oracle.Estimate, res.Estimate, eng)
		}
		if oracle.Metrics != res.Metrics {
			t.Errorf("weighted diameter metrics differ between legacy and %s", eng)
		}
	}
}
