package hybrid_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	hybrid "repro"
	"repro/internal/sim"
)

// TestFacadeStepNative asserts that every facade algorithm is step-native
// on EngineStep: none of them may fall back to the goroutine-backed
// adapter (sim.AdapterBuilds counts adapter constructions process-wide).
// A regression here means an algorithm lost its machine form and silently
// gave up the step engine's barrier win.
func TestFacadeStepNative(t *testing.T) {
	g := hybrid.GridGraph(6, 6)
	net := hybrid.New(g, hybrid.WithSeed(1), hybrid.WithEngine(hybrid.EngineStep))
	specs := make([]hybrid.RoutingSpec, g.N())
	for v := range specs {
		next := (v + 1) % g.N()
		specs[v] = hybrid.RoutingSpec{
			Send:   []hybrid.RoutingToken{{Label: hybrid.RoutingLabel{S: v, R: next}, Value: int64(v)}},
			Expect: []hybrid.RoutingLabel{{S: (v - 1 + g.N()) % g.N(), R: v}},
			InS:    true, InR: true, KS: 1, KR: 1, PS: 1, PR: 1,
		}
	}
	calls := []struct {
		name string
		run  func() error
	}{
		{"APSP", func() error { _, err := net.APSP(); return err }},
		{"APSPBaseline", func() error { _, err := net.APSPBaseline(); return err }},
		{"APSPLocalOnly", func() error { _, err := net.APSPLocalOnly(10); return err }},
		{"SSSP", func() error { _, err := net.SSSP(0); return err }},
		{"KSSP/Cor46", func() error { _, err := net.KSSP([]int{0, 35}, hybrid.Cor46(0.5)); return err }},
		{"KSSP/RealMM", func() error { _, err := net.KSSP([]int{0, 35}, hybrid.KSSPRealMM(2)); return err }},
		{"Diameter/Cor52", func() error { _, err := net.Diameter(hybrid.DiamCor52(0.5)); return err }},
		{"Diameter/RealMM", func() error { _, err := net.Diameter(hybrid.DiamRealMM(2)); return err }},
		{"WeightedDiameterApprox", func() error { _, err := net.WeightedDiameterApprox(); return err }},
		{"TokenRouting", func() error { _, _, err := net.TokenRouting(specs); return err }},
	}
	for _, c := range calls {
		before := sim.AdapterBuilds()
		if err := c.run(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if after := sim.AdapterBuilds(); after != before {
			t.Errorf("%s: fell back to the goroutine adapter (%d adapter builds)", c.name, after-before)
		}
	}
}

// TestFacadeContextCancel pins cooperative cancellation on every engine: a
// pre-cancelled context aborts the run promptly with an error satisfying
// errors.Is(err, context.Canceled).
func TestFacadeContextCancel(t *testing.T) {
	g := hybrid.GridGraph(8, 8)
	for _, eng := range allEngines {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		net := hybrid.New(g, hybrid.WithSeed(1), hybrid.WithEngine(eng), hybrid.WithContext(ctx))
		_, err := net.APSP()
		if err == nil {
			t.Fatalf("%s: cancelled run returned no error", eng)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled in chain", eng, err)
		}
	}
}

// TestFacadeContextMidRunCancel cancels from the progress hook, proving
// the hook runs and cancellation is honored mid-run rather than only at
// startup.
func TestFacadeContextMidRunCancel(t *testing.T) {
	g := hybrid.GridGraph(8, 8)
	for _, eng := range allEngines {
		ctx, cancel := context.WithCancel(context.Background())
		stopAt := 25
		net := hybrid.New(g, hybrid.WithSeed(1), hybrid.WithEngine(eng),
			hybrid.WithContext(ctx),
			hybrid.WithProgress(func(round int) {
				if round == stopAt {
					cancel()
				}
			}))
		_, err := net.APSP()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled in chain", eng, err)
		}
		cancel()
	}
}

// TestFacadeProgressHook pins the per-round hook contract on every engine:
// called once per round with 1..Metrics.Rounds... (the final generation
// that retires the last nodes may add one extra tick).
func TestFacadeProgressHook(t *testing.T) {
	g := hybrid.PathGraph(20)
	for _, eng := range allEngines {
		var rounds []int
		net := hybrid.New(g, hybrid.WithSeed(2), hybrid.WithEngine(eng),
			hybrid.WithProgress(func(r int) { rounds = append(rounds, r) }))
		res, err := net.APSPLocalOnly(19)
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if len(rounds) == 0 {
			t.Fatalf("%s: progress hook never called", eng)
		}
		for i, r := range rounds {
			if r != i+1 {
				t.Fatalf("%s: hook sequence broken at %d: got %d", eng, i, r)
			}
		}
		if last := rounds[len(rounds)-1]; last < res.Metrics.Rounds {
			t.Errorf("%s: last hook round %d < Metrics.Rounds %d", eng, last, res.Metrics.Rounds)
		}
	}
}

// TestRoutingSessionReuseAcrossCalls pins the Network-level run context:
// repeated APSP calls on one Network reuse the cached routing session, so
// the second call takes strictly fewer rounds while producing the
// identical distance matrix — on every engine, with identical counts
// across engines.
func TestRoutingSessionReuseAcrossCalls(t *testing.T) {
	g := hybrid.GridGraph(7, 7)
	var wantFirst, wantSecond int
	for ei, eng := range allEngines {
		net := hybrid.New(g, hybrid.WithSeed(3), hybrid.WithEngine(eng))
		first, err := net.APSP()
		if err != nil {
			t.Fatalf("%s first: %v", eng, err)
		}
		second, err := net.APSP()
		if err != nil {
			t.Fatalf("%s second: %v", eng, err)
		}
		if !reflect.DeepEqual(first.Dist, second.Dist) {
			t.Errorf("%s: session reuse changed the distance matrix", eng)
		}
		if second.Metrics.Rounds >= first.Metrics.Rounds {
			t.Errorf("%s: session cache saved nothing: %d rounds then %d",
				eng, first.Metrics.Rounds, second.Metrics.Rounds)
		}
		if ei == 0 {
			wantFirst, wantSecond = first.Metrics.Rounds, second.Metrics.Rounds
			t.Logf("rounds: first call %d, cached second call %d (saved %d)",
				wantFirst, wantSecond, wantFirst-wantSecond)
		} else if first.Metrics.Rounds != wantFirst || second.Metrics.Rounds != wantSecond {
			t.Errorf("%s: cached round counts diverge across engines: (%d,%d) vs (%d,%d)",
				eng, first.Metrics.Rounds, second.Metrics.Rounds, wantFirst, wantSecond)
		}
	}
}

// TestDeprecatedShimsMatchSpecValues proves every old enum+eps call
// produces byte-identical results to its spec-value replacement.
func TestDeprecatedShimsMatchSpecValues(t *testing.T) {
	g := hybrid.GridGraph(6, 6)
	sources := []int{0, 21, 35}
	ksspPairs := []struct {
		variant hybrid.KSSPVariant
		eps     float64
		spec    hybrid.KSSPSpec
	}{
		{hybrid.VariantCor46, 0.5, hybrid.Cor46(0.5)},
		{hybrid.VariantCor47, 0.25, hybrid.Cor47(0.25)},
		{hybrid.VariantCor48, 0.5, hybrid.Cor48(0.5)},
		{hybrid.VariantRealMM, 0.5, hybrid.KSSPRealMM(2)},
		{hybrid.VariantCor46, 0, hybrid.Cor46(0)}, // old eps<=0 defaulting
	}
	for _, p := range ksspPairs {
		old, err := hybrid.New(g, hybrid.WithSeed(7)).KSSPByVariant(sources, p.variant, p.eps)
		if err != nil {
			t.Fatalf("variant %d: %v", p.variant, err)
		}
		neu, err := hybrid.New(g, hybrid.WithSeed(7)).KSSP(sources, p.spec)
		if err != nil {
			t.Fatalf("%s: %v", p.spec.Name(), err)
		}
		if !reflect.DeepEqual(old.Dist, neu.Dist) || old.Metrics != neu.Metrics {
			t.Errorf("variant %d and %s diverge", p.variant, p.spec.Name())
		}
		if old.Algorithm != neu.Algorithm {
			t.Errorf("shim result tagged %q, spec value %q", old.Algorithm, neu.Algorithm)
		}
	}

	diamPairs := []struct {
		variant hybrid.DiameterVariant
		eps     float64
		spec    hybrid.DiameterSpec
	}{
		{hybrid.DiameterCor52, 0.5, hybrid.DiamCor52(0.5)},
		{hybrid.DiameterCor53, 0.25, hybrid.DiamCor53(0.25)},
		{hybrid.DiameterRealMM, 0.5, hybrid.DiamRealMM(2)},
	}
	for _, p := range diamPairs {
		old, err := hybrid.New(g, hybrid.WithSeed(9)).DiameterByVariant(p.variant, p.eps)
		if err != nil {
			t.Fatalf("variant %d: %v", p.variant, err)
		}
		neu, err := hybrid.New(g, hybrid.WithSeed(9)).Diameter(p.spec)
		if err != nil {
			t.Fatalf("%s: %v", p.spec.Name(), err)
		}
		if old.Estimate != neu.Estimate || old.Metrics != neu.Metrics {
			t.Errorf("variant %d and %s diverge", p.variant, p.spec.Name())
		}
	}
	if _, err := hybrid.New(g).DiameterByVariant(hybrid.DiameterVariant(42), 0.5); err == nil {
		t.Error("unknown diameter variant accepted")
	}
}

// TestFacadeKSSPBadSource pins source validation on the spec-value path.
func TestFacadeKSSPBadSource(t *testing.T) {
	net := hybrid.New(hybrid.PathGraph(5))
	if _, err := net.KSSP([]int{-1}, hybrid.Cor46(0.5)); err == nil {
		t.Fatal("expected error for negative source")
	}
	if _, err := net.KSSP([]int{7}, hybrid.Cor46(0.5)); err == nil {
		t.Fatal("expected error for out-of-range source")
	}
}
