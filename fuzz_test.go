// Randomized cross-engine test harness: a seeded quick-check generator
// draws random graphs (grid / Erdős–Rényi / random-tree mixes, weighted
// and unweighted) and random algorithm specs, runs all three engines, and
// asserts byte-identical results and Metrics with EngineLegacy as the
// oracle — the property-based generalization of the hand-picked matrix in
// engines_test.go. FuzzEnginesAgree makes the same harness `go test
// -fuzz`-compatible: CI smokes the seed corpus on every run (the corpus
// entries execute as normal subtests) and nightly runs can explore deeper
// with -fuzz=FuzzEnginesAgree.
package hybrid_test

import (
	"math/rand"
	"reflect"
	"testing"

	hybrid "repro"
)

// randomInstance decodes the fuzz arguments into a concrete connected
// graph and returns it with a human-readable label.
func randomInstance(seed int64, graphKind, size uint8, weighted bool) (*hybrid.Graph, string) {
	n := 16 + int(size)%33 // 16..48 nodes: big enough for real skeletons, small enough to fuzz
	rng := rand.New(rand.NewSource(seed))
	var g *hybrid.Graph
	var label string
	switch graphKind % 4 {
	case 0:
		side := 4 + int(size)%3 // 4x4 .. 6x6
		g = hybrid.GridGraph(side, side)
		label = "grid"
	case 1:
		g = hybrid.GNPGraph(n, 0.08, rng)
		label = "gnp"
	case 2:
		g = hybrid.RandomTreeGraph(n, rng)
		label = "tree"
	default:
		g = hybrid.SparseGraph(n, 1.3, rng)
		label = "sparse"
	}
	if weighted {
		g = hybrid.WithRandomWeights(g, 1+int64(size)%9, rng)
		label += "-weighted"
	}
	return g, label
}

// checkEnginesAgree is the harness body: run the drawn algorithm on the
// drawn graph on every engine and require byte-identical results and
// Metrics, plus exactness against sequential ground truth where the
// algorithm is exact.
func checkEnginesAgree(t *testing.T, seed int64, graphKind, size, algo uint8, weighted bool) {
	t.Helper()
	// Diameter specs are defined on unweighted graphs only.
	if algo%5 == 4 {
		weighted = false
	}
	g, label := randomInstance(seed, graphKind, size, weighted)
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))

	// Parallel-grain draws: shard count (0 = autotune), step-batch width
	// (0 = whole-shard, -1 = autotune, >0 = work-stealing batches), and
	// dist worker-process count. Results must be independent of all three,
	// so the harness draws them per instance and holds every engine to the
	// legacy oracle regardless.
	shards := []int{0, 1, 2, 3, 7, 16}[rng.Intn(6)]
	stepBatch := []int{0, -1, 1, 5, 64}[rng.Intn(5)]
	workers := []int{1, 2, 3}[rng.Intn(3)]
	window := []int{1, 2, 4}[rng.Intn(3)]

	type outcome struct {
		result  interface{}
		metrics hybrid.Metrics
	}
	// The k-SSP sources are part of the instance, not of a run: draw them
	// once so every engine solves the identical problem.
	var sources []int
	if algo%5 == 3 {
		k := 1 + int(size)%3
		seen := map[int]bool{}
		for len(sources) < k {
			s := rng.Intn(g.N())
			if !seen[s] {
				seen[s] = true
				sources = append(sources, s)
			}
		}
	}
	runOn := func(eng hybrid.Engine) outcome {
		net := hybrid.New(g, hybrid.WithSeed(seed), hybrid.WithEngine(eng),
			hybrid.WithShards(shards), hybrid.WithStepBatch(stepBatch),
			hybrid.WithWorkers(workers), hybrid.WithDistWindow(window))
		switch algo % 5 {
		case 0:
			res, err := net.APSP()
			if err != nil {
				t.Fatalf("%s %s apsp: %v", label, eng, err)
			}
			if eng == hybrid.EngineLegacy {
				if want := hybrid.ExactAPSP(g); !reflect.DeepEqual(res.Dist, want) {
					t.Errorf("%s: oracle APSP diverges from sequential ground truth", label)
				}
			}
			return outcome{res.Dist, res.Metrics}
		case 1:
			res, err := net.APSPBaseline()
			if err != nil {
				t.Fatalf("%s %s apsp-baseline: %v", label, eng, err)
			}
			return outcome{res.Dist, res.Metrics}
		case 2:
			src := int(size) % g.N()
			res, err := net.SSSP(src)
			if err != nil {
				t.Fatalf("%s %s sssp: %v", label, eng, err)
			}
			if eng == hybrid.EngineLegacy {
				if want := hybrid.Dijkstra(g, src); !reflect.DeepEqual(res.Dist, want) {
					t.Errorf("%s: oracle SSSP diverges from Dijkstra", label)
				}
			}
			return outcome{res.Dist, res.Metrics}
		case 3:
			res, err := net.KSSP(sources, hybrid.Cor47(0.5))
			if err != nil {
				t.Fatalf("%s %s kssp: %v", label, eng, err)
			}
			return outcome{res.Dist, res.Metrics}
		default:
			res, err := net.Diameter(hybrid.DiamCor52(0.5))
			if err != nil {
				t.Fatalf("%s %s diameter: %v", label, eng, err)
			}
			return outcome{res.Estimate, res.Metrics}
		}
	}

	oracle := runOn(hybrid.EngineLegacy)
	for _, eng := range allEngines[1:] {
		got := runOn(eng)
		if !reflect.DeepEqual(oracle.result, got.result) {
			t.Errorf("%s algo=%d: results differ between legacy and %s", label, algo%5, eng)
		}
		if oracle.metrics != got.metrics {
			t.Errorf("%s algo=%d: metrics differ: legacy %+v %s %+v", label, algo%5, oracle.metrics, eng, got.metrics)
		}
	}
}

// FuzzEnginesAgree is the go test -fuzz entry. The seed corpus covers
// every graph kind and algorithm at least once (run as plain subtests by
// `go test`, including CI's race step); the fuzzer mutates from there.
func FuzzEnginesAgree(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(4), uint8(0), false)        // grid, apsp
	f.Add(int64(2), uint8(1), uint8(9), uint8(1), false)        // gnp, apsp-baseline
	f.Add(int64(3), uint8(2), uint8(17), uint8(2), true)        // weighted tree, sssp
	f.Add(int64(4), uint8(3), uint8(6), uint8(3), false)        // sparse, kssp
	f.Add(int64(5), uint8(0), uint8(11), uint8(4), false)       // grid, diameter
	f.Add(int64(6), uint8(2), uint8(30), uint8(0), false)       // tree, apsp
	f.Add(int64(7), uint8(1), uint8(23), uint8(3), true)        // weighted gnp, kssp
	f.Add(int64(20200615), uint8(3), uint8(2), uint8(2), false) // sparse, sssp
	f.Fuzz(func(t *testing.T, seed int64, graphKind, size, algo uint8, weighted bool) {
		checkEnginesAgree(t, seed, graphKind, size, algo, weighted)
	})
}

// TestRandomizedEnginesAgree is the deterministic quick-check sweep: a
// seeded generator draws random instances across the full (graph, algo,
// weights) space so every `go test` run exercises the harness beyond the
// fuzz corpus. Iterations are trimmed under -short.
func TestRandomizedEnginesAgree(t *testing.T) {
	iters := 10
	if testing.Short() {
		iters = 3
	}
	rng := rand.New(rand.NewSource(20200615))
	for i := 0; i < iters; i++ {
		seed := rng.Int63()
		graphKind := uint8(rng.Intn(4))
		size := uint8(rng.Intn(256))
		algo := uint8(rng.Intn(5))
		weighted := rng.Intn(3) == 0
		t.Run("", func(t *testing.T) {
			checkEnginesAgree(t, seed, graphKind, size, algo, weighted)
		})
	}
}
