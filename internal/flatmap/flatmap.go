// Package flatmap provides the open-addressed flat hash containers used by
// the per-round hot loops of the protocol packages (routing, skeleton,
// helpers, ncc). The flood dedup sets and per-phase scratch maps are the
// protocols' hottest data structures — every record is checked once per
// neighbor arrival, and the containers are cleared and refilled to a
// similar size every phase — so a reusable flat table with a
// multiplicative hash beats the generic Go map by a large constant factor
// and, crucially, stops allocating after warm-up: Reset clears in place
// instead of reallocating, which is what makes steady-state rounds
// allocation-free (see ARCHITECTURE.md, "Memory discipline").
//
// # Determinism
//
// The engines' byte-identity discipline forbids any iteration order that
// depends on Go's randomized map seeds. These containers have no such
// randomness: probe positions are a pure function of the key, so the table
// layout — and therefore AppendKeys/AppendAll order — is a deterministic
// function of the insertion history. Callers that need a canonical order
// independent of history sort the drained keys (AppendSortedKeys); callers
// that only dedup or look up need no order at all.
//
// # Shrink on reset
//
// The tables are reused across phases, so one giant fill would otherwise
// pin its peak capacity for the session's whole lifetime. A table is
// reallocated smaller at Reset when it is at least shrinkMinCap slots AND
// its last fill used less than 1/shrinkDivisor of the capacity — both
// conditions are pure functions of (used, cap), so shrinking is
// deterministic and identical across engines and runs. Tables below
// shrinkMinCap never shrink: reallocating them saves nothing measurable,
// and the no-shrink floor keeps steady-state workloads allocation-free.
package flatmap

import "slices"

// Hash spreads a uint64 key over the table. The table index is taken from
// the LOW bits of the result, and packed keys (e.g. routing labels) vary
// mostly in their HIGH bits, so this must be a full-avalanche mix — a
// plain multiply would park every such key in one probe chain. splitmix64
// finalizer.
func Hash(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xBF58476D1CE4E5B9
	k ^= k >> 27
	k *= 0x94D049BB133111EB
	k ^= k >> 31
	return k
}

const (
	shrinkMinCap  = 4096
	shrinkDivisor = 8
	minTableSize  = 64
)

// shrunkSize returns the new capacity for a table of size cap whose last
// fill had `used` live entries, or 0 to keep the current table. The chosen
// power of two keeps a refill of the same size below 1/4 load, well under
// the 3/4 grow trigger, so alternating loads don't thrash.
func shrunkSize(used, cap int) int {
	if cap < shrinkMinCap || used*shrinkDivisor >= cap {
		return 0
	}
	size := minTableSize
	for size < used*4 {
		size <<= 1
	}
	return size
}

// Set is a linear-probe set of uint64 keys. Keys are stored offset by one
// so the zero word means "empty"; callers' keys must stay below 2^64-1 so
// the offset cannot wrap (every key in this module is either a node ID or
// a packed label below 2^58).
//
// The zero value is an empty set ready for use.
type Set struct {
	tab  []uint64
	used int
}

// Reset empties the set in place, keeping capacity unless the shrink
// policy fires (see the package comment).
func (s *Set) Reset() {
	if size := shrunkSize(s.used, len(s.tab)); size > 0 {
		s.tab = make([]uint64, size)
		s.used = 0
		return
	}
	if s.used > 0 {
		clear(s.tab)
		s.used = 0
	}
}

// Len reports the number of live keys.
func (s *Set) Len() int { return s.used }

// Cap reports the current table capacity (for tests and diagnostics).
func (s *Set) Cap() int { return len(s.tab) }

// Add inserts k and reports whether it was absent.
func (s *Set) Add(k uint64) bool {
	if s.used*4 >= len(s.tab)*3 {
		s.grow()
	}
	v := k + 1
	mask := uint64(len(s.tab) - 1)
	i := Hash(k) & mask
	for {
		switch s.tab[i] {
		case 0:
			s.tab[i] = v
			s.used++
			return true
		case v:
			return false
		}
		i = (i + 1) & mask
	}
}

// Has reports whether k is present.
func (s *Set) Has(k uint64) bool {
	if s.used == 0 {
		return false
	}
	v := k + 1
	mask := uint64(len(s.tab) - 1)
	i := Hash(k) & mask
	for {
		switch s.tab[i] {
		case 0:
			return false
		case v:
			return true
		}
		i = (i + 1) & mask
	}
}

// Del removes k and reports whether it was present, compacting the probe
// chain by backward shifting (no tombstones, so lookup cost never decays).
func (s *Set) Del(k uint64) bool {
	if s.used == 0 {
		return false
	}
	v := k + 1
	mask := uint64(len(s.tab) - 1)
	i := Hash(k) & mask
	for s.tab[i] != v {
		if s.tab[i] == 0 {
			return false
		}
		i = (i + 1) & mask
	}
	s.tab[i] = 0
	j := i
	for {
		j = (j + 1) & mask
		w := s.tab[j]
		if w == 0 {
			break
		}
		// Move w back into the hole iff its home slot is cyclically
		// outside (i, j] — the standard backward-shift condition.
		h := Hash(w-1) & mask
		if (j-h)&mask >= (j-i)&mask {
			s.tab[i] = w
			s.tab[j] = 0
			i = j
		}
	}
	s.used--
	return true
}

// AppendSortedKeys appends the live keys to dst in ascending order and
// returns the extended slice. The canonical drain for callers whose
// downstream logic must not depend on insertion history.
func (s *Set) AppendSortedKeys(dst []uint64) []uint64 {
	start := len(dst)
	for _, v := range s.tab {
		if v != 0 {
			dst = append(dst, v-1)
		}
	}
	slices.Sort(dst[start:])
	return dst
}

func (s *Set) grow() {
	old := s.tab
	size := minTableSize
	if len(old) > 0 {
		size = len(old) * 2
	}
	s.tab = make([]uint64, size)
	s.used = 0
	for _, v := range old {
		if v != 0 {
			s.reinsert(v)
		}
	}
}

func (s *Set) reinsert(v uint64) {
	mask := uint64(len(s.tab) - 1)
	i := Hash(v-1) & mask
	for s.tab[i] != 0 {
		i = (i + 1) & mask
	}
	s.tab[i] = v
	s.used++
}

// Map is a linear-probe map from uint64 keys to values of any type, with
// the same storage scheme and shrink policy as Set. The zero value is an
// empty map ready for use.
type Map[V any] struct {
	keys []uint64
	vals []V
	used int
}

// Reset empties the map in place, keeping capacity unless the shrink
// policy fires. Values are cleared so the map does not retain pointers
// from the previous fill.
func (m *Map[V]) Reset() {
	if size := shrunkSize(m.used, len(m.keys)); size > 0 {
		m.keys = make([]uint64, size)
		m.vals = make([]V, size)
		m.used = 0
		return
	}
	if m.used > 0 {
		clear(m.keys)
		clear(m.vals)
		m.used = 0
	}
}

// Len reports the number of live entries.
func (m *Map[V]) Len() int { return m.used }

// Cap reports the current table capacity (for tests and diagnostics).
func (m *Map[V]) Cap() int { return len(m.keys) }

// Put inserts or overwrites k.
func (m *Map[V]) Put(k uint64, val V) {
	if m.used*4 >= len(m.keys)*3 {
		m.grow()
	}
	v := k + 1
	mask := uint64(len(m.keys) - 1)
	i := Hash(k) & mask
	for {
		switch m.keys[i] {
		case 0:
			m.keys[i] = v
			m.vals[i] = val
			m.used++
			return
		case v:
			m.vals[i] = val
			return
		}
		i = (i + 1) & mask
	}
}

// Get looks k up.
func (m *Map[V]) Get(k uint64) (V, bool) {
	if m.used == 0 {
		var zero V
		return zero, false
	}
	v := k + 1
	mask := uint64(len(m.keys) - 1)
	i := Hash(k) & mask
	for {
		switch m.keys[i] {
		case 0:
			var zero V
			return zero, false
		case v:
			return m.vals[i], true
		}
		i = (i + 1) & mask
	}
}

// Has reports whether k is present without copying the value.
func (m *Map[V]) Has(k uint64) bool {
	if m.used == 0 {
		return false
	}
	v := k + 1
	mask := uint64(len(m.keys) - 1)
	i := Hash(k) & mask
	for {
		switch m.keys[i] {
		case 0:
			return false
		case v:
			return true
		}
		i = (i + 1) & mask
	}
}

// Del removes k and reports whether it was present (backward-shift
// compaction, like Set.Del). The vacated value slot is zeroed.
func (m *Map[V]) Del(k uint64) bool {
	if m.used == 0 {
		return false
	}
	v := k + 1
	mask := uint64(len(m.keys) - 1)
	i := Hash(k) & mask
	for m.keys[i] != v {
		if m.keys[i] == 0 {
			return false
		}
		i = (i + 1) & mask
	}
	var zero V
	m.keys[i] = 0
	m.vals[i] = zero
	j := i
	for {
		j = (j + 1) & mask
		w := m.keys[j]
		if w == 0 {
			break
		}
		h := Hash(w-1) & mask
		if (j-h)&mask >= (j-i)&mask {
			m.keys[i] = w
			m.vals[i] = m.vals[j]
			m.keys[j] = 0
			m.vals[j] = zero
			i = j
		}
	}
	m.used--
	return true
}

// AppendSortedKeys appends the live keys to dst in ascending order and
// returns the extended slice (see Set.AppendSortedKeys).
func (m *Map[V]) AppendSortedKeys(dst []uint64) []uint64 {
	start := len(dst)
	for _, v := range m.keys {
		if v != 0 {
			dst = append(dst, v-1)
		}
	}
	slices.Sort(dst[start:])
	return dst
}

func (m *Map[V]) grow() {
	oldK, oldV := m.keys, m.vals
	size := minTableSize
	if len(oldK) > 0 {
		size = len(oldK) * 2
	}
	m.keys = make([]uint64, size)
	m.vals = make([]V, size)
	m.used = 0
	for i, v := range oldK {
		if v != 0 {
			m.reinsertKV(v, oldV[i])
		}
	}
}

func (m *Map[V]) reinsertKV(v uint64, val V) {
	mask := uint64(len(m.keys) - 1)
	i := Hash(v-1) & mask
	for m.keys[i] != 0 {
		i = (i + 1) & mask
	}
	m.keys[i] = v
	m.vals[i] = val
	m.used++
}

// Triple is a 3-word composite key: ncc tokens are (A, B, C) int64
// triples whose fields hold arbitrary distances, so they cannot be packed
// into one uint64 the way routing labels can.
type Triple struct{ A, B, C int64 }

// TripleSet is a linear-probe set of Triples with the same grow/shrink
// policy as Set. There is no free sentinel in the key space, so occupancy
// is tracked in a parallel byte array. The zero value is ready for use.
type TripleSet struct {
	keys []Triple
	occ  []uint8
	used int
}

func hashTriple(t Triple) uint64 {
	h := Hash(uint64(t.A))
	h = Hash(h ^ uint64(t.B))
	return Hash(h ^ uint64(t.C))
}

// Reset empties the set in place, keeping capacity unless the shrink
// policy fires.
func (s *TripleSet) Reset() {
	if size := shrunkSize(s.used, len(s.keys)); size > 0 {
		s.keys = make([]Triple, size)
		s.occ = make([]uint8, size)
		s.used = 0
		return
	}
	if s.used > 0 {
		clear(s.keys)
		clear(s.occ)
		s.used = 0
	}
}

// Len reports the number of live triples.
func (s *TripleSet) Len() int { return s.used }

// Cap reports the current table capacity (for tests and diagnostics).
func (s *TripleSet) Cap() int { return len(s.keys) }

// Add inserts t and reports whether it was absent.
func (s *TripleSet) Add(t Triple) bool {
	if s.used*4 >= len(s.keys)*3 {
		s.grow()
	}
	mask := uint64(len(s.keys) - 1)
	i := hashTriple(t) & mask
	for s.occ[i] != 0 {
		if s.keys[i] == t {
			return false
		}
		i = (i + 1) & mask
	}
	s.keys[i] = t
	s.occ[i] = 1
	s.used++
	return true
}

// Has reports whether t is present.
func (s *TripleSet) Has(t Triple) bool {
	if s.used == 0 {
		return false
	}
	mask := uint64(len(s.keys) - 1)
	i := hashTriple(t) & mask
	for s.occ[i] != 0 {
		if s.keys[i] == t {
			return true
		}
		i = (i + 1) & mask
	}
	return false
}

// AppendAll appends the live triples to dst in table order — a
// deterministic function of the insertion history (see the package
// comment) — and returns the extended slice. Callers that need a
// canonical order sort the result.
func (s *TripleSet) AppendAll(dst []Triple) []Triple {
	for i, o := range s.occ {
		if o != 0 {
			dst = append(dst, s.keys[i])
		}
	}
	return dst
}

func (s *TripleSet) grow() {
	oldK, oldO := s.keys, s.occ
	size := minTableSize
	if len(oldK) > 0 {
		size = len(oldK) * 2
	}
	s.keys = make([]Triple, size)
	s.occ = make([]uint8, size)
	s.used = 0
	mask := uint64(size - 1)
	for i, o := range oldO {
		if o == 0 {
			continue
		}
		t := oldK[i]
		j := hashTriple(t) & mask
		for s.occ[j] != 0 {
			j = (j + 1) & mask
		}
		s.keys[j] = t
		s.occ[j] = 1
		s.used++
	}
}
