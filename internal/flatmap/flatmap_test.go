package flatmap

import (
	"math/rand"
	"testing"
)

// TestHashTableShrinkOnReset pins the shrink policy (moved here from
// internal/routing when the containers were generalized): a table blown up
// by one giant fill returns to a small capacity on the next reset, small
// tables never shrink, and steady-state loads near the table's capacity
// don't thrash between shrink and grow.
func TestHashTableShrinkOnReset(t *testing.T) {
	var s Set
	const big = 1 << 16
	for i := uint64(0); i < big; i++ {
		s.Add(i * 3)
	}
	peak := s.Cap()
	if peak < big {
		t.Fatalf("peak capacity %d below fill %d", peak, big)
	}
	// The reset right after the giant fill keeps capacity (the table was
	// genuinely full); the reset after the next small fill is what detects
	// the overprovisioning and shrinks.
	s.Reset()
	if s.Cap() != peak {
		t.Errorf("reset after a full table resized it: %d -> %d", peak, s.Cap())
	}
	for i := uint64(0); i < 1000; i++ {
		if !s.Add(i) {
			t.Fatalf("key %d reported present in an empty table", i)
		}
	}
	s.Reset()
	if s.Cap() >= peak {
		t.Errorf("reset after a small fill kept capacity %d (peak %d)", s.Cap(), peak)
	}
	if s.Cap() < minTableSize {
		t.Errorf("shrunk below the minimum table size: %d", s.Cap())
	}
	// The shrunk table still works and grows back on demand.
	for i := uint64(0); i < 1000; i++ {
		if !s.Add(i) {
			t.Fatalf("key %d reported present in the shrunk table", i)
		}
	}
	if s.Len() != 1000 {
		t.Fatalf("used = %d after 1000 inserts", s.Len())
	}

	// Deterministic policy: shrunkSize depends only on (used, cap).
	if got := shrunkSize(0, shrinkMinCap/2); got != 0 {
		t.Errorf("small table shrank: %d", got)
	}
	if got := shrunkSize(shrinkMinCap/shrinkDivisor, shrinkMinCap); got != 0 {
		t.Errorf("table at the occupancy threshold shrank: %d", got)
	}
	if got := shrunkSize(10, 1<<20); got == 0 || got > 1<<20/shrinkDivisor {
		t.Errorf("huge sparse table kept too much: %d", got)
	}

	// Steady state: a load that refills to the same size must not shrink
	// on every reset (the shrunk size admits the refill below the grow
	// trigger).
	var m Map[int64]
	for i := uint64(0); i < big; i++ {
		m.Put(i, int64(i))
	}
	peakM := m.Cap()
	m.Reset() // full: keeps capacity
	m.Put(7, 7)
	m.Reset() // sparse: shrinks both arrays
	if m.Cap() >= peakM {
		t.Errorf("map reset after a small fill kept capacity %d (peak %d)", m.Cap(), peakM)
	}
	shrunk := m.Cap()
	fill := shrunk / shrinkDivisor // just at the keep threshold
	for round := 0; round < 3; round++ {
		for i := 0; i < fill; i++ {
			m.Put(uint64(i), 1)
		}
		if m.Cap() != shrunk {
			t.Fatalf("round %d: steady-state load resized the table: %d -> %d", round, shrunk, m.Cap())
		}
		m.Reset()
		if m.Cap() != shrunk {
			t.Fatalf("round %d: steady-state reset resized the table: %d -> %d", round, shrunk, m.Cap())
		}
	}

	// Map shrinks both arrays together.
	if len(m.keys) != len(m.vals) {
		t.Errorf("keys and vals diverged: %d vs %d", len(m.keys), len(m.vals))
	}

	// TripleSet obeys the same policy.
	var ts TripleSet
	for i := int64(0); i < big; i++ {
		ts.Add(Triple{A: i, B: -i, C: i * 7})
	}
	peakT := ts.Cap()
	ts.Reset()
	ts.Add(Triple{A: 1})
	ts.Reset()
	if ts.Cap() >= peakT {
		t.Errorf("triple set reset after a small fill kept capacity %d (peak %d)", ts.Cap(), peakT)
	}
	if len(ts.keys) != len(ts.occ) {
		t.Errorf("triple keys and occupancy diverged: %d vs %d", len(ts.keys), len(ts.occ))
	}
}

// keyGen draws keys from a few adversarial distributions: dense small
// integers, high-bit-varying packed-label-like keys (the routing case the
// avalanche hash exists for), and keys engineered to collide in the low
// hash bits.
func keyGen(rng *rand.Rand, mode int) uint64 {
	switch mode % 3 {
	case 0:
		return uint64(rng.Intn(512))
	case 1:
		return uint64(rng.Intn(1<<14)) << 44 // label-style: entropy in high bits only
	default:
		// Collision-heavy: force identical low hash bits so probe chains
		// get long and backward-shift deletion is exercised hard.
		base := uint64(rng.Intn(64))
		for {
			k := uint64(rng.Int63())
			if Hash(k)&63 == Hash(base)&63 {
				return k
			}
		}
	}
}

// TestSetMatchesMapOracle drives Set through randomized
// add/has/delete/reset sequences mirrored into a built-in map and checks
// full agreement (membership, cardinality, drained contents) at every
// reset and at the end.
func TestSetMatchesMapOracle(t *testing.T) {
	for mode := 0; mode < 3; mode++ {
		rng := rand.New(rand.NewSource(int64(1000 + mode)))
		var s Set
		oracle := map[uint64]bool{}
		checkDrain := func() {
			t.Helper()
			if s.Len() != len(oracle) {
				t.Fatalf("mode %d: len %d, oracle %d", mode, s.Len(), len(oracle))
			}
			keys := s.AppendSortedKeys(nil)
			if len(keys) != len(oracle) {
				t.Fatalf("mode %d: drained %d keys, oracle %d", mode, len(keys), len(oracle))
			}
			for i, k := range keys {
				if !oracle[k] {
					t.Fatalf("mode %d: drained key %d not in oracle", mode, k)
				}
				if i > 0 && keys[i-1] >= k {
					t.Fatalf("mode %d: drain not sorted/unique at %d", mode, i)
				}
			}
		}
		for op := 0; op < 20000; op++ {
			k := keyGen(rng, mode)
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4:
				if got, want := s.Add(k), !oracle[k]; got != want {
					t.Fatalf("mode %d op %d: Add(%d) = %v, oracle %v", mode, op, k, got, want)
				}
				oracle[k] = true
			case 5, 6:
				if got, want := s.Has(k), oracle[k]; got != want {
					t.Fatalf("mode %d op %d: Has(%d) = %v, oracle %v", mode, op, k, got, want)
				}
			case 7, 8:
				if got, want := s.Del(k), oracle[k]; got != want {
					t.Fatalf("mode %d op %d: Del(%d) = %v, oracle %v", mode, op, k, got, want)
				}
				delete(oracle, k)
			default:
				if rng.Intn(50) == 0 { // rare: resets clear all progress
					checkDrain()
					s.Reset()
					oracle = map[uint64]bool{}
				}
			}
		}
		checkDrain()
	}
}

// TestMapMatchesMapOracle is the Map[V] twin of the set property test,
// additionally checking stored values through overwrites and deletions.
func TestMapMatchesMapOracle(t *testing.T) {
	for mode := 0; mode < 3; mode++ {
		rng := rand.New(rand.NewSource(int64(2000 + mode)))
		var m Map[int64]
		oracle := map[uint64]int64{}
		check := func() {
			t.Helper()
			if m.Len() != len(oracle) {
				t.Fatalf("mode %d: len %d, oracle %d", mode, m.Len(), len(oracle))
			}
			for _, k := range m.AppendSortedKeys(nil) {
				got, ok := m.Get(k)
				want, okO := oracle[k]
				if !ok || !okO || got != want {
					t.Fatalf("mode %d: Get(%d) = (%d,%v), oracle (%d,%v)", mode, k, got, ok, want, okO)
				}
			}
		}
		for op := 0; op < 20000; op++ {
			k := keyGen(rng, mode)
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4:
				v := rng.Int63()
				m.Put(k, v)
				oracle[k] = v
			case 5, 6:
				got, ok := m.Get(k)
				want, okO := oracle[k]
				if ok != okO || got != want {
					t.Fatalf("mode %d op %d: Get(%d) = (%d,%v), oracle (%d,%v)", mode, op, k, got, ok, want, okO)
				}
			case 7, 8:
				_, want := oracle[k]
				if got := m.Del(k); got != want {
					t.Fatalf("mode %d op %d: Del(%d) = %v, oracle %v", mode, op, k, got, want)
				}
				delete(oracle, k)
			default:
				if rng.Intn(50) == 0 {
					check()
					m.Reset()
					oracle = map[uint64]int64{}
				}
			}
		}
		check()
	}
}

// TestTripleSetMatchesMapOracle covers the 3-word-key set (no packing
// possible, parallel occupancy array) through grow and shrink transitions.
func TestTripleSetMatchesMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3000))
	var s TripleSet
	oracle := map[Triple]bool{}
	for op := 0; op < 30000; op++ {
		t3 := Triple{
			A: int64(rng.Intn(64)),
			B: int64(rng.Intn(64)) - 32,
			C: rng.Int63n(1 << 40),
		}
		switch rng.Intn(8) {
		case 0, 1, 2, 3, 4:
			if got, want := s.Add(t3), !oracle[t3]; got != want {
				t.Fatalf("op %d: Add(%v) = %v, oracle %v", op, t3, got, want)
			}
			oracle[t3] = true
		case 5, 6:
			if got, want := s.Has(t3), oracle[t3]; got != want {
				t.Fatalf("op %d: Has(%v) = %v, oracle %v", op, t3, got, want)
			}
		default:
			if rng.Intn(60) == 0 {
				if s.Len() != len(oracle) {
					t.Fatalf("op %d: len %d, oracle %d", op, s.Len(), len(oracle))
				}
				for _, k := range s.AppendAll(nil) {
					if !oracle[k] {
						t.Fatalf("op %d: drained %v not in oracle", op, k)
					}
				}
				s.Reset()
				oracle = map[Triple]bool{}
			}
		}
	}
	if s.Len() != len(oracle) {
		t.Fatalf("final len %d, oracle %d", s.Len(), len(oracle))
	}
}

// TestDrainOrderDeterministic pins the determinism contract the engines
// rely on: two tables fed the same insertion history drain identically,
// and the sorted drain is canonical regardless of history.
func TestDrainOrderDeterministic(t *testing.T) {
	keys := make([]uint64, 3000)
	rng := rand.New(rand.NewSource(77))
	for i := range keys {
		keys[i] = uint64(rng.Int63n(1 << 58))
	}
	var a, b Set
	for _, k := range keys {
		a.Add(k)
		b.Add(k)
	}
	da := a.AppendSortedKeys(nil)
	db := b.AppendSortedKeys(nil)
	if len(da) != len(db) {
		t.Fatalf("drain lengths diverged: %d vs %d", len(da), len(db))
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("drains diverged at %d: %d vs %d", i, da[i], db[i])
		}
	}
	// Reversed insertion history, same sorted drain.
	var c Set
	for i := len(keys) - 1; i >= 0; i-- {
		c.Add(keys[i])
	}
	dc := c.AppendSortedKeys(nil)
	for i := range da {
		if da[i] != dc[i] {
			t.Fatalf("sorted drain depends on insertion order at %d", i)
		}
	}
}

// TestZeroValueContainers checks that the zero values are usable and that
// lookups/deletes on empty tables are safe no-ops.
func TestZeroValueContainers(t *testing.T) {
	var s Set
	if s.Has(1) || s.Del(1) || s.Len() != 0 {
		t.Fatal("zero Set not empty-safe")
	}
	s.Reset()
	var m Map[[]int64]
	if _, ok := m.Get(1); ok || m.Del(1) || m.Has(1) {
		t.Fatal("zero Map not empty-safe")
	}
	m.Reset()
	m.Put(9, []int64{1, 2})
	if v, ok := m.Get(9); !ok || len(v) != 2 {
		t.Fatal("slice-valued Map lost its value")
	}
	m.Reset()
	if v, ok := m.Get(9); ok || v != nil {
		t.Fatal("Reset did not clear slice values")
	}
	var ts TripleSet
	if ts.Has(Triple{}) || ts.Len() != 0 {
		t.Fatal("zero TripleSet not empty-safe")
	}
	ts.Reset()
}

// FuzzFlatmap feeds an opcode tape to Set and Map side by side with
// built-in map oracles — the nightly fuzz job mutates tapes hunting for
// probe-chain states (grow boundaries, shifted deletions, shrink resets)
// the fixed property seeds miss.
func FuzzFlatmap(f *testing.F) {
	f.Add([]byte{0x00, 0x41, 0x82, 0xC3, 0x04, 0x45, 0x86, 0xC7})
	f.Add([]byte{0xFF, 0xFF, 0x00, 0x00, 0x81, 0x81, 0x42, 0x42, 0x13})
	f.Add([]byte("flatmap-differential"))
	f.Fuzz(func(t *testing.T, tape []byte) {
		var s Set
		var m Map[int64]
		sOracle := map[uint64]bool{}
		mOracle := map[uint64]int64{}
		for pos := 0; pos+1 < len(tape); pos += 2 {
			op, kb := tape[pos]>>6, tape[pos]&0x3F
			// Narrow key space (64 keys stretched over high bits) so
			// mutated tapes actually revisit keys; the stretch keeps the
			// avalanche path honest.
			k := uint64(kb) << 40
			val := int64(tape[pos+1])
			switch op {
			case 0:
				if got, want := s.Add(k), !sOracle[k]; got != want {
					t.Fatalf("Add(%d) = %v, oracle %v", k, got, want)
				}
				sOracle[k] = true
				m.Put(k, val)
				mOracle[k] = val
			case 1:
				if got, want := s.Has(k), sOracle[k]; got != want {
					t.Fatalf("Has(%d) = %v, oracle %v", k, got, want)
				}
				got, ok := m.Get(k)
				want, okO := mOracle[k]
				if ok != okO || got != want {
					t.Fatalf("Get(%d) = (%d,%v), oracle (%d,%v)", k, got, ok, want, okO)
				}
			case 2:
				if got, want := s.Del(k), sOracle[k]; got != want {
					t.Fatalf("Del(%d) = %v, oracle %v", k, got, want)
				}
				delete(sOracle, k)
				_, want := mOracle[k]
				if got := m.Del(k); got != want {
					t.Fatalf("map Del(%d) = %v, oracle %v", k, got, want)
				}
				delete(mOracle, k)
			default:
				if val < 16 { // occasional reset
					s.Reset()
					m.Reset()
					sOracle = map[uint64]bool{}
					mOracle = map[uint64]int64{}
				}
			}
			if s.Len() != len(sOracle) || m.Len() != len(mOracle) {
				t.Fatalf("cardinality diverged: set %d/%d, map %d/%d",
					s.Len(), len(sOracle), m.Len(), len(mOracle))
			}
		}
		for _, k := range s.AppendSortedKeys(nil) {
			if !sOracle[k] {
				t.Fatalf("drained key %d not in oracle", k)
			}
		}
		for _, k := range m.AppendSortedKeys(nil) {
			got, _ := m.Get(k)
			if want, ok := mOracle[k]; !ok || got != want {
				t.Fatalf("drained entry %d=%d, oracle (%d,%v)", k, got, want, ok)
			}
		}
	})
}
