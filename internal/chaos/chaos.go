// Package chaos is the stack-wide fault injector: one seeded, scriptable,
// mutex-protected Plan that can hurt every layer of the serving stack at
// once — drop/delay/kill dist frames (via the embedded dist.Faults),
// inject handler latency, connection resets, and panics into the HTTP
// serving layer, force table rebuilds to fail, and tear or fail cache
// writes through the persist FS seam.
//
// A Plan is wired in three places, none of which import this package:
//
//   - dist: pass Plan.Dist() as Options.Faults (or hybrid.WithDistOptions)
//   - serve: pass the Plan itself to Server.SetChaos — Plan satisfies
//     serve.ChaosHook structurally
//   - persist: install Plan.FS() with persist.SetFS
//
// Stats() reports what actually fired, merging the dist counters into one
// ChaosStats shape, so a soak harness can cross-check observed symptoms
// (429s, 500s, resets, cold rebuilds) against the injected causes.
// Randomized-but-reproducible plans come from Draw: the same seed draws
// the same plan, so a failing soak iteration is replayable from its seed
// alone.
package chaos

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/persist"
)

// DistFaults re-exports the dist-layer fault plan, so chaos-aware callers
// need one import for the whole stack's fault surface.
type DistFaults = dist.Faults

// DistStats re-exports the dist-layer fault counters.
type DistStats = dist.FaultStats

// ErrInjectedRebuild is the error a forced rebuild failure surfaces:
// serve.Reload reports it (wrapped) and enters degraded mode.
var ErrInjectedRebuild = errors.New("chaos: injected rebuild failure")

// ErrInjectedWrite is the base error of injected FS write/rename/sync
// failures.
var ErrInjectedWrite = errors.New("chaos: injected filesystem failure")

// httpRule is one scripted HTTP-layer fault: requests whose URL path
// contains pathSub suffer the action until remaining hits zero.
type httpRule struct {
	pathSub   string
	remaining int
	delay     time.Duration
	reset     bool
	panics    bool
}

// fsKind enumerates the persist-layer fault flavors.
type fsKind int

const (
	fsShortWrite fsKind = iota
	fsFailWrite
	fsFailRename
	fsFailSync
)

// fsRule is one scripted filesystem fault: operations on paths containing
// pathSub suffer the fault until remaining hits zero.
type fsRule struct {
	kind      fsKind
	pathSub   string
	keep      int // bytes actually written for fsShortWrite
	remaining int
}

// ChaosStats reports what a plan actually injected, across every layer.
// The Dist sub-struct is the dist.Faults counters verbatim, so existing
// dist fault tests and stack-wide plans share one reporting shape.
type ChaosStats struct {
	Dist DistStats

	HTTPDelays int
	Resets     int
	Panics     int

	RebuildFails int

	ShortWrites   int
	FailedWrites  int
	FailedRenames int
	FailedSyncs   int
}

// Total is the number of faults that fired across all layers (respawns
// are a recovery action, not a fault, and are not counted).
func (s ChaosStats) Total() int {
	return s.Dist.Dropped + s.Dist.Delayed + s.Dist.Killed +
		s.HTTPDelays + s.Resets + s.Panics + s.RebuildFails +
		s.ShortWrites + s.FailedWrites + s.FailedRenames + s.FailedSyncs
}

// Plan is a stack-wide scripted fault plan. The zero value (and a nil
// *Plan) injects nothing; builders are chainable:
//
//	chaos.NewPlan().
//		KillWorker(0, 7).
//		DelayRequests("/distance", 5*time.Millisecond, 3).
//		FailRebuilds(1).
//		ShortWrites(".hybc", 10, 1)
//
// All methods are safe for concurrent use: the serving layer consults the
// plan from parallel request goroutines while the coordinator consults
// the embedded dist plan from parallel shard goroutines.
type Plan struct {
	mu   sync.Mutex
	dist *DistFaults

	httpRules    []httpRule
	rebuildFails int
	fsRules      []fsRule

	httpDelays    int
	resets        int
	panics        int
	rebuildsFired int
	shortWrites   int
	failedWrites  int
	failedRenames int
	failedSyncs   int
}

// NewPlan returns an empty plan.
func NewPlan() *Plan { return &Plan{dist: dist.NewFaults()} }

// Dist exposes the embedded dist-layer plan for dist.Options.Faults.
// Safe on a nil plan (returns nil, which dist treats as no faults).
func (p *Plan) Dist() *DistFaults {
	if p == nil {
		return nil
	}
	return p.dist
}

// DropFrames forwards to dist.Faults.DropFrames: suppress the next count
// request frames to shard at round.
func (p *Plan) DropFrames(shard, round, count int) *Plan {
	p.dist.DropFrames(shard, round, count)
	return p
}

// DelayFrame forwards to dist.Faults.DelayFrame.
func (p *Plan) DelayFrame(shard, round int, d time.Duration) *Plan {
	p.dist.DelayFrame(shard, round, d)
	return p
}

// KillWorker forwards to dist.Faults.KillWorker.
func (p *Plan) KillWorker(shard, round int) *Plan {
	p.dist.KillWorker(shard, round)
	return p
}

// DelayRequests injects d of handler latency into the next count HTTP
// requests whose path contains pathSub ("" matches every path).
func (p *Plan) DelayRequests(pathSub string, d time.Duration, count int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.httpRules = append(p.httpRules, httpRule{pathSub: pathSub, remaining: count, delay: d})
	return p
}

// ResetRequests tears down the connection of the next count HTTP requests
// whose path contains pathSub, mid-response, without a valid reply.
func (p *Plan) ResetRequests(pathSub string, count int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.httpRules = append(p.httpRules, httpRule{pathSub: pathSub, remaining: count, reset: true})
	return p
}

// PanicRequests makes the handler panic on the next count HTTP requests
// whose path contains pathSub, exercising the recovery middleware.
func (p *Plan) PanicRequests(pathSub string, count int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.httpRules = append(p.httpRules, httpRule{pathSub: pathSub, remaining: count, panics: true})
	return p
}

// FailRebuilds forces the next count table rebuilds (serve.Reload) to
// fail with ErrInjectedRebuild, driving the server into degraded mode.
func (p *Plan) FailRebuilds(count int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rebuildFails += count
	return p
}

// ShortWrites tears the next count cache writes to paths containing
// pathSub: only the first keep bytes reach the (real) file, and the write
// still reports success — the torn file is only caught by the integrity
// header at load time.
func (p *Plan) ShortWrites(pathSub string, keep, count int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fsRules = append(p.fsRules, fsRule{kind: fsShortWrite, pathSub: pathSub, keep: keep, remaining: count})
	return p
}

// FailWrites fails the next count cache writes to paths containing
// pathSub with ErrInjectedWrite.
func (p *Plan) FailWrites(pathSub string, count int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fsRules = append(p.fsRules, fsRule{kind: fsFailWrite, pathSub: pathSub, remaining: count})
	return p
}

// FailRenames fails the next count cache-file renames on paths containing
// pathSub with ErrInjectedWrite.
func (p *Plan) FailRenames(pathSub string, count int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fsRules = append(p.fsRules, fsRule{kind: fsFailRename, pathSub: pathSub, remaining: count})
	return p
}

// FailSyncs fails the next count directory syncs on paths containing
// pathSub with ErrInjectedWrite.
func (p *Plan) FailSyncs(pathSub string, count int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fsRules = append(p.fsRules, fsRule{kind: fsFailSync, pathSub: pathSub, remaining: count})
	return p
}

// HTTPFault is consulted by the serving layer once per request (it
// satisfies serve.ChaosHook structurally). It consumes the matching rules
// and reports the injected latency and whether the connection must be
// reset or the handler must panic. Safe on a nil plan.
func (p *Plan) HTTPFault(path string) (delay time.Duration, reset, panics bool) {
	if p == nil {
		return 0, false, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.httpRules {
		r := &p.httpRules[i]
		if r.remaining == 0 || !strings.Contains(path, r.pathSub) {
			continue
		}
		r.remaining--
		if r.delay > 0 {
			delay += r.delay
			p.httpDelays++
		}
		if r.reset {
			reset = true
			p.resets++
		}
		if r.panics {
			panics = true
			p.panics++
		}
	}
	return delay, reset, panics
}

// RebuildFault is consulted by serve.Reload before running the real
// rebuild; a non-nil return aborts the rebuild with that error. Safe on a
// nil plan.
func (p *Plan) RebuildFault() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rebuildFails > 0 {
		p.rebuildFails--
		p.rebuildsFired++
		return ErrInjectedRebuild
	}
	return nil
}

// onFS consumes the first FS rule matching (kind, path) and reports
// whether it fired, with the short-write keep count. Safe on a nil plan.
func (p *Plan) onFS(kind fsKind, path string) (fired bool, keep int) {
	if p == nil {
		return false, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.fsRules {
		r := &p.fsRules[i]
		if r.remaining == 0 || r.kind != kind || !strings.Contains(path, r.pathSub) {
			continue
		}
		r.remaining--
		switch kind {
		case fsShortWrite:
			p.shortWrites++
		case fsFailWrite:
			p.failedWrites++
		case fsFailRename:
			p.failedRenames++
		case fsFailSync:
			p.failedSyncs++
		}
		return true, r.keep
	}
	return false, 0
}

// FS returns a persist.FS that applies the plan's filesystem faults on
// top of the real filesystem; install it with persist.SetFS.
func (p *Plan) FS() persist.FS { return FaultFS{Plan: p} }

// Stats snapshots what the plan has injected so far, all layers merged.
// Safe on a nil plan.
func (p *Plan) Stats() ChaosStats {
	if p == nil {
		return ChaosStats{}
	}
	p.mu.Lock()
	s := ChaosStats{
		HTTPDelays:    p.httpDelays,
		Resets:        p.resets,
		Panics:        p.panics,
		RebuildFails:  p.rebuildsFired,
		ShortWrites:   p.shortWrites,
		FailedWrites:  p.failedWrites,
		FailedRenames: p.failedRenames,
		FailedSyncs:   p.failedSyncs,
	}
	p.mu.Unlock()
	s.Dist = p.dist.Stats() // dist has its own lock; don't hold both
	return s
}

// Space bounds what Draw may put into a random plan. Zero fields disable
// that fault class, so a harness can scope chaos to the layers a given
// iteration exercises.
type Space struct {
	// Dist-layer faults (need Shards/Rounds > 0 to draw any).
	Shards    int // workers in the run, for shard draws
	Rounds    int // upper bound for round draws
	MaxDrops  int
	MaxDelays int
	MaxKills  int

	// HTTP-layer faults.
	HTTPPaths     []string // candidate path substrings, e.g. {"/distance", "/route"}
	MaxHTTPDelays int
	MaxHTTPDelay  time.Duration // per-rule delay cap (default 2ms)
	MaxResets     int
	MaxPanics     int

	// Rebuild + persist faults.
	MaxRebuildFails int
	CacheSub        string // path substring for FS rules, e.g. ".hybc"
	MaxShortWrites  int
	MaxFailedWrites int
	MaxFailedSyncs  int
}

// Draw builds a random plan within sp's bounds from rng. Every count is
// uniform in [0, max]; the same seeded rng draws the same plan, so a soak
// failure is reproducible from its seed.
func Draw(rng *rand.Rand, sp Space) *Plan {
	p := NewPlan()
	maxDelay := sp.MaxHTTPDelay
	if maxDelay <= 0 {
		maxDelay = 2 * time.Millisecond
	}
	if sp.Shards > 0 && sp.Rounds > 0 {
		for i := rng.Intn(sp.MaxDrops + 1); i > 0; i-- {
			p.DropFrames(rng.Intn(sp.Shards), rng.Intn(sp.Rounds), 1+rng.Intn(2))
		}
		for i := rng.Intn(sp.MaxDelays + 1); i > 0; i-- {
			p.DelayFrame(rng.Intn(sp.Shards), rng.Intn(sp.Rounds), time.Duration(1+rng.Intn(int(maxDelay))))
		}
		for i := rng.Intn(sp.MaxKills + 1); i > 0; i-- {
			p.KillWorker(rng.Intn(sp.Shards), rng.Intn(sp.Rounds))
		}
	}
	if len(sp.HTTPPaths) > 0 {
		path := func() string { return sp.HTTPPaths[rng.Intn(len(sp.HTTPPaths))] }
		for i := rng.Intn(sp.MaxHTTPDelays + 1); i > 0; i-- {
			p.DelayRequests(path(), time.Duration(1+rng.Intn(int(maxDelay))), 1+rng.Intn(3))
		}
		for i := rng.Intn(sp.MaxResets + 1); i > 0; i-- {
			p.ResetRequests(path(), 1+rng.Intn(2))
		}
		for i := rng.Intn(sp.MaxPanics + 1); i > 0; i-- {
			p.PanicRequests(path(), 1+rng.Intn(2))
		}
	}
	if n := rng.Intn(sp.MaxRebuildFails + 1); n > 0 {
		p.FailRebuilds(n)
	}
	if sp.CacheSub != "" {
		for i := rng.Intn(sp.MaxShortWrites + 1); i > 0; i-- {
			p.ShortWrites(sp.CacheSub, rng.Intn(64), 1)
		}
		for i := rng.Intn(sp.MaxFailedWrites + 1); i > 0; i-- {
			p.FailWrites(sp.CacheSub, 1)
		}
		for i := rng.Intn(sp.MaxFailedSyncs + 1); i > 0; i-- {
			p.FailSyncs(sp.CacheSub, 1)
		}
	}
	return p
}
