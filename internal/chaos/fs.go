package chaos

import (
	"fmt"
	"os"

	"repro/internal/persist"
)

// FaultFS is a persist.FS that applies a Plan's filesystem faults on top
// of the real filesystem (persist.OS). Install with persist.SetFS:
//
//	restore := persist.SetFS(plan.FS())
//	defer restore()
//
// A short write really writes the truncated prefix and reports success —
// exactly what a crash mid-write leaves behind — so the cache file on
// disk is torn and only the persist integrity header catches it at load.
type FaultFS struct {
	Plan *Plan
	// Inner overrides the backing FS; nil means persist.OS{}.
	Inner persist.FS
}

func (f FaultFS) inner() persist.FS {
	if f.Inner != nil {
		return f.Inner
	}
	return persist.OS{}
}

// MkdirAll implements persist.FS (never faulted: directory creation
// failures are indistinguishable from bad config, not interesting chaos).
func (f FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.inner().MkdirAll(path, perm)
}

// WriteFileSync implements persist.FS with injected short and failed
// writes.
func (f FaultFS) WriteFileSync(path string, data []byte, perm os.FileMode) error {
	if fired, _ := f.Plan.onFS(fsFailWrite, path); fired {
		return fmt.Errorf("%w: write %s", ErrInjectedWrite, path)
	}
	if fired, keep := f.Plan.onFS(fsShortWrite, path); fired {
		if keep > len(data) {
			keep = len(data)
		}
		return f.inner().WriteFileSync(path, data[:keep], perm)
	}
	return f.inner().WriteFileSync(path, data, perm)
}

// Rename implements persist.FS with injected rename failures.
func (f FaultFS) Rename(oldpath, newpath string) error {
	if fired, _ := f.Plan.onFS(fsFailRename, newpath); fired {
		return fmt.Errorf("%w: rename %s", ErrInjectedWrite, newpath)
	}
	return f.inner().Rename(oldpath, newpath)
}

// SyncDir implements persist.FS with injected directory-sync failures.
func (f FaultFS) SyncDir(path string) error {
	if fired, _ := f.Plan.onFS(fsFailSync, path); fired {
		return fmt.Errorf("%w: syncdir %s", ErrInjectedWrite, path)
	}
	return f.inner().SyncDir(path)
}

// Remove implements persist.FS (never faulted).
func (f FaultFS) Remove(path string) error { return f.inner().Remove(path) }
