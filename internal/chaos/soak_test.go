// The chaos soak: randomized, seeded fault plans drawn from a bounded
// space are run against the FULL build-serve-reload-query loop — a dist
// engine build under frame drops/delays/kills, a cache save through the
// fault-injected FS seam, a real net/http server with the resilience
// chain, concurrent traffic, mid-traffic reloads (some of which are
// scripted to fail), and a graceful drain — asserting the availability
// invariants end to end:
//
//   - every well-formed (200) answer is byte-identical to the fault-free
//     oracle, whatever generation served it;
//   - the only other statuses are the honest ones: 429 with Retry-After
//     (load shed), 503 with the deadline body (request timeout), 500 with
//     the recovery body (injected panic), or a transport error (injected
//     reset);
//   - a failed rebuild leaves the server degraded but ANSWERING from the
//     last-good tables, and the next successful reload clears it;
//   - shutdown drains cleanly (no deadlock — the test itself completing
//     under `go test`'s timeout is the deadlock check).
//
// Every plan is a pure function of its seed, so a failure is reproducible
// by name. The default run sweeps a fixed handful of seeds (fast enough
// for tier-1, including -race); the nightly job sets CHAOS_SOAK_BUDGET to
// a duration to loop fresh random seeds until the budget is spent,
// appending any failing seed to the CHAOS_SOAK_ARTIFACT file so CI can
// upload it.
package chaos_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	hybrid "repro"
	"repro/internal/chaos"
	"repro/internal/dist"
	"repro/internal/persist"
	"repro/internal/serve"
)

// soakSpace bounds the random plans: small enough that every fault class
// is recoverable by design (kills within the respawn budget, delays far
// below the request deadline), large enough that most seeds fire faults
// in several layers at once.
func soakSpace(rounds int) chaos.Space {
	return chaos.Space{
		Shards:    2,
		Rounds:    rounds,
		MaxDrops:  2,
		MaxDelays: 2,
		MaxKills:  2,

		// Query paths only: the control plane (/healthz, /admin/reload) is
		// kept fault-free so the soak's own probes stay deterministic.
		HTTPPaths:     []string{"/distance", "/route"},
		MaxHTTPDelays: 3,
		MaxHTTPDelay:  2 * time.Millisecond,
		MaxResets:     2,
		MaxPanics:     2,

		MaxRebuildFails: 1,
		CacheSub:        ".hybc",
		MaxShortWrites:  1,
		MaxFailedWrites: 1,
		MaxFailedSyncs:  1,
	}
}

func TestChaosSoak(t *testing.T) {
	g := hybrid.GridGraph(6, 6)
	oracle, err := hybrid.New(g, hybrid.WithSeed(42)).APSP()
	if err != nil {
		t.Fatal(err)
	}

	runSeed := func(seed int64) bool {
		return t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			soakOnce(t, g, oracle, seed)
		})
	}

	budget := os.Getenv("CHAOS_SOAK_BUDGET")
	if budget == "" {
		for _, seed := range []int64{1, 7, 1729, 6174} {
			runSeed(seed)
		}
		return
	}

	// Nightly mode: fresh random seeds until the budget is spent; failing
	// seeds land in the artifact file (they reproduce locally with
	// soakOnce under that exact seed — the plan is a function of it).
	d, err := time.ParseDuration(budget)
	if err != nil {
		t.Fatalf("CHAOS_SOAK_BUDGET=%q: %v", budget, err)
	}
	artifact := os.Getenv("CHAOS_SOAK_ARTIFACT")
	seeder := rand.New(rand.NewSource(time.Now().UnixNano()))
	deadline := time.Now().Add(d)
	for n := 0; time.Now().Before(deadline); n++ {
		seed := seeder.Int63()
		if !runSeed(seed) && artifact != "" {
			f, err := os.OpenFile(artifact, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				t.Errorf("recording failing seed %d: %v", seed, err)
				continue
			}
			fmt.Fprintf(f, "%d\n", seed)
			f.Close()
		}
	}
}

// soakTally is one run's client-side observation of the allowed response
// classes; anything outside them is recorded as a failure string.
type soakTally struct {
	mu        sync.Mutex
	ok        int
	shed      int
	timeouts  int
	panics500 int
	transport int
	failures  []string
}

func (s *soakTally) fail(format string, a ...any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failures = append(s.failures, fmt.Sprintf(format, a...))
}

func (s *soakTally) add(f func(*soakTally)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(s)
}

func soakOnce(t *testing.T, g *hybrid.Graph, oracle *hybrid.APSPResult, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	plan := chaos.Draw(rng, soakSpace(oracle.Metrics.Rounds))
	restore := persist.SetFS(plan.FS())
	defer restore()
	cacheDir := t.TempDir()

	// Phase 1: initial build on the distributed engine under the plan's
	// frame faults, with the hardening knobs engaged (respawn budget at
	// its default, a generous run deadline that must NOT trip).
	distOpts := dist.WithFaults(plan.Dist())
	distOpts.RunTimeout = 2 * time.Minute
	buildNet := hybrid.New(g, hybrid.WithSeed(42), hybrid.WithEngine(hybrid.EngineDist),
		hybrid.WithWorkers(2), hybrid.WithDistOptions(distOpts), hybrid.WithCacheDir(cacheDir))
	res, err := buildNet.APSP()
	if err != nil {
		t.Fatalf("dist build under faults: %v", err)
	}
	if !reflect.DeepEqual(res.Dist, oracle.Dist) {
		t.Fatal("dist build under faults diverged from the fault-free oracle")
	}
	// The save runs through the fault FS: an outright write/sync failure
	// is reported (and tolerated — the server just stays cold-rebuilding),
	// while a torn write "succeeds" here and must be rejected at load.
	if err := buildNet.SaveCache(); err != nil {
		t.Logf("save under chaos failed (tolerated): %v", err)
	}
	tb, err := serve.NewTables(g, res.Dist, res.NextHops(g), serve.BuildInfo{
		Graph: "grid6x6", Seed: 42, Engine: "dist", Rounds: res.Metrics.Rounds,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: resident server with the full resilience chain and the
	// chaos hook installed. The rebuild warm-starts from the (possibly
	// torn) cache — a rejected cache means a cold rebuild, never an error.
	srv := serve.New(tb)
	srv.SetChaos(plan)
	srv.SetMaxInflight(2)
	srv.SetRequestTimeout(time.Second)
	srv.SetRebuild(func() (*serve.Tables, error) {
		n := hybrid.New(g, hybrid.WithSeed(42), hybrid.WithCacheDir(cacheDir))
		if _, err := n.LoadCache(); err != nil {
			t.Logf("reload found unusable cache (rebuilding cold): %v", err)
		}
		r, err := n.APSP()
		if err != nil {
			return nil, err
		}
		return serve.NewTables(g, r.Dist, r.NextHops(g), serve.BuildInfo{
			Graph: "grid6x6", Seed: 42, Engine: "reload", Rounds: r.Metrics.Rounds,
		})
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       30 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// Phase 3: concurrent traffic (deterministic query list, every 4th a
	// route walk) validated response by response against the oracle,
	// with reloads fired mid-flight from the main goroutine.
	n := g.N()
	const workers, totalQueries = 6, 180
	queries := make([][2]int, totalQueries)
	for i := range queries {
		queries[i] = [2]int{rng.Intn(n), rng.Intn(n)}
	}
	tally := &soakTally{}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			defer client.CloseIdleConnections()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				soakQuery(client, base, queries[i], i%4 == 0, oracle, tally)
			}
		}()
	}

	// Mid-traffic reloads: the plan may have scripted up to one rebuild
	// failure; when it fires, the server must be degraded-but-answering,
	// and the next reload must clear it.
	client := &http.Client{Timeout: 30 * time.Second}
	for attempt := 0; ; attempt++ {
		status, body := soakPost(t, client, base+"/admin/reload")
		if status == http.StatusOK {
			break
		}
		if status != http.StatusInternalServerError || !strings.Contains(body, "injected rebuild failure") {
			t.Fatalf("reload attempt %d: status %d body %q", attempt, status, body)
		}
		assertDegradedButAnswering(t, client, base, oracle, tally)
		if attempt >= 3 {
			t.Fatal("reload kept failing past the scripted fault budget")
		}
	}
	wg.Wait()

	// Phase 4: forced degraded mode, deterministically, whatever the draw
	// scripted: one more rebuild failure, then recovery.
	plan.FailRebuilds(1)
	if status, body := soakPost(t, client, base+"/admin/reload"); status != http.StatusInternalServerError {
		t.Fatalf("reload with forced fault: status %d body %q, want 500", status, body)
	}
	assertDegradedButAnswering(t, client, base, oracle, tally)
	if status, body := soakPost(t, client, base+"/admin/reload"); status != http.StatusOK {
		t.Fatalf("recovery reload: status %d body %q, want 200", status, body)
	}
	if status, body := soakGet(t, client, base+"/healthz"); status != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("healthz after recovery: status %d body %q", status, body)
	}

	// Phase 5: the ledger must balance. Client-side observations of each
	// allowed class match the server's own counters, and nothing outside
	// the allowed classes was ever seen.
	tally.mu.Lock()
	failures, ok, shed, timeouts, panics500 := tally.failures, tally.ok, tally.shed, tally.timeouts, tally.panics500
	transport := tally.transport
	tally.mu.Unlock()
	for _, f := range failures {
		t.Error(f)
	}
	var stats serve.StatsResponse
	if status, body := soakGet(t, client, base+"/stats"); status != http.StatusOK {
		t.Fatalf("/stats: status %d body %q", status, body)
	} else if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("/stats decode: %v", err)
	}
	if stats.Panics != int64(panics500) {
		t.Errorf("server counted %d panics, clients observed %d recovery 500s", stats.Panics, panics500)
	}
	if stats.LoadShed != int64(shed) {
		t.Errorf("server counted %d shed requests, clients observed %d 429s", stats.LoadShed, shed)
	}
	if stats.Degraded || stats.LastReloadError != "" {
		t.Errorf("stats still degraded after recovery: %+v", stats)
	}
	if stats.ReloadFailures < 1 {
		t.Errorf("reload failures = %d, want >= 1 (phase 4 forced one)", stats.ReloadFailures)
	}
	if ok == 0 {
		t.Error("no query ever got a well-formed 200")
	}
	cs := plan.Stats()
	t.Logf("seed %d: faults fired=%d (dist %+v) ok=%d shed=%d timeouts=%d panic500=%d transport=%d",
		seed, cs.Total(), cs.Dist, ok, shed, timeouts, panics500, transport)

	// Phase 6: graceful drain — Shutdown completes and Serve reports the
	// sanctioned closure.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	select {
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			t.Fatalf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}

// soakQuery fires one /distance or /route request, classifies the outcome
// into the allowed response classes (updating the tally so client-side
// observations stay reconcilable with the server's counters), and returns
// the class — "ok", "shed", "timeout", "panic", "transport", or "fail".
// Every 200 is validated against the oracle byte for byte.
func soakQuery(client *http.Client, base string, q [2]int, route bool, oracle *hybrid.APSPResult, tally *soakTally) string {
	endpoint := "/distance"
	if route {
		endpoint = "/route"
	}
	url := fmt.Sprintf("%s%s?s=%d&t=%d", base, endpoint, q[0], q[1])
	resp, err := client.Get(url)
	if err != nil {
		// Injected connection resets surface as transport errors; that is
		// the one fault class with no HTTP status to validate.
		tally.add(func(s *soakTally) { s.transport++ })
		return "transport"
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		tally.add(func(s *soakTally) { s.transport++ })
		return "transport"
	}
	want := oracle.Dist[q[0]][q[1]]
	switch resp.StatusCode {
	case http.StatusOK:
		if route {
			var rr serve.RouteResponse
			if err := json.Unmarshal(body, &rr); err != nil || rr.Unreachable || rr.Weight != want {
				tally.fail("%s: 200 body %q does not match oracle weight %d (err %v)", url, body, want, err)
				return "fail"
			}
		} else {
			var dr serve.DistanceResponse
			if err := json.Unmarshal(body, &dr); err != nil || dr.Unreachable || dr.Distance != want {
				tally.fail("%s: 200 body %q does not match oracle distance %d (err %v)", url, body, want, err)
				return "fail"
			}
		}
		tally.add(func(s *soakTally) { s.ok++ })
		return "ok"
	case http.StatusTooManyRequests:
		if resp.Header.Get("Retry-After") == "" {
			tally.fail("%s: 429 without Retry-After", url)
			return "fail"
		}
		tally.add(func(s *soakTally) { s.shed++ })
		return "shed"
	case http.StatusServiceUnavailable:
		if !strings.Contains(string(body), "request timed out") {
			tally.fail("%s: unexpected 503 body %q", url, body)
			return "fail"
		}
		tally.add(func(s *soakTally) { s.timeouts++ })
		return "timeout"
	case http.StatusInternalServerError:
		if !strings.Contains(string(body), "internal error") {
			tally.fail("%s: unexpected 500 body %q", url, body)
			return "fail"
		}
		tally.add(func(s *soakTally) { s.panics500++ })
		return "panic"
	default:
		tally.fail("%s: disallowed status %d body %q", url, resp.StatusCode, body)
		return "fail"
	}
}

// assertDegradedButAnswering pins the degraded-mode contract: /healthz
// reports it (still 200 — the replica works), and a query is answered
// oracle-correct from the last-good tables. The query may be called while
// chaos traffic is still flying, so it retries through the allowed fault
// classes (shed, timeout, injected panic, reset) until a well-formed 200
// arrives — the fault budgets are finite, so one must.
func assertDegradedButAnswering(t *testing.T, client *http.Client, base string, oracle *hybrid.APSPResult, tally *soakTally) {
	t.Helper()
	status, body := soakGet(t, client, base+"/healthz")
	if status != http.StatusOK || !strings.Contains(body, `"degraded"`) {
		t.Fatalf("healthz during degraded mode: status %d body %q", status, body)
	}
	for attempt := 0; attempt < 100; attempt++ {
		switch soakQuery(client, base, [2]int{0, 1}, false, oracle, tally) {
		case "ok":
			return
		case "fail":
			t.Fatal("degraded-mode query answered outside the allowed classes (failure recorded in tally)")
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("degraded-mode query never got a well-formed 200")
}

func soakGet(t *testing.T, client *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func soakPost(t *testing.T, client *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := client.Post(url, "application/json", nil)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}
