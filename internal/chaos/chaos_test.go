package chaos

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/persist"
)

// TestHTTPFaultConsumesRules pins the HTTP rule semantics: path-substring
// matching, bounded counts, additive delays, and the stats counters.
func TestHTTPFaultConsumesRules(t *testing.T) {
	p := NewPlan().
		DelayRequests("/distance", 3*time.Millisecond, 2).
		ResetRequests("/route", 1).
		PanicRequests("", 1) // matches every path

	d, reset, panics := p.HTTPFault("/distance?from=1&to=2")
	if d != 3*time.Millisecond || reset || !panics {
		t.Errorf("first /distance: d=%v reset=%v panics=%v", d, reset, panics)
	}
	d, reset, panics = p.HTTPFault("/distance")
	if d != 3*time.Millisecond || reset || panics {
		t.Errorf("second /distance: d=%v reset=%v panics=%v", d, reset, panics)
	}
	d, reset, panics = p.HTTPFault("/distance")
	if d != 0 || reset || panics {
		t.Errorf("exhausted /distance still fired: d=%v reset=%v panics=%v", d, reset, panics)
	}
	if _, reset, _ = p.HTTPFault("/route"); !reset {
		t.Error("/route reset did not fire")
	}
	if _, reset, _ = p.HTTPFault("/route"); reset {
		t.Error("/route reset fired twice")
	}

	s := p.Stats()
	if s.HTTPDelays != 2 || s.Resets != 1 || s.Panics != 1 {
		t.Errorf("stats %+v", s)
	}
	if s.Total() != 4 {
		t.Errorf("total %d, want 4", s.Total())
	}
}

// TestNilPlanIsInert pins the nil contract on every consultation point.
func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if d, reset, panics := p.HTTPFault("/x"); d != 0 || reset || panics {
		t.Error("nil plan injected an HTTP fault")
	}
	if err := p.RebuildFault(); err != nil {
		t.Error("nil plan injected a rebuild fault")
	}
	if fired, _ := p.onFS(fsShortWrite, "x"); fired {
		t.Error("nil plan injected an FS fault")
	}
	if p.Dist() != nil {
		t.Error("nil plan returned a dist plan")
	}
	if s := p.Stats(); s.Total() != 0 {
		t.Errorf("nil plan stats %+v", s)
	}
}

// TestRebuildFaultBudget pins FailRebuilds: exactly count failures, then
// clean rebuilds.
func TestRebuildFaultBudget(t *testing.T) {
	p := NewPlan().FailRebuilds(2)
	for i := 0; i < 2; i++ {
		if err := p.RebuildFault(); !errors.Is(err, ErrInjectedRebuild) {
			t.Fatalf("rebuild %d: got %v", i, err)
		}
	}
	if err := p.RebuildFault(); err != nil {
		t.Fatalf("exhausted budget still failed: %v", err)
	}
	if s := p.Stats(); s.RebuildFails != 2 {
		t.Errorf("stats %+v", s)
	}
}

// TestDistForwarding pins that the chainable dist builders land in the
// embedded dist.Faults and its stats surface through ChaosStats.
func TestDistForwarding(t *testing.T) {
	p := NewPlan().DropFrames(1, 3, 2).DelayFrame(0, 1, time.Millisecond).KillWorker(0, 7)
	if p.Dist() == nil {
		t.Fatal("no embedded dist plan")
	}
	// Stats merge: nothing fired yet, but the plumbing must not panic and
	// the dist sub-struct must be the dist.Faults counters verbatim.
	if s := p.Stats(); s.Dist != p.Dist().Stats() {
		t.Errorf("dist stats diverged: %+v vs %+v", s.Dist, p.Dist().Stats())
	}
}

// TestFaultFSShortWrite pins the torn-write path end to end through the
// real persist codec: the chaos FS truncates the cache file, the write
// reports success, and the load detects ErrCorrupt.
func TestFaultFSShortWrite(t *testing.T) {
	p := NewPlan().ShortWrites(".hybc", 10, 1)
	restore := persist.SetFS(p.FS())
	defer restore()

	path := filepath.Join(t.TempDir(), "cache.hybc")
	if err := persist.Save(path, 1, []int{1, 2, 3}); err != nil {
		t.Fatalf("short write surfaced an error: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 10 {
		t.Errorf("torn file is %d bytes, want 10", st.Size())
	}
	var out []int
	if err := persist.Load(path, 1, &out); !errors.Is(err, persist.ErrCorrupt) {
		t.Errorf("loading torn file: got %v, want ErrCorrupt", err)
	}

	// The rule is consumed: the next save is clean and loads back.
	if err := persist.Save(path, 1, []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := persist.Load(path, 1, &out); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.ShortWrites != 1 {
		t.Errorf("stats %+v", s)
	}
}

// TestFaultFSFailures pins the fail-write/rename/sync rules: each save
// surfaces the injected error without leaving a temp file, and a
// fail-sync still installs the file (the data made it, durability didn't).
func TestFaultFSFailures(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.hybc")

	p := NewPlan().FailWrites(".hybc", 1).FailRenames(".hybc", 1).FailSyncs(dir, 1)
	restore := persist.SetFS(p.FS())
	defer restore()

	for i := 0; i < 3; i++ {
		if err := persist.Save(path, 1, []int{i}); !errors.Is(err, ErrInjectedWrite) {
			t.Fatalf("save %d: got %v, want ErrInjectedWrite", i, err)
		}
		if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
			t.Fatalf("save %d left a temp file", i)
		}
	}
	// After the failed sync the renamed file exists (rename succeeded).
	if _, err := os.Stat(path); err != nil {
		t.Errorf("fail-sync removed the installed file: %v", err)
	}
	if err := persist.Save(path, 1, []int{9}); err != nil {
		t.Fatalf("exhausted plan still failing: %v", err)
	}
	s := p.Stats()
	if s.FailedWrites != 1 || s.FailedRenames != 1 || s.FailedSyncs != 1 {
		t.Errorf("stats %+v", s)
	}
}

// TestDrawDeterministic pins reproducibility: the same seed draws a plan
// with identical rule scripts (observed via identical fault behavior),
// and draws stay within the space's bounds.
func TestDrawDeterministic(t *testing.T) {
	sp := Space{
		Shards: 3, Rounds: 50, MaxDrops: 3, MaxDelays: 2, MaxKills: 1,
		HTTPPaths: []string{"/distance", "/route"}, MaxHTTPDelays: 3, MaxResets: 2, MaxPanics: 2,
		MaxRebuildFails: 2, CacheSub: ".hybc", MaxShortWrites: 2, MaxFailedWrites: 1, MaxFailedSyncs: 1,
	}
	for seed := int64(0); seed < 20; seed++ {
		a := Draw(rand.New(rand.NewSource(seed)), sp)
		b := Draw(rand.New(rand.NewSource(seed)), sp)
		// Drain both plans identically and compare every observation.
		for i := 0; i < 30; i++ {
			path := sp.HTTPPaths[i%2]
			da, ra, pa := a.HTTPFault(path)
			db, rb, pb := b.HTTPFault(path)
			if da != db || ra != rb || pa != pb {
				t.Fatalf("seed %d: HTTP draw diverged at %d", seed, i)
			}
		}
		for i := 0; i < 5; i++ {
			ea, eb := a.RebuildFault(), b.RebuildFault()
			if (ea == nil) != (eb == nil) {
				t.Fatalf("seed %d: rebuild draw diverged", seed)
			}
		}
		for _, kind := range []fsKind{fsShortWrite, fsFailWrite, fsFailSync} {
			for i := 0; i < 4; i++ {
				fa, ka := a.onFS(kind, "x.hybc")
				fb, kb := b.onFS(kind, "x.hybc")
				if fa != fb || ka != kb {
					t.Fatalf("seed %d: FS draw diverged", seed)
				}
			}
		}
		if sa, sb := a.Stats(), b.Stats(); sa != sb {
			t.Fatalf("seed %d: stats diverged: %+v vs %+v", seed, sa, sb)
		}
	}
}
