// Package bitrand supplies the randomness substrate of the reproduction:
// a splittable deterministic seed source (so each node, protocol phase, and
// experiment draws from an independent, reproducible stream) and the k-wise
// independent hash family of paper Definition D.1 / Lemma D.1, which the
// token routing protocol (Algorithm 4) uses to pick pseudo-random
// intermediate nodes with O(log^2 n) shared seed bits.
package bitrand

import (
	"math/bits"
	"math/rand"
)

// splitmix64 is the SplitMix64 mixing function; it turns any sequence of
// 64-bit labels into a well-distributed stream seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Source derives independent deterministic sub-streams from one root seed.
// The zero value is a valid source with seed 0.
type Source struct {
	seed uint64
}

// NewSource returns a source rooted at the given seed.
func NewSource(seed int64) *Source { return &Source{seed: uint64(seed)} }

// mix folds the labels into the root seed.
func (s *Source) mix(labels []uint64) uint64 {
	h := splitmix64(s.seed)
	for _, l := range labels {
		h = splitmix64(h ^ l)
	}
	return h
}

// Stream returns a *rand.Rand for the sub-stream identified by the labels.
// The same (seed, labels) always yields the same stream; distinct labels
// yield streams that are independent for all practical purposes.
func (s *Source) Stream(labels ...uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(s.mix(labels))))
}

// Named returns a sub-stream identified by a protocol-phase name and integer
// indices (typically a node ID). It hashes the name bytes into a label.
func (s *Source) Named(name string, idx ...int) *rand.Rand {
	labels := make([]uint64, 0, len(idx)+1)
	var h uint64 = 1469598103934665603 // FNV-64 offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	labels = append(labels, h)
	for _, i := range idx {
		labels = append(labels, uint64(i))
	}
	return s.Stream(labels...)
}

// Split returns a child source so subsystems can derive their own streams
// without coordinating label namespaces.
func (s *Source) Split(label uint64) *Source {
	return &Source{seed: s.mix([]uint64{label})}
}

// Mersenne61 is the prime p = 2^61 - 1 over which the hash family operates.
// Keys must be < Mersenne61; token labels (s, r, i) packed as s*n^2 + r*n + i
// stay below 2^60 for all n <= 2^20, comfortably inside the field.
const Mersenne61 uint64 = (1 << 61) - 1

// addmod returns (a + b) mod p for a, b < p.
func addmod(a, b uint64) uint64 {
	s := a + b // < 2^62, no overflow
	if s >= Mersenne61 {
		s -= Mersenne61
	}
	return s
}

// mulmod returns (a * b) mod p for a, b < p, using the Mersenne folding
// identity 2^61 ≡ 1 (mod p).
func mulmod(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi*2^64 + lo; 2^64 ≡ 8 and 2^61 ≡ 1 (mod p), so
	// a*b ≡ hi*8 + (lo >> 61) + (lo & p). Each term is < 2^61 because
	// hi < 2^58 when a, b < 2^61.
	s := (lo & Mersenne61) + (lo >> 61) + hi<<3
	s = (s & Mersenne61) + (s >> 61)
	if s >= Mersenne61 {
		s -= Mersenne61
	}
	return s
}

// KWiseHash is a hash function drawn from a k-wise independent family
// H = {h : Z_p -> [m]} realized as a degree-(k-1) polynomial with uniform
// coefficients over the field Z_p (p = 2^61 - 1), reduced modulo m
// (Definition D.1; existence and seed size per Lemma D.1).
//
// For any k distinct keys, the polynomial values are uniform and
// independent over Z_p; reduction mod m preserves k-wise independence up to
// the usual O(m/p) statistical distance, which is negligible here
// (m <= n << p).
type KWiseHash struct {
	coeff []uint64 // k coefficients, degree k-1 polynomial
	m     uint64   // output range [0, m)
}

// NewKWiseHash draws a fresh function with independence parameter k and
// output range [0, m) using randomness from rng. k and m must be positive.
func NewKWiseHash(k int, m int, rng *rand.Rand) *KWiseHash {
	if k < 1 {
		k = 1
	}
	if m < 1 {
		m = 1
	}
	coeff := make([]uint64, k)
	for i := range coeff {
		// Rejection-sample a uniform field element.
		for {
			v := rng.Uint64() & ((1 << 61) - 1)
			if v < Mersenne61 {
				coeff[i] = v
				break
			}
		}
	}
	return &KWiseHash{coeff: coeff, m: uint64(m)}
}

// Hash evaluates the polynomial at key (reduced into the field first) and
// returns a value in [0, m). Distinct keys below Mersenne61 receive k-wise
// independent values.
func (h *KWiseHash) Hash(key uint64) int {
	x := key % Mersenne61
	// Horner evaluation: c[k-1]*x^{k-1} + ... + c[0].
	var acc uint64
	for i := len(h.coeff) - 1; i >= 0; i-- {
		acc = addmod(mulmod(acc, x), h.coeff[i])
	}
	return int(acc % h.m)
}

// K returns the independence parameter of the family the function was drawn
// from.
func (h *KWiseHash) K() int { return len(h.coeff) }

// Range returns m, the size of the output range.
func (h *KWiseHash) Range() int { return int(h.m) }

// SeedBits returns the number of random bits that define this function:
// k coefficients of 61 bits each. For k = Θ(log n) this is the O(log^2 n)
// seed of Lemma 2.3 / Lemma D.1 that the protocol broadcasts in O~(1)
// rounds.
func (h *KWiseHash) SeedBits() int { return len(h.coeff) * 61 }

// Seed returns the coefficient vector; the token routing protocol treats it
// as the publicly broadcast seed. The slice is shared; callers must not
// modify it.
func (h *KWiseHash) Seed() []uint64 { return h.coeff }

// FromSeed reconstructs the hash function every node derives after
// receiving the broadcast seed.
func FromSeed(seed []uint64, m int) *KWiseHash {
	coeff := make([]uint64, len(seed))
	for i, c := range seed {
		coeff[i] = c % Mersenne61
	}
	if m < 1 {
		m = 1
	}
	return &KWiseHash{coeff: coeff, m: uint64(m)}
}
