package bitrand

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a := NewSource(42).Named("phase", 3)
	b := NewSource(42).Named("phase", 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSourceStreamsDiffer(t *testing.T) {
	s := NewSource(42)
	tests := []struct {
		name string
		a, b *rand.Rand
	}{
		{"different names", s.Named("a"), s.Named("b")},
		{"different indices", s.Named("x", 1), s.Named("x", 2)},
		{"different label count", s.Stream(1), s.Stream(1, 0)},
		{"split vs direct", s.Split(9).Stream(1), s.Stream(1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			same := 0
			for i := 0; i < 64; i++ {
				if tt.a.Uint64() == tt.b.Uint64() {
					same++
				}
			}
			if same > 2 {
				t.Fatalf("%d/64 identical draws; streams not independent", same)
			}
		})
	}
}

func TestSourceSeedsDiffer(t *testing.T) {
	a := NewSource(1).Named("p")
	b := NewSource(2).Named("p")
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("different root seeds produced identical streams")
	}
}

func TestZeroValueSourceUsable(t *testing.T) {
	var s Source
	if s.Named("x") == nil {
		t.Fatal("zero-value Source should produce streams")
	}
}

func TestMulmodAgainstBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := new(big.Int).SetUint64(Mersenne61)
	for i := 0; i < 2000; i++ {
		a := rng.Uint64() % Mersenne61
		b := rng.Uint64() % Mersenne61
		got := mulmod(a, b)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, p)
		if got != want.Uint64() {
			t.Fatalf("mulmod(%d,%d) = %d, want %d", a, b, got, want.Uint64())
		}
	}
}

func TestMulmodEdgeCases(t *testing.T) {
	pm1 := Mersenne61 - 1
	tests := []struct {
		a, b, want uint64
	}{
		{0, 0, 0},
		{0, pm1, 0},
		{1, pm1, pm1},
		{2, Mersenne61 / 2, Mersenne61 - 1}, // 2 * (p-1)/2 = p-1
		{pm1, pm1, 1},                       // (-1)*(-1) = 1 mod p
	}
	for _, tt := range tests {
		if got := mulmod(tt.a, tt.b); got != tt.want {
			t.Fatalf("mulmod(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestAddmod(t *testing.T) {
	if got := addmod(Mersenne61-1, 1); got != 0 {
		t.Fatalf("addmod(p-1,1) = %d, want 0", got)
	}
	if got := addmod(5, 7); got != 12 {
		t.Fatalf("addmod(5,7) = %d, want 12", got)
	}
}

func TestKWiseHashRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := NewKWiseHash(8, 100, rng)
	for key := uint64(0); key < 5000; key++ {
		v := h.Hash(key)
		if v < 0 || v >= 100 {
			t.Fatalf("Hash(%d) = %d outside [0,100)", key, v)
		}
	}
}

func TestKWiseHashDeterministic(t *testing.T) {
	rng1 := rand.New(rand.NewSource(3))
	rng2 := rand.New(rand.NewSource(3))
	h1 := NewKWiseHash(6, 64, rng1)
	h2 := NewKWiseHash(6, 64, rng2)
	for key := uint64(0); key < 1000; key++ {
		if h1.Hash(key) != h2.Hash(key) {
			t.Fatalf("same rng seed produced different hash functions at key %d", key)
		}
	}
}

func TestKWiseHashSeedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := NewKWiseHash(10, 37, rng)
	h2 := FromSeed(h.Seed(), h.Range())
	for key := uint64(0); key < 2000; key++ {
		if h.Hash(key) != h2.Hash(key) {
			t.Fatalf("FromSeed mismatch at key %d", key)
		}
	}
}

func TestKWiseHashSeedBits(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// For k = Θ(log n) the seed is O(log^2 n) bits (Lemma D.1): with
	// n = 2^20, k = 20 => 20*61 = 1220 bits, about 3 log^2 n.
	h := NewKWiseHash(20, 1<<20, rng)
	if h.SeedBits() != 20*61 {
		t.Fatalf("SeedBits = %d, want %d", h.SeedBits(), 20*61)
	}
	logn := 20.0
	if float64(h.SeedBits()) > 4*logn*logn {
		t.Fatalf("seed bits %d not O(log^2 n) for n=2^20", h.SeedBits())
	}
}

func TestKWiseHashUniformity(t *testing.T) {
	// Empirical balance: hashing N keys into m buckets, each bucket should
	// hold close to N/m. With k-wise independence the Chernoff bound of
	// Lemma A.1/Remark A.1 applies; we allow 5 sigma.
	rng := rand.New(rand.NewSource(6))
	const m, nkeys = 64, 64 * 1024
	h := NewKWiseHash(12, m, rng)
	counts := make([]int, m)
	for key := uint64(0); key < nkeys; key++ {
		counts[h.Hash(key*2654435761+17)]++
	}
	mean := float64(nkeys) / m
	sigma := math.Sqrt(mean)
	for b, c := range counts {
		if math.Abs(float64(c)-mean) > 5*sigma {
			t.Fatalf("bucket %d has %d keys, mean %.1f (departure > 5 sigma)", b, c, mean)
		}
	}
}

func TestKWiseHashPairwiseIndependenceEmpirical(t *testing.T) {
	// For pairs of distinct keys, P[h(x)=a AND h(y)=b] should be ~1/m^2.
	// Estimate over many independently drawn functions.
	rng := rand.New(rand.NewSource(7))
	const m = 4
	const draws = 20000
	joint := 0
	for i := 0; i < draws; i++ {
		h := NewKWiseHash(4, m, rng)
		if h.Hash(123) == 1 && h.Hash(987) == 2 {
			joint++
		}
	}
	want := float64(draws) / (m * m)
	got := float64(joint)
	if math.Abs(got-want) > 5*math.Sqrt(want) {
		t.Fatalf("joint count %v, want ~%v: family not pairwise independent", got, want)
	}
}

func TestKWiseHashDegenerateParams(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	h := NewKWiseHash(0, 0, rng)
	if h.K() != 1 || h.Range() != 1 {
		t.Fatalf("degenerate params: K=%d Range=%d, want 1,1", h.K(), h.Range())
	}
	if v := h.Hash(55); v != 0 {
		t.Fatalf("range-1 hash returned %d, want 0", v)
	}
}

// Property: hash output always lies in range, for arbitrary keys/params.
func TestQuickHashInRange(t *testing.T) {
	f := func(seed int64, kRaw, mRaw uint8, key uint64) bool {
		k := 1 + int(kRaw%16)
		m := 1 + int(mRaw)%512
		rng := rand.New(rand.NewSource(seed))
		h := NewKWiseHash(k, m, rng)
		v := h.Hash(key)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: mulmod is commutative and addmod associative-compatible.
func TestQuickFieldLaws(t *testing.T) {
	f := func(a, b, c uint64) bool {
		a, b, c = a%Mersenne61, b%Mersenne61, c%Mersenne61
		if mulmod(a, b) != mulmod(b, a) {
			return false
		}
		if addmod(addmod(a, b), c) != addmod(a, addmod(b, c)) {
			return false
		}
		// Distributivity: a*(b+c) = a*b + a*c.
		return mulmod(a, addmod(b, c)) == addmod(mulmod(a, b), mulmod(a, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKWiseHash(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	h := NewKWiseHash(16, 1<<16, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Hash(uint64(i))
	}
}
