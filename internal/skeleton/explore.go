package skeleton

import (
	"sort"

	"repro/internal/sim"
)

// LimitedExplore runs `rounds` rounds of multi-source synchronous
// Bellman-Ford over the local network: every node with isSource starts a
// wave, and afterwards every node holds, for each source within `rounds`
// hops, an estimate dd with d <= dd <= d_rounds (see Result.Near for why
// the sandwich suffices). It also returns the hop distance at which each
// source was first heard. Collective; takes exactly `rounds` rounds.
//
// This is the local-exploration subroutine shared by Algorithm 6
// (sources = skeleton nodes) and the APSP/k-SSP algorithms' "learn
// G up to depth ηh" steps (sources = all nodes, paper Fact 4.2).
func LimitedExplore(env *sim.Env, isSource bool, rounds int) (map[int]int64, map[int]int) {
	near := map[int]int64{}
	hops := map[int]int{}
	var delta []distUpdate
	if isSource {
		near[env.ID()] = 0
		hops[env.ID()] = 0
		delta = append(delta, distUpdate{Source: env.ID(), Dist: 0, Hops: 0})
	}
	for step := 0; step < rounds; step++ {
		if len(delta) > 0 {
			env.BroadcastLocal(delta)
		}
		in := env.Step()
		improved := map[int]distUpdate{}
		for _, lm := range in.Local {
			ups, ok := lm.Payload.([]distUpdate)
			if !ok {
				continue
			}
			w, _ := env.Graph().Weight(env.ID(), lm.From)
			for _, up := range ups {
				nd := up.Dist + w
				cur, seen := near[up.Source]
				if !seen || nd < cur {
					near[up.Source] = nd
					if _, hseen := hops[up.Source]; !hseen {
						hops[up.Source] = up.Hops + 1
					}
					improved[up.Source] = distUpdate{Source: up.Source, Dist: nd, Hops: up.Hops + 1}
				}
			}
		}
		next := make([]distUpdate, 0, len(improved))
		for _, up := range improved {
			next = append(next, up)
		}
		sort.Slice(next, func(i, j int) bool { return next[i].Source < next[j].Source })
		delta = next
	}
	return near, hops
}

// FloodRecord is one (origin, subject, value) record flooded to a fixed
// radius, used by the APSP algorithms to distribute skeleton distance
// labels 〈d(s,v), ID(s), ID(v)〉 into the origin's h-neighborhood (paper §3).
type FloodRecord struct {
	Origin  int
	Subject int
	Value   int64
	TTL     int
}

// FloodLabels floods this node's records to the given radius: every record
// travels `radius` hops from its origin (first-arrival forwarding, which
// carries the maximal remaining TTL). It returns all records this node
// heard, keyed (origin, subject). Collective; takes exactly `radius` rounds.
func FloodLabels(env *sim.Env, mine []FloodRecord, radius int) map[[2]int]int64 {
	known := map[[2]int]int64{}
	var delta []FloodRecord
	for _, r := range mine {
		r.TTL = radius
		known[[2]int{r.Origin, r.Subject}] = r.Value
		delta = append(delta, r)
	}
	for step := 0; step < radius; step++ {
		if len(delta) > 0 {
			env.BroadcastLocal(delta)
		}
		in := env.Step()
		var next []FloodRecord
		for _, lm := range in.Local {
			recs, ok := lm.Payload.([]FloodRecord)
			if !ok {
				continue
			}
			for _, r := range recs {
				key := [2]int{r.Origin, r.Subject}
				if _, seen := known[key]; seen {
					continue
				}
				known[key] = r.Value
				if r.TTL > 1 {
					next = append(next, FloodRecord{Origin: r.Origin, Subject: r.Subject, Value: r.Value, TTL: r.TTL - 1})
				}
			}
		}
		delta = next
	}
	return known
}
