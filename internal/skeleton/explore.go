package skeleton

import (
	"cmp"
	"slices"

	"repro/internal/flatmap"
	"repro/internal/graph"
	"repro/internal/sim"
)

// LimitedExplore runs `rounds` rounds of multi-source synchronous
// Bellman-Ford over the local network: every node with isSource starts a
// wave, and afterwards every node holds, for each source within `rounds`
// hops, an estimate dd with d <= dd <= d_rounds (see Result.Near for why
// the sandwich suffices). It returns dense per-source vectors indexed by
// node ID: near[u] is the estimate (graph.Inf if u was not heard) and
// hops[u] the hop distance at which u was first heard (-1 if never).
// Collective; takes exactly `rounds` rounds.
//
// This is the local-exploration subroutine shared by Algorithm 6
// (sources = skeleton nodes) and the APSP/k-SSP algorithms' "learn
// G up to depth ηh" steps (sources = all nodes, paper Fact 4.2).
func LimitedExplore(env *sim.Env, isSource bool, rounds int) ([]int64, []int) {
	n := env.N()
	near := make([]int64, n)
	hops := make([]int, n)
	pending := make([]int32, n) // index into next, -1 = no update staged
	for i := 0; i < n; i++ {
		near[i] = graph.Inf
		hops[i] = -1
		pending[i] = -1
	}
	// The delta buffers rotate: the buffer broadcast at round r is read by
	// neighbors while they process round r and is not written again before
	// round r+2, when every reader has long taken the r+1 barrier — the
	// same ownership window as the engines' double-buffered inboxes. The
	// rotation is what makes steady-state rounds allocation-free: after the
	// wave's peak, both buffers hold enough capacity for every later round.
	var bufs [2]distUpdates
	if isSource {
		near[env.ID()] = 0
		hops[env.ID()] = 0
		bufs[0] = append(bufs[0], distUpdate{Source: env.ID(), Dist: 0, Hops: 0})
	}
	for step := 0; step < rounds; step++ {
		if len(bufs[step&1]) > 0 {
			env.BroadcastLocal(&bufs[step&1])
		}
		in := env.Step()
		next := bufs[(step+1)&1][:0]
		for _, lm := range in.Local {
			ups, ok := lm.Payload.(*distUpdates)
			if !ok {
				continue
			}
			w, _ := env.Graph().Weight(env.ID(), lm.From)
			for _, up := range *ups {
				nd := up.Dist + w
				if nd < near[up.Source] {
					near[up.Source] = nd
					if hops[up.Source] < 0 {
						hops[up.Source] = up.Hops + 1
					}
					u := distUpdate{Source: up.Source, Dist: nd, Hops: up.Hops + 1}
					if i := pending[up.Source]; i >= 0 {
						next[i] = u
					} else {
						pending[up.Source] = int32(len(next))
						next = append(next, u)
					}
				}
			}
		}
		for _, up := range next {
			pending[up.Source] = -1
		}
		slices.SortFunc(next, func(a, b distUpdate) int { return cmp.Compare(a.Source, b.Source) })
		bufs[(step+1)&1] = next
	}
	return near, hops
}

// floodVec is the local-mode payload of FloodVectors: one origin's label
// vector travelling with a remaining TTL. Values is shared by every node
// that hears it and must never be mutated.
type floodVec struct {
	Origin int
	TTL    int
	Values []int64
}

// Labels is the result of FloodVectors: the heard label vectors keyed by
// origin node ID. It is a flat open-addressed map so the flood's per-round
// dedup inserts stop allocating once the table is warm.
type Labels = flatmap.Map[[]int64]

// FloodVectors floods this node's label vector (`mine`, nil unless this
// node is an origin) to the given radius: the vector travels `radius` hops
// from its origin with first-arrival forwarding. It returns every vector
// this node heard, keyed by origin (including its own). Collective; takes
// exactly `radius` rounds.
//
// A vector is the dense form of the paper's label set
// 〈value, ID(origin), subject〉 for a fixed origin: Values[subject] is the
// label's value, -1 marks subjects the origin published no label for. An
// origin's labels always travel as one batch (they enter the flood
// together and deduplication is by origin), so vector flooding is
// round-for-round and message-for-message identical to flooding the
// records individually — but a vector is built once and *shared* by every
// node that hears it, which turns the per-node Θ(|origins|·|subjects|)
// storage and hashing of the record form into a per-run cost. Callers must
// treat received vectors as immutable.
func FloodVectors(env *sim.Env, mine []int64, radius int) *Labels {
	known := &Labels{}
	var bufs [2]floodVecs
	if mine != nil {
		known.Put(uint64(env.ID()), mine)
		bufs[0] = append(bufs[0], floodVec{Origin: env.ID(), TTL: radius, Values: mine})
	}
	for step := 0; step < radius; step++ {
		if len(bufs[step&1]) > 0 {
			env.BroadcastLocal(&bufs[step&1])
		}
		in := env.Step()
		next := bufs[(step+1)&1][:0]
		for _, lm := range in.Local {
			vecs, ok := lm.Payload.(*floodVecs)
			if !ok {
				continue
			}
			for _, fv := range *vecs {
				if known.Has(uint64(fv.Origin)) {
					continue
				}
				known.Put(uint64(fv.Origin), fv.Values)
				if fv.TTL > 1 {
					next = append(next, floodVec{Origin: fv.Origin, TTL: fv.TTL - 1, Values: fv.Values})
				}
			}
		}
		bufs[(step+1)&1] = next
	}
	return known
}
