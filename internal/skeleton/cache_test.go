package skeleton

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

var cacheEngines = []sim.Engine{sim.EngineLegacy, sim.EngineSharded, sim.EngineStep}

// computePipeline runs skeleton.Compute collectively through both execution
// forms (selected by the engine) and returns the per-node results and
// metrics.
func computePipeline(t *testing.T, g *graph.Graph, p Params, force []bool, eng sim.Engine, seed int64) ([]Result, sim.Metrics) {
	t.Helper()
	pipe := sim.Pipeline[Result]{
		Run: func(env *sim.Env) Result {
			return Compute(env, p, force != nil && force[env.ID()])
		},
		Machine: func(env *sim.Env, done func(Result)) sim.StepProgram {
			m := NewComputeMachine(env, p, force != nil && force[env.ID()])
			return sim.Sequence(
				func(env *sim.Env) sim.StepProgram { return m },
				sim.Finish(func(env *sim.Env) { done(m.Res) }),
			)
		},
	}
	out, m, err := sim.RunPipeline(g, sim.Config{Seed: seed, Engine: eng}, pipe)
	if err != nil {
		t.Fatal(err)
	}
	return out, m
}

// TestResultCacheReuseAcrossRuns pins the cache contract on every engine:
// the first cached run pays exactly the 2·ceil(log2 n)-round agreement on
// top of the uncached construction, a repeat run binds the cached results
// in agreement-only rounds, and neither changes any node's Result.
func TestResultCacheReuseAcrossRuns(t *testing.T) {
	g := graph.Grid(7, 7)
	n := g.N()
	p := Params{X: 0.5}
	base, baseM := computePipeline(t, g, p, nil, sim.EngineLegacy, 11)
	agreeRounds := 2 * sim.Log2Ceil(n)

	for _, eng := range cacheEngines {
		cached := Params{X: 0.5, Cache: NewResultCache()}
		first, firstM := computePipeline(t, g, cached, nil, eng, 11)
		second, secondM := computePipeline(t, g, cached, nil, eng, 11)
		if !reflect.DeepEqual(first, base) || !reflect.DeepEqual(second, base) {
			t.Errorf("%s: cached runs produce different skeletons than uncached", eng)
		}
		if firstM.Rounds != baseM.Rounds+agreeRounds {
			t.Errorf("%s: first cached run took %d rounds, want uncached %d + agreement %d",
				eng, firstM.Rounds, baseM.Rounds, agreeRounds)
		}
		if secondM.Rounds != agreeRounds {
			t.Errorf("%s: cache hit took %d rounds, want agreement-only %d", eng, secondM.Rounds, agreeRounds)
		}
	}
}

// TestResultCacheSeedMismatchRebuilds runs the cached construction under a
// different seed: the membership draws change, the collective agreement
// must detect the stale entry, and the run must rebuild — matching the
// uncached run of the new seed exactly.
func TestResultCacheSeedMismatchRebuilds(t *testing.T) {
	g := graph.Grid(7, 7)
	n := g.N()
	p := Params{X: 0.5}
	baseB, baseBM := computePipeline(t, g, p, nil, sim.EngineLegacy, 12)

	cached := Params{X: 0.5, Cache: NewResultCache()}
	computePipeline(t, g, cached, nil, sim.EngineLegacy, 11) // populate under seed 11
	gotB, rebuildM := computePipeline(t, g, cached, nil, sim.EngineLegacy, 12)
	if !reflect.DeepEqual(gotB, baseB) {
		t.Error("rebuild under new seed diverges from the uncached run of that seed")
	}
	if rebuildM.Rounds != baseBM.Rounds+2*sim.Log2Ceil(n) {
		t.Errorf("mismatch run took %d rounds, want full rebuild %d + agreement %d",
			rebuildM.Rounds, baseBM.Rounds, 2*sim.Log2Ceil(n))
	}
}

// TestResultCacheForceIncludeMismatchRebuilds flips one node's forceInclude
// bit (the γ = 0 single-source summoning) between runs: the per-node slot
// check must catch it even when the sampled membership happens to match.
func TestResultCacheForceIncludeMismatchRebuilds(t *testing.T) {
	g := graph.Grid(7, 7)
	n := g.N()
	force := make([]bool, n)
	force[3] = true

	cached := Params{X: 0.5, Cache: NewResultCache()}
	computePipeline(t, g, cached, nil, sim.EngineLegacy, 11)
	base, _ := computePipeline(t, g, Params{X: 0.5}, force, sim.EngineLegacy, 11)
	got, m := computePipeline(t, g, cached, force, sim.EngineLegacy, 11)
	if !reflect.DeepEqual(got, base) {
		t.Error("forceInclude rebuild diverges from the uncached run")
	}
	if !got[3].InSkeleton {
		t.Error("forced node missing from the rebuilt skeleton")
	}
	if hitRounds := 2 * sim.Log2Ceil(n); m.Rounds <= hitRounds {
		t.Errorf("forceInclude change bound cached state in %d rounds (agreement is %d)", m.Rounds, hitRounds)
	}
}

// TestResultCacheSnapshotRestore pins the persistence contract: a restored
// snapshot (round-tripped through gob, as the on-disk codec does) serves a
// warm run identically to the in-memory cache on every engine, and shape
// validation rejects snapshots for the wrong node count.
func TestResultCacheSnapshotRestore(t *testing.T) {
	g := graph.Grid(7, 7)
	n := g.N()
	cache := NewResultCache()
	cached := Params{X: 0.5, Cache: cache}
	computePipeline(t, g, cached, nil, sim.EngineLegacy, 11) // populate
	memOut, memM := computePipeline(t, g, cached, nil, sim.EngineLegacy, 11)

	orig, err := cache.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(orig); err != nil {
		t.Fatal(err)
	}
	var snap CacheSnapshot
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&snap); err != nil {
		t.Fatal(err)
	}

	for _, eng := range cacheEngines {
		restored := NewResultCache()
		if err := restored.Restore(snap, n); err != nil {
			t.Fatal(err)
		}
		out, m := computePipeline(t, g, Params{X: 0.5, Cache: restored}, nil, eng, 11)
		if !reflect.DeepEqual(out, memOut) {
			t.Errorf("%s: warm-disk skeleton differs from warm-memory", eng)
		}
		if m != memM {
			t.Errorf("%s: warm-disk metrics %+v differ from warm-memory %+v", eng, m, memM)
		}
	}

	if err := NewResultCache().Restore(snap, n+1); err == nil {
		t.Error("restoring a snapshot recorded for a different node count succeeded")
	}
}

// TestResultCacheEviction pins the FIFO bound: distinct keys beyond
// maxResultEntries evict the oldest entry, and a re-keyed construction
// after eviction rebuilds rather than binding stale state.
func TestResultCacheEviction(t *testing.T) {
	g := graph.Grid(5, 5)
	n := g.N()
	cache := NewResultCache()
	// Distinct MaxH values below the natural h produce distinct keys.
	for h := 1; h <= maxResultEntries+2; h++ {
		out, _ := computePipeline(t, g, Params{X: 0.5, MaxH: h, Cache: cache}, nil, sim.EngineLegacy, 11)
		if len(out) != n {
			t.Fatalf("h=%d: %d results", h, len(out))
		}
	}
	if got := cache.Len(); got > maxResultEntries {
		t.Fatalf("cache holds %d entries, cap %d", got, maxResultEntries)
	}
	// The first key was evicted: rerunning it must rebuild, not bind.
	_, baseM := computePipeline(t, g, Params{X: 0.5, MaxH: 1}, nil, sim.EngineLegacy, 11)
	_, m := computePipeline(t, g, Params{X: 0.5, MaxH: 1, Cache: cache}, nil, sim.EngineLegacy, 11)
	if m.Rounds != baseM.Rounds+2*sim.Log2Ceil(n) {
		t.Errorf("evicted key reran in %d rounds, want rebuild %d + agreement %d",
			m.Rounds, baseM.Rounds, 2*sim.Log2Ceil(n))
	}
}
