package skeleton

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

var stepEngines = []sim.Engine{sim.EngineLegacy, sim.EngineSharded, sim.EngineStep}

// TestExploreMachineMatches proves the exploration machine byte-identical
// to LimitedExplore on every engine.
func TestExploreMachineMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := graph.WithRandomWeights(graph.Grid(6, 6), 5, rng)
	isSource := func(id int) bool { return id%4 == 0 }
	const rounds = 7

	type res struct {
		near []int64
		hops []int
	}
	want := make([]res, g.N())
	wantM, err := sim.Run(g, sim.Config{Seed: 13, Engine: sim.EngineLegacy}, func(env *sim.Env) {
		n, h := LimitedExplore(env, isSource(env.ID()), rounds)
		want[env.ID()] = res{n, h}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range stepEngines {
		got := make([]res, g.N())
		gotM, err := sim.RunStep(g, sim.Config{Seed: 13, Engine: eng}, func(env *sim.Env) sim.StepProgram {
			m := NewExploreMachine(env, isSource(env.ID()), rounds)
			return sim.Sequence(
				func(*sim.Env) sim.StepProgram { return m },
				sim.Finish(func(env *sim.Env) { got[env.ID()] = res{m.Near, m.Hops} }),
			)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("engine=%s: exploration results differ", eng)
		}
		if wantM != gotM {
			t.Errorf("engine=%s: metrics differ: %+v vs %+v", eng, wantM, gotM)
		}
	}
}

// TestFloodVectorsMachineMatches proves the vector-flood machine
// byte-identical to FloodVectors on every engine.
func TestFloodVectorsMachineMatches(t *testing.T) {
	g := graph.Grid(5, 5)
	mineOf := func(id, n int) []int64 {
		if id%3 != 0 {
			return nil
		}
		v := make([]int64, n)
		for i := range v {
			v[i] = int64(id*100 + i)
		}
		return v
	}
	const radius = 4
	want := make([]map[int][]int64, g.N())
	wantM, err := sim.Run(g, sim.Config{Seed: 14, Engine: sim.EngineLegacy}, func(env *sim.Env) {
		want[env.ID()] = labelsToMap(FloodVectors(env, mineOf(env.ID(), env.N()), radius))
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range stepEngines {
		got := make([]map[int][]int64, g.N())
		gotM, err := sim.RunStep(g, sim.Config{Seed: 14, Engine: eng}, func(env *sim.Env) sim.StepProgram {
			m := NewFloodVectorsMachine(env, mineOf(env.ID(), env.N()), radius)
			return sim.Sequence(
				func(*sim.Env) sim.StepProgram { return m },
				sim.Finish(func(env *sim.Env) { got[env.ID()] = labelsToMap(&m.Known) }),
			)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("engine=%s: flood results differ", eng)
		}
		if wantM != gotM {
			t.Errorf("engine=%s: metrics differ: %+v vs %+v", eng, wantM, gotM)
		}
	}
}

// labelsToMap drains a flood result into a plain map for DeepEqual
// comparison across the two execution forms.
func labelsToMap(l *Labels) map[int][]int64 {
	out := map[int][]int64{}
	for _, k := range l.AppendSortedKeys(nil) {
		v, _ := l.Get(k)
		out[int(k)] = v
	}
	return out
}

// TestComputeMachineMatches proves the Algorithm 6 machine byte-identical
// to Compute on every engine (including the membership sampling).
func TestComputeMachineMatches(t *testing.T) {
	g := graph.Path(40)
	p := Params{X: 0.5}
	want := make([]Result, g.N())
	wantM, err := sim.Run(g, sim.Config{Seed: 15, Engine: sim.EngineLegacy}, func(env *sim.Env) {
		want[env.ID()] = Compute(env, p, env.ID() == 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range stepEngines {
		got := make([]Result, g.N())
		gotM, err := sim.RunStep(g, sim.Config{Seed: 15, Engine: eng}, func(env *sim.Env) sim.StepProgram {
			m := NewComputeMachine(env, p, env.ID() == 0)
			return sim.Sequence(
				func(*sim.Env) sim.StepProgram { return m },
				sim.Finish(func(env *sim.Env) { got[env.ID()] = m.Res }),
			)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("engine=%s: skeleton results differ", eng)
		}
		if wantM != gotM {
			t.Errorf("engine=%s: metrics differ: %+v vs %+v", eng, wantM, gotM)
		}
	}
}
