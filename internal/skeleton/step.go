package skeleton

import (
	"cmp"
	"slices"

	"repro/internal/graph"
	"repro/internal/ncc"
	"repro/internal/sim"
)

// Step-machine forms of the package's collective operations (see
// sim.StepProgram). These are the hot round loops of the APSP/k-SSP
// pipelines — at n = 16384, LimitedExplore alone accounts for most rounds —
// so they are the first beneficiaries of the goroutine-free engine. Each
// port is message-for-message identical to its goroutine twin.

// ExploreMachine is the step form of LimitedExplore: multi-source
// synchronous Bellman-Ford for a fixed number of rounds. After it finishes,
// Near and Hops hold the dense per-source vectors.
type ExploreMachine struct {
	// Near[u] is the distance estimate for source u (graph.Inf if unheard);
	// Hops[u] the hop distance at which u was first heard (-1 if never).
	// Valid once Step returned true.
	Near []int64
	Hops []int

	loop    sim.Loop
	pending []int32
	// bufs rotate round-for-round like LimitedExplore's (see the comment
	// there): bufs[i&1] is the delta broadcast at loop index i, rewritten
	// no earlier than two barriers after every reader finished with it.
	bufs [2]distUpdates
}

// NewExploreMachine builds the collective exploration machine; all nodes
// must start it in the same round with the same round count. It takes
// exactly `rounds` rounds, like LimitedExplore.
func NewExploreMachine(env *sim.Env, isSource bool, rounds int) *ExploreMachine {
	n := env.N()
	m := &ExploreMachine{
		Near:    make([]int64, n),
		Hops:    make([]int, n),
		pending: make([]int32, n),
	}
	for i := 0; i < n; i++ {
		m.Near[i] = graph.Inf
		m.Hops[i] = -1
		m.pending[i] = -1
	}
	if isSource {
		m.Near[env.ID()] = 0
		m.Hops[env.ID()] = 0
		m.bufs[0] = append(m.bufs[0], distUpdate{Source: env.ID(), Dist: 0, Hops: 0})
	}
	m.loop = sim.Loop{Rounds: rounds, Send: m.send, Recv: m.recv}
	return m
}

// Step implements sim.StepProgram.
func (m *ExploreMachine) Step(env *sim.Env) bool { return m.loop.Step(env) }

func (m *ExploreMachine) send(env *sim.Env, i int) {
	if len(m.bufs[i&1]) > 0 {
		env.BroadcastLocal(&m.bufs[i&1])
	}
}

func (m *ExploreMachine) recv(env *sim.Env, in sim.Inbox, i int) {
	// Rebuild the buffer the NEXT send will broadcast; the one sent last
	// round is still being read by neighbors this round (see bufs).
	next := m.bufs[(i+1)&1][:0]
	for _, lm := range in.Local {
		ups, ok := lm.Payload.(*distUpdates)
		if !ok {
			continue
		}
		w, _ := env.Graph().Weight(env.ID(), lm.From)
		for _, up := range *ups {
			nd := up.Dist + w
			if nd < m.Near[up.Source] {
				m.Near[up.Source] = nd
				if m.Hops[up.Source] < 0 {
					m.Hops[up.Source] = up.Hops + 1
				}
				u := distUpdate{Source: up.Source, Dist: nd, Hops: up.Hops + 1}
				if j := m.pending[up.Source]; j >= 0 {
					next[j] = u
				} else {
					m.pending[up.Source] = int32(len(next))
					next = append(next, u)
				}
			}
		}
	}
	for _, up := range next {
		m.pending[up.Source] = -1
	}
	slices.SortFunc(next, func(a, b distUpdate) int { return cmp.Compare(a.Source, b.Source) })
	m.bufs[(i+1)&1] = next
}

// FloodVectorsMachine is the step form of FloodVectors: radius-limited
// first-arrival flooding of immutable label vectors.
type FloodVectorsMachine struct {
	// Known maps each heard origin to its (shared, immutable) vector; valid
	// once Step returned true.
	Known Labels

	loop sim.Loop
	bufs [2]floodVecs // rotated like ExploreMachine's delta buffers
}

// NewFloodVectorsMachine builds the collective flood machine; all nodes
// must start it in the same round with the same radius. mine is this node's
// vector (nil unless an origin). It takes exactly `radius` rounds, like
// FloodVectors.
func NewFloodVectorsMachine(env *sim.Env, mine []int64, radius int) *FloodVectorsMachine {
	m := &FloodVectorsMachine{}
	if mine != nil {
		m.Known.Put(uint64(env.ID()), mine)
		m.bufs[0] = append(m.bufs[0], floodVec{Origin: env.ID(), TTL: radius, Values: mine})
	}
	m.loop = sim.Loop{Rounds: radius, Send: m.send, Recv: m.recv}
	return m
}

// Step implements sim.StepProgram.
func (m *FloodVectorsMachine) Step(env *sim.Env) bool { return m.loop.Step(env) }

func (m *FloodVectorsMachine) send(env *sim.Env, i int) {
	if len(m.bufs[i&1]) > 0 {
		env.BroadcastLocal(&m.bufs[i&1])
	}
}

func (m *FloodVectorsMachine) recv(env *sim.Env, in sim.Inbox, i int) {
	next := m.bufs[(i+1)&1][:0]
	for _, lm := range in.Local {
		vecs, ok := lm.Payload.(*floodVecs)
		if !ok {
			continue
		}
		for _, fv := range *vecs {
			if m.Known.Has(uint64(fv.Origin)) {
				continue
			}
			m.Known.Put(uint64(fv.Origin), fv.Values)
			if fv.TTL > 1 {
				next = append(next, floodVec{Origin: fv.Origin, TTL: fv.TTL - 1, Values: fv.Values})
			}
		}
	}
	m.bufs[(i+1)&1] = next
}

// ComputeMachine is the step form of Compute (Algorithm 6): sample V_S
// membership, then explore for H rounds.
type ComputeMachine struct {
	// Res is this node's skeleton view; valid once Step returned true.
	Res Result

	prog sim.StepProgram
}

// NewComputeMachine builds the collective Algorithm 6 machine; all nodes
// must start it in the same round with the same params. Membership is
// sampled at construction, which is where Compute samples it, so the
// per-node randomness stream stays aligned across the two forms. With
// p.Cache set it is the step form of the cached construction: the
// collective agreement aggregation, then either a zero-round bind or the
// full exploration (re-populating the cache) — the same rounds, messages,
// and branch as the goroutine form.
func NewComputeMachine(env *sim.Env, p Params, forceInclude bool) *ComputeMachine {
	n := env.N()
	h := p.H(n)
	inS := forceInclude || env.Rand().Float64() < p.SampleProb(n)
	m := &ComputeMachine{}
	if p.Cache == nil {
		m.prog = newExploreResultProg(env, m, inS, h)
		return m
	}
	key := keyOf(p, n)
	entry := p.Cache.lookup(key)
	inner := &ComputeMachine{}
	var agg *ncc.AggregateMachine
	m.prog = sim.Sequence(
		func(env *sim.Env) sim.StepProgram {
			agg = ncc.NewAggregateMachine(env, entry.mismatch(env.ID(), forceInclude, inS), ncc.AggMax)
			return agg
		},
		func(env *sim.Env) sim.StepProgram {
			p.Cache.traceEvent(env, key, agg.Out == 0)
			if agg.Out == 0 {
				return nil
			}
			inner.prog = newExploreResultProg(env, inner, inS, h)
			return inner
		},
		sim.Finish(func(env *sim.Env) {
			if agg.Out == 0 {
				m.Res = entry.bind(env.ID())
				return
			}
			p.Cache.shared(env, key).store(env.ID(), forceInclude, inner.Res)
			m.Res = inner.Res
		}),
	)
	return m
}

// newExploreResultProg is the uncached construction machine, writing the
// finished result to m.Res (the step twin of exploreResult).
func newExploreResultProg(env *sim.Env, m *ComputeMachine, inS bool, h int) sim.StepProgram {
	n := env.N()
	var explore *ExploreMachine
	return sim.Sequence(
		func(env *sim.Env) sim.StepProgram {
			explore = NewExploreMachine(env, inS, h)
			return explore
		},
		sim.Finish(func(env *sim.Env) {
			m.Res = resultFromVectors(n, inS, h, explore.Near, explore.Hops)
		}),
	)
}

// Step implements sim.StepProgram.
func (m *ComputeMachine) Step(env *sim.Env) bool { return m.prog.Step(env) }

// RepresentativesMachine is the step form of ComputeRepresentatives
// (Algorithm 7): every source tags its closest skeleton node and the
// triples become public knowledge by token dissemination.
type RepresentativesMachine struct {
	// Out is the public (source, rep, d_h) list, sorted by source; valid
	// once Step returned true.
	Out []RepInfo

	prog sim.StepProgram
}

// NewRepresentativesMachine builds the collective Algorithm 7 machine; all
// nodes must start it in the same round with the same kBound, exactly like
// ComputeRepresentatives.
func NewRepresentativesMachine(env *sim.Env, skel Result, isSource bool, kBound int) *RepresentativesMachine {
	m := &RepresentativesMachine{}
	var mine []ncc.Token
	if isSource {
		rep, dist := closestSkeleton(env.ID(), skel)
		mine = append(mine, ncc.Token{A: int64(env.ID()), B: int64(rep), C: dist})
	}
	var diss *ncc.DisseminateMachine
	m.prog = sim.Sequence(
		func(env *sim.Env) sim.StepProgram {
			diss = ncc.NewDisseminateMachine(env, mine, kBound, 1, ncc.DisseminateParams{})
			return diss
		},
		sim.Finish(func(env *sim.Env) {
			m.Out = repsFromTokens(diss.Out)
		}),
	)
	return m
}

// Step implements sim.StepProgram.
func (m *RepresentativesMachine) Step(env *sim.Env) bool { return m.prog.Step(env) }

// distUpdates is the local-mode payload of the Bellman-Ford wave: a batch
// of distance updates.
type distUpdates []distUpdate

// PayloadWords implements sim.WordSized: each update carries a source ID, a
// distance, and a hop count.
func (d distUpdates) PayloadWords() int64 { return 3 * int64(len(d)) }

// floodVecs is the local-mode payload of FloodVectors: a batch of label
// vectors. The vectors are shared across the whole flood, but every local
// transmission carries their full contents, so the wire charge counts them
// in full.
type floodVecs []floodVec

// PayloadWords implements sim.WordSized: each vector is its origin, TTL,
// and one word per subject.
func (f floodVecs) PayloadWords() int64 {
	words := int64(0)
	for _, fv := range f {
		words += 2 + int64(len(fv.Values))
	}
	return words
}
