package skeleton

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

func runSkeleton(t *testing.T, g *graph.Graph, p Params, seed int64) []Result {
	t.Helper()
	results := make([]Result, g.N())
	m, err := sim.Run(g, sim.Config{Seed: seed}, func(env *sim.Env) {
		results[env.ID()] = Compute(env, p, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds != p.H(g.N()) {
		t.Fatalf("Compute took %d rounds, want exactly h = %d", m.Rounds, p.H(g.N()))
	}
	if m.GlobalMsgs != 0 {
		t.Fatalf("skeleton construction used %d global messages; Algorithm 6 is local-only", m.GlobalMsgs)
	}
	return results
}

func TestHFormula(t *testing.T) {
	p := Params{X: 2.0 / 3.0}
	// h = ceil(n^(1/3) * ln n), capped at n.
	if h := p.H(64); h < 8 || h > 64 {
		t.Fatalf("H(64) = %d out of sane range", h)
	}
	if h := (Params{X: 0.5, MaxH: 5}).H(1000); h != 5 {
		t.Fatalf("MaxH cap violated: %d", h)
	}
	if h := (Params{X: 1.0}).H(100); h < 1 {
		t.Fatalf("H must be >= 1, got %d", h)
	}
}

func TestSampleProb(t *testing.T) {
	p := Params{X: 0.5}
	if got := p.SampleProb(100); got < 0.099 || got > 0.101 {
		t.Fatalf("SampleProb = %v, want 0.1", got)
	}
	// Default X = 2/3.
	if got := (Params{}).SampleProb(1000); got < 0.099 || got > 0.101 {
		t.Fatalf("default SampleProb(1000) = %v, want ~0.1", got)
	}
}

func TestSkeletonDistancePreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid unweighted", graph.Grid(10, 10)},
		{"grid weighted", graph.WithRandomWeights(graph.Grid(9, 9), 10, rng)},
		{"sparse", graph.SparseConnected(120, 1.5, rng)},
		{"sparse weighted", graph.WithRandomWeights(graph.SparseConnected(110, 1.2, rng), 20, rng)},
		{"cycle", graph.Cycle(80)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			results := runSkeleton(t, tt.g, Params{X: 2.0 / 3.0}, 21)
			if err := CheckCoverage(results); err != nil {
				t.Fatal(err)
			}
			if err := CheckDistancePreservation(tt.g, results); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSkeletonSizeConcentration(t *testing.T) {
	g := graph.Grid(12, 12)
	n := g.N()
	p := Params{X: 0.5}
	results := runSkeleton(t, g, p, 23)
	count := 0
	for _, r := range results {
		if r.InSkeleton {
			count++
		}
	}
	mean := p.SampleProb(n) * float64(n) // = sqrt(n) = 12
	if float64(count) < mean/3 || float64(count) > mean*3 {
		t.Fatalf("|V_S| = %d, expected around %.1f", count, mean)
	}
}

func TestForceInclude(t *testing.T) {
	g := graph.Path(40)
	results := make([]Result, g.N())
	_, err := sim.Run(g, sim.Config{Seed: 5}, func(env *sim.Env) {
		results[env.ID()] = Compute(env, Params{X: 0.3}, env.ID() == 17)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !results[17].InSkeleton {
		t.Fatal("forceInclude node not in skeleton")
	}
}

func TestNearSandwich(t *testing.T) {
	// d(v,u) <= Near[u] <= d_h(v,u) for every recorded pair, and
	// membership in Near is exactly "hop distance <= h".
	rng := rand.New(rand.NewSource(11))
	g := graph.WithRandomWeights(graph.Grid(8, 8), 7, rng)
	p := Params{X: 0.5}
	results := runSkeleton(t, g, p, 29)
	h := p.H(g.N())
	for v, r := range results {
		trueD := graph.Dijkstra(g, v)
		limD := graph.LimitedDistance(g, v, h)
		hops := graph.BFS(g, v)
		for u, est := range r.Near {
			if est < trueD[u] {
				t.Fatalf("node %d underestimates d(%d): %d < %d", v, u, est, trueD[u])
			}
			if est > limD[u] {
				t.Fatalf("node %d estimate for %d is %d > d_h = %d", v, u, est, limD[u])
			}
			if hops[u] > int64(h) {
				t.Fatalf("node %d recorded skeleton %d at hop distance %d > h = %d", v, u, hops[u], h)
			}
		}
		// Completeness: every skeleton node within h hops must be in Near.
		for u := 0; u < g.N(); u++ {
			if results[u].InSkeleton && hops[u] <= int64(h) {
				if _, ok := r.Near[u]; !ok {
					t.Fatalf("node %d missing skeleton %d at hop distance %d <= h", v, u, hops[u])
				}
			}
		}
	}
}

func TestNearHopsMatchBFS(t *testing.T) {
	g := graph.Grid(7, 7)
	results := runSkeleton(t, g, Params{X: 0.5}, 31)
	for v, r := range results {
		hops := graph.BFS(g, v)
		for u, hh := range r.NearHops {
			if int64(hh) != hops[u] {
				t.Fatalf("node %d records skeleton %d at %d hops, BFS says %d", v, u, hh, hops[u])
			}
		}
	}
}

func TestBuildRejectsInconsistent(t *testing.T) {
	results := []Result{
		{InSkeleton: true, H: 2, Near: map[int]int64{0: 0, 1: 5}},
		{InSkeleton: true, H: 2, Near: map[int]int64{1: 0, 0: 7}}, // weight mismatch
	}
	if _, _, err := Build(results); err == nil {
		t.Fatal("Build accepted asymmetric skeleton edges")
	}
}

func TestRepresentatives(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := graph.WithRandomWeights(graph.Grid(8, 8), 5, rng)
	n := g.N()
	srcRng := rand.New(rand.NewSource(17))
	isSource := make([]bool, n)
	var sources []int
	for v := 0; v < n; v++ {
		if srcRng.Float64() < 0.15 {
			isSource[v] = true
			sources = append(sources, v)
		}
	}
	if len(sources) == 0 {
		isSource[0] = true
		sources = append(sources, 0)
	}

	skels := make([]Result, n)
	repsAt := make([][]RepInfo, n)
	_, err := sim.Run(g, sim.Config{Seed: 19}, func(env *sim.Env) {
		skels[env.ID()] = Compute(env, Params{X: 2.0 / 3.0}, false)
		repsAt[env.ID()] = ComputeRepresentatives(env, skels[env.ID()], isSource[env.ID()], len(sources))
	})
	if err != nil {
		t.Fatal(err)
	}

	// All nodes agree on the full public list (Fact 4.4).
	for v := 1; v < n; v++ {
		if len(repsAt[v]) != len(repsAt[0]) {
			t.Fatalf("node %d sees %d rep triples, node 0 sees %d", v, len(repsAt[v]), len(repsAt[0]))
		}
		for i := range repsAt[v] {
			if repsAt[v][i] != repsAt[0][i] {
				t.Fatalf("node %d rep triple %d differs", v, i)
			}
		}
	}
	// One triple per source; rep is a skeleton node (or the source itself);
	// dist matches the source's Near map.
	reps := repsAt[0]
	if len(reps) != len(sources) {
		t.Fatalf("%d rep triples for %d sources", len(reps), len(sources))
	}
	for _, ri := range reps {
		if !isSource[ri.Source] {
			t.Fatalf("rep triple for non-source %d", ri.Source)
		}
		if ri.Rep == -1 {
			t.Fatalf("source %d found no representative (coverage failure)", ri.Source)
		}
		if !skels[ri.Rep].InSkeleton {
			t.Fatalf("representative %d of %d is not a skeleton node", ri.Rep, ri.Source)
		}
		if skels[ri.Source].InSkeleton && ri.Rep != ri.Source {
			t.Fatalf("skeleton source %d has rep %d, want itself", ri.Source, ri.Rep)
		}
		if d, ok := skels[ri.Source].Near[ri.Rep]; !ok || d != ri.Dist {
			t.Fatalf("rep dist mismatch for source %d: published %d, local %v", ri.Source, ri.Dist, d)
		}
	}
}

func TestSkeletonDeterminism(t *testing.T) {
	g := graph.Grid(6, 6)
	a := runSkeleton(t, g, Params{X: 0.5}, 41)
	b := runSkeleton(t, g, Params{X: 0.5}, 41)
	for v := range a {
		if a[v].InSkeleton != b[v].InSkeleton || len(a[v].Near) != len(b[v].Near) {
			t.Fatalf("node %d skeleton state differs between identical runs", v)
		}
	}
}
