package skeleton

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ncc"
	"repro/internal/persist"
	"repro/internal/sim"
)

// ResultCache caches per-node skeleton construction results (Algorithm 6)
// across runs. A skeleton is a pure function of the graph, the seed, and
// the construction parameters: the sampled membership comes from the
// per-node random streams (which derive only from Config.Seed) and the
// exploration is deterministic flooding. When the same instance recurs —
// repeated facade calls on one Network, a warm-started CLI run — the h
// exploration rounds can be replaced by one collective agreement.
//
// Correctness is collective, exactly like routing.SessionCache: an entry
// records every node's forceInclude bit and sampled membership at creation,
// and the cached path first runs one global max-aggregation
// (2·ceil(log2 n) rounds, Lemma B.2) in which each node reports whether its
// own slot still matches. Only a unanimous match binds the cached results;
// any mismatch rebuilds the skeleton from scratch (and re-caches it). Every
// node therefore takes the same branch on every engine, and the cache never
// changes results — only the number of construction rounds.
//
// The cached path always consumes the membership draw from the node's
// random stream before consulting the cache (see Compute), so the per-node
// stream position after skeleton construction is identical on hits and
// misses. That keeps every later phase that draws randomness — helper
// sampling, dissemination destinations — byte-identical between warm and
// cold runs.
//
// Bound results are shared: callers must treat Result.Near / NearHops of a
// cache-bound Result as immutable (every algorithm in this repository only
// reads them).
type ResultCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	order   []cacheKey // insertion order, for deterministic FIFO eviction
	trace   func(event string)
}

// maxResultEntries bounds the cache: one entry holds every node's Near /
// NearHops maps. Eviction is FIFO on insertion order — deterministic, so
// repeated seeded runs keep identical hit/miss sequences and therefore
// identical round counts.
const maxResultEntries = 16

// NewResultCache returns an empty cache, ready to be shared by any number
// of sequential runs over the same graph and seed.
func NewResultCache() *ResultCache {
	return &ResultCache{entries: map[cacheKey]*cacheEntry{}}
}

// SetTrace installs a cache-event hook: fn is invoked (at node 0 only) with
// one line per collective agreement, saying whether the run hit or rebuilt.
// The sequence is engine-independent; the golden round-trace test pins it.
func (c *ResultCache) SetTrace(fn func(event string)) { c.trace = fn }

// cacheKey is the globally known identity of a skeleton construction: the
// resolved sampling probability and exploration depth, which together fully
// determine Compute's behavior for a fixed graph and seed. (X, HFactor and
// MaxH only act through these two values.)
type cacheKey struct {
	prob float64
	h    int
}

func keyOf(p Params, n int) cacheKey {
	return cacheKey{prob: p.SampleProb(n), h: p.H(n)}
}

// cacheEntry holds the cached per-node results. Each node only ever reads
// and writes its own index, so slot access needs no lock: the engines'
// round barriers (within a run) and the run's return (across runs) order
// every write before every later read.
type cacheEntry struct {
	filled []bool
	force  []bool
	inSkel []bool
	res    []Result
}

func newCacheEntry(n int) *cacheEntry {
	return &cacheEntry{
		filled: make([]bool, n),
		force:  make([]bool, n),
		inSkel: make([]bool, n),
		res:    make([]Result, n),
	}
}

func (c *ResultCache) lookup(key cacheKey) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[key]
}

// shared returns the run-shared entry being (re)populated for key, creating
// it and installing it into the cache exactly once per run (env.SharedOnce
// guarantees all nodes of the run store into the same object).
func (c *ResultCache) shared(env *sim.Env, key cacheKey) *cacheEntry {
	v := env.SharedOnce("skeleton.ResultCache", func() interface{} {
		e := newCacheEntry(env.N())
		c.mu.Lock()
		if _, exists := c.entries[key]; !exists {
			if len(c.order) >= maxResultEntries {
				oldest := c.order[0]
				c.order = c.order[1:]
				delete(c.entries, oldest)
			}
			c.order = append(c.order, key)
		}
		c.entries[key] = e
		c.mu.Unlock()
		return e
	})
	return v.(*cacheEntry)
}

// mismatch reports whether this node's slot of entry fails to match its
// current membership draw (1) or matches (0); a nil or unfilled entry
// always mismatches. The value feeds the collective max-aggregation. The
// freshly sampled membership is part of the check, so a cache recorded
// under a different seed (or a stale file renamed into place) degrades to a
// rebuild, never to wrong results.
func (e *cacheEntry) mismatch(id int, force, inSkel bool) int64 {
	if e == nil || !e.filled[id] || e.force[id] != force || e.inSkel[id] != inSkel {
		return 1
	}
	return 0
}

// store records one node's freshly built result into its slot.
func (e *cacheEntry) store(id int, force bool, res Result) {
	e.force[id] = force
	e.inSkel[id] = res.InSkeleton
	e.res[id] = res
	e.filled[id] = true
}

// bind returns this node's cached result, consuming zero rounds. The maps
// are shared with the cache and must not be mutated.
func (e *cacheEntry) bind(id int) Result { return e.res[id] }

// traceEvent records one collective agreement outcome (node 0 only, so the
// trace is a single global sequence).
func (c *ResultCache) traceEvent(env *sim.Env, key cacheKey, hit bool) {
	if c.trace == nil || env.ID() != 0 {
		return
	}
	verdict := "rebuild"
	if hit {
		verdict = "hit"
	}
	c.trace(fmt.Sprintf("skeleton h=%d p=%.4g: %s", key.h, key.prob, verdict))
}

// compute is the cached construction path (goroutine form): the collective
// hit/miss agreement, then either a zero-round bind or a full exploration
// that re-populates the cache. inSkel is the membership this node just
// sampled (the draw happens in Compute, before the cache is consulted).
func (c *ResultCache) compute(env *sim.Env, key cacheKey, force, inSkel bool, h int) Result {
	entry := c.lookup(key)
	hit := ncc.Aggregate(env, entry.mismatch(env.ID(), force, inSkel), ncc.AggMax) == 0
	c.traceEvent(env, key, hit)
	if hit {
		return entry.bind(env.ID())
	}
	res := exploreResult(env, inSkel, h)
	c.shared(env, key).store(env.ID(), force, res)
	return res
}

// CacheSnapshot is the serializable image of a ResultCache, produced by
// Snapshot and consumed by Restore — part of the seed-dependent section of
// the v2 on-disk warm-start cache. Entries preserve insertion order so a
// restored cache keeps the same deterministic FIFO eviction sequence.
// Per-node Near/NearHops maps are stored as packed vectors (sorted
// delta-varint IDs plus varint distance and hop streams) instead of gob's
// reflected maps — the skeleton results are the largest genuinely per-node
// payload of the cache, and the packed form is both several times smaller
// and far cheaper to encode.
type CacheSnapshot struct {
	Entries []CacheEntrySnapshot
}

// CacheEntrySnapshot is one cached skeleton construction: its resolved key
// and every node's packed slot. NearIDs[id] packs the sorted keys of the
// node's Near map (persist.PackSorted); NearDists[id] and NearHops[id]
// pack the aligned distance and hop values (persist.PackInt64s).
type CacheEntrySnapshot struct {
	Prob      float64
	H         int
	Filled    []bool
	Force     []bool
	InSkel    []bool
	NearIDs   [][]byte
	NearDists [][]byte
	NearHops  [][]byte
}

// Snapshot captures the cache's current contents for persistence. The
// packed vectors are fresh copies, but bool slices are shared with the
// cache; callers must serialize the snapshot before the cache is used
// again.
func (c *ResultCache) Snapshot() (CacheSnapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := CacheSnapshot{Entries: make([]CacheEntrySnapshot, 0, len(c.order))}
	for _, key := range c.order {
		e := c.entries[key]
		n := len(e.filled)
		es := CacheEntrySnapshot{
			Prob:      key.prob,
			H:         key.h,
			Filled:    e.filled,
			Force:     e.force,
			InSkel:    e.inSkel,
			NearIDs:   make([][]byte, n),
			NearDists: make([][]byte, n),
			NearHops:  make([][]byte, n),
		}
		for id := 0; id < n; id++ {
			if !e.filled[id] {
				continue
			}
			res := e.res[id]
			ids := make([]int, 0, len(res.Near))
			for u := range res.Near {
				ids = append(ids, u)
			}
			sort.Ints(ids)
			dists := make([]int64, len(ids))
			hops := make([]int64, len(ids))
			for j, u := range ids {
				dists[j] = res.Near[u]
				hop, ok := res.NearHops[u]
				if !ok {
					return CacheSnapshot{}, fmt.Errorf("skeleton: snapshot: node %d has %d in Near but not NearHops", id, u)
				}
				hops[j] = int64(hop)
			}
			es.NearIDs[id] = persist.PackSorted(ids)
			es.NearDists[id] = persist.PackInt64s(dists)
			es.NearHops[id] = persist.PackInt64s(hops)
		}
		snap.Entries = append(snap.Entries, es)
	}
	return snap, nil
}

// Restore replaces the cache's contents with a snapshot recorded for an
// n-node graph, validating shape and decoding the packed vectors.
// Restoring a snapshot recorded under a different seed is safe — the
// collective membership agreement degrades every stale entry to a rebuild
// — but restoring one from a different graph must be prevented by the
// caller (the facade keys cache files by graph fingerprint and seed).
func (c *ResultCache) Restore(snap CacheSnapshot, n int) error {
	entries := map[cacheKey]*cacheEntry{}
	order := make([]cacheKey, 0, len(snap.Entries))
	for i, es := range snap.Entries {
		if len(es.Filled) != n || len(es.Force) != n || len(es.InSkel) != n ||
			len(es.NearIDs) != n || len(es.NearDists) != n || len(es.NearHops) != n {
			return fmt.Errorf("skeleton: cache snapshot entry %d sized for %d nodes, want %d", i, len(es.Filled), n)
		}
		key := cacheKey{prob: es.Prob, h: es.H}
		if _, dup := entries[key]; dup {
			return fmt.Errorf("skeleton: cache snapshot has duplicate entry for h=%d p=%g", es.H, es.Prob)
		}
		e := newCacheEntry(n)
		copy(e.filled, es.Filled)
		copy(e.force, es.Force)
		copy(e.inSkel, es.InSkel)
		for id := 0; id < n; id++ {
			if !es.Filled[id] {
				continue
			}
			ids, err := persist.UnpackSorted(es.NearIDs[id])
			if err != nil {
				return fmt.Errorf("skeleton: cache snapshot entry %d node %d IDs: %w", i, id, err)
			}
			if len(ids) > 0 && ids[len(ids)-1] >= n {
				return fmt.Errorf("skeleton: cache snapshot entry %d node %d: ID %d out of range", i, id, ids[len(ids)-1])
			}
			dists, err := persist.UnpackInt64s(es.NearDists[id])
			if err != nil {
				return fmt.Errorf("skeleton: cache snapshot entry %d node %d dists: %w", i, id, err)
			}
			hops, err := persist.UnpackInt64s(es.NearHops[id])
			if err != nil {
				return fmt.Errorf("skeleton: cache snapshot entry %d node %d hops: %w", i, id, err)
			}
			if len(dists) != len(ids) || len(hops) != len(ids) {
				return fmt.Errorf("skeleton: cache snapshot entry %d node %d: %d IDs but %d/%d values",
					i, id, len(ids), len(dists), len(hops))
			}
			near := make(map[int]int64, len(ids))
			nearHops := make(map[int]int, len(ids))
			for j, u := range ids {
				near[u] = dists[j]
				nearHops[u] = int(hops[j])
			}
			e.res[id] = Result{InSkeleton: es.InSkel[id], H: es.H, Near: near, NearHops: nearHops}
		}
		entries[key] = e
		order = append(order, key)
	}
	c.mu.Lock()
	c.entries = entries
	c.order = order
	c.mu.Unlock()
	return nil
}

// Len reports the number of cached entries (for tests and diagnostics).
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
