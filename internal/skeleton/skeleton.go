// Package skeleton implements the skeleton-graph machinery of the paper
// (Appendix C and Algorithm 6): sample each node into V_S with probability
// 1/n^(1-x), then use h rounds of local communication to find, at every
// node, the h-hop-limited distances d_h(v, u) to all skeleton nodes within
// h hops. The skeleton graph S = (V_S, E_S) has an edge {u, v} whenever
// hop(u, v) <= h, weighted d_h(u, v).
//
// Lemma C.1: with h = ξ·n^(1-x)·ln n there is a skeleton node at least
// every h hops on (some) shortest path between any pair, w.h.p.
// Lemma C.2: S is connected and preserves exact distances between skeleton
// nodes, w.h.p.
//
// The package also implements Algorithm 7 (Compute-Representatives): each
// source tags its closest skeleton node as representative and the pairs
// (d_h(s, r_s), s, r_s) are made public knowledge by token dissemination.
package skeleton

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/ncc"
	"repro/internal/sim"
)

// Params controls skeleton construction.
type Params struct {
	// X is the size exponent: nodes are sampled with probability n^(x-1),
	// so |V_S| = Θ(n^x) w.h.p. Must be in (0, 1].
	X float64
	// HFactor is the paper's ξ constant in h = ceil(HFactor·n^(1-x)·ln n).
	// Zero means 2.0: the per-gap miss probability is e^(-ξ·ln n) = n^(-ξ),
	// and the union bound over Θ(n) path positions needs ξ >= 2 for the
	// coverage events of Lemma C.1 to hold reliably (ξ = 1 fails with
	// constant probability — observed in testing on paths and cycles).
	HFactor float64
	// MaxH caps h (0 = no cap beyond n).
	MaxH int
	// Cache, if non-nil, reuses per-node skeleton results across
	// constructions with matching resolved parameters and membership draws,
	// paying one 2·ceil(log2 n)-round collective agreement instead of the h
	// exploration rounds on a hit. See ResultCache.
	Cache *ResultCache
}

// H returns the exploration depth for a given n.
func (p Params) H(n int) int {
	f := p.HFactor
	if f <= 0 {
		f = 2.0
	}
	x := p.X
	if x <= 0 || x > 1 {
		x = 2.0 / 3.0
	}
	h := int(math.Ceil(f * math.Pow(float64(n), 1-x) * math.Log(math.Max(float64(n), 2))))
	if h < 1 {
		h = 1
	}
	if h > n {
		h = n
	}
	if p.MaxH > 0 && h > p.MaxH {
		h = p.MaxH
	}
	return h
}

// SampleProb returns the node sampling probability n^(x-1).
func (p Params) SampleProb(n int) float64 {
	x := p.X
	if x <= 0 || x > 1 {
		x = 2.0 / 3.0
	}
	return math.Pow(float64(n), x-1)
}

// Result is one node's view after Compute.
type Result struct {
	// InSkeleton reports membership in V_S.
	InSkeleton bool
	// H is the exploration depth used.
	H int
	// Near maps each skeleton node u within H hops to a distance estimate
	// dd(v, u) with d(v, u) <= dd(v, u) <= d_H(v, u): after r rounds of
	// synchronous relaxation every node's estimate is at most the
	// r-hop-limited distance (each improvement is re-broadcast the round it
	// is found) and it is always the weight of a real path. Everywhere the
	// paper uses d_h, this sandwich is sufficient: tight pairs satisfy
	// d_h = d, so dd = d there, and elsewhere only d <= dd <= d_h is used.
	// In the pure LOCAL model a node could learn its whole h-ball and get
	// exact d_h; we trade that memory blow-up for the sandwich estimate.
	// For a skeleton node the map includes itself with distance 0; the map
	// restricted to other skeleton members defines its incident E_S edges.
	Near map[int]int64
	// NearHops maps each skeleton node within H hops to its hop distance
	// (the BFS layer at which it was first heard).
	NearHops map[int]int
}

// SkeletonNeighbors returns the incident skeleton edges of this node
// (empty unless InSkeleton), sorted by neighbor ID.
func (r Result) SkeletonNeighbors() []graph.Neighbor {
	if !r.InSkeleton {
		return nil
	}
	out := make([]graph.Neighbor, 0, len(r.Near))
	for u, d := range r.Near {
		if u != -1 {
			out = append(out, graph.Neighbor{To: u, W: d})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].To < out[j].To })
	return out
}

// distUpdate is the local-mode payload of the limited Bellman-Ford wave.
type distUpdate struct {
	Source int
	Dist   int64
	Hops   int
}

// Compute runs Algorithm 6 collectively: sample V_S (forceInclude adds this
// node deterministically, used for γ = 0 single sources), then explore for
// exactly H rounds of weighted Bellman-Ford so every node learns d_h to all
// skeleton nodes within h hops. Takes exactly Params.H(n) rounds, or
// 2·ceil(log2 n) agreement rounds on a Params.Cache hit. The membership
// draw is consumed from the node's random stream before the cache is
// consulted, so the stream position after Compute is hit/miss independent.
func Compute(env *sim.Env, p Params, forceInclude bool) Result {
	n := env.N()
	h := p.H(n)
	inS := forceInclude || env.Rand().Float64() < p.SampleProb(n)
	if p.Cache != nil {
		return p.Cache.compute(env, keyOf(p, n), forceInclude, inS, h)
	}
	return exploreResult(env, inS, h)
}

// exploreResult is the uncached construction tail shared by the goroutine
// and step forms: the h-round exploration plus the dense-to-map conversion.
func exploreResult(env *sim.Env, inS bool, h int) Result {
	near, hops := LimitedExplore(env, inS, h)
	return resultFromVectors(env.N(), inS, h, near, hops)
}

// resultFromVectors converts the dense exploration vectors into a Result
// (the pure local tail of Algorithm 6, shared by both execution forms).
func resultFromVectors(n int, inS bool, h int, near []int64, hops []int) Result {
	nearMap := make(map[int]int64)
	hopsMap := make(map[int]int)
	for u := 0; u < n; u++ {
		if near[u] < graph.Inf {
			nearMap[u] = near[u]
			hopsMap[u] = hops[u]
		}
	}
	return Result{
		InSkeleton: inS,
		H:          h,
		Near:       nearMap,
		NearHops:   hopsMap,
	}
}

// RepInfo is one publicly known (source, representative, d_h) triple
// produced by Algorithm 7.
type RepInfo struct {
	Source int
	Rep    int
	Dist   int64
}

// ComputeRepresentatives runs Algorithm 7 collectively: every source tags
// its d_h-closest skeleton node (itself, if it is one) and all triples are
// made public knowledge via token dissemination (O~(sqrt(k)) rounds for k
// sources). kBound is a globally known upper bound on the number of
// sources. Sources with no skeleton node within h hops (possible only when
// the w.h.p. event of Lemma C.1 fails) publish Rep = -1.
func ComputeRepresentatives(env *sim.Env, skel Result, isSource bool, kBound int) []RepInfo {
	var mine []ncc.Token
	if isSource {
		rep, dist := closestSkeleton(env.ID(), skel)
		mine = append(mine, ncc.Token{A: int64(env.ID()), B: int64(rep), C: dist})
	}
	all := ncc.Disseminate(env, mine, kBound, 1, ncc.DisseminateParams{})
	return repsFromTokens(all)
}

// repsFromTokens decodes and sorts the disseminated representative triples
// (the local tail of Algorithm 7, shared with the step form).
func repsFromTokens(all []ncc.Token) []RepInfo {
	out := make([]RepInfo, 0, len(all))
	for _, t := range all {
		out = append(out, RepInfo{Source: int(t.A), Rep: int(t.B), Dist: t.C})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Source < out[j].Source })
	return out
}

// closestSkeleton returns the skeleton node minimizing (d_h, id) from the
// node's exploration result, or (-1, Inf) if none is within h hops.
func closestSkeleton(self int, skel Result) (int, int64) {
	if skel.InSkeleton {
		return self, 0
	}
	best, bestD := -1, graph.Inf
	ids := make([]int, 0, len(skel.Near))
	for u := range skel.Near {
		ids = append(ids, u)
	}
	sort.Ints(ids)
	for _, u := range ids {
		if d := skel.Near[u]; d < bestD {
			best, bestD = u, d
		}
	}
	return best, bestD
}

// Build assembles the global skeleton graph from all per-node results
// sequentially (test/bench ground truth). It returns the graph over
// compacted indices and the mapping skeleton-index -> original node ID.
func Build(results []Result) (*graph.Graph, []int, error) {
	var ids []int
	for v, r := range results {
		if r.InSkeleton {
			ids = append(ids, v)
		}
	}
	index := map[int]int{}
	for i, id := range ids {
		index[id] = i
	}
	s := graph.New(len(ids))
	for _, id := range ids {
		r := results[id]
		for u, d := range r.Near {
			if u == id {
				continue
			}
			j, ok := index[u]
			if !ok {
				return nil, nil, fmt.Errorf("skeleton: node %d lists non-skeleton neighbor %d", id, u)
			}
			if index[id] < j {
				// Symmetry check: u must agree on the weight.
				if du, ok2 := results[u].Near[id]; !ok2 || du != d {
					return nil, nil, fmt.Errorf("skeleton: edge {%d,%d} asymmetric: %d vs %v", id, u, d, results[u].Near[id])
				}
				if err := s.AddEdge(index[id], j, d); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	return s, ids, nil
}

// CheckDistancePreservation verifies Lemma C.2 sequentially: the skeleton
// graph is connected and d_S(u, v) = d_G(u, v) for all skeleton pairs.
func CheckDistancePreservation(g *graph.Graph, results []Result) error {
	s, ids, err := Build(results)
	if err != nil {
		return err
	}
	if s.N() == 0 {
		return fmt.Errorf("skeleton: empty skeleton")
	}
	if !s.Connected() {
		return fmt.Errorf("skeleton: not connected (%d nodes)", s.N())
	}
	for i, id := range ids {
		dS := graph.Dijkstra(s, i)
		dG := graph.Dijkstra(g, id)
		for j, jd := range ids {
			if dS[j] != dG[jd] {
				return fmt.Errorf("skeleton: d_S(%d,%d) = %d but d_G = %d", id, jd, dS[j], dG[jd])
			}
		}
	}
	return nil
}

// CheckCoverage verifies the Lemma C.1 consequence used everywhere: every
// node has a skeleton node within h hops, w.h.p. (needed so representatives
// exist and Equation (1) has candidates).
func CheckCoverage(results []Result) error {
	for v, r := range results {
		if len(r.Near) == 0 {
			return fmt.Errorf("skeleton: node %d has no skeleton node within h = %d hops", v, r.H)
		}
	}
	return nil
}
