package cliquesim

import (
	"repro/internal/clique"
	"repro/internal/ncc"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/skeleton"
)

// NewSimulateMachine is the step form of Simulate (see sim.StepProgram): a
// faithful port of Algorithm 8 — identical messages, randomness order, and
// round count — composed from the ncc/routing machines. Its core is the
// RouteMachine-per-simulated-round driver: one SessionMachine computes the
// helper families once, then every CLIQUE round chains a fresh
// RouteMachine over the shared session, exactly as Simulate calls
// session.Route in a loop. done receives the node's Result when the
// machine finishes.
func NewSimulateMachine(env *sim.Env, skel skeleton.Result, sampleProb float64, factory Factory, rparams routing.Params, done func(Result)) sim.StepProgram {
	var agg *ncc.AggregateMachine
	var diss *ncc.DisseminateMachine
	var sessM *routing.SessionMachine
	var res Result
	var alg clique.Algorithm
	var members []int
	q, index := 0, -1

	return sim.Sequence(
		// Establish the shared index space: exact count, then public
		// member list (Corollary 4.1's dissemination run).
		func(env *sim.Env) sim.StepProgram {
			inS := int64(0)
			if skel.InSkeleton {
				inS = 1
			}
			agg = ncc.NewAggregateMachine(env, inS, ncc.AggSum)
			return agg
		},
		func(env *sim.Env) sim.StepProgram {
			var mine []ncc.Token
			if skel.InSkeleton {
				mine = append(mine, ncc.Token{A: int64(env.ID())})
			}
			diss = ncc.NewDisseminateMachine(env, mine, int(agg.Out), 1, ncc.DisseminateParams{})
			return diss
		},
		// The routing session over the members (the factory runs first,
		// where Simulate calls it).
		func(env *sim.Env) sim.StepProgram {
			members, index = membersFromTokens(env.ID(), diss.Out)
			q = len(members)
			res = Result{Members: members, Index: index}
			if q == 0 {
				return nil
			}
			alg = factory(q, members)
			res.Alg = alg
			sessM = routing.NewSessionMachine(env, skel.InSkeleton, skel.InSkeleton,
				2*q, 2*q, sampleProb, sampleProb, rparams)
			return sessM
		},
		// Algorithm 8: one RouteMachine per CLIQUE round over the session.
		func(env *sim.Env) sim.StepProgram {
			if q == 0 {
				return nil
			}
			if index >= 0 {
				res.Node = alg.NewNode(index, cliqueAdjacency(env.ID(), skel, members))
			}
			rounds := alg.Rounds()
			r := 0
			var routeM *routing.RouteMachine
			var selfIn []clique.Incoming
			return sim.Chain(func(env *sim.Env) sim.StepProgram {
				if routeM != nil && index >= 0 {
					res.Node.Recv(r-1, assemble(routeM.Out, members, selfIn))
				}
				if r >= rounds {
					return nil
				}
				var send []routing.Token
				var expect []routing.Label
				send, expect, selfIn = roundInstance(env.ID(), alg, res.Node, members, q, index, r)
				routeM = routing.NewRouteMachine(sessM.Out, send, expect)
				r++
				return routeM
			})
		},
		sim.Finish(func(env *sim.Env) { done(res) }),
	)
}
