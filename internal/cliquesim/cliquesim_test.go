package cliquesim

import (
	"math/rand"
	"testing"

	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/skeleton"
)

// runSim executes skeleton construction + CLIQUE simulation on g.
func runSim(t *testing.T, g *graph.Graph, sp skeleton.Params, factory Factory, seed int64) ([]Result, []skeleton.Result, sim.Metrics) {
	t.Helper()
	n := g.N()
	results := make([]Result, n)
	skels := make([]skeleton.Result, n)
	m, err := sim.Run(g, sim.Config{Seed: seed}, func(env *sim.Env) {
		skel := skeleton.Compute(env, sp, false)
		skels[env.ID()] = skel
		results[env.ID()] = Simulate(env, skel, sp.SampleProb(env.N()), factory, routing.Params{})
	})
	if err != nil {
		t.Fatal(err)
	}
	return results, skels, m
}

func TestMembersAgree(t *testing.T) {
	g := graph.Grid(8, 8)
	results, skels, _ := runSim(t, g, skeleton.Params{X: 0.5},
		SharedFactory(func(q int, _ []int) clique.Algorithm { return clique.NewBellmanFord(q, []int{0}, 1) }), 3)
	want := results[0].Members
	if len(want) == 0 {
		t.Fatal("empty skeleton")
	}
	for v := 1; v < g.N(); v++ {
		got := results[v].Members
		if len(got) != len(want) {
			t.Fatalf("node %d sees %d members, node 0 sees %d", v, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("member lists diverge at %d", i)
			}
		}
	}
	for i, id := range want {
		if !skels[id].InSkeleton {
			t.Fatalf("member %d not actually in skeleton", id)
		}
		if results[id].Index != i {
			t.Fatalf("member %d has index %d, want %d", id, results[id].Index, i)
		}
		if results[id].Node == nil {
			t.Fatalf("member %d has no node state", id)
		}
	}
	for v := 0; v < g.N(); v++ {
		if !skels[v].InSkeleton && (results[v].Index != -1 || results[v].Node != nil) {
			t.Fatalf("non-member %d has clique state", v)
		}
	}
}

func TestSimulatedMMMatchesGroundTruth(t *testing.T) {
	// APSP on the skeleton via simulated MM must equal d_G between skeleton
	// nodes (Lemma C.2 + exact MM).
	rng := rand.New(rand.NewSource(5))
	g := graph.WithRandomWeights(graph.Grid(8, 8), 5, rng)
	sp := skeleton.Params{X: 2.0 / 3.0}
	results, _, _ := runSim(t, g, sp,
		SharedFactory(func(q int, _ []int) clique.Algorithm { return clique.NewMM(q, false) }), 7)

	members := results[0].Members
	for i, id := range members {
		node := results[id].Node.(clique.DistanceNode)
		got := node.Distances()
		want := graph.Dijkstra(g, id)
		for j, jd := range members {
			if got[j] != want[jd] {
				t.Fatalf("simulated d(%d,%d) = %d, want %d (member indices %d,%d)",
					id, jd, got[j], want[jd], i, j)
			}
		}
	}
}

func TestSimulatedBellmanFordSSSP(t *testing.T) {
	g := graph.Grid(7, 7)
	sp := skeleton.Params{X: 0.6}
	results, _, _ := runSim(t, g, sp,
		SharedFactory(func(q int, _ []int) clique.Algorithm { return clique.NewBellmanFord(q, []int{0}, 0) }), 11)
	members := results[0].Members
	src := members[0]
	want := graph.Dijkstra(g, src)
	for j, jd := range members {
		got := results[jd].Node.(clique.DistanceNode).Distances()
		if got[0] != want[jd] {
			t.Fatalf("simulated SSSP d(%d,%d) = %d, want %d (index %d)", src, jd, got[0], want[jd], j)
		}
	}
}

func TestSimulatedOracle(t *testing.T) {
	g := graph.Grid(7, 7)
	sp := skeleton.Params{X: 0.6}
	factory := SharedFactory(func(q int, _ []int) clique.Algorithm {
		return clique.NewOracle(q, nil, clique.CostModel{Delta: 0, Eta: 2}, clique.Quality{Alpha: 1}, true)
	})
	results, _, _ := runSim(t, g, sp, factory, 13)
	members := results[0].Members
	for _, id := range members {
		got := results[id].Node.(clique.DistanceNode).Distances()
		want := graph.Dijkstra(g, id)
		for j, jd := range members {
			if got[j] != want[jd] {
				t.Fatalf("oracle d(%d,%d) = %d, want %d", id, jd, got[j], want[jd])
			}
		}
	}
	// Diameter of the skeleton = max pairwise distance among members.
	var maxD int64
	for _, id := range members {
		d := graph.Dijkstra(g, id)
		for _, jd := range members {
			if d[jd] > maxD {
				maxD = d[jd]
			}
		}
	}
	for _, id := range members {
		if got := results[id].Node.(clique.DiameterNode).Diameter(); got != maxD {
			t.Fatalf("oracle diameter at %d = %d, want %d", id, got, maxD)
		}
	}
}

func TestOracleChargesDeclaredRounds(t *testing.T) {
	// The simulation with a TA-round oracle must take more rounds than one
	// with a 1-round oracle, and both must be dominated by routing costs.
	g := graph.Grid(6, 6)
	sp := skeleton.Params{X: 0.5}
	mk := func(ta float64) Factory {
		return SharedFactory(func(q int, _ []int) clique.Algorithm {
			return clique.NewOracle(q, nil, clique.CostModel{Delta: 0, Eta: ta}, clique.Quality{Alpha: 1}, false)
		})
	}
	_, _, m1 := runSim(t, g, sp, mk(1), 17)
	_, _, m5 := runSim(t, g, sp, mk(5), 17)
	if m5.Rounds <= m1.Rounds {
		t.Fatalf("5-round oracle (%d HYBRID rounds) not costlier than 1-round oracle (%d)", m5.Rounds, m1.Rounds)
	}
}

func TestSharedFactoryReturnsSameInstance(t *testing.T) {
	calls := 0
	f := SharedFactory(func(q int, _ []int) clique.Algorithm {
		calls++
		return clique.NewBellmanFord(q, []int{0}, 1)
	})
	a := f(5, nil)
	b := f(5, nil)
	if a != b {
		t.Fatal("SharedFactory returned distinct instances")
	}
	if calls != 1 {
		t.Fatalf("factory called %d times, want 1", calls)
	}
}
