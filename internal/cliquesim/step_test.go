package cliquesim

import (
	"reflect"
	"testing"

	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/skeleton"
)

var stepEngines = []sim.Engine{sim.EngineLegacy, sim.EngineSharded, sim.EngineStep}

// distill reduces a Result to comparable content: the shared index space
// and each member's final diameter answer (the factory below runs MM with
// the diameter tail).
func distill(results []Result) ([][]int, []int64) {
	members := make([][]int, len(results))
	diams := make([]int64, len(results))
	for v, r := range results {
		members[v] = r.Members
		diams[v] = -1
		if r.Node != nil {
			if dn, ok := r.Node.(clique.DiameterNode); ok {
				diams[v] = dn.Diameter()
			}
		}
	}
	return members, diams
}

// TestSimulateMachineMatches proves the step form of the CLIQUE simulation
// (one SessionMachine, then a RouteMachine per simulated round) byte-
// identical to Simulate on every engine, with real messages (semiring MM).
func TestSimulateMachineMatches(t *testing.T) {
	g := graph.Grid(6, 6)
	sp := skeleton.Params{X: 0.6}
	n := g.N()

	want := make([]Result, n)
	factory := SharedFactory(func(q int, _ []int) clique.Algorithm { return clique.NewMM(q, true) })
	wantM, err := sim.Run(g, sim.Config{Seed: 29, Engine: sim.EngineLegacy}, func(env *sim.Env) {
		skel := skeleton.Compute(env, sp, false)
		want[env.ID()] = Simulate(env, skel, sp.SampleProb(n), factory, routing.Params{})
	})
	if err != nil {
		t.Fatal(err)
	}
	wantMembers, wantDiams := distill(want)

	for _, eng := range stepEngines {
		got := make([]Result, n)
		factory := SharedFactory(func(q int, _ []int) clique.Algorithm { return clique.NewMM(q, true) })
		gotM, err := sim.RunStep(g, sim.Config{Seed: 29, Engine: eng}, func(env *sim.Env) sim.StepProgram {
			id := env.ID()
			var skelM *skeleton.ComputeMachine
			return sim.Sequence(
				func(env *sim.Env) sim.StepProgram {
					skelM = skeleton.NewComputeMachine(env, sp, false)
					return skelM
				},
				func(env *sim.Env) sim.StepProgram {
					return NewSimulateMachine(env, skelM.Res, sp.SampleProb(n), factory,
						routing.Params{}, func(r Result) { got[id] = r })
				},
			)
		})
		if err != nil {
			t.Fatalf("engine=%s: %v", eng, err)
		}
		gotMembers, gotDiams := distill(got)
		if !reflect.DeepEqual(wantMembers, gotMembers) {
			t.Errorf("engine=%s: member lists differ", eng)
		}
		if !reflect.DeepEqual(wantDiams, gotDiams) {
			t.Errorf("engine=%s: simulated diameters differ", eng)
		}
		if wantM != gotM {
			t.Errorf("engine=%s: metrics differ: %+v vs %+v", eng, wantM, gotM)
		}
	}
}

// TestSimulateMachineSessionCache runs the machine with a shared session
// cache across two runs: the second must reuse the session (fewer rounds)
// and still produce identical simulation output.
func TestSimulateMachineSessionCache(t *testing.T) {
	g := graph.Grid(6, 6)
	sp := skeleton.Params{X: 0.6}
	n := g.N()
	cache := routing.NewSessionCache()

	run := func() ([]Result, sim.Metrics) {
		got := make([]Result, n)
		factory := SharedFactory(func(q int, _ []int) clique.Algorithm { return clique.NewMM(q, true) })
		m, err := sim.RunStep(g, sim.Config{Seed: 29, Engine: sim.EngineStep}, func(env *sim.Env) sim.StepProgram {
			id := env.ID()
			var skelM *skeleton.ComputeMachine
			return sim.Sequence(
				func(env *sim.Env) sim.StepProgram {
					skelM = skeleton.NewComputeMachine(env, sp, false)
					return skelM
				},
				func(env *sim.Env) sim.StepProgram {
					return NewSimulateMachine(env, skelM.Res, sp.SampleProb(n), factory,
						routing.Params{Cache: cache}, func(r Result) { got[id] = r })
				},
			)
		})
		if err != nil {
			t.Fatal(err)
		}
		return got, m
	}
	first, firstM := run()
	second, secondM := run()
	fm, fd := distill(first)
	sm, sd := distill(second)
	if !reflect.DeepEqual(fm, sm) || !reflect.DeepEqual(fd, sd) {
		t.Error("cached re-run changed simulation output")
	}
	if secondM.Rounds >= firstM.Rounds {
		t.Errorf("session cache saved nothing: %d rounds vs %d", secondM.Rounds, firstM.Rounds)
	}
}
