// Package cliquesim simulates CLIQUE algorithms on skeleton graphs inside
// the HYBRID model (paper Corollary 4.1 and Algorithm 8):
//
//	"Let S ⊆ V be obtained by sampling each node with probability 1/n^(1-x).
//	 One round of the CLIQUE model can be simulated on S in
//	 O~(n^(2x-1) + n^(x/2)) rounds w.h.p."
//
// The skeleton node set is first made public knowledge with a run of token
// dissemination (O~(sqrt(|S|)) rounds, Lemma B.1), establishing a shared
// index space 0..q-1. Then every CLIQUE round becomes one token routing
// instance among the skeleton nodes, with the whole network serving as
// helpers (Theorem 2.2). The simulated algorithms declare oblivious
// communication schedules (package clique), which is how receivers know the
// token labels they must expect — the all-to-all trick of Corollary 4.1
// generalized to arbitrary data-independent patterns.
package cliquesim

import (
	"sort"
	"sync"

	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/ncc"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/skeleton"
)

// Factory builds the CLIQUE algorithm once the skeleton is public
// knowledge: q is the skeleton size and members the sorted skeleton node
// IDs (clique index i = members[i]). It must be deterministic in its
// arguments: every node calls it and must arrive at an identical algorithm
// (schedules are public knowledge).
type Factory func(q int, members []int) clique.Algorithm

// SharedFactory wraps a factory so that all nodes of one run share a single
// algorithm instance. Required for clique.Oracle (whose nodes pool their
// inputs) and a useful optimization for MM (the schedule is computed once).
func SharedFactory(f Factory) Factory {
	var once sync.Once
	var inst clique.Algorithm
	return func(q int, members []int) clique.Algorithm {
		once.Do(func() { inst = f(q, members) })
		return inst
	}
}

// Result is what one node knows after Simulate.
type Result struct {
	// Members lists the skeleton node IDs, sorted; clique index i is
	// Members[i]. Known by every node (public knowledge).
	Members []int
	// Index is this node's clique index, -1 if not a skeleton node.
	Index int
	// Node is this node's finished CLIQUE node state (nil unless a member).
	Node clique.Node
	// Alg is the algorithm instance (for reading Sources() etc.).
	Alg clique.Algorithm
}

// Simulate runs the CLIQUE algorithm produced by factory on the skeleton
// members, collectively. skel is this node's skeleton view (from
// skeleton.Compute); sampleProb the sampling probability (it determines the
// helper parameter µ = min(sqrt(k), 1/p) of the routing session); rparams
// tunes the routing sessions (and carries the optional session cache).
func Simulate(env *sim.Env, skel skeleton.Result, sampleProb float64, factory Factory, rparams routing.Params) Result {
	// Establish the shared index space: count members exactly, then make
	// the member list public knowledge (Corollary 4.1's dissemination run).
	inS := int64(0)
	if skel.InSkeleton {
		inS = 1
	}
	count := int(ncc.Aggregate(env, inS, ncc.AggSum))
	var mine []ncc.Token
	if skel.InSkeleton {
		mine = append(mine, ncc.Token{A: int64(env.ID())})
	}
	memberTokens := ncc.Disseminate(env, mine, count, 1, ncc.DisseminateParams{})
	members, index := membersFromTokens(env.ID(), memberTokens)
	q := len(members)

	res := Result{Members: members, Index: index}
	if q == 0 {
		return res
	}
	alg := factory(q, members)
	res.Alg = alg

	// Routing session: senders = receivers = skeleton members; each CLIQUE
	// round moves at most q messages = 2q tokens per member in each
	// direction.
	session := routing.NewSession(env, skel.InSkeleton, skel.InSkeleton,
		2*q, 2*q, sampleProb, sampleProb, rparams)

	// Build this member's CLIQUE input: its incident skeleton edges
	// translated to clique indices.
	if index >= 0 {
		res.Node = alg.NewNode(index, cliqueAdjacency(env.ID(), skel, members))
	}

	// Algorithm 8: simulate each CLIQUE round with one routing instance.
	rounds := alg.Rounds()
	for r := 0; r < rounds; r++ {
		send, expect, selfIn := roundInstance(env.ID(), alg, res.Node, members, q, index, r)
		got := session.Route(send, expect)
		if index >= 0 {
			res.Node.Recv(r, assemble(got, members, selfIn))
		}
	}
	return res
}

// membersFromTokens decodes the disseminated member list into the sorted
// shared index space and locates this node's clique index (-1 if not a
// member) — the local tail of the dissemination run, shared with the step
// form.
func membersFromTokens(me int, memberTokens []ncc.Token) ([]int, int) {
	members := make([]int, 0, len(memberTokens))
	for _, t := range memberTokens {
		members = append(members, int(t.A))
	}
	sort.Ints(members)
	index := -1
	for i, id := range members {
		if id == me {
			index = i
		}
	}
	return members, index
}

// cliqueAdjacency translates a member's incident skeleton edges into
// clique index space (its CLIQUE input).
func cliqueAdjacency(me int, skel skeleton.Result, members []int) []graph.Neighbor {
	adj := make([]graph.Neighbor, 0, len(skel.Near))
	for i, id := range members {
		if id == me {
			continue
		}
		if d, ok := skel.Near[id]; ok {
			adj = append(adj, graph.Neighbor{To: i, W: d})
		}
	}
	return adj
}

// roundInstance builds one node's routing instance for CLIQUE round r from
// the public schedule: the tokens to send (self-addressed ones filtered
// into selfIn, skipping the network), and the labels to expect. Pure and
// shared between Simulate and the step form; non-members send and expect
// nothing but still serve as helpers.
func roundInstance(me int, alg clique.Algorithm, node clique.Node, members []int, q, index, r int) (send []routing.Token, expect []routing.Label, selfIn []clique.Incoming) {
	if index >= 0 {
		slots := alg.Schedule(r, index)
		vals := node.Send(r)
		send = make([]routing.Token, 0, 2*len(slots))
		for si, s := range slots {
			dst := members[s.Dst]
			send = append(send,
				routing.Token{Label: routing.Label{S: me, R: dst, I: s.Tag * 2}, Value: vals[si].F0},
				routing.Token{Label: routing.Label{S: me, R: dst, I: s.Tag*2 + 1}, Value: vals[si].F1},
			)
		}
		// Receivers compute their expected labels from the public
		// schedule of every sender.
		for jp := 0; jp < q; jp++ {
			if jp == index {
				// Self-slots short-circuit below.
				continue
			}
			for _, s := range alg.Schedule(r, jp) {
				if s.Dst != index {
					continue
				}
				src := members[jp]
				expect = append(expect,
					routing.Label{S: src, R: me, I: s.Tag * 2},
					routing.Label{S: src, R: me, I: s.Tag*2 + 1},
				)
			}
		}
	}
	// Self-addressed messages skip the network.
	filtered := send[:0]
	for _, t := range send {
		if t.R == me {
			if t.I%2 == 0 {
				selfIn = append(selfIn, clique.Incoming{Src: index, Tag: t.I / 2, Val: clique.Value{F0: t.Value}})
			} else if len(selfIn) > 0 {
				selfIn[len(selfIn)-1].Val.F1 = t.Value
			}
			continue
		}
		filtered = append(filtered, t)
	}
	return filtered, expect, selfIn
}

// assemble pairs the two word-tokens of each message back into
// clique.Incoming values, sorted by (Src, Tag).
func assemble(got []routing.Token, members []int, selfIn []clique.Incoming) []clique.Incoming {
	rank := make(map[int]int, len(members))
	for i, id := range members {
		rank[id] = i
	}
	type key struct {
		src int
		tag int64
	}
	vals := map[key]*clique.Value{}
	for _, t := range got {
		src, ok := rank[t.S]
		if !ok {
			continue
		}
		k := key{src: src, tag: t.I / 2}
		v := vals[k]
		if v == nil {
			v = &clique.Value{}
			vals[k] = v
		}
		if t.I%2 == 0 {
			v.F0 = t.Value
		} else {
			v.F1 = t.Value
		}
	}
	in := make([]clique.Incoming, 0, len(vals)+len(selfIn))
	for k, v := range vals {
		in = append(in, clique.Incoming{Src: k.src, Tag: k.tag, Val: *v})
	}
	in = append(in, selfIn...)
	sort.Slice(in, func(x, y int) bool {
		if in[x].Src != in[y].Src {
			return in[x].Src < in[y].Src
		}
		return in[x].Tag < in[y].Tag
	})
	return in
}
