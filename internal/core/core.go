// Package core catalogs the paper's results and maps each to the packages
// implementing it and the experiment regenerating it. It is the repository's
// self-description: tests assert that every theorem stays wired to an
// implementation and an experiment, and cmd/benchtables' output refers back
// to these IDs.
package core

// Kind classifies a result.
type Kind int

// Result kinds.
const (
	UpperBound Kind = iota + 1
	LowerBound
	Framework
	Protocol
)

// Result is one catalogued claim of the paper.
type Result struct {
	// ID is the paper's numbering ("Theorem 1.1", "Lemma 7.1", ...).
	ID string
	// Kind classifies the claim.
	Kind Kind
	// Claim is the one-line statement.
	Claim string
	// Rounds is the round complexity in O~/Ω~ notation (empty for
	// structural lemmas).
	Rounds string
	// Packages lists the implementing packages (repo-relative).
	Packages []string
	// Experiment is the regenerating experiment ID (E1-E11), empty if the
	// claim is exercised only by unit tests.
	Experiment string
	// Substitution notes any DESIGN.md-documented substitution involved.
	Substitution string
}

// Catalog returns the full result catalog, in paper order.
func Catalog() []Result {
	return []Result{
		{
			ID: "Theorem 2.2", Kind: Protocol,
			Claim:      "token routing for sampled senders/receivers delivers K tokens",
			Rounds:     "O~(K/n + sqrt(kS) + sqrt(kR))",
			Packages:   []string{"internal/routing", "internal/helpers", "internal/ruling"},
			Experiment: "E1",
		},
		{
			ID: "Lemma 2.1", Kind: Protocol,
			Claim:    "(2mu+1, 2mu*ceil(log n))-ruling set, deterministically",
			Rounds:   "O(mu log n)",
			Packages: []string{"internal/ruling"},
		},
		{
			ID: "Lemma 2.2", Kind: Protocol,
			Claim:      "helper-set families satisfying Definition 2.1",
			Rounds:     "O(mu log n)",
			Packages:   []string{"internal/helpers"},
			Experiment: "E2",
		},
		{
			ID: "Lemma 2.3 / D.2", Kind: Protocol,
			Claim:      "hash-routed forwarding keeps per-round receive load O(log n) w.h.p.",
			Packages:   []string{"internal/bitrand", "internal/routing"},
			Experiment: "E10",
		},
		{
			ID: "Theorem 1.1", Kind: UpperBound,
			Claim:      "exact APSP in the HYBRID model",
			Rounds:     "O~(sqrt n)",
			Packages:   []string{"internal/hybridapsp"},
			Experiment: "E3",
		},
		{
			ID: "Corollary 4.1", Kind: Framework,
			Claim:      "one CLIQUE round simulated on an n^x-node skeleton",
			Rounds:     "O~(n^(x/2) + n^(2x-1))",
			Packages:   []string{"internal/cliquesim", "internal/clique", "internal/skeleton"},
			Experiment: "E4",
		},
		{
			ID: "Theorem 4.1", Kind: Framework,
			Claim:      "CLIQUE (alpha,beta)-k-SSP at O~(eta q^delta) becomes HYBRID k-SSP at O~(eta n^(1-x)), x = 2/(3+2delta)",
			Packages:   []string{"internal/kssp"},
			Experiment: "E5",
		},
		{
			ID: "Theorem 1.2 / Corollaries 4.6-4.8", Kind: UpperBound,
			Claim:        "k-SSP approximations: (3+eps)/(1+eps) at n^(1/3) sources, (7+eps)/(2+eps) any k, (3+o(1))/(1+eps) at n^0.397",
			Rounds:       "O~(n^(1/3)/eps + sqrt k) etc.",
			Packages:     []string{"internal/kssp", "internal/clique"},
			Experiment:   "E5",
			Substitution: "published CLIQUE algorithms of [7,8] run as declared-cost oracles; semiring MM (delta=1/3) runs with real messages",
		},
		{
			ID: "Theorem 1.3 / Corollary 4.9", Kind: UpperBound,
			Claim:        "exact SSSP",
			Rounds:       "O~(n^(2/5))",
			Packages:     []string{"internal/kssp"},
			Experiment:   "E6",
			Substitution: "the O~(q^(1/6)) exact CLIQUE SSSP of [7] runs as a declared-cost oracle; clique Bellman-Ford is the real-message variant",
		},
		{
			ID: "Theorem 5.1", Kind: Framework,
			Claim:      "CLIQUE diameter algorithm becomes HYBRID (alpha+2/eta+beta/TB)-approximation of unweighted D",
			Packages:   []string{"internal/diameter"},
			Experiment: "E7",
		},
		{
			ID: "Theorem 1.4 / Corollaries 5.2-5.3", Kind: UpperBound,
			Claim:      "diameter (3/2+eps) in O~(n^(1/3)/eps) and (1+eps) in O~(n^0.397/eps)",
			Packages:   []string{"internal/diameter", "internal/clique"},
			Experiment: "E7",
		},
		{
			ID: "Theorem 1.5", Kind: LowerBound,
			Claim:      "k-SSP needs Omega~(sqrt k) rounds, even alpha-approximate for alpha up to Theta(n/sqrt k)",
			Rounds:     "Omega~(sqrt k)",
			Packages:   []string{"internal/lowerbound"},
			Experiment: "E8",
		},
		{
			ID: "Lemma 7.1", Kind: LowerBound,
			Claim:      "weighted Gamma diameter is W+2l iff DISJ(a,b), else >= 2W+l (W > l)",
			Packages:   []string{"internal/lowerbound"},
			Experiment: "E9",
		},
		{
			ID: "Lemma 7.2", Kind: LowerBound,
			Claim:      "unweighted Gamma diameter is l+1 iff DISJ(a,b), else l+2",
			Packages:   []string{"internal/lowerbound"},
			Experiment: "E9",
		},
		{
			ID: "Theorem 1.6", Kind: LowerBound,
			Claim:      "exact diameter needs Omega((n/log^2 n)^(1/3)) rounds; (2-eps)-approx of weighted diameter likewise",
			Rounds:     "Omega~(n^(1/3))",
			Packages:   []string{"internal/lowerbound", "internal/sim"},
			Experiment: "E9",
		},
		{
			ID: "Lemma B.1", Kind: Protocol,
			Claim:      "token dissemination: k tokens, at most ell per node, to everyone",
			Rounds:     "O~(sqrt k + ell)",
			Packages:   []string{"internal/ncc"},
			Experiment: "E11",
		},
		{
			ID: "Lemma B.2", Kind: Protocol,
			Claim:    "aggregate-distributive functions over the global network",
			Rounds:   "O(log n)",
			Packages: []string{"internal/ncc"},
		},
		{
			ID: "Lemmas C.1-C.2", Kind: Protocol,
			Claim:    "skeleton graphs: sampled nodes hit long shortest paths every h hops; S preserves distances",
			Packages: []string{"internal/skeleton"},
		},
	}
}

// ByID returns the catalog entry with the given ID, or nil.
func ByID(id string) *Result {
	for _, r := range Catalog() {
		if r.ID == id {
			r := r
			return &r
		}
	}
	return nil
}

// Experiments returns the distinct experiment IDs referenced by the catalog.
func Experiments() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range Catalog() {
		if r.Experiment != "" && !seen[r.Experiment] {
			seen[r.Experiment] = true
			out = append(out, r.Experiment)
		}
	}
	return out
}
