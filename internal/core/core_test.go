package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) < 15 {
		t.Fatalf("catalog has %d entries; the paper has more results than that", len(cat))
	}
	seen := map[string]bool{}
	for _, r := range cat {
		if r.ID == "" || r.Claim == "" {
			t.Fatalf("entry %+v incomplete", r)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate entry %s", r.ID)
		}
		seen[r.ID] = true
		if len(r.Packages) == 0 {
			t.Fatalf("%s lists no implementing packages", r.ID)
		}
		if r.Kind == 0 {
			t.Fatalf("%s has no kind", r.ID)
		}
	}
	// The headline results must be present.
	for _, id := range []string{"Theorem 1.1", "Theorem 1.2 / Corollaries 4.6-4.8",
		"Theorem 1.3 / Corollary 4.9", "Theorem 1.4 / Corollaries 5.2-5.3",
		"Theorem 1.5", "Theorem 1.6", "Theorem 2.2", "Theorem 4.1", "Theorem 5.1"} {
		if !seen[id] {
			t.Fatalf("catalog missing %s", id)
		}
	}
}

// TestPackagesExist keeps the catalog honest: every referenced package
// directory must exist in the repository.
func TestPackagesExist(t *testing.T) {
	root := repoRoot(t)
	for _, r := range Catalog() {
		for _, pkg := range r.Packages {
			dir := filepath.Join(root, pkg)
			info, err := os.Stat(dir)
			if err != nil || !info.IsDir() {
				t.Fatalf("%s references missing package %s", r.ID, pkg)
			}
		}
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found")
		}
		dir = parent
	}
}

func TestByID(t *testing.T) {
	r := ByID("Theorem 1.1")
	if r == nil {
		t.Fatal("Theorem 1.1 missing")
	}
	if !strings.Contains(r.Claim, "APSP") {
		t.Fatalf("Theorem 1.1 claim looks wrong: %s", r.Claim)
	}
	if ByID("Theorem 9.9") != nil {
		t.Fatal("nonexistent ID should return nil")
	}
}

func TestExperimentsReferenced(t *testing.T) {
	exps := Experiments()
	want := map[string]bool{"E1": true, "E3": true, "E5": true, "E6": true,
		"E7": true, "E8": true, "E9": true, "E10": true}
	got := map[string]bool{}
	for _, e := range exps {
		got[e] = true
	}
	for e := range want {
		if !got[e] {
			t.Fatalf("no catalog entry references experiment %s", e)
		}
	}
}

func TestEveryUpperBoundHasExperiment(t *testing.T) {
	for _, r := range Catalog() {
		if r.Kind == UpperBound && r.Experiment == "" {
			t.Fatalf("%s (upper bound) has no regenerating experiment", r.ID)
		}
	}
}
