package kssp

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

var stepEngines = []sim.Engine{sim.EngineLegacy, sim.EngineSharded, sim.EngineStep}

// diffKSSP runs the goroutine Compute as oracle and the step machine on
// every engine, requiring byte-identical estimates and Metrics.
func diffKSSP(t *testing.T, g *graph.Graph, sources []int, spec AlgSpec, seed int64) {
	t.Helper()
	n := g.N()
	isSource := make([]bool, n)
	for _, s := range sources {
		isSource[s] = true
	}
	want := make([][]SourceDist, n)
	wantM, err := sim.Run(g, sim.Config{Seed: seed, Engine: sim.EngineLegacy}, func(env *sim.Env) {
		want[env.ID()] = Compute(env, isSource[env.ID()], len(sources), spec, Params{})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range stepEngines {
		got := make([][]SourceDist, n)
		gotM, err := sim.RunStep(g, sim.Config{Seed: seed, Engine: eng}, func(env *sim.Env) sim.StepProgram {
			id := env.ID()
			return NewComputeMachine(env, isSource[id], len(sources), spec, Params{},
				func(res []SourceDist) { got[id] = res })
		})
		if err != nil {
			t.Fatalf("engine=%s: %v", eng, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("engine=%s: estimates differ", eng)
		}
		if wantM != gotM {
			t.Errorf("engine=%s: metrics differ: %+v vs %+v", eng, wantM, gotM)
		}
	}
}

// TestComputeMachineMatchesOracle covers the declared-cost oracle path
// (Corollary 4.7, APSP sources).
func TestComputeMachineMatchesOracle(t *testing.T) {
	diffKSSP(t, graph.Grid(6, 6), []int{0, 17, 35}, Corollary47(0.5, 0), 31)
}

// TestComputeMachineMatchesRealMM covers the real-message semiring MM path
// (every simulated CLIQUE round routes real tokens through the session).
func TestComputeMachineMatchesRealMM(t *testing.T) {
	diffKSSP(t, graph.Grid(5, 5), []int{0, 24}, RealMM(2), 37)
}

// TestComputeMachineMatchesSingleSource covers the γ=0 summoning path
// (Corollary 4.9, the Theorem 1.3 SSSP engine).
func TestComputeMachineMatchesSingleSource(t *testing.T) {
	diffKSSP(t, graph.Path(30), []int{7}, Corollary49(), 41)
}
