// Package kssp implements the paper's §4: the framework that turns CLIQUE
// shortest-path algorithms into HYBRID k-source shortest-path algorithms
// (Theorem 4.1, Algorithm 5 "SP-Simulation"), and the corollaries
// instantiating it (Corollaries 4.6-4.9, including Theorem 1.3's exact
// SSSP in O~(n^(2/5)) rounds).
//
// Algorithm 5, for a CLIQUE algorithm A with runtime O~(η q^δ) and
// (α, β)-approximation quality:
//
//	x ← 2/(3+2δ)                      // optimizes simulation vs. exploration
//	Compute-Skeleton(γ, x)            // package skeleton; single sources join V_S
//	Compute-Representatives           // Algorithm 7: sources tag the closest
//	                                  // skeleton node; triples become public
//	Clique-Simulation(A, x)           // package cliquesim (Corollary 4.1)
//	local exploration for ηh rounds   // exact distances for close pairs
//	combine with Equation (1)
//
// Guarantees (Theorem 4.1): runtime O~(η n^(1-x)); weighted approximation
// (2α+1+β/T_B); unweighted (α+2/η+β/T_B); +O~(sqrt k) rounds when A solves
// APSP and k sources are arbitrary; exact factor (α+β/T_B) for single
// sources (the source is summoned into the skeleton, Lemma 4.5).
package kssp

import (
	"math"

	"repro/internal/clique"
	"repro/internal/cliquesim"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/skeleton"
)

// AlgSpec characterizes the CLIQUE algorithm A plugged into the framework,
// in the terms of Theorem 4.1.
type AlgSpec struct {
	// Delta is A's runtime exponent δ (sets x = 2/(3+2δ)).
	Delta float64
	// Eta is A's runtime scale η >= 1; it also sets the local exploration
	// depth ηh (clamped to n).
	Eta float64
	// SingleSource marks γ = 0: the source joins the skeleton directly
	// (Lemma 4.5) and no representative detour occurs.
	SingleSource bool
	// Factory builds A for a skeleton of size q whose source indices (in
	// clique index space) are srcIdx. Use cliquesim.SharedFactory semantics
	// internally when the algorithm requires instance sharing.
	Factory func(q int, srcIdx []int) clique.Algorithm
}

// Params tunes the framework run; the zero value follows the paper.
type Params struct {
	// XOverride replaces x = 2/(3+2δ) when in (0, 1).
	XOverride float64
	// HFactor forwards to skeleton.Params.
	HFactor float64
	// Routing tunes the token routing sessions of the CLIQUE simulation.
	Routing routing.Params
	// MaxEtaRounds caps the ηh local exploration (0 = n).
	MaxEtaRounds int
	// SkeletonCache, if non-nil, reuses skeleton construction results
	// across runs with matching parameters and membership draws (see
	// skeleton.ResultCache); the facade threads the Network's cache here.
	SkeletonCache *skeleton.ResultCache
}

// SourceDist is one output entry: the estimated distance to a source.
type SourceDist struct {
	Source int
	Dist   int64
}

// plan resolves the framework's derived parameters: the skeleton params at
// x = 2/(3+2δ), the exploration depth h, and the ηh local exploration
// rounds (clamped per Params).
func (spec AlgSpec) plan(params Params, n int) (sp skeleton.Params, h, etaRounds int) {
	x := params.XOverride
	if x <= 0 || x >= 1 {
		x = 2 / (3 + 2*spec.Delta)
	}
	sp = skeleton.Params{X: x, HFactor: params.HFactor, Cache: params.SkeletonCache}
	h = sp.H(n)
	etaRounds = int(math.Ceil(spec.Eta * float64(h)))
	if etaRounds < h {
		etaRounds = h
	}
	if etaRounds > n {
		etaRounds = n
	}
	if params.MaxEtaRounds > 0 && etaRounds > params.MaxEtaRounds {
		etaRounds = params.MaxEtaRounds
	}
	return sp, h, etaRounds
}

// cliqueFactory builds the CLIQUE-simulation factory for Algorithm 5. The
// sources of the simulated problem are the representatives, translated to
// clique indices inside the factory once members are known. The algorithm
// instance is run-scoped (env.SharedOnce): every node would construct the
// identical object from public knowledge, and the declared-cost oracle
// additionally requires a single pooled instance.
func cliqueFactory(env *sim.Env, spec AlgSpec, reps []skeleton.RepInfo) cliquesim.Factory {
	return func(q int, members []int) clique.Algorithm {
		v := env.SharedOnce("kssp.alg", func() interface{} {
			rank := make(map[int]int, len(members))
			for i, id := range members {
				rank[id] = i
			}
			srcIdx := make([]int, 0, len(reps))
			seen := map[int]bool{}
			for _, ri := range reps {
				if i, ok := rank[ri.Rep]; ok && !seen[i] {
					seen[i] = true
					srcIdx = append(srcIdx, i)
				}
			}
			return spec.Factory(q, srcIdx)
		})
		return v.(clique.Algorithm)
	}
}

// Compute runs Algorithm 5 collectively. isSource marks this node as one of
// the sources; kBound is a globally known upper bound on the number of
// sources. It returns this node's estimates, sorted by source ID.
func Compute(env *sim.Env, isSource bool, kBound int, spec AlgSpec, params Params) []SourceDist {
	n := env.N()
	sp, h, etaRounds := spec.plan(params, n)

	// Skeleton; single sources are summoned into it (Algorithm 6, γ = 0).
	skel := skeleton.Compute(env, sp, isSource && spec.SingleSource)

	// Representatives (Algorithm 7): public triples (source, rep, d_h).
	reps := skeleton.ComputeRepresentatives(env, skel, isSource, kBound)

	// CLIQUE simulation on the skeleton (Algorithm 8 / Corollary 4.1).
	simRes := cliquesim.Simulate(env, skel, sp.SampleProb(n), cliqueFactory(env, spec, reps), params.Routing)

	// Local exploration to depth ηh with the sources as origins gives the
	// exact first term of Equation (1) for close pairs.
	local, _ := skeleton.LimitedExplore(env, isSource, etaRounds)

	// Skeleton nodes flood their simulated estimates to radius h.
	labels := skeleton.FloodVectors(env, simVector(simRes, reps), h)

	return combineEstimates(skel, reps, simRes, local, labels)
}

// simVector extracts this node's simulated estimates d~(u, rep(s)) as the
// vector it floods in Algorithm 5's final loop (nil unless a member with
// results). Records are keyed by the source's position in the public reps
// list; the column of rep(s) in the node's output vector is found via the
// algorithm's Sources() (all nodes for APSP algorithms, the source index
// list otherwise).
func simVector(simRes cliquesim.Result, reps []skeleton.RepInfo) []int64 {
	if simRes.Index < 0 || simRes.Node == nil {
		return nil
	}
	dn, ok := simRes.Node.(clique.DistanceNode)
	if !ok {
		return nil
	}
	dists := dn.Distances()
	memberRank := make(map[int]int, len(simRes.Members))
	for i, id := range simRes.Members {
		memberRank[id] = i
	}
	col := map[int]int{}
	if da, ok := simRes.Alg.(clique.DistanceAlgorithm); ok {
		for ci, s := range da.Sources() {
			col[s] = ci
		}
	}
	vals := make([]int64, len(reps))
	for oi := range vals {
		vals[oi] = -1
	}
	count := 0
	for oi, ri := range reps {
		i, inClique := memberRank[ri.Rep]
		if !inClique {
			continue
		}
		c, hasCol := col[i]
		if !hasCol || c >= len(dists) {
			continue
		}
		vals[oi] = dists[c]
		count++
	}
	if count == 0 {
		return nil
	}
	return vals
}

// combineEstimates applies Equation (1):
// d~(v,s) = min(d_ηh(v,s), min_u d_h(v,u) + d~(u,r_s) + d_h(r_s,s)).
func combineEstimates(skel skeleton.Result, reps []skeleton.RepInfo, simRes cliquesim.Result, local []int64, labels *skeleton.Labels) []SourceDist {
	out := make([]SourceDist, 0, len(reps))
	srcOrder := orderedSourceIndex(simRes, reps)
	for _, ri := range reps {
		best := local[ri.Source]
		oi, hasRep := srcOrder[ri.Source]
		if hasRep {
			for u, du := range skel.Near {
				vec, ok := labels.Get(uint64(u))
				if !ok {
					continue
				}
				if dv := vec[oi]; dv >= 0 {
					if cand := satAdd(du, satAdd(dv, ri.Dist)); cand < best {
						best = cand
					}
				}
			}
		}
		out = append(out, SourceDist{Source: ri.Source, Dist: best})
	}
	return out
}

// orderedSourceIndex maps source node ID -> its output index oi.
func orderedSourceIndex(simRes cliquesim.Result, reps []skeleton.RepInfo) map[int]int {
	out := make(map[int]int, len(reps))
	for oi, ri := range reps {
		if ri.Rep >= 0 {
			out[ri.Source] = oi
		}
	}
	return out
}

func satAdd(a, b int64) int64 {
	if a >= graph.Inf || b >= graph.Inf {
		return graph.Inf
	}
	return a + b
}
