package kssp

import (
	"repro/internal/cliquesim"
	"repro/internal/sim"
	"repro/internal/skeleton"
)

// NewComputeMachine is the step form of Compute (Algorithm 5, see
// sim.StepProgram): the identical phases — skeleton, representatives,
// CLIQUE simulation, ηh exploration, label flood, Equation (1) — composed
// from the skeleton/cliquesim machines, sharing the plan/factory/combine
// helpers with the goroutine form so the two stay line-for-line twins.
// done receives this node's estimates when the machine finishes.
func NewComputeMachine(env *sim.Env, isSource bool, kBound int, spec AlgSpec, params Params, done func([]SourceDist)) sim.StepProgram {
	n := env.N()
	sp, h, etaRounds := spec.plan(params, n)

	var skelM *skeleton.ComputeMachine
	var repsM *skeleton.RepresentativesMachine
	var exploreM *skeleton.ExploreMachine
	var floodM *skeleton.FloodVectorsMachine
	var simRes cliquesim.Result

	return sim.Sequence(
		// Skeleton; single sources are summoned into it (Algorithm 6, γ=0).
		func(env *sim.Env) sim.StepProgram {
			skelM = skeleton.NewComputeMachine(env, sp, isSource && spec.SingleSource)
			return skelM
		},
		// Representatives (Algorithm 7).
		func(env *sim.Env) sim.StepProgram {
			repsM = skeleton.NewRepresentativesMachine(env, skelM.Res, isSource, kBound)
			return repsM
		},
		// CLIQUE simulation on the skeleton (Algorithm 8 / Corollary 4.1).
		func(env *sim.Env) sim.StepProgram {
			return cliquesim.NewSimulateMachine(env, skelM.Res, sp.SampleProb(n),
				cliqueFactory(env, spec, repsM.Out), params.Routing,
				func(r cliquesim.Result) { simRes = r })
		},
		// Local exploration to depth ηh (first term of Equation (1)).
		func(env *sim.Env) sim.StepProgram {
			exploreM = skeleton.NewExploreMachine(env, isSource, etaRounds)
			return exploreM
		},
		// Skeleton nodes flood their simulated estimates to radius h.
		func(env *sim.Env) sim.StepProgram {
			floodM = skeleton.NewFloodVectorsMachine(env, simVector(simRes, repsM.Out), h)
			return floodM
		},
		sim.Finish(func(env *sim.Env) {
			done(combineEstimates(skelM.Res, repsM.Out, simRes, exploreM.Near, &floodM.Known))
		}),
	)
}

// Pipeline returns Algorithm 5 as a sim.Pipeline: isSource[v] marks the
// sources, kBound is the globally known bound on their number, and the
// per-node result is the node's estimates sorted by source ID.
func Pipeline(isSource []bool, kBound int, spec AlgSpec, params Params) sim.Pipeline[[]SourceDist] {
	return sim.Pipeline[[]SourceDist]{
		Run: func(env *sim.Env) []SourceDist {
			return Compute(env, isSource[env.ID()], kBound, spec, params)
		},
		Machine: func(env *sim.Env, done func([]SourceDist)) sim.StepProgram {
			return NewComputeMachine(env, isSource[env.ID()], kBound, spec, params, done)
		},
	}
}
