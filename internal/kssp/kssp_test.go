package kssp

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// runKSSP executes the framework with the given spec and source set and
// returns per-node estimate maps plus metrics.
func runKSSP(t *testing.T, g *graph.Graph, sources []int, spec AlgSpec, params Params, seed int64) ([]map[int]int64, sim.Metrics) {
	t.Helper()
	n := g.N()
	isSource := make([]bool, n)
	for _, s := range sources {
		isSource[s] = true
	}
	out := make([]map[int]int64, n)
	m, err := sim.Run(g, sim.Config{Seed: seed}, func(env *sim.Env) {
		res := Compute(env, isSource[env.ID()], len(sources), spec, params)
		mp := make(map[int]int64, len(res))
		for _, sd := range res {
			mp[sd.Source] = sd.Dist
		}
		out[env.ID()] = mp
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, m
}

// checkApprox verifies d <= d~ <= bound(d) for every (node, source) pair.
func checkApprox(t *testing.T, g *graph.Graph, sources []int, got []map[int]int64, alpha float64, beta int64) {
	t.Helper()
	for _, s := range sources {
		want := graph.Dijkstra(g, s)
		for v := 0; v < g.N(); v++ {
			dt, ok := got[v][s]
			if !ok {
				t.Fatalf("node %d has no estimate for source %d", v, s)
			}
			d := want[v]
			if dt < d {
				t.Fatalf("node %d underestimates d(%d): %d < %d", v, s, dt, d)
			}
			if float64(dt) > alpha*float64(d)+float64(beta) {
				t.Fatalf("node %d estimate for %d is %d > %.1f*%d+%d", v, s, dt, alpha, d, beta)
			}
		}
	}
}

func TestSSSPExactOracle(t *testing.T) {
	// Corollary 4.9 / Theorem 1.3: exact SSSP (α = 1 single source).
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name string
		g    *graph.Graph
		src  int
	}{
		{"grid", graph.Grid(8, 8), 17},
		{"grid weighted", graph.WithRandomWeights(graph.Grid(7, 8), 9, rng), 3},
		{"sparse weighted", graph.WithRandomWeights(graph.SparseConnected(90, 1.3, rng), 12, rng), 40},
		{"path", graph.Path(60), 0},
		{"cycle", graph.Cycle(50), 25},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, _ := runKSSP(t, tt.g, []int{tt.src}, Corollary49(), Params{}, 5)
			checkApprox(t, tt.g, []int{tt.src}, got, 1, 0)
		})
	}
}

func TestSSSPExactRealBellmanFord(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.WithRandomWeights(graph.Grid(6, 6), 7, rng)
	got, _ := runKSSP(t, g, []int{10}, RealBFSingleSource(), Params{}, 7)
	checkApprox(t, g, []int{10}, got, 1, 0)
}

func TestKSSPWeightedBoundExactAPSPOracle(t *testing.T) {
	// With an exact APSP CLIQUE algorithm (α = 1, β = 0) the weighted bound
	// of Theorem 4.1 is (2α+1) = 3.
	rng := rand.New(rand.NewSource(3))
	g := graph.WithRandomWeights(graph.SparseConnected(100, 1.4, rng), 10, rng)
	srcRng := rand.New(rand.NewSource(11))
	var sources []int
	for v := 0; v < g.N(); v++ {
		if srcRng.Float64() < 0.08 {
			sources = append(sources, v)
		}
	}
	if len(sources) == 0 {
		sources = []int{0}
	}
	spec := Corollary47(0.5, 0) // α = 3+2ε exact-output oracle (no perturbation)
	got, _ := runKSSP(t, g, sources, spec, Params{}, 13)
	// Oracle emits exact values (PerturbSeed 0), so the end-to-end factor
	// is bounded by the α=1 analysis: 3.
	checkApprox(t, g, sources, got, 3, 0)
}

func TestKSSPPerturbedOracleWithinTheorem41Bound(t *testing.T) {
	// Perturbed oracle at its declared α: end-to-end bound (2α+1+β/T_B).
	rng := rand.New(rand.NewSource(5))
	g := graph.WithRandomWeights(graph.SparseConnected(80, 1.5, rng), 8, rng)
	sources := []int{5, 33, 61}
	eps := 0.5
	spec := Corollary46(eps, 99)
	got, _ := runKSSP(t, g, sources, spec, Params{}, 17)
	alphaA := 1 + eps
	bound := 2*alphaA + 1
	checkApprox(t, g, sources, got, bound, 0)
}

func TestKSSPUnweightedCloseToExact(t *testing.T) {
	// Unweighted bound (α + 2/η): with exact A and η = 4 the factor is 1.5.
	g := graph.Grid(9, 9)
	sources := []int{0, 40, 80}
	spec := Corollary46(0.25, 0) // η = 4, exact outputs
	got, _ := runKSSP(t, g, sources, spec, Params{}, 19)
	checkApprox(t, g, sources, got, 1.5, 0)
}

func TestKSSPRealMM(t *testing.T) {
	// Fully message-passing pipeline: MM on the skeleton, x = 6/11.
	rng := rand.New(rand.NewSource(7))
	g := graph.WithRandomWeights(graph.Grid(7, 7), 5, rng)
	sources := []int{0, 24, 48}
	got, _ := runKSSP(t, g, sources, RealMM(2), Params{}, 23)
	checkApprox(t, g, sources, got, 3, 0)
}

func TestSingleSourceSummonedIntoSkeleton(t *testing.T) {
	// γ = 0: even a source in a remote corner is exact.
	g := graph.Path(70)
	got, _ := runKSSP(t, g, []int{69}, Corollary49(), Params{}, 29)
	checkApprox(t, g, []int{69}, got, 1, 0)
}

func TestManySourcesLemma44(t *testing.T) {
	// Arbitrary k with an APSP oracle (Lemma 4.4): k = n/4 sources.
	g := graph.Grid(8, 8)
	var sources []int
	for v := 0; v < g.N(); v += 4 {
		sources = append(sources, v)
	}
	got, _ := runKSSP(t, g, sources, Corollary47(1, 0), Params{}, 31)
	checkApprox(t, g, sources, got, 3, 0)
}

func TestFrameworkDeterminism(t *testing.T) {
	g := graph.Grid(6, 6)
	spec := Corollary46(0.5, 0)
	a, m1 := runKSSP(t, g, []int{0, 18}, spec, Params{}, 37)
	b, m2 := runKSSP(t, g, []int{0, 18}, spec, Params{}, 37)
	if m1.Rounds != m2.Rounds {
		t.Fatalf("rounds differ between identical runs: %d vs %d", m1.Rounds, m2.Rounds)
	}
	for v := range a {
		for s, d := range a[v] {
			if b[v][s] != d {
				t.Fatalf("node %d source %d: %d vs %d", v, s, d, b[v][s])
			}
		}
	}
}

func TestXDerivation(t *testing.T) {
	// x = 2/(3+2δ): Cor 4.9 (δ=1/6) => x = 3/5 => runtime exponent 2/5.
	tests := []struct {
		delta float64
		wantX float64
	}{
		{0, 2.0 / 3.0},
		{1.0 / 6.0, 0.6},
		{1.0 / 3.0, 6.0 / 11.0},
		{Rho, 2 / (3 + 2*Rho)},
	}
	for _, tt := range tests {
		x := 2 / (3 + 2*tt.delta)
		if diff := x - tt.wantX; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("x(δ=%v) = %v, want %v", tt.delta, x, tt.wantX)
		}
	}
}

func TestParamsXOverrideAndEtaCap(t *testing.T) {
	// XOverride changes the skeleton density; MaxEtaRounds caps the local
	// exploration. Both must preserve correctness (the framework is exact
	// for a single summoned source regardless of x).
	g := graph.Path(50)
	got, m1 := runKSSP(t, g, []int{0}, Corollary49(), Params{XOverride: 0.5}, 41)
	checkApprox(t, g, []int{0}, got, 1, 0)
	got2, m2 := runKSSP(t, g, []int{0}, Corollary49(), Params{XOverride: 0.8}, 41)
	checkApprox(t, g, []int{0}, got2, 1, 0)
	if m1.Rounds == m2.Rounds {
		t.Fatalf("different x gave identical round counts (%d); override ignored?", m1.Rounds)
	}
}

func TestHFactorParamForwarded(t *testing.T) {
	g := graph.Grid(6, 6)
	_, m1 := runKSSP(t, g, []int{0}, Corollary49(), Params{HFactor: 1}, 43)
	_, m2 := runKSSP(t, g, []int{0}, Corollary49(), Params{HFactor: 3}, 43)
	if m2.Rounds <= m1.Rounds {
		t.Fatalf("HFactor=3 (%d rounds) not costlier than HFactor=1 (%d)", m2.Rounds, m1.Rounds)
	}
}

func TestSourceDistOutputSorted(t *testing.T) {
	g := graph.Grid(5, 5)
	sources := []int{20, 3, 11}
	n := g.N()
	isSource := make([]bool, n)
	for _, s := range sources {
		isSource[s] = true
	}
	var out []SourceDist
	_, err := sim.Run(g, sim.Config{Seed: 47}, func(env *sim.Env) {
		res := Compute(env, isSource[env.ID()], len(sources), Corollary46(0.5, 0), Params{})
		if env.ID() == 0 {
			out = res
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(sources) {
		t.Fatalf("got %d entries, want %d", len(out), len(sources))
	}
	for i := 1; i < len(out); i++ {
		if out[i].Source <= out[i-1].Source {
			t.Fatalf("output not sorted by source: %v", out)
		}
	}
}
