package kssp

import (
	"math"

	"repro/internal/clique"
)

// This file wires the paper's corollaries: each constructor returns the
// AlgSpec of the CLIQUE algorithm the corollary plugs into Theorem 4.1.
// Published algorithms we did not reimplement (fast matrix multiplication,
// hopset-based SSSP) are represented by the declared-cost oracle at their
// published (δ, η, α, β); the semiring MM and Bellman-Ford variants run
// with real messages. See DESIGN.md's substitution table.

// Rho is the distributed matrix multiplication exponent bound ρ < 0.15715
// of Censor-Hillel et al. [8] (via ω < 2.3728639).
const Rho = 0.15715

// Corollary46 returns the spec of [7] Theorem 1.2 at γ = 1/2: runtime
// O~(1/ε) (δ = 0), approximation (1+ε). Theorem 4.1 turns it into the
// n^(1/3)-source HYBRID algorithm with (3+ε) weighted / (1+ε) unweighted
// quality in O~(n^(1/3)/ε) rounds.
func Corollary46(eps float64, perturbSeed int64) AlgSpec {
	return AlgSpec{
		Delta: 0,
		Eta:   math.Max(1, 1/eps),
		Factory: func(q int, srcIdx []int) clique.Algorithm {
			return clique.NewOracle(q, srcIdx,
				clique.CostModel{Delta: 0, Eta: 1 / eps},
				clique.Quality{Alpha: 1 + eps, PerturbSeed: perturbSeed}, false)
		},
	}
}

// Corollary47 returns the spec of [7] Theorem 1.1 (APSP, δ = 0,
// (2+ε, (1+ε)w_uv)): since (1+ε)w_uv <= (1+ε)d(u,v), the paper folds the
// additive error into the multiplicative one, making A a (3+2ε)-
// approximation. Theorem 4.1 + Lemma 4.4 give arbitrary k sources with
// (7+ε) weighted / (2+ε) unweighted quality in O~(n^(1/3)/ε + sqrt(k)).
func Corollary47(eps float64, perturbSeed int64) AlgSpec {
	return AlgSpec{
		Delta: 0,
		Eta:   math.Max(1, 1/eps),
		Factory: func(q int, srcIdx []int) clique.Algorithm {
			return clique.NewOracle(q, nil, // APSP: all skeleton nodes are sources
				clique.CostModel{Delta: 0, Eta: 1 / eps},
				clique.Quality{Alpha: 3 + 2*eps, PerturbSeed: perturbSeed}, false)
		},
	}
}

// Corollary48 returns the spec of [8]'s ρ-exponent APSP (δ = ρ < 0.15715,
// (1+o(1))-approximation): Theorem 4.1 gives k-SSP with (3+o(1)) weighted /
// (1+ε) unweighted quality in O~(n^0.397 + sqrt(k)).
func Corollary48(eps float64, perturbSeed int64) AlgSpec {
	return AlgSpec{
		Delta: Rho,
		Eta:   math.Max(1, 1/eps),
		Factory: func(q int, srcIdx []int) clique.Algorithm {
			return clique.NewOracle(q, nil,
				clique.CostModel{Delta: Rho, Eta: 1},
				clique.Quality{Alpha: 1 + eps, PerturbSeed: perturbSeed}, false)
		},
	}
}

// Corollary49 returns the spec of [7] Theorem 5.2 (exact CLIQUE SSSP in
// O~(q^(1/6))): with Lemma 4.5's single-source handling, Theorem 4.1 gives
// Theorem 1.3 — exact HYBRID SSSP in O~(n^(2/5)) rounds
// (x = 2/(3+2/6) = 3/5, runtime exponent 1-x = 2/5).
func Corollary49() AlgSpec {
	return AlgSpec{
		Delta:        1.0 / 6.0,
		Eta:          1,
		SingleSource: true,
		Factory: func(q int, srcIdx []int) clique.Algorithm {
			return clique.NewOracle(q, srcIdx,
				clique.CostModel{Delta: 1.0 / 6.0, Eta: 1},
				clique.Quality{Alpha: 1}, false)
		},
	}
}

// RealMM returns a fully message-passing instantiation: the semiring matrix
// multiplication APSP (δ = 1/3, exact). Theorem 4.1 then yields exact
// distances to the representatives, i.e. a (3) weighted / (1+2/η)
// unweighted k-SSP, at x = 6/11.
func RealMM(eta float64) AlgSpec {
	return AlgSpec{
		Delta: 1.0 / 3.0,
		Eta:   math.Max(1, eta),
		Factory: func(q int, srcIdx []int) clique.Algorithm {
			return clique.NewMM(q, false)
		},
	}
}

// RealBFSingleSource returns a fully message-passing exact SSSP
// instantiation via clique Bellman-Ford (δ = 1 worst case; fast when the
// skeleton hop diameter is small).
func RealBFSingleSource() AlgSpec {
	return AlgSpec{
		Delta:        1,
		Eta:          1,
		SingleSource: true,
		Factory: func(q int, srcIdx []int) clique.Algorithm {
			return clique.NewBellmanFord(q, srcIdx, 0)
		},
	}
}
