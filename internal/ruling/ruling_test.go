package ruling

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/sim"
)

func computeRulers(t *testing.T, g *graph.Graph, mu int) []bool {
	t.Helper()
	rulers := make([]bool, g.N())
	m, err := sim.Run(g, sim.Config{Seed: 1}, func(env *sim.Env) {
		rulers[env.ID()] = Compute(env, mu)
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := Rounds(g.N(), mu); m.Rounds != want {
		t.Fatalf("Compute took %d rounds, want exactly %d", m.Rounds, want)
	}
	if m.GlobalMsgs != 0 {
		t.Fatalf("ruling set used %d global messages; Lemma 2.1 is local-only", m.GlobalMsgs)
	}
	return rulers
}

func TestRulingSetProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tests := []struct {
		name string
		g    *graph.Graph
		mu   int
	}{
		{"path mu=1", graph.Path(40), 1},
		{"path mu=3", graph.Path(60), 3},
		{"cycle mu=2", graph.Cycle(50), 2},
		{"grid mu=1", graph.Grid(7, 8), 1},
		{"grid mu=2", graph.Grid(9, 9), 2},
		{"complete mu=2", graph.Complete(20), 2},
		{"star mu=1", graph.Star(30), 1},
		{"sparse mu=2", graph.SparseConnected(70, 1, rng), 2},
		{"barbell mu=2", graph.Barbell(15, 12), 2},
		{"tree mu=3", graph.RandomTree(80, rng), 3},
		{"single node", graph.New(1), 1},
		{"two nodes", graph.Path(2), 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rulers := computeRulers(t, tt.g, tt.mu)
			alpha := 2*tt.mu + 1
			beta := 2 * tt.mu * sim.Log2Ceil(tt.g.N())
			if err := Check(tt.g, rulers, alpha, beta); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCompleteGraphSingleRuler(t *testing.T) {
	// In K_n any two nodes are 1 hop apart, so a (2µ+1 >= 3)-separated
	// ruling set has exactly one member.
	g := graph.Complete(16)
	rulers := computeRulers(t, g, 1)
	count := 0
	for _, r := range rulers {
		if r {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("K16 ruling set has %d rulers, want 1", count)
	}
}

func TestMuClamping(t *testing.T) {
	g := graph.Path(8)
	rulers := make([]bool, g.N())
	_, err := sim.Run(g, sim.Config{Seed: 1}, func(env *sim.Env) {
		rulers[env.ID()] = Compute(env, 0) // clamped to 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(g, rulers, 3, 2*sim.Log2Ceil(8)); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRejectsBadSets(t *testing.T) {
	g := graph.Path(10)
	tests := []struct {
		name   string
		rulers []bool
		alpha  int
		beta   int
	}{
		{"empty", make([]bool, 10), 3, 5},
		{"too close", func() []bool {
			r := make([]bool, 10)
			r[0], r[1] = true, true
			return r
		}(), 3, 9},
		{"no domination", func() []bool {
			r := make([]bool, 10)
			r[0] = true
			return r
		}(), 3, 2},
		{"wrong length", make([]bool, 3), 1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := Check(g, tt.rulers, tt.alpha, tt.beta); err == nil {
				t.Fatal("Check accepted an invalid ruling set")
			}
		})
	}
}

func TestCheckAcceptsValidManualSet(t *testing.T) {
	g := graph.Path(10)
	r := make([]bool, 10)
	r[0], r[5] = true, true
	if err := Check(g, r, 3, 4); err != nil {
		t.Fatal(err)
	}
}

func TestRoundsFormula(t *testing.T) {
	tests := []struct{ n, mu, want int }{
		{8, 1, 6},
		{8, 2, 12},
		{100, 3, 42},
		{2, 0, 2}, // mu clamped to 1
	}
	for _, tt := range tests {
		if got := Rounds(tt.n, tt.mu); got != tt.want {
			t.Fatalf("Rounds(%d,%d) = %d, want %d", tt.n, tt.mu, got, tt.want)
		}
	}
}

// Property: on random connected graphs the distributed result always
// verifies against the sequential checker.
func TestQuickRulingSetAlwaysValid(t *testing.T) {
	f := func(seed int64, nRaw uint8, muRaw uint8) bool {
		n := 4 + int(nRaw%60)
		mu := 1 + int(muRaw%3)
		rng := rand.New(rand.NewSource(seed))
		g := graph.SparseConnected(n, 0.5, rng)
		rulers := make([]bool, n)
		_, err := sim.Run(g, sim.Config{Seed: seed}, func(env *sim.Env) {
			rulers[env.ID()] = Compute(env, mu)
		})
		if err != nil {
			return false
		}
		return Check(g, rulers, 2*mu+1, 2*mu*sim.Log2Ceil(n)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
