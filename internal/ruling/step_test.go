package ruling

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// TestMachineMatchesCompute proves the step machine byte-identical to the
// goroutine form on every engine: same membership, same Metrics.
func TestMachineMatchesCompute(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid": graph.Grid(5, 6),
		"path": graph.Path(23),
	}
	for name, g := range graphs {
		for _, mu := range []int{1, 3} {
			want := make([]bool, g.N())
			wantM, err := sim.Run(g, sim.Config{Seed: 11, Engine: sim.EngineLegacy}, func(env *sim.Env) {
				want[env.ID()] = Compute(env, mu)
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, eng := range []sim.Engine{sim.EngineLegacy, sim.EngineSharded, sim.EngineStep} {
				got := make([]bool, g.N())
				gotM, err := sim.RunStep(g, sim.Config{Seed: 11, Engine: eng}, func(env *sim.Env) sim.StepProgram {
					m := NewMachine(env, mu)
					return sim.Sequence(
						func(*sim.Env) sim.StepProgram { return m },
						sim.Finish(func(env *sim.Env) { got[env.ID()] = m.InSet }),
					)
				})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s mu=%d engine=%s: memberships differ", name, mu, eng)
				}
				if wantM != gotM {
					t.Errorf("%s mu=%d engine=%s: metrics differ: %+v vs %+v", name, mu, eng, wantM, gotM)
				}
			}
		}
	}
}
