package ruling

import "repro/internal/sim"

// Machine is the step-machine form of Compute (see sim.StepProgram): the
// same bitwise-ID elimination, advanced one round segment per Step call so
// the goroutine-free engine can run it. After the machine finishes, InSet
// reports membership in the ruling set. The port is line-for-line faithful
// — identical messages, randomness, and round count — so either form may
// run under any engine and produce byte-identical results.
type Machine struct {
	// InSet reports ruling-set membership; valid once Step returned true.
	InSet bool

	loop      sim.Loop
	alpha     int
	candidate bool
	heard     bool
	seen      bool
}

// NewMachine builds the collective ruling-set machine; all nodes must start
// it in the same round with the same µ. It takes exactly Rounds(n, mu)
// rounds, like Compute.
func NewMachine(env *sim.Env, mu int) *Machine {
	if mu < 1 {
		mu = 1
	}
	m := &Machine{alpha: 2 * mu, candidate: true}
	m.loop = sim.Loop{
		Rounds: sim.Log2Ceil(env.N()) * m.alpha,
		Send:   m.send,
		Recv:   m.recv,
	}
	return m
}

// Step implements sim.StepProgram.
func (m *Machine) Step(env *sim.Env) bool {
	if m.loop.Step(env) {
		m.InSet = m.candidate
		return true
	}
	return false
}

// send starts a bit-stage's elimination wave: at the first round of bit b,
// zero-bit candidates announce themselves with TTL alpha-1.
func (m *Machine) send(env *sim.Env, i int) {
	bit, step := i/m.alpha, i%m.alpha
	if step == 0 && m.candidate && (env.ID()>>bit)&1 == 0 {
		env.BroadcastLocal(waveMsg{TTL: m.alpha - 1})
		m.seen = true
	}
}

// recv forwards the wave (once, with the largest remaining TTL) and, at a
// bit-stage boundary, drops one-bit candidates that heard it.
func (m *Machine) recv(env *sim.Env, in sim.Inbox, i int) {
	best := -1
	for _, lm := range in.Local {
		if w, ok := lm.Payload.(waveMsg); ok {
			m.heard = true
			if w.TTL > best {
				best = w.TTL
			}
		}
	}
	if best > 0 && !m.seen {
		env.BroadcastLocal(waveMsg{TTL: best - 1})
		m.seen = true
	}
	if i%m.alpha == m.alpha-1 {
		bit := i / m.alpha
		if m.candidate && (env.ID()>>bit)&1 == 1 && m.heard {
			m.candidate = false
		}
		m.heard, m.seen = false, false
	}
}

// PayloadWords implements sim.WordSized: a wave message is one word.
func (waveMsg) PayloadWords() int64 { return 1 }
