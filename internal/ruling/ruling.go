// Package ruling implements the deterministic distributed ruling-set
// algorithm the paper invokes as Lemma 2.1 (due to Awerbuch et al. [4] and
// Kuhn, Maus & Weidner [22]): a (2µ+1, 2µ⌈log n⌉)-ruling set of the local
// graph computed in O(µ log n) rounds using only local communication.
//
// Definition 2.3: R ⊆ V is an (α, β)-ruling set iff every node is within β
// hops of some ruler and any two distinct rulers are at least α hops apart.
//
// The algorithm is the classic bitwise-ID elimination: starting from
// R = V, process the ⌈log n⌉ ID bits one at a time; at bit i, candidates
// whose bit is 1 drop out if a candidate with bit 0 lies within 2µ hops
// (detected by a 2µ-round local wave). Each stage preserves domination up to
// +2µ hops and the survivors of all stages are pairwise > 2µ apart.
package ruling

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// waveMsg is the local-mode payload of the elimination wave: a zero-bit
// candidate announces itself with a time-to-live.
type waveMsg struct {
	TTL int
}

// Compute runs the collective ruling-set protocol and reports whether this
// node ends up in the ruling set. All nodes must call it in the same round;
// it takes exactly ceil(log2 n) * 2µ rounds. The result is a
// (2µ+1, 2µ⌈log n⌉)-ruling set of G (Lemma 2.1).
func Compute(env *sim.Env, mu int) bool {
	if mu < 1 {
		mu = 1
	}
	logN := sim.Log2Ceil(env.N())
	alpha := 2 * mu // drop distance; survivors end up >= alpha+1 apart

	candidate := true
	for bit := 0; bit < logN; bit++ {
		myBit := (env.ID() >> bit) & 1
		// Zero-bit candidates start a wave of radius alpha; one-bit
		// candidates that hear it drop out. Every node forwards the wave
		// (whether candidate or not) so distances are true hop distances.
		heard := false
		seen := false // this node already forwarded the wave
		for step := 0; step < alpha; step++ {
			if step == 0 && candidate && myBit == 0 {
				env.BroadcastLocal(waveMsg{TTL: alpha - 1})
				seen = true
			}
			in := env.Step()
			best := -1
			for _, lm := range in.Local {
				if w, ok := lm.Payload.(waveMsg); ok {
					heard = true
					if w.TTL > best {
						best = w.TTL
					}
				}
			}
			if best > 0 && !seen {
				// Forward once with the largest remaining TTL; re-forwarding
				// can only shrink TTL, so once suffices.
				env.BroadcastLocal(waveMsg{TTL: best - 1})
				seen = true
			}
		}
		if candidate && myBit == 1 && heard {
			candidate = false
		}
	}
	return candidate
}

// Check verifies the (alpha, beta)-ruling set properties of rulers on g
// sequentially. It returns nil iff rulers is a valid (alpha, beta)-ruling
// set. Used by tests and by the experiment harness as ground truth.
func Check(g *graph.Graph, rulers []bool, alpha, beta int) error {
	n := g.N()
	if len(rulers) != n {
		return fmt.Errorf("ruling: got %d flags for %d nodes", len(rulers), n)
	}
	any := false
	for v := 0; v < n; v++ {
		if rulers[v] {
			any = true
			break
		}
	}
	if !any && n > 0 {
		return fmt.Errorf("ruling: empty ruling set")
	}
	// Multi-source BFS from all rulers gives each node's distance to the
	// nearest ruler (domination) and, from each ruler, a solo BFS bounds
	// pairwise separation.
	distToRuler := make([]int, n)
	for i := range distToRuler {
		distToRuler[i] = -1
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if rulers[v] {
			distToRuler[v] = 0
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(u) {
			if distToRuler[nb.To] == -1 {
				distToRuler[nb.To] = distToRuler[u] + 1
				queue = append(queue, nb.To)
			}
		}
	}
	for v := 0; v < n; v++ {
		if distToRuler[v] == -1 || distToRuler[v] > beta {
			return fmt.Errorf("ruling: node %d is %d hops from nearest ruler, beta = %d", v, distToRuler[v], beta)
		}
	}
	// Separation: BFS limited to depth alpha-1 from each ruler must not
	// reach another ruler.
	for r := 0; r < n; r++ {
		if !rulers[r] {
			continue
		}
		d := graph.BFS(g, r)
		for v := 0; v < n; v++ {
			if v != r && rulers[v] && d[v] < int64(alpha) {
				return fmt.Errorf("ruling: rulers %d and %d are %d hops apart, alpha = %d", r, v, d[v], alpha)
			}
		}
	}
	return nil
}

// Rounds returns the exact number of rounds Compute takes for the given n
// and mu, so callers composing phases can pre-compute schedules.
func Rounds(n, mu int) int {
	if mu < 1 {
		mu = 1
	}
	return sim.Log2Ceil(n) * 2 * mu
}
