package sim

import "repro/internal/graph"

// Pipeline bundles the two execution forms of one collective algorithm —
// the blocking goroutine form and the resumable step-machine form — behind
// a single value, so callers can hold one code path and still select any
// engine. It is the contract every algorithm package exports to be
// "engine-complete": the two forms must be faithful twins (identical
// messages, randomness order, and round count for a fixed seed), which the
// per-package differential tests enforce with the goroutine form as the
// oracle. ARCHITECTURE.md's "Pipeline contract" section documents the
// porting rules.
type Pipeline[T any] struct {
	// Run executes the algorithm collectively as a blocking Program at one
	// node and returns that node's result. It is the form the goroutine
	// engines (EngineSharded, EngineLegacy) execute.
	Run func(env *Env) T

	// Machine builds the node's algorithm as a resumable state machine and
	// arranges for done to receive the node's result when the machine
	// finishes. It is the form EngineStep executes natively — no per-node
	// goroutine, no adapter fallback.
	Machine func(env *Env, done func(T)) StepProgram
}

// RunPipeline executes p on every node of g under cfg, dispatching on the
// engine: the step-native machine form on EngineStep, the blocking closure
// on the goroutine engines. It returns the per-node results indexed by
// node ID, with Run's usual error contract.
func RunPipeline[T any](g *graph.Graph, cfg Config, p Pipeline[T]) ([]T, Metrics, error) {
	out := make([]T, g.N())
	var m Metrics
	var err error
	if cfg.Engine == EngineStep || cfg.Engine == EngineDist {
		m, err = RunStep(g, cfg, func(env *Env) StepProgram {
			id := env.ID()
			return p.Machine(env, func(res T) { out[id] = res })
		})
	} else {
		m, err = Run(g, cfg, func(env *Env) {
			out[env.ID()] = p.Run(env)
		})
	}
	if err != nil {
		return nil, m, err
	}
	return out, m, nil
}
