package sim

import (
	"fmt"
	"sync/atomic"

	"repro/internal/graph"
)

// This file implements EngineStep ("sim v3"), the goroutine-free round
// engine, and the StepProgram execution model it runs.
//
// The goroutine engines (legacy, sharded) execute each node's Program as a
// blocking goroutine and synchronize them at a barrier inside Env.Step.
// That is maximally convenient to program against, but it puts two
// scheduler wake/park cycles on every (node, round) pair: at n = 16384 the
// barrier alone costs ~0.4µs/node/round and dominates APSP wall clock.
//
// EngineStep removes the floor by inverting control: each node is an
// explicit resumable state machine (StepProgram) and the engine's round
// loop IS the barrier —
//
//	for every round:
//	    for every unfinished node (in shard-parallel batches):
//	        install the node's inbox; run its StepProgram.Step
//	    deliver staged messages (the sharded engine's delivery path)
//
// No node blocks, so no node ever parks or wakes: a round costs one
// function call per node plus delivery.
//
// # The StepProgram contract
//
// One Step call executes exactly the code a Program would run between two
// consecutive Env.Step calls (one "round segment"):
//
//   - Read the round's inbox with Env.Incoming (empty on the first call).
//     The slices are owned by the node until its next round segment and
//     must not be retained, exactly like Env.Step's return value.
//   - Stage sends with SendLocal / BroadcastLocal / SendGlobal as usual.
//   - Return false to take the round barrier, true when the node is done.
//     Returning true consumes no further rounds: it corresponds to a
//     Program returning, and like a returning Program the node's staged
//     messages are still delivered.
//
// A StepProgram must never call Env.Step (the engine panics if it does) and
// never blocks; composition replaces blocking. Chain, Sequence, Finish and
// Loop cover the compositions the paper's algorithms need: collective
// phases run one after another by handing the round mid-segment from a
// finishing machine to its successor, which reproduces the goroutine
// programs' behavior exactly — a finishing phase only reads its last inbox,
// a starting phase only sends, so both share one round segment the same way
// sequential calls share a round between two Env.Step calls.
//
// # Compatibility across engines
//
// Both program models run on all three engines:
//
//   - A Program runs on EngineStep through a goroutine-backed adapter
//     (AdaptProgram): the program keeps its blocking style and yields to
//     the engine loop at every Env.Step. This keeps every algorithm working
//     on every engine, at roughly the goroutine engines' per-round cost.
//   - A StepProgram runs on the goroutine engines through DriveProgram,
//     which replays the engine loop's install-inbox/step cycle inside the
//     node's goroutine.
//
// Either way, for a fixed seed all three engines produce byte-identical
// results and Metrics; the differential tests (engines_test.go here and at
// the repository root) enforce this across the execution-model matrix.

// StepProgram is a node's algorithm as an explicit resumable state machine:
// Step executes one round segment and reports whether the node is done. See
// the contract above.
type StepProgram interface {
	Step(env *Env) (done bool)
}

// StepFactory builds one node's StepProgram. It runs before the first
// round; construction may read env (ID, Rand, topology) and corresponds to
// a Program's code before its first Env.Step... which is exactly where the
// machine's first Step call begins, so factories should only allocate and
// sample, not send. (Sends staged during construction would still be
// delivered in round 1, but keeping them in Step keeps the two execution
// models aligned line for line.)
type StepFactory func(env *Env) StepProgram

// StepFunc adapts a plain function to the StepProgram interface.
type StepFunc func(env *Env) bool

// Step implements StepProgram.
func (f StepFunc) Step(env *Env) bool { return f(env) }

// Chain runs machines produced on demand, one after another: when the
// current machine finishes, next is called immediately — within the same
// round segment — to produce its successor, and a nil return finishes the
// chain. next sees every predecessor's result (via the closure) and may
// decide data-dependently, which is what the protocols' aggregate-and-
// continue loops need (e.g. routing's reply drain).
func Chain(next func(env *Env) StepProgram) StepProgram {
	return &chain{next: next}
}

type chain struct {
	next func(env *Env) StepProgram
	cur  StepProgram
	done bool
}

// Step implements StepProgram.
func (c *chain) Step(env *Env) bool {
	if c.done {
		return true
	}
	for {
		if c.cur == nil {
			if c.cur = c.next(env); c.cur == nil {
				c.done = true
				return true
			}
		}
		if !c.cur.Step(env) {
			return false
		}
		c.cur = nil
	}
}

// Sequence chains a fixed list of phases. Each phase is a thunk evaluated
// lazily when its turn comes — mid-segment, exactly where the goroutine
// program would call the corresponding collective function — so per-node
// randomness and sends are consumed in identical order on every engine. A
// thunk may return nil to skip its phase.
func Sequence(phases ...func(env *Env) StepProgram) StepProgram {
	i := 0
	return Chain(func(env *Env) StepProgram {
		for i < len(phases) {
			p := phases[i](env)
			i++
			if p != nil {
				return p
			}
		}
		return nil
	})
}

// Finish wraps a zero-round computation as a Sequence/Chain phase: f runs
// mid-segment when the phase is reached (typically combining the results of
// the preceding machines) and consumes no rounds.
func Finish(f func(env *Env)) func(env *Env) StepProgram {
	return func(env *Env) StepProgram {
		f(env)
		return nil
	}
}

// Loop is the step form of the canonical collective round pattern
//
//	for i := 0; i < rounds; i++ {
//		send(i)
//		in := env.Step()
//		recv(in, i)
//	}
//
// which nearly every phase of the paper's protocols instantiates (floods,
// paced global sends, tree aggregations). One Step call runs Recv for the
// round that just ended (skipped before the first round), then Send for the
// next; the machine finishes — mid-segment, after its last Recv — once Send
// has run Rounds times. Either callback may be nil. A Loop is single-use.
type Loop struct {
	Rounds int
	Send   func(env *Env, i int)
	Recv   func(env *Env, in Inbox, i int)
	i      int
}

// Step implements StepProgram.
func (l *Loop) Step(env *Env) bool {
	if l.i > 0 && l.Recv != nil {
		l.Recv(env, env.Incoming(), l.i-1)
	}
	if l.i >= l.Rounds {
		return true
	}
	if l.Send != nil {
		l.Send(env, l.i)
	}
	l.i++
	return false
}

// DriveProgram runs a StepProgram to completion on a goroutine engine by
// replaying the step engine's install-inbox/step cycle inside the node's
// Program goroutine. It is how step-native algorithms stay runnable (and
// differentially testable) on EngineLegacy and EngineSharded.
func DriveProgram(env *Env, sp StepProgram) {
	env.curInbox = Inbox{}
	for !sp.Step(env) {
		env.curInbox = env.Step()
	}
}

// AsProgram converts a StepFactory into a Program for the goroutine
// engines.
func AsProgram(factory StepFactory) Program {
	return func(env *Env) {
		DriveProgram(env, factory(env))
	}
}

// adapterBuilds counts programAdapter constructions — legacy Programs
// falling back to the goroutine-backed compatibility path under the step
// engine. The facade's step-nativeness test reads it to assert that no
// public algorithm silently regresses onto the adapter.
var adapterBuilds atomic.Int64

// AdapterBuilds reports how many legacy Programs have been wrapped for the
// step engine since process start. A step-native pipeline run on
// EngineStep must not advance it.
func AdapterBuilds() int64 { return adapterBuilds.Load() }

// AdaptProgram converts a legacy Program into a StepFactory backed by one
// goroutine per node: the program keeps its blocking style, parking in
// Env.Step until the engine loop's next round. This is the compatibility
// path that keeps un-ported algorithms running on EngineStep — correct and
// byte-identical, but it reintroduces the per-node wake/park cost the
// step-native ports avoid. Top-level adapted programs are driven by a
// per-shard multiplexer (see adapterGroup); adapters nested inside
// composite machines fall back to the per-node channel protocol.
func AdaptProgram(program Program) StepFactory {
	return func(env *Env) StepProgram {
		adapterBuilds.Add(1)
		return &programAdapter{
			program: program,
			resume:  make(chan struct{}, 1),
			yield:   make(chan bool, 1),
		}
	}
}

// programAdapter runs a blocking Program under the step engine. In the
// per-node protocol (adapters nested inside composite machines) the
// engine's Step call and the program strictly alternate over the
// resume/yield channels, both buffered so neither side can block the other
// during shutdown. Top-level adapters are instead driven collectively by
// their shard's adapterGroup: group is set at registration and switches
// await/run to the broadcast-wake protocol.
type programAdapter struct {
	program  Program
	started  bool
	returned bool // program returned; its goroutine is gone (per-node protocol)
	resume   chan struct{}
	yield    chan bool // false: round segment done; true: program returned
	group    *adapterGroup
}

// adapterGroup drives all top-level adapted Programs of one shard with one
// broadcast wake per round instead of two channel handoffs per node: the
// shard worker swaps-and-closes the group's release channel, waking every
// parked program at once, and the last member to finish its round segment
// signals done. The members' round segments therefore run concurrently —
// exactly as the goroutine engines run all programs concurrently, so any
// program correct there is correct here — while the shard worker steps its
// native machines inline and then waits for the group.
type adapterGroup struct {
	members []*Env // envs of this shard's adapted programs
	started bool
	release atomic.Value  // chan struct{}; closed to wake the group
	pending atomic.Int32  // members still to arrive this round
	done    chan struct{} // cap 1; signaled by the last arrival
}

func newAdapterGroup() *adapterGroup {
	g := &adapterGroup{done: make(chan struct{}, 1)}
	g.release.Store(make(chan struct{}))
	return g
}

// arrive reports one member's round segment finished (or its program
// returned, or unwound after an abort); the last arrival wakes the engine.
func (g *adapterGroup) arrive() {
	if g.pending.Add(-1) == 0 {
		g.done <- struct{}{}
	}
}

// wake releases every member parked in await. The members loaded the old
// release channel before arriving last round, so closing it wakes exactly
// the parked generation; the swap happens before the close, so a waking
// member always parks on the new channel next.
func (g *adapterGroup) wake() {
	old := g.release.Load().(chan struct{})
	g.release.Store(make(chan struct{}))
	close(old)
}

// initAdapterGroups partitions top-level adapted Programs into per-shard
// groups. Runs once, after the machines are built and before round 0.
func (e *engine) initAdapterGroups() {
	for i, sp := range e.progs {
		a, ok := sp.(*programAdapter)
		if !ok || e.envs[i].finished {
			continue
		}
		if e.adGroups == nil {
			e.adGroups = make([]*adapterGroup, e.nShards)
		}
		k := e.shardOf(i)
		g := e.adGroups[k]
		if g == nil {
			g = newAdapterGroup()
			e.adGroups[k] = g
		}
		env := e.envs[i]
		a.group = g
		env.adapter = a
		g.members = append(g.members, env)
	}
}

// Step implements StepProgram: resume the program goroutine (starting it on
// the first call) and wait until it parks in Env.Step or returns.
func (a *programAdapter) Step(env *Env) bool {
	if !a.started {
		a.started = true
		env.adapter = a
		go a.run(env)
	} else {
		a.resume <- struct{}{}
	}
	done := <-a.yield
	if done {
		a.returned = true
	}
	return done
}

// run executes the program on its own goroutine, mirroring the goroutine
// engines' panic handling. Group-driven members report completion to their
// group; per-node adapters yield to the engine's Step call.
func (a *programAdapter) run(env *Env) {
	defer func() {
		if r := recover(); r != nil {
			if r != errAbort { //nolint:errorlint // sentinel identity check
				env.eng.fail(fmt.Errorf("sim: node %d panicked: %v", env.id, r))
			}
		}
		if a.group != nil {
			env.finished = true
			a.group.arrive()
			return
		}
		a.yield <- true
	}()
	a.program(env)
}

// await is the Env.Step implementation for adapted programs: yield the
// round segment to the engine loop and park until the next round's inbox is
// installed. Group-driven members arrive at the group barrier and park on
// the shared release channel (loaded before arriving, exactly like the
// goroutine engines' barrier); per-node adapters use the resume/yield
// protocol.
func (a *programAdapter) await(env *Env) Inbox {
	if env.eng.aborted.Load() {
		panic(errAbort)
	}
	if g := a.group; g != nil {
		rel := g.release.Load().(chan struct{})
		g.arrive()
		<-rel
		if env.eng.aborted.Load() {
			panic(errAbort)
		}
		return env.curInbox
	}
	a.yield <- false
	<-a.resume
	if env.eng.aborted.Load() {
		panic(errAbort)
	}
	return env.curInbox
}

// RunStep executes one StepProgram per node of g under cfg and returns the
// collected metrics; it is to StepPrograms what Run is to Programs, with
// the same error contract. Under EngineStep the machines run natively on
// the goroutine-free loop; under the goroutine engines they run through
// DriveProgram, so callers can hold one code path and still select any
// engine.
func RunStep(g *graph.Graph, cfg Config, factory StepFactory) (Metrics, error) {
	if cfg.Engine != EngineStep && cfg.Engine != EngineDist {
		return Run(g, cfg, AsProgram(factory))
	}
	eng, err := newEngine(g, cfg)
	if eng == nil {
		return Metrics{}, err
	}
	eng.stepMode = true
	eng.distMode = cfg.Engine == EngineDist
	eng.initSharded()
	defer eng.stopSharded()
	if eng.distMode {
		if err := eng.startDist(); err != nil {
			return Metrics{}, err
		}
		defer eng.distRouter.Close()
	}
	eng.runStepLoop(factory)
	if eng.distMode {
		if fl, ok := eng.distRouter.(DistFlusher); ok {
			if err := fl.Flush(); err != nil {
				eng.fail(err)
			}
		}
	}
	return eng.results()
}

// runStepLoop is the EngineStep main loop: construct the machines, then
// alternate round segments with sharded delivery until every node is done.
// Unlike coordinate() there is nothing to wake or park — the loop iterates.
func (e *engine) runStepLoop(factory StepFactory) {
	e.stepInit(factory)
	for !e.stepAdvance() {
	}
}

// stepInit constructs the machines and arms the step loop's progress
// counter; it runs before round 0, exactly once per run.
func (e *engine) stepInit(factory StepFactory) {
	e.progs = make([]StepProgram, e.n)
	for i, env := range e.envs {
		e.progs[i] = e.buildProg(factory, env)
	}
	e.initAdapterGroups()
	e.stepActive = e.n
}

// stepAdvance executes one iteration of the step loop — one round segment
// for every unfinished node plus delivery — and reports whether the run is
// over (every node done, or aborted). It is the unit Stepper.Advance
// exposes; runStepLoop is nothing but stepInit plus stepAdvance-until-true.
func (e *engine) stepAdvance() bool {
	e.stepGeneration()
	e.stepActive -= e.deliverRound()
	if e.generation >= e.cfg.MaxRounds {
		e.fail(fmt.Errorf("%w (%d)", ErrTooManyRounds, e.cfg.MaxRounds))
	}
	e.roundBoundary()
	if e.aborted.Load() {
		e.releaseAdapters()
		return true
	}
	return e.stepActive == 0
}

// Stepper exposes the EngineStep main loop one delivered round at a time,
// for harnesses that interleave measurement with the engine's progress —
// the allocation-regression tests advance through a run's warmup and then
// assert that further rounds allocate nothing. Only EngineStep is
// supported: the goroutine engines have no externally steppable loop.
//
// A Stepper must be finished exactly once (Finish stops the worker pool);
// Advance after the run completed is a no-op.
type Stepper struct {
	eng  *engine
	done bool
}

// NewStepper builds the engine and the per-node machines (round 0 has not
// run yet) and returns the paused run.
func NewStepper(g *graph.Graph, cfg Config, factory StepFactory) (*Stepper, error) {
	if cfg.Engine != EngineStep {
		return nil, fmt.Errorf("sim: Stepper requires EngineStep, got %v", cfg.Engine)
	}
	eng, err := newEngine(g, cfg)
	if eng == nil {
		return nil, err
	}
	eng.stepMode = true
	eng.initSharded()
	eng.stepInit(factory)
	return &Stepper{eng: eng}, nil
}

// Advance runs up to `rounds` engine iterations and reports whether the
// run completed (all nodes done or the run aborted).
func (s *Stepper) Advance(rounds int) bool {
	for i := 0; i < rounds && !s.done; i++ {
		s.done = s.eng.stepAdvance()
	}
	return s.done
}

// Finish drives the run to completion, stops the worker pool, and returns
// the collected metrics with the engines' shared error contract.
func (s *Stepper) Finish() (Metrics, error) {
	for !s.done {
		s.done = s.eng.stepAdvance()
	}
	s.eng.stopSharded()
	return s.eng.results()
}

// buildProg constructs one node's machine with the engines' shared panic
// contract: a panicking factory fails the run and finishes the node.
func (e *engine) buildProg(factory StepFactory, env *Env) (sp StepProgram) {
	defer func() {
		if r := recover(); r != nil {
			if r != errAbort { //nolint:errorlint // sentinel identity check
				e.fail(fmt.Errorf("sim: node %d panicked: %v", env.id, r))
			}
			env.finished = true
		}
	}()
	return factory(env)
}

// stepGeneration advances every unfinished node by one round segment,
// shard-parallel when the worker pool exists. With StepBatch resolved and
// no adapter groups in play, the workers instead drain the node range in
// work-stealing batches, which rebalances rounds whose active nodes
// cluster inside few shards. (Adapter groups pin their members to the
// shard's wake protocol, so batching is skipped when any exist.)
func (e *engine) stepGeneration() {
	if e.nShards == 1 {
		e.stepShard(0)
		return
	}
	if e.stepBatch > 0 && e.adGroups == nil {
		e.stepCursor.Store(0)
		for k := 0; k < e.nShards; k++ {
			e.workCh <- shardTask{step: true, batch: true}
		}
		for k := 0; k < e.nShards; k++ {
			<-e.resCh
		}
		return
	}
	for k := 0; k < e.nShards; k++ {
		e.workCh <- shardTask{k: k, step: true}
	}
	for k := 0; k < e.nShards; k++ {
		<-e.resCh
	}
}

// stepBatches is one worker's share of a batched step generation: claim
// stepBatch-wide node ranges off the shared cursor until the range is
// drained. Node state and staging buckets are per-sender, so any worker
// may step any node; delivery stays shard-partitioned.
func (e *engine) stepBatches() {
	gen := e.generation
	for {
		hi := int(e.stepCursor.Add(int64(e.stepBatch)))
		lo := hi - e.stepBatch
		if lo >= e.n {
			return
		}
		if hi > e.n {
			hi = e.n
		}
		e.stepRange(lo, hi, gen)
	}
}

// stepShard runs one round segment for the nodes of shard k: install each
// node's inbox for the generation being executed and call its machine.
// Workers touch disjoint node state, and sends stage into per-sender
// buckets, so concurrent shards need no locks (the same disjointness
// argument as runShard). The shard's adapted programs, if any, are woken
// first and run concurrently while the native machines are stepped inline;
// the worker then waits for the group before returning.
func (e *engine) stepShard(k int) {
	lo := k * e.shardSize
	hi := lo + e.shardSize
	if hi > e.n {
		hi = e.n
	}
	gen := e.generation // deliveries completed so far
	p := gen & 1
	var g *adapterGroup
	if e.adGroups != nil {
		g = e.adGroups[k]
	}
	if g != nil {
		active := int32(0)
		for _, env := range g.members {
			if env.finished {
				continue
			}
			env.round = gen
			if gen > 0 {
				env.curInbox = Inbox{Local: env.inLocalBuf[p], Global: env.inGlobalBuf[p]}
			} else {
				env.curInbox = Inbox{}
			}
			active++
		}
		if active == 0 {
			g = nil
		} else {
			g.pending.Store(active)
			if !g.started {
				g.started = true
				for _, env := range g.members {
					go env.adapter.run(env)
				}
			} else {
				g.wake()
			}
		}
	}
	e.stepRange(lo, hi, gen)
	if g != nil {
		<-g.done
	}
}

// stepRange advances the native machines of nodes [lo, hi) by one round
// segment; it is the inner loop shared by whole-shard and batched
// stepping.
func (e *engine) stepRange(lo, hi, gen int) {
	p := gen & 1
	for v := lo; v < hi; v++ {
		env := e.envs[v]
		// Group members are skipped before their finished flag is read:
		// their run goroutines may still be writing it this round.
		if env.adapter != nil && env.adapter.group != nil {
			continue
		}
		if env.finished {
			continue
		}
		env.round = gen
		if gen > 0 {
			env.curInbox = Inbox{Local: env.inLocalBuf[p], Global: env.inGlobalBuf[p]}
		} else {
			env.curInbox = Inbox{}
		}
		e.stepNode(env, v)
	}
}

// stepNode runs one machine call under the engines' shared panic contract.
func (e *engine) stepNode(env *Env, v int) {
	defer func() {
		if r := recover(); r != nil {
			if r != errAbort { //nolint:errorlint // sentinel identity check
				e.fail(fmt.Errorf("sim: node %d panicked: %v", v, r))
			}
			env.finished = true
		}
	}()
	if e.progs[v].Step(env) {
		env.finished = true
	}
}

// releaseAdapters unblocks adapted-program goroutines parked in Env.Step
// after an abort, so they observe the abort flag and unwind. Native
// machines hold no goroutines and need no cleanup.
func (e *engine) releaseAdapters() {
	// Group-driven adapters: wake each group once; the parked members see
	// the abort flag, unwind, and arrive through run's deferred handler.
	for _, g := range e.adGroups {
		if g == nil || !g.started {
			continue
		}
		active := int32(0)
		for _, env := range g.members {
			if !env.finished {
				active++
			}
		}
		if active == 0 {
			continue
		}
		g.pending.Store(active)
		g.wake()
		<-g.done
	}
	// Per-node adapters (nested inside composite machines): reachable only
	// through env.adapter, which tracks the node's most recent adapter —
	// earlier ones in a sequence have necessarily returned. A returned
	// adapter's goroutine is gone; resuming it would block forever.
	for _, env := range e.envs {
		a := env.adapter
		if a == nil || a.group != nil || !a.started || a.returned || env.finished {
			continue
		}
		a.resume <- struct{}{}
		<-a.yield
		env.finished = true
	}
}
