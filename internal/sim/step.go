package sim

import (
	"fmt"

	"repro/internal/graph"
)

// This file implements EngineStep ("sim v3"), the goroutine-free round
// engine, and the StepProgram execution model it runs.
//
// The goroutine engines (legacy, sharded) execute each node's Program as a
// blocking goroutine and synchronize them at a barrier inside Env.Step.
// That is maximally convenient to program against, but it puts two
// scheduler wake/park cycles on every (node, round) pair: at n = 16384 the
// barrier alone costs ~0.4µs/node/round and dominates APSP wall clock.
//
// EngineStep removes the floor by inverting control: each node is an
// explicit resumable state machine (StepProgram) and the engine's round
// loop IS the barrier —
//
//	for every round:
//	    for every unfinished node (in shard-parallel batches):
//	        install the node's inbox; run its StepProgram.Step
//	    deliver staged messages (the sharded engine's delivery path)
//
// No node blocks, so no node ever parks or wakes: a round costs one
// function call per node plus delivery.
//
// # The StepProgram contract
//
// One Step call executes exactly the code a Program would run between two
// consecutive Env.Step calls (one "round segment"):
//
//   - Read the round's inbox with Env.Incoming (empty on the first call).
//     The slices are owned by the node until its next round segment and
//     must not be retained, exactly like Env.Step's return value.
//   - Stage sends with SendLocal / BroadcastLocal / SendGlobal as usual.
//   - Return false to take the round barrier, true when the node is done.
//     Returning true consumes no further rounds: it corresponds to a
//     Program returning, and like a returning Program the node's staged
//     messages are still delivered.
//
// A StepProgram must never call Env.Step (the engine panics if it does) and
// never blocks; composition replaces blocking. Chain, Sequence, Finish and
// Loop cover the compositions the paper's algorithms need: collective
// phases run one after another by handing the round mid-segment from a
// finishing machine to its successor, which reproduces the goroutine
// programs' behavior exactly — a finishing phase only reads its last inbox,
// a starting phase only sends, so both share one round segment the same way
// sequential calls share a round between two Env.Step calls.
//
// # Compatibility across engines
//
// Both program models run on all three engines:
//
//   - A Program runs on EngineStep through a goroutine-backed adapter
//     (AdaptProgram): the program keeps its blocking style and yields to
//     the engine loop at every Env.Step. This keeps every algorithm working
//     on every engine, at roughly the goroutine engines' per-round cost.
//   - A StepProgram runs on the goroutine engines through DriveProgram,
//     which replays the engine loop's install-inbox/step cycle inside the
//     node's goroutine.
//
// Either way, for a fixed seed all three engines produce byte-identical
// results and Metrics; the differential tests (engines_test.go here and at
// the repository root) enforce this across the execution-model matrix.

// StepProgram is a node's algorithm as an explicit resumable state machine:
// Step executes one round segment and reports whether the node is done. See
// the contract above.
type StepProgram interface {
	Step(env *Env) (done bool)
}

// StepFactory builds one node's StepProgram. It runs before the first
// round; construction may read env (ID, Rand, topology) and corresponds to
// a Program's code before its first Env.Step... which is exactly where the
// machine's first Step call begins, so factories should only allocate and
// sample, not send. (Sends staged during construction would still be
// delivered in round 1, but keeping them in Step keeps the two execution
// models aligned line for line.)
type StepFactory func(env *Env) StepProgram

// StepFunc adapts a plain function to the StepProgram interface.
type StepFunc func(env *Env) bool

// Step implements StepProgram.
func (f StepFunc) Step(env *Env) bool { return f(env) }

// Chain runs machines produced on demand, one after another: when the
// current machine finishes, next is called immediately — within the same
// round segment — to produce its successor, and a nil return finishes the
// chain. next sees every predecessor's result (via the closure) and may
// decide data-dependently, which is what the protocols' aggregate-and-
// continue loops need (e.g. routing's reply drain).
func Chain(next func(env *Env) StepProgram) StepProgram {
	return &chain{next: next}
}

type chain struct {
	next func(env *Env) StepProgram
	cur  StepProgram
	done bool
}

// Step implements StepProgram.
func (c *chain) Step(env *Env) bool {
	if c.done {
		return true
	}
	for {
		if c.cur == nil {
			if c.cur = c.next(env); c.cur == nil {
				c.done = true
				return true
			}
		}
		if !c.cur.Step(env) {
			return false
		}
		c.cur = nil
	}
}

// Sequence chains a fixed list of phases. Each phase is a thunk evaluated
// lazily when its turn comes — mid-segment, exactly where the goroutine
// program would call the corresponding collective function — so per-node
// randomness and sends are consumed in identical order on every engine. A
// thunk may return nil to skip its phase.
func Sequence(phases ...func(env *Env) StepProgram) StepProgram {
	i := 0
	return Chain(func(env *Env) StepProgram {
		for i < len(phases) {
			p := phases[i](env)
			i++
			if p != nil {
				return p
			}
		}
		return nil
	})
}

// Finish wraps a zero-round computation as a Sequence/Chain phase: f runs
// mid-segment when the phase is reached (typically combining the results of
// the preceding machines) and consumes no rounds.
func Finish(f func(env *Env)) func(env *Env) StepProgram {
	return func(env *Env) StepProgram {
		f(env)
		return nil
	}
}

// Loop is the step form of the canonical collective round pattern
//
//	for i := 0; i < rounds; i++ {
//		send(i)
//		in := env.Step()
//		recv(in, i)
//	}
//
// which nearly every phase of the paper's protocols instantiates (floods,
// paced global sends, tree aggregations). One Step call runs Recv for the
// round that just ended (skipped before the first round), then Send for the
// next; the machine finishes — mid-segment, after its last Recv — once Send
// has run Rounds times. Either callback may be nil. A Loop is single-use.
type Loop struct {
	Rounds int
	Send   func(env *Env, i int)
	Recv   func(env *Env, in Inbox, i int)
	i      int
}

// Step implements StepProgram.
func (l *Loop) Step(env *Env) bool {
	if l.i > 0 && l.Recv != nil {
		l.Recv(env, env.Incoming(), l.i-1)
	}
	if l.i >= l.Rounds {
		return true
	}
	if l.Send != nil {
		l.Send(env, l.i)
	}
	l.i++
	return false
}

// DriveProgram runs a StepProgram to completion on a goroutine engine by
// replaying the step engine's install-inbox/step cycle inside the node's
// Program goroutine. It is how step-native algorithms stay runnable (and
// differentially testable) on EngineLegacy and EngineSharded.
func DriveProgram(env *Env, sp StepProgram) {
	env.curInbox = Inbox{}
	for !sp.Step(env) {
		env.curInbox = env.Step()
	}
}

// AsProgram converts a StepFactory into a Program for the goroutine
// engines.
func AsProgram(factory StepFactory) Program {
	return func(env *Env) {
		DriveProgram(env, factory(env))
	}
}

// AdaptProgram converts a legacy Program into a StepFactory backed by one
// goroutine per node: the program keeps its blocking style, parking in
// Env.Step until the engine loop's next round. This is the compatibility
// path that keeps un-ported algorithms running on EngineStep — correct and
// byte-identical, but it reintroduces the wake/park cost the step-native
// ports avoid.
func AdaptProgram(program Program) StepFactory {
	return func(env *Env) StepProgram {
		return &programAdapter{
			program: program,
			resume:  make(chan struct{}, 1),
			yield:   make(chan bool, 1),
		}
	}
}

// programAdapter runs a blocking Program under the step engine. The
// protocol strictly alternates (engine resumes, program yields), and both
// channels are buffered so neither side can block the other during
// shutdown.
type programAdapter struct {
	program Program
	started bool
	resume  chan struct{}
	yield   chan bool // false: round segment done; true: program returned
}

// Step implements StepProgram: resume the program goroutine (starting it on
// the first call) and wait until it parks in Env.Step or returns.
func (a *programAdapter) Step(env *Env) bool {
	if !a.started {
		a.started = true
		env.adapter = a
		go a.run(env)
	} else {
		a.resume <- struct{}{}
	}
	return <-a.yield
}

// run executes the program on its own goroutine, mirroring the goroutine
// engines' panic handling.
func (a *programAdapter) run(env *Env) {
	defer func() {
		if r := recover(); r != nil {
			if r != errAbort { //nolint:errorlint // sentinel identity check
				env.eng.fail(fmt.Errorf("sim: node %d panicked: %v", env.id, r))
			}
		}
		a.yield <- true
	}()
	a.program(env)
}

// await is the Env.Step implementation for adapted programs: yield the
// round segment to the engine loop and park until the next round's inbox is
// installed.
func (a *programAdapter) await(env *Env) Inbox {
	if env.eng.aborted.Load() {
		panic(errAbort)
	}
	a.yield <- false
	<-a.resume
	if env.eng.aborted.Load() {
		panic(errAbort)
	}
	return env.curInbox
}

// RunStep executes one StepProgram per node of g under cfg and returns the
// collected metrics; it is to StepPrograms what Run is to Programs, with
// the same error contract. Under EngineStep the machines run natively on
// the goroutine-free loop; under the goroutine engines they run through
// DriveProgram, so callers can hold one code path and still select any
// engine.
func RunStep(g *graph.Graph, cfg Config, factory StepFactory) (Metrics, error) {
	if cfg.Engine != EngineStep {
		return Run(g, cfg, AsProgram(factory))
	}
	eng, err := newEngine(g, cfg)
	if eng == nil {
		return Metrics{}, err
	}
	eng.stepMode = true
	eng.initSharded()
	defer eng.stopSharded()
	eng.runStepLoop(factory)
	return eng.results()
}

// runStepLoop is the EngineStep main loop: construct the machines, then
// alternate round segments with sharded delivery until every node is done.
// Unlike coordinate() there is nothing to wake or park — the loop iterates.
func (e *engine) runStepLoop(factory StepFactory) {
	e.progs = make([]StepProgram, e.n)
	for i, env := range e.envs {
		e.progs[i] = e.buildProg(factory, env)
	}
	active := e.n
	for {
		e.stepGeneration()
		active -= e.deliverSharded()
		if e.generation >= e.cfg.MaxRounds {
			e.fail(fmt.Errorf("%w (%d)", ErrTooManyRounds, e.cfg.MaxRounds))
		}
		if e.aborted.Load() {
			e.releaseAdapters()
			return
		}
		if active == 0 {
			return
		}
	}
}

// buildProg constructs one node's machine with the engines' shared panic
// contract: a panicking factory fails the run and finishes the node.
func (e *engine) buildProg(factory StepFactory, env *Env) (sp StepProgram) {
	defer func() {
		if r := recover(); r != nil {
			if r != errAbort { //nolint:errorlint // sentinel identity check
				e.fail(fmt.Errorf("sim: node %d panicked: %v", env.id, r))
			}
			env.finished = true
		}
	}()
	return factory(env)
}

// stepGeneration advances every unfinished node by one round segment,
// shard-parallel when the worker pool exists.
func (e *engine) stepGeneration() {
	if e.nShards == 1 {
		e.stepShard(0)
		return
	}
	for k := 0; k < e.nShards; k++ {
		e.workCh <- shardTask{k: k, step: true}
	}
	for k := 0; k < e.nShards; k++ {
		<-e.resCh
	}
}

// stepShard runs one round segment for the nodes of shard k: install each
// node's inbox for the generation being executed and call its machine.
// Workers touch disjoint node state, and sends stage into per-sender
// buckets, so concurrent shards need no locks (the same disjointness
// argument as runShard).
func (e *engine) stepShard(k int) {
	lo := k * e.shardSize
	hi := lo + e.shardSize
	if hi > e.n {
		hi = e.n
	}
	gen := e.generation // deliveries completed so far
	p := gen & 1
	for v := lo; v < hi; v++ {
		env := e.envs[v]
		if env.finished {
			continue
		}
		env.round = gen
		if gen > 0 {
			env.curInbox = Inbox{Local: env.inLocalBuf[p], Global: env.inGlobalBuf[p]}
		} else {
			env.curInbox = Inbox{}
		}
		e.stepNode(env, v)
	}
}

// stepNode runs one machine call under the engines' shared panic contract.
func (e *engine) stepNode(env *Env, v int) {
	defer func() {
		if r := recover(); r != nil {
			if r != errAbort { //nolint:errorlint // sentinel identity check
				e.fail(fmt.Errorf("sim: node %d panicked: %v", v, r))
			}
			env.finished = true
		}
	}()
	if e.progs[v].Step(env) {
		env.finished = true
	}
}

// releaseAdapters unblocks adapted-program goroutines parked in Env.Step
// after an abort, so they observe the abort flag and unwind. Native
// machines hold no goroutines and need no cleanup.
func (e *engine) releaseAdapters() {
	for v, sp := range e.progs {
		a, ok := sp.(*programAdapter)
		if !ok || !a.started || e.envs[v].finished {
			continue
		}
		a.resume <- struct{}{}
		<-a.yield
		e.envs[v].finished = true
	}
}
