package sim

import (
	"fmt"
	"runtime"
)

// The sharded engine ("sim v2") keeps the node programs exactly as they are
// — blocking goroutines multiplexed by the Go scheduler — and reworks
// everything the engine itself does per round:
//
//   - The node set is split into contiguous shards. Every sender stages its
//     outgoing messages into per-destination-shard buckets at send time, so
//     round delivery never sorts or locks: the worker owning shard k drains
//     bucket k of every sender in ascending sender ID, which reproduces the
//     engine contract (inboxes ordered by sender ID, then send order)
//     independently of the shard count.
//   - Delivery runs on a persistent worker pool (one worker per shard, at
//     most GOMAXPROCS shards). Workers touch disjoint state: shard k's
//     worker writes only the inboxes and receive counters of shard k's
//     nodes and the k-buckets of the senders, so the merge of the per-shard
//     metric deltas is the only cross-shard step, and it is a sum/max merge
//     that is independent of completion order.
//   - Inboxes are preallocated and double-buffered: the buffer delivered at
//     round r is reused at round r+2, so steady-state rounds allocate
//     nothing. (Step's contract — the returned slices are owned by the
//     caller until the next Step call — grants one round of ownership; the
//     double buffer leaves an extra round of slack.)
//   - Senders that staged nothing for a shard are skipped via a dirty flag,
//     so sparse rounds (the common case in delta-style flooding protocols)
//     cost O(n) flag reads instead of O(n) slice scans per shard.
//
// The legacy engine (legacy deliver in sim.go) is kept verbatim as a
// differential-testing oracle: for any program and seed, both engines must
// produce byte-identical results and Metrics. engines_test.go enforces this.

// shardTask is one unit of worker-pool work: deliver shard k (the default),
// advance the state machines of shard k's nodes by one round (step), or
// join the work-stealing batch pool of a step generation (step+batch); see
// step.go.
type shardTask struct {
	k     int
	step  bool
	batch bool
}

// shardResult is one worker's metric delta for one round. Merging the
// results is commutative (sums and maxes), so the aggregate Metrics do not
// depend on worker scheduling.
type shardResult struct {
	finished   int
	localMsgs  int64
	localBits  int64
	globalMsgs int64
	globalBits int64
	cutMsgs    int64
	cutBits    int64
	maxSend    int
	maxRecv    int
	violDst    int // lowest node ID violating StrictRecvFactor, -1 if none
	violCount  int
}

// minShardNodes is the autotune floor on nodes per shard: below it the
// per-round fan-out/merge overhead of another worker outweighs the stepping
// and delivery work it takes over (measured on the grid APSP workload).
const minShardNodes = 64

// initSharded sizes the shards and preallocates the per-env staging state.
// Shards <= 0 autotunes: one shard per available CPU, capped so every
// shard keeps at least minShardNodes nodes. The shard count never changes
// results (the differential tests pin shard-count invariance), only the
// parallel grain.
func (e *engine) initSharded() {
	e.sharded = true
	s := e.cfg.Shards
	if e.distMode {
		// One worker process per shard: under EngineDist the shard count IS
		// the worker count, so DistWorkers replaces both Shards and the
		// autotune (results stay independent of the value, as always).
		s = e.cfg.DistWorkers
		if s <= 0 {
			s = DefaultDistWorkers
		}
	}
	if s <= 0 {
		s = runtime.GOMAXPROCS(0)
		if max := e.n / minShardNodes; s > max {
			s = max
		}
		if s < 1 {
			s = 1
		}
	}
	if s > e.n {
		s = e.n
	}
	e.shardSize = (e.n + s - 1) / s
	e.nShards = (e.n + e.shardSize - 1) / e.shardSize
	e.recvCount = make([]int, e.n)
	e.dirty = make([][]bool, e.nShards)
	for k := range e.dirty {
		e.dirty[k] = make([]bool, e.n)
	}
	e.stepBatch = e.cfg.StepBatch
	if e.stepBatch < 0 {
		// Autotune: batches of a quarter shard amortize the cursor
		// contention while leaving enough batches to rebalance skew.
		e.stepBatch = e.shardSize / 4
		if e.stepBatch < 32 {
			e.stepBatch = 32
		}
	}
	for _, env := range e.envs {
		env.outLocalSh = make([][]localOut, e.nShards)
		env.outGlobalSh = make([][]GlobalMsg, e.nShards)
	}
	if e.nShards > 1 {
		e.workCh = make(chan shardTask)
		e.resCh = make(chan shardResult)
		for w := 0; w < e.nShards; w++ {
			go func() {
				for t := range e.workCh {
					switch {
					case t.step && t.batch:
						e.stepBatches()
						e.resCh <- shardResult{}
					case t.step:
						e.stepShard(t.k)
						e.resCh <- shardResult{}
					default:
						e.resCh <- e.runShard(t.k)
					}
				}
			}()
		}
	}
}

// stopSharded shuts the worker pool down.
func (e *engine) stopSharded() {
	if e.workCh != nil {
		close(e.workCh)
	}
}

func (e *engine) shardOf(v int) int { return v / e.shardSize }

// deliverSharded is the v2 round boundary: fan the shards out to the
// workers, merge their metric deltas, and return how many nodes finished.
func (e *engine) deliverSharded() int {
	e.generation++
	var total shardResult
	total.violDst = -1
	if e.nShards == 1 {
		total = e.runShard(0)
	} else {
		for k := 0; k < e.nShards; k++ {
			e.workCh <- shardTask{k: k}
		}
		for k := 0; k < e.nShards; k++ {
			r := <-e.resCh
			total.finished += r.finished
			total.localMsgs += r.localMsgs
			total.localBits += r.localBits
			total.globalMsgs += r.globalMsgs
			total.globalBits += r.globalBits
			total.cutMsgs += r.cutMsgs
			total.cutBits += r.cutBits
			if r.maxSend > total.maxSend {
				total.maxSend = r.maxSend
			}
			if r.maxRecv > total.maxRecv {
				total.maxRecv = r.maxRecv
			}
			if r.violDst >= 0 && (total.violDst < 0 || r.violDst < total.violDst) {
				total.violDst = r.violDst
				total.violCount = r.violCount
			}
		}
	}
	e.metrics.LocalMsgs += total.localMsgs
	e.metrics.LocalBits += total.localBits
	e.metrics.GlobalMsgs += total.globalMsgs
	e.metrics.GlobalBits += total.globalBits
	e.metrics.CutGlobalMsgs += total.cutMsgs
	e.metrics.CutGlobalBits += total.cutBits
	if total.maxSend > e.metrics.MaxGlobalSend {
		e.metrics.MaxGlobalSend = total.maxSend
	}
	if total.maxRecv > e.metrics.MaxGlobalRecv {
		e.metrics.MaxGlobalRecv = total.maxRecv
	}
	if total.violDst >= 0 {
		f := e.cfg.StrictRecvFactor
		e.fail(fmt.Errorf("sim: node %d received %d global messages in generation %d, cap %d",
			total.violDst, total.violCount, e.generation, f*e.logN))
	}
	return total.finished
}

// runShard performs one round of delivery for shard k: reset the shard's
// inbox buffers and account for its senders, drain every dirty sender's
// k-bucket in ascending sender ID (preserving per-destination send order),
// and tally the shard's receive loads.
func (e *engine) runShard(k int) shardResult {
	r := shardResult{violDst: -1}
	lo := k * e.shardSize
	hi := lo + e.shardSize
	if hi > e.n {
		hi = e.n
	}
	gen := e.generation & 1

	for v := lo; v < hi; v++ {
		env := e.envs[v]
		if len(env.inLocalBuf[gen]) > 0 {
			env.inLocalBuf[gen] = env.inLocalBuf[gen][:0]
		}
		if len(env.inGlobalBuf[gen]) > 0 {
			env.inGlobalBuf[gen] = env.inGlobalBuf[gen][:0]
		}
		if env.finished && !env.countedFinished {
			env.countedFinished = true
			r.finished++
		}
		if env.globalSentThisRound > 0 {
			if env.globalSentThisRound > r.maxSend {
				r.maxSend = env.globalSentThisRound
			}
			env.globalSentThisRound = 0
		}
	}

	cut := e.cfg.Cut
	dirty := e.dirty[k]
	for s := 0; s < e.n; s++ {
		if !dirty[s] {
			continue
		}
		dirty[s] = false
		env := e.envs[s]
		for _, out := range env.outLocalSh[k] {
			dst := e.envs[out.to]
			dst.inLocalBuf[gen] = append(dst.inLocalBuf[gen], LocalMsg{From: s, Payload: out.payload})
			r.localMsgs++
			r.localBits += payloadWords(out.payload) * int64(e.logN)
		}
		env.outLocalSh[k] = env.outLocalSh[k][:0]
		for _, gm := range env.outGlobalSh[k] {
			dst := e.envs[gm.Dst]
			dst.inGlobalBuf[gen] = append(dst.inGlobalBuf[gen], gm)
			e.recvCount[gm.Dst]++
			r.globalMsgs++
			r.globalBits += e.msgBits
			if cut != nil && cut[gm.Src] != cut[gm.Dst] {
				r.cutMsgs++
				r.cutBits += e.msgBits
			}
		}
		env.outGlobalSh[k] = env.outGlobalSh[k][:0]
	}

	// Receive loads: every nonzero count was written this round (counts are
	// reset as they are read), so a round that delivered no global messages
	// to this shard can skip the scan.
	if r.globalMsgs > 0 {
		f := e.cfg.StrictRecvFactor
		for d := lo; d < hi; d++ {
			c := e.recvCount[d]
			if c == 0 {
				continue
			}
			e.recvCount[d] = 0
			if c > r.maxRecv {
				r.maxRecv = c
			}
			if f > 0 && c > f*e.logN && r.violDst < 0 {
				r.violDst = d
				r.violCount = c
			}
		}
	}
	return r
}
