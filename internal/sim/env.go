package sim

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"repro/internal/bitrand"
	"repro/internal/graph"
)

// ID returns this node's identifier in [0, N).
func (env *Env) ID() int { return env.id }

// N returns the total number of nodes.
func (env *Env) N() int { return env.eng.n }

// LogN returns ceil(log2 n), the unit in which the model's caps are stated.
func (env *Env) LogN() int { return env.eng.logN }

// GlobalCap returns the number of global messages this node may send per
// round.
func (env *Env) GlobalCap() int { return env.eng.sendCap }

// Round returns the number of rounds this node has completed so far.
func (env *Env) Round() int { return env.round }

// Graph returns the local communication graph G. Programs may read
// arbitrary topology local to themselves; by LOCAL-model convention a node
// knows its incident edges (and only those) at start, which programs should
// respect by only inspecting their own neighborhood.
func (env *Env) Graph() *graph.Graph { return env.eng.g }

// Neighbors returns this node's adjacency list in G.
func (env *Env) Neighbors() []graph.Neighbor { return env.eng.g.Neighbors(env.id) }

// Degree returns this node's degree in G.
func (env *Env) Degree() int { return env.eng.g.Degree(env.id) }

// Rand returns this node's private deterministic random stream.
func (env *Env) Rand() *rand.Rand { return env.rng }

// PublicRand returns a random stream shared by all nodes for the given
// label. It models public randomness: per Lemma B.1 an O(log^2 n)-bit seed
// can be broadcast in O~(1) rounds, so protocols account its cost as
// polylog. The ncc package also implements the broadcast explicitly.
func (env *Env) PublicRand(label string) *rand.Rand {
	return bitrand.NewSource(env.eng.cfg.Seed).Named("public:" + label)
}

// SendLocal stages a local-mode message to a neighbor in G. Local messages
// may carry arbitrarily large payloads (LOCAL model). Sending to a
// non-neighbor is a model violation and aborts the run.
func (env *Env) SendLocal(to int, payload interface{}) {
	if !env.eng.g.HasEdge(env.id, to) {
		env.violate(fmt.Errorf("sim: node %d sent local message to non-neighbor %d", env.id, to))
	}
	env.stageLocal(to, payload)
}

// stageLocal appends one local message to the engine-appropriate staging
// area: the destination shard's bucket (sharded) or the flat outbox
// (legacy).
func (env *Env) stageLocal(to int, payload interface{}) {
	if env.eng.sharded {
		k := env.eng.shardOf(to)
		env.eng.dirty[k][env.id] = true
		env.outLocalSh[k] = append(env.outLocalSh[k], localOut{to: to, payload: payload})
		return
	}
	env.outLocal = append(env.outLocal, localOut{to: to, payload: payload})
}

// BroadcastLocal stages the payload to every neighbor in G.
func (env *Env) BroadcastLocal(payload interface{}) {
	for _, nb := range env.Neighbors() {
		env.stageLocal(nb.To, payload)
	}
}

// SendGlobal stages a global-mode message. Src is stamped automatically.
// Exceeding the per-round cap or addressing an invalid node is a model
// violation and aborts the run.
func (env *Env) SendGlobal(dst int, kind Kind, f0, f1, f2, f3 int64) {
	if dst < 0 || dst >= env.eng.n {
		env.violate(fmt.Errorf("sim: node %d sent global message to invalid node %d", env.id, dst))
	}
	if env.globalSentThisRound >= env.eng.sendCap {
		env.violate(fmt.Errorf("sim: node %d exceeded global send cap %d in round %d",
			env.id, env.eng.sendCap, env.round))
	}
	env.globalSentThisRound++
	m := GlobalMsg{Src: env.id, Dst: dst, Kind: kind, F0: f0, F1: f1, F2: f2, F3: f3}
	if env.eng.sharded {
		k := env.eng.shardOf(dst)
		env.eng.dirty[k][env.id] = true
		env.outGlobalSh[k] = append(env.outGlobalSh[k], m)
		return
	}
	env.outGlobal = append(env.outGlobal, m)
}

// GlobalBudget returns how many more global messages this node may send in
// the current round.
func (env *Env) GlobalBudget() int { return env.eng.sendCap - env.globalSentThisRound }

// Step ends the node's round: all staged messages are handed to the engine,
// and the call blocks until every node has ended the round. It returns the
// inbox of messages delivered for the next round. The returned slices are
// owned by the caller until the next Step call; the sharded and step
// engines reuse them afterwards, so programs must not retain them across
// Steps. Under the step engine the call is legal only from a Program
// running through the goroutine-backed adapter — StepPrograms read
// Incoming() instead and never block.
func (env *Env) Step() Inbox {
	if a := env.adapter; a != nil {
		return a.await(env)
	}
	if env.eng.stepMode {
		panic(fmt.Errorf("sim: node %d called Env.Step from a StepProgram; use Incoming", env.id))
	}
	if env.eng.aborted.Load() {
		panic(errAbort)
	}
	rel := env.eng.currentRelease()
	env.arrive()
	<-rel
	if env.eng.aborted.Load() {
		panic(errAbort)
	}
	env.round++
	if env.eng.sharded {
		p := env.round & 1
		return Inbox{Local: env.inLocalBuf[p], Global: env.inGlobalBuf[p]}
	}
	in := Inbox{Local: env.inLocal, Global: env.inGlobal}
	env.inLocal = nil
	env.inGlobal = nil
	return in
}

// Incoming returns the inbox delivered for the round currently being
// executed: what a Program would have gotten from its last Env.Step call.
// It is the read side of the StepProgram contract (see step.go); the slices
// are owned by the node until its next round, exactly like Step's return
// value, and must not be retained across rounds.
func (env *Env) Incoming() Inbox { return env.curInbox }

// StepIdle advances the node r rounds without sending anything, discarding
// anything received. Used to keep phase-aligned nodes in lockstep while a
// subset works.
func (env *Env) StepIdle(r int) {
	for i := 0; i < r; i++ {
		env.Step()
	}
}

// SharedOnce returns a run-scoped shared value: the i-th call with a given
// prefix (counted per node) resolves to the same object at every node, with
// fn evaluated exactly once across the whole run. It models the fact that
// all nodes run identical deterministic code on identical public knowledge
// and would therefore construct identical objects — and it is load-bearing
// for components that must pool state across the process's node goroutines
// (the declared-cost CLIQUE oracle). fn runs under a global lock and must
// not call Step or touch node-local state. Nodes must call SharedOnce for a
// given prefix in the same collective order.
func (env *Env) SharedOnce(prefix string, fn func() interface{}) interface{} {
	if env.sharedSeq == nil {
		env.sharedSeq = map[string]int{}
	}
	idx := env.sharedSeq[prefix]
	env.sharedSeq[prefix]++
	key := fmt.Sprintf("%s#%d", prefix, idx)
	e := env.eng
	e.sharedMu.Lock()
	defer e.sharedMu.Unlock()
	if e.shared == nil {
		e.shared = map[string]interface{}{}
	}
	if v, ok := e.shared[key]; ok {
		return v
	}
	v := fn()
	e.shared[key] = v
	return v
}

// violate reports a model violation and unwinds this node's goroutine.
func (env *Env) violate(err error) {
	env.eng.fail(err)
	panic(errAbort)
}

// arrive signals the barrier; the last arriver wakes the coordinator.
func (env *Env) arrive() {
	if atomic.AddInt32(&env.eng.remaining, -1) == 0 {
		env.eng.ready <- struct{}{}
	}
}
