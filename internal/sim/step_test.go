package sim

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
)

// stepChatter is a native StepProgram version of chatterProgram: same
// messages, same randomness, same uneven finishing times, same accumulator.
// It exists so the engine matrix is tested with a step-native workload, not
// only through the goroutine adapter.
type stepChatter struct {
	out    []int64
	rounds int
	acc    int64
	i      int
}

func newStepChatter(env *Env, out []int64) *stepChatter {
	return &stepChatter{out: out, rounds: 6 + env.ID()%5, acc: int64(env.ID())}
}

func (c *stepChatter) Step(env *Env) bool {
	if c.i > 0 {
		in := env.Incoming()
		for _, lm := range in.Local {
			c.acc = c.acc*31 + int64(lm.From)
			if v, ok := lm.Payload.(int64); ok {
				c.acc = c.acc*31 + v
			}
		}
		for _, gm := range in.Global {
			c.acc = c.acc*31 + int64(gm.Src)*8191 + gm.F1*13 + gm.F2
		}
	}
	if c.i == c.rounds {
		c.out[env.ID()] = c.acc
		return true
	}
	r := c.i
	for _, nb := range env.Neighbors() {
		if env.Rand().Intn(2) == 0 {
			env.SendLocal(nb.To, int64(env.ID()*1000+r))
		}
	}
	sends := env.Rand().Intn(env.GlobalCap() + 1)
	for s := 0; s < sends; s++ {
		env.SendGlobal(env.Rand().Intn(env.N()), Kind(r), int64(env.ID()), int64(r), int64(s), 7)
	}
	c.i++
	return false
}

// TestStepNativeAgrees runs the native step chatter on all three engines
// (DriveProgram on the goroutine engines, the bare loop on EngineStep) and
// against the goroutine chatterProgram as oracle: four executions, one
// answer.
func TestStepNativeAgrees(t *testing.T) {
	g := graph.Grid(6, 7)
	for seed := int64(1); seed <= 3; seed++ {
		oracleOut, oracleM := runChatter(t, g, Config{Seed: seed, Engine: EngineLegacy})
		for _, eng := range []Engine{EngineLegacy, EngineSharded, EngineStep} {
			out := make([]int64, g.N())
			m, err := RunStep(g, Config{Seed: seed, Engine: eng}, func(env *Env) StepProgram {
				return newStepChatter(env, out)
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(oracleOut, out) {
				t.Fatalf("seed %d engine %s: step-native results differ from goroutine oracle", seed, eng)
			}
			if oracleM != m {
				t.Fatalf("seed %d engine %s: metrics differ: %+v vs %+v", seed, eng, oracleM, m)
			}
		}
	}
}

// TestStepShardCountInvariance: like TestShardCountInvariance, for the step
// engine's shard-parallel batches.
func TestStepShardCountInvariance(t *testing.T) {
	g := graph.Grid(5, 8)
	base := make([]int64, g.N())
	baseM, err := RunStep(g, Config{Seed: 11, Engine: EngineStep, Shards: 1}, func(env *Env) StepProgram {
		return newStepChatter(env, base)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3, 7, 16, 40, 1000} {
		out := make([]int64, g.N())
		m, err := RunStep(g, Config{Seed: 11, Engine: EngineStep, Shards: shards}, func(env *Env) StepProgram {
			return newStepChatter(env, out)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, out) {
			t.Fatalf("shards=%d: results differ from shards=1", shards)
		}
		if m != baseM {
			t.Fatalf("shards=%d: metrics differ: %+v vs %+v", shards, m, baseM)
		}
	}
}

// TestStepBatchInvariance pins that the step engine's work-stealing batch
// width never changes results or Metrics: any worker may step any node, so
// batched generations must match the whole-shard baseline bit for bit,
// including the autotuned width (-1).
func TestStepBatchInvariance(t *testing.T) {
	g := graph.Grid(5, 8)
	base := make([]int64, g.N())
	baseM, err := RunStep(g, Config{Seed: 11, Engine: EngineStep, Shards: 1}, func(env *Env) StepProgram {
		return newStepChatter(env, base)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4, 7} {
		for _, batch := range []int{-1, 1, 3, 64} {
			out := make([]int64, g.N())
			m, err := RunStep(g, Config{Seed: 11, Engine: EngineStep, Shards: shards, StepBatch: batch}, func(env *Env) StepProgram {
				return newStepChatter(env, out)
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(base, out) {
				t.Fatalf("shards=%d batch=%d: results differ from serial baseline", shards, batch)
			}
			if m != baseM {
				t.Fatalf("shards=%d batch=%d: metrics differ: %+v vs %+v", shards, batch, m, baseM)
			}
		}
	}
}

// TestLoopSemantics pins the Loop contract: Recv for round i-1 before Send
// for round i, exactly Rounds round barriers, mid-segment finish.
func TestLoopSemantics(t *testing.T) {
	g := graph.Path(2)
	var trace []string
	m, err := RunStep(g, Config{Seed: 1, Engine: EngineStep}, func(env *Env) StepProgram {
		if env.ID() != 0 {
			return &Loop{Rounds: 3}
		}
		return &Loop{
			Rounds: 3,
			Send:   func(env *Env, i int) { trace = append(trace, fmt.Sprintf("send%d", i)) },
			Recv:   func(env *Env, in Inbox, i int) { trace = append(trace, fmt.Sprintf("recv%d", i)) },
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"send0", "recv0", "send1", "recv1", "send2", "recv2"}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	if m.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", m.Rounds)
	}
	// A zero-round Loop consumes no barriers at all.
	m, err = RunStep(g, Config{Seed: 1, Engine: EngineStep}, func(env *Env) StepProgram {
		return &Loop{Rounds: 0}
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds != 0 {
		t.Fatalf("zero-round loop took %d rounds", m.Rounds)
	}
}

// TestSequenceMidSegmentHandoff: two chained loops must behave exactly like
// the goroutine program that calls the two collective phases back to back —
// the second phase's first sends share a round with the first phase's last
// receive.
func TestSequenceMidSegmentHandoff(t *testing.T) {
	g := graph.Path(6)
	oracle := make([]int, g.N())
	oracleM, err := Run(g, Config{Seed: 2, Engine: EngineLegacy}, func(env *Env) {
		got := 0
		for i := 0; i < 2; i++ { // phase A: flood own ID right for 2 rounds
			if env.ID()+1 < env.N() {
				env.SendLocal(env.ID()+1, int64(env.ID()))
			}
			in := env.Step()
			got += len(in.Local)
		}
		for i := 0; i < 2; i++ { // phase B: flood left
			if env.ID() > 0 {
				env.SendLocal(env.ID()-1, int64(env.ID()))
			}
			in := env.Step()
			got += len(in.Local)
		}
		oracle[env.ID()] = got
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []Engine{EngineLegacy, EngineSharded, EngineStep} {
		out := make([]int, g.N())
		m, err := RunStep(g, Config{Seed: 2, Engine: eng}, func(env *Env) StepProgram {
			got := 0
			mk := func(right bool) *Loop {
				return &Loop{
					Rounds: 2,
					Send: func(env *Env, i int) {
						if right && env.ID()+1 < env.N() {
							env.SendLocal(env.ID()+1, int64(env.ID()))
						}
						if !right && env.ID() > 0 {
							env.SendLocal(env.ID()-1, int64(env.ID()))
						}
					},
					Recv: func(env *Env, in Inbox, i int) { got += len(in.Local) },
				}
			}
			return Sequence(
				func(env *Env) StepProgram { return mk(true) },
				func(env *Env) StepProgram { return mk(false) },
				Finish(func(env *Env) { out[env.ID()] = got }),
			)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(oracle, out) {
			t.Fatalf("engine %s: handoff results differ: %v vs %v", eng, out, oracle)
		}
		if m != oracleM {
			t.Fatalf("engine %s: metrics differ: %+v vs %+v", eng, m, oracleM)
		}
	}
}

// TestStepProgramMustNotCallEnvStep: calling the blocking Env.Step from a
// native machine is a programming error the engine reports, not a hang.
func TestStepProgramMustNotCallEnvStep(t *testing.T) {
	g := graph.Path(2)
	_, err := RunStep(g, Config{Seed: 1, Engine: EngineStep}, func(env *Env) StepProgram {
		return StepFunc(func(env *Env) bool {
			env.Step()
			return true
		})
	})
	if err == nil || !strings.Contains(err.Error(), "use Incoming") {
		t.Fatalf("err = %v, want Env.Step rejection", err)
	}
}

// TestAdapterMaxRounds: a never-finishing adapted Program must hit the
// MaxRounds guard on the step engine and unwind its goroutines cleanly.
func TestAdapterMaxRounds(t *testing.T) {
	g := graph.Path(4)
	_, err := Run(g, Config{Seed: 1, Engine: EngineStep, MaxRounds: 50}, func(env *Env) {
		for {
			env.Step()
		}
	})
	if !errors.Is(err, ErrTooManyRounds) {
		t.Fatalf("err = %v, want ErrTooManyRounds", err)
	}
}

// TestStepNativeMaxRounds: same guard for a never-finishing native machine.
func TestStepNativeMaxRounds(t *testing.T) {
	g := graph.Path(4)
	_, err := RunStep(g, Config{Seed: 1, Engine: EngineStep, MaxRounds: 50}, func(env *Env) StepProgram {
		return StepFunc(func(env *Env) bool { return false })
	})
	if !errors.Is(err, ErrTooManyRounds) {
		t.Fatalf("err = %v, want ErrTooManyRounds", err)
	}
}

// TestStepEngineViolationsReported: model violations inside a machine
// surface as run errors with the engine's usual message.
func TestStepEngineViolationsReported(t *testing.T) {
	g := graph.Path(4)
	_, err := RunStep(g, Config{Seed: 1, Engine: EngineStep}, func(env *Env) StepProgram {
		return StepFunc(func(env *Env) bool {
			if env.ID() == 2 {
				env.SendLocal(0, "not my neighbor") // 0 is two hops away
			}
			return true
		})
	})
	if err == nil || !strings.Contains(err.Error(), "non-neighbor") {
		t.Fatalf("err = %v, want non-neighbor violation", err)
	}
}

// TestStepEnginePanicCaptured: a panicking machine fails the run like a
// panicking Program does.
func TestStepEnginePanicCaptured(t *testing.T) {
	g := graph.Path(3)
	_, err := RunStep(g, Config{Seed: 1, Engine: EngineStep}, func(env *Env) StepProgram {
		return StepFunc(func(env *Env) bool {
			if env.ID() == 1 {
				panic("boom")
			}
			return false
		})
	})
	if err == nil || !strings.Contains(err.Error(), "node 1 panicked") {
		t.Fatalf("err = %v, want node panic report", err)
	}
}

// TestStepUnevenFinish: nodes finishing at different rounds must still
// produce the goroutine engines' round accounting (a finisher's last sends
// are delivered; Metrics.Rounds is the max over nodes).
func TestStepUnevenFinish(t *testing.T) {
	g := graph.Complete(9)
	oracle := make([]int64, g.N())
	oracleM, err := Run(g, Config{Seed: 3, Engine: EngineLegacy}, func(env *Env) {
		total := int64(0)
		for r := 0; r <= env.ID(); r++ {
			env.BroadcastLocal(int64(env.ID()))
			in := env.Step()
			for _, lm := range in.Local {
				total += lm.Payload.(int64)
			}
		}
		oracle[env.ID()] = total
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []Engine{EngineSharded, EngineStep} {
		out := make([]int64, g.N())
		m, err := RunStep(g, Config{Seed: 3, Engine: eng}, func(env *Env) StepProgram {
			total := int64(0)
			return &Loop{
				Rounds: env.ID() + 1,
				Send:   func(env *Env, i int) { env.BroadcastLocal(int64(env.ID())) },
				Recv: func(env *Env, in Inbox, i int) {
					for _, lm := range in.Local {
						total += lm.Payload.(int64)
					}
					if i == env.ID() {
						out[env.ID()] = total
					}
				},
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(oracle, out) {
			t.Fatalf("engine %s: results differ: %v vs %v", eng, out, oracle)
		}
		if m != oracleM {
			t.Fatalf("engine %s: metrics differ: %+v vs %+v", eng, m, oracleM)
		}
	}
}

// TestLocalBitsAccounting pins the LocalBits metric: payloads implementing
// WordSized are charged their word count, others one word, scaled by logN
// bits, identically on every engine.
func TestLocalBitsAccounting(t *testing.T) {
	g := graph.Path(4)
	logN := int64(Log2Ceil(g.N()))
	for _, eng := range []Engine{EngineLegacy, EngineSharded, EngineStep} {
		m, err := Run(g, Config{Seed: 1, Engine: eng}, func(env *Env) {
			if env.ID() == 1 {
				env.SendLocal(0, fourWordPayload{}) // 4 words
				env.SendLocal(2, "opaque")          // default: 1 word
			}
			env.Step()
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := 5 * logN; m.LocalBits != want {
			t.Fatalf("engine %s: LocalBits = %d, want %d", eng, m.LocalBits, want)
		}
		if m.LocalMsgs != 2 {
			t.Fatalf("engine %s: LocalMsgs = %d, want 2", eng, m.LocalMsgs)
		}
	}
}

type fourWordPayload struct{}

func (fourWordPayload) PayloadWords() int64 { return 4 }

func benchStepEngineRounds(b *testing.B, eng Engine, traffic bool) {
	g := graph.Grid(32, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := RunStep(g, Config{Engine: eng}, func(env *Env) StepProgram {
			return &Loop{
				Rounds: 200,
				Send: func(env *Env, r int) {
					if traffic {
						env.BroadcastLocal(r)
						env.SendGlobal((env.ID()+r)%env.N(), 0, 1, 2, 3, 4)
					}
				},
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// The step-native engine benchmarks measure the same workloads as
// benchEngineRounds with no goroutines at all: the gap to
// BenchmarkEngineBarrierSharded is the scheduler wake/park cost the step
// engine deletes.
func BenchmarkEngineBarrierStep(b *testing.B) { benchStepEngineRounds(b, EngineStep, false) }
func BenchmarkEngineTrafficStep(b *testing.B) { benchStepEngineRounds(b, EngineStep, true) }

// TestAdapterGroupMixedNodes runs the chatter workload with half the nodes
// adapted legacy Programs (driven by the per-shard adapter multiplexer)
// and half native step machines, across several shard counts, against the
// legacy engine as oracle. It pins the multiplexer's byte-identity on the
// hardest layout: adapted and native nodes interleaved inside one shard.
func TestAdapterGroupMixedNodes(t *testing.T) {
	g := graph.Grid(9, 9)
	oracle, oracleM := runChatter(t, g, Config{Seed: 42, Engine: EngineLegacy})
	for _, shards := range []int{1, 3, 16} {
		out := make([]int64, g.N())
		adapted := AdaptProgram(chatterProgram(out))
		m, err := RunStep(g, Config{Seed: 42, Engine: EngineStep, Shards: shards}, func(env *Env) StepProgram {
			if env.ID()%2 == 0 {
				return adapted(env)
			}
			return newStepChatter(env, out)
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(oracle, out) {
			t.Errorf("shards=%d: mixed adapted/native results diverge from legacy oracle", shards)
		}
		if oracleM != m {
			t.Errorf("shards=%d: metrics diverge: legacy %+v step %+v", shards, oracleM, m)
		}
	}
}

// TestAdapterGroupPanic pins the multiplexer's abort path: a panicking
// adapted program must surface as a run error and unwind every parked
// member of every group without deadlocking.
func TestAdapterGroupPanic(t *testing.T) {
	g := graph.Grid(6, 6)
	_, err := Run(g, Config{Engine: EngineStep, Shards: 4}, func(env *Env) {
		for r := 0; ; r++ {
			if env.ID() == 13 && r == 3 {
				panic("boom")
			}
			env.Step()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "node 13 panicked") {
		t.Fatalf("err = %v, want node 13 panic", err)
	}
}

// benchAdaptedEngineRounds measures legacy Programs under EngineStep. The
// default path goes through the per-shard adapter multiplexer (one
// broadcast wake per shard per round); perNode forces the pre-multiplexer
// per-node channel protocol by nesting the adapter inside a composite
// machine, so the pair isolates the multiplexer's win.
func benchAdaptedEngineRounds(b *testing.B, perNode, traffic bool) {
	g := graph.Grid(32, 32)
	b.ReportAllocs()
	program := func(env *Env) {
		for r := 0; r < 200; r++ {
			if traffic {
				env.BroadcastLocal(r)
				env.SendGlobal((env.ID()+r)%env.N(), 0, 1, 2, 3, 4)
			}
			env.Step()
		}
	}
	factory := AdaptProgram(program)
	if perNode {
		inner := factory
		factory = func(env *Env) StepProgram {
			return Sequence(func(env *Env) StepProgram { return inner(env) })
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunStep(g, Config{Engine: EngineStep}, factory); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineBarrierAdapted(b *testing.B) { benchAdaptedEngineRounds(b, false, false) }
func BenchmarkEngineTrafficAdapted(b *testing.B) { benchAdaptedEngineRounds(b, false, true) }
func BenchmarkEngineBarrierAdapterPerNode(b *testing.B) {
	benchAdaptedEngineRounds(b, true, false)
}
func BenchmarkEngineTrafficAdapterPerNode(b *testing.B) {
	benchAdaptedEngineRounds(b, true, true)
}

// TestNestedAdapterAbortReleases pins the abort path for adapters nested
// inside composite machines (the per-node protocol): an aborting run must
// wake every parked nested program so its goroutine unwinds, instead of
// leaking it parked in Env.Step forever.
func TestNestedAdapterAbortReleases(t *testing.T) {
	g := graph.Grid(4, 4)
	var unwound atomic.Int32
	inner := AdaptProgram(func(env *Env) {
		defer unwound.Add(1)
		for {
			env.Step() // never finishes; only the abort unwinds it
		}
	})
	_, err := RunStep(g, Config{Engine: EngineStep, MaxRounds: 20}, func(env *Env) StepProgram {
		return Sequence(func(env *Env) StepProgram { return inner(env) })
	})
	if !errors.Is(err, ErrTooManyRounds) {
		t.Fatalf("err = %v, want ErrTooManyRounds", err)
	}
	if got := unwound.Load(); got != int32(g.N()) {
		t.Fatalf("%d of %d nested adapted programs unwound after abort", got, g.N())
	}
}
