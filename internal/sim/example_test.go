package sim_test

import (
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/sim"
)

// A StepProgram is a resumable state machine: one Step call runs one round
// segment — read Env.Incoming, stage sends, report done — and never
// blocks. RunStep executes it natively on the goroutine-free EngineStep
// and through DriveProgram on the goroutine engines, with byte-identical
// results either way. Here every node floods a token wave down a path with
// a three-round sim.Loop.
func ExampleRunStep() {
	g := graph.Path(5)
	dist := make([]int, g.N())
	m, err := sim.RunStep(g, sim.Config{Seed: 1, Engine: sim.EngineStep}, func(env *sim.Env) sim.StepProgram {
		reached := env.ID() == 0 // node 0 starts the wave
		hop := -1
		if reached {
			hop = 0
		}
		return &sim.Loop{
			Rounds: 3,
			Send: func(env *sim.Env, i int) {
				if hop == i { // newly reached: forward the wave
					env.BroadcastLocal(i)
				}
			},
			Recv: func(env *sim.Env, in sim.Inbox, i int) {
				if !reached && len(in.Local) > 0 {
					reached = true
					hop = i + 1
				}
				if i == 2 { // last round: record the result
					dist[env.ID()] = hop
				}
			},
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hops from node 0:", dist)
	fmt.Println("rounds:", m.Rounds)
	// Output:
	// hops from node 0: [0 1 2 3 -1]
	// rounds: 3
}
