// Package sim implements the HYBRID network model of Augustine et al.
// (SODA '20) as used by Kuhn & Schneider (PODC '20): synchronous message
// passing over a node set V = {0..n-1} with two communication modes.
//
//   - Local mode (LOCAL): in each round, every node may exchange messages of
//     arbitrary size with each of its neighbors in the local graph G.
//   - Global mode (NCC): in each round, every node may send O(log n)
//     messages of O(log n) bits each to arbitrary nodes.
//
// A node algorithm is written in one of two interchangeable execution
// models. A Program is a blocking function: a call to Env.Step ends the
// node's round and blocks until every other node has ended the round too,
// at which point the engine delivers all staged messages. A StepProgram is
// an explicit resumable state machine: one Step call runs exactly one
// round segment (read Env.Incoming, stage sends, report done), and nothing
// ever blocks. Either model runs on every engine — see step.go for the
// contract and the adapters — and the number of barrier generations is
// exactly the round complexity the paper's theorems are stated in.
//
// # Engines
//
// Three interchangeable round engines implement the barrier and delivery;
// Config.Engine selects one.
//
// EngineSharded (the default, "sim v2") runs each Program as a goroutine
// and splits the node set into contiguous shards, at most GOMAXPROCS of
// them. Senders stage outgoing messages into per-destination-shard buckets
// as they send, and at the round boundary a persistent worker pool drains
// the buckets shard by shard — each worker owns the inboxes, receive
// counters, and metric deltas of exactly one shard, so delivery is
// lock-free and scales with cores. Inboxes are preallocated and
// double-buffered so steady-state rounds allocate nothing, and senders
// that staged nothing are skipped via dirty flags (sparse rounds are the
// common case in delta-style flooding). See sharded.go.
//
// EngineStep ("sim v3") runs each node as a StepProgram with no per-node
// goroutine: the engine's round loop iterates the machines in
// shard-parallel batches and then runs the sharded delivery path — the
// loop IS the barrier, so rounds cost zero scheduler wake/park cycles.
// Programs without a step port run on it through a goroutine-backed
// adapter. See step.go and RunStep.
//
// EngineLegacy is the original engine: a single coordinator goroutine
// drains every node's flat outbox in node-ID order with freshly allocated
// inboxes each round. It is retained as the differential-testing oracle.
//
// # Determinism
//
// All engines are deterministic and agree bit for bit: a destination's
// inbox is ordered by (sender ID, send order) regardless of engine, shard
// count, or execution model, per-node and public randomness derive only
// from Config.Seed, and the engines' metric merges are commutative
// sum/max folds, so for a fixed seed every engine produces identical
// message sequences, results, and Metrics. engines_test.go, step_test.go,
// and the top-level differential tests enforce this property across the
// engine × execution-model matrix.
//
// # Model enforcement
//
// Global-mode send caps are enforced strictly (a program exceeding its cap
// is a bug, reported as a run error), as are local sends to non-neighbors
// and out-of-range global destinations. Global receive load is recorded,
// not enforced, because bounding it is a w.h.p. *claim* of the paper's
// protocols (Lemma D.2) that the test suite verifies empirically;
// Config.StrictRecvFactor opts into treating overload as an error.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/bitrand"
	"repro/internal/graph"
)

// Kind tags the protocol-level meaning of a global message.
type Kind uint16

// GlobalMsg is one global-mode message. Its payload is four 64-bit fields,
// so every message is Theta(log n) bits by construction (the paper permits a
// constant number of log n-bit words per message).
type GlobalMsg struct {
	Src, Dst int
	Kind     Kind
	F0       int64
	F1       int64
	F2       int64
	F3       int64
}

// LocalMsg is one local-mode message: an arbitrary payload received from a
// neighbor in G.
type LocalMsg struct {
	From    int
	Payload interface{}
}

// WordSized is implemented by local-mode payload types that want accurate
// accounting in Metrics.LocalBits: PayloadWords reports the payload's size
// in O(log n)-bit words (the unit all of the paper's bandwidth statements
// use). Payloads that do not implement it are charged one word. The method
// must be cheap and must not mutate the payload: every engine calls it once
// per delivered message on the delivery path.
type WordSized interface {
	PayloadWords() int64
}

// payloadWords returns the LocalBits word charge for one payload.
func payloadWords(p interface{}) int64 {
	if ws, ok := p.(WordSized); ok {
		return ws.PayloadWords()
	}
	return 1
}

// Inbox holds everything a node received in the round that just ended.
// Local messages are ordered by sender ID, then send order; global messages
// by sender ID, then send order. The ordering is deterministic.
type Inbox struct {
	Local  []LocalMsg
	Global []GlobalMsg
}

// Program is the algorithm executed by every node. Implementations switch on
// env.ID() when nodes play different roles. Programs communicate results by
// writing to captured per-node output slots.
type Program func(env *Env)

// Engine selects the round-engine implementation. See the package comment.
type Engine int

const (
	// EngineSharded is the default engine: per-shard staging buckets,
	// worker-pool delivery, reused double-buffered inboxes. Node programs
	// are goroutines synchronized at the round barrier.
	EngineSharded Engine = iota
	// EngineLegacy is the original goroutine-per-node engine with a single
	// delivery coordinator, kept as a differential-testing oracle.
	EngineLegacy
	// EngineStep runs each node as an explicit resumable state machine
	// (StepProgram) with no per-node goroutine: the engine's round loop IS
	// the barrier, so rounds cost zero scheduler wake/park cycles. Legacy
	// Programs run on it through a goroutine-backed adapter; step-native
	// programs run on the goroutine engines through DriveProgram. See
	// step.go and RunStep.
	EngineStep
	// EngineDist is the step engine with global-mode delivery routed
	// through per-shard worker OS processes over a wire protocol (unix
	// sockets by default). Node execution and local-mode delivery stay in
	// the coordinator — local payloads are arbitrary Go values — while
	// every global message makes a real serialize/route/deserialize trip
	// through its destination shard's worker. Requires a registered
	// DistRouter factory (importing repro/internal/dist provides one); see
	// dist.go in this package and the internal/dist package.
	EngineDist
)

// String names the engine for flags and benchmark labels.
func (e Engine) String() string {
	switch e {
	case EngineLegacy:
		return "legacy"
	case EngineStep:
		return "step"
	case EngineDist:
		return "dist"
	default:
		return "sharded"
	}
}

// Config controls model parameters and instrumentation.
type Config struct {
	// Seed roots all randomness (per-node streams and public randomness).
	Seed int64

	// Engine selects the round engine (default EngineSharded). Both
	// engines produce identical results and Metrics for identical seeds.
	Engine Engine

	// Shards overrides the sharded engine's shard count. Zero (the
	// default) autotunes: one shard per available CPU, capped so every
	// shard keeps enough nodes to amortize the per-round fan-out (see
	// initSharded). Results are independent of the value; it exists for
	// tuning and for determinism tests across shard counts.
	Shards int

	// StepBatch controls how the step engine distributes a round's machine
	// calls across the worker pool when more than one shard is active.
	// Zero (the default) assigns each worker its whole shard; a positive
	// value switches to work-stealing batches of that many nodes, which
	// rebalances rounds whose active nodes cluster in few shards; a
	// negative value autotunes the batch width from the shard size.
	// Results are independent of the value (senders stage into per-shard
	// buckets and delivery drains them in ascending sender ID regardless
	// of who stepped the sender); the randomized differential tests draw
	// it alongside Shards to enforce that.
	StepBatch int

	// DistWorkers sets how many worker processes EngineDist spawns; the
	// distributed engine runs one shard per worker, so this replaces the
	// Shards autotune under EngineDist (Shards is ignored there). Zero or
	// negative means DefaultDistWorkers. Results are independent of the
	// value. Other engines ignore it.
	DistWorkers int

	// DistOpts carries transport/robustness options for EngineDist as an
	// opaque value the registered DistRouter factory understands (a
	// *dist.Options — typed any here so this package does not import the
	// router implementation). Nil uses the router's defaults. Other
	// engines ignore it.
	DistOpts any

	// GlobalSendFactor scales the global-mode send cap:
	// cap = GlobalSendFactor * ceil(log2 n). Zero means 1. The paper's
	// algorithms pace their global traffic in Theta(log n) chunks, so 1 is
	// the faithful default; experiments may raise it to study the tradeoff.
	GlobalSendFactor int

	// MaxRounds aborts runs that exceed this many rounds (guards against
	// non-terminating programs). Zero means DefaultMaxRounds.
	MaxRounds int

	// StrictRecvFactor, if positive, aborts the run when a node receives
	// more than StrictRecvFactor*ceil(log2 n) global messages in one round.
	// Zero disables enforcement (load is still recorded in Metrics).
	StrictRecvFactor int

	// Cut, if non-nil, marks a node bipartition (true = "Alice" side). The
	// engine counts global messages and bits crossing the cut; the
	// lower-bound experiments (E8, E9) read these counters.
	Cut []bool

	// Ctx, if non-nil, cancels the run cooperatively: every engine checks
	// it at each round boundary and aborts with an error wrapping
	// ctx.Err(), so errors.Is(err, context.Canceled) (or DeadlineExceeded)
	// holds for the returned error. Node programs never observe the
	// context; they are unwound through the engines' abort path.
	Ctx context.Context

	// OnRound, if non-nil, is invoked once per completed round barrier,
	// after delivery, with the number of rounds completed so far. It runs
	// on the engine's coordinator (never on a node goroutine) on every
	// engine, so it must be fast and must not call back into the run.
	// The final generation that retires the last nodes also ticks, so the
	// last value may exceed the returned Metrics.Rounds by one, and the
	// hook may still fire for the generation in which a run failed
	// (MaxRounds, cancellation, model violation).
	OnRound func(round int)
}

// DefaultMaxRounds bounds runaway executions.
const DefaultMaxRounds = 1 << 22

// Metrics aggregates everything measured during a run.
type Metrics struct {
	// Rounds is the number of synchronous rounds the run took (the
	// quantity all of the paper's bounds are about).
	Rounds int
	// GlobalMsgs is the total number of global-mode messages delivered.
	GlobalMsgs int64
	// GlobalBits is GlobalMsgs scaled by the per-message bit size.
	GlobalBits int64
	// LocalMsgs is the total number of local-mode messages delivered.
	LocalMsgs int64
	// LocalBits is the payload bit volume of local-mode messages: the sum
	// over delivered local messages of the payload's word count (the
	// WordSized contract; unknown payloads count as one word) scaled by the
	// ceil(log2 n)-bit word size. Batch and vector payloads make per-message
	// size very uneven, so LocalMsgs alone understates LOCAL-mode traffic.
	LocalBits int64
	// MaxGlobalSend is the maximum number of global messages any node sent
	// in a single round (never exceeds the cap, which is enforced).
	MaxGlobalSend int
	// MaxGlobalRecv is the maximum number of global messages any node
	// received in a single round (the Lemma D.2 quantity).
	MaxGlobalRecv int
	// CutGlobalMsgs / CutGlobalBits count global messages crossing the
	// configured cut (0 if no cut configured).
	CutGlobalMsgs int64
	CutGlobalBits int64
}

// Log2Ceil returns ceil(log2 n), at least 1.
func Log2Ceil(n int) int {
	l := 1
	for (1 << l) < n {
		l++
	}
	return l
}

// errAbort is the sentinel used to unwind node goroutines after an abort.
var errAbort = errors.New("sim: run aborted")

// ErrTooManyRounds is wrapped in the Run error when MaxRounds is hit.
var ErrTooManyRounds = errors.New("sim: exceeded MaxRounds")

// roundBoundary runs the engine-independent per-round instrumentation: the
// progress hook and the cooperative cancellation check. Every engine calls
// it exactly once per completed round barrier, after delivery.
func (e *engine) roundBoundary() {
	if e.cfg.OnRound != nil {
		e.cfg.OnRound(e.generation)
	}
	if ctx := e.cfg.Ctx; ctx != nil {
		if err := ctx.Err(); err != nil {
			e.fail(fmt.Errorf("sim: run cancelled in round %d: %w", e.generation, err))
		}
	}
}

type engine struct {
	g       *graph.Graph
	cfg     Config
	n       int
	logN    int
	sendCap int
	msgBits int64

	envs []*Env

	release   atomic.Value // chan struct{}; swapped at each round boundary
	remaining int32
	ready     chan struct{} // signaled when remaining hits zero

	aborted atomic.Bool
	errMu   sync.Mutex
	err     error

	sharedMu sync.Mutex
	shared   map[string]interface{}

	generation int
	metrics    Metrics

	// Sharded-engine state (nil/zero under EngineLegacy); see sharded.go.
	sharded   bool
	nShards   int
	shardSize int
	recvCount []int
	dirty     [][]bool // [shard][sender]: sender staged something for shard
	workCh    chan shardTask
	resCh     chan shardResult

	// Step-engine state (nil unless EngineStep); see step.go.
	stepMode   bool
	progs      []StepProgram
	adGroups   []*adapterGroup // per-shard adapter multiplexers, nil entries for all-native shards
	stepActive int             // unfinished nodes in the current step run
	stepBatch  int             // resolved work-stealing batch width, 0 = whole-shard tasks
	stepCursor atomic.Int64    // next node to claim in a batched step generation

	// Distributed-engine state (nil unless EngineDist); see dist.go.
	distMode   bool
	distRouter DistRouter
	distReqs   [][]GlobalMsg // per-shard request batches, reused across rounds
}

// Env is a node's handle to the engine. All methods must be called only
// from that node's Program goroutine.
type Env struct {
	eng *engine
	id  int

	rng      *rand.Rand
	round    int
	finished bool

	// Legacy-engine staging: flat outboxes, fresh inboxes each round.
	outLocal  []localOut
	outGlobal []GlobalMsg

	inLocal  []LocalMsg
	inGlobal []GlobalMsg

	// Sharded-engine staging: per-destination-shard buckets and
	// double-buffered reused inboxes (see sharded.go).
	outLocalSh  [][]localOut
	outGlobalSh [][]GlobalMsg
	inLocalBuf  [2][]LocalMsg
	inGlobalBuf [2][]GlobalMsg

	// Step-engine state: the inbox of the round being executed (set by the
	// engine before each StepProgram.Step call, or by DriveProgram under the
	// goroutine engines) and the adapter handle when this node runs a legacy
	// Program on the step engine (see step.go).
	curInbox Inbox
	adapter  *programAdapter

	globalSentThisRound int
	countedFinished     bool
	sharedSeq           map[string]int
}

type localOut struct {
	to      int
	payload interface{}
}

// newEngine validates cfg, applies defaults, and builds the engine and the
// per-node Envs. A nil engine with a nil error means the run is empty.
func newEngine(g *graph.Graph, cfg Config) (*engine, error) {
	n := g.N()
	if n == 0 {
		return nil, nil
	}
	if cfg.GlobalSendFactor <= 0 {
		cfg.GlobalSendFactor = 1
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	if cfg.Cut != nil && len(cfg.Cut) != n {
		return nil, fmt.Errorf("sim: cut has %d entries for %d nodes", len(cfg.Cut), n)
	}
	logN := Log2Ceil(n)
	eng := &engine{
		g:       g,
		cfg:     cfg,
		n:       n,
		logN:    logN,
		sendCap: cfg.GlobalSendFactor * logN,
		// src + dst + kind + four fields, all O(log n)-bit quantities.
		msgBits: int64(6*logN + 16),
		ready:   make(chan struct{}, 1),
	}
	eng.release.Store(make(chan struct{}))
	src := bitrand.NewSource(cfg.Seed)
	eng.envs = make([]*Env, n)
	for i := 0; i < n; i++ {
		eng.envs[i] = &Env{
			eng: eng,
			id:  i,
			rng: src.Named("node", i),
		}
	}
	atomic.StoreInt32(&eng.remaining, int32(n))
	return eng, nil
}

// Run executes program on every node of g under cfg and returns the
// collected metrics. It returns an error if any node violated the model
// (illegal local destination, global send cap exceeded), if the run hit
// MaxRounds, or if a program panicked. Under EngineStep the program runs
// through the goroutine-backed adapter (see step.go); results and Metrics
// are identical on every engine for a fixed seed.
func Run(g *graph.Graph, cfg Config, program Program) (Metrics, error) {
	if cfg.Engine == EngineStep || cfg.Engine == EngineDist {
		return RunStep(g, cfg, AdaptProgram(program))
	}
	eng, err := newEngine(g, cfg)
	if eng == nil {
		return Metrics{}, err
	}
	n := eng.n
	if cfg.Engine != EngineLegacy {
		eng.initSharded()
		defer eng.stopSharded()
	}

	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		env := eng.envs[i]
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if r != errAbort { //nolint:errorlint // sentinel identity check
						eng.fail(fmt.Errorf("sim: node %d panicked: %v", env.id, r))
					}
				}
				env.finished = true
				env.arrive()
			}()
			program(env)
		}()
	}

	eng.coordinate()
	wg.Wait()
	return eng.results()
}

// results computes the final Metrics and error after all nodes stopped.
// Round complexity = the maximum number of completed round barriers over
// all nodes (the final finishing generation is not a communication round).
func (e *engine) results() (Metrics, error) {
	for _, env := range e.envs {
		if env.round > e.metrics.Rounds {
			e.metrics.Rounds = env.round
		}
	}
	e.errMu.Lock()
	err := e.err
	e.errMu.Unlock()
	return e.metrics, err
}

// fail records the first error and flags the abort.
func (e *engine) fail(err error) {
	e.errMu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.errMu.Unlock()
	e.aborted.Store(true)
}

// coordinate runs the barrier loop: wait for all active nodes, deliver
// messages, advance the round.
func (e *engine) coordinate() {
	active := e.n
	for {
		<-e.ready
		var finishedNow int
		if e.sharded {
			finishedNow = e.deliverSharded()
		} else {
			finishedNow = e.deliver()
		}
		active -= finishedNow
		if e.generation >= e.cfg.MaxRounds {
			e.fail(fmt.Errorf("%w (%d)", ErrTooManyRounds, e.cfg.MaxRounds))
		}
		e.roundBoundary()
		if active == 0 {
			// Release any stragglers (none should exist) and stop.
			e.swapRelease()
			return
		}
		atomic.StoreInt32(&e.remaining, int32(active))
		e.swapRelease()
	}
}

// swapRelease installs a new release channel and closes the old one, waking
// every node blocked in Step. A node always loads its release channel
// BEFORE arriving at the barrier, and the swap happens only after every
// node has arrived, so no node can observe the new channel for the round
// it is finishing.
func (e *engine) swapRelease() {
	old := e.release.Load().(chan struct{})
	e.release.Store(make(chan struct{}))
	close(old)
}

func (e *engine) currentRelease() chan struct{} {
	return e.release.Load().(chan struct{})
}

// deliver moves every staged outbox into the destination inboxes, updates
// metrics, and returns how many nodes finished during this round.
func (e *engine) deliver() int {
	e.generation++
	finished := 0
	recvCount := make([]int, e.n)

	for _, env := range e.envs {
		if env.globalSentThisRound > e.metrics.MaxGlobalSend {
			e.metrics.MaxGlobalSend = env.globalSentThisRound
		}
		env.globalSentThisRound = 0

		for _, out := range env.outLocal {
			dst := e.envs[out.to]
			dst.inLocal = append(dst.inLocal, LocalMsg{From: env.id, Payload: out.payload})
			e.metrics.LocalMsgs++
			e.metrics.LocalBits += payloadWords(out.payload) * int64(e.logN)
		}
		env.outLocal = env.outLocal[:0]

		for _, m := range env.outGlobal {
			dst := e.envs[m.Dst]
			dst.inGlobal = append(dst.inGlobal, m)
			recvCount[m.Dst]++
			e.metrics.GlobalMsgs++
			e.metrics.GlobalBits += e.msgBits
			if e.cfg.Cut != nil && e.cfg.Cut[m.Src] != e.cfg.Cut[m.Dst] {
				e.metrics.CutGlobalMsgs++
				e.metrics.CutGlobalBits += e.msgBits
			}
		}
		env.outGlobal = env.outGlobal[:0]

		if env.finished && !env.countedFinished {
			env.countedFinished = true
			finished++
		}
	}

	for dst, c := range recvCount {
		if c > e.metrics.MaxGlobalRecv {
			e.metrics.MaxGlobalRecv = c
		}
		if f := e.cfg.StrictRecvFactor; f > 0 && c > f*e.logN {
			e.fail(fmt.Errorf("sim: node %d received %d global messages in generation %d, cap %d",
				dst, c, e.generation, f*e.logN))
		}
	}
	return finished
}
