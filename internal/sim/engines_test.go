package sim

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

// chatterProgram is a deliberately messy workload for engine-equivalence
// tests: per-node random local and global traffic, uneven finishing times,
// and an accumulator that is sensitive to both inbox ordering and content.
func chatterProgram(out []int64) Program {
	return func(env *Env) {
		rounds := 6 + env.ID()%5
		acc := int64(env.ID())
		for r := 0; r < rounds; r++ {
			for _, nb := range env.Neighbors() {
				if env.Rand().Intn(2) == 0 {
					env.SendLocal(nb.To, int64(env.ID()*1000+r))
				}
			}
			sends := env.Rand().Intn(env.GlobalCap() + 1)
			for s := 0; s < sends; s++ {
				env.SendGlobal(env.Rand().Intn(env.N()), Kind(r), int64(env.ID()), int64(r), int64(s), 7)
			}
			in := env.Step()
			for _, lm := range in.Local {
				acc = acc*31 + int64(lm.From)
				if v, ok := lm.Payload.(int64); ok {
					acc = acc*31 + v
				}
			}
			for _, gm := range in.Global {
				acc = acc*31 + int64(gm.Src)*8191 + gm.F1*13 + gm.F2
			}
		}
		out[env.ID()] = acc
	}
}

func runChatter(t *testing.T, g *graph.Graph, cfg Config) ([]int64, Metrics) {
	t.Helper()
	out := make([]int64, g.N())
	m, err := Run(g, cfg, chatterProgram(out))
	if err != nil {
		t.Fatal(err)
	}
	return out, m
}

// TestEnginesAgree is the core differential test: for several topologies
// and seeds, the legacy and sharded engines must produce byte-identical
// per-node results and Metrics.
func TestEnginesAgree(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid":     graph.Grid(6, 7),
		"path":     graph.Path(33),
		"complete": graph.Complete(17),
	}
	for name, g := range graphs {
		for seed := int64(1); seed <= 3; seed++ {
			legacyOut, legacyM := runChatter(t, g, Config{Seed: seed, Engine: EngineLegacy})
			for _, eng := range []Engine{EngineSharded, EngineStep} {
				out, m := runChatter(t, g, Config{Seed: seed, Engine: eng})
				if !reflect.DeepEqual(legacyOut, out) {
					t.Fatalf("%s seed %d: per-node results differ between legacy and %s", name, seed, eng)
				}
				if legacyM != m {
					t.Fatalf("%s seed %d: metrics differ: legacy %+v %s %+v", name, seed, legacyM, eng, m)
				}
			}
		}
	}
}

// TestShardCountInvariance: the sharded engine's results must not depend on
// the shard count (delivery order is (sender ID, send order) by
// construction, whatever the sharding).
func TestShardCountInvariance(t *testing.T) {
	g := graph.Grid(5, 8)
	baseOut, baseM := runChatter(t, g, Config{Seed: 11, Shards: 1})
	for _, shards := range []int{2, 3, 7, 16, 40, 1000} {
		out, m := runChatter(t, g, Config{Seed: 11, Shards: shards})
		if !reflect.DeepEqual(baseOut, out) {
			t.Fatalf("shards=%d: results differ from shards=1", shards)
		}
		if m != baseM {
			t.Fatalf("shards=%d: metrics differ: %+v vs %+v", shards, m, baseM)
		}
	}
}

// TestShardedInboxReuseSafe: the inbox returned by Step is valid until the
// next Step call even though the sharded engine recycles buffers. A program
// that reads its inbox as late as legally possible must see intact data.
func TestShardedInboxReuseSafe(t *testing.T) {
	g := graph.Path(8)
	sums := make([]int64, g.N())
	_, err := Run(g, Config{Seed: 4}, func(env *Env) {
		var held Inbox
		for r := 0; r < 20; r++ {
			// Read the PREVIOUS round's inbox only now, just before Step.
			for _, gm := range held.Global {
				sums[env.ID()] += gm.F0
			}
			env.SendGlobal((env.ID()+1)%env.N(), 0, int64(r), 0, 0, 0)
			held = env.Step()
		}
		for _, gm := range held.Global {
			sums[env.ID()] += gm.F0
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(20 * 19 / 2) // rounds 0..19 from the left neighbor
	for v, s := range sums {
		if s != want {
			t.Fatalf("node %d accumulated %d, want %d", v, s, want)
		}
	}
}

// TestShardedViolationsDeterministic: when several nodes exceed the strict
// receive cap in the same round, the sharded engine must report the
// lowest-ID violator regardless of worker scheduling.
func TestShardedViolationsDeterministic(t *testing.T) {
	g := graph.Path(64)
	for _, shards := range []int{1, 4, 16} {
		_, err := Run(g, Config{StrictRecvFactor: 1, Shards: shards}, func(env *Env) {
			// Everyone floods both node 5 and node 50.
			if env.ID() != 5 && env.ID() != 50 {
				env.SendGlobal(5, 0, 0, 0, 0, 0)
				env.SendGlobal(50, 0, 0, 0, 0, 0)
			}
			env.Step()
		})
		if err == nil {
			t.Fatalf("shards=%d: want strict-recv violation", shards)
		}
		const want = "sim: node 5 received"
		if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
			t.Fatalf("shards=%d: err = %q, want prefix %q", shards, got, want)
		}
	}
}

// TestEngineString pins the flag/benchmark labels.
func TestEngineString(t *testing.T) {
	if EngineSharded.String() != "sharded" || EngineLegacy.String() != "legacy" || EngineStep.String() != "step" {
		t.Fatalf("engine names changed: %q / %q / %q", EngineSharded, EngineLegacy, EngineStep)
	}
}

func benchEngineRounds(b *testing.B, eng Engine, traffic bool) {
	g := graph.Grid(32, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := Run(g, Config{Engine: eng}, func(env *Env) {
			for r := 0; r < 200; r++ {
				if traffic {
					env.BroadcastLocal(r)
					env.SendGlobal((env.ID()+r)%env.N(), 0, 1, 2, 3, 4)
				}
				env.Step()
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// The barrier benchmarks isolate the round-boundary cost (no messages);
// the traffic benchmarks add a broadcast plus one global message per node
// per round, the regime where the sharded engine's reused inboxes and
// bucketed delivery separate from the legacy coordinator.
func BenchmarkEngineBarrierSharded(b *testing.B) { benchEngineRounds(b, EngineSharded, false) }
func BenchmarkEngineBarrierLegacy(b *testing.B)  { benchEngineRounds(b, EngineLegacy, false) }
func BenchmarkEngineTrafficSharded(b *testing.B) { benchEngineRounds(b, EngineSharded, true) }
func BenchmarkEngineTrafficLegacy(b *testing.B)  { benchEngineRounds(b, EngineLegacy, true) }
