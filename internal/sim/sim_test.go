package sim

import (
	"errors"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
)

func TestLog2Ceil(t *testing.T) {
	tests := []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11},
	}
	for _, tt := range tests {
		if got := Log2Ceil(tt.n); got != tt.want {
			t.Fatalf("Log2Ceil(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestEmptyGraphRun(t *testing.T) {
	m, err := Run(graph.New(0), Config{}, func(env *Env) {})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds != 0 {
		t.Fatalf("Rounds = %d, want 0", m.Rounds)
	}
}

func TestSingleNodeNoSteps(t *testing.T) {
	ran := false
	m, err := Run(graph.New(1), Config{}, func(env *Env) { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("program did not run")
	}
	if m.Rounds != 0 {
		t.Fatalf("Rounds = %d, want 0 (no Step calls)", m.Rounds)
	}
}

func TestRoundCountMatchesSteps(t *testing.T) {
	const steps = 7
	m, err := Run(graph.Path(5), Config{}, func(env *Env) {
		for i := 0; i < steps; i++ {
			env.Step()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds != steps {
		t.Fatalf("Rounds = %d, want %d", m.Rounds, steps)
	}
}

func TestUnevenStepCounts(t *testing.T) {
	// Node 0 steps 10 times, everyone else 3: rounds = 10 and the run
	// terminates.
	m, err := Run(graph.Path(4), Config{}, func(env *Env) {
		steps := 3
		if env.ID() == 0 {
			steps = 10
		}
		for i := 0; i < steps; i++ {
			env.Step()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds != 10 {
		t.Fatalf("Rounds = %d, want 10", m.Rounds)
	}
}

// TestLocalFloodBFS runs distributed BFS over the local mode only:
// hop-distance labels spread one hop per round, validating both delivery
// and the round abstraction against the LOCAL model's Theta(D) behavior.
func TestLocalFloodBFS(t *testing.T) {
	g := graph.Grid(5, 6)
	n := g.N()
	want := graph.BFS(g, 0)
	dist := make([]int64, n)

	_, err := Run(g, Config{Seed: 1}, func(env *Env) {
		const rounds = 10 // >= diameter of 5x6 grid (9)
		my := int64(graph.Inf)
		if env.ID() == 0 {
			my = 0
		}
		for r := 0; r < rounds; r++ {
			if my < graph.Inf {
				env.BroadcastLocal(my)
			}
			in := env.Step()
			for _, lm := range in.Local {
				if d, ok := lm.Payload.(int64); ok && d+1 < my {
					my = d + 1
				}
			}
		}
		dist[env.ID()] = my
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if dist[v] != want[v] {
			t.Fatalf("BFS dist[%d] = %d, want %d", v, dist[v], want[v])
		}
	}
}

func TestGlobalMessageDelivery(t *testing.T) {
	// Every node sends one global message to (id+1) mod n; everyone should
	// receive exactly one, from (id-1) mod n, with intact fields.
	const n = 16
	g := graph.Path(n)
	got := make([]GlobalMsg, n)
	counts := make([]int, n)

	m, err := Run(g, Config{Seed: 2}, func(env *Env) {
		dst := (env.ID() + 1) % n
		env.SendGlobal(dst, 7, int64(env.ID()), 100, -3, 42)
		in := env.Step()
		counts[env.ID()] = len(in.Global)
		if len(in.Global) == 1 {
			got[env.ID()] = in.Global[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if counts[v] != 1 {
			t.Fatalf("node %d received %d global messages, want 1", v, counts[v])
		}
		from := (v - 1 + n) % n
		gm := got[v]
		if gm.Src != from || gm.Dst != v || gm.Kind != 7 || gm.F0 != int64(from) || gm.F1 != 100 || gm.F2 != -3 || gm.F3 != 42 {
			t.Fatalf("node %d got corrupted message %+v", v, gm)
		}
	}
	if m.GlobalMsgs != n {
		t.Fatalf("GlobalMsgs = %d, want %d", m.GlobalMsgs, n)
	}
	if m.MaxGlobalSend != 1 || m.MaxGlobalRecv != 1 {
		t.Fatalf("MaxGlobalSend/Recv = %d/%d, want 1/1", m.MaxGlobalSend, m.MaxGlobalRecv)
	}
}

func TestGlobalSendCapEnforced(t *testing.T) {
	g := graph.Path(8) // logN = 3, cap = 3 with factor 1
	_, err := Run(g, Config{Seed: 3}, func(env *Env) {
		if env.ID() == 0 {
			for i := 0; i < env.GlobalCap()+1; i++ {
				env.SendGlobal(1, 0, 0, 0, 0, 0)
			}
		}
		env.Step()
	})
	if err == nil || !strings.Contains(err.Error(), "exceeded global send cap") {
		t.Fatalf("err = %v, want send-cap violation", err)
	}
}

func TestGlobalSendCapFactor(t *testing.T) {
	g := graph.Path(8)
	m, err := Run(g, Config{Seed: 3, GlobalSendFactor: 4}, func(env *Env) {
		if env.ID() == 0 {
			for i := 0; i < env.GlobalCap(); i++ {
				env.SendGlobal(1, 0, 0, 0, 0, 0)
			}
		}
		env.Step()
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxGlobalSend != 4*Log2Ceil(8) {
		t.Fatalf("MaxGlobalSend = %d, want %d", m.MaxGlobalSend, 4*Log2Ceil(8))
	}
}

func TestGlobalBudget(t *testing.T) {
	g := graph.Path(4)
	_, err := Run(g, Config{Seed: 1}, func(env *Env) {
		cap0 := env.GlobalBudget()
		env.SendGlobal(0, 0, 0, 0, 0, 0)
		if env.GlobalBudget() != cap0-1 {
			t.Errorf("budget did not decrease")
		}
		env.Step()
		if env.GlobalBudget() != cap0 {
			t.Errorf("budget did not reset after Step")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLocalNonNeighborRejected(t *testing.T) {
	g := graph.Path(5) // 0 and 4 are not adjacent
	_, err := Run(g, Config{}, func(env *Env) {
		if env.ID() == 0 {
			env.SendLocal(4, "x")
		}
		env.Step()
	})
	if err == nil || !strings.Contains(err.Error(), "non-neighbor") {
		t.Fatalf("err = %v, want non-neighbor violation", err)
	}
}

func TestInvalidGlobalDestination(t *testing.T) {
	g := graph.Path(3)
	_, err := Run(g, Config{}, func(env *Env) {
		if env.ID() == 0 {
			env.SendGlobal(99, 0, 0, 0, 0, 0)
		}
		env.Step()
	})
	if err == nil || !strings.Contains(err.Error(), "invalid node") {
		t.Fatalf("err = %v, want invalid-destination violation", err)
	}
}

func TestProgramPanicCaptured(t *testing.T) {
	g := graph.Path(3)
	_, err := Run(g, Config{}, func(env *Env) {
		env.Step()
		if env.ID() == 1 {
			panic("boom")
		}
		for i := 0; i < 100; i++ {
			env.Step()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want captured panic", err)
	}
}

func TestMaxRoundsGuard(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(g, Config{MaxRounds: 50}, func(env *Env) {
		for { // would loop forever without the guard
			env.Step()
		}
	})
	if !errors.Is(err, ErrTooManyRounds) {
		t.Fatalf("err = %v, want ErrTooManyRounds", err)
	}
}

func TestStrictRecvEnforcement(t *testing.T) {
	// All n-1 nodes target node 0 in one round: receive load n-1 exceeds
	// any log factor for n = 64.
	g := graph.Path(64)
	_, err := Run(g, Config{StrictRecvFactor: 1}, func(env *Env) {
		if env.ID() != 0 {
			env.SendGlobal(0, 0, 0, 0, 0, 0)
		}
		env.Step()
	})
	if err == nil || !strings.Contains(err.Error(), "received") {
		t.Fatalf("err = %v, want recv violation", err)
	}
}

func TestRecvLoadRecordedWithoutStrict(t *testing.T) {
	g := graph.Path(64)
	m, err := Run(g, Config{}, func(env *Env) {
		if env.ID() != 0 {
			env.SendGlobal(0, 0, 0, 0, 0, 0)
		}
		env.Step()
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxGlobalRecv != 63 {
		t.Fatalf("MaxGlobalRecv = %d, want 63", m.MaxGlobalRecv)
	}
}

func TestCutAccounting(t *testing.T) {
	// Nodes 0..3 are Alice, 4..7 Bob. Each node sends one message to its
	// mirror (i+4)%8: all 8 messages cross the cut. Local messages between
	// 3 and 4 do not count.
	g := graph.Path(8)
	cut := make([]bool, 8)
	for i := 0; i < 4; i++ {
		cut[i] = true
	}
	m, err := Run(g, Config{Cut: cut}, func(env *Env) {
		env.SendGlobal((env.ID()+4)%8, 0, 0, 0, 0, 0)
		if env.ID() == 3 {
			env.SendLocal(4, "local crossing, not counted")
		}
		env.Step()
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.CutGlobalMsgs != 8 {
		t.Fatalf("CutGlobalMsgs = %d, want 8", m.CutGlobalMsgs)
	}
	if m.CutGlobalBits != 8*(6*int64(Log2Ceil(8))+16) {
		t.Fatalf("CutGlobalBits = %d unexpected", m.CutGlobalBits)
	}
}

func TestCutSizeMismatch(t *testing.T) {
	_, err := Run(graph.Path(4), Config{Cut: []bool{true}}, func(env *Env) {})
	if err == nil {
		t.Fatal("want error for mismatched cut size")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		g := graph.Grid(4, 4)
		out := make([]int64, g.N())
		_, err := Run(g, Config{Seed: 99}, func(env *Env) {
			acc := int64(0)
			for r := 0; r < 5; r++ {
				tgt := env.Rand().Intn(env.N())
				env.SendGlobal(tgt, 1, int64(env.ID()), 0, 0, 0)
				in := env.Step()
				for _, m := range in.Global {
					acc = acc*31 + m.F0
				}
			}
			out[env.ID()] = acc
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d diverged between identical runs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestPublicRandShared(t *testing.T) {
	g := graph.Path(6)
	vals := make([]uint64, 6)
	_, err := Run(g, Config{Seed: 5}, func(env *Env) {
		vals[env.ID()] = env.PublicRand("coin").Uint64()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 6; i++ {
		if vals[i] != vals[0] {
			t.Fatalf("public randomness differs between nodes: %d vs %d", vals[i], vals[0])
		}
	}
}

func TestPerNodeRandDiffers(t *testing.T) {
	g := graph.Path(6)
	vals := make([]uint64, 6)
	_, err := Run(g, Config{Seed: 5}, func(env *Env) {
		vals[env.ID()] = env.Rand().Uint64()
	})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 1; i < 6; i++ {
		if vals[i] == vals[0] {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d nodes share node 0's private stream", same)
	}
}

func TestEarlyFinishersDoNotBlock(t *testing.T) {
	// Half the nodes finish immediately; the others exchange messages for
	// several rounds. The run must terminate and deliver correctly.
	g := graph.Complete(10)
	var survived int32
	_, err := Run(g, Config{Seed: 8}, func(env *Env) {
		if env.ID()%2 == 0 {
			return
		}
		for r := 0; r < 5; r++ {
			env.BroadcastLocal(r)
			env.Step()
		}
		atomic.AddInt32(&survived, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if survived != 5 {
		t.Fatalf("survived = %d, want 5", survived)
	}
}

func TestInboxOrderingDeterministic(t *testing.T) {
	// Global inbox is ordered by sender ID.
	g := graph.Path(8)
	var order []int
	_, err := Run(g, Config{}, func(env *Env) {
		if env.ID() != 0 {
			env.SendGlobal(0, 0, int64(env.ID()), 0, 0, 0)
		}
		in := env.Step()
		if env.ID() == 0 {
			for _, m := range in.Global {
				order = append(order, m.Src)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("inbox not sorted by sender: %v", order)
		}
	}
	if len(order) != 7 {
		t.Fatalf("node 0 received %d messages, want 7", len(order))
	}
}

func TestMessageBitsAreLogarithmic(t *testing.T) {
	g := graph.Path(1024)
	m, err := Run(g, Config{}, func(env *Env) {
		if env.ID() == 0 {
			env.SendGlobal(1, 0, 0, 0, 0, 0)
		}
		env.Step()
	})
	if err != nil {
		t.Fatal(err)
	}
	logN := int64(Log2Ceil(1024))
	if m.GlobalBits != 6*logN+16 {
		t.Fatalf("GlobalBits = %d, want %d", m.GlobalBits, 6*logN+16)
	}
}

func BenchmarkBarrier64Nodes(b *testing.B) {
	g := graph.Path(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := Run(g, Config{}, func(env *Env) {
			for r := 0; r < 100; r++ {
				env.Step()
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGlobalTraffic(b *testing.B) {
	g := graph.Path(256)
	rng := rand.New(rand.NewSource(1))
	targets := make([]int, 256)
	for i := range targets {
		targets[i] = rng.Intn(256)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := Run(g, Config{}, func(env *Env) {
			for r := 0; r < 20; r++ {
				env.SendGlobal(targets[env.ID()], 0, 1, 2, 3, 4)
				env.Step()
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func TestSharedOnceSingleEvaluation(t *testing.T) {
	g := graph.Path(8)
	var evals int32
	vals := make([]int, 8)
	_, err := Run(g, Config{}, func(env *Env) {
		v := env.SharedOnce("test", func() interface{} {
			atomic.AddInt32(&evals, 1)
			return 42
		})
		vals[env.ID()] = v.(int)
	})
	if err != nil {
		t.Fatal(err)
	}
	if evals != 1 {
		t.Fatalf("fn evaluated %d times, want 1", evals)
	}
	for id, v := range vals {
		if v != 42 {
			t.Fatalf("node %d got %d", id, v)
		}
	}
}

func TestSharedOncePerCallSequence(t *testing.T) {
	// The i-th call with a prefix resolves to the i-th shared value, so
	// successive collective calls get fresh objects.
	g := graph.Path(4)
	firsts := make([]int, 4)
	seconds := make([]int, 4)
	var counter int32
	_, err := Run(g, Config{}, func(env *Env) {
		mk := func() interface{} { return int(atomic.AddInt32(&counter, 1)) }
		firsts[env.ID()] = env.SharedOnce("seq", mk).(int)
		env.Step()
		seconds[env.ID()] = env.SharedOnce("seq", mk).(int)
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := range firsts {
		if firsts[id] != firsts[0] || seconds[id] != seconds[0] {
			t.Fatalf("node %d disagrees on shared values", id)
		}
	}
	if firsts[0] == seconds[0] {
		t.Fatal("second collective call reused the first value")
	}
}

func TestSharedOnceDistinctPrefixes(t *testing.T) {
	g := graph.Path(3)
	var got [2]int
	_, err := Run(g, Config{}, func(env *Env) {
		a := env.SharedOnce("pa", func() interface{} { return 1 }).(int)
		b := env.SharedOnce("pb", func() interface{} { return 2 }).(int)
		if env.ID() == 0 {
			got[0], got[1] = a, b
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("prefixes collided: %v", got)
	}
}
