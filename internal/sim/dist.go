package sim

import (
	"fmt"
	"sync"
)

// This file is the engine side of EngineDist: the round loop stays the
// step engine's (node machines step in the coordinator process, local
// messages — arbitrary Go values — deliver in-process), but every
// global-mode message makes a real trip through its destination shard's
// worker process. The coordinator hands each round's per-shard request
// batches to a DistRouter; the router's workers sort each batch into
// delivery order (per destination: ascending sender ID, then send order —
// the engine contract) and compute the shard's receive accounting, and
// the coordinator folds the returned streams back into the same inbox
// buffers and Metrics fields the in-process engines use. Byte-identity
// with EngineLegacy/EngineSharded/EngineStep follows because the sorted
// stream the worker returns is exactly the order runShard delivers in.
//
// The router implementation lives in repro/internal/dist and registers
// itself here via RegisterDistRouter, keeping this package free of any
// transport/process dependency (and of an import cycle: dist imports sim).

// DefaultDistWorkers is the worker-process count when Config.DistWorkers
// is unset.
const DefaultDistWorkers = 2

// DistRouterConfig is everything a DistRouter needs to spawn and
// configure the worker set for one run.
type DistRouterConfig struct {
	N                int
	LogN             int
	Workers          int // == the engine's shard count
	ShardSize        int
	StrictRecvFactor int
	Cut              []bool
	Opts             any // Config.DistOpts, passed through opaquely
}

// DistRoundStats is the merged per-round accounting the router returns:
// totals across shards, maxima over destinations, and the lowest
// destination that exceeded the strict receive cap (ViolDst < 0: none).
type DistRoundStats struct {
	GlobalMsgs int64
	CutMsgs    int64
	MaxRecv    int
	ViolDst    int
	ViolCount  int
}

// DistRouter routes one round's staged global messages through the worker
// set. RouteRound takes the per-shard request batches (outgoing[k] holds
// every message destined for shard k, in staging order: ascending sender
// ID, then send order) and returns the per-shard delivery streams sorted
// by destination. The router owns retries, respawns, and replay; an error
// means a shard could not be served within the robustness budget and
// aborts the run. Close releases the workers; it must be idempotent.
type DistRouter interface {
	RouteRound(round int, outgoing [][]GlobalMsg) ([][]GlobalMsg, DistRoundStats, error)
	Close() error
}

// DistFlusher is optionally implemented by routers that pipeline rounds:
// Flush drains any reply collection the router deferred under its window
// and reports the first failure. The engine calls it once after the round
// loop, before Close, so a worker failure on a deferred tail round still
// fails the run instead of vanishing into Close's ignored error.
type DistFlusher interface {
	Flush() error
}

var (
	distFactoryMu sync.RWMutex
	distFactory   func(DistRouterConfig) (DistRouter, error)
)

// RegisterDistRouter installs the DistRouter factory EngineDist uses.
// Importing repro/internal/dist registers the process-spawning router;
// tests may install in-process fakes.
func RegisterDistRouter(f func(DistRouterConfig) (DistRouter, error)) {
	distFactoryMu.Lock()
	defer distFactoryMu.Unlock()
	distFactory = f
}

// startDist builds the router for this run. It requires initSharded to
// have sized the shards already.
func (e *engine) startDist() error {
	distFactoryMu.RLock()
	f := distFactory
	distFactoryMu.RUnlock()
	if f == nil {
		return fmt.Errorf("sim: EngineDist requires a registered router (import repro/internal/dist)")
	}
	r, err := f(DistRouterConfig{
		N:                e.n,
		LogN:             e.logN,
		Workers:          e.nShards,
		ShardSize:        e.shardSize,
		StrictRecvFactor: e.cfg.StrictRecvFactor,
		Cut:              e.cfg.Cut,
		Opts:             e.cfg.DistOpts,
	})
	if err != nil {
		return fmt.Errorf("sim: starting dist router: %w", err)
	}
	e.distRouter = r
	e.distReqs = make([][]GlobalMsg, e.nShards)
	return nil
}

// deliverRound is the round boundary used by the step loop: in-process
// sharded delivery normally, routed delivery under EngineDist.
func (e *engine) deliverRound() int {
	if e.distMode {
		return e.deliverDist()
	}
	return e.deliverSharded()
}

// deliverDist is the EngineDist round boundary. It mirrors
// deliverSharded/runShard exactly — same inbox buffers, same Metrics
// accounting, same failure messages — except that global messages travel
// through the router and come back in worker-sorted delivery order.
func (e *engine) deliverDist() int {
	e.generation++
	gen := e.generation & 1
	finished := 0
	maxSend := 0

	// Pass 1 (runShard's reset loop, over all nodes at once): recycle the
	// inbox buffers of the generation about to be delivered, count newly
	// finished nodes, and fold the per-node send loads.
	for _, env := range e.envs {
		if len(env.inLocalBuf[gen]) > 0 {
			env.inLocalBuf[gen] = env.inLocalBuf[gen][:0]
		}
		if len(env.inGlobalBuf[gen]) > 0 {
			env.inGlobalBuf[gen] = env.inGlobalBuf[gen][:0]
		}
		if env.finished && !env.countedFinished {
			env.countedFinished = true
			finished++
		}
		if env.globalSentThisRound > 0 {
			if env.globalSentThisRound > maxSend {
				maxSend = env.globalSentThisRound
			}
			env.globalSentThisRound = 0
		}
	}
	if maxSend > e.metrics.MaxGlobalSend {
		e.metrics.MaxGlobalSend = maxSend
	}

	// Pass 2 (runShard's drain loop): deliver local messages in-process and
	// collect each shard's global request batch in staging order.
	for k := 0; k < e.nShards; k++ {
		e.distReqs[k] = e.distReqs[k][:0]
		dirty := e.dirty[k]
		for s := 0; s < e.n; s++ {
			if !dirty[s] {
				continue
			}
			dirty[s] = false
			env := e.envs[s]
			for _, out := range env.outLocalSh[k] {
				dst := e.envs[out.to]
				dst.inLocalBuf[gen] = append(dst.inLocalBuf[gen], LocalMsg{From: s, Payload: out.payload})
				e.metrics.LocalMsgs++
				e.metrics.LocalBits += payloadWords(out.payload) * int64(e.logN)
			}
			env.outLocalSh[k] = env.outLocalSh[k][:0]
			e.distReqs[k] = append(e.distReqs[k], env.outGlobalSh[k]...)
			env.outGlobalSh[k] = env.outGlobalSh[k][:0]
		}
	}

	streams, stats, err := e.distRouter.RouteRound(e.generation, e.distReqs)
	if err != nil {
		e.fail(fmt.Errorf("sim: dist delivery failed in generation %d: %w", e.generation, err))
		return finished
	}

	// Fold the sorted delivery streams back into the inboxes, validating
	// that every message landed in its own shard.
	var delivered int64
	for k, stream := range streams {
		lo := k * e.shardSize
		hi := lo + e.shardSize
		if hi > e.n {
			hi = e.n
		}
		for _, m := range stream {
			if m.Dst < lo || m.Dst >= hi {
				e.fail(fmt.Errorf("sim: dist router returned message for node %d outside shard %d [%d,%d)",
					m.Dst, k, lo, hi))
				return finished
			}
			env := e.envs[m.Dst]
			env.inGlobalBuf[gen] = append(env.inGlobalBuf[gen], m)
			delivered++
		}
	}
	if stats.GlobalMsgs != delivered {
		e.fail(fmt.Errorf("sim: dist router stats claim %d global messages, streams carry %d",
			stats.GlobalMsgs, delivered))
		return finished
	}

	e.metrics.GlobalMsgs += delivered
	e.metrics.GlobalBits += delivered * e.msgBits
	e.metrics.CutGlobalMsgs += stats.CutMsgs
	e.metrics.CutGlobalBits += stats.CutMsgs * e.msgBits
	if stats.MaxRecv > e.metrics.MaxGlobalRecv {
		e.metrics.MaxGlobalRecv = stats.MaxRecv
	}
	if stats.ViolDst >= 0 {
		f := e.cfg.StrictRecvFactor
		e.fail(fmt.Errorf("sim: node %d received %d global messages in generation %d, cap %d",
			stats.ViolDst, stats.ViolCount, e.generation, f*e.logN))
	}
	return finished
}
