package dist

import (
	"sync"
	"time"
)

// Fault injection: a Faults plan is consulted by the coordinator at every
// request-send attempt, so tests can drop a frame (the reply wait times
// out and the bounded retry path resends), delay a frame, or kill a
// worker process at a chosen round (the connection error triggers the
// respawn + replay path). The plan is mutex-protected because RouteRound
// sends to the shards from parallel goroutines.

type faultKind int

const (
	faultDrop faultKind = iota
	faultDelay
	faultKill
)

type faultRule struct {
	kind      faultKind
	shard     int
	round     int
	remaining int
	delay     time.Duration
}

// Faults is a scripted fault plan. The zero value (and a nil *Faults)
// injects nothing. Builders are chainable:
//
//	dist.NewFaults().DropFrames(1, 3, 2).KillWorker(0, 7)
type Faults struct {
	mu       sync.Mutex
	rules    []faultRule
	dropped  int
	delayed  int
	killed   int
	respawns int
}

// FaultStats reports what a plan actually injected (and, for Respawns,
// what the coordinator did about it).
type FaultStats struct {
	Dropped  int
	Delayed  int
	Killed   int
	Respawns int
}

// NewFaults returns an empty plan.
func NewFaults() *Faults { return &Faults{} }

// DropFrames suppresses the next count request frames sent to shard at
// the given round: the coordinator skips the write, so its reply wait
// times out and the retry path kicks in.
func (f *Faults) DropFrames(shard, round, count int) *Faults {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, faultRule{kind: faultDrop, shard: shard, round: round, remaining: count})
	return f
}

// DelayFrame sleeps d before the next request frame sent to shard at the
// given round.
func (f *Faults) DelayFrame(shard, round int, d time.Duration) *Faults {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, faultRule{kind: faultDelay, shard: shard, round: round, remaining: 1, delay: d})
	return f
}

// KillWorker kills shard's worker process immediately before the request
// for the given round is sent, exercising the respawn + replay path.
func (f *Faults) KillWorker(shard, round int) *Faults {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, faultRule{kind: faultKill, shard: shard, round: round, remaining: 1})
	return f
}

// Stats snapshots what has been injected so far.
func (f *Faults) Stats() FaultStats {
	if f == nil {
		return FaultStats{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return FaultStats{Dropped: f.dropped, Delayed: f.delayed, Killed: f.killed, Respawns: f.respawns}
}

// faultAction is what one send attempt must suffer.
type faultAction struct {
	drop  bool
	kill  bool
	delay time.Duration
}

// onSend consumes the rules matching one (shard, round) send attempt.
// Safe on a nil plan.
func (f *Faults) onSend(shard, round int) faultAction {
	if f == nil {
		return faultAction{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var act faultAction
	for i := range f.rules {
		r := &f.rules[i]
		if r.remaining == 0 || r.shard != shard || r.round != round {
			continue
		}
		r.remaining--
		switch r.kind {
		case faultDrop:
			act.drop = true
			f.dropped++
		case faultDelay:
			act.delay += r.delay
			f.delayed++
		case faultKill:
			act.kill = true
			f.killed++
		}
	}
	return act
}

// noteRespawn records that the coordinator respawned a worker. Safe on a
// nil plan (respawns without an active fault plan are simply not counted).
func (f *Faults) noteRespawn() {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.respawns++
	f.mu.Unlock()
}
