// Package wire is the framing layer of the distributed round engine: it
// encodes the coordinator/worker protocol of internal/dist as
// self-delimiting, checksummed frames over any byte stream.
//
// Every frame is laid out as
//
//	u32 LE  length    bytes after this field (min 12, max MaxFrameLen)
//	u64 LE  checksum  FNV-64a over everything after this field
//	u8      type      FrameType
//	u8      flags     bit 0: payload is flate-compressed
//	uvarint round     round number the frame belongs to (0 for control)
//	uvarint shard     shard id the frame addresses or originates from
//	bytes   payload   type-specific body (see batch.go)
//
// The length prefix is validated against MaxFrameLen — and, when decoding
// from a buffer, against the bytes actually present — BEFORE any
// allocation, so a corrupt or hostile prefix can never drive a huge
// allocation. The checksum covers the compressed bytes on the wire;
// payloads at or above compressThreshold are deflated with the same
// flate.BestSpeed setting the v2 snapshot cache uses, and kept raw when
// compression does not shrink them.
package wire

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
)

// Protocol generations. A connection speaks exactly one version,
// negotiated during the Join/Hello handshake: each peer advertises the
// [min, max] range its build supports and the pair settles on the highest
// version common to both ranges, so old and new builds keep interoperating
// during a rolling upgrade and truly incompatible pairs fail with an
// explicit range error instead of silent garbage.
//
//   - ProtoV1 is the original lockstep protocol: one round in flight per
//     worker, a single-slot reply cache, 9-field Hello.
//   - ProtoV2 adds round pipelining: the Hello carries the coordinator's
//     send window, the worker keeps a reply ring keyed by round (so a
//     retransmit of any in-window round is answered byte-stably), and the
//     coordinator may ship round r+1 before round r's reply has drained.
const (
	ProtoV1 = 1
	ProtoV2 = 2

	// ProtoMin and ProtoMax bound the versions this build speaks.
	ProtoMin = ProtoV1
	ProtoMax = ProtoV2
)

// ProtoVersion is the base protocol generation every build speaks; legacy
// single-version handshake payloads carry it.
const ProtoVersion = ProtoV1

// Negotiate returns the highest protocol version inside both peers'
// advertised [min, max] ranges, or an error naming both ranges when they
// do not intersect.
func Negotiate(aMin, aMax, bMin, bMax int) (int, error) {
	hi := aMax
	if bMax < hi {
		hi = bMax
	}
	lo := aMin
	if bMin > lo {
		lo = bMin
	}
	if hi < lo {
		return 0, fmt.Errorf("wire: no common protocol version: [%d,%d] vs [%d,%d]", aMin, aMax, bMin, bMax)
	}
	return hi, nil
}

// MaxFrameLen bounds the length prefix: no frame body may exceed 64 MiB,
// compressed or decompressed. The bound exists so length validation can
// run before allocation.
const MaxFrameLen = 1 << 26

// minFrameLen is the smallest well-formed body: checksum (8) + type +
// flags + one-byte round + one-byte shard.
const minFrameLen = 12

// compressThreshold is the payload size at which AppendFrame attempts
// flate compression; staged message batches of large rounds cross it,
// control frames never do.
const compressThreshold = 4096

// maxUvarintField bounds the round and shard uvarints so their int
// conversion cannot overflow on any platform.
const maxUvarintField = 1 << 40

// flagCompressed marks a deflated payload.
const flagCompressed = 0x01

// FrameType tags a frame's protocol meaning.
type FrameType uint8

// The protocol's frame types. Join is the worker's first frame after
// dialing (it routes the connection to a shard slot); Hello/HelloAck is
// the per-connection configuration handshake; Round/RoundReply carry one
// round's staged message batches; Heartbeat is both the worker's periodic
// liveness beacon and the coordinator's ping (a worker echoes one back);
// Shutdown ends a worker; Error reports a worker-side protocol failure.
const (
	FrameJoin FrameType = 1 + iota
	FrameHello
	FrameHelloAck
	FrameRound
	FrameRoundReply
	FrameHeartbeat
	FrameShutdown
	FrameError
)

// Frame is one decoded protocol frame. Payload is the decompressed body.
type Frame struct {
	Type    FrameType
	Round   int
	Shard   int
	Payload []byte
}

// ErrMalformed marks a frame that fails structural validation: a length
// prefix out of bounds or beyond the buffer, a checksum mismatch, or an
// undecodable body.
var ErrMalformed = errors.New("wire: malformed frame")

// AppendFrame encodes f and appends it to dst, returning the extended
// slice. Payloads at or above compressThreshold are flate-compressed when
// that shrinks them. Round and Shard must be non-negative.
func AppendFrame(dst []byte, f Frame) []byte {
	if f.Round < 0 || f.Shard < 0 {
		panic(fmt.Sprintf("wire: negative frame field (round %d, shard %d)", f.Round, f.Shard))
	}
	payload := f.Payload
	flags := byte(0)
	if len(payload) >= compressThreshold {
		if z := deflate(payload); len(z) < len(payload) {
			payload = z
			flags = flagCompressed
		}
	}

	var head [2 + 2*binary.MaxVarintLen64]byte
	head[0] = byte(f.Type)
	head[1] = flags
	hn := 2
	hn += binary.PutUvarint(head[hn:], uint64(f.Round))
	hn += binary.PutUvarint(head[hn:], uint64(f.Shard))

	bodyLen := 8 + hn + len(payload)
	if bodyLen > MaxFrameLen {
		panic(fmt.Sprintf("wire: frame body %d bytes exceeds MaxFrameLen", bodyLen))
	}
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(bodyLen))
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // checksum placeholder
	dst = append(dst, head[:hn]...)
	dst = append(dst, payload...)

	h := fnv.New64a()
	h.Write(dst[start+12:])
	binary.LittleEndian.PutUint64(dst[start+4:start+12], h.Sum64())
	return dst
}

// ReadFrame reads exactly one frame from r. The length prefix is bounded
// by MaxFrameLen before the body is allocated. Reads are plain (no
// buffering beyond the frame), so a caller alternating frames with other
// readers of the same stream stays in sync.
func ReadFrame(r io.Reader) (Frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Frame{}, err
	}
	bodyLen := binary.LittleEndian.Uint32(lenBuf[:])
	if bodyLen < minFrameLen || bodyLen > MaxFrameLen {
		return Frame{}, fmt.Errorf("%w: length prefix %d outside [%d, %d]",
			ErrMalformed, bodyLen, minFrameLen, MaxFrameLen)
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, fmt.Errorf("%w: truncated body: %v", ErrMalformed, err)
	}
	return parseBody(body)
}

// DecodeFrame decodes one frame from the front of data, returning the
// frame and the number of bytes consumed. A length prefix larger than the
// remaining buffer is rejected before anything is sliced or allocated.
func DecodeFrame(data []byte) (Frame, int, error) {
	if len(data) < 4 {
		return Frame{}, 0, fmt.Errorf("%w: short buffer", ErrMalformed)
	}
	bodyLen := binary.LittleEndian.Uint32(data[:4])
	if bodyLen < minFrameLen || bodyLen > MaxFrameLen {
		return Frame{}, 0, fmt.Errorf("%w: length prefix %d outside [%d, %d]",
			ErrMalformed, bodyLen, minFrameLen, MaxFrameLen)
	}
	if uint64(bodyLen) > uint64(len(data)-4) {
		return Frame{}, 0, fmt.Errorf("%w: length prefix %d exceeds %d remaining bytes",
			ErrMalformed, bodyLen, len(data)-4)
	}
	f, err := parseBody(data[4 : 4+bodyLen])
	if err != nil {
		return Frame{}, 0, err
	}
	return f, 4 + int(bodyLen), nil
}

// parseBody validates the checksum and decodes the header and payload of
// one frame body (everything after the length prefix).
func parseBody(body []byte) (Frame, error) {
	h := fnv.New64a()
	h.Write(body[8:])
	if want := binary.LittleEndian.Uint64(body[:8]); want != h.Sum64() {
		return Frame{}, fmt.Errorf("%w: checksum mismatch", ErrMalformed)
	}
	f := Frame{Type: FrameType(body[8])}
	flags := body[9]
	if flags&^byte(flagCompressed) != 0 {
		return Frame{}, fmt.Errorf("%w: unknown flags %#02x", ErrMalformed, flags)
	}
	pos := 10
	round, n := binary.Uvarint(body[pos:])
	if n <= 0 || round > maxUvarintField {
		return Frame{}, fmt.Errorf("%w: bad round field", ErrMalformed)
	}
	pos += n
	shard, n := binary.Uvarint(body[pos:])
	if n <= 0 || shard > maxUvarintField {
		return Frame{}, fmt.Errorf("%w: bad shard field", ErrMalformed)
	}
	pos += n
	f.Round = int(round)
	f.Shard = int(shard)
	payload := body[pos:]
	if flags&flagCompressed != 0 {
		raw, err := inflate(payload)
		if err != nil {
			return Frame{}, err
		}
		payload = raw
	}
	// Copy out of the read buffer so the frame owns its payload.
	f.Payload = append([]byte(nil), payload...)
	return f, nil
}

// deflate compresses data with the snapshot cache's flate setting.
func deflate(data []byte) []byte {
	var buf bytes.Buffer
	zw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return data
	}
	if _, err := zw.Write(data); err != nil || zw.Close() != nil {
		return data
	}
	return buf.Bytes()
}

// inflate decompresses a flagCompressed payload, capping the expansion at
// MaxFrameLen so a deflate bomb cannot blow past the frame bound.
func inflate(data []byte) ([]byte, error) {
	zr := flate.NewReader(bytes.NewReader(data))
	defer zr.Close()
	out, err := io.ReadAll(io.LimitReader(zr, MaxFrameLen+1))
	if err != nil {
		return nil, fmt.Errorf("%w: bad compressed payload: %v", ErrMalformed, err)
	}
	if len(out) > MaxFrameLen {
		return nil, fmt.Errorf("%w: compressed payload inflates past MaxFrameLen", ErrMalformed)
	}
	return out, nil
}
