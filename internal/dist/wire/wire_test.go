package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/persist"
	"repro/internal/sim"
)

func roundTripFrame(t *testing.T, f Frame) Frame {
	t.Helper()
	enc := AppendFrame(nil, f)
	got, n, err := DecodeFrame(enc)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d bytes", n, len(enc))
	}
	fromReader, err := ReadFrame(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if !reflect.DeepEqual(got, fromReader) {
		t.Fatalf("DecodeFrame and ReadFrame disagree: %+v vs %+v", got, fromReader)
	}
	return got
}

func TestFrameRoundTrip(t *testing.T) {
	cases := []Frame{
		{Type: FrameHeartbeat},
		{Type: FrameJoin, Shard: 3, Payload: AppendHandshake(nil, 3)},
		{Type: FrameRound, Round: 12345, Shard: 7, Payload: []byte("hello")},
		{Type: FrameError, Payload: []byte("boom")},
		{Type: FrameRound, Round: 1, Payload: bytes.Repeat([]byte("abcdefgh"), 2048)}, // compressible, > threshold
	}
	for i, f := range cases {
		got := roundTripFrame(t, f)
		if got.Type != f.Type || got.Round != f.Round || got.Shard != f.Shard || !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("case %d: round trip %+v -> %+v", i, f, got)
		}
	}
}

func TestFrameCompression(t *testing.T) {
	// Highly repetitive payload over the threshold must shrink on the wire.
	f := Frame{Type: FrameRound, Round: 2, Payload: bytes.Repeat([]byte{42}, 100_000)}
	enc := AppendFrame(nil, f)
	if len(enc) >= len(f.Payload) {
		t.Fatalf("encoded %d bytes for a %d-byte compressible payload", len(enc), len(f.Payload))
	}
	got := roundTripFrame(t, f)
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Fatal("compressed payload corrupted in round trip")
	}
	// Incompressible small payloads stay raw.
	small := Frame{Type: FrameRound, Round: 3, Payload: []byte{1, 2, 3}}
	if enc := AppendFrame(nil, small); enc[4+8+1]&0x01 != 0 {
		t.Fatal("small payload unexpectedly compressed")
	}
}

func TestFrameRejectsMalformed(t *testing.T) {
	valid := AppendFrame(nil, Frame{Type: FrameRound, Round: 9, Shard: 1, Payload: []byte("payload")})

	t.Run("short buffer", func(t *testing.T) {
		if _, _, err := DecodeFrame([]byte{1, 2}); !errors.Is(err, ErrMalformed) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("length exceeds buffer", func(t *testing.T) {
		// Claim a huge-but-legal body length with almost no bytes behind
		// it: must be rejected up front, before any allocation.
		hdr := binary.LittleEndian.AppendUint32(nil, MaxFrameLen)
		hdr = append(hdr, 0xab)
		_, _, err := DecodeFrame(hdr)
		if !errors.Is(err, ErrMalformed) || !strings.Contains(err.Error(), "remaining") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("length over MaxFrameLen", func(t *testing.T) {
		hdr := binary.LittleEndian.AppendUint32(nil, MaxFrameLen+1)
		if _, _, err := DecodeFrame(hdr); !errors.Is(err, ErrMalformed) {
			t.Fatalf("err = %v", err)
		}
		if _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrMalformed) {
			t.Fatalf("reader err not malformed")
		}
	})
	t.Run("checksum flip", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[len(bad)-1] ^= 0xff
		_, _, err := DecodeFrame(bad)
		if !errors.Is(err, ErrMalformed) || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("truncated stream", func(t *testing.T) {
		if _, err := ReadFrame(bytes.NewReader(valid[:len(valid)-2])); !errors.Is(err, ErrMalformed) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("unknown flags", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[4+8+1] = 0x80 // flags byte
		// Re-checksum so the flags check (not the checksum) fires.
		rebuild := AppendFrame(nil, Frame{Type: FrameRound, Round: 9, Shard: 1, Payload: []byte("payload")})
		rebuild[4+8+1] = 0x80
		fixChecksum(rebuild)
		_, _, err := DecodeFrame(rebuild)
		if !errors.Is(err, ErrMalformed) || !strings.Contains(err.Error(), "flags") {
			t.Fatalf("err = %v", err)
		}
		_ = bad
	})
	t.Run("bad compressed payload", func(t *testing.T) {
		enc := AppendFrame(nil, Frame{Type: FrameRound, Round: 1, Payload: []byte("xx")})
		enc[4+8+1] = 0x01 // claim compression over garbage
		fixChecksum(enc)
		if _, _, err := DecodeFrame(enc); !errors.Is(err, ErrMalformed) {
			t.Fatalf("err = %v", err)
		}
	})
}

// fixChecksum recomputes a frame's checksum after a test mutated its body.
func fixChecksum(frame []byte) {
	h := fnvSum(frame[12:])
	binary.LittleEndian.PutUint64(frame[4:12], h)
}

func fnvSum(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

func TestMsgsRoundTrip(t *testing.T) {
	msgs := []sim.GlobalMsg{
		{Src: 0, Dst: 5, Kind: 3, F0: -1, F1: 1 << 40, F2: 0, F3: 7},
		{Src: 9, Dst: 2, Kind: 65535, F0: 42, F1: -42, F2: 1, F3: -1},
	}
	for _, batch := range [][]sim.GlobalMsg{nil, msgs} {
		enc := AppendMsgs(nil, batch)
		got, err := DecodeMsgs(enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(batch) {
			t.Fatalf("decoded %d msgs, want %d", len(got), len(batch))
		}
		for i := range batch {
			if got[i] != batch[i] {
				t.Fatalf("msg %d: %+v != %+v", i, got[i], batch[i])
			}
		}
	}
}

func TestMsgsRejectsMalformed(t *testing.T) {
	valid := AppendMsgs(nil, []sim.GlobalMsg{{Src: 1, Dst: 2, Kind: 3}})
	t.Run("trailing bytes", func(t *testing.T) {
		if _, err := DecodeMsgs(append(valid, 0)); !errors.Is(err, ErrMalformed) {
			t.Fatal("trailing bytes accepted")
		}
	})
	t.Run("section exceeds buffer", func(t *testing.T) {
		// uvarint section length claiming far more than remains.
		bad := binary.AppendUvarint(nil, 1<<40)
		if _, err := DecodeMsgs(bad); !errors.Is(err, ErrMalformed) {
			t.Fatal("oversized section length accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := DecodeMsgs(valid[:len(valid)/2]); err == nil {
			t.Fatal("truncated batch accepted")
		}
	})
	t.Run("negative endpoint", func(t *testing.T) {
		// A raw column set with Src = -1.
		enc := AppendMsgs(nil, []sim.GlobalMsg{{Src: -1, Dst: 2}})
		if _, err := DecodeMsgs(enc); !errors.Is(err, ErrMalformed) {
			t.Fatal("negative src accepted")
		}
	})
}

func TestReplyRoundTrip(t *testing.T) {
	msgs := []sim.GlobalMsg{{Src: 3, Dst: 1, Kind: 2, F0: 9}}
	st := RoundStats{Msgs: 1, CutMsgs: 1, MaxRecv: 1, ViolDst: -1}
	enc := AppendReply(nil, msgs, st)
	gotMsgs, gotSt, err := DecodeReply(enc)
	if err != nil {
		t.Fatal(err)
	}
	if gotSt != st || len(gotMsgs) != 1 || gotMsgs[0] != msgs[0] {
		t.Fatalf("reply round trip: %+v %+v", gotMsgs, gotSt)
	}
	// Stats/batch disagreement is rejected.
	bad := AppendReply(nil, msgs, RoundStats{Msgs: 2, ViolDst: -1})
	if _, _, err := DecodeReply(bad); !errors.Is(err, ErrMalformed) {
		t.Fatal("stats/batch count mismatch accepted")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	cases := []Hello{
		// V1 hellos (9-int legacy layout; Window defaults to 1 on decode).
		{Proto: ProtoV1, N: 100, LogN: 7, Shard: 2, Lo: 50, Hi: 75, StrictRecvFactor: 2, HeartbeatMillis: 500, Window: 1},
		{Proto: ProtoV1, N: 4, LogN: 2, Shard: 0, Lo: 0, Hi: 4, Window: 1, Cut: []bool{true, false, false, true}},
		// V2 hellos carry the pipelining window explicitly.
		{Proto: ProtoV2, N: 100, LogN: 7, Shard: 2, Lo: 50, Hi: 75, StrictRecvFactor: 2, HeartbeatMillis: 500, Window: 8},
		{Proto: ProtoV2, N: 4, LogN: 2, Shard: 0, Lo: 0, Hi: 4, Window: 1, Cut: []bool{true, false, false, true}},
	}
	for i, h := range cases {
		enc := AppendHello(nil, h)
		got, err := DecodeHello(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, h) {
			t.Fatalf("case %d: %+v != %+v", i, got, h)
		}
		// A v1 hello must keep the original 9-int layout so old builds
		// can decode it; the window field only appears at v2.
		if h.Proto == ProtoV1 && !reflect.DeepEqual(enc, AppendHello(nil, Hello{
			Proto: h.Proto, N: h.N, LogN: h.LogN, Shard: h.Shard, Lo: h.Lo, Hi: h.Hi,
			StrictRecvFactor: h.StrictRecvFactor, HeartbeatMillis: h.HeartbeatMillis, Cut: h.Cut,
		})) {
			t.Fatalf("case %d: v1 hello encoding not window-independent", i)
		}
	}
	if _, err := DecodeHello([]byte{0xff}); !errors.Is(err, ErrMalformed) {
		t.Fatal("garbage hello accepted")
	}
	// A 10-int (windowed) hello claiming protocol v1 is structural
	// nonsense and must be rejected.
	bad := appendSection(nil, persist.PackInt64s([]int64{ProtoV1, 8, 3, 0, 0, 8, 0, 0, 4, 0}))
	if _, err := DecodeHello(bad); !errors.Is(err, ErrMalformed) {
		t.Fatalf("windowed hello claiming v1 accepted: %v", err)
	}
	// A windowed hello with a zero window is likewise malformed.
	bad = appendSection(nil, persist.PackInt64s([]int64{ProtoV2, 8, 3, 0, 0, 8, 0, 0, 0, 0}))
	if _, err := DecodeHello(bad); !errors.Is(err, ErrMalformed) {
		t.Fatalf("zero-window hello accepted: %v", err)
	}
}

func TestHandshakeRoundTrip(t *testing.T) {
	// Legacy 2-value form: decodes as a single-version range.
	hs, err := DecodeHandshake(AppendHandshake(nil, 5))
	if err != nil || hs.Min != ProtoVersion || hs.Max != ProtoVersion || hs.Shard != 5 {
		t.Fatalf("legacy handshake round trip: %+v %v", hs, err)
	}
	// Versioned 3-value form, including an unpinned (AnyShard) worker.
	for _, c := range []Handshake{
		{Min: ProtoMin, Max: ProtoMax, Shard: 3},
		{Min: 1, Max: 1, Shard: 0},
		{Min: 2, Max: 9, Shard: AnyShard},
	} {
		got, err := DecodeHandshake(AppendHandshakeRange(nil, c.Min, c.Max, c.Shard))
		if err != nil || got != c {
			t.Fatalf("handshake range round trip: %+v -> %+v %v", c, got, err)
		}
	}
	if _, err := DecodeHandshake([]byte{3, 1}); err == nil {
		t.Fatal("garbage handshake accepted")
	}
	// Inverted range and out-of-range shard are rejected.
	if _, err := DecodeHandshake(AppendHandshakeRange(nil, 3, 2, 0)); err == nil {
		t.Fatal("inverted version range accepted")
	}
	if _, err := DecodeHandshake(AppendHandshakeRange(nil, 1, 2, -7)); err == nil {
		t.Fatal("negative non-AnyShard shard accepted")
	}
}

func TestNegotiate(t *testing.T) {
	cases := []struct {
		aMin, aMax, bMin, bMax int
		want                   int
		wantErr                bool
	}{
		{1, 1, 1, 1, 1, false}, // same old build on both sides
		{1, 2, 1, 2, 2, false}, // same new build: highest version wins
		{1, 1, 1, 2, 1, false}, // old coordinator, new worker
		{1, 2, 1, 1, 1, false}, // new coordinator, old worker
		{1, 2, 2, 3, 2, false}, // overlapping ranges
		{1, 1, 2, 3, 0, true},  // disjoint: incompatible builds
		{3, 4, 1, 2, 0, true},  // disjoint the other way
		{2, 2, 1, 3, 2, false}, // pinned version inside the peer's range
	}
	for i, c := range cases {
		got, err := Negotiate(c.aMin, c.aMax, c.bMin, c.bMax)
		if (err != nil) != c.wantErr || got != c.want {
			t.Fatalf("case %d: Negotiate(%d,%d,%d,%d) = %d, %v", i, c.aMin, c.aMax, c.bMin, c.bMax, got, err)
		}
		if c.wantErr && !strings.Contains(err.Error(), "no common protocol version") {
			t.Fatalf("case %d: error %q does not name the version conflict", i, err)
		}
	}
}

// FuzzDistWire feeds arbitrary bytes to every decoder in the package
// (none may panic or over-allocate) and, when a frame does decode,
// re-encodes and re-decodes it to assert the codec round-trips.
func FuzzDistWire(f *testing.F) {
	f.Add(AppendFrame(nil, Frame{Type: FrameHeartbeat}))
	f.Add(AppendFrame(nil, Frame{Type: FrameJoin, Shard: 1, Payload: AppendHandshake(nil, 1)}))
	f.Add(AppendFrame(nil, Frame{Type: FrameJoin, Shard: 1, Payload: AppendHandshakeRange(nil, ProtoMin, ProtoMax, 1)}))
	f.Add(AppendFrame(nil, Frame{Type: FrameJoin, Shard: 0, Payload: AppendHandshakeRange(nil, ProtoMin, ProtoMax, AnyShard)}))
	f.Add(AppendFrame(nil, Frame{
		Type: FrameRound, Round: 3, Shard: 0,
		Payload: AppendMsgs(nil, []sim.GlobalMsg{{Src: 1, Dst: 2, Kind: 3, F0: -9}}),
	}))
	f.Add(AppendFrame(nil, Frame{
		Type: FrameRoundReply, Round: 3, Shard: 0,
		Payload: AppendReply(nil, []sim.GlobalMsg{{Src: 1, Dst: 2}}, RoundStats{Msgs: 1, ViolDst: -1}),
	}))
	f.Add(AppendFrame(nil, Frame{
		Type:    FrameHello,
		Payload: AppendHello(nil, Hello{Proto: ProtoVersion, N: 8, LogN: 3, Hi: 8, Cut: []bool{true, false, true, false, true, false, true, false}}),
	}))
	f.Add(AppendFrame(nil, Frame{
		Type:    FrameHello,
		Payload: AppendHello(nil, Hello{Proto: ProtoV2, N: 8, LogN: 3, Hi: 8, Window: 4, Cut: []bool{true, false, true, false, true, false, true, false}}),
	}))
	f.Add([]byte{0xff, 0xff, 0xff, 0x03}) // huge length prefix, no body
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, n, err := DecodeFrame(data)
		if err == nil {
			if n <= 0 || n > len(data) {
				t.Fatalf("consumed %d of %d", n, len(data))
			}
			re := AppendFrame(nil, frame)
			back, _, err := DecodeFrame(re)
			if err != nil {
				t.Fatalf("re-decode of re-encoded frame failed: %v", err)
			}
			if back.Type != frame.Type || back.Round != frame.Round || back.Shard != frame.Shard ||
				!bytes.Equal(back.Payload, frame.Payload) {
				t.Fatalf("re-encode round trip changed the frame: %+v vs %+v", frame, back)
			}
		}
		// The payload decoders must never panic on arbitrary bytes.
		DecodeMsgs(data)
		DecodeReply(data)
		DecodeHello(data)
		DecodeHandshake(data)
		ReadFrame(bytes.NewReader(data))
	})
}
