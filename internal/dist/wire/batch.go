// Frame payload codecs: the type-specific bodies carried inside the
// frames of wire.go. Every multi-part payload is a sequence of
// uvarint-length-prefixed sections, each holding one persist varint
// stream (PackInt64s / PackSorted), because the persist decoders demand
// exact buffer consumption — the prefix lets each section be sliced to
// precisely its own bytes. Message batches are encoded column-wise (all
// Src values, then all Dst values, ...) so the zigzag varints see runs of
// small, similar numbers.
package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/persist"
	"repro/internal/sim"
)

// maxBatchMsgs bounds a decoded batch; with 7 columns of one varint byte
// minimum this is far beyond what a MaxFrameLen frame can carry, so it
// only guards against pathological decoded column lengths.
const maxBatchMsgs = 1 << 28

// maxNodeID bounds decoded Src/Dst values. Receivers re-validate against
// the actual shard range; this bound only keeps corrupt values from
// overflowing downstream int arithmetic.
const maxNodeID = 1 << 31

// AppendMsgs appends the column-wise encoding of ms to dst: seven
// sections (Src, Dst, Kind, F0..F3), each a length-prefixed PackInt64s
// stream.
func AppendMsgs(dst []byte, ms []sim.GlobalMsg) []byte {
	col := make([]int64, len(ms))
	for c := 0; c < 7; c++ {
		for i, m := range ms {
			switch c {
			case 0:
				col[i] = int64(m.Src)
			case 1:
				col[i] = int64(m.Dst)
			case 2:
				col[i] = int64(m.Kind)
			case 3:
				col[i] = m.F0
			case 4:
				col[i] = m.F1
			case 5:
				col[i] = m.F2
			default:
				col[i] = m.F3
			}
		}
		dst = appendSection(dst, persist.PackInt64s(col))
	}
	return dst
}

// DecodeMsgs decodes a full-buffer message batch written by AppendMsgs.
func DecodeMsgs(data []byte) ([]sim.GlobalMsg, error) {
	ms, pos, err := decodeMsgSections(data, 0)
	if err != nil {
		return nil, err
	}
	if pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes after message batch", ErrMalformed, len(data)-pos)
	}
	return ms, nil
}

// decodeMsgSections decodes the seven message columns starting at pos and
// returns the batch plus the position after it.
func decodeMsgSections(data []byte, pos int) ([]sim.GlobalMsg, int, error) {
	var cols [7][]int64
	for c := range cols {
		sec, next, err := nextSection(data, pos)
		if err != nil {
			return nil, 0, err
		}
		cols[c], err = persist.UnpackInt64s(sec)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: message column %d: %v", ErrMalformed, c, err)
		}
		if len(cols[c]) != len(cols[0]) {
			return nil, 0, fmt.Errorf("%w: message column %d has %d entries, want %d",
				ErrMalformed, c, len(cols[c]), len(cols[0]))
		}
		pos = next
	}
	n := len(cols[0])
	if n > maxBatchMsgs {
		return nil, 0, fmt.Errorf("%w: message batch of %d exceeds bound", ErrMalformed, n)
	}
	ms := make([]sim.GlobalMsg, n)
	for i := range ms {
		src, dstID, kind := cols[0][i], cols[1][i], cols[2][i]
		if src < 0 || src > maxNodeID || dstID < 0 || dstID > maxNodeID {
			return nil, 0, fmt.Errorf("%w: message %d has endpoint out of range (src %d, dst %d)",
				ErrMalformed, i, src, dstID)
		}
		if kind < 0 || kind > int64(^uint16(0)) {
			return nil, 0, fmt.Errorf("%w: message %d kind %d outside uint16", ErrMalformed, i, kind)
		}
		ms[i] = sim.GlobalMsg{
			Src: int(src), Dst: int(dstID), Kind: sim.Kind(kind),
			F0: cols[3][i], F1: cols[4][i], F2: cols[5][i], F3: cols[6][i],
		}
	}
	return ms, pos, nil
}

// RoundStats is the per-shard accounting a worker computes while sorting
// one round's batch; the coordinator folds it into sim.DistRoundStats.
// ViolDst is -1 when no destination exceeded the strict receive cap.
type RoundStats struct {
	Msgs      int64
	CutMsgs   int64
	MaxRecv   int64
	ViolDst   int64
	ViolCount int64
}

// AppendReply appends a RoundReply payload: the stats section followed by
// the delivery-ordered message columns.
func AppendReply(dst []byte, ms []sim.GlobalMsg, st RoundStats) []byte {
	stats := persist.PackInt64s([]int64{st.Msgs, st.CutMsgs, st.MaxRecv, st.ViolDst, st.ViolCount})
	dst = appendSection(dst, stats)
	return AppendMsgs(dst, ms)
}

// DecodeReply decodes a full RoundReply payload.
func DecodeReply(data []byte) ([]sim.GlobalMsg, RoundStats, error) {
	sec, pos, err := nextSection(data, 0)
	if err != nil {
		return nil, RoundStats{}, err
	}
	vals, err := persist.UnpackInt64s(sec)
	if err != nil || len(vals) != 5 {
		return nil, RoundStats{}, fmt.Errorf("%w: bad reply stats section", ErrMalformed)
	}
	st := RoundStats{Msgs: vals[0], CutMsgs: vals[1], MaxRecv: vals[2], ViolDst: vals[3], ViolCount: vals[4]}
	ms, pos, err := decodeMsgSections(data, pos)
	if err != nil {
		return nil, RoundStats{}, err
	}
	if pos != len(data) {
		return nil, RoundStats{}, fmt.Errorf("%w: %d trailing bytes after reply", ErrMalformed, len(data)-pos)
	}
	if st.Msgs != int64(len(ms)) {
		return nil, RoundStats{}, fmt.Errorf("%w: reply stats claim %d messages, batch has %d",
			ErrMalformed, st.Msgs, len(ms))
	}
	return ms, st, nil
}

// Hello is the coordinator's per-connection configuration handshake: the
// static facts a worker needs to sort and validate every round of its
// shard. HeartbeatMillis <= 0 disables the worker's liveness beacon.
// Proto is the version negotiated from the Join's advertised range; it
// selects the encoding: a ProtoV1 hello is the legacy 9-field form a
// version-1 peer can parse, a ProtoV2 hello additionally carries Window,
// the round-pipelining depth the worker must size its reply ring for
// (<= 1 means lockstep).
type Hello struct {
	Proto            int
	N                int
	LogN             int
	Shard            int
	Lo, Hi           int // the shard's node range [Lo, Hi)
	StrictRecvFactor int // 0: no receive cap enforcement
	HeartbeatMillis  int
	Window           int    // pipelining window (ProtoV2+; <= 1: lockstep)
	Cut              []bool // global-edge cut marks, nil when unused
}

// AppendHello appends the Hello payload: a fixed int section plus an
// optional PackSorted section listing the true indices of Cut. The fixed
// section has 9 values in the ProtoV1 form and 10 (Window inserted before
// the cut marker) from ProtoV2 on.
func AppendHello(dst []byte, h Hello) []byte {
	hasCut := int64(0)
	if h.Cut != nil {
		hasCut = 1
	}
	ints := []int64{
		int64(h.Proto), int64(h.N), int64(h.LogN), int64(h.Shard),
		int64(h.Lo), int64(h.Hi), int64(h.StrictRecvFactor),
		int64(h.HeartbeatMillis),
	}
	if h.Proto >= ProtoV2 {
		w := h.Window
		if w < 1 {
			w = 1
		}
		ints = append(ints, int64(w))
	}
	ints = append(ints, hasCut)
	dst = appendSection(dst, persist.PackInt64s(ints))
	if h.Cut != nil {
		idx := make([]int, 0, len(h.Cut))
		for i, c := range h.Cut {
			if c {
				idx = append(idx, i)
			}
		}
		dst = appendSection(dst, persist.PackSorted(idx))
	}
	return dst
}

// DecodeHello decodes a full Hello payload, accepting both the legacy
// 9-value ProtoV1 form (Window defaults to 1) and the 10-value ProtoV2+
// form.
func DecodeHello(data []byte) (Hello, error) {
	sec, pos, err := nextSection(data, 0)
	if err != nil {
		return Hello{}, err
	}
	vals, err := persist.UnpackInt64s(sec)
	if err != nil || (len(vals) != 9 && len(vals) != 10) {
		return Hello{}, fmt.Errorf("%w: bad hello section", ErrMalformed)
	}
	for i, v := range vals[:len(vals)-1] {
		if v < 0 || v > maxNodeID {
			return Hello{}, fmt.Errorf("%w: hello field %d out of range (%d)", ErrMalformed, i, v)
		}
	}
	h := Hello{
		Proto: int(vals[0]), N: int(vals[1]), LogN: int(vals[2]), Shard: int(vals[3]),
		Lo: int(vals[4]), Hi: int(vals[5]), StrictRecvFactor: int(vals[6]),
		HeartbeatMillis: int(vals[7]), Window: 1,
	}
	if len(vals) == 10 {
		if h.Proto < ProtoV2 {
			return Hello{}, fmt.Errorf("%w: windowed hello claims protocol %d", ErrMalformed, h.Proto)
		}
		if vals[8] < 1 {
			return Hello{}, fmt.Errorf("%w: hello window %d", ErrMalformed, vals[8])
		}
		h.Window = int(vals[8])
	}
	if vals[len(vals)-1] != 0 {
		sec, pos, err = nextSection(data, pos)
		if err != nil {
			return Hello{}, err
		}
		idx, err := persist.UnpackSorted(sec)
		if err != nil {
			return Hello{}, fmt.Errorf("%w: bad hello cut section: %v", ErrMalformed, err)
		}
		h.Cut = make([]bool, h.N)
		for _, i := range idx {
			if i < 0 || i >= h.N {
				return Hello{}, fmt.Errorf("%w: cut index %d outside n=%d", ErrMalformed, i, h.N)
			}
			h.Cut[i] = true
		}
	}
	if pos != len(data) {
		return Hello{}, fmt.Errorf("%w: %d trailing bytes after hello", ErrMalformed, len(data)-pos)
	}
	return h, nil
}

// AnyShard is the shard value a listen-mode worker announces when it has
// no pinned shard: the coordinator's connect list decides which shard the
// connection serves.
const AnyShard = -1

// Handshake is a decoded Join / HelloAck payload: the version range the
// peer speaks and the shard it claims (AnyShard: unpinned).
type Handshake struct {
	Min, Max int
	Shard    int
}

// AppendHandshake appends the legacy single-version Join / HelloAck
// payload a version-1 peer emits: [ProtoV1, shard].
func AppendHandshake(dst []byte, shard int) []byte {
	return appendSection(dst, persist.PackInt64s([]int64{ProtoVersion, int64(shard)}))
}

// AppendHandshakeRange appends the versioned Join / HelloAck payload:
// [min, max, shard], advertising the whole range the sender speaks so the
// receiver can negotiate the highest common version.
func AppendHandshakeRange(dst []byte, min, max, shard int) []byte {
	return appendSection(dst, persist.PackInt64s([]int64{int64(min), int64(max), int64(shard)}))
}

// DecodeHandshake decodes a Join / HelloAck payload. The two-value legacy
// form decodes as Min == Max == the announced version, so old and new
// peers negotiate through the same path.
func DecodeHandshake(data []byte) (Handshake, error) {
	sec, pos, err := nextSection(data, 0)
	if err != nil {
		return Handshake{}, err
	}
	vals, err := persist.UnpackInt64s(sec)
	if err != nil || (len(vals) != 2 && len(vals) != 3) {
		return Handshake{}, fmt.Errorf("%w: bad handshake section", ErrMalformed)
	}
	if pos != len(data) {
		return Handshake{}, fmt.Errorf("%w: trailing bytes after handshake", ErrMalformed)
	}
	var h Handshake
	if len(vals) == 2 {
		h = Handshake{Min: int(vals[0]), Max: int(vals[0]), Shard: int(vals[1])}
	} else {
		h = Handshake{Min: int(vals[0]), Max: int(vals[1]), Shard: int(vals[2])}
	}
	if h.Min < 1 || h.Min > maxNodeID || h.Max < h.Min || h.Max > maxNodeID {
		return Handshake{}, fmt.Errorf("%w: handshake version range [%d,%d] out of range", ErrMalformed, h.Min, h.Max)
	}
	if h.Shard < AnyShard || h.Shard > maxNodeID {
		return Handshake{}, fmt.Errorf("%w: handshake shard %d out of range", ErrMalformed, h.Shard)
	}
	return h, nil
}

// appendSection appends one uvarint-length-prefixed byte section.
func appendSection(dst, sec []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(sec)))
	return append(dst, sec...)
}

// nextSection slices the length-prefixed section starting at pos,
// validating the prefix against the remaining buffer before slicing.
func nextSection(data []byte, pos int) ([]byte, int, error) {
	l, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("%w: bad section length prefix", ErrMalformed)
	}
	if l > uint64(len(data)-pos-n) {
		return nil, 0, fmt.Errorf("%w: section length %d exceeds %d remaining bytes",
			ErrMalformed, l, len(data)-pos-n)
	}
	start := pos + n
	return data[start : start+int(l)], start + int(l), nil
}
