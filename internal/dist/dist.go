// Package dist is the multi-process distributed round engine behind
// sim.EngineDist: a coordinator-side Router that runs one worker process
// per shard, speaks the internal/dist/wire frame protocol to them (unix
// sockets by default, TCP optionally), and routes each round's staged
// global-message batches through the workers with per-frame timeouts,
// bounded retry/backoff, heartbeats, and kill/respawn/replay — all of it
// drivable from tests via the Faults injection hook.
//
// Workers come in two topologies. In spawn mode (the default) the Router
// listens, spawns one local worker process per shard, and each worker
// dials back in. In connect mode (Options.Connect) the direction
// reverses: pre-started workers — typically cmd/hybridworker -listen on
// other machines — accept, and the coordinator dials one address per
// shard, re-dialing on connection loss instead of respawning. Either way
// the Join/Hello handshake negotiates the highest protocol version both
// sides speak (see wire.Negotiate), and Options.Window > 1 lets the
// coordinator pipeline rounds over the WAN within a bounded window.
//
// Importing this package registers the Router as the sim package's
// DistRouter factory, which is what arms WithEngine(EngineDist) on the
// facade. Spawned worker processes are re-execs of the current binary,
// hijacked before main by an env-var check (see worker.go), so any
// program that can be a coordinator can be its own worker fleet.
package dist

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist/wire"
	"repro/internal/sim"
)

func init() {
	sim.RegisterDistRouter(func(cfg sim.DistRouterConfig) (sim.DistRouter, error) {
		return New(cfg)
	})
}

// Options tunes the router's transport and robustness envelope. The zero
// value of every field means its default.
type Options struct {
	// Faults is the test-driven fault-injection plan (nil: none).
	Faults *Faults
	// FrameTimeout bounds one reply wait per attempt (default 3s).
	FrameTimeout time.Duration
	// Retries is the total number of send attempts per round per worker
	// before the run aborts (default 4).
	Retries int
	// Backoff is the base retry backoff, doubled per attempt up to
	// maxBackoff (default 2ms).
	Backoff time.Duration
	// Transport selects "unix" (default) or "tcp" for spawn mode.
	// Ignored in connect mode, where each Connect address carries its own
	// transport prefix.
	Transport string
	// HeartbeatEvery is the worker liveness-beacon period (default 500ms;
	// negative disables heartbeats).
	HeartbeatEvery time.Duration
	// WorkerBin overrides the spawned worker executable (default: the
	// EnvWorkerBin variable, then the coordinator's own binary).
	WorkerBin string
	// Connect switches the router to connect mode: instead of spawning
	// local workers it dials these pre-started worker addresses
	// (scheme-prefixed, e.g. "tcp:10.0.0.7:9000"), one per shard in shard
	// order. The length must equal the worker count. On connection loss
	// the router re-dials the same address and replays the in-flight
	// rounds; if the remote worker is gone the run aborts with a clear
	// error instead of hanging.
	Connect []string
	// Bind sets the spawn-mode TCP listener's bind address (default
	// "127.0.0.1:0"), so a coordinator no longer assumes loopback.
	Bind string
	// Window is the round-pipelining depth: the coordinator may have up
	// to Window rounds in flight to each worker before a reply must
	// drain, amortizing WAN round trips across barrier-only rounds
	// (default 1: lockstep). Windows above 1 require both sides to
	// negotiate wire.ProtoV2; against a v1-only peer the window clamps to
	// 1. Clamped to [1, MaxWindow].
	Window int
	// ProtoMin and ProtoMax override the protocol version range this
	// coordinator advertises in its handshakes (0: the build defaults
	// wire.ProtoMin/wire.ProtoMax). Tests use them to pair current and
	// version-bumped peers; operators can pin a version during a rolling
	// upgrade.
	ProtoMin, ProtoMax int
	// MaxRespawns is the total respawn/re-dial budget across the whole
	// run, all shards combined: past it the run aborts with a clear
	// "worker flapping" error instead of respawning forever (default 8;
	// negative: unlimited). It is a soft bound under concurrent failures —
	// parallel shards may overshoot by one or two — but a flapping worker
	// burns through it within a round or two either way.
	MaxRespawns int
	// RunTimeout is the overall wall-clock deadline for the run: past it
	// every round trip aborts non-retryably (0: no deadline). It bounds
	// the worst case of per-frame timeouts × retries × respawns stacking
	// into an effectively hung run.
	RunTimeout time.Duration
}

// WithFaults returns an Options carrying the given fault plan — the
// hook tests hand to hybrid.WithDistOptions.
func WithFaults(f *Faults) *Options { return &Options{Faults: f} }

const (
	defaultFrameTimeout   = 3 * time.Second
	defaultRetries        = 4
	defaultBackoff        = 2 * time.Millisecond
	defaultHeartbeatEvery = 500 * time.Millisecond
	defaultMaxRespawns    = 8
	handshakeTimeout      = 10 * time.Second
	shutdownGrace         = 3 * time.Second

	// maxBackoff caps the exponential retry backoff so a large Retries
	// budget cannot shift the base into overflow (time.Duration is an
	// int64 of nanoseconds: left-shifting a millisecond-scale base ~44
	// bits wraps negative, and time.Sleep treats negative as zero — a
	// hot retry loop exactly when the system is already struggling).
	maxBackoff = 2 * time.Second

	// MaxWindow bounds Options.Window and with it the worker-side reply
	// ring a coordinator may demand.
	MaxWindow = 64
)

// backoffDelay is the bounded exponential backoff before resend attempt
// n (n >= 1): base << (n-1), clamped to maxBackoff, with the shift itself
// clamped so it can never overflow time.Duration.
func backoffDelay(base time.Duration, n int) time.Duration {
	if n < 1 {
		return 0
	}
	shift := n - 1
	if shift > 20 {
		shift = 20
	}
	d := base << shift
	if d <= 0 || d > maxBackoff {
		d = maxBackoff
	}
	return d
}

// resolveOptions fills defaults into a Config.DistOpts value.
func resolveOptions(v any) (Options, error) {
	var o Options
	switch t := v.(type) {
	case nil:
	case *Options:
		if t != nil {
			o = *t
		}
	case Options:
		o = t
	case *Faults:
		o.Faults = t
	default:
		return Options{}, fmt.Errorf("dist: unsupported DistOpts type %T (want *dist.Options)", v)
	}
	if o.FrameTimeout <= 0 {
		o.FrameTimeout = defaultFrameTimeout
	}
	if o.Retries <= 0 {
		o.Retries = defaultRetries
	}
	if o.Backoff <= 0 {
		o.Backoff = defaultBackoff
	}
	if o.HeartbeatEvery == 0 {
		o.HeartbeatEvery = defaultHeartbeatEvery
	}
	if o.MaxRespawns == 0 {
		o.MaxRespawns = defaultMaxRespawns
	}
	if o.Window < 1 {
		o.Window = 1
	}
	if o.Window > MaxWindow {
		o.Window = MaxWindow
	}
	if o.ProtoMin == 0 {
		o.ProtoMin = wire.ProtoMin
	}
	if o.ProtoMax == 0 {
		o.ProtoMax = wire.ProtoMax
	}
	if o.ProtoMin < 1 || o.ProtoMax < o.ProtoMin {
		return Options{}, fmt.Errorf("dist: bad protocol range [%d,%d]", o.ProtoMin, o.ProtoMax)
	}
	return o, nil
}

// countReader counts bytes read off a connection so a reply wait that
// times out can tell "no reply yet" (safe to resend on the same stream)
// from "timed out mid-frame" (the stream is desynced; the worker must be
// respawned).
type countReader struct {
	c net.Conn
	n int64
}

func (cr *countReader) Read(p []byte) (int, error) {
	n, err := cr.c.Read(p)
	cr.n += int64(n)
	return n, err
}

// worker is the coordinator's handle to one shard's worker connection —
// a spawned local process (cmd != nil) or a dialed remote one (addr is
// the re-dial address).
type worker struct {
	shard    int
	proto    int // negotiated protocol version
	addr     string
	cmd      *exec.Cmd
	waitCh   chan error
	conn     net.Conn
	cr       *countReader
	lastBeat atomic.Int64 // UnixNano of the last heartbeat seen

	// gotReplies parks replies that arrived ahead of their CollectRound
	// (a deeper-window round overtaking the awaited one, or a late reply
	// read during Ping). Keyed by round; guarded by the owning slot's mu.
	gotReplies map[int]wire.Frame
}

// kill forcefully ends the worker process (if we spawned one) and its
// connection.
func (w *worker) kill() {
	if w == nil {
		return
	}
	if w.cmd != nil && w.cmd.Process != nil {
		w.cmd.Process.Kill()
	}
	if w.conn != nil {
		w.conn.Close()
	}
}

// pendingReq is one in-flight round: the encoded request frame is kept
// until the reply is collected so a respawned or re-dialed worker can
// replay the whole window byte-identically.
type pendingReq struct {
	round int
	req   []byte
}

// slot is one shard's coordinator-side state. The worker handle is an
// atomic pointer so lock-free readers (LastHeartbeat) never race the
// respawn path, and mu serializes everything that touches the connection
// or the in-flight window: round trips, pings, respawn + replay.
type slot struct {
	mu      sync.Mutex
	w       atomic.Pointer[worker]
	pending []pendingReq // begun rounds awaiting collection, ascending
}

// joined is an accepted-but-unclaimed worker connection plus its
// negotiated protocol version.
type joined struct {
	conn  net.Conn
	proto int
}

// Router is the coordinator: it owns the worker connections and the
// per-round request/reply exchange. It implements sim.DistRouter.
type Router struct {
	cfg  sim.DistRouterConfig
	opts Options

	ln    *listener // spawn mode only; nil in connect mode
	slots []*slot

	// window is the effective pipelining depth after version negotiation
	// (clamped to 1 when any worker only speaks ProtoV1).
	window int
	// deferred holds the rounds begun but not yet collected under the
	// pipelining window. Only the engine goroutine touches it (RouteRound
	// and Flush are not concurrent with each other).
	deferred []int

	// pending holds accepted-but-unclaimed worker connections keyed by
	// the shard their Join frame announced; concurrent respawns of
	// different shards may be accepted in either order.
	acceptMu  sync.Mutex
	pendingMu map[int]joined

	respawns atomic.Int64
	closed   atomic.Bool

	// deadline is the absolute RunTimeout cutoff (zero: none), fixed at
	// New so retries and respawns cannot stretch a run unboundedly.
	deadline time.Time
}

// deadlineExceeded reports a non-retryable error once the run deadline
// has passed.
func (r *Router) deadlineExceeded() error {
	if !r.deadline.IsZero() && time.Now().After(r.deadline) {
		return fmt.Errorf("dist: run deadline (%v) exceeded", r.opts.RunTimeout)
	}
	return nil
}

// New builds a Router for cfg: in spawn mode it opens the listener,
// spawns one worker process per shard, and completes the handshake with
// each; in connect mode (Options.Connect) it dials the pre-started
// workers instead.
func New(cfg sim.DistRouterConfig) (*Router, error) {
	if cfg.Workers <= 0 || cfg.ShardSize <= 0 {
		return nil, fmt.Errorf("dist: bad router config (workers %d, shard size %d)", cfg.Workers, cfg.ShardSize)
	}
	opts, err := resolveOptions(cfg.Opts)
	if err != nil {
		return nil, err
	}
	if len(opts.Connect) > 0 && len(opts.Connect) != cfg.Workers {
		return nil, fmt.Errorf("dist: %d connect addresses for %d workers (one per shard required)",
			len(opts.Connect), cfg.Workers)
	}
	r := &Router{
		cfg:       cfg,
		opts:      opts,
		window:    opts.Window,
		slots:     make([]*slot, cfg.Workers),
		pendingMu: make(map[int]joined),
	}
	if opts.RunTimeout > 0 {
		r.deadline = time.Now().Add(opts.RunTimeout)
	}
	for k := range r.slots {
		r.slots[k] = &slot{}
	}
	if len(opts.Connect) == 0 {
		ln, err := newListener(opts.Transport, opts.Bind)
		if err != nil {
			return nil, err
		}
		r.ln = ln
	}
	for k := 0; k < cfg.Workers; k++ {
		w, err := r.startWorker(k)
		if err != nil {
			r.Close()
			return nil, err
		}
		r.slots[k].w.Store(w)
		if w.proto < wire.ProtoV2 {
			// A v1 peer keeps a single-slot reply cache; pipelining past
			// it would make retransmit replies non-cacheable, so the
			// whole fleet falls back to lockstep.
			r.window = 1
		}
	}
	return r, nil
}

// startWorker brings up shard k's worker by the mode the options select.
func (r *Router) startWorker(k int) (*worker, error) {
	if len(r.opts.Connect) > 0 {
		return r.dialWorker(k)
	}
	return r.spawnWorker(k)
}

// workerBin resolves the executable to spawn.
func (r *Router) workerBin() (string, error) {
	if r.opts.WorkerBin != "" {
		return r.opts.WorkerBin, nil
	}
	if env := os.Getenv(EnvWorkerBin); env != "" {
		return env, nil
	}
	return os.Executable()
}

// spawnWorker starts shard k's process, waits for it to join, and runs
// the Hello handshake.
func (r *Router) spawnWorker(k int) (*worker, error) {
	bin, err := r.workerBin()
	if err != nil {
		return nil, fmt.Errorf("dist: resolving worker binary: %w", err)
	}
	cmd := exec.Command(bin)
	cmd.Env = append(os.Environ(),
		fmt.Sprintf("%s=%s", envAddr, r.ln.addr),
		fmt.Sprintf("%s=%d", envShard, k),
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: starting worker %d (%s): %w", k, bin, err)
	}
	waitCh := make(chan error, 1)
	go func() { waitCh <- cmd.Wait() }()

	conn, proto, err := r.acceptFor(k)
	if err != nil {
		cmd.Process.Kill()
		<-waitCh
		return nil, err
	}
	w := &worker{shard: k, proto: proto, cmd: cmd, waitCh: waitCh,
		conn: conn, cr: &countReader{c: conn}, gotReplies: make(map[int]wire.Frame)}
	if err := r.handshake(w); err != nil {
		w.kill()
		<-waitCh
		return nil, err
	}
	return w, nil
}

// dialWorker connects to shard k's pre-started worker: dial the address,
// read the worker's Join announcement, negotiate a protocol version, and
// run the Hello handshake. Errors are immediate and explicit — a gone
// worker must surface as a clean abort, never a hang.
func (r *Router) dialWorker(k int) (*worker, error) {
	addr := r.opts.Connect[k]
	conn, err := dialAddr(addr)
	if err != nil {
		return nil, fmt.Errorf("dist: connecting to worker %d at %s: %w", k, addr, err)
	}
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	f, err := wire.ReadFrame(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil || f.Type != wire.FrameJoin {
		conn.Close()
		return nil, fmt.Errorf("dist: worker %d at %s: bad join announcement: %v", k, addr, err)
	}
	hs, err := wire.DecodeHandshake(f.Payload)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("dist: worker %d at %s: join handshake: %v", k, addr, err)
	}
	proto, err := wire.Negotiate(r.opts.ProtoMin, r.opts.ProtoMax, hs.Min, hs.Max)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("dist: worker %d at %s: %w", k, addr, err)
	}
	if hs.Shard != wire.AnyShard && hs.Shard != k {
		conn.Close()
		return nil, fmt.Errorf("dist: worker at %s is pinned to shard %d, dialed as shard %d", addr, hs.Shard, k)
	}
	w := &worker{shard: k, proto: proto, addr: addr,
		conn: conn, cr: &countReader{c: conn}, gotReplies: make(map[int]wire.Frame)}
	if err := r.handshake(w); err != nil {
		w.kill()
		return nil, err
	}
	return w, nil
}

// acceptFor accepts connections until shard k's Join arrives, parking
// other shards' joins in the pending map for their own acceptFor calls.
// It returns the connection and the protocol version negotiated from the
// Join's advertised range.
func (r *Router) acceptFor(k int) (net.Conn, int, error) {
	r.acceptMu.Lock()
	defer r.acceptMu.Unlock()
	deadline := time.Now().Add(handshakeTimeout)
	for {
		if j, ok := r.pendingMu[k]; ok {
			delete(r.pendingMu, k)
			return j.conn, j.proto, nil
		}
		type deadliner interface{ SetDeadline(time.Time) error }
		if d, ok := r.ln.ln.(deadliner); ok {
			d.SetDeadline(deadline)
		}
		conn, err := r.ln.ln.Accept()
		if err != nil {
			return nil, 0, fmt.Errorf("dist: waiting for worker %d to join: %w", k, err)
		}
		conn.SetReadDeadline(deadline)
		f, err := wire.ReadFrame(conn)
		conn.SetReadDeadline(time.Time{})
		if err != nil || f.Type != wire.FrameJoin {
			conn.Close()
			return nil, 0, fmt.Errorf("dist: bad join from worker connection: %v", err)
		}
		hs, err := wire.DecodeHandshake(f.Payload)
		if err != nil || hs.Shard != f.Shard {
			conn.Close()
			return nil, 0, fmt.Errorf("dist: join handshake mismatch (shard %d/%d): %v", hs.Shard, f.Shard, err)
		}
		proto, err := wire.Negotiate(r.opts.ProtoMin, r.opts.ProtoMax, hs.Min, hs.Max)
		if err != nil {
			conn.Close()
			return nil, 0, fmt.Errorf("dist: worker %d join: %w", hs.Shard, err)
		}
		if hs.Shard == k {
			return conn, proto, nil
		}
		if old, ok := r.pendingMu[hs.Shard]; ok {
			old.conn.Close()
		}
		r.pendingMu[hs.Shard] = joined{conn: conn, proto: proto}
	}
}

// handshake sends the per-connection Hello at the negotiated version and
// waits for the ack.
func (r *Router) handshake(w *worker) error {
	lo := w.shard * r.cfg.ShardSize
	hi := lo + r.cfg.ShardSize
	if hi > r.cfg.N {
		hi = r.cfg.N
	}
	beatMillis := int(r.opts.HeartbeatEvery / time.Millisecond)
	if beatMillis < 0 {
		beatMillis = 0
	}
	window := 1
	if w.proto >= wire.ProtoV2 {
		window = r.opts.Window
	}
	hello := wire.Hello{
		Proto: w.proto, N: r.cfg.N, LogN: r.cfg.LogN, Shard: w.shard,
		Lo: lo, Hi: hi, StrictRecvFactor: r.cfg.StrictRecvFactor,
		HeartbeatMillis: beatMillis, Window: window, Cut: r.cfg.Cut,
	}
	frame := wire.AppendFrame(nil, wire.Frame{
		Type: wire.FrameHello, Shard: w.shard,
		Payload: wire.AppendHello(nil, hello),
	})
	if _, err := w.conn.Write(frame); err != nil {
		return fmt.Errorf("dist: sending hello to worker %d: %w", w.shard, err)
	}
	w.conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	defer w.conn.SetReadDeadline(time.Time{})
	for {
		f, err := wire.ReadFrame(w.cr)
		if err != nil {
			return fmt.Errorf("dist: hello ack from worker %d: %w", w.shard, err)
		}
		switch f.Type {
		case wire.FrameHeartbeat:
			w.lastBeat.Store(time.Now().UnixNano())
			continue
		case wire.FrameHelloAck:
			hs, err := wire.DecodeHandshake(f.Payload)
			if err != nil || (hs.Shard != w.shard && hs.Shard != wire.AnyShard) {
				return fmt.Errorf("dist: hello ack mismatch from worker %d: %v", w.shard, err)
			}
			return nil
		case wire.FrameError:
			return fmt.Errorf("dist: worker %d rejected hello: %s", w.shard, f.Payload)
		default:
			return fmt.Errorf("dist: unexpected %v frame during handshake with worker %d", f.Type, w.shard)
		}
	}
}

// respawnLocked replaces shard k's worker after a connection-level
// failure — a fresh local process in spawn mode, a re-dial of the same
// address in connect mode — and replays every in-flight round of the
// window to it in order. Because workers are pure per-round functions,
// the replay is byte-identical. The caller holds the slot's mu.
func (r *Router) respawnLocked(sl *slot, k int) (*worker, error) {
	if max := int64(r.opts.MaxRespawns); max > 0 && r.respawns.Load() >= max {
		return nil, fmt.Errorf("dist: worker %d: respawn budget (%d) exhausted (worker flapping)", k, r.opts.MaxRespawns)
	}
	old := sl.w.Load()
	old.kill()
	if old != nil && old.waitCh != nil {
		select {
		case <-old.waitCh:
		case <-time.After(shutdownGrace):
		}
	}
	r.respawns.Add(1)
	r.opts.Faults.noteRespawn()
	w, err := r.startWorker(k)
	if err != nil {
		if len(r.opts.Connect) > 0 {
			return nil, fmt.Errorf("dist: worker %d gone (re-dial %s failed): %w", k, r.opts.Connect[k], err)
		}
		return nil, fmt.Errorf("dist: respawning worker %d: %w", k, err)
	}
	if w.proto < wire.ProtoV2 && r.window > 1 {
		w.kill()
		return nil, fmt.Errorf("dist: worker %d came back speaking protocol %d mid-run; window %d requires v%d",
			k, w.proto, r.window, wire.ProtoV2)
	}
	sl.w.Store(w)
	for _, p := range sl.pending {
		if _, err := w.conn.Write(p.req); err != nil {
			return nil, fmt.Errorf("dist: replaying round %d to worker %d: %w", p.round, k, err)
		}
	}
	return w, nil
}

// Respawns reports how many workers the router has replaced (respawned or
// re-dialed).
func (r *Router) Respawns() int64 { return r.respawns.Load() }

// Window reports the effective pipelining depth after version
// negotiation.
func (r *Router) Window() int { return r.window }

// LastHeartbeat reports when shard's worker last beat (zero time: never).
// Lock-free: safe to call while a faulted round is mid-respawn.
func (r *Router) LastHeartbeat(shard int) time.Time {
	w := r.slots[shard].w.Load()
	if w == nil {
		return time.Time{}
	}
	ns := w.lastBeat.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// Ping sends a heartbeat to shard's worker and waits for any heartbeat
// back within the frame timeout. It serializes with the shard's round
// trips on the slot lock, so a ping can never interleave reads with a
// reply wait. A round reply read here is parked for its CollectRound
// (never discarded — dropping it would force a needless resend), and a
// protocol-error frame fails the ping instead of being skipped.
func (r *Router) Ping(shard int) error {
	sl := r.slots[shard]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	w := sl.w.Load()
	if w == nil {
		return fmt.Errorf("dist: shard %d has no live worker", shard)
	}
	frame := wire.AppendFrame(nil, wire.Frame{Type: wire.FrameHeartbeat, Shard: shard})
	if _, err := w.conn.Write(frame); err != nil {
		return err
	}
	deadline := time.Now().Add(r.opts.FrameTimeout)
	w.conn.SetReadDeadline(deadline)
	defer w.conn.SetReadDeadline(time.Time{})
	for {
		f, err := wire.ReadFrame(w.cr)
		if err != nil {
			return err
		}
		switch f.Type {
		case wire.FrameHeartbeat:
			w.lastBeat.Store(time.Now().UnixNano())
			return nil
		case wire.FrameRoundReply:
			if roundPending(sl, f.Round) {
				w.gotReplies[f.Round] = f
			}
		case wire.FrameError:
			return fmt.Errorf("dist: worker %d reported during ping: %s", shard, f.Payload)
		default:
			return fmt.Errorf("dist: unexpected %v frame from worker %d during ping", f.Type, shard)
		}
	}
}

// roundPending reports whether round is in the slot's in-flight window.
func roundPending(sl *slot, round int) bool {
	for _, p := range sl.pending {
		if p.round == round {
			return true
		}
	}
	return false
}

// emptyStats is what a worker's reply to an empty round batch must carry.
var emptyStats = wire.RoundStats{ViolDst: -1}

// RouteRound implements sim.DistRouter: every shard's request batch goes
// to its worker in parallel, and the sorted replies merge in shard order.
//
// Under a pipelining window (> 1), a round whose batches are all empty is
// only *begun*: its requests ship immediately but reply collection is
// deferred — the replies to an empty batch are deterministically empty,
// so the round's result is returned without waiting. Deferred replies
// drain when the window fills, when a non-empty round needs the stream
// ordered again, or at Flush; a deferred reply that fails validation
// aborts the run at that later point. Rounds must be routed in
// ascending order (the engine's round loop guarantees this).
func (r *Router) RouteRound(round int, outgoing [][]sim.GlobalMsg) ([][]sim.GlobalMsg, sim.DistRoundStats, error) {
	if r.closed.Load() {
		return nil, sim.DistRoundStats{}, errors.New("dist: router is closed")
	}
	if err := r.deadlineExceeded(); err != nil {
		return nil, sim.DistRoundStats{}, err
	}
	if len(outgoing) != len(r.slots) {
		return nil, sim.DistRoundStats{}, fmt.Errorf("dist: %d request batches for %d workers", len(outgoing), len(r.slots))
	}
	empty := true
	for _, out := range outgoing {
		if len(out) > 0 {
			empty = false
			break
		}
	}
	if r.window > 1 && empty {
		if len(r.deferred) >= r.window-1 {
			// Window full: drain the oldest deferred round to slide it.
			if err := r.collectDeferredPrefix(1); err != nil {
				return nil, sim.DistRoundStats{}, err
			}
		}
		if err := r.beginAll(round, outgoing); err != nil {
			return nil, sim.DistRoundStats{}, err
		}
		r.deferred = append(r.deferred, round)
		results := make([][]sim.GlobalMsg, len(r.slots))
		return results, sim.DistRoundStats{ViolDst: -1}, nil
	}
	if err := r.collectDeferredPrefix(len(r.deferred)); err != nil {
		return nil, sim.DistRoundStats{}, err
	}
	if err := r.beginAll(round, outgoing); err != nil {
		return nil, sim.DistRoundStats{}, err
	}
	return r.collectAll(round)
}

// Flush drains every deferred round of the pipelining window, validating
// the parked replies. The engine calls it at the end of a run so a
// worker failure on a deferred tail round still fails the run.
func (r *Router) Flush() error {
	if r.closed.Load() {
		return nil
	}
	return r.collectDeferredPrefix(len(r.deferred))
}

// beginAll encodes round's request for every shard and ships it,
// appending the round to each slot's in-flight window. Send failures go
// through the respawn/re-dial + replay path immediately.
func (r *Router) beginAll(round int, outgoing [][]sim.GlobalMsg) error {
	errs := make([]error, len(r.slots))
	var wg sync.WaitGroup
	for k := range r.slots {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			errs[k] = r.beginShard(k, round, outgoing[k])
		}(k)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// beginShard stages and sends one shard's round request under the slot
// lock. A dropped frame (fault injection) stays pending — the collect
// path's timeout will resend it. A failed write respawns and replays.
func (r *Router) beginShard(k, round int, out []sim.GlobalMsg) error {
	sl := r.slots[k]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	req := wire.AppendFrame(nil, wire.Frame{
		Type:    wire.FrameRound,
		Round:   round,
		Shard:   k,
		Payload: wire.AppendMsgs(nil, out),
	})
	sl.pending = append(sl.pending, pendingReq{round: round, req: req})
	w := sl.w.Load()
	act := r.opts.Faults.onSend(k, round)
	if act.delay > 0 {
		time.Sleep(act.delay)
	}
	if act.kill {
		w.kill()
	}
	if act.drop {
		return nil
	}
	if _, err := w.conn.Write(req); err != nil {
		if _, rerr := r.respawnLocked(sl, k); rerr != nil {
			return rerr
		}
	}
	return nil
}

// collectDeferredPrefix drains the first n deferred rounds (oldest
// first) across all shards, validating that every reply is the empty
// reply an empty round must produce.
func (r *Router) collectDeferredPrefix(n int) error {
	if n == 0 {
		return nil
	}
	rounds := append([]int(nil), r.deferred[:n]...)
	r.deferred = r.deferred[n:]
	errs := make([]error, len(r.slots))
	var wg sync.WaitGroup
	for k := range r.slots {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sl := r.slots[k]
			sl.mu.Lock()
			defer sl.mu.Unlock()
			for _, round := range rounds {
				msgs, st, err := r.collectLocked(sl, k, round)
				if err != nil {
					errs[k] = err
					return
				}
				if len(msgs) != 0 || st != emptyStats {
					errs[k] = &protocolError{fmt.Sprintf(
						"dist: worker %d: non-empty reply to empty round %d (%d msgs, %+v)", k, round, len(msgs), st)}
					return
				}
			}
		}(k)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// collectAll awaits round's replies from every shard in parallel and
// merges the per-shard stats.
func (r *Router) collectAll(round int) ([][]sim.GlobalMsg, sim.DistRoundStats, error) {
	nw := len(r.slots)
	results := make([][]sim.GlobalMsg, nw)
	stats := make([]wire.RoundStats, nw)
	errs := make([]error, nw)
	collect := func(k int) {
		sl := r.slots[k]
		sl.mu.Lock()
		defer sl.mu.Unlock()
		results[k], stats[k], errs[k] = r.collectLocked(sl, k, round)
	}
	if nw == 1 {
		collect(0)
	} else {
		var wg sync.WaitGroup
		for k := 0; k < nw; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				collect(k)
			}(k)
		}
		wg.Wait()
	}
	total := sim.DistRoundStats{ViolDst: -1}
	for k := 0; k < nw; k++ {
		if errs[k] != nil {
			return nil, sim.DistRoundStats{}, errs[k]
		}
		st := stats[k]
		total.GlobalMsgs += st.Msgs
		total.CutMsgs += st.CutMsgs
		if int(st.MaxRecv) > total.MaxRecv {
			total.MaxRecv = int(st.MaxRecv)
		}
		if st.ViolDst >= 0 && (total.ViolDst < 0 || int(st.ViolDst) < total.ViolDst) {
			total.ViolDst = int(st.ViolDst)
			total.ViolCount = int(st.ViolCount)
		}
	}
	return results, total, nil
}

// collectLocked awaits one shard's reply for the oldest in-flight round,
// surviving timeouts (resend) and connection loss (respawn or re-dial +
// window replay) within the bounded attempt budget. The caller holds the
// slot's mu, and round must be the head of the slot's window.
func (r *Router) collectLocked(sl *slot, k, round int) ([]sim.GlobalMsg, wire.RoundStats, error) {
	if len(sl.pending) == 0 || sl.pending[0].round != round {
		return nil, wire.RoundStats{}, fmt.Errorf("dist: internal: collect of round %d but window head is %v",
			round, sl.pending)
	}
	req := sl.pending[0].req
	var lastErr error
	for attempt := 1; attempt <= r.opts.Retries; attempt++ {
		if err := r.deadlineExceeded(); err != nil {
			return nil, wire.RoundStats{}, err
		}
		w := sl.w.Load()
		if attempt > 1 {
			time.Sleep(backoffDelay(r.opts.Backoff, attempt-1))
			act := r.opts.Faults.onSend(k, round)
			if act.delay > 0 {
				time.Sleep(act.delay)
			}
			if act.kill {
				w.kill()
			}
			if !act.drop {
				if _, err := w.conn.Write(req); err != nil {
					lastErr = err
					var rerr error
					if w, rerr = r.respawnLocked(sl, k); rerr != nil {
						return nil, wire.RoundStats{}, rerr
					}
					continue
				}
			}
		}
		f, err := r.awaitReply(sl, w, round)
		if err == nil {
			msgs, st, derr := wire.DecodeReply(f.Payload)
			if derr != nil {
				return nil, wire.RoundStats{}, fmt.Errorf("dist: worker %d round %d reply: %w", k, round, derr)
			}
			sl.pending = sl.pending[1:]
			delete(w.gotReplies, round)
			return msgs, st, nil
		}
		lastErr = err
		if isTimeout(err) {
			// Dropped or late: the next attempt resends the identical
			// frame. A late reply that does arrive later is parked or
			// skipped by awaitReply.
			continue
		}
		var perr *protocolError
		if errors.As(err, &perr) {
			return nil, wire.RoundStats{}, err
		}
		// Connection-level failure (EOF from a killed worker, reset,
		// desynced stream): replace the worker and replay the window.
		var rerr error
		if w, rerr = r.respawnLocked(sl, k); rerr != nil {
			return nil, wire.RoundStats{}, rerr
		}
	}
	return nil, wire.RoundStats{}, fmt.Errorf("dist: worker %d: round %d failed after %d attempts: %w",
		k, round, r.opts.Retries, lastErr)
}

// protocolError marks worker-reported or structural protocol failures
// that retrying cannot fix.
type protocolError struct{ msg string }

func (e *protocolError) Error() string { return e.msg }

// awaitReply reads frames until the reply for round arrives or the
// attempt deadline passes. Heartbeats are recorded and skipped — they
// deliberately do NOT extend the deadline, otherwise a lost request to a
// healthy (still-beating) worker would never time out. A reply to a
// deeper in-window round is parked for its own collect; a stale reply to
// an already-collected round (a retransmit raced a late reply) is
// skipped.
func (r *Router) awaitReply(sl *slot, w *worker, round int) (wire.Frame, error) {
	if f, ok := w.gotReplies[round]; ok {
		return f, nil
	}
	deadline := time.Now().Add(r.opts.FrameTimeout)
	w.conn.SetReadDeadline(deadline)
	defer w.conn.SetReadDeadline(time.Time{})
	for {
		before := w.cr.n
		f, err := wire.ReadFrame(w.cr)
		if err != nil {
			if isTimeout(err) && w.cr.n != before {
				// The deadline fired mid-frame: the stream is desynced,
				// so resending would misparse. Report a non-timeout
				// error to force the respawn path.
				return wire.Frame{}, fmt.Errorf("dist: worker %d: reply timed out mid-frame", w.shard)
			}
			return wire.Frame{}, err
		}
		switch f.Type {
		case wire.FrameHeartbeat:
			w.lastBeat.Store(time.Now().UnixNano())
		case wire.FrameRoundReply:
			if f.Round == round {
				return f, nil
			}
			if roundPending(sl, f.Round) {
				w.gotReplies[f.Round] = f
				continue
			}
			if f.Round < round {
				continue // stale duplicate from a resend race
			}
			return wire.Frame{}, &protocolError{fmt.Sprintf(
				"dist: worker %d replied for round %d, want %d", w.shard, f.Round, round)}
		case wire.FrameError:
			return wire.Frame{}, &protocolError{fmt.Sprintf(
				"dist: worker %d reported: %s", w.shard, f.Payload)}
		default:
			return wire.Frame{}, &protocolError{fmt.Sprintf(
				"dist: unexpected %v frame from worker %d", f.Type, w.shard)}
		}
	}
}

// isTimeout reports whether err is a read-deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Close shuts the worker fleet down: polite Shutdown frames, then a
// bounded wait, then force-kill (spawn mode; dialed workers just lose
// the connection and keep listening for their next coordinator).
// Idempotent.
func (r *Router) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	for _, sl := range r.slots {
		w := sl.w.Load()
		if w == nil || w.conn == nil {
			continue
		}
		w.conn.SetWriteDeadline(time.Now().Add(time.Second))
		w.conn.Write(wire.AppendFrame(nil, wire.Frame{Type: wire.FrameShutdown, Shard: w.shard}))
		w.conn.Close()
	}
	for _, sl := range r.slots {
		w := sl.w.Load()
		if w == nil || w.cmd == nil {
			continue
		}
		select {
		case <-w.waitCh:
		case <-time.After(shutdownGrace):
			w.cmd.Process.Kill()
			<-w.waitCh
		}
	}
	r.acceptMu.Lock()
	for shard, j := range r.pendingMu {
		j.conn.Close()
		delete(r.pendingMu, shard)
	}
	r.acceptMu.Unlock()
	if r.ln != nil {
		r.ln.close()
	}
	return nil
}
