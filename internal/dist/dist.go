// Package dist is the multi-process distributed round engine behind
// sim.EngineDist: a coordinator-side Router that spawns one worker OS
// process per shard, speaks the internal/dist/wire frame protocol to
// them (unix sockets by default, TCP optionally), and routes each
// round's staged global-message batches through the workers with
// per-frame timeouts, bounded retry/backoff, heartbeats, and
// kill/respawn/replay — all of it drivable from tests via the Faults
// injection hook.
//
// Importing this package registers the Router as the sim package's
// DistRouter factory, which is what arms WithEngine(EngineDist) on the
// facade. Worker processes are re-execs of the current binary, hijacked
// before main by an env-var check (see worker.go), so any program that
// can be a coordinator can be its own worker fleet.
package dist

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist/wire"
	"repro/internal/sim"
)

func init() {
	sim.RegisterDistRouter(func(cfg sim.DistRouterConfig) (sim.DistRouter, error) {
		return New(cfg)
	})
}

// Options tunes the router's transport and robustness envelope. The zero
// value of every field means its default.
type Options struct {
	// Faults is the test-driven fault-injection plan (nil: none).
	Faults *Faults
	// FrameTimeout bounds one reply wait per attempt (default 3s).
	FrameTimeout time.Duration
	// Retries is the total number of send attempts per round per worker
	// before the run aborts (default 4).
	Retries int
	// Backoff is the base retry backoff, doubled per attempt (default 2ms).
	Backoff time.Duration
	// Transport selects "unix" (default) or "tcp".
	Transport string
	// HeartbeatEvery is the worker liveness-beacon period (default 500ms;
	// negative disables heartbeats).
	HeartbeatEvery time.Duration
	// WorkerBin overrides the spawned worker executable (default: the
	// EnvWorkerBin variable, then the coordinator's own binary).
	WorkerBin string
}

// WithFaults returns an Options carrying the given fault plan — the
// hook tests hand to hybrid.WithDistOptions.
func WithFaults(f *Faults) *Options { return &Options{Faults: f} }

const (
	defaultFrameTimeout   = 3 * time.Second
	defaultRetries        = 4
	defaultBackoff        = 2 * time.Millisecond
	defaultHeartbeatEvery = 500 * time.Millisecond
	handshakeTimeout      = 10 * time.Second
	shutdownGrace         = 3 * time.Second
)

// resolveOptions fills defaults into a Config.DistOpts value.
func resolveOptions(v any) (Options, error) {
	var o Options
	switch t := v.(type) {
	case nil:
	case *Options:
		if t != nil {
			o = *t
		}
	case Options:
		o = t
	case *Faults:
		o.Faults = t
	default:
		return Options{}, fmt.Errorf("dist: unsupported DistOpts type %T (want *dist.Options)", v)
	}
	if o.FrameTimeout <= 0 {
		o.FrameTimeout = defaultFrameTimeout
	}
	if o.Retries <= 0 {
		o.Retries = defaultRetries
	}
	if o.Backoff <= 0 {
		o.Backoff = defaultBackoff
	}
	if o.HeartbeatEvery == 0 {
		o.HeartbeatEvery = defaultHeartbeatEvery
	}
	return o, nil
}

// countReader counts bytes read off a connection so a reply wait that
// times out can tell "no reply yet" (safe to resend on the same stream)
// from "timed out mid-frame" (the stream is desynced; the worker must be
// respawned).
type countReader struct {
	c net.Conn
	n int64
}

func (cr *countReader) Read(p []byte) (int, error) {
	n, err := cr.c.Read(p)
	cr.n += int64(n)
	return n, err
}

// worker is the coordinator's handle to one shard's process.
type worker struct {
	shard    int
	cmd      *exec.Cmd
	waitCh   chan error
	conn     net.Conn
	cr       *countReader
	lastBeat atomic.Int64 // UnixNano of the last heartbeat seen
}

// kill forcefully ends the worker process and its connection.
func (w *worker) kill() {
	if w == nil {
		return
	}
	if w.cmd != nil && w.cmd.Process != nil {
		w.cmd.Process.Kill()
	}
	if w.conn != nil {
		w.conn.Close()
	}
}

// Router is the coordinator: it owns the listener, the worker processes,
// and the per-round request/reply exchange. It implements sim.DistRouter.
type Router struct {
	cfg  sim.DistRouterConfig
	opts Options

	ln      *listener
	workers []*worker

	// pending holds accepted-but-unclaimed worker connections keyed by
	// the shard their Join frame announced; concurrent respawns of
	// different shards may be accepted in either order.
	acceptMu sync.Mutex
	pending  map[int]net.Conn

	respawns atomic.Int64
	closed   atomic.Bool
}

// New builds a Router for cfg: it opens the listener, spawns one worker
// process per shard, and completes the Hello handshake with each.
func New(cfg sim.DistRouterConfig) (*Router, error) {
	if cfg.Workers <= 0 || cfg.ShardSize <= 0 {
		return nil, fmt.Errorf("dist: bad router config (workers %d, shard size %d)", cfg.Workers, cfg.ShardSize)
	}
	opts, err := resolveOptions(cfg.Opts)
	if err != nil {
		return nil, err
	}
	ln, err := newListener(opts.Transport)
	if err != nil {
		return nil, err
	}
	r := &Router{
		cfg:     cfg,
		opts:    opts,
		ln:      ln,
		workers: make([]*worker, cfg.Workers),
		pending: make(map[int]net.Conn),
	}
	for k := 0; k < cfg.Workers; k++ {
		w, err := r.spawnWorker(k)
		if err != nil {
			r.Close()
			return nil, err
		}
		r.workers[k] = w
	}
	return r, nil
}

// workerBin resolves the executable to spawn.
func (r *Router) workerBin() (string, error) {
	if r.opts.WorkerBin != "" {
		return r.opts.WorkerBin, nil
	}
	if env := os.Getenv(EnvWorkerBin); env != "" {
		return env, nil
	}
	return os.Executable()
}

// spawnWorker starts shard k's process, waits for it to join, and runs
// the Hello handshake.
func (r *Router) spawnWorker(k int) (*worker, error) {
	bin, err := r.workerBin()
	if err != nil {
		return nil, fmt.Errorf("dist: resolving worker binary: %w", err)
	}
	cmd := exec.Command(bin)
	cmd.Env = append(os.Environ(),
		fmt.Sprintf("%s=%s", envAddr, r.ln.addr),
		fmt.Sprintf("%s=%d", envShard, k),
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: starting worker %d (%s): %w", k, bin, err)
	}
	waitCh := make(chan error, 1)
	go func() { waitCh <- cmd.Wait() }()

	conn, err := r.acceptFor(k)
	if err != nil {
		cmd.Process.Kill()
		<-waitCh
		return nil, err
	}
	w := &worker{shard: k, cmd: cmd, waitCh: waitCh, conn: conn, cr: &countReader{c: conn}}
	if err := r.handshake(w); err != nil {
		w.kill()
		<-waitCh
		return nil, err
	}
	return w, nil
}

// acceptFor accepts connections until shard k's Join arrives, parking
// other shards' joins in the pending map for their own acceptFor calls.
func (r *Router) acceptFor(k int) (net.Conn, error) {
	r.acceptMu.Lock()
	defer r.acceptMu.Unlock()
	deadline := time.Now().Add(handshakeTimeout)
	for {
		if c, ok := r.pending[k]; ok {
			delete(r.pending, k)
			return c, nil
		}
		type deadliner interface{ SetDeadline(time.Time) error }
		if d, ok := r.ln.ln.(deadliner); ok {
			d.SetDeadline(deadline)
		}
		conn, err := r.ln.ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("dist: waiting for worker %d to join: %w", k, err)
		}
		conn.SetReadDeadline(deadline)
		f, err := wire.ReadFrame(conn)
		conn.SetReadDeadline(time.Time{})
		if err != nil || f.Type != wire.FrameJoin {
			conn.Close()
			return nil, fmt.Errorf("dist: bad join from worker connection: %v", err)
		}
		proto, shard, err := wire.DecodeHandshake(f.Payload)
		if err != nil || proto != wire.ProtoVersion || shard != f.Shard {
			conn.Close()
			return nil, fmt.Errorf("dist: join handshake mismatch (proto %d, shard %d/%d): %v",
				proto, shard, f.Shard, err)
		}
		if shard == k {
			return conn, nil
		}
		if old, ok := r.pending[shard]; ok {
			old.Close()
		}
		r.pending[shard] = conn
	}
}

// handshake sends the per-connection Hello and waits for the ack.
func (r *Router) handshake(w *worker) error {
	lo := w.shard * r.cfg.ShardSize
	hi := lo + r.cfg.ShardSize
	if hi > r.cfg.N {
		hi = r.cfg.N
	}
	beatMillis := int(r.opts.HeartbeatEvery / time.Millisecond)
	if beatMillis < 0 {
		beatMillis = 0
	}
	hello := wire.Hello{
		Proto: wire.ProtoVersion, N: r.cfg.N, LogN: r.cfg.LogN, Shard: w.shard,
		Lo: lo, Hi: hi, StrictRecvFactor: r.cfg.StrictRecvFactor,
		HeartbeatMillis: beatMillis, Cut: r.cfg.Cut,
	}
	frame := wire.AppendFrame(nil, wire.Frame{
		Type: wire.FrameHello, Shard: w.shard,
		Payload: wire.AppendHello(nil, hello),
	})
	if _, err := w.conn.Write(frame); err != nil {
		return fmt.Errorf("dist: sending hello to worker %d: %w", w.shard, err)
	}
	w.conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	defer w.conn.SetReadDeadline(time.Time{})
	for {
		f, err := wire.ReadFrame(w.cr)
		if err != nil {
			return fmt.Errorf("dist: hello ack from worker %d: %w", w.shard, err)
		}
		switch f.Type {
		case wire.FrameHeartbeat:
			w.lastBeat.Store(time.Now().UnixNano())
			continue
		case wire.FrameHelloAck:
			proto, shard, err := wire.DecodeHandshake(f.Payload)
			if err != nil || proto != wire.ProtoVersion || shard != w.shard {
				return fmt.Errorf("dist: hello ack mismatch from worker %d: %v", w.shard, err)
			}
			return nil
		case wire.FrameError:
			return fmt.Errorf("dist: worker %d rejected hello: %s", w.shard, f.Payload)
		default:
			return fmt.Errorf("dist: unexpected %v frame during handshake with worker %d", f.Type, w.shard)
		}
	}
}

// respawn replaces shard k's worker after a connection-level failure and
// returns the fresh handle. The replacement replays the in-flight round
// from the coordinator's retransmit; because workers are pure per-round
// functions, the replay is byte-identical.
func (r *Router) respawn(k int) (*worker, error) {
	old := r.workers[k]
	old.kill()
	if old != nil && old.waitCh != nil {
		select {
		case <-old.waitCh:
		case <-time.After(shutdownGrace):
		}
	}
	r.respawns.Add(1)
	r.opts.Faults.noteRespawn()
	w, err := r.spawnWorker(k)
	if err != nil {
		return nil, fmt.Errorf("dist: respawning worker %d: %w", k, err)
	}
	r.workers[k] = w
	return w, nil
}

// Respawns reports how many workers the router has replaced.
func (r *Router) Respawns() int64 { return r.respawns.Load() }

// LastHeartbeat reports when shard's worker last beat (zero time: never).
func (r *Router) LastHeartbeat(shard int) time.Time {
	ns := r.workers[shard].lastBeat.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// Ping sends a heartbeat to shard's worker and waits for any heartbeat
// back within the frame timeout.
func (r *Router) Ping(shard int) error {
	w := r.workers[shard]
	frame := wire.AppendFrame(nil, wire.Frame{Type: wire.FrameHeartbeat, Shard: shard})
	if _, err := w.conn.Write(frame); err != nil {
		return err
	}
	deadline := time.Now().Add(r.opts.FrameTimeout)
	w.conn.SetReadDeadline(deadline)
	defer w.conn.SetReadDeadline(time.Time{})
	for {
		f, err := wire.ReadFrame(w.cr)
		if err != nil {
			return err
		}
		if f.Type == wire.FrameHeartbeat {
			w.lastBeat.Store(time.Now().UnixNano())
			return nil
		}
	}
}

// RouteRound implements sim.DistRouter: every shard's request batch goes
// to its worker in parallel, and the sorted replies merge in shard order.
func (r *Router) RouteRound(round int, outgoing [][]sim.GlobalMsg) ([][]sim.GlobalMsg, sim.DistRoundStats, error) {
	if r.closed.Load() {
		return nil, sim.DistRoundStats{}, errors.New("dist: router is closed")
	}
	if len(outgoing) != len(r.workers) {
		return nil, sim.DistRoundStats{}, fmt.Errorf("dist: %d request batches for %d workers", len(outgoing), len(r.workers))
	}
	nw := len(r.workers)
	results := make([][]sim.GlobalMsg, nw)
	stats := make([]wire.RoundStats, nw)
	errs := make([]error, nw)
	if nw == 1 {
		results[0], stats[0], errs[0] = r.roundTrip(0, round, outgoing[0])
	} else {
		var wg sync.WaitGroup
		for k := 0; k < nw; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				results[k], stats[k], errs[k] = r.roundTrip(k, round, outgoing[k])
			}(k)
		}
		wg.Wait()
	}
	total := sim.DistRoundStats{ViolDst: -1}
	for k := 0; k < nw; k++ {
		if errs[k] != nil {
			return nil, sim.DistRoundStats{}, errs[k]
		}
		st := stats[k]
		total.GlobalMsgs += st.Msgs
		total.CutMsgs += st.CutMsgs
		if int(st.MaxRecv) > total.MaxRecv {
			total.MaxRecv = int(st.MaxRecv)
		}
		if st.ViolDst >= 0 && (total.ViolDst < 0 || int(st.ViolDst) < total.ViolDst) {
			total.ViolDst = int(st.ViolDst)
			total.ViolCount = int(st.ViolCount)
		}
	}
	return results, total, nil
}

// roundTrip sends one shard's round request and awaits the sorted reply,
// applying injected faults and surviving timeouts (resend) and connection
// loss (respawn + replay) within the bounded attempt budget.
func (r *Router) roundTrip(k, round int, out []sim.GlobalMsg) ([]sim.GlobalMsg, wire.RoundStats, error) {
	w := r.workers[k]
	req := wire.AppendFrame(nil, wire.Frame{
		Type:    wire.FrameRound,
		Round:   round,
		Shard:   k,
		Payload: wire.AppendMsgs(nil, out),
	})
	var lastErr error
	for attempt := 0; attempt < r.opts.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(r.opts.Backoff << (attempt - 1))
		}
		act := r.opts.Faults.onSend(k, round)
		if act.delay > 0 {
			time.Sleep(act.delay)
		}
		if act.kill {
			w.kill()
		}
		if !act.drop {
			if _, err := w.conn.Write(req); err != nil {
				lastErr = err
				var rerr error
				if w, rerr = r.respawn(k); rerr != nil {
					return nil, wire.RoundStats{}, rerr
				}
				continue
			}
		}
		f, err := r.awaitReply(w, round)
		if err == nil {
			msgs, st, derr := wire.DecodeReply(f.Payload)
			if derr != nil {
				return nil, wire.RoundStats{}, fmt.Errorf("dist: worker %d round %d reply: %w", k, round, derr)
			}
			return msgs, st, nil
		}
		lastErr = err
		if isTimeout(err) {
			// Dropped or late: resend the identical frame. A late reply
			// that does arrive later is skipped as stale by awaitReply.
			continue
		}
		var perr *protocolError
		if errors.As(err, &perr) {
			return nil, wire.RoundStats{}, err
		}
		// Connection-level failure (EOF from a killed worker, reset,
		// desynced stream): replace the process and replay the round.
		var rerr error
		if w, rerr = r.respawn(k); rerr != nil {
			return nil, wire.RoundStats{}, rerr
		}
	}
	return nil, wire.RoundStats{}, fmt.Errorf("dist: worker %d: round %d failed after %d attempts: %w",
		k, round, r.opts.Retries, lastErr)
}

// protocolError marks worker-reported or structural protocol failures
// that retrying cannot fix.
type protocolError struct{ msg string }

func (e *protocolError) Error() string { return e.msg }

// awaitReply reads frames until the reply for round arrives or the
// attempt deadline passes. Heartbeats are recorded and skipped — they
// deliberately do NOT extend the deadline, otherwise a lost request to a
// healthy (still-beating) worker would never time out. Stale replies to
// earlier rounds (a retransmit raced a late reply) are skipped too.
func (r *Router) awaitReply(w *worker, round int) (wire.Frame, error) {
	deadline := time.Now().Add(r.opts.FrameTimeout)
	w.conn.SetReadDeadline(deadline)
	defer w.conn.SetReadDeadline(time.Time{})
	for {
		before := w.cr.n
		f, err := wire.ReadFrame(w.cr)
		if err != nil {
			if isTimeout(err) && w.cr.n != before {
				// The deadline fired mid-frame: the stream is desynced,
				// so resending would misparse. Report a non-timeout
				// error to force the respawn path.
				return wire.Frame{}, fmt.Errorf("dist: worker %d: reply timed out mid-frame", w.shard)
			}
			return wire.Frame{}, err
		}
		switch f.Type {
		case wire.FrameHeartbeat:
			w.lastBeat.Store(time.Now().UnixNano())
		case wire.FrameRoundReply:
			if f.Round < round {
				continue // stale duplicate from a resend race
			}
			if f.Round != round {
				return wire.Frame{}, &protocolError{fmt.Sprintf(
					"dist: worker %d replied for round %d, want %d", w.shard, f.Round, round)}
			}
			return f, nil
		case wire.FrameError:
			return wire.Frame{}, &protocolError{fmt.Sprintf(
				"dist: worker %d reported: %s", w.shard, f.Payload)}
		default:
			return wire.Frame{}, &protocolError{fmt.Sprintf(
				"dist: unexpected %v frame from worker %d", f.Type, w.shard)}
		}
	}
}

// isTimeout reports whether err is a read-deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Close shuts the worker fleet down: polite Shutdown frames, then a
// bounded wait, then force-kill. Idempotent.
func (r *Router) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	for _, w := range r.workers {
		if w == nil || w.conn == nil {
			continue
		}
		w.conn.SetWriteDeadline(time.Now().Add(time.Second))
		w.conn.Write(wire.AppendFrame(nil, wire.Frame{Type: wire.FrameShutdown, Shard: w.shard}))
		w.conn.Close()
	}
	for _, w := range r.workers {
		if w == nil || w.cmd == nil {
			continue
		}
		select {
		case <-w.waitCh:
		case <-time.After(shutdownGrace):
			w.cmd.Process.Kill()
			<-w.waitCh
		}
	}
	r.acceptMu.Lock()
	for shard, c := range r.pending {
		c.Close()
		delete(r.pending, shard)
	}
	r.acceptMu.Unlock()
	r.ln.close()
	return nil
}
