package dist

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Transport abstraction: the coordinator listens, workers dial. Addresses
// are scheme-prefixed strings ("unix:/path/sock", "tcp:127.0.0.1:4242")
// so they survive a trip through a child process's environment. Unix
// sockets are the default (same-box workers); TCP exists so the same
// protocol can cross machines later and is exercised by tests today.

const dialTimeout = 5 * time.Second

// listener wraps a net.Listener with its dialable address and any
// on-disk state to clean up.
type listener struct {
	ln   net.Listener
	addr string
	dir  string // unix socket directory, "" for tcp
}

// newListener opens the coordinator's accept socket for the named
// transport ("unix", "" for the default, or "tcp"). bind overrides the
// TCP bind address (default loopback with an ephemeral port) so a
// coordinator expecting workers from other machines can bind a routable
// interface, e.g. "0.0.0.0:9100".
func newListener(transport, bind string) (*listener, error) {
	switch transport {
	case "", "unix":
		// A fresh short directory keeps the socket path well under the
		// sun_path length limit regardless of TMPDIR.
		dir, err := os.MkdirTemp("", "hybriddist")
		if err != nil {
			return nil, fmt.Errorf("dist: socket dir: %w", err)
		}
		path := filepath.Join(dir, "coord.sock")
		ln, err := net.Listen("unix", path)
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("dist: listen unix: %w", err)
		}
		return &listener{ln: ln, addr: "unix:" + path, dir: dir}, nil
	case "tcp":
		if bind == "" {
			bind = "127.0.0.1:0"
		}
		ln, err := net.Listen("tcp", bind)
		if err != nil {
			return nil, fmt.Errorf("dist: listen tcp %s: %w", bind, err)
		}
		return &listener{ln: ln, addr: advertiseTCP(ln)}, nil
	default:
		return nil, fmt.Errorf("dist: unknown transport %q (want unix or tcp)", transport)
	}
}

// advertiseTCP turns a TCP listener's bound address into the
// scheme-prefixed address handed to spawned (same-box) workers. A
// wildcard bind ("0.0.0.0:9100", ":9100") is not dialable as written, so
// it is rewritten to loopback — local children always can reach it there,
// and remote workers use connect mode, which never consults this address.
func advertiseTCP(ln net.Listener) string {
	if ta, ok := ln.Addr().(*net.TCPAddr); ok && (ta.IP == nil || ta.IP.IsUnspecified()) {
		return fmt.Sprintf("tcp:127.0.0.1:%d", ta.Port)
	}
	return "tcp:" + ln.Addr().String()
}

// listenSpec opens a worker-side listen socket from a scheme-prefixed
// spec ("tcp::9000", "tcp:10.0.0.7:9000", "unix:/path/sock") and returns
// the listener plus its bound, dialable address in the same notation
// (useful when the spec asked for port 0).
func listenSpec(spec string) (net.Listener, string, error) {
	switch {
	case strings.HasPrefix(spec, "tcp:"):
		ln, err := net.Listen("tcp", strings.TrimPrefix(spec, "tcp:"))
		if err != nil {
			return nil, "", fmt.Errorf("dist: listen %s: %w", spec, err)
		}
		return ln, advertiseTCP(ln), nil
	case strings.HasPrefix(spec, "unix:"):
		path := strings.TrimPrefix(spec, "unix:")
		ln, err := net.Listen("unix", path)
		if err != nil {
			return nil, "", fmt.Errorf("dist: listen %s: %w", spec, err)
		}
		return ln, "unix:" + path, nil
	default:
		return nil, "", fmt.Errorf("dist: listen spec %q has no transport prefix", spec)
	}
}

// close shuts the socket and removes any socket directory.
func (l *listener) close() {
	if l.ln != nil {
		l.ln.Close()
	}
	if l.dir != "" {
		os.RemoveAll(l.dir)
	}
}

// dialAddr connects a worker to a scheme-prefixed coordinator address.
func dialAddr(addr string) (net.Conn, error) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		return net.DialTimeout("unix", strings.TrimPrefix(addr, "unix:"), dialTimeout)
	case strings.HasPrefix(addr, "tcp:"):
		return net.DialTimeout("tcp", strings.TrimPrefix(addr, "tcp:"), dialTimeout)
	default:
		return nil, fmt.Errorf("dist: address %q has no transport prefix", addr)
	}
}
