package dist

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Transport abstraction: the coordinator listens, workers dial. Addresses
// are scheme-prefixed strings ("unix:/path/sock", "tcp:127.0.0.1:4242")
// so they survive a trip through a child process's environment. Unix
// sockets are the default (same-box workers); TCP exists so the same
// protocol can cross machines later and is exercised by tests today.

const dialTimeout = 5 * time.Second

// listener wraps a net.Listener with its dialable address and any
// on-disk state to clean up.
type listener struct {
	ln   net.Listener
	addr string
	dir  string // unix socket directory, "" for tcp
}

// newListener opens the coordinator's accept socket for the named
// transport ("unix", "" for the default, or "tcp").
func newListener(transport string) (*listener, error) {
	switch transport {
	case "", "unix":
		// A fresh short directory keeps the socket path well under the
		// sun_path length limit regardless of TMPDIR.
		dir, err := os.MkdirTemp("", "hybriddist")
		if err != nil {
			return nil, fmt.Errorf("dist: socket dir: %w", err)
		}
		path := filepath.Join(dir, "coord.sock")
		ln, err := net.Listen("unix", path)
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("dist: listen unix: %w", err)
		}
		return &listener{ln: ln, addr: "unix:" + path, dir: dir}, nil
	case "tcp":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("dist: listen tcp: %w", err)
		}
		return &listener{ln: ln, addr: "tcp:" + ln.Addr().String()}, nil
	default:
		return nil, fmt.Errorf("dist: unknown transport %q (want unix or tcp)", transport)
	}
}

// close shuts the socket and removes any socket directory.
func (l *listener) close() {
	if l.ln != nil {
		l.ln.Close()
	}
	if l.dir != "" {
		os.RemoveAll(l.dir)
	}
}

// dialAddr connects a worker to a scheme-prefixed coordinator address.
func dialAddr(addr string) (net.Conn, error) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		return net.DialTimeout("unix", strings.TrimPrefix(addr, "unix:"), dialTimeout)
	case strings.HasPrefix(addr, "tcp:"):
		return net.DialTimeout("tcp", strings.TrimPrefix(addr, "tcp:"), dialTimeout)
	default:
		return nil, fmt.Errorf("dist: address %q has no transport prefix", addr)
	}
}
