package dist

import (
	"net"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dist/wire"
	"repro/internal/graph"
	"repro/internal/sim"
)

// startListenWorkers stands up n in-process listen-mode workers on TCP
// loopback (the connect-mode topology, minus the machine boundary) and
// returns their dialable addresses in shard order.
func startListenWorkers(t *testing.T, n int, min, max int) ([]string, []*ListenWorker) {
	t.Helper()
	addrs := make([]string, n)
	workers := make([]*ListenWorker, n)
	for k := 0; k < n; k++ {
		lw, err := startListenWorkerRange("tcp:127.0.0.1:0", k, min, max)
		if err != nil {
			t.Fatalf("listen worker %d: %v", k, err)
		}
		t.Cleanup(func() { lw.Close() })
		go lw.Serve()
		addrs[k] = lw.Addr()
		workers[k] = lw
	}
	return addrs, workers
}

// TestDistConnectMatchesLegacy is the connect-mode differential: a
// coordinator dialing pre-started TCP workers — with a pipelining window
// above 1 — must be byte-identical to the legacy oracle.
func TestDistConnectMatchesLegacy(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid": graph.Grid(6, 7),
		"path": graph.Path(33),
	}
	for name, g := range graphs {
		for seed := int64(1); seed <= 2; seed++ {
			wantOut, wantM := runChatter(t, g, sim.Config{Seed: seed, Engine: sim.EngineLegacy})
			for _, window := range []int{1, 3} {
				addrs, _ := startListenWorkers(t, 2, wire.ProtoMin, wire.ProtoMax)
				out, m := runChatter(t, g, sim.Config{
					Seed: seed, Engine: sim.EngineDist, DistWorkers: 2,
					DistOpts: &Options{Connect: addrs, Window: window},
				})
				if !reflect.DeepEqual(wantOut, out) {
					t.Fatalf("%s seed %d window %d: connect-mode results differ from legacy", name, seed, window)
				}
				if wantM != m {
					t.Fatalf("%s seed %d window %d: metrics differ:\nlegacy  %+v\nconnect %+v", name, seed, window, wantM, m)
				}
			}
		}
	}
}

// TestDistConnectKillRedialReplay kills the connection to a pre-started
// worker mid-run. The coordinator must re-dial the same address, replay
// the in-flight window, and finish byte-identical to the clean run —
// the connect-mode analogue of kill/respawn/replay.
func TestDistConnectKillRedialReplay(t *testing.T) {
	g := graph.Grid(5, 6)
	wantOut, wantM := runChatter(t, g, sim.Config{Seed: 17, Engine: sim.EngineLegacy})

	addrs, _ := startListenWorkers(t, 2, wire.ProtoMin, wire.ProtoMax)
	faults := NewFaults().KillWorker(1, 4)
	out, m := runChatter(t, g, sim.Config{
		Seed: 17, Engine: sim.EngineDist, DistWorkers: 2,
		DistOpts: &Options{Connect: addrs, Window: 2, Faults: faults},
	})
	if !reflect.DeepEqual(wantOut, out) {
		t.Fatal("results differ from legacy after connect-mode kill + re-dial")
	}
	if wantM != m {
		t.Fatalf("metrics differ after connect-mode kill:\nlegacy %+v\ndist   %+v", wantM, m)
	}
	st := faults.Stats()
	if st.Killed != 1 || st.Respawns < 1 {
		t.Fatalf("fault stats after kill: %+v (want 1 kill, >=1 re-dial)", st)
	}
}

// TestDistConnectWorkerGoneAbort removes a remote worker entirely (its
// listener is gone when the coordinator tries to re-dial) and asserts
// the run aborts with a clear "worker gone" error — never a hang.
func TestDistConnectWorkerGoneAbort(t *testing.T) {
	cfg := sim.DistRouterConfig{
		N: 8, LogN: 3, Workers: 2, ShardSize: 4,
		Opts: &Options{
			Connect:      nil, // filled below
			Faults:       NewFaults().KillWorker(1, 0),
			FrameTimeout: 200 * time.Millisecond,
			Retries:      2,
		},
	}
	addrs, workers := startListenWorkers(t, 2, wire.ProtoMin, wire.ProtoMax)
	cfg.Opts.(*Options).Connect = addrs
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Take worker 1's listener away so the re-dial after the kill fault
	// has nowhere to go.
	workers[1].Close()

	done := make(chan error, 1)
	go func() {
		_, _, err := r.RouteRound(0, [][]sim.GlobalMsg{nil, nil})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("want worker-gone abort, got success")
		}
		if !strings.Contains(err.Error(), "gone") {
			t.Fatalf("err = %v, want a worker-gone re-dial failure", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker-gone round hung instead of aborting")
	}
}

// TestDistConnectAddressCountMismatch: connect mode demands one address
// per shard.
func TestDistConnectAddressCountMismatch(t *testing.T) {
	_, err := New(sim.DistRouterConfig{
		N: 8, LogN: 3, Workers: 2, ShardSize: 4,
		Opts: &Options{Connect: []string{"tcp:127.0.0.1:1"}},
	})
	if err == nil || !strings.Contains(err.Error(), "connect addresses") {
		t.Fatalf("err = %v, want address-count mismatch", err)
	}
}

// TestDistHandshakeNegotiation pairs current and version-bumped peers
// both ways: old worker with new coordinator, new worker with old
// coordinator, and a truly incompatible pair.
func TestDistHandshakeNegotiation(t *testing.T) {
	g := graph.Grid(4, 5)
	wantOut, wantM := runChatter(t, g, sim.Config{Seed: 5, Engine: sim.EngineLegacy})

	t.Run("old worker, new coordinator", func(t *testing.T) {
		// A v1-only worker forces the pair down to v1 and clamps the
		// requested window to lockstep — and still matches the oracle.
		addrs, _ := startListenWorkers(t, 2, wire.ProtoV1, wire.ProtoV1)
		r, err := New(sim.DistRouterConfig{
			N: g.N(), LogN: 5, Workers: 2, ShardSize: (g.N() + 1) / 2,
			Opts: &Options{Connect: addrs, Window: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Window() != 1 {
			t.Fatalf("window = %d against a v1 worker, want 1", r.Window())
		}
		r.Close()

		addrs2, _ := startListenWorkers(t, 2, wire.ProtoV1, wire.ProtoV1)
		out, m := runChatter(t, g, sim.Config{
			Seed: 5, Engine: sim.EngineDist, DistWorkers: 2,
			DistOpts: &Options{Connect: addrs2, Window: 4},
		})
		if !reflect.DeepEqual(wantOut, out) || wantM != m {
			t.Fatal("v1-worker pairing diverges from legacy")
		}
	})

	t.Run("new worker, old coordinator", func(t *testing.T) {
		addrs, _ := startListenWorkers(t, 2, wire.ProtoMin, wire.ProtoMax)
		out, m := runChatter(t, g, sim.Config{
			Seed: 5, Engine: sim.EngineDist, DistWorkers: 2,
			DistOpts: &Options{Connect: addrs, ProtoMin: wire.ProtoV1, ProtoMax: wire.ProtoV1},
		})
		if !reflect.DeepEqual(wantOut, out) || wantM != m {
			t.Fatal("v1-coordinator pairing diverges from legacy")
		}
	})

	t.Run("incompatible pair", func(t *testing.T) {
		// A worker from the future (speaks only v3+) against today's
		// coordinator must fail with the range error, not garbage.
		addrs, _ := startListenWorkers(t, 1, wire.ProtoMax+1, wire.ProtoMax+1)
		_, err := New(sim.DistRouterConfig{
			N: 8, LogN: 3, Workers: 1, ShardSize: 8,
			Opts: &Options{Connect: addrs},
		})
		if err == nil || !strings.Contains(err.Error(), "no common protocol version") {
			t.Fatalf("err = %v, want version-range failure", err)
		}
	})

	t.Run("incompatible pair, coordinator newer", func(t *testing.T) {
		addrs, _ := startListenWorkers(t, 1, wire.ProtoMin, wire.ProtoMax)
		_, err := New(sim.DistRouterConfig{
			N: 8, LogN: 3, Workers: 1, ShardSize: 8,
			Opts: &Options{Connect: addrs, ProtoMin: wire.ProtoMax + 1, ProtoMax: wire.ProtoMax + 1},
		})
		if err == nil || !strings.Contains(err.Error(), "no common protocol version") {
			t.Fatalf("err = %v, want version-range failure", err)
		}
	})
}

// TestRouterWindowDeferral drives the pipelining window at the router
// level: empty rounds are begun immediately and their reply collection
// deferred; a non-empty round (or Flush) drains the backlog; a dropped
// frame on a deferred round is retried at drain time.
func TestRouterWindowDeferral(t *testing.T) {
	faults := NewFaults().DropFrames(0, 1, 1)
	r, err := New(sim.DistRouterConfig{
		N: 8, LogN: 3, Workers: 2, ShardSize: 4,
		Opts: &Options{Window: 3, Faults: faults, FrameTimeout: 300 * time.Millisecond, Retries: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Window() != 3 {
		t.Fatalf("window = %d, want 3", r.Window())
	}

	empty := [][]sim.GlobalMsg{nil, nil}
	for round := 0; round <= 2; round++ {
		streams, st, err := r.RouteRound(round, empty)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if st.ViolDst != -1 || st.GlobalMsgs != 0 {
			t.Fatalf("round %d: deferred stats %+v, want empty", round, st)
		}
		for k, s := range streams {
			if len(s) != 0 {
				t.Fatalf("round %d shard %d: deferred round returned %d msgs", round, k, len(s))
			}
		}
	}
	// Rounds 0..2 shipped; with window 3 at most 2 awaited replies remain
	// outstanding, so at least one drain already happened (and consumed
	// the injected drop via the retry path).
	if n := len(r.deferred); n > 2 {
		t.Fatalf("deferred backlog %d exceeds window-1", n)
	}

	// A non-empty round forces the backlog to drain in order first.
	batch := [][]sim.GlobalMsg{
		{{Src: 5, Dst: 1, Kind: 1, F0: 10}, {Src: 6, Dst: 0, Kind: 1, F0: 11}},
		{{Src: 0, Dst: 7, Kind: 1, F0: 12}},
	}
	streams, st, err := r.RouteRound(3, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.deferred) != 0 {
		t.Fatalf("deferred backlog %d after non-empty round, want 0", len(r.deferred))
	}
	if st.GlobalMsgs != 3 || st.MaxRecv != 1 {
		t.Fatalf("stats %+v, want 3 msgs, max recv 1", st)
	}
	// Worker-sorted delivery: shard 0 receives dst 0 then 1.
	want0 := []sim.GlobalMsg{{Src: 6, Dst: 0, Kind: 1, F0: 11}, {Src: 5, Dst: 1, Kind: 1, F0: 10}}
	if !reflect.DeepEqual(streams[0], want0) {
		t.Fatalf("shard 0 stream %+v, want %+v", streams[0], want0)
	}
	if len(streams[1]) != 1 || streams[1][0].Dst != 7 {
		t.Fatalf("shard 1 stream %+v", streams[1])
	}

	// Tail empty rounds + Flush: the backlog drains and validates.
	for round := 4; round <= 6; round++ {
		if _, _, err := r.RouteRound(round, empty); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if len(r.deferred) != 0 {
		t.Fatal("flush left a deferred backlog")
	}
	if got := faults.Stats().Dropped; got != 1 {
		t.Fatalf("consumed %d injected drops, want 1", got)
	}
	if r.Respawns() != 0 {
		t.Fatalf("respawns = %d, want 0 (drops must be retried, not respawned)", r.Respawns())
	}
}

// TestDistPipelinedKillReplay kills a worker while a deferred window is
// outstanding: the respawn must replay the whole in-flight window and
// stay byte-identical end to end.
func TestDistPipelinedKillReplay(t *testing.T) {
	g := graph.Grid(5, 6)
	wantOut, wantM := runChatter(t, g, sim.Config{Seed: 23, Engine: sim.EngineLegacy})
	faults := NewFaults().KillWorker(0, 6)
	out, m := runChatter(t, g, sim.Config{
		Seed: 23, Engine: sim.EngineDist, DistWorkers: 2,
		DistOpts: &Options{Window: 4, Faults: faults},
	})
	if !reflect.DeepEqual(wantOut, out) {
		t.Fatal("pipelined kill+replay diverges from legacy")
	}
	if wantM != m {
		t.Fatalf("pipelined kill+replay metrics differ:\nlegacy %+v\ndist   %+v", wantM, m)
	}
	if st := faults.Stats(); st.Killed != 1 || st.Respawns < 1 {
		t.Fatalf("fault stats %+v, want 1 kill and >=1 respawn", st)
	}
}

// TestPingDuringFaultedRoundRace is the regression test for the
// Router.workers data race: Ping and LastHeartbeat hammer the router from
// another goroutine while a faulted round respawns workers. Run under
// -race (the dist CI step does) this fails on the old unsynchronized
// slot; the per-slot lock + atomic worker pointer make it clean.
func TestPingDuringFaultedRoundRace(t *testing.T) {
	faults := NewFaults().KillWorker(1, 1).KillWorker(0, 3)
	r, err := New(sim.DistRouterConfig{
		N: 8, LogN: 3, Workers: 2, ShardSize: 4,
		Opts: &Options{Faults: faults, FrameTimeout: time.Second, HeartbeatEvery: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	stop := make(chan struct{})
	var pinged atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for k := 0; k < 2; k++ {
				if r.Ping(k) == nil {
					pinged.Add(1)
				}
				r.LastHeartbeat(k)
			}
		}
	}()

	batch := func(round int) [][]sim.GlobalMsg {
		return [][]sim.GlobalMsg{
			{{Src: 1, Dst: 2, Kind: 1, F0: int64(round)}},
			{{Src: 2, Dst: 5, Kind: 1, F0: int64(round)}},
		}
	}
	for round := 0; round < 6; round++ {
		if _, _, err := r.RouteRound(round, batch(round)); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	close(stop)
	wg.Wait()
	if r.Respawns() < 2 {
		t.Fatalf("respawns = %d, want >= 2 (both kill faults must fire)", r.Respawns())
	}
	if pinged.Load() == 0 {
		t.Fatal("pinger never succeeded — the concurrency the test exists for never happened")
	}
}

// TestBackoffDelayClamp is the regression test for the retry-backoff
// overflow: large attempt counts must never shift time.Duration negative
// (which time.Sleep treats as zero, turning backoff into a hot loop).
func TestBackoffDelayClamp(t *testing.T) {
	base := 2 * time.Millisecond
	if d := backoffDelay(base, 1); d != base {
		t.Fatalf("first resend backoff = %v, want %v", d, base)
	}
	if d := backoffDelay(base, 3); d != 4*base {
		t.Fatalf("third resend backoff = %v, want %v", d, 4*base)
	}
	for _, n := range []int{63, 64, 65, 100, 1 << 20} {
		d := backoffDelay(base, n)
		if d <= 0 || d > maxBackoff {
			t.Fatalf("backoffDelay(%v, %d) = %v, outside (0, %v]", base, n, d, maxBackoff)
		}
	}
	if d := backoffDelay(time.Hour, 2); d != maxBackoff {
		t.Fatalf("huge base not capped: %v", d)
	}
}

// pipeRouter builds a Router whose single slot speaks to an in-test
// scripted peer over net.Pipe — the harness for Ping's frame handling.
func pipeRouter(t *testing.T, pending []int) (*Router, net.Conn) {
	t.Helper()
	opts, err := resolveOptions(&Options{FrameTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	local, remote := net.Pipe()
	t.Cleanup(func() { local.Close(); remote.Close() })
	w := &worker{shard: 0, proto: wire.ProtoV2, conn: local,
		cr: &countReader{c: local}, gotReplies: make(map[int]wire.Frame)}
	sl := &slot{}
	w2 := w
	sl.w.Store(w2)
	for _, round := range pending {
		sl.pending = append(sl.pending, pendingReq{round: round})
	}
	r := &Router{opts: opts, window: 4, slots: []*slot{sl}}
	return r, remote
}

// TestPingRecordsLateReply is the regression test for Ping swallowing
// frames: a round reply read during a ping must be parked for its
// collect (not discarded), and a protocol-error frame must fail the ping
// instead of being skipped.
func TestPingRecordsLateReply(t *testing.T) {
	t.Run("late reply parked", func(t *testing.T) {
		r, remote := pipeRouter(t, []int{5})
		go func() {
			wire.ReadFrame(remote) // the ping
			remote.Write(wire.AppendFrame(nil, wire.Frame{Type: wire.FrameRoundReply, Round: 5,
				Payload: wire.AppendReply(nil, nil, wire.RoundStats{ViolDst: -1})}))
			remote.Write(wire.AppendFrame(nil, wire.Frame{Type: wire.FrameHeartbeat}))
		}()
		if err := r.Ping(0); err != nil {
			t.Fatalf("ping: %v", err)
		}
		w := r.slots[0].w.Load()
		if _, ok := w.gotReplies[5]; !ok {
			t.Fatal("in-flight round reply read during ping was discarded")
		}
	})
	t.Run("stale reply skipped", func(t *testing.T) {
		r, remote := pipeRouter(t, nil) // nothing in flight: round 5 is stale
		go func() {
			wire.ReadFrame(remote)
			remote.Write(wire.AppendFrame(nil, wire.Frame{Type: wire.FrameRoundReply, Round: 5,
				Payload: wire.AppendReply(nil, nil, wire.RoundStats{ViolDst: -1})}))
			remote.Write(wire.AppendFrame(nil, wire.Frame{Type: wire.FrameHeartbeat}))
		}()
		if err := r.Ping(0); err != nil {
			t.Fatalf("ping: %v", err)
		}
		if len(r.slots[0].w.Load().gotReplies) != 0 {
			t.Fatal("stale reply was recorded")
		}
	})
	t.Run("protocol error rejected", func(t *testing.T) {
		r, remote := pipeRouter(t, nil)
		go func() {
			wire.ReadFrame(remote)
			remote.Write(wire.AppendFrame(nil, wire.Frame{Type: wire.FrameError, Payload: []byte("boom")}))
		}()
		err := r.Ping(0)
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("ping err = %v, want the worker's protocol error", err)
		}
	})
}

// TestResolveOptionsWindowAndRange pins the new option defaults.
func TestResolveOptionsWindowAndRange(t *testing.T) {
	o, err := resolveOptions(nil)
	if err != nil || o.Window != 1 || o.ProtoMin != wire.ProtoMin || o.ProtoMax != wire.ProtoMax {
		t.Fatalf("defaults: %+v, %v", o, err)
	}
	o, err = resolveOptions(&Options{Window: MaxWindow + 10})
	if err != nil || o.Window != MaxWindow {
		t.Fatalf("window clamp: %+v, %v", o, err)
	}
	if _, err := resolveOptions(&Options{ProtoMin: 3, ProtoMax: 2}); err == nil {
		t.Fatal("inverted protocol range accepted")
	}
}
