package dist

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist/wire"
	"repro/internal/sim"
)

// The worker side of the distributed engine. A worker process serves one
// shard: each round it receives the shard's staged global messages (in
// sender order), counting-sorts them into delivery order (per
// destination: ascending sender ID, then send order — stable sort by
// destination preserves exactly that), computes the shard's receive
// accounting, and sends the sorted stream back. The worker is a pure
// function of (Hello, round batch) plus a one-reply cache, which is what
// makes kill/respawn/replay byte-identical: a respawned worker replays
// the round from the retransmitted request and necessarily produces the
// same bytes, and a duplicate request (retransmit after a lost reply) is
// answered from the cache without recomputation.
//
// Workers are not a separate binary: spawnWorker re-execs the *current*
// executable with HYBRID_DIST_ADDR/HYBRID_DIST_SHARD set, and the init
// hook below hijacks any such process before main (or TestMain) runs. A
// dedicated binary exists anyway (cmd/hybridworker) for running workers
// by hand.

// Environment variables of the re-exec handshake.
const (
	envAddr  = "HYBRID_DIST_ADDR"
	envShard = "HYBRID_DIST_SHARD"
	// envListen hijacks the process into listen mode: the value is a
	// scheme-prefixed listen spec and the worker prints the bound address
	// as "HYBRID_DIST_LISTENING <addr>" on stdout, then accepts
	// coordinators until killed. Tests use it to pre-start real worker
	// processes for connect mode.
	envListen = "HYBRID_DIST_LISTEN"
	// EnvWorkerBin overrides the executable spawned for workers (defaults
	// to the coordinator's own binary).
	EnvWorkerBin = "HYBRID_DIST_WORKER_BIN"
)

func init() {
	if spec := os.Getenv(envListen); spec != "" {
		shard := wire.AnyShard
		if s := os.Getenv(envShard); s != "" {
			var err error
			if shard, err = strconv.Atoi(s); err != nil {
				fmt.Fprintf(os.Stderr, "hybrid dist worker: bad %s: %v\n", envShard, err)
				os.Exit(2)
			}
		}
		lw, err := StartListenWorker(spec, shard)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hybrid dist worker: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("HYBRID_DIST_LISTENING %s\n", lw.Addr())
		if err := lw.Serve(); err != nil {
			fmt.Fprintf(os.Stderr, "hybrid dist worker: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	addr := os.Getenv(envAddr)
	if addr == "" {
		return
	}
	shard, err := strconv.Atoi(os.Getenv(envShard))
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybrid dist worker: bad %s: %v\n", envShard, err)
		os.Exit(2)
	}
	if err := RunWorker(addr, shard); err != nil {
		fmt.Fprintf(os.Stderr, "hybrid dist worker %d: %v\n", shard, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// RunWorker dials the coordinator, announces which shard this process
// serves along with the protocol range this build speaks, and serves
// rounds until shutdown or connection loss.
func RunWorker(addr string, shard int) error {
	if shard < 0 {
		return fmt.Errorf("dist: negative shard %d", shard)
	}
	conn, err := dialAddr(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	join := wire.AppendFrame(nil, wire.Frame{
		Type:    wire.FrameJoin,
		Shard:   shard,
		Payload: wire.AppendHandshakeRange(nil, wire.ProtoMin, wire.ProtoMax, shard),
	})
	if _, err := conn.Write(join); err != nil {
		return fmt.Errorf("dist: sending join: %w", err)
	}
	return ServeConn(conn)
}

// ListenWorker is a pre-started worker in connect mode: it listens for
// coordinators instead of dialing one, serving them one at a time. Each
// accepted connection is announced with a Join frame carrying the
// worker's protocol range and shard pinning, then served with the normal
// protocol loop; when a connection ends (shutdown, coordinator death,
// kill fault) the worker goes back to accepting, which is what makes
// coordinator-side re-dial recovery work.
type ListenWorker struct {
	ln       net.Listener
	addr     string
	shard    int // wire.AnyShard when unpinned
	min, max int // advertised protocol range
	closed   atomic.Bool
}

// StartListenWorker opens the listen socket for spec (e.g. "tcp::9000")
// and returns the worker, ready to Serve. shard pins the worker to one
// shard; pass wire.AnyShard to let the coordinator assign it by which
// address slot it dialed.
func StartListenWorker(spec string, shard int) (*ListenWorker, error) {
	return startListenWorkerRange(spec, shard, wire.ProtoMin, wire.ProtoMax)
}

// startListenWorkerRange is StartListenWorker with an explicit protocol
// range, so tests can stand up version-bumped or legacy peers.
func startListenWorkerRange(spec string, shard, min, max int) (*ListenWorker, error) {
	if shard < wire.AnyShard {
		return nil, fmt.Errorf("dist: bad shard %d", shard)
	}
	ln, addr, err := listenSpec(spec)
	if err != nil {
		return nil, err
	}
	return &ListenWorker{ln: ln, addr: addr, shard: shard, min: min, max: max}, nil
}

// Addr is the bound, dialable scheme-prefixed address — pass it to
// dist.Options.Connect.
func (lw *ListenWorker) Addr() string { return lw.addr }

// Serve accepts coordinator connections until Close. Serving errors on
// one connection are reported on stderr and the worker keeps accepting;
// only listener failure (or Close) ends the loop.
func (lw *ListenWorker) Serve() error {
	for {
		conn, err := lw.ln.Accept()
		if err != nil {
			if lw.closed.Load() {
				return nil
			}
			return fmt.Errorf("dist: listen worker accept: %w", err)
		}
		lw.serveOne(conn)
	}
}

// serveOne announces and serves a single coordinator connection.
func (lw *ListenWorker) serveOne(conn net.Conn) {
	defer conn.Close()
	frameShard := lw.shard
	if frameShard < 0 {
		frameShard = 0 // frame headers are unsigned; the payload carries AnyShard
	}
	join := wire.AppendFrame(nil, wire.Frame{
		Type:    wire.FrameJoin,
		Shard:   frameShard,
		Payload: wire.AppendHandshakeRange(nil, lw.min, lw.max, lw.shard),
	})
	if _, err := conn.Write(join); err != nil {
		fmt.Fprintf(os.Stderr, "hybrid dist worker: sending join: %v\n", err)
		return
	}
	if err := serveConnRange(conn, lw.min, lw.max); err != nil {
		fmt.Fprintf(os.Stderr, "hybrid dist worker: %v\n", err)
	}
}

// Close stops the accept loop.
func (lw *ListenWorker) Close() error {
	lw.closed.Store(true)
	return lw.ln.Close()
}

// cachedReply is one slot of the worker's reply ring: the encoded frame
// bytes of a served round, kept so a retransmit of any in-window round is
// answered byte-identically without recomputation.
type cachedReply struct {
	round int
	reply []byte
}

// workerState is the per-connection round-serving state, configured by
// the Hello frame.
type workerState struct {
	shard  int
	lo, hi int
	logN   int
	strict int
	cut    []bool

	counts []int // per-node receive counts, indexed by Dst-lo
	// replies is the reply ring, sized to the coordinator's pipelining
	// window: under ProtoV2 up to Window rounds may be in flight at once,
	// and a lost reply to ANY of them can be retransmitted, so the cache
	// must hold one reply per in-window round (the V1 protocol's single
	// lastReply slot is the ring of size one).
	replies []cachedReply
	next    int // next ring slot to overwrite once full
}

// cached returns the ring entry for round, or nil.
func (st *workerState) cached(round int) []byte {
	for _, c := range st.replies {
		if c.round == round && c.reply != nil {
			return c.reply
		}
	}
	return nil
}

// remember stores a served round's encoded reply in the ring.
func (st *workerState) remember(round int, reply []byte) {
	if len(st.replies) < cap(st.replies) || len(st.replies) == 0 {
		st.replies = append(st.replies, cachedReply{round, reply})
		return
	}
	st.replies[st.next] = cachedReply{round, reply}
	st.next = (st.next + 1) % len(st.replies)
}

// ServeConn runs the worker protocol loop over one coordinator
// connection until a Shutdown frame, EOF, or an unrecoverable error. It
// is exported so tests can drive the exact production loop in-process
// (over net.Pipe), where coverage and the race detector see it. The
// build's full protocol range is accepted.
func ServeConn(conn net.Conn) error {
	return serveConnRange(conn, wire.ProtoMin, wire.ProtoMax)
}

// serveConnRange is ServeConn accepting only hellos whose negotiated
// version falls in [min, max] — the knob tests use to emulate older or
// newer worker builds.
func serveConnRange(conn net.Conn, min, max int) error {
	var (
		writeMu  sync.Mutex
		st       *workerState
		beatStop chan struct{}
		beatOnce bool
	)
	send := func(f wire.Frame) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		_, err := conn.Write(wire.AppendFrame(nil, f))
		return err
	}
	sendRaw := func(b []byte) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		_, err := conn.Write(b)
		return err
	}
	defer func() {
		if beatStop != nil {
			close(beatStop)
		}
	}()

	for {
		f, err := wire.ReadFrame(conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		switch f.Type {
		case wire.FrameHello:
			h, err := wire.DecodeHello(f.Payload)
			if err != nil {
				return err
			}
			if h.Proto < min || h.Proto > max {
				send(wire.Frame{Type: wire.FrameError,
					Payload: []byte(fmt.Sprintf("protocol version %d, worker speaks [%d,%d]", h.Proto, min, max))})
				return fmt.Errorf("dist: protocol version mismatch: coordinator %d, worker [%d,%d]", h.Proto, min, max)
			}
			window := h.Window
			if window < 1 {
				window = 1
			}
			if window > MaxWindow {
				window = MaxWindow
			}
			st = &workerState{
				shard: h.Shard, lo: h.Lo, hi: h.Hi, logN: h.LogN,
				strict: h.StrictRecvFactor, cut: h.Cut,
				counts:  make([]int, h.Hi-h.Lo),
				replies: make([]cachedReply, 0, window),
			}
			if err := send(wire.Frame{Type: wire.FrameHelloAck, Shard: h.Shard,
				Payload: wire.AppendHandshake(nil, h.Shard)}); err != nil {
				return err
			}
			if h.HeartbeatMillis > 0 && !beatOnce {
				beatOnce = true
				beatStop = make(chan struct{})
				go heartbeatLoop(send, h.Shard, time.Duration(h.HeartbeatMillis)*time.Millisecond, beatStop)
			}
		case wire.FrameRound:
			if st == nil {
				if err := send(wire.Frame{Type: wire.FrameError,
					Payload: []byte("round before hello")}); err != nil {
					return err
				}
				continue
			}
			if cached := st.cached(f.Round); cached != nil {
				// Duplicate of an in-window round already served: the
				// coordinator's retry path resent after a lost or late
				// reply. Answer from the ring — recomputing would be
				// byte-identical, resending is cheaper.
				if err := sendRaw(cached); err != nil {
					return err
				}
				continue
			}
			msgs, err := wire.DecodeMsgs(f.Payload)
			if err != nil {
				if serr := send(wire.Frame{Type: wire.FrameError,
					Payload: []byte(fmt.Sprintf("round %d: %v", f.Round, err))}); serr != nil {
					return serr
				}
				continue
			}
			sorted, stats, err := st.processRound(msgs)
			if err != nil {
				if serr := send(wire.Frame{Type: wire.FrameError,
					Payload: []byte(fmt.Sprintf("round %d: %v", f.Round, err))}); serr != nil {
					return serr
				}
				continue
			}
			reply := wire.AppendFrame(nil, wire.Frame{
				Type:    wire.FrameRoundReply,
				Round:   f.Round,
				Shard:   st.shard,
				Payload: wire.AppendReply(nil, sorted, stats),
			})
			st.remember(f.Round, reply)
			if err := sendRaw(reply); err != nil {
				return err
			}
		case wire.FrameHeartbeat:
			// Coordinator ping: echo one back.
			if err := send(wire.Frame{Type: wire.FrameHeartbeat, Shard: f.Shard}); err != nil {
				return err
			}
		case wire.FrameShutdown:
			return nil
		default:
			return fmt.Errorf("dist: worker received unexpected %v frame", f.Type)
		}
	}
}

// heartbeatLoop emits unsolicited liveness beacons until stopped or the
// connection dies.
func heartbeatLoop(send func(wire.Frame) error, shard int, every time.Duration, stop chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if send(wire.Frame{Type: wire.FrameHeartbeat, Shard: shard}) != nil {
				return
			}
		}
	}
}

// processRound sorts one round's batch into delivery order and computes
// the shard's receive accounting (mirroring runShard's tallies).
func (st *workerState) processRound(msgs []sim.GlobalMsg) ([]sim.GlobalMsg, wire.RoundStats, error) {
	for i := range st.counts {
		st.counts[i] = 0
	}
	stats := wire.RoundStats{Msgs: int64(len(msgs)), ViolDst: -1}
	for _, m := range msgs {
		if m.Dst < st.lo || m.Dst >= st.hi {
			return nil, wire.RoundStats{}, fmt.Errorf("message for node %d outside shard range [%d,%d)", m.Dst, st.lo, st.hi)
		}
		st.counts[m.Dst-st.lo]++
		if st.cut != nil {
			if m.Src < 0 || m.Src >= len(st.cut) {
				return nil, wire.RoundStats{}, fmt.Errorf("message from node %d outside graph of %d nodes", m.Src, len(st.cut))
			}
			if st.cut[m.Src] != st.cut[m.Dst] {
				stats.CutMsgs++
			}
		}
	}
	// Stable sort by destination: within a destination the request order
	// (ascending sender, then send order) survives, which is exactly the
	// engine's inbox contract.
	sorted := make([]sim.GlobalMsg, len(msgs))
	copy(sorted, msgs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Dst < sorted[j].Dst })

	if len(msgs) > 0 {
		for d := range st.counts {
			c := st.counts[d]
			if c == 0 {
				continue
			}
			if int64(c) > stats.MaxRecv {
				stats.MaxRecv = int64(c)
			}
			if st.strict > 0 && c > st.strict*st.logN && stats.ViolDst < 0 {
				stats.ViolDst = int64(st.lo + d)
				stats.ViolCount = int64(c)
			}
		}
	}
	return sorted, stats, nil
}
