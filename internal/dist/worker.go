package dist

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/dist/wire"
	"repro/internal/sim"
)

// The worker side of the distributed engine. A worker process serves one
// shard: each round it receives the shard's staged global messages (in
// sender order), counting-sorts them into delivery order (per
// destination: ascending sender ID, then send order — stable sort by
// destination preserves exactly that), computes the shard's receive
// accounting, and sends the sorted stream back. The worker is a pure
// function of (Hello, round batch) plus a one-reply cache, which is what
// makes kill/respawn/replay byte-identical: a respawned worker replays
// the round from the retransmitted request and necessarily produces the
// same bytes, and a duplicate request (retransmit after a lost reply) is
// answered from the cache without recomputation.
//
// Workers are not a separate binary: spawnWorker re-execs the *current*
// executable with HYBRID_DIST_ADDR/HYBRID_DIST_SHARD set, and the init
// hook below hijacks any such process before main (or TestMain) runs. A
// dedicated binary exists anyway (cmd/hybridworker) for running workers
// by hand.

// Environment variables of the re-exec handshake.
const (
	envAddr  = "HYBRID_DIST_ADDR"
	envShard = "HYBRID_DIST_SHARD"
	// EnvWorkerBin overrides the executable spawned for workers (defaults
	// to the coordinator's own binary).
	EnvWorkerBin = "HYBRID_DIST_WORKER_BIN"
)

func init() {
	addr := os.Getenv(envAddr)
	if addr == "" {
		return
	}
	shard, err := strconv.Atoi(os.Getenv(envShard))
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybrid dist worker: bad %s: %v\n", envShard, err)
		os.Exit(2)
	}
	if err := RunWorker(addr, shard); err != nil {
		fmt.Fprintf(os.Stderr, "hybrid dist worker %d: %v\n", shard, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// RunWorker dials the coordinator, announces which shard this process
// serves, and serves rounds until shutdown or connection loss.
func RunWorker(addr string, shard int) error {
	if shard < 0 {
		return fmt.Errorf("dist: negative shard %d", shard)
	}
	conn, err := dialAddr(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	join := wire.AppendFrame(nil, wire.Frame{
		Type:    wire.FrameJoin,
		Shard:   shard,
		Payload: wire.AppendHandshake(nil, shard),
	})
	if _, err := conn.Write(join); err != nil {
		return fmt.Errorf("dist: sending join: %w", err)
	}
	return ServeConn(conn)
}

// workerState is the per-connection round-serving state, configured by
// the Hello frame.
type workerState struct {
	shard  int
	lo, hi int
	logN   int
	strict int
	cut    []bool

	counts    []int // per-node receive counts, indexed by Dst-lo
	lastRound int
	lastReply []byte // encoded frame bytes of the last reply, for retransmits
}

// ServeConn runs the worker protocol loop over one coordinator
// connection until a Shutdown frame, EOF, or an unrecoverable error. It
// is exported so tests can drive the exact production loop in-process
// (over net.Pipe), where coverage and the race detector see it.
func ServeConn(conn net.Conn) error {
	var (
		writeMu  sync.Mutex
		st       *workerState
		beatStop chan struct{}
		beatOnce bool
	)
	send := func(f wire.Frame) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		_, err := conn.Write(wire.AppendFrame(nil, f))
		return err
	}
	sendRaw := func(b []byte) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		_, err := conn.Write(b)
		return err
	}
	defer func() {
		if beatStop != nil {
			close(beatStop)
		}
	}()

	for {
		f, err := wire.ReadFrame(conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		switch f.Type {
		case wire.FrameHello:
			h, err := wire.DecodeHello(f.Payload)
			if err != nil {
				return err
			}
			if h.Proto != wire.ProtoVersion {
				send(wire.Frame{Type: wire.FrameError,
					Payload: []byte(fmt.Sprintf("protocol version %d, worker speaks %d", h.Proto, wire.ProtoVersion))})
				return fmt.Errorf("dist: protocol version mismatch: coordinator %d, worker %d", h.Proto, wire.ProtoVersion)
			}
			st = &workerState{
				shard: h.Shard, lo: h.Lo, hi: h.Hi, logN: h.LogN,
				strict: h.StrictRecvFactor, cut: h.Cut,
				counts: make([]int, h.Hi-h.Lo),
			}
			if err := send(wire.Frame{Type: wire.FrameHelloAck, Shard: h.Shard,
				Payload: wire.AppendHandshake(nil, h.Shard)}); err != nil {
				return err
			}
			if h.HeartbeatMillis > 0 && !beatOnce {
				beatOnce = true
				beatStop = make(chan struct{})
				go heartbeatLoop(send, h.Shard, time.Duration(h.HeartbeatMillis)*time.Millisecond, beatStop)
			}
		case wire.FrameRound:
			if st == nil {
				if err := send(wire.Frame{Type: wire.FrameError,
					Payload: []byte("round before hello")}); err != nil {
					return err
				}
				continue
			}
			if f.Round == st.lastRound && st.lastReply != nil {
				// Duplicate of the round just served: the coordinator's
				// retry path resent after a lost or late reply. Answer
				// from the cache — recomputing would be byte-identical,
				// resending is cheaper.
				if err := sendRaw(st.lastReply); err != nil {
					return err
				}
				continue
			}
			msgs, err := wire.DecodeMsgs(f.Payload)
			if err != nil {
				if serr := send(wire.Frame{Type: wire.FrameError,
					Payload: []byte(fmt.Sprintf("round %d: %v", f.Round, err))}); serr != nil {
					return serr
				}
				continue
			}
			sorted, stats, err := st.processRound(msgs)
			if err != nil {
				if serr := send(wire.Frame{Type: wire.FrameError,
					Payload: []byte(fmt.Sprintf("round %d: %v", f.Round, err))}); serr != nil {
					return serr
				}
				continue
			}
			reply := wire.AppendFrame(nil, wire.Frame{
				Type:    wire.FrameRoundReply,
				Round:   f.Round,
				Shard:   st.shard,
				Payload: wire.AppendReply(nil, sorted, stats),
			})
			st.lastRound = f.Round
			st.lastReply = reply
			if err := sendRaw(reply); err != nil {
				return err
			}
		case wire.FrameHeartbeat:
			// Coordinator ping: echo one back.
			if err := send(wire.Frame{Type: wire.FrameHeartbeat, Shard: f.Shard}); err != nil {
				return err
			}
		case wire.FrameShutdown:
			return nil
		default:
			return fmt.Errorf("dist: worker received unexpected %v frame", f.Type)
		}
	}
}

// heartbeatLoop emits unsolicited liveness beacons until stopped or the
// connection dies.
func heartbeatLoop(send func(wire.Frame) error, shard int, every time.Duration, stop chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if send(wire.Frame{Type: wire.FrameHeartbeat, Shard: shard}) != nil {
				return
			}
		}
	}
}

// processRound sorts one round's batch into delivery order and computes
// the shard's receive accounting (mirroring runShard's tallies).
func (st *workerState) processRound(msgs []sim.GlobalMsg) ([]sim.GlobalMsg, wire.RoundStats, error) {
	for i := range st.counts {
		st.counts[i] = 0
	}
	stats := wire.RoundStats{Msgs: int64(len(msgs)), ViolDst: -1}
	for _, m := range msgs {
		if m.Dst < st.lo || m.Dst >= st.hi {
			return nil, wire.RoundStats{}, fmt.Errorf("message for node %d outside shard range [%d,%d)", m.Dst, st.lo, st.hi)
		}
		st.counts[m.Dst-st.lo]++
		if st.cut != nil {
			if m.Src < 0 || m.Src >= len(st.cut) {
				return nil, wire.RoundStats{}, fmt.Errorf("message from node %d outside graph of %d nodes", m.Src, len(st.cut))
			}
			if st.cut[m.Src] != st.cut[m.Dst] {
				stats.CutMsgs++
			}
		}
	}
	// Stable sort by destination: within a destination the request order
	// (ascending sender, then send order) survives, which is exactly the
	// engine's inbox contract.
	sorted := make([]sim.GlobalMsg, len(msgs))
	copy(sorted, msgs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Dst < sorted[j].Dst })

	if len(msgs) > 0 {
		for d := range st.counts {
			c := st.counts[d]
			if c == 0 {
				continue
			}
			if int64(c) > stats.MaxRecv {
				stats.MaxRecv = int64(c)
			}
			if st.strict > 0 && c > st.strict*st.logN && stats.ViolDst < 0 {
				stats.ViolDst = int64(st.lo + d)
				stats.ViolCount = int64(c)
			}
		}
	}
	return sorted, stats, nil
}
