package dist

import (
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/dist/wire"
	"repro/internal/graph"
	"repro/internal/sim"
)

// chatter is the same deliberately messy differential workload the sim
// package uses: random local and global traffic, uneven finishing times,
// and an accumulator sensitive to inbox order and content.
func chatter(out []int64) sim.Program {
	return func(env *sim.Env) {
		rounds := 6 + env.ID()%5
		acc := int64(env.ID())
		for r := 0; r < rounds; r++ {
			for _, nb := range env.Neighbors() {
				if env.Rand().Intn(2) == 0 {
					env.SendLocal(nb.To, int64(env.ID()*1000+r))
				}
			}
			sends := env.Rand().Intn(env.GlobalCap() + 1)
			for s := 0; s < sends; s++ {
				env.SendGlobal(env.Rand().Intn(env.N()), sim.Kind(r), int64(env.ID()), int64(r), int64(s), 7)
			}
			in := env.Step()
			for _, lm := range in.Local {
				acc = acc*31 + int64(lm.From)
				if v, ok := lm.Payload.(int64); ok {
					acc = acc*31 + v
				}
			}
			for _, gm := range in.Global {
				acc = acc*31 + int64(gm.Src)*8191 + gm.F1*13 + gm.F2
			}
		}
		out[env.ID()] = acc
	}
}

func runChatter(t *testing.T, g *graph.Graph, cfg sim.Config) ([]int64, sim.Metrics) {
	t.Helper()
	out := make([]int64, g.N())
	m, err := sim.Run(g, cfg, chatter(out))
	if err != nil {
		t.Fatal(err)
	}
	return out, m
}

// TestDistEngineMatchesLegacy is the dist differential: for several
// topologies, seeds, and worker counts, EngineDist must produce
// byte-identical per-node results and Metrics to the legacy oracle.
func TestDistEngineMatchesLegacy(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid": graph.Grid(6, 7),
		"path": graph.Path(33),
	}
	for name, g := range graphs {
		for seed := int64(1); seed <= 2; seed++ {
			wantOut, wantM := runChatter(t, g, sim.Config{Seed: seed, Engine: sim.EngineLegacy})
			for _, workers := range []int{1, 2, 3} {
				out, m := runChatter(t, g, sim.Config{Seed: seed, Engine: sim.EngineDist, DistWorkers: workers})
				if !reflect.DeepEqual(wantOut, out) {
					t.Fatalf("%s seed %d workers %d: results differ from legacy", name, seed, workers)
				}
				if wantM != m {
					t.Fatalf("%s seed %d workers %d: metrics differ:\nlegacy %+v\ndist   %+v", name, seed, workers, wantM, m)
				}
			}
		}
	}
}

// TestDistFrameTimeoutRetry injects dropped request frames and asserts
// the bounded retry path recovers: the run succeeds, stays byte-identical
// to the clean run, and the plan accounts for every drop.
func TestDistFrameTimeoutRetry(t *testing.T) {
	g := graph.Grid(5, 6)
	wantOut, wantM := runChatter(t, g, sim.Config{Seed: 9, Engine: sim.EngineLegacy})

	faults := NewFaults().DropFrames(1, 3, 2).DropFrames(0, 5, 1)
	opts := &Options{Faults: faults, FrameTimeout: 100 * time.Millisecond, Retries: 5}
	out, m := runChatter(t, g, sim.Config{
		Seed: 9, Engine: sim.EngineDist, DistWorkers: 2, DistOpts: opts,
	})
	if !reflect.DeepEqual(wantOut, out) {
		t.Fatal("results differ from clean legacy run after injected drops")
	}
	if wantM != m {
		t.Fatalf("metrics differ after injected drops:\nlegacy %+v\ndist   %+v", wantM, m)
	}
	st := faults.Stats()
	if st.Dropped != 3 {
		t.Fatalf("injected %d drops, want 3", st.Dropped)
	}
	if st.Killed != 0 || st.Respawns != 0 {
		t.Fatalf("drop-only plan reports kills/respawns: %+v", st)
	}
}

// TestDistRetryExhaustion drops more frames than the retry budget allows
// and asserts the run aborts with the bounded-attempts error rather than
// hanging.
func TestDistRetryExhaustion(t *testing.T) {
	g := graph.Path(12)
	faults := NewFaults().DropFrames(0, 2, 10)
	opts := &Options{Faults: faults, FrameTimeout: 50 * time.Millisecond, Retries: 3}
	out := make([]int64, g.N())
	_, err := sim.Run(g, sim.Config{
		Seed: 3, Engine: sim.EngineDist, DistWorkers: 1, DistOpts: opts,
	}, chatter(out))
	if err == nil {
		t.Fatal("want retry-exhaustion error, got success")
	}
	if !strings.Contains(err.Error(), "failed after 3 attempts") {
		t.Fatalf("err = %v, want bounded-attempts failure", err)
	}
}

// TestDistKillRespawnReplay kills a worker mid-run and asserts the
// respawned worker replays the round byte-identically: same results, same
// Metrics as the fault-free run.
func TestDistKillRespawnReplay(t *testing.T) {
	g := graph.Grid(5, 6)
	wantOut, wantM := runChatter(t, g, sim.Config{Seed: 17, Engine: sim.EngineLegacy})

	faults := NewFaults().KillWorker(1, 4)
	out, m := runChatter(t, g, sim.Config{
		Seed: 17, Engine: sim.EngineDist, DistWorkers: 2, DistOpts: WithFaults(faults),
	})
	if !reflect.DeepEqual(wantOut, out) {
		t.Fatal("results differ from clean run after worker kill")
	}
	if wantM != m {
		t.Fatalf("metrics differ after worker kill:\nclean %+v\nkill  %+v", wantM, m)
	}
	st := faults.Stats()
	if st.Killed != 1 {
		t.Fatalf("killed %d workers, want 1", st.Killed)
	}
	if st.Respawns < 1 {
		t.Fatalf("respawns = %d, want >= 1", st.Respawns)
	}
}

// TestDistTCPTransport runs the differential over TCP instead of unix
// sockets: the protocol is transport-agnostic.
func TestDistTCPTransport(t *testing.T) {
	g := graph.Grid(4, 5)
	wantOut, wantM := runChatter(t, g, sim.Config{Seed: 5, Engine: sim.EngineLegacy})
	out, m := runChatter(t, g, sim.Config{
		Seed: 5, Engine: sim.EngineDist, DistWorkers: 2, DistOpts: &Options{Transport: "tcp"},
	})
	if !reflect.DeepEqual(wantOut, out) {
		t.Fatal("tcp transport results differ from legacy")
	}
	if wantM != m {
		t.Fatalf("tcp transport metrics differ:\nlegacy %+v\ndist   %+v", wantM, m)
	}
}

// TestDistStrictRecvViolation: the distributed engine must detect strict
// receive-cap violations with the exact same error as the in-process
// engines (lowest violating node wins, same message text).
func TestDistStrictRecvViolation(t *testing.T) {
	g := graph.Path(24)
	flood := func(env *sim.Env) {
		if env.ID() != 5 && env.ID() != 20 {
			env.SendGlobal(5, 0, 0, 0, 0, 0)
			env.SendGlobal(20, 0, 0, 0, 0, 0)
		}
		env.Step()
	}
	_, stepErr := sim.Run(g, sim.Config{StrictRecvFactor: 1, Engine: sim.EngineStep}, flood)
	_, distErr := sim.Run(g, sim.Config{StrictRecvFactor: 1, Engine: sim.EngineDist, DistWorkers: 3}, flood)
	if stepErr == nil || distErr == nil {
		t.Fatalf("want violations from both engines, got step=%v dist=%v", stepErr, distErr)
	}
	if stepErr.Error() != distErr.Error() {
		t.Fatalf("violation errors differ:\nstep %v\ndist %v", stepErr, distErr)
	}
}

// TestRouterHeartbeatAndPing drives a Router directly: workers beat on
// their own, Ping round-trips, and an empty round routes cleanly.
func TestRouterHeartbeatAndPing(t *testing.T) {
	r, err := New(sim.DistRouterConfig{
		N: 8, LogN: 3, Workers: 2, ShardSize: 4,
		Opts: &Options{HeartbeatEvery: 20 * time.Millisecond, FrameTimeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for k := 0; k < 2; k++ {
		if err := r.Ping(k); err != nil {
			t.Fatalf("ping worker %d: %v", k, err)
		}
		if r.LastHeartbeat(k).IsZero() {
			t.Fatalf("worker %d: no heartbeat recorded after ping", k)
		}
	}
	streams, stats, err := r.RouteRound(1, [][]sim.GlobalMsg{nil, nil})
	if err != nil {
		t.Fatal(err)
	}
	if stats.GlobalMsgs != 0 || len(streams) != 2 || len(streams[0]) != 0 || len(streams[1]) != 0 {
		t.Fatalf("empty round returned %+v / %+v", streams, stats)
	}
	// The unsolicited beat must eventually advance the liveness clock
	// even without traffic: wait for a fresh beat via Ping.
	time.Sleep(50 * time.Millisecond)
	if err := r.Ping(0); err != nil {
		t.Fatal(err)
	}
	if r.Respawns() != 0 {
		t.Fatalf("respawns = %d, want 0", r.Respawns())
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.RouteRound(2, [][]sim.GlobalMsg{nil, nil}); err == nil {
		t.Fatal("RouteRound after Close must fail")
	}
}

// serveConnPair starts the production worker loop over an in-process
// pipe, where coverage and the race detector can see it.
func serveConnPair(t *testing.T) (client net.Conn, done chan error) {
	t.Helper()
	client, server := net.Pipe()
	done = make(chan error, 1)
	go func() { done <- ServeConn(server) }()
	t.Cleanup(func() { client.Close() })
	return client, done
}

func sendFrame(t *testing.T, c net.Conn, f wire.Frame) {
	t.Helper()
	if _, err := c.Write(wire.AppendFrame(nil, f)); err != nil {
		t.Fatalf("write %v frame: %v", f.Type, err)
	}
}

func readFrame(t *testing.T, c net.Conn) wire.Frame {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := wire.ReadFrame(c)
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	return f
}

// TestServeConnProtocol walks the worker loop through the full protocol:
// hello/ack, a round with out-of-order traffic, a duplicate-round
// retransmit answered from the reply cache, ping/pong, shutdown.
func TestServeConnProtocol(t *testing.T) {
	client, done := serveConnPair(t)
	hello := wire.Hello{
		Proto: wire.ProtoVersion, N: 8, LogN: 3, Shard: 1, Lo: 4, Hi: 8,
		StrictRecvFactor: 0, HeartbeatMillis: 0,
	}
	sendFrame(t, client, wire.Frame{Type: wire.FrameHello, Shard: 1, Payload: wire.AppendHello(nil, hello)})
	ack := readFrame(t, client)
	if ack.Type != wire.FrameHelloAck {
		t.Fatalf("got %v, want hello ack", ack.Type)
	}

	msgs := []sim.GlobalMsg{
		{Src: 0, Dst: 7, Kind: 1, F0: 10},
		{Src: 0, Dst: 4, Kind: 1, F0: 11},
		{Src: 2, Dst: 7, Kind: 2, F0: 12},
		{Src: 3, Dst: 4, Kind: 3, F0: 13},
	}
	req := wire.Frame{Type: wire.FrameRound, Round: 1, Shard: 1, Payload: wire.AppendMsgs(nil, msgs)}
	sendFrame(t, client, req)
	reply := readFrame(t, client)
	if reply.Type != wire.FrameRoundReply || reply.Round != 1 {
		t.Fatalf("got %v round %d, want round reply 1", reply.Type, reply.Round)
	}
	sorted, stats, err := wire.DecodeReply(reply.Payload)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []sim.GlobalMsg{
		{Src: 0, Dst: 4, Kind: 1, F0: 11},
		{Src: 3, Dst: 4, Kind: 3, F0: 13},
		{Src: 0, Dst: 7, Kind: 1, F0: 10},
		{Src: 2, Dst: 7, Kind: 2, F0: 12},
	}
	if !reflect.DeepEqual(sorted, wantOrder) {
		t.Fatalf("delivery order = %+v, want %+v", sorted, wantOrder)
	}
	if stats.Msgs != 4 || stats.MaxRecv != 2 || stats.ViolDst != -1 {
		t.Fatalf("stats = %+v", stats)
	}

	// A retransmit of the same round must come back byte-identical from
	// the cache.
	sendFrame(t, client, req)
	again := readFrame(t, client)
	if !reflect.DeepEqual(again, reply) {
		t.Fatalf("cached retransmit reply differs: %+v vs %+v", again, reply)
	}

	sendFrame(t, client, wire.Frame{Type: wire.FrameHeartbeat, Shard: 1})
	if pong := readFrame(t, client); pong.Type != wire.FrameHeartbeat {
		t.Fatalf("ping answered with %v", pong.Type)
	}

	sendFrame(t, client, wire.Frame{Type: wire.FrameShutdown, Shard: 1})
	if err := <-done; err != nil {
		t.Fatalf("ServeConn returned %v after shutdown", err)
	}
}

// TestServeConnErrors exercises the worker loop's refusal paths: a round
// before hello, a corrupt batch, an out-of-range destination, and a
// protocol-version mismatch.
func TestServeConnErrors(t *testing.T) {
	t.Run("round before hello", func(t *testing.T) {
		client, _ := serveConnPair(t)
		sendFrame(t, client, wire.Frame{Type: wire.FrameRound, Round: 1, Payload: wire.AppendMsgs(nil, nil)})
		f := readFrame(t, client)
		if f.Type != wire.FrameError || !strings.Contains(string(f.Payload), "before hello") {
			t.Fatalf("got %v %q", f.Type, f.Payload)
		}
	})
	t.Run("corrupt batch", func(t *testing.T) {
		client, _ := serveConnPair(t)
		hello := wire.Hello{Proto: wire.ProtoVersion, N: 8, LogN: 3, Shard: 0, Lo: 0, Hi: 8}
		sendFrame(t, client, wire.Frame{Type: wire.FrameHello, Payload: wire.AppendHello(nil, hello)})
		readFrame(t, client) // ack
		sendFrame(t, client, wire.Frame{Type: wire.FrameRound, Round: 1, Payload: []byte{0xff, 0xff}})
		f := readFrame(t, client)
		if f.Type != wire.FrameError {
			t.Fatalf("corrupt batch answered with %v", f.Type)
		}
	})
	t.Run("destination outside shard", func(t *testing.T) {
		client, _ := serveConnPair(t)
		hello := wire.Hello{Proto: wire.ProtoVersion, N: 8, LogN: 3, Shard: 0, Lo: 0, Hi: 4}
		sendFrame(t, client, wire.Frame{Type: wire.FrameHello, Payload: wire.AppendHello(nil, hello)})
		readFrame(t, client) // ack
		bad := wire.AppendMsgs(nil, []sim.GlobalMsg{{Src: 0, Dst: 6}})
		sendFrame(t, client, wire.Frame{Type: wire.FrameRound, Round: 1, Payload: bad})
		f := readFrame(t, client)
		if f.Type != wire.FrameError || !strings.Contains(string(f.Payload), "outside shard range") {
			t.Fatalf("got %v %q", f.Type, f.Payload)
		}
	})
	t.Run("proto mismatch", func(t *testing.T) {
		client, done := serveConnPair(t)
		hello := wire.Hello{Proto: wire.ProtoMax + 1, N: 8, LogN: 3, Shard: 0, Lo: 0, Hi: 8, Window: 1}
		sendFrame(t, client, wire.Frame{Type: wire.FrameHello, Payload: wire.AppendHello(nil, hello)})
		f := readFrame(t, client)
		if f.Type != wire.FrameError || !strings.Contains(string(f.Payload), "worker speaks") {
			t.Fatalf("version mismatch answered with %v %q", f.Type, f.Payload)
		}
		if err := <-done; err == nil {
			t.Fatal("ServeConn must fail on protocol mismatch")
		}
	})
}

// TestProcessRoundCutAccounting: cut-crossing global messages are counted
// worker-side exactly as runShard counts them.
func TestProcessRoundCutAccounting(t *testing.T) {
	cut := []bool{true, true, false, false}
	st := &workerState{shard: 0, lo: 0, hi: 4, logN: 2, cut: cut, counts: make([]int, 4)}
	msgs := []sim.GlobalMsg{
		{Src: 0, Dst: 2}, // crosses
		{Src: 0, Dst: 1}, // same side
		{Src: 3, Dst: 1}, // crosses
	}
	_, stats, err := st.processRound(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CutMsgs != 2 {
		t.Fatalf("cut msgs = %d, want 2", stats.CutMsgs)
	}
}

// TestResolveOptions pins the defaults and the accepted DistOpts types.
func TestResolveOptions(t *testing.T) {
	o, err := resolveOptions(nil)
	if err != nil || o.FrameTimeout != defaultFrameTimeout || o.Retries != defaultRetries {
		t.Fatalf("nil opts resolved to %+v, %v", o, err)
	}
	f := NewFaults()
	o, err = resolveOptions(f)
	if err != nil || o.Faults != f {
		t.Fatalf("*Faults opts resolved to %+v, %v", o, err)
	}
	if _, err := resolveOptions(42); err == nil {
		t.Fatal("want error for unsupported DistOpts type")
	}
	o, err = resolveOptions(&Options{HeartbeatEvery: -1})
	if err != nil || o.HeartbeatEvery != -1 {
		t.Fatalf("negative heartbeat must survive resolution, got %+v, %v", o, err)
	}
}

// TestDistRespawnBudgetExhausted kills the worker at every round so each
// respawned process is killed again on its next send: with a budget of 2
// the run must abort with the flapping error instead of respawning
// forever.
func TestDistRespawnBudgetExhausted(t *testing.T) {
	g := graph.Path(12)
	faults := NewFaults()
	for round := 0; round < 40; round++ {
		faults.KillWorker(0, round)
	}
	opts := &Options{Faults: faults, FrameTimeout: 50 * time.Millisecond, Retries: 8, MaxRespawns: 2}
	out := make([]int64, g.N())
	_, err := sim.Run(g, sim.Config{
		Seed: 3, Engine: sim.EngineDist, DistWorkers: 1, DistOpts: opts,
	}, chatter(out))
	if err == nil {
		t.Fatal("want respawn-budget error, got success")
	}
	if !strings.Contains(err.Error(), "respawn budget (2) exhausted") {
		t.Fatalf("err = %v, want respawn-budget exhaustion", err)
	}
	if st := faults.Stats(); st.Respawns != 2 {
		t.Fatalf("plan reports %d respawns, want exactly the budget of 2", st.Respawns)
	}
}

// TestDistRespawnBudgetUnlimited pins the negative-means-unlimited
// contract: a plan with more kills than the default budget still
// completes byte-identically when MaxRespawns is negative.
func TestDistRespawnBudgetUnlimited(t *testing.T) {
	g := graph.Path(10)
	wantOut, wantM := runChatter(t, g, sim.Config{Seed: 5, Engine: sim.EngineLegacy})

	faults := NewFaults().KillWorker(0, 2).KillWorker(0, 4).KillWorker(0, 6)
	opts := &Options{Faults: faults, MaxRespawns: -1}
	out, m := runChatter(t, g, sim.Config{
		Seed: 5, Engine: sim.EngineDist, DistWorkers: 1, DistOpts: opts,
	})
	if !reflect.DeepEqual(wantOut, out) {
		t.Fatal("results differ from clean run under repeated kills")
	}
	if wantM != m {
		t.Fatalf("metrics differ under repeated kills:\nlegacy %+v\ndist   %+v", wantM, m)
	}
	if st := faults.Stats(); st.Respawns != 3 {
		t.Fatalf("plan reports %d respawns, want 3", st.Respawns)
	}
}

// TestDistRunDeadline pins the overall run deadline: an already-expired
// deadline aborts the first round non-retryably, and a generous one
// leaves a clean run byte-identical.
func TestDistRunDeadline(t *testing.T) {
	g := graph.Path(10)
	out := make([]int64, g.N())
	_, err := sim.Run(g, sim.Config{
		Seed: 5, Engine: sim.EngineDist, DistWorkers: 1,
		DistOpts: &Options{RunTimeout: time.Nanosecond},
	}, chatter(out))
	if err == nil {
		t.Fatal("want run-deadline error, got success")
	}
	if !strings.Contains(err.Error(), "run deadline") {
		t.Fatalf("err = %v, want run-deadline failure", err)
	}

	wantOut, wantM := runChatter(t, g, sim.Config{Seed: 5, Engine: sim.EngineLegacy})
	got, m := runChatter(t, g, sim.Config{
		Seed: 5, Engine: sim.EngineDist, DistWorkers: 1,
		DistOpts: &Options{RunTimeout: 5 * time.Minute},
	})
	if !reflect.DeepEqual(wantOut, got) || wantM != m {
		t.Fatal("generous deadline perturbed a clean run")
	}
}
