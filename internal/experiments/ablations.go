package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/helpers"
	"repro/internal/hybridapsp"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/skeleton"
)

// Ablations for the design choices DESIGN.md documents as deviations or
// tunings of the paper's constants. Each shows why the default was chosen.

// A1HelperQBoost ablates the helper-sampling boost (paper: q = 2µ/|C|;
// default here: QBoost=2, i.e. q = 4µ/|C|, plus the deterministic
// self-join): lower boosts shrink the smallest helper set below µ, which
// breaks property (1) of Definition 2.1 at small n.
func A1HelperQBoost(cfg Config) Table {
	t := Table{
		ID:     "A1",
		Title:  "Ablation: helper-set sampling boost (Lemma 2.2 constants)",
		Header: []string{"QBoost", "min |H_w| (sampled)", "avg |H_w|", "max load", "property-1 ok"},
	}
	n := 144
	if cfg.Quick {
		n = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 41))
	g := graph.SparseConnected(n, 1.0, rng)
	inW := make([]bool, n)
	wrng := rand.New(rand.NewSource(cfg.Seed + 43))
	for i := range inW {
		inW[i] = wrng.Float64() < 0.2
	}
	const mu = 4
	for _, boost := range []int{1, 2, 3} {
		results := make([]helpers.Result, n)
		_, err := sim.Run(g, sim.Config{Seed: cfg.Seed}, func(env *sim.Env) {
			results[env.ID()] = helpers.Compute(env, inW[env.ID()], mu, helpers.Params{QBoost: boost})
		})
		if err != nil {
			t.Failf("boost=%d: %v", boost, err)
			continue
		}
		minH, avgH, maxLoad, sampledOK := qboostStats(results, inW, mu)
		t.Add(fmt.Sprint(boost), fmt.Sprint(minH), fmt.Sprintf("%.1f", avgH),
			fmt.Sprint(maxLoad), fmt.Sprint(sampledOK))
	}
	t.Notef("'sampled' counts exclude the deterministic self-join; mu = %d. The default QBoost=2 keeps sampled sets >= mu at laptop-scale n", mu)
	return t
}

func qboostStats(results []helpers.Result, inW []bool, mu int) (int, float64, int, bool) {
	hw := map[int]int{}
	maxLoad := 0
	for x := range results {
		if l := len(results[x].Helps); l > maxLoad {
			maxLoad = l
		}
		for _, w := range results[x].Helps {
			if w != x { // exclude self-joins to see the raw sampling
				hw[w]++
			}
		}
	}
	minH, total, count := 1<<30, 0, 0
	for w, in := range inW {
		if !in {
			continue
		}
		c := hw[w]
		if c < minH {
			minH = c
		}
		total += c
		count++
	}
	if count == 0 {
		return 0, 0, maxLoad, true
	}
	return minH, float64(total) / float64(count), maxLoad, minH >= mu
}

// A2GlobalSendFactor ablates the global-mode cap multiplier: the model
// grants O(log n) messages per round; a larger multiplier shortens the
// token-bound phases proportionally without changing correctness —
// quantifying how much of the round count is bandwidth-bound.
func A2GlobalSendFactor(cfg Config) Table {
	t := Table{
		ID:     "A2",
		Title:  "Ablation: global send cap multiplier (bandwidth-boundness)",
		Header: []string{"factor", "APSP rounds", "speedup vs 1x", "exact"},
	}
	n := 100
	if !cfg.Quick {
		n = 144
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 47))
	g := graph.SparseConnected(n, 1.2, rng)
	want := graph.APSP(g)
	base := 0
	for _, factor := range []int{1, 2, 4} {
		out := make([][]int64, n)
		m, err := sim.Run(g, sim.Config{Seed: cfg.Seed, GlobalSendFactor: factor}, func(env *sim.Env) {
			out[env.ID()] = hybridapsp.Compute(env, hybridapsp.Params{})
		})
		if err != nil {
			t.Failf("factor=%d: %v", factor, err)
			continue
		}
		exact := matches(out, want)
		if factor == 1 {
			base = m.Rounds
		}
		speed := "1.00"
		if base > 0 {
			speed = fmt.Sprintf("%.2f", float64(base)/float64(m.Rounds))
		}
		t.Add(fmt.Sprint(factor), fmt.Sprint(m.Rounds), speed, fmt.Sprint(exact))
		if !exact {
			t.Failf("factor=%d: APSP inexact", factor)
		}
	}
	t.Notef("sub-linear speedup shows the run is dominated by the local exploration and ruling-set phases, not global bandwidth, at these n")
	return t
}

func matches(out, want [][]int64) bool {
	for u := range want {
		for v := range want[u] {
			if out[u][v] != want[u][v] {
				return false
			}
		}
	}
	return true
}

// A3SkeletonHFactor ablates the Lemma C.1 constant ξ (h = ξ·n^(1-x)·ln n):
// ξ = 1 leaves the per-position gap probability at ~1/n, so coverage fails
// with constant probability over n positions — the reason the repository
// defaults to ξ = 2.
func A3SkeletonHFactor(cfg Config) Table {
	t := Table{
		ID:     "A3",
		Title:  "Ablation: skeleton exploration constant ξ (Lemma C.1 coverage)",
		Header: []string{"xi", "seeds", "coverage failures", "skeleton disconnects", "APSP rounds (last)"},
	}
	n := 144
	if cfg.Quick {
		n = 100
	}
	seeds := make([]int64, 8)
	for i := range seeds {
		seeds[i] = cfg.Seed + int64(i)
	}
	for _, xi := range []float64{1, 2, 3} {
		covFail, disc, lastRounds := 0, 0, 0
		worstMargin := 0.0 // max skeleton gap / h over all seeds (1 = failure)
		for _, seed := range seeds {
			g := graph.Path(n) // paths are the coverage worst case
			sp := skeleton.Params{X: 0.5, HFactor: xi}
			results := make([]skeleton.Result, n)
			m, err := sim.Run(g, sim.Config{Seed: seed}, func(env *sim.Env) {
				results[env.ID()] = skeleton.Compute(env, sp, false)
			})
			if err != nil {
				t.Failf("xi=%.0f seed=%d: %v", xi, seed, err)
				continue
			}
			lastRounds = m.Rounds
			if skeleton.CheckCoverage(results) != nil {
				covFail++
			}
			if err := skeleton.CheckDistancePreservation(g, results); err != nil {
				disc++
			}
			if margin := pathGapMargin(results, sp.H(n)); margin > worstMargin {
				worstMargin = margin
			}
		}
		t.Add(fmt.Sprintf("%.0f", xi), fmt.Sprint(len(seeds)), fmt.Sprint(covFail),
			fmt.Sprintf("%d (margin %.2f)", disc, worstMargin), fmt.Sprint(lastRounds))
	}
	t.Notef("rounds scale linearly with ξ while failures vanish; ξ=2 is the smallest reliable choice (per-gap miss probability n^-ξ, union over Θ(n) positions)")
	t.Notef("margin = largest skeleton gap on the path divided by h; 1.0 means disconnection — ξ=1 runs close to the edge")
	return t
}

// pathGapMargin returns (largest gap between consecutive skeleton positions
// on a path graph) / h.
func pathGapMargin(results []skeleton.Result, h int) float64 {
	prev := -1
	maxGap := 0
	for v, r := range results {
		if !r.InSkeleton {
			continue
		}
		if prev >= 0 && v-prev > maxGap {
			maxGap = v - prev
		}
		prev = v
	}
	return float64(maxGap) / float64(h)
}

// A4HashIndependence ablates the k-wise-independence parameter of the
// intermediate-choosing hash (Lemma D.2 wants k = Θ(log n)): receive load
// stays logarithmic across factors, confirming the Θ(log n) choice is not
// under-provisioned.
func A4HashIndependence(cfg Config) Table {
	t := Table{
		ID:     "A4",
		Title:  "Ablation: hash independence factor (Lemma D.2)",
		Header: []string{"k factor", "max recv", "max recv/logn", "delivered"},
	}
	n := 144
	if cfg.Quick {
		n = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 53))
	g := graph.SparseConnected(n, 1.2, rng)
	specs, _, _, _ := buildRoutingInstance(n, 0.25, 0.25, 6, rng)
	for _, factor := range []int{1, 3, 6} {
		got := make([][]routing.Token, n)
		m, err := sim.Run(g, sim.Config{Seed: cfg.Seed}, func(env *sim.Env) {
			got[env.ID()] = routing.Route(env, specs[env.ID()], routing.Params{HashKFactor: factor})
		})
		if err != nil {
			t.Failf("factor=%d: %v", factor, err)
			continue
		}
		delivered := true
		for v := 0; v < n; v++ {
			if len(got[v]) != len(specs[v].Expect) {
				delivered = false
			}
		}
		logN := sim.Log2Ceil(n)
		t.Add(fmt.Sprint(factor), fmt.Sprint(m.MaxGlobalRecv),
			fmt.Sprintf("%.2f", float64(m.MaxGlobalRecv)/float64(logN)), fmt.Sprint(delivered))
		if !delivered {
			t.Failf("factor=%d: delivery incomplete", factor)
		}
	}
	t.Notef("the load bound is insensitive to raising k beyond Θ(log n), as Remark A.1 predicts")
	return t
}

// Ablations runs all ablation tables.
func Ablations(cfg Config) []Table {
	return []Table{
		A1HelperQBoost(cfg),
		A2GlobalSendFactor(cfg),
		A3SkeletonHFactor(cfg),
		A4HashIndependence(cfg),
	}
}
