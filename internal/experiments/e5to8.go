package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/diameter"
	"repro/internal/graph"
	"repro/internal/kssp"
	"repro/internal/lowerbound"
	"repro/internal/sim"
	"repro/internal/sssp"
)

// E5KSSP reproduces Theorem 1.2: the three k-SSP parameterizations, with
// measured approximation ratios against Dijkstra.
func E5KSSP(cfg Config) Table {
	t := Table{
		ID:     "E5",
		Title:  "k-SSP (Theorem 1.2): rounds and worst observed ratio per corollary",
		Header: []string{"variant", "n", "k", "rounds", "max ratio", "paper bound", "ok"},
	}
	n := 100
	if !cfg.Quick {
		n = 256
	}
	// A weighted path: hop diameter n-1 far exceeds the ηh local
	// exploration radius, so the representative/skeleton machinery (not
	// the exact local term of Equation (1)) produces most estimates and
	// the approximation envelope is actually exercised.
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	g := graph.WithRandomWeights(graph.Path(n), 10, rng)
	k := int(math.Cbrt(float64(n))) + 2
	sources := pickSources(n, k, cfg.Seed)

	eps := 0.5
	variants := []struct {
		name  string
		spec  kssp.AlgSpec
		bound float64
	}{
		{"Cor4.6 (3+eps)", kssp.Corollary46(eps, cfg.Seed), 3 + 4*eps},
		{"Cor4.7 (7+eps)", kssp.Corollary47(eps, cfg.Seed), 7 + 6*eps},
		{"Cor4.8 (3+o(1))", kssp.Corollary48(eps, cfg.Seed), 3 + 4*eps},
		{"RealMM (3)", kssp.RealMM(2), 3},
	}
	for _, v := range variants {
		rounds, ratio, err := runKSSPVariant(g, sources, v.spec, cfg.Seed)
		if err != nil {
			t.Failf("%s: %v", v.name, err)
			continue
		}
		ok := ratio <= v.bound
		t.Add(v.name, fmt.Sprint(n), fmt.Sprint(len(sources)), fmt.Sprint(rounds),
			fmt.Sprintf("%.3f", ratio), fmt.Sprintf("%.2f", v.bound), fmt.Sprint(ok))
		if !ok {
			t.Failf("%s: ratio %.3f exceeds bound %.2f", v.name, ratio, v.bound)
		}
	}

	// Weighted scaling sweep (ROADMAP): the two corollaries whose weighted
	// guarantees the paper states asymptotically — Cor 4.6 at O~(n^(1/3)/ε)
	// and Cor 4.8 at O~(n^0.397 + sqrt k) — across sizes, so the round
	// growth (not just the envelope) is on record for weighted graphs.
	sweep := []int{64, 100}
	if !cfg.Quick {
		sweep = []int{100, 196, 324}
	}
	var wns, w46, w48 []float64
	for _, wn := range sweep {
		wrng := rand.New(rand.NewSource(cfg.Seed + 5 + int64(wn)))
		wg := graph.WithRandomWeights(graph.Path(wn), 10, wrng)
		wk := int(math.Cbrt(float64(wn))) + 2
		wsources := pickSources(wn, wk, cfg.Seed+int64(wn))
		wvariants := []struct {
			name  string
			spec  kssp.AlgSpec
			bound float64
			dst   *[]float64
		}{
			{"Cor4.6 (3+eps) wsweep", kssp.Corollary46(eps, cfg.Seed), 3 + 4*eps, &w46},
			{"Cor4.8 (3+o(1)) wsweep", kssp.Corollary48(eps, cfg.Seed), 3 + 4*eps, &w48},
		}
		for _, wv := range wvariants {
			rounds, ratio, err := runKSSPVariant(wg, wsources, wv.spec, cfg.Seed)
			if err != nil {
				t.Failf("%s n=%d: %v", wv.name, wn, err)
				continue
			}
			ok := ratio <= wv.bound
			t.Add(wv.name, fmt.Sprint(wn), fmt.Sprint(len(wsources)), fmt.Sprint(rounds),
				fmt.Sprintf("%.3f", ratio), fmt.Sprintf("%.2f", wv.bound), fmt.Sprint(ok))
			if !ok {
				t.Failf("%s n=%d: ratio %.3f exceeds bound %.2f", wv.name, wn, ratio, wv.bound)
			}
			*wv.dst = append(*wv.dst, float64(rounds))
		}
		wns = append(wns, float64(wn))
	}
	if len(wns) >= 2 && len(w46) == len(wns) && len(w48) == len(wns) {
		t.Notef("weighted scaling on paths: Cor4.6 rounds ~ n^%.2f, Cor4.8 ~ n^%.2f (paper: 1/3 resp. 0.397, + polylog and the sqrt-k term)",
			FitExponent(wns, w46), FitExponent(wns, w48))
	}
	t.Notef("oracle variants run the published (delta, eta, alpha) of [7,8] with perturbed outputs at the declared envelope")
	return t
}

func pickSources(n, k int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed + 77))
	seen := map[int]bool{}
	var out []int
	for len(out) < k {
		v := rng.Intn(n)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func runKSSPVariant(g *graph.Graph, sources []int, spec kssp.AlgSpec, seed int64) (int, float64, error) {
	n := g.N()
	isSource := make([]bool, n)
	for _, s := range sources {
		isSource[s] = true
	}
	out := make([]map[int]int64, n)
	m, err := sim.Run(g, sim.Config{Seed: seed}, func(env *sim.Env) {
		res := kssp.Compute(env, isSource[env.ID()], len(sources), spec, kssp.Params{})
		mp := make(map[int]int64, len(res))
		for _, sd := range res {
			mp[sd.Source] = sd.Dist
		}
		out[env.ID()] = mp
	})
	if err != nil {
		return 0, 0, err
	}
	worst := 1.0
	for _, s := range sources {
		want := graph.Dijkstra(g, s)
		for v := 0; v < n; v++ {
			dt, ok := out[v][s]
			if !ok {
				return m.Rounds, 0, fmt.Errorf("node %d missing estimate for %d", v, s)
			}
			if dt < want[v] {
				return m.Rounds, 0, fmt.Errorf("underestimate at (%d,%d)", v, s)
			}
			if want[v] > 0 {
				if r := float64(dt) / float64(want[v]); r > worst {
					worst = r
				}
			}
		}
	}
	return m.Rounds, worst, nil
}

// E6SSSP reproduces Theorem 1.3: exact SSSP in O~(n^(2/5)) vs the Θ(SPD)
// LOCAL Bellman-Ford baseline, on a high-SPD topology where the skeleton
// approach wins asymptotically.
func E6SSSP(cfg Config) Table {
	t := Table{
		ID:     "E6",
		Title:  "Exact SSSP (Theorem 1.3): O~(n^(2/5)) vs LOCAL Θ(SPD)",
		Header: []string{"graph", "n", "SPD", "thm1.3 rounds", "local rounds", "exact"},
	}
	sizes := []int{100}
	if !cfg.Quick {
		sizes = append(sizes, 256, 400)
	}
	sizes = cfg.xlSizes(sizes)
	var ns, rounds []float64
	for _, n := range sizes {
		for _, shape := range []string{"path", "sparse"} {
			var g *graph.Graph
			if shape == "path" {
				g = graph.Path(n)
			} else {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
				g = graph.WithRandomWeights(graph.SparseConnected(n, 1.3, rng), 8, rng)
			}
			spd := graph.SPD(g)
			want := graph.Dijkstra(g, 0)

			r1, ok := runSSSPTheorem(g, 0, cfg, want)
			r2 := runSSSPLocal(g, 0, spd, cfg, want, &t)
			t.Add(shape, fmt.Sprint(n), fmt.Sprint(spd), fmt.Sprint(r1), fmt.Sprint(r2), fmt.Sprint(ok))
			if !ok {
				t.Failf("%s n=%d: Theorem 1.3 SSSP not exact", shape, n)
			}
			if shape == "path" {
				ns = append(ns, float64(n))
				rounds = append(rounds, float64(r1))
			}
		}
	}
	if len(ns) >= 2 {
		t.Notef("fitted exponent on paths: thm1.3 rounds ~ n^%.2f (paper: 0.4 + polylog); LOCAL is exactly SPD = n-1", FitExponent(ns, rounds))
	}
	return t
}

func runSSSPTheorem(g *graph.Graph, src int, cfg Config, want []int64) (int, bool) {
	n := g.N()
	out := make([]int64, n)
	m, err := sim.Run(g, sim.Config{Seed: cfg.Seed, Engine: cfg.Engine}, func(env *sim.Env) {
		res := kssp.Compute(env, env.ID() == src, 1, kssp.Corollary49(), kssp.Params{})
		for _, sd := range res {
			if sd.Source == src {
				out[env.ID()] = sd.Dist
			}
		}
	})
	if err != nil {
		return 0, false
	}
	for v := 0; v < n; v++ {
		if out[v] != want[v] {
			return m.Rounds, false
		}
	}
	return m.Rounds, true
}

func runSSSPLocal(g *graph.Graph, src, rounds int, cfg Config, want []int64, t *Table) int {
	n := g.N()
	out := make([]int64, n)
	// The LOCAL baseline runs its step machine so the XL sweeps get the
	// goroutine-free engine; on the goroutine engines it is driven, with
	// byte-identical results either way.
	m, err := sim.RunStep(g, sim.Config{Seed: cfg.Seed, Engine: cfg.Engine}, func(env *sim.Env) sim.StepProgram {
		id := env.ID()
		return sssp.NewLocalMachine(env, id == src, rounds, func(d int64) { out[id] = d })
	})
	if err != nil {
		t.Failf("local SSSP: %v", err)
		return 0
	}
	for v := 0; v < n; v++ {
		if out[v] != want[v] {
			t.Failf("local SSSP inexact at %d", v)
			break
		}
	}
	return m.Rounds
}

// E7Diameter reproduces Theorem 1.4: (3/2+ε) and (1+ε) diameter
// approximations with the Equation (3) exact-small-diameter path.
func E7Diameter(cfg Config) Table {
	t := Table{
		ID:     "E7",
		Title:  "Diameter (Theorem 1.4): estimates vs true D",
		Header: []string{"variant", "graph", "n", "D", "estimate", "ratio", "bound", "ok"},
	}
	n := 100
	if !cfg.Quick {
		n = 324
	}
	eps := 0.5
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid(isqrt(n), isqrt(n))},
		{"path", graph.Path(n)},
		{"cycle", graph.Cycle(n)},
	}
	variants := []struct {
		name  string
		spec  diameter.AlgSpec
		bound float64
	}{
		{"Cor5.2 (3/2+eps)", diameter.Corollary52(eps, 0), 1.5 + 3*eps},
		{"Cor5.3 (1+eps)", diameter.Corollary53(eps, 0), 1 + 3*eps},
	}
	for _, v := range variants {
		for _, gg := range graphs {
			d := graph.HopDiameter(gg.g)
			est, rounds, err := runDiameterVariant(gg.g, v.spec, cfg.Seed)
			_ = rounds
			if err != nil {
				t.Failf("%s %s: %v", v.name, gg.name, err)
				continue
			}
			ratio := float64(est) / float64(d)
			ok := est >= d && ratio <= v.bound
			t.Add(v.name, gg.name, fmt.Sprint(gg.g.N()), fmt.Sprint(d), fmt.Sprint(est),
				fmt.Sprintf("%.3f", ratio), fmt.Sprintf("%.2f", v.bound), fmt.Sprint(ok))
			if !ok {
				t.Failf("%s on %s: estimate %d vs D %d outside bound", v.name, gg.name, est, d)
			}
		}
	}
	t.Notef("small-D graphs resolve exactly via the h-hat aggregation path of Equation (3)")
	return t
}

func runDiameterVariant(g *graph.Graph, spec diameter.AlgSpec, seed int64) (int64, int, error) {
	out := make([]int64, g.N())
	m, err := sim.Run(g, sim.Config{Seed: seed}, func(env *sim.Env) {
		out[env.ID()] = diameter.Compute(env, spec, diameter.Params{})
	})
	if err != nil {
		return 0, 0, err
	}
	return out[0], m.Rounds, nil
}

func isqrt(x int) int {
	r := 1
	for r*r < x {
		r++
	}
	return r
}

// E8KSSPLowerBound reproduces Theorem 1.5 / Figure 1: the construction's
// structural facts, the entropy/capacity arithmetic giving Ω~(sqrt k), and
// a cut-instrumented APSP run showing the global bits actually crossing
// the bottleneck.
func E8KSSPLowerBound(cfg Config) Table {
	t := Table{
		ID:     "E8",
		Title:  "k-SSP lower bound (Theorem 1.5, Figure 1)",
		Header: []string{"k", "L", "n", "entropy bits", "path cap bits/round", "implied LB rounds", "sqrt(k)", "gap factor"},
	}
	ks := []int{64, 256}
	if !cfg.Quick {
		ks = append(ks, 1024)
	}
	for _, k := range ks {
		l := int(math.Ceil(math.Sqrt(float64(k))))
		p := lowerbound.Fig1Params{K: k, L: l, PathLen: 2 * k}
		inS1 := make([]bool, k)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(k)))
		for i := range inS1 {
			inS1[i] = rng.Intn(2) == 0
		}
		f, err := lowerbound.BuildFig1(p, inS1)
		if err != nil {
			t.Failf("k=%d: %v", k, err)
			continue
		}
		if err := f.Verify(); err != nil {
			t.Failf("k=%d: structure: %v", k, err)
			continue
		}
		n := f.G.N()
		ent := lowerbound.EntropyBits(k)
		cap := lowerbound.PathCapacityBits(l, n, 1)
		lb := ent / cap
		t.Add(fmt.Sprint(k), fmt.Sprint(l), fmt.Sprint(n),
			fmt.Sprintf("%.0f", ent), fmt.Sprintf("%.0f", cap),
			fmt.Sprintf("%.2f", lb), fmt.Sprintf("%.1f", math.Sqrt(float64(k))),
			fmt.Sprintf("%.1f", f.ApproxGap()))
	}
	t.Notef("implied LB = entropy/capacity = Omega(sqrt(k)/log^2 n); gap factor = alpha' of Theorem 1.5 (approximations below it are equally hard)")

	// Cut-instrumented run: an actual SSSP on the Figure 1 graph must move
	// information across the bottleneck cut.
	k := 64
	l := 8
	inS1 := make([]bool, k)
	rng := rand.New(rand.NewSource(cfg.Seed + 999))
	for i := range inS1 {
		inS1[i] = rng.Intn(2) == 0
	}
	f, err := lowerbound.BuildFig1(lowerbound.Fig1Params{K: k, L: l, PathLen: 2 * k}, inS1)
	if err == nil {
		m, runErr := sim.Run(f.G, sim.Config{Seed: cfg.Seed, Cut: f.AliceCut()}, func(env *sim.Env) {
			kssp.Compute(env, env.ID() == f.Sources[0], 1, kssp.Corollary49(), kssp.Params{})
		})
		if runErr == nil {
			t.Notef("instrumented SSSP run on Fig.1 (k=%d): %d global bits crossed the b-side cut in %d rounds",
				k, m.CutGlobalBits, m.Rounds)
		}
	}
	return t
}
