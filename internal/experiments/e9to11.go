package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/diameter"
	"repro/internal/graph"
	"repro/internal/hybridapsp"
	"repro/internal/lowerbound"
	"repro/internal/ncc"
	"repro/internal/sim"
)

// E9DiameterLowerBound reproduces Theorem 1.6 / Figure 2: the diameter
// dichotomy verifies on random instances at several sizes, the bound
// arithmetic produces the Ω((n/log²n)^(1/3)) curve, and a cut-instrumented
// run of the real diameter algorithm on Γ shows the Alice/Bob traffic.
func E9DiameterLowerBound(cfg Config) Table {
	t := Table{
		ID:     "E9",
		Title:  "Diameter lower bound (Theorem 1.6, Figure 2)",
		Header: []string{"n target", "k", "l", "Gamma n", "k^2 bits", "implied LB rounds", "dichotomy"},
	}
	targets := []int{200, 1000}
	if !cfg.Quick {
		targets = append(targets, 5000, 20000)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	for _, n := range targets {
		k, l := lowerbound.GammaSizing(n)
		p := lowerbound.GammaParams{K: k, L: l, W: int64(l) + 1}
		okAll := true
		// The dichotomy verification needs exact APSP on Γ; keep the
		// verified instances modest while reporting the scaled arithmetic.
		vk, vl := k, l
		if vk > 6 {
			vk = 6
		}
		if vl > 8 {
			vl = 8
		}
		vp := lowerbound.GammaParams{K: vk, L: vl, W: int64(vl) + 1}
		for trial := 0; trial < 6; trial++ {
			a, b := lowerbound.RandomInstance(vp.Bits(), 0.3, trial%2 == 1, rng)
			if err := lowerbound.VerifyLemma71(vp, a, b); err != nil {
				t.Failf("n=%d trial %d (weighted): %v", n, trial, err)
				okAll = false
			}
			if err := lowerbound.VerifyLemma72(vk, vl, a, b); err != nil {
				t.Failf("n=%d trial %d (unweighted): %v", n, trial, err)
				okAll = false
			}
		}
		t.Add(fmt.Sprint(n), fmt.Sprint(k), fmt.Sprint(l), fmt.Sprint(p.N()),
			fmt.Sprint(p.Bits()), fmt.Sprintf("%.1f", lowerbound.DiameterRoundLB(n)),
			fmt.Sprint(okAll))
	}

	// Cut-instrumented run: the real (3/2+eps) diameter algorithm on a
	// small Γ; the disjointness argument says distinguishing instances
	// requires Ω(k²) bits across the column cut.
	k, l := 4, 6
	p := lowerbound.GammaParams{K: k, L: l, W: 1}
	a, b := lowerbound.RandomInstance(p.Bits(), 0.3, false, rng)
	gm, err := lowerbound.BuildGamma(p, a, b)
	if err == nil {
		m, runErr := sim.Run(gm.G, sim.Config{Seed: cfg.Seed, Cut: gm.AliceCut()}, func(env *sim.Env) {
			diameter.Compute(env, diameter.Corollary52(0.5, 0), diameter.Params{})
		})
		if runErr == nil {
			t.Notef("instrumented diameter run on Gamma (k=%d, l=%d, n=%d): %d global bits crossed the Alice/Bob cut; k^2 = %d bits of DISJ input",
				k, l, gm.G.N(), m.CutGlobalBits, k*k)
		} else {
			t.Failf("instrumented run: %v", runErr)
		}
	}
	t.Notef("exact diameter needs Omega((n/log^2 n)^(1/3)) rounds; for weighted Gamma the same holds for (2-eps)-approximation (Lemma 7.1)")
	return t
}

// E10RecvLoad reproduces Lemma D.2: across full APSP runs (which stack
// every protocol in the repository), the peak per-round global receive
// load stays O(log n).
func E10RecvLoad(cfg Config) Table {
	t := Table{
		ID:     "E10",
		Title:  "Receive load (Lemma D.2): peak global receive per round vs log n",
		Header: []string{"n", "log2 n", "max recv", "max recv / log n", "ok"},
	}
	sizes := []int{64, 144}
	if !cfg.Quick {
		sizes = append(sizes, 256, 400)
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		g := graph.SparseConnected(n, 1.2, rng)
		m, err := sim.Run(g, sim.Config{Seed: cfg.Seed}, func(env *sim.Env) {
			hybridapsp.Compute(env, hybridapsp.Params{})
		})
		if err != nil {
			t.Failf("n=%d: %v", n, err)
			continue
		}
		logN := sim.Log2Ceil(n)
		ratio := float64(m.MaxGlobalRecv) / float64(logN)
		ok := ratio <= 10
		t.Add(fmt.Sprint(n), fmt.Sprint(logN), fmt.Sprint(m.MaxGlobalRecv),
			fmt.Sprintf("%.2f", ratio), fmt.Sprint(ok))
		if !ok {
			t.Failf("n=%d: receive load ratio %.2f exceeds 10", n, ratio)
		}
	}
	t.Notef("k-wise independent hash routing keeps the ratio O(1); growth with n would falsify Lemma D.2")
	return t
}

// E11ModeComparison reproduces the §1 model comparison: HYBRID beats both
// the LOCAL-only Θ(D) bound and the NCC-only Ω~(n) bound on the same task
// (exact APSP).
func E11ModeComparison(cfg Config) Table {
	t := Table{
		ID:     "E11",
		Title:  "Mode comparison (§1): exact APSP under LOCAL-only / NCC-only / HYBRID",
		Header: []string{"graph", "n", "D", "LOCAL rounds", "NCC rounds", "HYBRID rounds", "exact"},
	}
	n := 100
	if !cfg.Quick {
		n = 256
	}
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(n)},
		{"grid", graph.Grid(isqrt(n), isqrt(n))},
	}
	for _, gg := range graphs {
		g := gg.g
		want := graph.APSP(g)
		d := int(graph.HopDiameter(g))

		// LOCAL-only: flood D rounds.
		localRounds, ok1 := runAPSPVariant(g, cfg, want, func(env *sim.Env, done func([]int64)) sim.StepProgram {
			return hybridapsp.NewLocalComputeMachine(env, d, done)
		})
		// NCC-only: pipeline-broadcast all edges, compute locally.
		nccRounds, ok2 := runNCCOnlyAPSP(g, cfg.Seed, want)
		// HYBRID: Theorem 1.1.
		hybridRounds, ok3 := runAPSPVariant(g, cfg, want, func(env *sim.Env, done func([]int64)) sim.StepProgram {
			return hybridapsp.NewComputeMachine(env, hybridapsp.Params{}, done)
		})
		t.Add(gg.name, fmt.Sprint(g.N()), fmt.Sprint(d),
			fmt.Sprint(localRounds), fmt.Sprint(nccRounds), fmt.Sprint(hybridRounds),
			fmt.Sprint(ok1 && ok2 && ok3))
		if !(ok1 && ok2 && ok3) {
			t.Failf("%s: some mode produced inexact APSP", gg.name)
		}
	}
	t.Notef("LOCAL needs Θ(D) (linear on paths); NCC-only needs Ω~(n) to move the topology; HYBRID is O~(sqrt n) — at these sizes its polylog constants still dominate, the asymptotic win shows in the growth rates (E3)")
	return t
}

func runNCCOnlyAPSP(g *graph.Graph, seed int64, want [][]int64) (int, bool) {
	n := g.N()
	ell := g.MaxDegree() // each node owns its incident edges u < v plus slack
	out := make([][]int64, n)
	m, err := sim.Run(g, sim.Config{Seed: seed}, func(env *sim.Env) {
		var mine []ncc.Token
		for _, nb := range env.Neighbors() {
			if env.ID() < nb.To {
				mine = append(mine, ncc.Token{A: int64(env.ID()), B: int64(nb.To), C: nb.W})
			}
		}
		all := ncc.PipelinedBroadcast(env, mine, ell)
		// Local computation from the fully replicated edge list.
		gg := graph.New(env.N())
		for _, tok := range all {
			if !gg.HasEdge(int(tok.A), int(tok.B)) {
				gg.MustAddEdge(int(tok.A), int(tok.B), tok.C)
			}
		}
		out[env.ID()] = graph.Dijkstra(gg, env.ID())
	})
	if err != nil {
		return 0, false
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if out[u][v] != want[u][v] {
				return m.Rounds, false
			}
		}
	}
	return m.Rounds, true
}
