package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/clique"
	"repro/internal/cliquesim"
	"repro/internal/graph"
	"repro/internal/helpers"
	"repro/internal/hybridapsp"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/skeleton"
)

// E1TokenRouting reproduces Theorem 2.2: token routing completes, delivers
// everything, and its rounds track O~(K/n + sqrt(kS) + sqrt(kR)).
func E1TokenRouting(cfg Config) Table {
	t := Table{
		ID:     "E1",
		Title:  "Token routing (Theorem 2.2): rounds vs O~(K/n + sqrt kS + sqrt kR)",
		Header: []string{"n", "|S|", "|R|", "kS", "kR", "rounds", "predictor", "rounds/pred", "delivered"},
	}
	sizes := []int{64, 144}
	if !cfg.Quick {
		sizes = append(sizes, 256, 400)
	}
	for _, n := range sizes {
		for _, tokensPerSender := range []int{2, 8} {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(n) + int64(tokensPerSender)))
			g := graph.SparseConnected(n, 1.2, rng)
			specs, sCount, rCount, kR := buildRoutingInstance(n, 0.2, 0.2, tokensPerSender, rng)
			rounds, ok := runRouting(g, specs, cfg.Seed)
			k := float64(sCount*tokensPerSender + rCount*kR)
			pred := k/float64(n) + math.Sqrt(float64(tokensPerSender)) + math.Sqrt(float64(kR))
			logN := float64(sim.Log2Ceil(n))
			t.Add(fmt.Sprint(n), fmt.Sprint(sCount), fmt.Sprint(rCount),
				fmt.Sprint(tokensPerSender), fmt.Sprint(kR),
				fmt.Sprint(rounds), fmt.Sprintf("%.1f", pred*logN*logN),
				fmt.Sprintf("%.2f", float64(rounds)/(pred*logN*logN)),
				fmt.Sprint(ok))
			if !ok {
				t.Failf("n=%d tokens=%d: delivery incomplete", n, tokensPerSender)
			}
		}
	}
	t.Notef("predictor = (K/n + sqrt kS + sqrt kR) * log^2 n; the ratio column should stay O(1) across the sweep")
	return t
}

func buildRoutingInstance(n int, pS, pR float64, tokensPerSender int, rng *rand.Rand) ([]routing.Spec, int, int, int) {
	var senders, receivers []int
	specs := make([]routing.Spec, n)
	for v := 0; v < n; v++ {
		if rng.Float64() < pS {
			specs[v].InS = true
			senders = append(senders, v)
		}
		if rng.Float64() < pR {
			specs[v].InR = true
			receivers = append(receivers, v)
		}
	}
	if len(senders) == 0 {
		specs[0].InS = true
		senders = []int{0}
	}
	if len(receivers) == 0 {
		specs[n-1].InR = true
		receivers = []int{n - 1}
	}
	idx := map[[2]int]int64{}
	for _, s := range senders {
		for j := 0; j < tokensPerSender; j++ {
			r := receivers[rng.Intn(len(receivers))]
			key := [2]int{s, r}
			i := idx[key]
			idx[key]++
			tok := routing.Token{Label: routing.Label{S: s, R: r, I: i}, Value: int64(s*100 + j)}
			specs[s].Send = append(specs[s].Send, tok)
			specs[r].Expect = append(specs[r].Expect, tok.Label)
		}
	}
	kR := 1
	for _, sp := range specs {
		if len(sp.Expect) > kR {
			kR = len(sp.Expect)
		}
	}
	for v := range specs {
		specs[v].KS = tokensPerSender
		specs[v].KR = kR
		specs[v].PS = pS
		specs[v].PR = pR
	}
	return specs, len(senders), len(receivers), kR
}

func runRouting(g *graph.Graph, specs []routing.Spec, seed int64) (int, bool) {
	n := g.N()
	got := make([][]routing.Token, n)
	m, err := sim.Run(g, sim.Config{Seed: seed}, func(env *sim.Env) {
		got[env.ID()] = routing.Route(env, specs[env.ID()], routing.Params{})
	})
	if err != nil {
		return 0, false
	}
	for v := 0; v < n; v++ {
		if len(got[v]) != len(specs[v].Expect) {
			return m.Rounds, false
		}
	}
	return m.Rounds, true
}

// E2HelperSets reproduces Lemma 2.2 / Definition 2.1: helper families exist
// with the three properties.
func E2HelperSets(cfg Config) Table {
	t := Table{
		ID:     "E2",
		Title:  "Helper sets (Lemma 2.2): Definition 2.1 properties",
		Header: []string{"n", "p", "mu", "min|H_w|", "max hop(w,x)/mu*logn", "max load/logn", "valid"},
	}
	sizes := []int{100}
	if !cfg.Quick {
		sizes = append(sizes, 196, 324)
	}
	for _, n := range sizes {
		for _, p := range []float64{0.1, 0.3} {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(n*7)))
			g := graph.SparseConnected(n, 1.0, rng)
			inW := make([]bool, n)
			wrng := rand.New(rand.NewSource(cfg.Seed + int64(n*13)))
			for i := range inW {
				inW[i] = wrng.Float64() < p
			}
			mu := int(math.Min(math.Sqrt(float64(n))/2, 1/p))
			if mu < 1 {
				mu = 1
			}
			results := make([]helpers.Result, n)
			_, err := sim.Run(g, sim.Config{Seed: cfg.Seed}, func(env *sim.Env) {
				results[env.ID()] = helpers.Compute(env, inW[env.ID()], mu, helpers.Params{})
			})
			if err != nil {
				t.Failf("n=%d p=%.1f: %v", n, p, err)
				continue
			}
			minH, maxHopRatio, maxLoadRatio := helperStats(g, results, mu)
			valid := helpers.CheckFamily(g, results, mu, 8, 8) == nil
			t.Add(fmt.Sprint(n), fmt.Sprintf("%.1f", p), fmt.Sprint(mu),
				fmt.Sprint(minH), fmt.Sprintf("%.2f", maxHopRatio), fmt.Sprintf("%.2f", maxLoadRatio),
				fmt.Sprint(valid))
			if !valid {
				t.Failf("n=%d p=%.1f: Definition 2.1 violated", n, p)
			}
		}
	}
	t.Notef("properties: (1) |H_w| >= mu, (2) helpers within O~(mu) hops, (3) each node helps O~(1) sets")
	return t
}

func helperStats(g *graph.Graph, results []helpers.Result, mu int) (int, float64, float64) {
	n := g.N()
	logN := float64(sim.Log2Ceil(n))
	hw := map[int][]int{}
	maxLoad := 0
	for x := 0; x < n; x++ {
		if l := len(results[x].Helps); l > maxLoad {
			maxLoad = l
		}
		for _, w := range results[x].Helps {
			hw[w] = append(hw[w], x)
		}
	}
	minH := n
	maxHop := 0.0
	for w, set := range hw {
		if len(set) < minH {
			minH = len(set)
		}
		d := graph.BFS(g, w)
		for _, x := range set {
			if r := float64(d[x]) / (float64(mu) * logN); r > maxHop {
				maxHop = r
			}
		}
	}
	if len(hw) == 0 {
		minH = 0
	}
	return minH, maxHop, float64(maxLoad) / logN
}

// E3APSP reproduces Theorem 1.1: exact APSP in O~(sqrt n), beating the
// O~(n^(2/3)) baseline of [3] as n grows.
func E3APSP(cfg Config) Table {
	t := Table{
		ID:     "E3",
		Title:  "Exact APSP (Theorem 1.1) vs [3] baseline vs LOCAL Θ(D)",
		Header: []string{"graph", "n", "D", "thm1.1 rounds", "[3] rounds", "exact"},
	}
	sizes := []int{64, 144}
	if !cfg.Quick {
		sizes = append(sizes, 256, 400)
	}
	sizes = cfg.xlSizes(sizes)
	// The [3] baseline broadcasts Θ(n²/x) labels; above this size that step
	// alone dwarfs the table's runtime budget, so the XL rows track
	// Theorem 1.1 only.
	const baselineCap = 1024
	var ns, newRounds []float64
	var nsBase, baseRounds []float64
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		g := graph.SparseConnected(n, 1.2, rng)
		d := graph.HopDiameter(g)
		want := graph.APSP(g)

		r1, ok1 := runAPSPVariant(g, cfg, want, func(env *sim.Env, done func([]int64)) sim.StepProgram {
			return hybridapsp.NewComputeMachine(env, hybridapsp.Params{}, done)
		})
		if !ok1 {
			t.Failf("n=%d: Theorem 1.1 APSP not exact", n)
		}
		ns = append(ns, float64(n))
		newRounds = append(newRounds, float64(r1))

		baseCol := "-"
		if n <= baselineCap {
			r2, ok2 := runAPSPVariant(g, cfg, want, func(env *sim.Env, done func([]int64)) sim.StepProgram {
				return hybridapsp.NewBaselineComputeMachine(env, hybridapsp.Params{}, done)
			})
			if !ok2 {
				t.Failf("n=%d: baseline APSP not exact", n)
			}
			ok1 = ok1 && ok2
			baseCol = fmt.Sprint(r2)
			nsBase = append(nsBase, float64(n))
			baseRounds = append(baseRounds, float64(r2))
		}
		t.Add("sparse", fmt.Sprint(n), fmt.Sprint(d), fmt.Sprint(r1), baseCol, fmt.Sprint(ok1))
	}
	if len(ns) >= 2 && len(nsBase) >= 2 {
		eNew := FitExponent(ns, newRounds)
		eBase := FitExponent(nsBase, baseRounds)
		t.Notef("fitted exponent: thm1.1 rounds ~ n^%.2f (paper: 0.5 + polylog), baseline ~ n^%.2f (paper: 0.667 + polylog)",
			eNew, eBase)
		// At small n the baseline's constants win; the exponent gap decides
		// asymptotically. Project the crossover from the largest size both
		// variants ran at.
		last := len(nsBase) - 1
		ratio := newRounds[last] / baseRounds[last]
		if eBase > eNew && ratio > 1 {
			cross := nsBase[last] * math.Pow(ratio, 1/(eBase-eNew))
			t.Notef("baseline currently %.2fx faster; exponent gap projects the Theorem 1.1 crossover near n ~ %.0f",
				ratio, cross)
		} else if ratio <= 1 {
			t.Notef("Theorem 1.1 already faster at n=%d (%.2fx)", int(nsBase[last]), 1/ratio)
		}
	}
	return t
}

// runAPSPVariant executes one APSP machine on cfg.Engine (step-native on
// EngineStep, driven goroutines otherwise) and checks exactness.
func runAPSPVariant(g *graph.Graph, cfg Config, want [][]int64,
	mf func(*sim.Env, func([]int64)) sim.StepProgram) (int, bool) {
	n := g.N()
	out := make([][]int64, n)
	m, err := sim.RunStep(g, sim.Config{Seed: cfg.Seed, Engine: cfg.Engine}, func(env *sim.Env) sim.StepProgram {
		id := env.ID()
		return mf(env, func(res []int64) { out[id] = res })
	})
	if err != nil {
		return 0, false
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if out[u][v] != want[u][v] {
				return m.Rounds, false
			}
		}
	}
	return m.Rounds, true
}

// E4CliqueSim reproduces Corollary 4.1: the cost of simulating one CLIQUE
// round on an n^x-node skeleton tracks O~(n^(x/2) + n^(2x-1)).
func E4CliqueSim(cfg Config) Table {
	t := Table{
		ID:     "E4",
		Title:  "CLIQUE round simulation on skeletons (Corollary 4.1)",
		Header: []string{"n", "x", "|S|", "rounds/clique-round", "predictor", "ratio"},
	}
	n := 144
	if cfg.Quick {
		n = 100
	}
	for _, x := range []float64{0.4, 0.5, 2.0 / 3.0} {
		sp := skeleton.Params{X: x}
		const ta = 3
		var q int
		rounds, err := runCliqueSimulation(n, sp, ta, cfg.Seed, &q)
		if err != nil {
			t.Failf("x=%.2f: %v", x, err)
			continue
		}
		logN := float64(sim.Log2Ceil(n))
		pred := (math.Pow(float64(n), x/2) + math.Pow(float64(n), 2*x-1)) * logN * logN
		perRound := float64(rounds) / ta
		t.Add(fmt.Sprint(n), fmt.Sprintf("%.2f", x), fmt.Sprint(q),
			fmt.Sprintf("%.1f", perRound), fmt.Sprintf("%.1f", pred),
			fmt.Sprintf("%.2f", perRound/pred))
	}
	t.Notef("predictor = (n^(x/2) + n^(2x-1)) * log^2 n; per-simulated-round cost includes the amortized session setup")
	return t
}

func runCliqueSimulation(n int, sp skeleton.Params, ta float64, seed int64, qOut *int) (int, error) {
	rng := rand.New(rand.NewSource(seed + int64(n)))
	g := graph.SparseConnected(n, 1.2, rng)
	qs := make([]int, n)
	m, err := sim.Run(g, sim.Config{Seed: seed}, func(env *sim.Env) {
		skel := skeleton.Compute(env, sp, false)
		factory := func(q int, members []int) clique.Algorithm {
			v := env.SharedOnce("e4.alg", func() interface{} {
				return clique.NewOracle(q, nil, clique.CostModel{Delta: 0, Eta: ta}, clique.Quality{Alpha: 1}, false)
			})
			return v.(clique.Algorithm)
		}
		res := cliquesim.Simulate(env, skel, sp.SampleProb(env.N()), factory, routing.Params{})
		qs[env.ID()] = len(res.Members)
	})
	if err != nil {
		return 0, err
	}
	*qOut = qs[0]
	return m.Rounds, nil
}
