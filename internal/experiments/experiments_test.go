package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every experiment at quick scale and fails on
// any recorded guarantee violation. This is the repository's end-to-end
// regression: every theorem's claim is re-checked.
func TestAllExperimentsQuick(t *testing.T) {
	for _, table := range All(Config{Seed: 1, Quick: true}) {
		table := table
		t.Run(table.ID, func(t *testing.T) {
			if len(table.Rows) == 0 {
				t.Fatalf("%s produced no rows", table.ID)
			}
			for _, f := range table.Failures {
				t.Errorf("%s: %s", table.ID, f)
			}
			s := table.String()
			if !strings.Contains(s, table.ID) {
				t.Fatalf("rendering broken")
			}
		})
	}
}

func TestFitExponent(t *testing.T) {
	xs := []float64{10, 100, 1000}
	ys := []float64{5, 50, 500} // slope 1
	if e := FitExponent(xs, ys); e < 0.99 || e > 1.01 {
		t.Fatalf("FitExponent = %v, want 1", e)
	}
	sq := []float64{100, 10000, 1000000}
	if e := FitExponent(xs, sq); e < 1.99 || e > 2.01 {
		t.Fatalf("FitExponent = %v, want 2", e)
	}
	if e := FitExponent([]float64{1}, []float64{1}); e == e { // NaN check
		t.Fatalf("single point should give NaN, got %v", e)
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{ID: "T", Title: "demo", Header: []string{"a", "bb"}}
	tab.Add("1", "2")
	tab.Notef("note %d", 5)
	tab.Failf("bad %s", "x")
	s := tab.String()
	for _, want := range []string{"T: demo", "a", "bb", "note 5", "FAIL: bad x"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q in:\n%s", want, s)
		}
	}
}

// TestAblationsQuick runs the A1-A4 ablations at quick scale.
func TestAblationsQuick(t *testing.T) {
	for _, table := range Ablations(Config{Seed: 2, Quick: true}) {
		table := table
		t.Run(table.ID, func(t *testing.T) {
			if len(table.Rows) == 0 {
				t.Fatalf("%s produced no rows", table.ID)
			}
			for _, f := range table.Failures {
				t.Errorf("%s: %s", table.ID, f)
			}
		})
	}
}
