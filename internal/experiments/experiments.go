// Package experiments regenerates every evaluable artifact of the paper
// (the per-experiment index lives in DESIGN.md; the recorded outcomes in
// EXPERIMENTS.md). Each experiment returns a Table whose rows are the
// series the paper's theorems predict; the bench harness (bench_test.go)
// and cmd/benchtables both render them.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sim"
)

// Config scales the experiment sweeps.
type Config struct {
	// Seed roots all randomness.
	Seed int64
	// Quick restricts sweeps to the smallest sizes (used by -short runs).
	Quick bool
	// XL extends the scaling tables (E3, E6) to n ∈ {1024, 4096} — the
	// sizes the step engine made affordable. Ignored when Quick is set.
	// Expect minutes, not seconds; see the README's experiments section.
	XL bool
	// Engine selects the round engine the experiments run on (default
	// EngineSharded). Results are engine-independent; XL sweeps want
	// EngineStep.
	Engine sim.Engine
}

// xlSizes appends the XL scaling sizes when enabled.
func (c Config) xlSizes(sizes []int) []int {
	if c.XL && !c.Quick {
		sizes = append(sizes, 1024, 4096)
	}
	return sizes
}

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Failures collects guarantee violations (empty = all checks passed).
	Failures []string
}

// Add appends a row.
func (t *Table) Add(cols ...string) { t.Rows = append(t.Rows, cols) }

// Failf records a guarantee violation.
func (t *Table) Failf(format string, args ...interface{}) {
	t.Failures = append(t.Failures, fmt.Sprintf(format, args...))
}

// Notef appends a note line.
func (t *Table) Notef(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cols []string) {
		for i, c := range cols {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, f := range t.Failures {
		fmt.Fprintf(&b, "FAIL: %s\n", f)
	}
	return b.String()
}

// FitExponent returns the least-squares slope of log(y) over log(x) — the
// empirical growth exponent of a measured series.
func FitExponent(xs []float64, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(xs))
	for i := range xs {
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// All runs every experiment.
func All(cfg Config) []Table {
	return []Table{
		E1TokenRouting(cfg),
		E2HelperSets(cfg),
		E3APSP(cfg),
		E4CliqueSim(cfg),
		E5KSSP(cfg),
		E6SSSP(cfg),
		E7Diameter(cfg),
		E8KSSPLowerBound(cfg),
		E9DiameterLowerBound(cfg),
		E10RecvLoad(cfg),
		E11ModeComparison(cfg),
	}
}
