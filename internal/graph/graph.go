// Package graph provides the weighted undirected graphs that serve as the
// local communication topology G = (V, E) of the HYBRID model (paper §1.3),
// together with generators and exact sequential reference algorithms used as
// ground truth by tests and benchmarks.
//
// Nodes are identified by integers 0..n-1 (the paper uses IDs [n]; we shift
// to 0-based). Edge weights are positive integers in [1, W] with W at most
// polynomial in n, so a weight fits into one O(log n)-bit message field.
package graph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// Inf is the distance value used for unreachable pairs. It is chosen far
// below overflow territory so that Inf+w for any legal edge weight w never
// wraps around.
const Inf int64 = math.MaxInt64 / 4

// Edge is a weighted undirected edge between two nodes.
type Edge struct {
	U, V int
	W    int64
}

// Neighbor is one adjacency entry: the endpoint reached and the edge weight.
type Neighbor struct {
	To int
	W  int64
}

// Graph is a weighted undirected graph with nodes 0..n-1. The zero value is
// an empty graph with no nodes; use New to create a graph of a given size.
type Graph struct {
	n   int
	m   int
	adj [][]Neighbor
}

// New returns an empty graph on n nodes.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{n: n, adj: make([][]Neighbor, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts the undirected edge {u, v} with weight w. It returns an
// error if the endpoints are out of range, equal, non-positive weight, or if
// the edge already exists.
func (g *Graph) AddEdge(u, v int, w int64) error {
	switch {
	case u < 0 || u >= g.n || v < 0 || v >= g.n:
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n)
	case u == v:
		return fmt.Errorf("graph: self-loop at %d", u)
	case w <= 0:
		return fmt.Errorf("graph: non-positive weight %d on {%d,%d}", w, u, v)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	g.adj[u] = append(g.adj[u], Neighbor{To: v, W: w})
	g.adj[v] = append(g.adj[v], Neighbor{To: u, W: w})
	g.m++
	return nil
}

// MustAddEdge is AddEdge for construction code where an error indicates a
// bug in the generator itself.
func (g *Graph) MustAddEdge(u, v int, w int64) {
	if err := g.AddEdge(u, v, w); err != nil {
		panic(err)
	}
}

// HasEdge reports whether the undirected edge {u, v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	// Scan the smaller adjacency list.
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, nb := range g.adj[u] {
		if nb.To == v {
			return true
		}
	}
	return false
}

// Weight returns the weight of edge {u, v} and whether it exists.
func (g *Graph) Weight(u, v int) (int64, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0, false
	}
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, nb := range g.adj[u] {
		if nb.To == v {
			return nb.W, true
		}
	}
	return 0, false
}

// Neighbors returns the adjacency list of u. The returned slice is shared
// with the graph and must not be modified.
func (g *Graph) Neighbors(u int) []Neighbor { return g.adj[u] }

// Degree returns the number of edges incident to u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// MaxDegree returns the maximum degree over all nodes (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	max := 0
	for u := 0; u < g.n; u++ {
		if d := len(g.adj[u]); d > max {
			max = d
		}
	}
	return max
}

// Edges returns all undirected edges with U < V, sorted lexicographically.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, nb := range g.adj[u] {
			if u < nb.To {
				edges = append(edges, Edge{U: u, V: nb.To, W: nb.W})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	return edges
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.m = g.m
	for u := 0; u < g.n; u++ {
		c.adj[u] = append([]Neighbor(nil), g.adj[u]...)
	}
	return c
}

// MaxWeight returns the largest edge weight (1 for edgeless graphs, so that
// unweighted graphs report W = 1 per the paper's convention).
func (g *Graph) MaxWeight() int64 {
	var max int64 = 1
	for u := 0; u < g.n; u++ {
		for _, nb := range g.adj[u] {
			if nb.W > max {
				max = nb.W
			}
		}
	}
	return max
}

// IsUnweighted reports whether every edge has weight 1 (W = 1, paper §1.3).
func (g *Graph) IsUnweighted() bool {
	for u := 0; u < g.n; u++ {
		for _, nb := range g.adj[u] {
			if nb.W != 1 {
				return false
			}
		}
	}
	return true
}

// Connected reports whether the graph is connected (vacuously true for
// n <= 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range g.adj[u] {
			if !seen[nb.To] {
				seen[nb.To] = true
				count++
				stack = append(stack, nb.To)
			}
		}
	}
	return count == g.n
}

// Validate checks structural invariants: adjacency symmetry, weight
// positivity, no self loops, no duplicate edges. It is used by generator
// tests and property-based tests.
func (g *Graph) Validate() error {
	type key struct{ u, v int }
	seen := make(map[key]int64, 2*g.m)
	degSum := 0
	for u := 0; u < g.n; u++ {
		local := make(map[int]bool, len(g.adj[u]))
		for _, nb := range g.adj[u] {
			if nb.To < 0 || nb.To >= g.n {
				return fmt.Errorf("graph: node %d has out-of-range neighbor %d", u, nb.To)
			}
			if nb.To == u {
				return fmt.Errorf("graph: self-loop at %d", u)
			}
			if nb.W <= 0 {
				return fmt.Errorf("graph: non-positive weight %d on {%d,%d}", nb.W, u, nb.To)
			}
			if local[nb.To] {
				return fmt.Errorf("graph: duplicate adjacency %d->%d", u, nb.To)
			}
			local[nb.To] = true
			seen[key{u, nb.To}] = nb.W
			degSum++
		}
	}
	for k, w := range seen {
		w2, ok := seen[key{k.v, k.u}]
		if !ok {
			return fmt.Errorf("graph: asymmetric edge %d->%d", k.u, k.v)
		}
		if w != w2 {
			return fmt.Errorf("graph: weight mismatch on {%d,%d}: %d vs %d", k.u, k.v, w, w2)
		}
	}
	if degSum != 2*g.m {
		return errors.New("graph: edge count out of sync with adjacency lists")
	}
	return nil
}

// Reweight returns a copy of g in which every edge weight is replaced by
// fn(u, v, w). Weights must remain positive.
func (g *Graph) Reweight(fn func(u, v int, w int64) int64) *Graph {
	c := New(g.n)
	for _, e := range g.Edges() {
		c.MustAddEdge(e.U, e.V, fn(e.U, e.V, e.W))
	}
	return c
}

// Fingerprint returns a canonical 64-bit FNV-1a hash of the graph — node
// count and the sorted undirected edge list with weights — so two graphs
// hash equal iff they are the same labeled weighted graph. It is the
// topology component of the persistent warm-start cache key: a cache file
// recorded for one graph must never be offered to another.
func (g *Graph) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	word(uint64(g.n))
	word(uint64(g.m))
	for _, e := range g.Edges() {
		word(uint64(e.U))
		word(uint64(e.V))
		word(uint64(e.W))
	}
	return h.Sum64()
}
