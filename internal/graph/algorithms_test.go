package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDijkstraPath(t *testing.T) {
	g := Path(5)
	d := Dijkstra(g, 0)
	for v := 0; v < 5; v++ {
		if d[v] != int64(v) {
			t.Fatalf("d(0,%d) = %d, want %d", v, d[v], v)
		}
	}
}

func TestDijkstraWeighted(t *testing.T) {
	// Triangle where the two-hop route is shorter than the direct edge.
	g := New(3)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(0, 2, 3)
	g.MustAddEdge(2, 1, 4)
	d := Dijkstra(g, 0)
	if d[1] != 7 {
		t.Fatalf("d(0,1) = %d, want 7 (via node 2)", d[1])
	}
	if d[2] != 3 {
		t.Fatalf("d(0,2) = %d, want 3", d[2])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	d := Dijkstra(g, 0)
	if d[2] != Inf || d[3] != Inf {
		t.Fatalf("unreachable distances = %d,%d, want Inf", d[2], d[3])
	}
}

func TestDijkstraBadSource(t *testing.T) {
	g := Path(3)
	d := Dijkstra(g, -1)
	for v, x := range d {
		if x != Inf {
			t.Fatalf("d(-1,%d) = %d, want Inf", v, x)
		}
	}
}

func TestBFSVersusDijkstraUnweighted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := GNP(60, 0.08, rng)
	for src := 0; src < 10; src++ {
		b := BFS(g, src)
		d := Dijkstra(g, src)
		for v := range b {
			if b[v] != d[v] {
				t.Fatalf("src=%d v=%d BFS=%d Dijkstra=%d", src, v, b[v], d[v])
			}
		}
	}
}

func TestHopDiameterKnown(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int64
	}{
		{"path10", Path(10), 9},
		{"cycle8", Cycle(8), 4},
		{"complete6", Complete(6), 1},
		{"star9", Star(9), 2},
		{"grid3x3", Grid(3, 3), 4},
		{"single", New(1), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := HopDiameter(tt.g); got != tt.want {
				t.Fatalf("HopDiameter = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestWeightedDiameter(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(1, 2, 7)
	if d := WeightedDiameter(g); d != 12 {
		t.Fatalf("WeightedDiameter = %d, want 12", d)
	}
	// Hop diameter ignores weights.
	if d := HopDiameter(g); d != 2 {
		t.Fatalf("HopDiameter = %d, want 2", d)
	}
}

func TestEccentricityAndDiameterBound(t *testing.T) {
	// Paper fn.6: D/2 <= e(v) <= D for weighted diameter via any v.
	rng := rand.New(rand.NewSource(11))
	g := WithRandomWeights(GNP(40, 0.1, rng), 20, rng)
	d := WeightedDiameter(g)
	for v := 0; v < g.N(); v++ {
		e := Eccentricity(g, v)
		if e > d || 2*e < d {
			t.Fatalf("eccentricity %d of node %d violates D/2 <= e <= D with D=%d", e, v, d)
		}
	}
}

func TestLimitedDistance(t *testing.T) {
	g := Path(6)
	d2 := LimitedDistance(g, 0, 2)
	want := []int64{0, 1, 2, Inf, Inf, Inf}
	for v := range want {
		if d2[v] != want[v] {
			t.Fatalf("d_2(0,%d) = %d, want %d", v, d2[v], want[v])
		}
	}
	// h >= n-1 gives true distances.
	dn := LimitedDistance(g, 0, 5)
	for v := 0; v < 6; v++ {
		if dn[v] != int64(v) {
			t.Fatalf("d_5(0,%d) = %d, want %d", v, dn[v], v)
		}
	}
}

func TestLimitedDistancePrefersLightIndirect(t *testing.T) {
	// d_1 uses only the direct heavy edge; d_2 finds the light route.
	g := New(3)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(2, 1, 1)
	if d := LimitedDistance(g, 0, 1); d[1] != 10 {
		t.Fatalf("d_1(0,1) = %d, want 10", d[1])
	}
	if d := LimitedDistance(g, 0, 2); d[1] != 2 {
		t.Fatalf("d_2(0,1) = %d, want 2", d[1])
	}
}

func TestSPDPathAndClique(t *testing.T) {
	if spd := SPD(Path(10)); spd != 9 {
		t.Fatalf("SPD(path10) = %d, want 9", spd)
	}
	if spd := SPD(Complete(8)); spd != 1 {
		t.Fatalf("SPD(K8) = %d, want 1", spd)
	}
}

func TestSPDHeavyShortcut(t *testing.T) {
	// A direct heavy edge is never on a shortest path, so SPD follows the
	// light path.
	g := New(4)
	g.MustAddEdge(0, 3, 100)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	if spd := SPD(g); spd != 3 {
		t.Fatalf("SPD = %d, want 3", spd)
	}
}

func TestSPDConsistentWithLimitedDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := WithRandomWeights(GNP(30, 0.12, rng), 9, rng)
	spd := SPD(g)
	apsp := APSP(g)
	// d_spd must equal true distance everywhere...
	for u := 0; u < g.N(); u++ {
		lim := LimitedDistance(g, u, spd)
		for v := 0; v < g.N(); v++ {
			if lim[v] != apsp[u][v] {
				t.Fatalf("d_%d(%d,%d) = %d != true %d", spd, u, v, lim[v], apsp[u][v])
			}
		}
	}
	// ...and spd must be minimal: with spd-1 some pair must differ.
	if spd > 1 {
		tight := false
		for u := 0; u < g.N() && !tight; u++ {
			lim := LimitedDistance(g, u, spd-1)
			for v := 0; v < g.N(); v++ {
				if lim[v] != apsp[u][v] {
					tight = true
					break
				}
			}
		}
		if !tight {
			t.Fatalf("SPD = %d is not minimal", spd)
		}
	}
}

func TestKDistancesMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := WithRandomWeights(GNP(25, 0.2, rng), 10, rng)
	sources := []int{3, 11, 19}
	kd := KDistances(g, sources)
	for si, s := range sources {
		d := Dijkstra(g, s)
		for v := 0; v < g.N(); v++ {
			if kd[v][si] != d[v] {
				t.Fatalf("KDistances[%d][%d] = %d, want %d", v, si, kd[v][si], d[v])
			}
		}
	}
}

// Property: triangle inequality on APSP output of random weighted graphs.
func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 3 + int(nRaw%25)
		rng := rand.New(rand.NewSource(seed))
		g := WithRandomWeights(GNP(n, 0.2, rng), 12, rng)
		d := APSP(g)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				for w := 0; w < n; w++ {
					if d[u][v] > d[u][w]+d[w][v] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: hop diameter lower-bounds weighted diameter on graphs with
// weights >= 1.
func TestQuickHopVsWeightedDiameter(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%30)
		rng := rand.New(rand.NewSource(seed))
		g := WithRandomWeights(GNP(n, 0.15, rng), 6, rng)
		return HopDiameter(g) <= WeightedDiameter(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: LimitedDistance is monotone non-increasing in h and reaches
// Dijkstra at h = n-1.
func TestQuickLimitedDistanceMonotone(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%20)
		rng := rand.New(rand.NewSource(seed))
		g := WithRandomWeights(GNP(n, 0.25, rng), 8, rng)
		src := int(rng.Int31n(int32(n)))
		exact := Dijkstra(g, src)
		prev := LimitedDistance(g, src, 0)
		for h := 1; h < n; h++ {
			cur := LimitedDistance(g, src, h)
			for v := 0; v < n; v++ {
				if cur[v] > prev[v] {
					return false
				}
				if cur[v] < exact[v] {
					return false // limited distance can never beat the true distance
				}
			}
			prev = cur
		}
		for v := 0; v < n; v++ {
			if prev[v] != exact[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDijkstraSparse1k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := SparseConnected(1000, 2, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, i%g.N())
	}
}
