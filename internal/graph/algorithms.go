package graph

// This file holds the exact sequential reference algorithms. They define
// ground truth for every distributed algorithm in the repository: a HYBRID
// APSP run is correct iff it matches Dijkstra from every source, a diameter
// approximation D~ is valid iff D <= D~ <= alpha*D + beta with D computed
// here, and so on (paper §1.3 problem definitions).

// distHeap is a hand-rolled binary min-heap of (node, dist) pairs for
// Dijkstra; avoiding container/heap keeps the hot loop allocation-free.
type distHeap struct {
	node []int
	dist []int64
}

func (h *distHeap) Len() int { return len(h.node) }

func (h *distHeap) push(n int, d int64) {
	h.node = append(h.node, n)
	h.dist = append(h.dist, d)
	i := len(h.node) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.dist[parent] <= h.dist[i] {
			break
		}
		h.node[i], h.node[parent] = h.node[parent], h.node[i]
		h.dist[i], h.dist[parent] = h.dist[parent], h.dist[i]
		i = parent
	}
}

func (h *distHeap) pop() (int, int64) {
	n, d := h.node[0], h.dist[0]
	last := len(h.node) - 1
	h.node[0], h.dist[0] = h.node[last], h.dist[last]
	h.node = h.node[:last]
	h.dist = h.dist[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.dist[l] < h.dist[smallest] {
			smallest = l
		}
		if r < last && h.dist[r] < h.dist[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.node[i], h.node[smallest] = h.node[smallest], h.node[i]
		h.dist[i], h.dist[smallest] = h.dist[smallest], h.dist[i]
		i = smallest
	}
	return n, d
}

// Dijkstra returns d(src, v) for all v, with Inf for unreachable nodes.
func Dijkstra(g *Graph, src int) []int64 {
	dist := make([]int64, g.N())
	for i := range dist {
		dist[i] = Inf
	}
	if src < 0 || src >= g.N() {
		return dist
	}
	dist[src] = 0
	h := &distHeap{}
	h.push(src, 0)
	for h.Len() > 0 {
		u, d := h.pop()
		if d > dist[u] {
			continue
		}
		for _, nb := range g.Neighbors(u) {
			if nd := d + nb.W; nd < dist[nb.To] {
				dist[nb.To] = nd
				h.push(nb.To, nd)
			}
		}
	}
	return dist
}

// BFS returns hop(src, v) for all v, with Inf for unreachable nodes. This is
// the paper's hop-distance, which ignores edge weights.
func BFS(g *Graph, src int) []int64 {
	dist := make([]int64, g.N())
	for i := range dist {
		dist[i] = Inf
	}
	if src < 0 || src >= g.N() {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(u) {
			if dist[nb.To] == Inf {
				dist[nb.To] = dist[u] + 1
				queue = append(queue, nb.To)
			}
		}
	}
	return dist
}

// APSP returns the full weighted distance matrix via Dijkstra from every
// source. O(n * (m + n) log n).
func APSP(g *Graph) [][]int64 {
	out := make([][]int64, g.N())
	for u := 0; u < g.N(); u++ {
		out[u] = Dijkstra(g, u)
	}
	return out
}

// HopAPSP returns the full hop-distance matrix via BFS from every source.
func HopAPSP(g *Graph) [][]int64 {
	out := make([][]int64, g.N())
	for u := 0; u < g.N(); u++ {
		out[u] = BFS(g, u)
	}
	return out
}

// HopDiameter returns D(G) := max_{u,v} hop(u,v), the paper's diameter
// (§1.3 defines the diameter over hop distances, even on weighted graphs).
// It returns Inf for disconnected graphs and 0 for graphs with fewer than
// two nodes.
func HopDiameter(g *Graph) int64 {
	var d int64
	for u := 0; u < g.N(); u++ {
		for _, x := range BFS(g, u) {
			if x > d {
				d = x
			}
		}
	}
	return d
}

// WeightedDiameter returns max_{u,v} d(u,v) over weighted distances, Inf if
// disconnected.
func WeightedDiameter(g *Graph) int64 {
	var d int64
	for u := 0; u < g.N(); u++ {
		for _, x := range Dijkstra(g, u) {
			if x > d {
				d = x
			}
		}
	}
	return d
}

// Eccentricity returns e(v) := max_u d(v, u) over weighted distances.
func Eccentricity(g *Graph, v int) int64 {
	var e int64
	for _, x := range Dijkstra(g, v) {
		if x > e {
			e = x
		}
	}
	return e
}

// LimitedDistance returns the h-limited distance d_h(src, v) for all v: the
// weight of the lightest src-v path using at most h edges, Inf if none
// exists (paper §1.3). Implemented as h rounds of Bellman-Ford relaxation.
func LimitedDistance(g *Graph, src, h int) []int64 {
	cur := make([]int64, g.N())
	for i := range cur {
		cur[i] = Inf
	}
	if src < 0 || src >= g.N() {
		return cur
	}
	cur[src] = 0
	next := make([]int64, g.N())
	for step := 0; step < h; step++ {
		copy(next, cur)
		changed := false
		for u := 0; u < g.N(); u++ {
			if cur[u] == Inf {
				continue
			}
			for _, nb := range g.Neighbors(u) {
				if nd := cur[u] + nb.W; nd < next[nb.To] {
					next[nb.To] = nd
					changed = true
				}
			}
		}
		cur, next = next, cur
		if !changed {
			break
		}
	}
	return cur
}

// SPD returns the shortest-path diameter: the smallest h such that
// d_h(u,v) = d(u,v) for all pairs. This is the parameter in [3]'s
// O~(sqrt(SPD)) SSSP algorithm that Theorem 1.3 improves on for large-SPD
// graphs. Returns 0 for graphs with fewer than two nodes, and the SPD of the
// reachable pairs if the graph is disconnected.
func SPD(g *Graph) int {
	n := g.N()
	spd := 0
	for src := 0; src < n; src++ {
		// Dijkstra that tracks, for each node, the minimum hop count among
		// shortest paths from src.
		dist := Dijkstra(g, src)
		hops := make([]int, n)
		for i := range hops {
			hops[i] = 1 << 30
		}
		hops[src] = 0
		// Relax in order of increasing distance: process nodes sorted by
		// dist, computing min hops over tight edges.
		order := make([]int, 0, n)
		for v := 0; v < n; v++ {
			if dist[v] < Inf {
				order = append(order, v)
			}
		}
		// Insertion by distance; counting sort is overkill here.
		sortByDist(order, dist)
		for _, u := range order {
			for _, nb := range g.Neighbors(u) {
				if dist[u]+nb.W == dist[nb.To] && hops[u]+1 < hops[nb.To] {
					hops[nb.To] = hops[u] + 1
				}
			}
		}
		for _, v := range order {
			if hops[v] < (1<<30) && hops[v] > spd {
				spd = hops[v]
			}
		}
	}
	return spd
}

func sortByDist(order []int, dist []int64) {
	// Simple in-place sort; n is small relative to the Dijkstra cost.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && dist[order[j]] < dist[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}

// KDistances returns, for each node v, the vector of d(v, s) for the given
// sources, in source order. This is the output shape of the k-SSP problem.
func KDistances(g *Graph, sources []int) [][]int64 {
	out := make([][]int64, g.N())
	for v := range out {
		out[v] = make([]int64, len(sources))
	}
	for si, s := range sources {
		d := Dijkstra(g, s)
		for v := 0; v < g.N(); v++ {
			out[v][si] = d[v]
		}
	}
	return out
}
