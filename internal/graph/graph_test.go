package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 {
		t.Fatalf("N() = %d, want 5", g.N())
	}
	if g.M() != 0 {
		t.Fatalf("M() = %d, want 0", g.M())
	}
	if g.MaxDegree() != 0 {
		t.Fatalf("MaxDegree() = %d, want 0", g.MaxDegree())
	}
	if !g.IsUnweighted() {
		t.Fatal("empty graph should report unweighted")
	}
}

func TestNewNegative(t *testing.T) {
	g := New(-3)
	if g.N() != 0 {
		t.Fatalf("N() = %d, want 0", g.N())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	tests := []struct {
		name    string
		u, v    int
		w       int64
		wantErr bool
	}{
		{"valid", 0, 1, 5, false},
		{"duplicate", 0, 1, 5, true},
		{"duplicate reversed", 1, 0, 5, true},
		{"self loop", 2, 2, 1, true},
		{"out of range low", -1, 0, 1, true},
		{"out of range high", 0, 3, 1, true},
		{"zero weight", 1, 2, 0, true},
		{"negative weight", 1, 2, -4, true},
		{"second valid", 1, 2, 7, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := g.AddEdge(tt.u, tt.v, tt.w)
			if (err != nil) != tt.wantErr {
				t.Fatalf("AddEdge(%d,%d,%d) error = %v, wantErr=%v", tt.u, tt.v, tt.w, err, tt.wantErr)
			}
		})
	}
	if g.M() != 2 {
		t.Fatalf("M() = %d, want 2", g.M())
	}
}

func TestWeightLookup(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 3)
	g.MustAddEdge(1, 2, 9)

	if w, ok := g.Weight(0, 1); !ok || w != 3 {
		t.Fatalf("Weight(0,1) = %d,%v, want 3,true", w, ok)
	}
	if w, ok := g.Weight(1, 0); !ok || w != 3 {
		t.Fatalf("Weight(1,0) = %d,%v, want 3,true", w, ok)
	}
	if _, ok := g.Weight(0, 3); ok {
		t.Fatal("Weight(0,3) should not exist")
	}
	if _, ok := g.Weight(-1, 5); ok {
		t.Fatal("Weight out of range should not exist")
	}
	if !g.HasEdge(2, 1) {
		t.Fatal("HasEdge(2,1) should be true")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("HasEdge(0,2) should be false")
	}
}

func TestEdgesSortedAndComplete(t *testing.T) {
	g := New(4)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 3, 4)
	edges := g.Edges()
	want := []Edge{{0, 1, 2}, {1, 3, 4}, {2, 3, 1}}
	if len(edges) != len(want) {
		t.Fatalf("Edges() returned %d edges, want %d", len(edges), len(want))
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("Edges()[%d] = %+v, want %+v", i, edges[i], want[i])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Path(5)
	c := g.Clone()
	c.MustAddEdge(0, 4, 1)
	if g.HasEdge(0, 4) {
		t.Fatal("mutating clone affected original")
	}
	if g.M() != 4 || c.M() != 5 {
		t.Fatalf("edge counts g=%d c=%d, want 4 and 5", g.M(), c.M())
	}
}

func TestConnected(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"empty", New(0), true},
		{"single", New(1), true},
		{"two isolated", New(2), false},
		{"path", Path(10), true},
		{"cycle", Cycle(6), true},
		{"grid", Grid(4, 5), true},
		{"star", Star(7), true},
		{"disconnected pair of paths", func() *Graph {
			g := New(6)
			g.MustAddEdge(0, 1, 1)
			g.MustAddEdge(1, 2, 1)
			g.MustAddEdge(3, 4, 1)
			g.MustAddEdge(4, 5, 1)
			return g
		}(), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.Connected(); got != tt.want {
				t.Fatalf("Connected() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestValidateGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name string
		g    *Graph
	}{
		{"path", Path(17)},
		{"cycle", Cycle(9)},
		{"grid", Grid(5, 7)},
		{"complete", Complete(12)},
		{"star", Star(20)},
		{"tree", RandomTree(40, rng)},
		{"gnp", GNP(30, 0.2, rng)},
		{"sparse", SparseConnected(50, 1.5, rng)},
		{"geometric", RandomGeometric(40, 0.15, rng)},
		{"barbell", Barbell(6, 5)},
		{"caterpillar", Caterpillar(8, 3)},
		{"weighted grid", WithRandomWeights(Grid(4, 4), 100, rng)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.g.Validate(); err != nil {
				t.Fatalf("Validate() = %v", err)
			}
			if !tt.g.Connected() {
				t.Fatal("generator should produce connected graph")
			}
		})
	}
}

func TestGridShape(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("N() = %d, want 12", g.N())
	}
	// Grid edges: rows*(cols-1) + (rows-1)*cols = 3*3 + 2*4 = 17.
	if g.M() != 17 {
		t.Fatalf("M() = %d, want 17", g.M())
	}
	if d := HopDiameter(g); d != 5 {
		t.Fatalf("HopDiameter = %d, want 5 (corner to corner)", d)
	}
}

func TestBarbellShape(t *testing.T) {
	g := Barbell(5, 4)
	if g.N() != 13 {
		t.Fatalf("N() = %d, want 13", g.N())
	}
	// Diameter: across both cliques and the bridge = 1 + 4 + 1 = 6.
	if d := HopDiameter(g); d != 6 {
		t.Fatalf("HopDiameter = %d, want 6", d)
	}
}

func TestCaterpillarShape(t *testing.T) {
	g := Caterpillar(5, 2)
	if g.N() != 15 {
		t.Fatalf("N() = %d, want 15", g.N())
	}
	// Leg to leg across the spine: 1 + 4 + 1 = 6.
	if d := HopDiameter(g); d != 6 {
		t.Fatalf("HopDiameter = %d, want 6", d)
	}
}

func TestMaxWeightAndUnweighted(t *testing.T) {
	g := Path(4)
	if !g.IsUnweighted() || g.MaxWeight() != 1 {
		t.Fatal("Path should be unweighted with MaxWeight 1")
	}
	rng := rand.New(rand.NewSource(2))
	w := WithRandomWeights(g, 50, rng)
	if w.IsUnweighted() && w.MaxWeight() == 1 {
		t.Fatal("weighted copy should not be unit-weighted (whp for 3 edges)")
	}
	if w.MaxWeight() > 50 || w.MaxWeight() < 1 {
		t.Fatalf("MaxWeight = %d outside [1,50]", w.MaxWeight())
	}
}

// Property: a cloned-then-reweighted graph has the same topology.
func TestReweightPreservesTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := GNP(25, 0.15, rng)
	w := WithRandomWeights(g, 1000, rng)
	if w.N() != g.N() || w.M() != g.M() {
		t.Fatalf("reweight changed shape: (%d,%d) vs (%d,%d)", w.N(), w.M(), g.N(), g.M())
	}
	for _, e := range g.Edges() {
		if !w.HasEdge(e.U, e.V) {
			t.Fatalf("edge {%d,%d} lost in reweight", e.U, e.V)
		}
	}
}

// Property-based: random graphs always validate and have symmetric
// distance matrices.
func TestQuickRandomGraphInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8, tenthP uint8) bool {
		n := 2 + int(nRaw%40)
		p := float64(tenthP%10) / 10
		rng := rand.New(rand.NewSource(seed))
		g := GNP(n, p, rng)
		if err := g.Validate(); err != nil {
			return false
		}
		if !g.Connected() {
			return false
		}
		d := APSP(g)
		for u := 0; u < n; u++ {
			if d[u][u] != 0 {
				return false
			}
			for v := 0; v < n; v++ {
				if d[u][v] != d[v][u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
