package graph

import (
	"math"
	"math/rand"
)

// Generators for the workloads used across the experiment suite. All
// randomized generators take an explicit *rand.Rand so every experiment is
// reproducible from a single seed.

// Path returns the path graph 0-1-2-...-n-1 with unit weights. Paths are the
// high-diameter extreme where pure-LOCAL algorithms need Theta(n) rounds
// (paper §1: "there are graphs for which D is linear in n").
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	return g
}

// Cycle returns the n-cycle with unit weights.
func Cycle(n int) *Graph {
	g := Path(n)
	if n >= 3 {
		g.MustAddEdge(n-1, 0, 1)
	}
	return g
}

// Grid returns the rows x cols grid graph with unit weights; node (r, c) has
// index r*cols + c. Grids have diameter Theta(sqrt(n)), the regime where the
// HYBRID APSP bound O~(sqrt(n)) meets the LOCAL bound Theta(D).
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1), 1)
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c), 1)
			}
		}
	}
	return g
}

// Complete returns the complete graph K_n with unit weights.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v, 1)
		}
	}
	return g
}

// Star returns the star graph with center 0 and unit weights.
func Star(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(0, v, 1)
	}
	return g
}

// RandomTree returns a uniformly-shaped random spanning tree on n nodes with
// unit weights: node i > 0 attaches to a uniform node in [0, i).
func RandomTree(n int, rng *rand.Rand) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, rng.Intn(v), 1)
	}
	return g
}

// GNP returns a connected Erdős–Rényi graph: each pair is an edge with
// probability p, and a random spanning tree is overlaid first so the result
// is always connected (the HYBRID model assumes connected local graphs; the
// paper's skeleton machinery requires connectivity). Unit weights.
func GNP(n int, p float64, rng *rand.Rand) *Graph {
	g := RandomTree(n, rng)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, 1)
			}
		}
	}
	return g
}

// SparseConnected returns a connected graph with about extraFraction*n edges
// beyond a random spanning tree — the "sparse random graph" workload used by
// the APSP and k-SSP experiments. Unit weights.
func SparseConnected(n int, extraFraction float64, rng *rand.Rand) *Graph {
	g := RandomTree(n, rng)
	extra := int(extraFraction * float64(n))
	for i := 0; i < extra; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, 1)
		}
	}
	return g
}

// RandomGeometric places n points uniformly in the unit square and connects
// pairs within Euclidean distance radius, then connects components by
// chaining nearest representatives so the result is connected. This models
// the paper's motivating wireless scenario (short-range local links).
func RandomGeometric(n int, radius float64, rng *rand.Rand) *Graph {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	g := New(n)
	r2 := radius * radius
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx, dy := xs[u]-xs[v], ys[u]-ys[v]
			if dx*dx+dy*dy <= r2 {
				g.MustAddEdge(u, v, 1)
			}
		}
	}
	connectComponents(g, xs, ys)
	return g
}

// connectComponents adds minimal bridge edges between connected components,
// joining each component to its geometrically nearest other component.
func connectComponents(g *Graph, xs, ys []float64) {
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var compCount int
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		stack := []int{s}
		comp[s] = compCount
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nb := range g.Neighbors(u) {
				if comp[nb.To] == -1 {
					comp[nb.To] = compCount
					stack = append(stack, nb.To)
				}
			}
		}
		compCount++
	}
	for compCount > 1 {
		// Find the closest pair of nodes in different components and merge.
		bestU, bestV, bestD := -1, -1, math.Inf(1)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if comp[u] == comp[v] {
					continue
				}
				dx, dy := xs[u]-xs[v], ys[u]-ys[v]
				if d := dx*dx + dy*dy; d < bestD {
					bestU, bestV, bestD = u, v, d
				}
			}
		}
		g.MustAddEdge(bestU, bestV, 1)
		from, to := comp[bestV], comp[bestU]
		for i := range comp {
			if comp[i] == from {
				comp[i] = to
			}
		}
		compCount--
	}
}

// Barbell returns two cliques of size k joined by a path of bridgeLen edges.
// Barbells have a sharp bottleneck and diameter Theta(bridgeLen); they
// stress the helper-set machinery because samples concentrate per clique.
func Barbell(k, bridgeLen int) *Graph {
	n := 2*k + bridgeLen - 1
	if bridgeLen < 1 {
		bridgeLen = 1
		n = 2 * k
	}
	g := New(n)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			g.MustAddEdge(u, v, 1)
		}
	}
	base := k + bridgeLen - 1
	for u := base; u < base+k; u++ {
		for v := u + 1; v < base+k; v++ {
			g.MustAddEdge(u, v, 1)
		}
	}
	prev := k - 1
	for i := 0; i < bridgeLen-1; i++ {
		g.MustAddEdge(prev, k+i, 1)
		prev = k + i
	}
	g.MustAddEdge(prev, base, 1)
	return g
}

// Caterpillar returns a path of spineLen nodes where every spine node has
// legs pendant neighbors. Caterpillars combine a long backbone with local
// bulk, a worst case for cluster formation around ruling sets.
func Caterpillar(spineLen, legs int) *Graph {
	g := New(spineLen * (1 + legs))
	for i := 0; i+1 < spineLen; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	next := spineLen
	for i := 0; i < spineLen; i++ {
		for l := 0; l < legs; l++ {
			g.MustAddEdge(i, next, 1)
			next++
		}
	}
	return g
}

// WithRandomWeights returns a copy of g with integer weights drawn uniformly
// from [1, maxW]. Used to build the weighted variants of every workload
// (the paper allows W polynomial in n).
func WithRandomWeights(g *Graph, maxW int64, rng *rand.Rand) *Graph {
	return g.Reweight(func(u, v int, w int64) int64 {
		return 1 + rng.Int63n(maxW)
	})
}
