package graph

// Route reconstruction from APSP distances: per-destination forwarding
// tables and the walks that realize them. This is the compute-side half of
// the paper's IP-routing application (§1); the serve layer
// (internal/serve) keeps these tables resident and answers point-to-point
// queries from them, so the functions here are shared between the facade
// (hybrid.NextHops / hybrid.FollowRoute) and the server's request path.

// NextHops derives per-destination forwarding tables from an exact
// distance matrix. Entry [v][t] is the neighbor v forwards to on a
// shortest path toward t (-1 for t == v or unreachable). Ties break toward
// the smallest neighbor ID, so tables are deterministic and loop-free.
func NextHops(g *Graph, dist [][]int64) [][]int {
	n := g.N()
	out := make([][]int, n)
	for v := 0; v < n; v++ {
		row := make([]int, n)
		for t := 0; t < n; t++ {
			row[t] = -1
			if t == v || dist[v][t] >= Inf {
				continue
			}
			for _, nb := range g.Neighbors(v) {
				if dist[nb.To][t] < Inf && nb.W+dist[nb.To][t] == dist[v][t] {
					if row[t] == -1 || nb.To < row[t] {
						row[t] = nb.To
					}
				}
			}
		}
		out[v] = row
	}
	return out
}

// FollowRoute walks the forwarding tables from s toward t and returns the
// node sequence, or nil if forwarding fails (loop or dead end). On tables
// from exact APSP the walk always realizes a shortest path.
func FollowRoute(tables [][]int, s, t int) []int {
	path := []int{s}
	cur := s
	for cur != t {
		if len(path) > len(tables) {
			return nil // loop guard
		}
		next := tables[cur][t]
		if next < 0 {
			return nil
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// PathWeight sums the edge weights along the node sequence path in g. It
// reports false when the path is empty or traverses a non-edge, so callers
// can distinguish "weight 0" from "not a path".
func PathWeight(g *Graph, path []int) (int64, bool) {
	if len(path) == 0 {
		return 0, false
	}
	var total int64
	for i := 1; i < len(path); i++ {
		w, ok := g.Weight(path[i-1], path[i])
		if !ok {
			return 0, false
		}
		total += w
	}
	return total, true
}
