// Package diameter implements the paper's §5: computing the (unweighted)
// diameter D(G) in the HYBRID model by simulating CLIQUE diameter
// algorithms on a skeleton graph (Theorem 5.1, Algorithm 9
// "Diam-Simulation") and the corollaries instantiating it:
//
//   - Corollary 5.2: (3/2+ε)-approximation in O~(n^(1/3)/ε) via the
//     (3/2+ε, W)-approximation CLIQUE algorithm of [7] (δ = 0).
//   - Corollary 5.3: (1+ε)-approximation in O~(n^0.397/ε) via the
//     ρ-exponent APSP of [8].
//
// Algorithm 9: build a skeleton with x = 2/(3+2δ); simulate A on it to get
// D~(S); explore the local graph for ηh+1 rounds, which (I) spreads D~(S)
// to everyone and (II) lets each node measure h_v, the largest hop distance
// it sees; aggregate ĥ = max_v h_v over the global network (Lemma B.2);
// output D~ = ĥ if ĥ <= ηh (the diameter was small enough to measure
// exactly), else D~(S) + 2h (Equation 3).
package diameter

import (
	"math"

	"repro/internal/clique"
	"repro/internal/cliquesim"
	"repro/internal/graph"
	"repro/internal/ncc"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/skeleton"
)

// AlgSpec characterizes the CLIQUE diameter algorithm A (Theorem 5.1's
// (α, β)-approximation with runtime O~(η q^δ)).
type AlgSpec struct {
	// Delta is A's runtime exponent δ (sets x = 2/(3+2δ)).
	Delta float64
	// Eta is A's runtime scale η >= 1; also the local exploration depth ηh.
	Eta float64
	// Factory builds A for a skeleton of size q. The algorithm's nodes must
	// implement clique.DiameterNode.
	Factory func(q int) clique.Algorithm
}

// Params tunes the run; the zero value follows the paper.
type Params struct {
	// XOverride replaces x = 2/(3+2δ) when in (0, 1).
	XOverride float64
	// HFactor forwards to skeleton.Params.
	HFactor float64
	// Routing tunes the CLIQUE simulation's token routing.
	Routing routing.Params
	// SkeletonCache, if non-nil, reuses skeleton construction results
	// across runs with matching parameters and membership draws (see
	// skeleton.ResultCache); the facade threads the Network's cache here.
	SkeletonCache *skeleton.ResultCache
}

// diamFlood carries D~(S) from skeleton nodes through the local network.
type diamFlood struct {
	Value int64
	TTL   int
}

// hopWave is the all-sources BFS payload of the h_v measurement (shared by
// the goroutine and step forms of the exploration, so both send
// message-for-message identical floods).
type hopWave struct {
	Source int
	Hops   int
}

// plan resolves the derived parameters: skeleton params at x = 2/(3+2δ),
// exploration depth h, and the ηh local exploration rounds.
func (spec AlgSpec) plan(params Params, n int) (sp skeleton.Params, h, etaRounds int) {
	x := params.XOverride
	if x <= 0 || x >= 1 {
		x = 2 / (3 + 2*spec.Delta)
	}
	sp = skeleton.Params{X: x, HFactor: params.HFactor, Cache: params.SkeletonCache}
	h = sp.H(n)
	etaRounds = int(math.Ceil(spec.Eta * float64(h)))
	if etaRounds < h {
		etaRounds = h
	}
	if etaRounds > n {
		etaRounds = n
	}
	return sp, h, etaRounds
}

// cliqueFactory wraps spec.Factory as the run-scoped shared instance the
// CLIQUE simulation needs (identical at every node; pooled for the
// declared-cost oracle).
func cliqueFactory(env *sim.Env, spec AlgSpec) cliquesim.Factory {
	return func(q int, members []int) clique.Algorithm {
		v := env.SharedOnce("diameter.alg", func() interface{} { return spec.Factory(q) })
		return v.(clique.Algorithm)
	}
}

// skeletonDiameter reads D~(S) out of a member's finished CLIQUE node
// (-1 for non-members).
func skeletonDiameter(simRes cliquesim.Result) int64 {
	if simRes.Node != nil {
		if dn, ok := simRes.Node.(clique.DiameterNode); ok {
			return dn.Diameter()
		}
	}
	return -1
}

// estimate applies Equation (3)'s final rule to the aggregated ĥ and
// D~(S).
func estimate(hHat, dSGlobal int64, h, etaRounds int) int64 {
	if hHat <= int64(etaRounds) {
		return hHat
	}
	return dSGlobal + 2*int64(h)
}

// Compute runs Algorithm 9 collectively and returns this node's diameter
// estimate D~ with D <= D~ <= (α + 2/η + β/T_B)·D w.h.p. on unweighted
// graphs (Theorem 5.1).
func Compute(env *sim.Env, spec AlgSpec, params Params) int64 {
	n := env.N()
	sp, h, etaRounds := spec.plan(params, n)

	// Skeleton and CLIQUE simulation: skeleton members learn D~(S).
	skel := skeleton.Compute(env, sp, false)
	simRes := cliquesim.Simulate(env, skel, sp.SampleProb(n), cliqueFactory(env, spec), params.Routing)
	dS := skeletonDiameter(simRes)

	// Local exploration for ηh+1 rounds: flood D~(S) (every node has a
	// skeleton node within h <= ηh hops w.h.p.) and measure h_v, the
	// largest hop distance seen in the (ηh+1)-neighborhood. Both ride the
	// same exploration: the all-sources wave yields hop distances, and the
	// skeleton nodes' D~(S) flood is piggybacked with a TTL.
	rounds := etaRounds + 1
	var diamMsgs []interface{}
	if dS >= 0 {
		diamMsgs = append(diamMsgs, diamFlood{Value: dS, TTL: rounds})
	}
	myDS, hv := exploreWithDiameter(env, rounds, diamMsgs)

	// ĥ = max_v h_v via the Lemma B.2 aggregation, and the final rule of
	// Equation (3). D~(S) is also aggregated (max) so that nodes that
	// missed the flood (coverage failure) still answer consistently.
	hHat := ncc.Aggregate(env, int64(hv), ncc.AggMax)
	dSGlobal := ncc.Aggregate(env, myDS, ncc.AggMax)
	return estimate(hHat, dSGlobal, h, etaRounds)
}

// exploreWithDiameter runs `rounds` rounds of local flooding that both
// measures the largest hop distance seen (via an all-sources BFS wave) and
// spreads the skeleton's diameter estimate. Returns (best D~(S) heard, h_v).
func exploreWithDiameter(env *sim.Env, rounds int, initial []interface{}) (int64, int) {
	seen := map[int]int{env.ID(): 0}
	hv := 0
	myDS := int64(-1)
	var outbox []interface{}
	outbox = append(outbox, initial...)
	outbox = append(outbox, hopWave{Source: env.ID(), Hops: 0})
	for step := 0; step < rounds; step++ {
		for _, p := range outbox {
			env.BroadcastLocal(p)
		}
		in := env.Step()
		outbox = outbox[:0]
		var next []interface{}
		for _, lm := range in.Local {
			switch m := lm.Payload.(type) {
			case hopWave:
				if _, ok := seen[m.Source]; !ok {
					seen[m.Source] = m.Hops + 1
					if m.Hops+1 > hv {
						hv = m.Hops + 1
					}
					next = append(next, hopWave{Source: m.Source, Hops: m.Hops + 1})
				}
			case diamFlood:
				if m.Value > myDS {
					myDS = m.Value
					if m.TTL > 1 {
						next = append(next, diamFlood{Value: m.Value, TTL: m.TTL - 1})
					}
				}
			}
		}
		outbox = next
	}
	return myDS, hv
}

// Corollary52 returns the spec reproducing the (3/2+ε)-approximation in
// O~(n^(1/3)/ε): the CLIQUE algorithm of [7] has (α, β) = (3/2+ε, W) and
// δ = 0. The declared-cost oracle emits the exact skeleton diameter, which
// satisfies the (3/2+ε, W) envelope; perturbSeed != 0 stresses the
// envelope's worst case.
func Corollary52(eps float64, perturbSeed int64) AlgSpec {
	return AlgSpec{
		Delta: 0,
		Eta:   math.Max(1, 1/eps),
		Factory: func(q int) clique.Algorithm {
			return clique.NewOracle(q, nil,
				clique.CostModel{Delta: 0, Eta: 1 / eps},
				clique.Quality{Alpha: 1.5 + eps, PerturbSeed: perturbSeed}, true)
		},
	}
}

// Corollary53 returns the spec reproducing the (1+ε)-approximation in
// O~(n^0.397/ε) via [8]'s ρ-exponent APSP (α = 1+o(1), β = 0).
func Corollary53(eps float64, perturbSeed int64) AlgSpec {
	return AlgSpec{
		Delta: 0.15715,
		Eta:   math.Max(1, 1/eps),
		Factory: func(q int) clique.Algorithm {
			return clique.NewOracle(q, nil,
				clique.CostModel{Delta: 0.15715, Eta: 1},
				clique.Quality{Alpha: 1 + eps, PerturbSeed: perturbSeed}, true)
		},
	}
}

// RealMM returns a fully message-passing instantiation: exact skeleton
// diameter via semiring MM APSP plus a max-broadcast round (δ = 1/3,
// α = 1), giving a (1 + 2/η)-approximation end to end.
func RealMM(eta float64) AlgSpec {
	return AlgSpec{
		Delta: 1.0 / 3.0,
		Eta:   math.Max(1, eta),
		Factory: func(q int) clique.Algorithm {
			return clique.NewMM(q, true)
		},
	}
}

// CheckEstimate verifies D <= D~ <= bound*D (+slack for tiny diameters)
// against the sequential ground truth; used by tests and the harness.
func CheckEstimate(g *graph.Graph, estimate int64, bound float64) (int64, bool) {
	d := graph.HopDiameter(g)
	if d == 0 {
		return d, estimate == 0
	}
	return d, estimate >= d && float64(estimate) <= bound*float64(d)
}
