package diameter

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

func runDiameter(t *testing.T, g *graph.Graph, spec AlgSpec, params Params, seed int64) ([]int64, sim.Metrics) {
	t.Helper()
	out := make([]int64, g.N())
	m, err := sim.Run(g, sim.Config{Seed: seed}, func(env *sim.Env) {
		out[env.ID()] = Compute(env, spec, params)
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, m
}

func checkAll(t *testing.T, g *graph.Graph, got []int64, bound float64) {
	t.Helper()
	want := graph.HopDiameter(g)
	for v, est := range got {
		if est < want {
			t.Fatalf("node %d underestimates D: %d < %d", v, est, want)
		}
		if float64(est) > bound*float64(want) {
			t.Fatalf("node %d estimate %d exceeds %.2f*D = %.1f (D=%d)", v, est, bound, bound*float64(want), want)
		}
	}
	// All nodes must agree (the problem statement requires every node to
	// learn D~).
	for v := 1; v < len(got); v++ {
		if got[v] != got[0] {
			t.Fatalf("nodes disagree on D~: %d vs %d", got[v], got[0])
		}
	}
}

func TestSmallDiameterExact(t *testing.T) {
	// D <= ηh: Equation (3) returns ĥ = D exactly.
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid 7x7", graph.Grid(7, 7)},
		{"star", graph.Star(40)},
		{"complete", graph.Complete(30)},
		{"barbell short bridge", graph.Barbell(15, 4)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, _ := runDiameter(t, tt.g, Corollary52(0.5, 0), Params{}, 3)
			want := graph.HopDiameter(tt.g)
			for v, est := range got {
				if est != want {
					t.Fatalf("node %d: D~ = %d, want exact %d", v, est, want)
				}
			}
		})
	}
}

func TestLargeDiameterWithinBound(t *testing.T) {
	// D > ηh: the skeleton estimate + 2h path. With exact oracle outputs
	// the end-to-end factor is (1 + 2/η).
	tests := []struct {
		name  string
		g     *graph.Graph
		spec  AlgSpec
		bound float64
	}{
		{"path cor52", graph.Path(150), Corollary52(0.5, 0), 1.5 + 0.5 + 2*0.5},
		{"cycle cor53", graph.Cycle(140), Corollary53(0.5, 0), 1 + 0.5 + 2*0.5},
		{"long barbell", graph.Barbell(10, 120), Corollary52(0.25, 0), 2.0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, _ := runDiameter(t, tt.g, tt.spec, Params{}, 5)
			checkAll(t, tt.g, got, tt.bound)
		})
	}
}

func TestPerturbedOracleStillWithinTheoremBound(t *testing.T) {
	// Oracle at its declared worst case (α = 3/2+ε on the skeleton):
	// Theorem 5.1 bound (α + 2/η + β/T_B); β = W <= h on unweighted
	// skeletons is folded in by the corollary's analysis, adding 2ε.
	g := graph.Path(160)
	eps := 0.25
	got, _ := runDiameter(t, g, Corollary52(eps, 77), Params{}, 7)
	bound := 1.5 + eps + 2*eps + 2*eps + 0.2 // Corollary 5.2's (3/2 + 4ε) plus small-n slack
	checkAll(t, g, got, bound)
}

func TestRealMMDiameter(t *testing.T) {
	// Fully message-passing: exact skeleton diameter via MM; (1+2/η) bound.
	rng := rand.New(rand.NewSource(9))
	g := graph.SparseConnected(90, 0.3, rng)
	got, _ := runDiameter(t, g, RealMM(2), Params{}, 11)
	checkAll(t, g, got, 2.0)
}

func TestCheckEstimate(t *testing.T) {
	g := graph.Path(10) // D = 9
	tests := []struct {
		est   int64
		bound float64
		want  bool
	}{
		{9, 1.0, true},
		{8, 2.0, false}, // underestimate
		{13, 1.5, true},
		{14, 1.5, false},
	}
	for _, tt := range tests {
		if _, ok := CheckEstimate(g, tt.est, tt.bound); ok != tt.want {
			t.Fatalf("CheckEstimate(%d, %v) = %v, want %v", tt.est, tt.bound, ok, tt.want)
		}
	}
}

func TestDiameterDeterminism(t *testing.T) {
	g := graph.Grid(6, 8)
	a, m1 := runDiameter(t, g, Corollary52(0.5, 0), Params{}, 13)
	b, m2 := runDiameter(t, g, Corollary52(0.5, 0), Params{}, 13)
	if m1.Rounds != m2.Rounds || a[0] != b[0] {
		t.Fatalf("identical runs diverged")
	}
}
