package diameter

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/kssp"
	"repro/internal/sim"
)

func TestWeightedApproxFactorTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"weighted grid", graph.WithRandomWeights(graph.Grid(7, 7), 9, rng)},
		{"weighted path", graph.WithRandomWeights(graph.Path(80), 5, rng)},
		{"weighted sparse", graph.WithRandomWeights(graph.SparseConnected(90, 1.2, rng), 12, rng)},
		{"unweighted cycle", graph.Cycle(60)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out := make([]int64, tt.g.N())
			_, err := sim.Run(tt.g, sim.Config{Seed: 7}, func(env *sim.Env) {
				out[env.ID()] = WeightedApprox(env, kssp.Corollary49(), kssp.Params{})
			})
			if err != nil {
				t.Fatal(err)
			}
			want := graph.WeightedDiameter(tt.g)
			for v, est := range out {
				if est < want {
					t.Fatalf("node %d underestimates weighted D: %d < %d", v, est, want)
				}
				if est > 2*want {
					t.Fatalf("node %d estimate %d > 2*D = %d", v, est, 2*want)
				}
			}
			for v := 1; v < len(out); v++ {
				if out[v] != out[0] {
					t.Fatalf("estimates disagree")
				}
			}
		})
	}
}

func TestWeightedApproxTightOnStar(t *testing.T) {
	// On a star the eccentricity of the center is 1 and D = 2: the doubled
	// eccentricity from a leaf gives between D and 2D regardless of which
	// node is the SSSP source (we use node 0 = center here).
	g := graph.Star(20)
	out := make([]int64, g.N())
	_, err := sim.Run(g, sim.Config{Seed: 9}, func(env *sim.Env) {
		out[env.ID()] = WeightedApprox(env, kssp.Corollary49(), kssp.Params{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 {
		t.Fatalf("estimate = %d, want 2 (= 2*ecc(center) = exact D)", out[0])
	}
}
