package diameter

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/kssp"
	"repro/internal/sim"
)

var stepEngines = []sim.Engine{sim.EngineLegacy, sim.EngineSharded, sim.EngineStep}

// diffDiameter runs Compute as oracle and the step machine on every
// engine, requiring byte-identical estimates and Metrics.
func diffDiameter(t *testing.T, g *graph.Graph, spec AlgSpec, seed int64) {
	t.Helper()
	n := g.N()
	want := make([]int64, n)
	wantM, err := sim.Run(g, sim.Config{Seed: seed, Engine: sim.EngineLegacy}, func(env *sim.Env) {
		want[env.ID()] = Compute(env, spec, Params{})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range stepEngines {
		got := make([]int64, n)
		gotM, err := sim.RunStep(g, sim.Config{Seed: seed, Engine: eng}, func(env *sim.Env) sim.StepProgram {
			id := env.ID()
			return NewComputeMachine(env, spec, Params{}, func(d int64) { got[id] = d })
		})
		if err != nil {
			t.Fatalf("engine=%s: %v", eng, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("engine=%s: estimates differ", eng)
		}
		if wantM != gotM {
			t.Errorf("engine=%s: metrics differ: %+v vs %+v", eng, wantM, gotM)
		}
	}
}

// TestComputeMachineMatchesOracle covers the declared-cost oracle path
// (Corollary 5.2).
func TestComputeMachineMatchesOracle(t *testing.T) {
	diffDiameter(t, graph.Grid(6, 6), Corollary52(0.5, 0), 43)
}

// TestComputeMachineMatchesRealMM covers the real-message exact skeleton
// diameter (δ = 1/3).
func TestComputeMachineMatchesRealMM(t *testing.T) {
	diffDiameter(t, graph.Cycle(30), RealMM(2), 47)
}

// TestWeightedApproxMachineMatches proves the weighted factor-2 machine
// byte-identical to WeightedApprox on every engine.
func TestWeightedApproxMachineMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.WithRandomWeights(graph.Grid(5, 5), 5, rng)
	n := g.N()
	want := make([]int64, n)
	wantM, err := sim.Run(g, sim.Config{Seed: 53, Engine: sim.EngineLegacy}, func(env *sim.Env) {
		want[env.ID()] = WeightedApprox(env, kssp.Corollary49(), kssp.Params{})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range stepEngines {
		got := make([]int64, n)
		gotM, err := sim.RunStep(g, sim.Config{Seed: 53, Engine: eng}, func(env *sim.Env) sim.StepProgram {
			id := env.ID()
			return NewWeightedApproxMachine(env, kssp.Corollary49(), kssp.Params{}, func(d int64) { got[id] = d })
		})
		if err != nil {
			t.Fatalf("engine=%s: %v", eng, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("engine=%s: estimates differ", eng)
		}
		if wantM != gotM {
			t.Errorf("engine=%s: metrics differ: %+v vs %+v", eng, wantM, gotM)
		}
	}
}
