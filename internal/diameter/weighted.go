package diameter

import (
	"repro/internal/graph"
	"repro/internal/kssp"
	"repro/internal/ncc"
	"repro/internal/sim"
)

// WeightedApprox computes a 2(1+o(1))-approximation of the WEIGHTED
// diameter max_{u,v} d(u,v) — the upper bound the paper notes in §1.1
// (footnote 6): the eccentricity e(v) = max_u d(u,v) of any node satisfies
// D_w/2 <= e(v) <= D_w, so one SSSP run plus a global max-aggregation
// yields D~ = 2·e~ with D_w <= D~ <= 2(1+eps)·D_w.
//
// spec selects the SSSP engine: kssp.Corollary49() (exact, O~(n^(2/5)))
// reproduces the clean factor-2 bound; the paper's cited O~(n^(1/3))
// variant corresponds to a (1+o(1))-approximate SSSP oracle.
// Collective; every node returns the same estimate.
func WeightedApprox(env *sim.Env, spec kssp.AlgSpec, params kssp.Params) int64 {
	// SSSP from node 0 (any fixed node works for the eccentricity bound).
	src := 0
	res := kssp.Compute(env, env.ID() == src, 1, spec, params)
	var mine int64
	for _, sd := range res {
		if sd.Source == src && sd.Dist < graph.Inf {
			mine = sd.Dist
		}
	}
	// e~(src) = max over v of d~(v, src), then D~ = 2·e~ (Lemma B.2
	// aggregation, O(log n) rounds).
	ecc := ncc.Aggregate(env, mine, ncc.AggMax)
	return 2 * ecc
}
