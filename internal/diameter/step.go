package diameter

import (
	"repro/internal/cliquesim"
	"repro/internal/graph"
	"repro/internal/kssp"
	"repro/internal/ncc"
	"repro/internal/sim"
	"repro/internal/skeleton"
)

// Step-machine forms of the package's algorithms (see sim.StepProgram):
// NewComputeMachine ports Compute (Algorithm 9), NewWeightedApproxMachine
// ports WeightedApprox. Each is a faithful port of its goroutine twin —
// identical messages, randomness order, and round count — sharing the
// plan/factory/estimate helpers so the two forms cannot drift.

// diamExploreMachine is the step form of exploreWithDiameter: `rounds`
// rounds of local flooding measuring h_v via the all-sources hop wave
// while spreading D~(S) with a TTL. MyDS and Hv are valid once Step
// returned true.
type diamExploreMachine struct {
	MyDS int64
	Hv   int

	loop   sim.Loop
	seen   map[int]int
	outbox []interface{}
}

func newDiamExploreMachine(env *sim.Env, rounds int, initial []interface{}) *diamExploreMachine {
	m := &diamExploreMachine{MyDS: -1, seen: map[int]int{env.ID(): 0}}
	m.outbox = append(m.outbox, initial...)
	m.outbox = append(m.outbox, hopWave{Source: env.ID(), Hops: 0})
	m.loop = sim.Loop{
		Rounds: rounds,
		Send: func(env *sim.Env, i int) {
			for _, p := range m.outbox {
				env.BroadcastLocal(p)
			}
		},
		Recv: func(env *sim.Env, in sim.Inbox, i int) {
			var next []interface{}
			for _, lm := range in.Local {
				switch msg := lm.Payload.(type) {
				case hopWave:
					if _, ok := m.seen[msg.Source]; !ok {
						m.seen[msg.Source] = msg.Hops + 1
						if msg.Hops+1 > m.Hv {
							m.Hv = msg.Hops + 1
						}
						next = append(next, hopWave{Source: msg.Source, Hops: msg.Hops + 1})
					}
				case diamFlood:
					if msg.Value > m.MyDS {
						m.MyDS = msg.Value
						if msg.TTL > 1 {
							next = append(next, diamFlood{Value: msg.Value, TTL: msg.TTL - 1})
						}
					}
				}
			}
			m.outbox = next
		},
	}
	return m
}

// Step implements sim.StepProgram.
func (m *diamExploreMachine) Step(env *sim.Env) bool { return m.loop.Step(env) }

// NewComputeMachine is the step form of Compute (Algorithm 9). done
// receives this node's diameter estimate when the machine finishes.
func NewComputeMachine(env *sim.Env, spec AlgSpec, params Params, done func(int64)) sim.StepProgram {
	n := env.N()
	sp, h, etaRounds := spec.plan(params, n)

	var skelM *skeleton.ComputeMachine
	var simRes cliquesim.Result
	var explore *diamExploreMachine
	var aggH, aggDS *ncc.AggregateMachine

	return sim.Sequence(
		// Skeleton and CLIQUE simulation: members learn D~(S).
		func(env *sim.Env) sim.StepProgram {
			skelM = skeleton.NewComputeMachine(env, sp, false)
			return skelM
		},
		func(env *sim.Env) sim.StepProgram {
			return cliquesim.NewSimulateMachine(env, skelM.Res, sp.SampleProb(n),
				cliqueFactory(env, spec), params.Routing,
				func(r cliquesim.Result) { simRes = r })
		},
		// Local exploration for ηh+1 rounds: h_v wave + D~(S) flood.
		func(env *sim.Env) sim.StepProgram {
			rounds := etaRounds + 1
			var diamMsgs []interface{}
			if dS := skeletonDiameter(simRes); dS >= 0 {
				diamMsgs = append(diamMsgs, diamFlood{Value: dS, TTL: rounds})
			}
			explore = newDiamExploreMachine(env, rounds, diamMsgs)
			return explore
		},
		// ĥ and D~(S) aggregations (Lemma B.2), then Equation (3).
		func(env *sim.Env) sim.StepProgram {
			aggH = ncc.NewAggregateMachine(env, int64(explore.Hv), ncc.AggMax)
			return aggH
		},
		func(env *sim.Env) sim.StepProgram {
			aggDS = ncc.NewAggregateMachine(env, explore.MyDS, ncc.AggMax)
			return aggDS
		},
		sim.Finish(func(env *sim.Env) {
			done(estimate(aggH.Out, aggDS.Out, h, etaRounds))
		}),
	)
}

// NewWeightedApproxMachine is the step form of WeightedApprox: one SSSP
// run through the k-SSP machine, then the eccentricity-doubling
// aggregation. done receives the common estimate when the machine
// finishes.
func NewWeightedApproxMachine(env *sim.Env, spec kssp.AlgSpec, params kssp.Params, done func(int64)) sim.StepProgram {
	src := 0
	var mine int64
	var agg *ncc.AggregateMachine
	return sim.Sequence(
		func(env *sim.Env) sim.StepProgram {
			return kssp.NewComputeMachine(env, env.ID() == src, 1, spec, params,
				func(res []kssp.SourceDist) {
					for _, sd := range res {
						if sd.Source == src && sd.Dist < graph.Inf {
							mine = sd.Dist
						}
					}
				})
		},
		func(env *sim.Env) sim.StepProgram {
			agg = ncc.NewAggregateMachine(env, mine, ncc.AggMax)
			return agg
		},
		sim.Finish(func(env *sim.Env) { done(2 * agg.Out) }),
	)
}

// Pipeline returns Algorithm 9 as a sim.Pipeline; the per-node result is
// the node's diameter estimate (all nodes agree on consistent runs, which
// the facade checks).
func Pipeline(spec AlgSpec, params Params) sim.Pipeline[int64] {
	return sim.Pipeline[int64]{
		Run: func(env *sim.Env) int64 {
			return Compute(env, spec, params)
		},
		Machine: func(env *sim.Env, done func(int64)) sim.StepProgram {
			return NewComputeMachine(env, spec, params, done)
		},
	}
}

// WeightedApproxPipeline returns the factor-2 weighted diameter
// approximation as a sim.Pipeline.
func WeightedApproxPipeline(spec kssp.AlgSpec, params kssp.Params) sim.Pipeline[int64] {
	return sim.Pipeline[int64]{
		Run: func(env *sim.Env) int64 {
			return WeightedApprox(env, spec, params)
		},
		Machine: func(env *sim.Env, done func(int64)) sim.StepProgram {
			return NewWeightedApproxMachine(env, spec, params, done)
		},
	}
}
