package clique

import (
	"repro/internal/graph"
)

// BellmanFord is the simplest CLIQUE distance algorithm: for each source,
// iterate synchronous Bellman-Ford relaxations, with every node
// broadcasting its current estimate each round (one O(log n)-bit message to
// each node — the plain clique pattern, no Lenzen routing needed). Sources
// are processed round-robin, so round r relaxes source r mod k.
//
// With iters >= the hop diameter of the input graph the result is exact;
// rounds = k * iters, i.e. δ = 1 in the framework's terms when iters ~ q.
// It is the workhorse for single sources on small skeletons and the
// real-message counterpart of the declared-cost oracle.
type BellmanFord struct {
	q       int
	sources []int
	iters   int
}

// NewBellmanFord creates the algorithm. iters <= 0 selects q-1 (always
// exact).
func NewBellmanFord(q int, sources []int, iters int) *BellmanFord {
	if iters <= 0 {
		iters = q - 1
	}
	if iters < 1 {
		iters = 1
	}
	return &BellmanFord{q: q, sources: append([]int(nil), sources...), iters: iters}
}

// Q returns the node count.
func (a *BellmanFord) Q() int { return a.q }

// Rounds returns k * iters.
func (a *BellmanFord) Rounds() int { return len(a.sources) * a.iters }

// Sources returns the global source list.
func (a *BellmanFord) Sources() []int { return a.sources }

// Schedule: every node sends its estimate for the round's source to every
// other node. Tag = source index.
func (a *BellmanFord) Schedule(r, p int) []Slot {
	if len(a.sources) == 0 {
		return nil
	}
	sIdx := r % len(a.sources)
	slots := make([]Slot, 0, a.q-1)
	for d := 0; d < a.q; d++ {
		if d != p {
			slots = append(slots, Slot{Dst: d, Tag: int64(sIdx)})
		}
	}
	return slots
}

// NewNode creates node p with its incident edges.
func (a *BellmanFord) NewNode(p int, adj []graph.Neighbor) Node {
	n := &bfNode{alg: a, self: p, dist: make([]int64, len(a.sources))}
	n.weights = make(map[int]int64, len(adj))
	for _, nb := range adj {
		n.weights[nb.To] = nb.W
	}
	for i, s := range a.sources {
		if s == p {
			n.dist[i] = 0
		} else {
			n.dist[i] = graph.Inf
		}
	}
	return n
}

type bfNode struct {
	alg     *BellmanFord
	self    int
	weights map[int]int64
	dist    []int64
}

func (n *bfNode) Send(r int) []Value {
	sIdx := r % len(n.alg.sources)
	vals := make([]Value, 0, n.alg.q-1)
	for d := 0; d < n.alg.q; d++ {
		if d != n.self {
			vals = append(vals, Value{F0: n.dist[sIdx]})
		}
	}
	return vals
}

func (n *bfNode) Recv(r int, in []Incoming) {
	sIdx := r % len(n.alg.sources)
	for _, m := range in {
		w, isNeighbor := n.weights[m.Src]
		if !isNeighbor {
			continue // non-neighbors cannot relax us
		}
		if nd := satAdd(m.Val.F0, w); nd < n.dist[sIdx] {
			n.dist[sIdx] = nd
		}
	}
}

// Distances returns the estimates aligned with Sources().
func (n *bfNode) Distances() []int64 { return n.dist }

var (
	_ DistanceAlgorithm = (*BellmanFord)(nil)
	_ DistanceNode      = (*bfNode)(nil)
)
