// Package clique implements the Congested Clique (CLIQUE) model and the
// shortest-path algorithms the paper simulates on skeleton graphs (§4, §5).
//
// Model (paper §4, footnote 4 and 9): q nodes with unique IDs 0..q-1 and
// unlimited local computation exchange O(log n)-bit messages in synchronous
// rounds. Following the paper's footnote 9, we adopt the Lenzen-routing
// convention [24]: per round, every node may send up to q messages to
// arbitrary targets and receives at most q messages. This is exactly the
// accounting Corollary 4.1 uses for the HYBRID simulation (each skeleton
// node sends/receives at most |S| messages per simulated round).
//
// Oblivious schedules. Every algorithm declares its full communication
// pattern as a function of (round, node) only — independent of the input
// data. This is required by the HYBRID simulation: the token routing
// protocol of §2 assumes receivers know the labels of the tokens they must
// receive, which Corollary 4.1 obtains by making the traffic pattern public
// knowledge. All our algorithms (Bellman-Ford iterations, block matrix
// multiplication, max-broadcast) are naturally oblivious.
package clique

import (
	"fmt"

	"repro/internal/graph"
)

// Value is one message payload: two O(log n)-bit words.
type Value struct {
	F0, F1 int64
}

// Slot is one outgoing message slot in the oblivious schedule: the
// destination node and a tag distinguishing concurrent messages between the
// same pair. Tags must be unique per (src, dst, round) and stay below 2^29:
// they become token-label indices I = 2·tag+1 in the HYBRID simulation,
// which requires I < 2^30 (routing.Label.pack enforces this at runtime;
// clique_test.go's TestMMTagsFitRoutingLabels checks the MM schedules).
type Slot struct {
	Dst int
	Tag int64
}

// Incoming is a delivered message.
type Incoming struct {
	Src int
	Tag int64
	Val Value
}

// Node is the per-node state of a running CLIQUE algorithm. Send must
// return exactly one Value per slot of Algorithm.Schedule(r, self), in
// order. Recv delivers the round's messages (sorted by (Src, Tag)).
type Node interface {
	Send(r int) []Value
	Recv(r int, in []Incoming)
}

// Algorithm describes a CLIQUE algorithm: its size, its fixed round count,
// its oblivious schedule, and a node factory. adj is the node's local input
// (incident weighted edges in the graph the algorithm runs on, indexed
// 0..q-1).
type Algorithm interface {
	// Q returns the number of nodes.
	Q() int
	// Rounds returns the total number of rounds (input-independent).
	Rounds() int
	// Schedule returns the slots node p sends in round r. The total per
	// node per round must be at most q, and the induced receive load at
	// most q (the Lenzen bound); Run enforces both.
	Schedule(r, p int) []Slot
	// NewNode creates node p's state from its local input.
	NewNode(p int, adj []graph.Neighbor) Node
}

// DistanceAlgorithm is implemented by algorithms whose nodes output
// distances to a fixed global source list.
type DistanceAlgorithm interface {
	Algorithm
	// Sources returns the global source list outputs are aligned to.
	Sources() []int
}

// DistanceNode is implemented by nodes of DistanceAlgorithms.
type DistanceNode interface {
	Node
	// Distances returns this node's distance estimates, aligned with the
	// algorithm's Sources().
	Distances() []int64
}

// DiameterNode is implemented by nodes that also learn the (estimated)
// weighted diameter of the input graph.
type DiameterNode interface {
	Node
	Diameter() int64
}

// Run executes alg standalone on the given adjacency lists (inputs[p] is
// node p's incident edges) and returns the final node states. It enforces
// the model: schedule alignment, per-round send and receive loads at most
// q. Standalone execution is the unit-test harness for CLIQUE algorithms;
// the HYBRID simulation in package cliquesim re-uses the same Algorithm.
func Run(alg Algorithm, inputs [][]graph.Neighbor) ([]Node, error) {
	q := alg.Q()
	if len(inputs) != q {
		return nil, fmt.Errorf("clique: %d inputs for %d nodes", len(inputs), q)
	}
	nodes := make([]Node, q)
	for p := 0; p < q; p++ {
		nodes[p] = alg.NewNode(p, inputs[p])
	}
	rounds := alg.Rounds()
	inboxes := make([][]Incoming, q)
	for r := 0; r < rounds; r++ {
		recvCount := make([]int, q)
		for p := 0; p < q; p++ {
			slots := alg.Schedule(r, p)
			if len(slots) > q {
				return nil, fmt.Errorf("clique: node %d sends %d > q = %d messages in round %d", p, len(slots), q, r)
			}
			vals := nodes[p].Send(r)
			if len(vals) != len(slots) {
				return nil, fmt.Errorf("clique: node %d produced %d values for %d slots in round %d", p, len(vals), len(slots), r)
			}
			for i, s := range slots {
				if s.Dst < 0 || s.Dst >= q {
					return nil, fmt.Errorf("clique: node %d slot to invalid node %d", p, s.Dst)
				}
				recvCount[s.Dst]++
				inboxes[s.Dst] = append(inboxes[s.Dst], Incoming{Src: p, Tag: s.Tag, Val: vals[i]})
			}
		}
		for p := 0; p < q; p++ {
			if recvCount[p] > q {
				return nil, fmt.Errorf("clique: node %d receives %d > q = %d messages in round %d", p, recvCount[p], q, r)
			}
		}
		for p := 0; p < q; p++ {
			if len(inboxes[p]) > 0 {
				sortIncoming(inboxes[p])
				nodes[p].Recv(r, inboxes[p])
				inboxes[p] = nil
			} else {
				nodes[p].Recv(r, nil)
			}
		}
	}
	return nodes, nil
}

// sortIncoming orders messages by (Src, Tag) for determinism.
func sortIncoming(in []Incoming) {
	// Insertion sort: inboxes are built in src order already, tags nearly
	// sorted; this is O(n) in practice.
	for i := 1; i < len(in); i++ {
		for j := i; j > 0 && less(in[j], in[j-1]); j-- {
			in[j], in[j-1] = in[j-1], in[j]
		}
	}
}

func less(a, b Incoming) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Tag < b.Tag
}

// satAdd adds distances with saturation at graph.Inf.
func satAdd(a, b int64) int64 {
	if a >= graph.Inf || b >= graph.Inf {
		return graph.Inf
	}
	return a + b
}

// AdjacencyInputs builds the per-node inputs of a CLIQUE run from a graph.
func AdjacencyInputs(g *graph.Graph) [][]graph.Neighbor {
	out := make([][]graph.Neighbor, g.N())
	for p := 0; p < g.N(); p++ {
		out[p] = g.Neighbors(p)
	}
	return out
}
