package clique

import (
	"sort"

	"repro/internal/graph"
)

// MM is the semiring (min, +) matrix-multiplication APSP algorithm for the
// CLIQUE model (Censor-Hillel et al. [8], semiring variant): the distance
// matrix is squared ceil(log2(q-1)) times; each distance product is
// computed by the 3D block decomposition in O(q^(1/3)) rounds of
// Lenzen-routed traffic. This is the δ = 1/3 concrete algorithm our
// framework experiments run with real messages; the ring-based
// fast-matrix-multiplication variant (δ = ρ < 0.1572) only changes the
// exponent, which the declared-cost Oracle covers.
//
// Block decomposition: with b = ceil(q^(1/3)) and row groups of size
// g = ceil(q/b), the b^3 triples (a, β, c) are assigned round-robin to
// nodes (triple τ lives at node τ mod q, at most ceil(b³/q) ≤ 2 per node).
// Per product:
//
//	phase 1: node i ships X[i][group c] to every triple (a, β, c) with
//	         i ∈ group a, and Y[i][group β] to every triple (a, β, c)
//	         with i ∈ group c  (≈ 2q^(4/3) words in and out per node);
//	phase 2: local block products (free in the model);
//	phase 3: partials P_c[i][j] return to the row owner i, which combines
//	         by min over c.
//
// All flows are input-independent; they are packed into rounds of at most
// q sends and q receives per node by a deterministic greedy first-fit
// (two-coloring argument: first-fit needs at most twice the optimal number
// of rounds, preserving the O(q^(1/3)) bound).
type MM struct {
	q, b, g      int
	products     int
	withDiameter bool

	p1Rounds int
	p3Rounds int
	// pre-computed slot lists: phase -> node -> localRound -> slots
	p1Slots [][][]Slot
	p3Slots [][][]Slot
	// triples owned per node
	triples [][]triple
}

type triple struct{ a, beta, c int }

// flow is one scheduled message of a product phase.
type flow struct {
	src, dst int
	tag      int64
}

// Tag kinds: X entry, Y entry, partial (with c block).
func (a *MM) tagX(i, j int) int64    { return int64(0*a.q*a.q + i*a.q + j) }
func (a *MM) tagY(i, j int) int64    { return int64(1)*int64(a.q)*int64(a.q) + int64(i*a.q+j) }
func (a *MM) tagP(c, i, j int) int64 { return int64(2+c)*int64(a.q)*int64(a.q) + int64(i*a.q+j) }
func (a *MM) splitTag(t int64) (kind int, i, j int) {
	qq := int64(a.q) * int64(a.q)
	kind = int(t / qq)
	rest := int(t % qq)
	return kind, rest / a.q, rest % a.q
}

// NewMM constructs the algorithm for q nodes. withDiameter appends one
// max-broadcast round after the last product so every node also learns the
// exact weighted diameter (used by the Theorem 5.1 experiments).
func NewMM(q int, withDiameter bool) *MM {
	b := 1
	for b*b*b < q {
		b++
	}
	g := (q + b - 1) / b
	products := 1
	for (1 << products) < q-1 {
		products++
	}
	if q <= 2 {
		products = 1
	}
	a := &MM{q: q, b: b, g: g, products: products, withDiameter: withDiameter}
	a.triples = make([][]triple, q)
	for t := 0; t < b*b*b; t++ {
		p := t % q
		a.triples[p] = append(a.triples[p], triple{a: t / (b * b), beta: (t / b) % b, c: t % b})
	}
	a.buildSchedules()
	return a
}

// group returns the members of row group gi, respecting the truncation at q.
func (a *MM) group(gi int) (lo, hi int) {
	lo = gi * a.g
	hi = lo + a.g
	if hi > a.q {
		hi = a.q
	}
	if lo > a.q {
		lo = a.q
	}
	return lo, hi
}

// buildSchedules enumerates the oblivious flows of one product and packs
// them into rounds.
func (a *MM) buildSchedules() {
	var p1, p3 []flow
	seen := map[flow]bool{}
	for p := 0; p < a.q; p++ {
		for _, tr := range a.triples[p] {
			alo, ahi := a.group(tr.a)
			blo, bhi := a.group(tr.beta)
			clo, chi := a.group(tr.c)
			// X block: rows group a, cols group c, owned row-wise.
			for i := alo; i < ahi; i++ {
				if i == p {
					continue // own row read locally
				}
				for j := clo; j < chi; j++ {
					f := flow{src: i, dst: p, tag: a.tagX(i, j)}
					if !seen[f] {
						seen[f] = true
						p1 = append(p1, f)
					}
				}
			}
			// Y block: rows group c, cols group beta.
			for k := clo; k < chi; k++ {
				if k == p {
					continue
				}
				for j := blo; j < bhi; j++ {
					f := flow{src: k, dst: p, tag: a.tagY(k, j)}
					if !seen[f] {
						seen[f] = true
						p1 = append(p1, f)
					}
				}
			}
			// Partials: back to the row owners.
			for i := alo; i < ahi; i++ {
				if i == p {
					continue // combined locally
				}
				for j := blo; j < bhi; j++ {
					p3 = append(p3, flow{src: p, dst: i, tag: a.tagP(tr.c, i, j)})
				}
			}
		}
	}
	a.p1Rounds, a.p1Slots = a.pack(p1)
	a.p3Rounds, a.p3Slots = a.pack(p3)
}

// pack assigns flows to rounds with at most q sends and q receives per node
// per round (greedy first-fit over canonically sorted flows). It returns
// the round count (at least 1, so every product has a compute trigger) and
// slots[node][round].
func (a *MM) pack(flows []flow) (int, [][][]Slot) {
	sort.Slice(flows, func(x, y int) bool {
		if flows[x].src != flows[y].src {
			return flows[x].src < flows[y].src
		}
		if flows[x].dst != flows[y].dst {
			return flows[x].dst < flows[y].dst
		}
		return flows[x].tag < flows[y].tag
	})
	var sendLoad, recvLoad [][]int // [round][node]
	rounds := 0
	grow := func() {
		sendLoad = append(sendLoad, make([]int, a.q))
		recvLoad = append(recvLoad, make([]int, a.q))
		rounds++
	}
	grow()
	assign := make([]int, len(flows))
	for fi, f := range flows {
		placed := false
		for r := 0; r < rounds; r++ {
			if sendLoad[r][f.src] < a.q && recvLoad[r][f.dst] < a.q {
				sendLoad[r][f.src]++
				recvLoad[r][f.dst]++
				assign[fi] = r
				placed = true
				break
			}
		}
		if !placed {
			grow()
			r := rounds - 1
			sendLoad[r][f.src]++
			recvLoad[r][f.dst]++
			assign[fi] = r
		}
	}
	slots := make([][][]Slot, a.q)
	for p := range slots {
		slots[p] = make([][]Slot, rounds)
	}
	for fi, f := range flows {
		r := assign[fi]
		slots[f.src][r] = append(slots[f.src][r], Slot{Dst: f.dst, Tag: f.tag})
	}
	return rounds, slots
}

// Q returns the node count.
func (a *MM) Q() int { return a.q }

// Rounds returns products*(p1+p3) plus the optional diameter round.
func (a *MM) Rounds() int {
	r := a.products * (a.p1Rounds + a.p3Rounds)
	if a.withDiameter {
		r++
	}
	return r
}

// Sources returns 0..q-1: MM solves full APSP.
func (a *MM) Sources() []int {
	s := make([]int, a.q)
	for i := range s {
		s[i] = i
	}
	return s
}

// phaseOf decomposes a global round index.
func (a *MM) phaseOf(r int) (product int, phase int, local int) {
	per := a.p1Rounds + a.p3Rounds
	if r >= a.products*per {
		return -1, 2, 0 // diameter round
	}
	product = r / per
	rr := r % per
	if rr < a.p1Rounds {
		return product, 0, rr
	}
	return product, 1, rr - a.p1Rounds
}

// Schedule returns node p's slots for round r.
func (a *MM) Schedule(r, p int) []Slot {
	_, phase, local := a.phaseOf(r)
	switch phase {
	case 0:
		return a.p1Slots[p][local]
	case 1:
		return a.p3Slots[p][local]
	default: // diameter max-broadcast
		slots := make([]Slot, 0, a.q-1)
		for d := 0; d < a.q; d++ {
			if d != p {
				slots = append(slots, Slot{Dst: d, Tag: 0})
			}
		}
		return slots
	}
}

// NewNode creates node p's state.
func (a *MM) NewNode(p int, adj []graph.Neighbor) Node {
	n := &mmNode{alg: a, self: p, row: make([]int64, a.q)}
	for j := range n.row {
		n.row[j] = graph.Inf
	}
	n.row[p] = 0
	for _, nb := range adj {
		if nb.W < n.row[nb.To] {
			n.row[nb.To] = nb.W
		}
	}
	n.reset()
	return n
}

type mmNode struct {
	alg  *MM
	self int
	row  []int64

	xEnt map[int]int64 // key i*q+j
	yEnt map[int]int64
	next []int64
	diam int64
}

func (n *mmNode) reset() {
	n.xEnt = map[int]int64{}
	n.yEnt = map[int]int64{}
	n.next = make([]int64, n.alg.q)
	for j := range n.next {
		n.next[j] = graph.Inf
	}
}

// getEntry reads a matrix entry received in phase 1, falling back to the
// own row (rows owned locally are never shipped to self).
func (n *mmNode) getEntry(m map[int]int64, i, j int) int64 {
	if i == n.self {
		return n.row[j]
	}
	if v, ok := m[i*n.alg.q+j]; ok {
		return v
	}
	return graph.Inf
}

func (n *mmNode) Send(r int) []Value {
	_, phase, local := n.alg.phaseOf(r)
	switch phase {
	case 0:
		slots := n.alg.p1Slots[n.self][local]
		vals := make([]Value, len(slots))
		for si, s := range slots {
			_, _, j := n.alg.splitTag(s.Tag)
			vals[si] = Value{F0: n.row[j]}
		}
		return vals
	case 1:
		slots := n.alg.p3Slots[n.self][local]
		vals := make([]Value, len(slots))
		for si, s := range slots {
			kind, i, j := n.alg.splitTag(s.Tag)
			c := kind - 2
			vals[si] = Value{F0: n.partial(c, i, j)}
		}
		return vals
	default:
		ecc := int64(0)
		for _, d := range n.row {
			if d < graph.Inf && d > ecc {
				ecc = d
			}
		}
		vals := make([]Value, n.alg.q-1)
		for i := range vals {
			vals[i] = Value{F0: ecc}
		}
		if ecc > n.diam {
			n.diam = ecc
		}
		return vals
	}
}

// partial computes P_c[i][j] = min_{k in group c} X[i][k] + Y[k][j].
func (n *mmNode) partial(c, i, j int) int64 {
	lo, hi := n.alg.group(c)
	best := graph.Inf
	for k := lo; k < hi; k++ {
		if v := satAdd(n.getEntry(n.xEnt, i, k), n.getEntry(n.yEnt, k, j)); v < best {
			best = v
		}
	}
	return best
}

func (n *mmNode) Recv(r int, in []Incoming) {
	_, phase, local := n.alg.phaseOf(r)
	switch phase {
	case 0:
		for _, m := range in {
			kind, i, j := n.alg.splitTag(m.Tag)
			if kind == 0 {
				n.xEnt[i*n.alg.q+j] = m.Val.F0
			} else {
				n.yEnt[i*n.alg.q+j] = m.Val.F0
			}
		}
	case 1:
		for _, m := range in {
			kind, i, j := n.alg.splitTag(m.Tag)
			if kind >= 2 && i == n.self {
				if m.Val.F0 < n.next[j] {
					n.next[j] = m.Val.F0
				}
			}
		}
		if local == n.alg.p3Rounds-1 {
			// Product complete: fold in the locally-owned triples' partials
			// for my own row, then install.
			for _, tr := range n.alg.triples[n.self] {
				alo, ahi := n.alg.group(tr.a)
				if n.self < alo || n.self >= ahi {
					continue
				}
				blo, bhi := n.alg.group(tr.beta)
				for j := blo; j < bhi; j++ {
					if v := n.partial(tr.c, n.self, j); v < n.next[j] {
						n.next[j] = v
					}
				}
			}
			n.row = n.next
			n.reset()
		}
	default:
		for _, m := range in {
			if m.Val.F0 > n.diam {
				n.diam = m.Val.F0
			}
		}
	}
}

// Distances returns the node's full distance row (sources = all nodes).
func (n *mmNode) Distances() []int64 { return n.row }

// Diameter returns the weighted diameter learned in the final broadcast
// round (only meaningful when the algorithm was built withDiameter).
func (n *mmNode) Diameter() int64 { return n.diam }

var (
	_ DistanceAlgorithm = (*MM)(nil)
	_ DistanceNode      = (*mmNode)(nil)
	_ DiameterNode      = (*mmNode)(nil)
)
