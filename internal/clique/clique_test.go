package clique

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// distancesOf extracts per-node distance vectors from finished nodes.
func distancesOf(t *testing.T, nodes []Node) [][]int64 {
	t.Helper()
	out := make([][]int64, len(nodes))
	for p, n := range nodes {
		dn, ok := n.(DistanceNode)
		if !ok {
			t.Fatalf("node %d does not expose distances", p)
		}
		out[p] = dn.Distances()
	}
	return out
}

func checkKSSP(t *testing.T, g *graph.Graph, sources []int, got [][]int64) {
	t.Helper()
	want := graph.KDistances(g, sources)
	for p := 0; p < g.N(); p++ {
		for si := range sources {
			if got[p][si] != want[p][si] {
				t.Fatalf("node %d dist to source %d = %d, want %d", p, sources[si], got[p][si], want[p][si])
			}
		}
	}
}

func TestBellmanFordSSSP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(12)},
		{"cycle", graph.Cycle(9)},
		{"weighted sparse", graph.WithRandomWeights(graph.SparseConnected(20, 1, rng), 9, rng)},
		{"complete", graph.Complete(8)},
		{"two nodes", graph.Path(2)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			alg := NewBellmanFord(tt.g.N(), []int{0}, 0)
			nodes, err := Run(alg, AdjacencyInputs(tt.g))
			if err != nil {
				t.Fatal(err)
			}
			checkKSSP(t, tt.g, []int{0}, distancesOf(t, nodes))
		})
	}
}

func TestBellmanFordMultiSource(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.WithRandomWeights(graph.SparseConnected(16, 1.5, rng), 7, rng)
	sources := []int{0, 5, 11}
	alg := NewBellmanFord(g.N(), sources, 0)
	if alg.Rounds() != 3*(g.N()-1) {
		t.Fatalf("Rounds = %d, want %d", alg.Rounds(), 3*(g.N()-1))
	}
	nodes, err := Run(alg, AdjacencyInputs(g))
	if err != nil {
		t.Fatal(err)
	}
	checkKSSP(t, g, sources, distancesOf(t, nodes))
}

func TestBellmanFordLimitedIters(t *testing.T) {
	// With iters < hop diameter the result upper-bounds the h-limited
	// distance; with iters >= diameter it is exact.
	g := graph.Path(10)
	alg := NewBellmanFord(g.N(), []int{0}, 3)
	nodes, err := Run(alg, AdjacencyInputs(g))
	if err != nil {
		t.Fatal(err)
	}
	d := distancesOf(t, nodes)
	for v := 0; v <= 3; v++ {
		if d[v][0] != int64(v) {
			t.Fatalf("node %d = %d, want %d", v, d[v][0], v)
		}
	}
	for v := 4; v < 10; v++ {
		if d[v][0] != graph.Inf {
			t.Fatalf("node %d = %d, want Inf after 3 iters", v, d[v][0])
		}
	}
}

func TestMMAPSPExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"single", graph.New(1)},
		{"pair", graph.Path(2)},
		{"triangle heavy edge", func() *graph.Graph {
			g := graph.New(3)
			g.MustAddEdge(0, 1, 10)
			g.MustAddEdge(0, 2, 1)
			g.MustAddEdge(2, 1, 2)
			return g
		}()},
		{"path 9", graph.Path(9)},
		{"cycle 11", graph.Cycle(11)},
		{"grid 4x4", graph.Grid(4, 4)},
		{"weighted sparse 17", graph.WithRandomWeights(graph.SparseConnected(17, 1.5, rng), 12, rng)},
		{"weighted sparse 40", graph.WithRandomWeights(graph.SparseConnected(40, 2, rng), 25, rng)},
		{"star 13", graph.Star(13)},
		{"disconnected", func() *graph.Graph {
			g := graph.New(6)
			g.MustAddEdge(0, 1, 2)
			g.MustAddEdge(2, 3, 4)
			g.MustAddEdge(4, 5, 1)
			return g
		}()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			alg := NewMM(tt.g.N(), false)
			nodes, err := Run(alg, AdjacencyInputs(tt.g))
			if err != nil {
				t.Fatal(err)
			}
			got := distancesOf(t, nodes)
			want := graph.APSP(tt.g)
			for u := 0; u < tt.g.N(); u++ {
				for v := 0; v < tt.g.N(); v++ {
					if got[u][v] != want[u][v] {
						t.Fatalf("d(%d,%d) = %d, want %d", u, v, got[u][v], want[u][v])
					}
				}
			}
		})
	}
}

func TestMMDiameter(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.WithRandomWeights(graph.SparseConnected(22, 1.2, rng), 9, rng)
	alg := NewMM(g.N(), true)
	nodes, err := Run(alg, AdjacencyInputs(g))
	if err != nil {
		t.Fatal(err)
	}
	want := graph.WeightedDiameter(g)
	for p, n := range nodes {
		dn, ok := n.(DiameterNode)
		if !ok {
			t.Fatalf("node %d does not expose diameter", p)
		}
		if dn.Diameter() != want {
			t.Fatalf("node %d diameter = %d, want %d", p, dn.Diameter(), want)
		}
	}
}

func TestMMRoundsScaling(t *testing.T) {
	// Rounds should scale clearly sublinearly in q: O(q^(1/3) log q).
	r16 := NewMM(16, false).Rounds()
	r128 := NewMM(128, false).Rounds()
	if r128 > 8*r16 {
		t.Fatalf("MM rounds grew from %d (q=16) to %d (q=128); super-cubic-root growth", r16, r128)
	}
}

func TestMMScheduleRespectsCaps(t *testing.T) {
	// The runner enforces caps; this test exercises a mid-size instance to
	// make sure packing stays legal.
	rng := rand.New(rand.NewSource(5))
	g := graph.WithRandomWeights(graph.SparseConnected(50, 2, rng), 5, rng)
	alg := NewMM(g.N(), false)
	if _, err := Run(alg, AdjacencyInputs(g)); err != nil {
		t.Fatal(err)
	}
}

func TestOracleExact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.WithRandomWeights(graph.SparseConnected(25, 1.5, rng), 8, rng)
	sources := []int{1, 7, 13}
	alg := NewOracle(g.N(), sources, CostModel{Delta: 0, Eta: 4}, Quality{Alpha: 1}, false)
	if alg.Rounds() != 4 {
		t.Fatalf("Rounds = %d, want 4", alg.Rounds())
	}
	nodes, err := Run(alg, AdjacencyInputs(g))
	if err != nil {
		t.Fatal(err)
	}
	checkKSSP(t, g, sources, distancesOf(t, nodes))
}

func TestOracleCostModel(t *testing.T) {
	tests := []struct {
		cost CostModel
		q    int
		want int
	}{
		{CostModel{Delta: 0, Eta: 1}, 100, 1},
		{CostModel{Delta: 0.5, Eta: 1}, 100, 10},
		{CostModel{Delta: 1.0 / 6.0, Eta: 1}, 64, 2},
		{CostModel{Delta: 0.15715, Eta: 1}, 1000, 3},
		{CostModel{Delta: 0, Eta: 0}, 5, 1}, // eta clamped
	}
	for _, tt := range tests {
		if got := tt.cost.Rounds(tt.q); got != tt.want {
			t.Fatalf("CostModel%+v.Rounds(%d) = %d, want %d", tt.cost, tt.q, got, tt.want)
		}
	}
}

func TestOraclePerturbedWithinEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.WithRandomWeights(graph.SparseConnected(30, 1.5, rng), 10, rng)
	alpha, beta := 2.0, int64(3)
	alg := NewOracle(g.N(), nil, CostModel{Eta: 1}, Quality{Alpha: alpha, Beta: beta, PerturbSeed: 99}, false)
	nodes, err := Run(alg, AdjacencyInputs(g))
	if err != nil {
		t.Fatal(err)
	}
	got := distancesOf(t, nodes)
	want := graph.APSP(g)
	perturbed := false
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			d, dt := want[u][v], got[u][v]
			if dt < d || float64(dt) > alpha*float64(d)+float64(beta) {
				t.Fatalf("d~(%d,%d) = %d outside [%d, %.0f]", u, v, dt, d, alpha*float64(d)+float64(beta))
			}
			if dt != d {
				perturbed = true
			}
		}
	}
	if !perturbed {
		t.Fatal("perturbation seed produced exact outputs everywhere")
	}
}

func TestOracleDiameter(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.WithRandomWeights(graph.SparseConnected(20, 1.5, rng), 6, rng)
	alg := NewOracle(g.N(), nil, CostModel{Eta: 2}, Quality{Alpha: 1}, true)
	nodes, err := Run(alg, AdjacencyInputs(g))
	if err != nil {
		t.Fatal(err)
	}
	want := graph.WeightedDiameter(g)
	for p, n := range nodes {
		if d := n.(DiameterNode).Diameter(); d != want {
			t.Fatalf("node %d oracle diameter = %d, want %d", p, d, want)
		}
	}
}

func TestRunRejectsBadAlgorithms(t *testing.T) {
	g := graph.Path(4)
	t.Run("wrong input count", func(t *testing.T) {
		alg := NewBellmanFord(5, []int{0}, 1)
		if _, err := Run(alg, AdjacencyInputs(g)); err == nil {
			t.Fatal("Run accepted mismatched input count")
		}
	})
	t.Run("slot value mismatch", func(t *testing.T) {
		if _, err := Run(badAlg{q: 4}, AdjacencyInputs(g)); err == nil {
			t.Fatal("Run accepted slot/value mismatch")
		}
	})
	t.Run("send cap", func(t *testing.T) {
		if _, err := Run(floodAlg{q: 4}, AdjacencyInputs(g)); err == nil {
			t.Fatal("Run accepted over-cap sends")
		}
	})
}

type badAlg struct{ q int }

func (a badAlg) Q() int                                   { return a.q }
func (a badAlg) Rounds() int                              { return 1 }
func (a badAlg) Schedule(r, p int) []Slot                 { return []Slot{{Dst: (p + 1) % a.q}} }
func (a badAlg) NewNode(p int, adj []graph.Neighbor) Node { return badNode{} }

type badNode struct{}

func (badNode) Send(r int) []Value        { return nil } // mismatch: 0 values for 1 slot
func (badNode) Recv(r int, in []Incoming) {}

type floodAlg struct{ q int }

func (a floodAlg) Q() int      { return a.q }
func (a floodAlg) Rounds() int { return 1 }
func (a floodAlg) Schedule(r, p int) []Slot {
	slots := make([]Slot, a.q+1) // one over cap
	for i := range slots {
		slots[i] = Slot{Dst: 0, Tag: int64(i)}
	}
	return slots
}
func (a floodAlg) NewNode(p int, adj []graph.Neighbor) Node { return floodNode{q: a.q} }

type floodNode struct{ q int }

func (n floodNode) Send(r int) []Value        { return make([]Value, n.q+1) }
func (n floodNode) Recv(r int, in []Incoming) {}

// Property: MM matches Dijkstra on random weighted graphs.
func TestQuickMMMatchesDijkstra(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%24)
		rng := rand.New(rand.NewSource(seed))
		g := graph.WithRandomWeights(graph.SparseConnected(n, 1.0, rng), 9, rng)
		alg := NewMM(n, false)
		nodes, err := Run(alg, AdjacencyInputs(g))
		if err != nil {
			return false
		}
		want := graph.APSP(g)
		for p := 0; p < n; p++ {
			got := nodes[p].(DistanceNode).Distances()
			for v := 0; v < n; v++ {
				if got[v] != want[p][v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMM64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.WithRandomWeights(graph.SparseConnected(64, 2, rng), 9, rng)
	inputs := AdjacencyInputs(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(NewMM(64, false), inputs); err != nil {
			b.Fatal(err)
		}
	}
}

// TestScheduleObliviousness: the communication schedule must not depend on
// the input data — the property the HYBRID simulation relies on so that
// receivers can predict their token labels (Corollary 4.1).
func TestScheduleObliviousness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	gA := graph.WithRandomWeights(graph.SparseConnected(20, 1.0, rng), 9, rng)
	gB := graph.WithRandomWeights(graph.Cycle(20), 30, rng)
	algs := []struct {
		name string
		mk   func() Algorithm
	}{
		{"mm", func() Algorithm { return NewMM(20, true) }},
		{"bf", func() Algorithm { return NewBellmanFord(20, []int{3, 7}, 5) }},
		{"oracle", func() Algorithm {
			return NewOracle(20, nil, CostModel{Eta: 3}, Quality{Alpha: 1}, false)
		}},
	}
	for _, ta := range algs {
		t.Run(ta.name, func(t *testing.T) {
			a1, a2 := ta.mk(), ta.mk()
			if a1.Rounds() != a2.Rounds() {
				t.Fatal("round counts differ between instances")
			}
			// Run both on different inputs; schedules must be identical.
			if _, err := Run(a1, AdjacencyInputs(gA)); err != nil {
				t.Fatal(err)
			}
			if _, err := Run(a2, AdjacencyInputs(gB)); err != nil {
				t.Fatal(err)
			}
			for r := 0; r < a1.Rounds(); r++ {
				for p := 0; p < 20; p++ {
					s1, s2 := a1.Schedule(r, p), a2.Schedule(r, p)
					if len(s1) != len(s2) {
						t.Fatalf("round %d node %d: schedule lengths differ", r, p)
					}
					for i := range s1 {
						if s1[i] != s2[i] {
							t.Fatalf("round %d node %d slot %d differs", r, p, i)
						}
					}
				}
			}
		})
	}
}

// TestMMTagsFitRoutingLabels: tags must stay below 2^29 so the HYBRID
// simulation can double them into token-label indices (< 2^30).
func TestMMTagsFitRoutingLabels(t *testing.T) {
	alg := NewMM(100, true)
	for r := 0; r < alg.Rounds(); r++ {
		for p := 0; p < 100; p++ {
			for _, s := range alg.Schedule(r, p) {
				if s.Tag < 0 || s.Tag >= 1<<29 {
					t.Fatalf("tag %d out of range at round %d node %d", s.Tag, r, p)
				}
			}
		}
	}
}
