package clique

import (
	"math"
	"math/rand"
	"sync"

	"repro/internal/graph"
)

// Oracle is the declared-cost adapter: it stands in for a published CLIQUE
// algorithm A with runtime T_A = ceil(Eta * q^Delta) and approximation
// quality (Alpha, Beta) — e.g. the (1+ε) k-SSP of Censor-Hillel et al. [7]
// (Delta = 0, Eta = 1/ε) or the ρ-exponent APSP of [8] (Delta = 0.15715).
//
// The paper's Theorems 4.1 and 5.1 consume A as a black box parameterized
// by (α, β, δ, η); the oracle lets the HYBRID-side framework be exercised
// and measured with exactly the published exponents without reimplementing
// fast distributed matrix multiplication. It charges the declared number of
// rounds while exchanging no messages, and produces outputs that satisfy
// the declared (α, β) guarantee — either exact distances or deterministic
// pseudo-random perturbations within the allowed envelope (PerturbSeed != 0)
// to stress the framework's error compounding end to end.
//
// This is the one deliberately non-distributed component of the repository
// (inputs are pooled across the oracle's nodes); DESIGN.md documents the
// substitution.
type Oracle struct {
	q       int
	rounds  int
	sources []int

	alpha       float64
	beta        int64
	perturbSeed int64
	diameter    bool

	mu     sync.Mutex
	adj    [][]graph.Neighbor
	once   sync.Once
	solved [][]int64
	diam   int64
}

// CostModel declares the published runtime T_A = ceil(Eta * q^Delta),
// at least 1.
type CostModel struct {
	Delta float64
	Eta   float64
}

// Rounds evaluates the model for q nodes.
func (c CostModel) Rounds(q int) int {
	eta := c.Eta
	if eta <= 0 {
		eta = 1
	}
	r := int(math.Ceil(eta * math.Pow(float64(q), c.Delta)))
	if r < 1 {
		r = 1
	}
	return r
}

// Quality declares the published approximation guarantee: outputs d~ with
// d <= d~ <= Alpha*d + Beta.
type Quality struct {
	Alpha float64
	Beta  int64
	// PerturbSeed != 0 makes the oracle emit pseudo-random values inside
	// the (Alpha, Beta) envelope instead of exact distances.
	PerturbSeed int64
}

// NewOracle creates the adapter. sources selects the k-SSP source list
// (nil = all nodes, i.e. APSP). withDiameter additionally publishes a
// diameter estimate under the same quality envelope.
func NewOracle(q int, sources []int, cost CostModel, quality Quality, withDiameter bool) *Oracle {
	if sources == nil {
		sources = make([]int, q)
		for i := range sources {
			sources[i] = i
		}
	}
	if quality.Alpha < 1 {
		quality.Alpha = 1
	}
	return &Oracle{
		q:           q,
		rounds:      cost.Rounds(q),
		sources:     append([]int(nil), sources...),
		alpha:       quality.Alpha,
		beta:        quality.Beta,
		perturbSeed: quality.PerturbSeed,
		diameter:    withDiameter,
		adj:         make([][]graph.Neighbor, q),
	}
}

// Q returns the node count.
func (a *Oracle) Q() int { return a.q }

// Rounds returns the declared runtime.
func (a *Oracle) Rounds() int { return a.rounds }

// Sources returns the source list.
func (a *Oracle) Sources() []int { return a.sources }

// Schedule is empty: the oracle only charges rounds.
func (a *Oracle) Schedule(r, p int) []Slot { return nil }

// NewNode registers node p's input and returns its handle.
func (a *Oracle) NewNode(p int, adj []graph.Neighbor) Node {
	a.mu.Lock()
	a.adj[p] = adj
	a.mu.Unlock()
	return &oracleNode{alg: a, self: p}
}

// solve pools the registered inputs and computes the published outputs.
func (a *Oracle) solve() {
	a.once.Do(func() {
		g := graph.New(a.q)
		for p, adj := range a.adj {
			for _, nb := range adj {
				if p < nb.To {
					// Ignore duplicates defensively; inputs are symmetric.
					if !g.HasEdge(p, nb.To) {
						g.MustAddEdge(p, nb.To, nb.W)
					}
				}
			}
		}
		a.solved = make([][]int64, a.q)
		exact := make([][]int64, len(a.sources))
		for si, s := range a.sources {
			exact[si] = graph.Dijkstra(g, s)
		}
		var rng *rand.Rand
		if a.perturbSeed != 0 {
			rng = rand.New(rand.NewSource(a.perturbSeed))
		}
		// Per-source perturbation factors keep d <= d~ <= alpha*d + beta and
		// are consistent across all reading nodes.
		factors := make([]float64, len(a.sources))
		addends := make([]int64, len(a.sources))
		for si := range a.sources {
			factors[si] = 1
			if rng != nil {
				factors[si] = 1 + rng.Float64()*(a.alpha-1)
				if a.beta > 0 {
					addends[si] = rng.Int63n(a.beta + 1)
				}
			}
		}
		for p := 0; p < a.q; p++ {
			row := make([]int64, len(a.sources))
			for si := range a.sources {
				d := exact[si][p]
				if d >= graph.Inf {
					row[si] = graph.Inf
				} else {
					row[si] = int64(math.Floor(float64(d)*factors[si])) + addends[si]
				}
			}
			a.solved[p] = row
		}
		trueDiam := int64(0)
		for si := range a.sources {
			for p := 0; p < a.q; p++ {
				if d := exact[si][p]; d < graph.Inf && d > trueDiam {
					trueDiam = d
				}
			}
		}
		// Without all sources the max over rows underestimates the diameter;
		// the diameter oracle is only meaningful for APSP-source lists.
		a.diam = trueDiam
		if rng != nil {
			a.diam = int64(math.Floor(float64(trueDiam)*(1+rng.Float64()*(a.alpha-1)))) + addends[0]
		}
	})
}

type oracleNode struct {
	alg  *Oracle
	self int
	out  []int64
	diam int64
}

func (n *oracleNode) Send(r int) []Value { return nil }

func (n *oracleNode) Recv(r int, in []Incoming) {
	if r == n.alg.rounds-1 {
		n.alg.solve()
		n.out = n.alg.solved[n.self]
		n.diam = n.alg.diam
	}
}

// Distances returns the (α, β)-quality outputs aligned with Sources().
func (n *oracleNode) Distances() []int64 { return n.out }

// Diameter returns the published diameter estimate.
func (n *oracleNode) Diameter() int64 { return n.diam }

var (
	_ DistanceAlgorithm = (*Oracle)(nil)
	_ DistanceNode      = (*oracleNode)(nil)
	_ DiameterNode      = (*oracleNode)(nil)
)
