package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Compact integer-vector codecs for the v2 cache payload. The snapshots'
// bulk is sorted ID lists (cluster members, helper sets, skeleton
// neighborhoods) and small non-negative values (distances, hop counts);
// delta-coding the sorted lists and varint-coding everything makes gob
// store one tight []byte per vector instead of a reflected []int, and
// gives the flate layer highly repetitive input. Decoders validate
// exhaustively — any length mismatch, overflow, or ordering violation is
// an error, never a silent partial decode — because these bytes arrive
// from disk and feed the warm-start caches.

// errPack marks a malformed packed integer vector.
var errPack = errors.New("persist: malformed packed int vector")

// PackSorted encodes a strictly increasing slice of non-negative ints as a
// count followed by varint deltas (the first delta is from -1, so 0 is
// representable). PackSorted panics on unsorted or negative input: the
// callers encode slices they constructed sorted, so a violation is a
// programming error, not a data error.
func PackSorted(ids []int) []byte {
	buf := make([]byte, 0, 1+len(ids))
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	prev := -1
	for _, id := range ids {
		if id <= prev {
			panic(fmt.Errorf("persist: PackSorted input not strictly increasing at %d (prev %d)", id, prev))
		}
		buf = binary.AppendUvarint(buf, uint64(id-prev))
		prev = id
	}
	return buf
}

// UnpackSorted decodes a PackSorted vector, validating that the buffer is
// consumed exactly and that every value fits an int.
func UnpackSorted(data []byte) ([]int, error) {
	count, pos, err := unpackCount(data)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, count)
	prev := -1
	for i := 0; i < count; i++ {
		d, n := binary.Uvarint(data[pos:])
		if n <= 0 || d == 0 {
			return nil, fmt.Errorf("%w: bad delta at entry %d", errPack, i)
		}
		// prev+d must fit an int. prev+1 is in [0, maxInt] whenever
		// prev < maxInt, so the headroom maxInt-prev is computable in
		// uint64 without the wrap a naive uint64(prev) conversion has at
		// prev = -1.
		if prev == maxInt || d > uint64(maxInt)-uint64(prev+1)+1 {
			return nil, fmt.Errorf("%w: delta overflow at entry %d", errPack, i)
		}
		pos += n
		prev += int(d)
		out = append(out, prev)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", errPack, len(data)-pos)
	}
	return out, nil
}

// PackInt64s encodes an arbitrary int64 slice as a count followed by
// zigzag varints.
func PackInt64s(vals []int64) []byte {
	buf := make([]byte, 0, 1+len(vals))
	buf = binary.AppendUvarint(buf, uint64(len(vals)))
	for _, v := range vals {
		buf = binary.AppendVarint(buf, v)
	}
	return buf
}

// UnpackInt64s decodes a PackInt64s vector, validating exact consumption.
func UnpackInt64s(data []byte) ([]int64, error) {
	count, pos, err := unpackCount(data)
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0, count)
	for i := 0; i < count; i++ {
		v, n := binary.Varint(data[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: bad value at entry %d", errPack, i)
		}
		pos += n
		out = append(out, v)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", errPack, len(data)-pos)
	}
	return out, nil
}

const maxInt = int(^uint(0) >> 1)

// unpackCount reads the leading element count and bounds it by the buffer
// size (every element takes at least one byte), so a corrupt count can
// never drive a giant allocation.
func unpackCount(data []byte) (count, pos int, err error) {
	c, n := binary.Uvarint(data)
	if n <= 0 || c > uint64(len(data)) {
		return 0, 0, fmt.Errorf("%w: bad count", errPack)
	}
	return int(c), n, nil
}
