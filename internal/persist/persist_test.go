package persist

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

type payload struct {
	Name  string
	Vals  []int64
	Table map[int][]int
}

func samplePayload() payload {
	return payload{
		Name:  "skeleton",
		Vals:  []int64{1, 2, 3, 1 << 60},
		Table: map[int][]int{0: {1, 2}, 7: {9}},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "cache.hybc")
	want := samplePayload()
	if err := Save(path, 3, want); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := Load(path, 3, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip: got %+v, want %+v", got, want)
	}
	// No temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file survived the rename: %v", err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	var got payload
	err := Load(filepath.Join(t.TempDir(), "absent.hybc"), 1, &got)
	if !os.IsNotExist(err) {
		t.Errorf("missing file: got %v, want IsNotExist", err)
	}
}

func TestLoadVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.hybc")
	if err := Save(path, 1, samplePayload()); err != nil {
		t.Fatal(err)
	}
	var got payload
	err := Load(path, 2, &got)
	if !errors.Is(err, ErrVersion) {
		t.Errorf("version mismatch: got %v, want ErrVersion", err)
	}
}

// TestLoadCorruptions flips, truncates, and extends a valid file and
// requires every mutation to be rejected with ErrCorrupt.
func TestLoadCorruptions(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.hybc")
	if err := Save(path, 1, samplePayload()); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]func([]byte) []byte{
		"empty":           func(b []byte) []byte { return nil },
		"short header":    func(b []byte) []byte { return b[:headerLen-1] },
		"bad magic":       func(b []byte) []byte { b[0] ^= 0xff; return b },
		"flipped payload": func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
		"truncated":       func(b []byte) []byte { return b[:len(b)-5] },
		"trailing bytes":  func(b []byte) []byte { return append(b, 0xaa) },
		"flipped length":  func(b []byte) []byte { b[8] ^= 0x01; return b },
		"flipped sum":     func(b []byte) []byte { b[16] ^= 0x01; return b },
	}
	for name, mutate := range cases {
		mutated := mutate(append([]byte(nil), valid...))
		p := filepath.Join(dir, "mut.hybc")
		if err := os.WriteFile(p, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		var got payload
		if err := Load(p, 1, &got); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

// TestSaveOverwritesAtomically pins the overwrite path: saving over an
// existing file replaces it and the new contents load cleanly.
func TestSaveOverwritesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.hybc")
	if err := Save(path, 1, payload{Name: "old"}); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, 1, payload{Name: "new"}); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := Load(path, 1, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "new" {
		t.Errorf("got %q, want the overwritten payload", got.Name)
	}
}
