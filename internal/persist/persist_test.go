package persist

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

type payload struct {
	Name  string
	Vals  []int64
	Table map[int][]int
}

func samplePayload() payload {
	return payload{
		Name:  "skeleton",
		Vals:  []int64{1, 2, 3, 1 << 60},
		Table: map[int][]int{0: {1, 2}, 7: {9}},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "cache.hybc")
	want := samplePayload()
	if err := Save(path, 3, want); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := Load(path, 3, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip: got %+v, want %+v", got, want)
	}
	// No temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file survived the rename: %v", err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	var got payload
	err := Load(filepath.Join(t.TempDir(), "absent.hybc"), 1, &got)
	if !os.IsNotExist(err) {
		t.Errorf("missing file: got %v, want IsNotExist", err)
	}
}

func TestLoadVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.hybc")
	if err := Save(path, 1, samplePayload()); err != nil {
		t.Fatal(err)
	}
	var got payload
	err := Load(path, 2, &got)
	if !errors.Is(err, ErrVersion) {
		t.Errorf("version mismatch: got %v, want ErrVersion", err)
	}
}

// TestLoadCorruptions flips, truncates, and extends a valid file and
// requires every mutation to be rejected with ErrCorrupt.
func TestLoadCorruptions(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.hybc")
	if err := Save(path, 1, samplePayload()); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]func([]byte) []byte{
		"empty":           func(b []byte) []byte { return nil },
		"short header":    func(b []byte) []byte { return b[:headerLen-1] },
		"bad magic":       func(b []byte) []byte { b[0] ^= 0xff; return b },
		"flipped payload": func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
		"truncated":       func(b []byte) []byte { return b[:len(b)-5] },
		"trailing bytes":  func(b []byte) []byte { return append(b, 0xaa) },
		"flipped length":  func(b []byte) []byte { b[8] ^= 0x01; return b },
		"flipped sum":     func(b []byte) []byte { b[16] ^= 0x01; return b },
	}
	for name, mutate := range cases {
		mutated := mutate(append([]byte(nil), valid...))
		p := filepath.Join(dir, "mut.hybc")
		if err := os.WriteFile(p, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		var got payload
		if err := Load(p, 1, &got); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

// TestSaveOverwritesAtomically pins the overwrite path: saving over an
// existing file replaces it and the new contents load cleanly.
func TestSaveOverwritesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.hybc")
	if err := Save(path, 1, payload{Name: "old"}); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, 1, payload{Name: "new"}); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := Load(path, 1, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "new" {
		t.Errorf("got %q, want the overwritten payload", got.Name)
	}
}

// TestCompressedRoundTrip pins the v2 codec: a compressed save loads back
// identically, is actually smaller than the raw save for repetitive
// payloads, and Probe reports its header without decoding.
func TestCompressedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	big := payload{Name: "big", Table: map[int][]int{}}
	for i := 0; i < 2000; i++ {
		big.Vals = append(big.Vals, int64(i%7))
		big.Table[i] = []int{1, 2, 3, 4, 5}
	}
	raw := filepath.Join(dir, "raw.hybc")
	packed := filepath.Join(dir, "packed.hybc")
	if err := Save(raw, 2, big); err != nil {
		t.Fatal(err)
	}
	if err := SaveCompressed(packed, 2, big); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := LoadCompressed(packed, 2, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, big) {
		t.Error("compressed round trip diverged")
	}
	rawInfo, err := Probe(raw)
	if err != nil {
		t.Fatal(err)
	}
	packedInfo, err := Probe(packed)
	if err != nil {
		t.Fatal(err)
	}
	if packedInfo.FileBytes >= rawInfo.FileBytes {
		t.Errorf("compression grew the file: %d vs raw %d", packedInfo.FileBytes, rawInfo.FileBytes)
	}
	if packedInfo.Version != 2 || packedInfo.PayloadBytes != packedInfo.FileBytes-int64(headerLen) {
		t.Errorf("probe reported %+v", packedInfo)
	}
}

// TestLoadCompressedTruncatedStream pins the failure mode the outer
// checksum cannot catch: a file whose header and checksum are valid but
// whose flate stream was truncated before framing. It must be ErrCorrupt.
func TestLoadCompressedTruncatedStream(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.hybc")
	big := samplePayload()
	for i := 0; i < 500; i++ {
		big.Vals = append(big.Vals, int64(i))
	}
	if err := SaveCompressed(path, 2, big); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the compressed body, then re-frame it with a fresh, valid
	// header so only the flate layer can notice.
	body := data[headerLen : len(data)-20]
	if err := writeFile(path, 2, body); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := LoadCompressed(path, 2, &got); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated compressed payload: got %v, want ErrCorrupt", err)
	}
}

// TestProbeErrors pins Probe's rejection of non-cache files.
func TestProbeErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Probe(filepath.Join(dir, "absent.hybc")); !os.IsNotExist(err) {
		t.Errorf("missing file: got %v, want IsNotExist", err)
	}
	junk := filepath.Join(dir, "junk.hybc")
	if err := os.WriteFile(junk, []byte("not a cache file at all......."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Probe(junk); !errors.Is(err, ErrCorrupt) {
		t.Errorf("junk file: got %v, want ErrCorrupt", err)
	}

	// A header claiming an absurd payload length must be rejected from the
	// 24-byte header alone — checked against the stat size, never used to
	// size a read or allocation.
	huge := filepath.Join(dir, "huge.hybc")
	header := make([]byte, 24)
	copy(header, "HYWC")
	binary.LittleEndian.PutUint32(header[4:8], 2)
	binary.LittleEndian.PutUint64(header[8:16], 1<<60) // claimed payload: 1 EiB
	if err := os.WriteFile(huge, header, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Probe(huge); !errors.Is(err, ErrCorrupt) {
		t.Errorf("huge claimed payload: got %v, want ErrCorrupt", err)
	}

	// Truncated header: shorter than the fixed 24-byte prefix.
	short := filepath.Join(dir, "short.hybc")
	if err := os.WriteFile(short, []byte("HYWC"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Probe(short); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated header: got %v, want ErrCorrupt", err)
	}

	// Wrong magic with an otherwise plausible header.
	wrong := filepath.Join(dir, "wrong.hybc")
	bad := make([]byte, 24)
	copy(bad, "NOPE")
	if err := os.WriteFile(wrong, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Probe(wrong); !errors.Is(err, ErrCorrupt) {
		t.Errorf("wrong magic: got %v, want ErrCorrupt", err)
	}
}

// TestPackUnpackVectors pins the varint codecs: round trips, strictness of
// the sorted decoder, and rejection of malformed buffers.
func TestPackUnpackVectors(t *testing.T) {
	for _, ids := range [][]int{nil, {0}, {0, 1, 2}, {5, 100, 101, 1 << 30}} {
		got, err := UnpackSorted(PackSorted(ids))
		if err != nil {
			t.Fatalf("%v: %v", ids, err)
		}
		if len(got) != len(ids) || (len(ids) > 0 && !reflect.DeepEqual(got, ids)) {
			t.Errorf("sorted round trip %v -> %v", ids, got)
		}
	}
	for _, vals := range [][]int64{nil, {0}, {-5, 7, 1 << 62, -(1 << 62)}} {
		got, err := UnpackInt64s(PackInt64s(vals))
		if err != nil {
			t.Fatalf("%v: %v", vals, err)
		}
		if len(got) != len(vals) || (len(vals) > 0 && !reflect.DeepEqual(got, vals)) {
			t.Errorf("int64 round trip %v -> %v", vals, got)
		}
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("PackSorted accepted unsorted input")
			}
		}()
		PackSorted([]int{3, 2})
	}()

	bad := map[string][]byte{
		"empty":          {},
		"huge count":     {0xff, 0xff, 0xff, 0xff, 0x01},
		"missing deltas": PackSorted([]int{1, 2, 3})[:2],
		"trailing":       append(PackSorted([]int{1, 2}), 0x05),
		"zero delta":     {2, 1, 0}, // count 2, delta 1, delta 0 (not increasing)
	}
	for name, buf := range bad {
		if _, err := UnpackSorted(buf); err == nil {
			t.Errorf("UnpackSorted accepted %s", name)
		}
	}
	if _, err := UnpackInt64s(append(PackInt64s([]int64{1}), 0x09)); err == nil {
		t.Error("UnpackInt64s accepted trailing bytes")
	}
}

// TestUnpackSortedOverflow pins the int-overflow guard of the delta
// decoder: a first delta of exactly maxInt+1 (from the implicit -1) is
// the largest representable element and must decode; anything past it —
// a bigger first delta, or any further delta once prev sits at maxInt —
// must be rejected, never silently wrapped.
func TestUnpackSortedOverflow(t *testing.T) {
	maxInt := int(^uint(0) >> 1)

	exact := binary.AppendUvarint([]byte{1}, uint64(maxInt)+1)
	got, err := UnpackSorted(exact)
	if err != nil || len(got) != 1 || got[0] != maxInt {
		t.Errorf("delta to maxInt: got %v, %v", got, err)
	}

	over := binary.AppendUvarint([]byte{1}, uint64(maxInt)+2)
	if _, err := UnpackSorted(over); err == nil {
		t.Error("delta past maxInt accepted")
	}

	past := binary.AppendUvarint([]byte{2}, uint64(maxInt)+1)
	past = binary.AppendUvarint(past, 1)
	if _, err := UnpackSorted(past); err == nil {
		t.Error("delta beyond a maxInt element accepted")
	}
}

// recordFS wraps OS and records the seam calls writeFile makes, optionally
// failing a chosen call.
type recordFS struct {
	inner OS
	calls *[]string
	fail  string // name of the call to fail, "" for none
}

func (r recordFS) note(call string) error {
	*r.calls = append(*r.calls, call)
	if r.fail == call {
		return errors.New("injected " + call + " failure")
	}
	return nil
}

func (r recordFS) MkdirAll(path string, perm os.FileMode) error {
	if err := r.note("mkdir:" + filepath.Base(path)); err != nil {
		return err
	}
	return r.inner.MkdirAll(path, perm)
}

func (r recordFS) WriteFileSync(path string, data []byte, perm os.FileMode) error {
	if err := r.note("write:" + filepath.Base(path)); err != nil {
		return err
	}
	return r.inner.WriteFileSync(path, data, perm)
}

func (r recordFS) Rename(oldpath, newpath string) error {
	if err := r.note("rename:" + filepath.Base(oldpath) + "->" + filepath.Base(newpath)); err != nil {
		return err
	}
	return r.inner.Rename(oldpath, newpath)
}

func (r recordFS) SyncDir(path string) error {
	if err := r.note("syncdir:" + filepath.Base(path)); err != nil {
		return err
	}
	return r.inner.SyncDir(path)
}

func (r recordFS) Remove(path string) error {
	*r.calls = append(*r.calls, "remove:"+filepath.Base(path))
	return r.inner.Remove(path)
}

// TestWriteFileDurabilityOrder pins the crash-safe write sequence: the temp
// file is written-and-synced before the rename, and the parent directory is
// synced after it, so a machine crash at any point leaves either the old
// file or the complete new one.
func TestWriteFileDurabilityOrder(t *testing.T) {
	var calls []string
	restore := SetFS(recordFS{calls: &calls})
	defer restore()

	path := filepath.Join(t.TempDir(), "sub", "cache.hybc")
	if err := Save(path, 1, samplePayload()); err != nil {
		t.Fatal(err)
	}
	want := []string{"mkdir:sub", "write:cache.hybc.tmp", "rename:cache.hybc.tmp->cache.hybc", "syncdir:sub"}
	if !reflect.DeepEqual(calls, want) {
		t.Errorf("write sequence:\n got %v\nwant %v", calls, want)
	}
	var got payload
	if err := Load(path, 1, &got); err != nil {
		t.Fatal(err)
	}
}

// TestWriteFileFaultCleanup pins the failure paths: a failed write or
// rename removes the temp file and surfaces the injected error; a failed
// directory sync surfaces too (the data may not survive a crash).
func TestWriteFileFaultCleanup(t *testing.T) {
	for _, fail := range []string{
		"write:cache.hybc.tmp",
		"rename:cache.hybc.tmp->cache.hybc",
		"syncdir:sub",
	} {
		var calls []string
		restore := SetFS(recordFS{calls: &calls, fail: fail})
		path := filepath.Join(t.TempDir(), "sub", "cache.hybc")
		err := Save(path, 1, samplePayload())
		restore()
		if err == nil {
			t.Errorf("fail %s: Save succeeded", fail)
			continue
		}
		if _, serr := os.Stat(path + ".tmp"); !os.IsNotExist(serr) {
			t.Errorf("fail %s: temp file left behind", fail)
		}
	}
}

// TestSetFSRestore pins the seam contract: the restore closure reinstates
// the previous FS, and SetFS(nil) means the real filesystem.
func TestSetFSRestore(t *testing.T) {
	var calls []string
	restore := SetFS(recordFS{calls: &calls})
	restore2 := SetFS(nil)
	path := filepath.Join(t.TempDir(), "cache.hybc")
	if err := Save(path, 1, samplePayload()); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 0 {
		t.Errorf("SetFS(nil) still routed through the recording FS: %v", calls)
	}
	restore2()
	if err := Save(path, 1, samplePayload()); err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 {
		t.Error("restore did not reinstate the recording FS")
	}
	restore()
}
