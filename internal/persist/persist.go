// Package persist implements the on-disk codec of the warm-start cache: a
// gob payload behind a fixed binary integrity header. The header carries a
// magic tag, a format version, and the payload's length and FNV-64a
// checksum, so a reader can reject foreign files, files written by an
// incompatible release, and bit-rotted or truncated files *before* feeding
// bytes to gob. Writes go through a temp file and an atomic rename, so a
// crashed writer never leaves a half-written cache behind — at worst the
// old file survives.
//
// The package is deliberately schema-agnostic: callers own the payload
// types and the version constant. Bumping the version is the only
// invalidation signal — a version-mismatched file is rejected with
// ErrVersion (never migrated), which the callers treat as a cold start.
package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
)

// magic tags every cache file written by this package.
var magic = [4]byte{'H', 'Y', 'W', 'C'} // HYbrid Warm Cache

// headerLen is the fixed prefix: magic, version, payload length, checksum.
const headerLen = 4 + 4 + 8 + 8

// ErrCorrupt marks a file that is not a well-formed cache file: wrong
// magic, truncated, trailing garbage, checksum mismatch, or an undecodable
// payload.
var ErrCorrupt = errors.New("persist: corrupt cache file")

// ErrVersion marks a structurally valid cache file written under a
// different format version.
var ErrVersion = errors.New("persist: cache format version mismatch")

// Save gob-encodes payload and writes it to path behind the integrity
// header, atomically (temp file + rename). Parent directories are created
// as needed.
func Save(path string, version uint32, payload interface{}) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		return fmt.Errorf("persist: encoding cache payload: %w", err)
	}
	body := buf.Bytes()
	h := fnv.New64a()
	h.Write(body)

	out := make([]byte, headerLen, headerLen+len(body))
	copy(out[0:4], magic[:])
	binary.LittleEndian.PutUint32(out[4:8], version)
	binary.LittleEndian.PutUint64(out[8:16], uint64(len(body)))
	binary.LittleEndian.PutUint64(out[16:24], h.Sum64())
	out = append(out, body...)

	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("persist: creating cache directory: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return fmt.Errorf("persist: writing cache file: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: installing cache file: %w", err)
	}
	return nil
}

// Load reads path, validates the integrity header against version, and
// gob-decodes the payload into out. A missing file returns the underlying
// fs error (test with os.IsNotExist / errors.Is(err, fs.ErrNotExist));
// every malformed-content condition returns an error wrapping ErrCorrupt
// or ErrVersion. On error out may be partially written (gob decodes in
// place), so callers must decode into a scratch value and only adopt it on
// success.
func Load(path string, version uint32, out interface{}) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) < headerLen || !bytes.Equal(data[0:4], magic[:]) {
		return fmt.Errorf("%w: %s: bad header", ErrCorrupt, path)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != version {
		return fmt.Errorf("%w: %s: file has format v%d, this build reads v%d", ErrVersion, path, v, version)
	}
	body := data[headerLen:]
	if wantLen := binary.LittleEndian.Uint64(data[8:16]); wantLen != uint64(len(body)) {
		return fmt.Errorf("%w: %s: payload is %d bytes, header says %d", ErrCorrupt, path, len(body), wantLen)
	}
	h := fnv.New64a()
	h.Write(body)
	if wantSum := binary.LittleEndian.Uint64(data[16:24]); wantSum != h.Sum64() {
		return fmt.Errorf("%w: %s: checksum mismatch", ErrCorrupt, path)
	}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(out); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	return nil
}
