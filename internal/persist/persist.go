// Package persist implements the on-disk codec of the warm-start cache: a
// gob payload behind a fixed binary integrity header. The header carries a
// magic tag, a format version, and the payload's length and FNV-64a
// checksum, so a reader can reject foreign files, files written by an
// incompatible release, and bit-rotted or truncated files *before* feeding
// bytes to gob. Writes go through a temp file, an fsync of that file, an
// atomic rename, and an fsync of the parent directory, so a crashed
// writer never leaves a half-written cache behind and a crashed *machine*
// cannot rename a file whose bytes never reached the disk — at worst the
// old file survives.
//
// All filesystem access goes through the FS seam (SetFS), so the chaos
// test layer can inject torn writes, failed renames, and failed fsyncs;
// the integrity header is what turns any of those into a detected
// ErrCorrupt and a clean cold start instead of silent corruption.
//
// The package is deliberately schema-agnostic: callers own the payload
// types and the version constant. Bumping the version is the only
// invalidation signal — a version-mismatched file is rejected with
// ErrVersion (never migrated), which the callers treat as a cold start.
package persist

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
)

// FS is the filesystem seam the write path runs through. The default (OS)
// talks to the real filesystem with full durability (fsync before and
// after the rename); tests swap in a fault-injecting implementation via
// SetFS to simulate torn writes, failed renames, and failed syncs.
type FS interface {
	// MkdirAll creates the cache directory chain.
	MkdirAll(path string, perm os.FileMode) error
	// WriteFileSync writes data to path and syncs it to stable storage
	// before returning: a success means the bytes are on disk, not just in
	// the page cache.
	WriteFileSync(path string, data []byte, perm os.FileMode) error
	// Rename atomically installs the synced temp file.
	Rename(oldpath, newpath string) error
	// SyncDir syncs the directory containing a just-renamed file, making
	// the rename itself durable.
	SyncDir(path string) error
	// Remove cleans up a temp file after a failed install.
	Remove(path string) error
}

// OS is the default FS: the real filesystem, with the temp file fsynced
// before the rename and the parent directory fsynced after it.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// WriteFileSync implements FS: write, fsync, close.
func (OS) WriteFileSync(path string, data []byte, perm os.FileMode) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// SyncDir implements FS: fsync the directory so the rename is durable.
func (OS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Remove implements FS.
func (OS) Remove(path string) error { return os.Remove(path) }

// fsSeam holds the active FS boxed in a struct (atomic.Value demands one
// consistent concrete type); nil means OS{}. Atomic so a concurrent
// reader (a reload saving the cache) never observes a torn swap.
var fsSeam atomic.Value // of fsBox

type fsBox struct{ fs FS }

// activeFS returns the FS the write path should use.
func activeFS() FS {
	if v := fsSeam.Load(); v != nil {
		return v.(fsBox).fs
	}
	return OS{}
}

// SetFS swaps the filesystem seam (nil restores the default) and returns
// a function restoring the previous one — tests defer it.
func SetFS(f FS) (restore func()) {
	prev := activeFS()
	if f == nil {
		f = OS{}
	}
	fsSeam.Store(fsBox{f})
	return func() { fsSeam.Store(fsBox{prev}) }
}

// magic tags every cache file written by this package.
var magic = [4]byte{'H', 'Y', 'W', 'C'} // HYbrid Warm Cache

// headerLen is the fixed prefix: magic, version, payload length, checksum.
const headerLen = 4 + 4 + 8 + 8

// ErrCorrupt marks a file that is not a well-formed cache file: wrong
// magic, truncated, trailing garbage, checksum mismatch, or an undecodable
// payload.
var ErrCorrupt = errors.New("persist: corrupt cache file")

// ErrVersion marks a structurally valid cache file written under a
// different format version.
var ErrVersion = errors.New("persist: cache format version mismatch")

// Save gob-encodes payload and writes it to path behind the integrity
// header, atomically (temp file + rename). Parent directories are created
// as needed.
func Save(path string, version uint32, payload interface{}) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		return fmt.Errorf("persist: encoding cache payload: %w", err)
	}
	return writeFile(path, version, buf.Bytes())
}

// SaveCompressed is Save with a flate-compressed body: the gob stream is
// deflated before the header is computed, so the length and checksum cover
// the bytes actually on disk. Readers must use LoadCompressed; the caller's
// version constant is what tells the two body encodings apart (the v2 cache
// format is compressed, v1 was not).
func SaveCompressed(path string, version uint32, payload interface{}) error {
	var buf bytes.Buffer
	zw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return fmt.Errorf("persist: creating compressor: %w", err)
	}
	if err := gob.NewEncoder(zw).Encode(payload); err != nil {
		return fmt.Errorf("persist: encoding cache payload: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("persist: compressing cache payload: %w", err)
	}
	return writeFile(path, version, buf.Bytes())
}

// writeFile frames body with the integrity header and installs it at path
// atomically and durably: synced temp file, rename, synced parent
// directory. Parent directories are created as needed.
func writeFile(path string, version uint32, body []byte) error {
	h := fnv.New64a()
	h.Write(body)

	out := make([]byte, headerLen, headerLen+len(body))
	copy(out[0:4], magic[:])
	binary.LittleEndian.PutUint32(out[4:8], version)
	binary.LittleEndian.PutUint64(out[8:16], uint64(len(body)))
	binary.LittleEndian.PutUint64(out[16:24], h.Sum64())
	out = append(out, body...)

	fs := activeFS()
	dir := filepath.Dir(path)
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("persist: creating cache directory: %w", err)
	}
	tmp := path + ".tmp"
	if err := fs.WriteFileSync(tmp, out, 0o644); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("persist: writing cache file: %w", err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("persist: installing cache file: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("persist: syncing cache directory: %w", err)
	}
	return nil
}

// Load reads path, validates the integrity header against version, and
// gob-decodes the payload into out. A missing file returns the underlying
// fs error (test with os.IsNotExist / errors.Is(err, fs.ErrNotExist));
// every malformed-content condition returns an error wrapping ErrCorrupt
// or ErrVersion. On error out may be partially written (gob decodes in
// place), so callers must decode into a scratch value and only adopt it on
// success.
func Load(path string, version uint32, out interface{}) error {
	body, err := readBody(path, version)
	if err != nil {
		return err
	}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(out); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	return nil
}

// LoadCompressed is Load for files written by SaveCompressed: the verified
// body is inflated before gob decoding. A flate stream that fails to
// decompress — e.g. a payload truncated before compression, which the
// checksum cannot catch — is reported as ErrCorrupt like any other
// malformed content.
func LoadCompressed(path string, version uint32, out interface{}) error {
	body, err := readBody(path, version)
	if err != nil {
		return err
	}
	zr := flate.NewReader(bytes.NewReader(body))
	defer zr.Close()
	if err := gob.NewDecoder(zr).Decode(out); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	// Trailing garbage after the gob value must still be a well-formed end
	// of stream, or the file was stitched together from two payloads.
	if _, err := io.Copy(io.Discard, zr); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	return nil
}

// readBody reads path and validates the integrity header against version,
// returning the raw (possibly compressed) body bytes.
func readBody(path string, version uint32) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < headerLen || !bytes.Equal(data[0:4], magic[:]) {
		return nil, fmt.Errorf("%w: %s: bad header", ErrCorrupt, path)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != version {
		return nil, fmt.Errorf("%w: %s: file has format v%d, this build reads v%d", ErrVersion, path, v, version)
	}
	body := data[headerLen:]
	if wantLen := binary.LittleEndian.Uint64(data[8:16]); wantLen != uint64(len(body)) {
		return nil, fmt.Errorf("%w: %s: payload is %d bytes, header says %d", ErrCorrupt, path, len(body), wantLen)
	}
	h := fnv.New64a()
	h.Write(body)
	if wantSum := binary.LittleEndian.Uint64(data[16:24]); wantSum != h.Sum64() {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", ErrCorrupt, path)
	}
	return body, nil
}

// Info describes a cache file's header, read without decoding the payload
// (Probe). Version is whatever the file claims — callers compare it against
// their own constant to report v1-vs-v2 in diagnostics.
type Info struct {
	// Version is the format version recorded in the header.
	Version uint32
	// PayloadBytes is the body length recorded in the header (compressed
	// size for compressed formats).
	PayloadBytes int64
	// FileBytes is the total on-disk size including the header.
	FileBytes int64
}

// Probe reads only a file's integrity header and reports its format
// version and sizes. It validates the magic and the recorded length, but
// not the checksum (the point is cheap diagnostics, not admission); a
// missing file returns the fs error, a non-cache file ErrCorrupt.
//
// Only the 24-byte header is ever read: the payload length claimed by the
// header is checked against the file's stat size, never used to size a
// read, so a malformed file claiming a multi-exabyte payload costs 24
// bytes of I/O and no allocation.
func Probe(path string) (Info, error) {
	f, err := os.Open(path)
	if err != nil {
		return Info{}, err
	}
	defer f.Close()
	var header [headerLen]byte
	if _, err := io.ReadFull(f, header[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return Info{}, fmt.Errorf("%w: %s: bad header", ErrCorrupt, path)
		}
		return Info{}, err
	}
	if !bytes.Equal(header[0:4], magic[:]) {
		return Info{}, fmt.Errorf("%w: %s: bad header", ErrCorrupt, path)
	}
	st, err := f.Stat()
	if err != nil {
		return Info{}, err
	}
	info := Info{
		Version:      binary.LittleEndian.Uint32(header[4:8]),
		PayloadBytes: int64(binary.LittleEndian.Uint64(header[8:16])),
		FileBytes:    st.Size(),
	}
	if info.PayloadBytes != info.FileBytes-headerLen {
		return Info{}, fmt.Errorf("%w: %s: payload is %d bytes, header says %d",
			ErrCorrupt, path, info.FileBytes-headerLen, info.PayloadBytes)
	}
	return info, nil
}
