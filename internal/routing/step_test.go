package routing

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

var stepEngines = []sim.Engine{sim.EngineLegacy, sim.EngineSharded, sim.EngineStep}

// buildStepInstance constructs a small everyone-sends routing instance.
func buildStepInstance(n int) []Spec {
	specs := make([]Spec, n)
	rng := rand.New(rand.NewSource(31))
	for v := 0; v < n; v++ {
		r := rng.Intn(n)
		tok := Token{Label: Label{S: v, R: r, I: 0}, Value: int64(v * 7)}
		specs[v].Send = []Token{tok}
		specs[v].InS = true
		specs[r].InR = true
		specs[r].Expect = append(specs[r].Expect, tok.Label)
	}
	kR := 1
	for v := range specs {
		if len(specs[v].Expect) > kR {
			kR = len(specs[v].Expect)
		}
	}
	for v := range specs {
		specs[v].KS = 1
		specs[v].KR = kR
		specs[v].PS = 1
		specs[v].PR = 1
	}
	return specs
}

// TestRouteProgramMatchesRoute proves the step form of the full routing
// protocol byte-identical to Route on every engine.
func TestRouteProgramMatchesRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.SparseConnected(40, 1.3, rng)
	specs := buildStepInstance(g.N())
	if err := Validate(specs); err != nil {
		t.Fatal(err)
	}

	want := make([][]Token, g.N())
	wantM, err := sim.Run(g, sim.Config{Seed: 12, Engine: sim.EngineLegacy}, func(env *sim.Env) {
		want[env.ID()] = Route(env, specs[env.ID()], Params{})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range stepEngines {
		got := make([][]Token, g.N())
		gotM, err := sim.RunStep(g, sim.Config{Seed: 12, Engine: eng}, func(env *sim.Env) sim.StepProgram {
			id := env.ID()
			return NewRouteProgram(env, specs[id], Params{}, func(toks []Token) { got[id] = toks })
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("engine=%s: routed tokens differ", eng)
		}
		if wantM != gotM {
			t.Errorf("engine=%s: metrics differ: %+v vs %+v", eng, wantM, gotM)
		}
	}
}
