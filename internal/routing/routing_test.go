package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/sim"
)

// buildInstance creates a consistent random token-routing instance:
// S and R sampled with pS/pR, each sender sends tokensPerSender tokens to
// uniformly random receivers.
func buildInstance(n int, pS, pR float64, tokensPerSender int, seed int64) []Spec {
	rng := rand.New(rand.NewSource(seed))
	var senders, receivers []int
	inS := make([]bool, n)
	inR := make([]bool, n)
	for v := 0; v < n; v++ {
		if rng.Float64() < pS {
			inS[v] = true
			senders = append(senders, v)
		}
		if rng.Float64() < pR {
			inR[v] = true
			receivers = append(receivers, v)
		}
	}
	// Guarantee non-empty sets.
	if len(senders) == 0 {
		inS[0] = true
		senders = append(senders, 0)
	}
	if len(receivers) == 0 {
		inR[n-1] = true
		receivers = append(receivers, n-1)
	}
	specs := make([]Spec, n)
	idx := map[[2]int]int64{}
	for _, s := range senders {
		for t := 0; t < tokensPerSender; t++ {
			r := receivers[rng.Intn(len(receivers))]
			key := [2]int{s, r}
			i := idx[key]
			idx[key]++
			tok := Token{Label: Label{S: s, R: r, I: i}, Value: int64(s*1000003 + r*101 + int(i))}
			specs[s].Send = append(specs[s].Send, tok)
			specs[r].Expect = append(specs[r].Expect, tok.Label)
		}
	}
	kR := 0
	for _, sp := range specs {
		if len(sp.Expect) > kR {
			kR = len(sp.Expect)
		}
	}
	for v := range specs {
		specs[v].InS = inS[v]
		specs[v].InR = inR[v]
		specs[v].KS = tokensPerSender
		specs[v].KR = kR
		specs[v].PS = pS
		specs[v].PR = pR
	}
	return specs
}

// runRouting executes Route on g for the given instance and verifies full
// delivery.
func runRouting(t *testing.T, g *graph.Graph, specs []Spec, seed int64) sim.Metrics {
	t.Helper()
	if err := Validate(specs); err != nil {
		t.Fatalf("bad instance: %v", err)
	}
	n := g.N()
	got := make([][]Token, n)
	m, err := sim.Run(g, sim.Config{Seed: seed}, func(env *sim.Env) {
		got[env.ID()] = Route(env, specs[env.ID()], Params{})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every receiver must hold exactly its expected tokens with the values
	// the senders stored.
	want := map[Label]int64{}
	for _, sp := range specs {
		for _, tok := range sp.Send {
			want[tok.Label] = tok.Value
		}
	}
	for v := 0; v < n; v++ {
		expect := specs[v].Expect
		if len(got[v]) != len(expect) {
			t.Fatalf("node %d received %d tokens, want %d", v, len(got[v]), len(expect))
		}
		received := map[Label]int64{}
		for _, tok := range got[v] {
			received[tok.Label] = tok.Value
		}
		for _, l := range expect {
			val, ok := received[l]
			if !ok {
				t.Fatalf("node %d missing token %+v", v, l)
			}
			if val != want[l] {
				t.Fatalf("node %d token %+v has value %d, want %d", v, l, val, want[l])
			}
		}
	}
	return m
}

func TestRouteSmallGrid(t *testing.T) {
	g := graph.Grid(8, 8)
	specs := buildInstance(g.N(), 0.2, 0.2, 3, 1)
	runRouting(t, g, specs, 2)
}

func TestRouteSparseGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.SparseConnected(100, 1.2, rng)
	specs := buildInstance(g.N(), 0.15, 0.1, 4, 4)
	runRouting(t, g, specs, 5)
}

func TestRoutePathGraph(t *testing.T) {
	// High-diameter topology: clusters are long path segments.
	g := graph.Path(64)
	specs := buildInstance(g.N(), 0.2, 0.2, 2, 6)
	runRouting(t, g, specs, 7)
}

func TestRouteBarbell(t *testing.T) {
	g := graph.Barbell(20, 10)
	specs := buildInstance(g.N(), 0.25, 0.25, 3, 8)
	runRouting(t, g, specs, 9)
}

func TestRouteAPSPShape(t *testing.T) {
	// The Theorem 1.1 workload shape: every node is a sender with one token
	// per receiver; receivers are a small sampled set.
	g := graph.Grid(7, 7)
	n := g.N()
	rng := rand.New(rand.NewSource(10))
	var receivers []int
	inR := make([]bool, n)
	for v := 0; v < n; v++ {
		if rng.Float64() < 0.15 {
			inR[v] = true
			receivers = append(receivers, v)
		}
	}
	if len(receivers) == 0 {
		inR[0] = true
		receivers = append(receivers, 0)
	}
	specs := make([]Spec, n)
	for v := 0; v < n; v++ {
		for _, r := range receivers {
			tok := Token{Label: Label{S: v, R: r, I: 0}, Value: int64(v*7919 + r)}
			specs[v].Send = append(specs[v].Send, tok)
			specs[r].Expect = append(specs[r].Expect, tok.Label)
		}
	}
	for v := range specs {
		specs[v].InS = true
		specs[v].InR = inR[v]
		specs[v].KS = len(receivers)
		specs[v].KR = n
		specs[v].PS = 1.0
		specs[v].PR = 0.15
	}
	runRouting(t, g, specs, 11)
}

func TestRouteSingleToken(t *testing.T) {
	g := graph.Grid(5, 5)
	n := g.N()
	specs := make([]Spec, n)
	tok := Token{Label: Label{S: 3, R: 21, I: 0}, Value: 424242}
	specs[3].Send = []Token{tok}
	specs[21].Expect = []Label{tok.Label}
	specs[3].InS = true
	specs[21].InR = true
	for v := range specs {
		specs[v].KS = 1
		specs[v].KR = 1
		specs[v].PS = 0.05
		specs[v].PR = 0.05
	}
	runRouting(t, g, specs, 12)
}

func TestRouteEmptyInstance(t *testing.T) {
	g := graph.Path(12)
	specs := make([]Spec, 12)
	for v := range specs {
		specs[v].KS = 1
		specs[v].KR = 1
		specs[v].PS = 0.5
		specs[v].PR = 0.5
	}
	runRouting(t, g, specs, 13)
}

func TestRouteMultipleTokensSamePair(t *testing.T) {
	// Several tokens between the same (s, r), distinguished by index i.
	g := graph.Grid(5, 5)
	n := g.N()
	specs := make([]Spec, n)
	for i := int64(0); i < 5; i++ {
		tok := Token{Label: Label{S: 0, R: 24, I: i}, Value: 100 + i}
		specs[0].Send = append(specs[0].Send, tok)
		specs[24].Expect = append(specs[24].Expect, tok.Label)
	}
	specs[0].InS = true
	specs[24].InR = true
	for v := range specs {
		specs[v].KS = 5
		specs[v].KR = 5
		specs[v].PS = 0.05
		specs[v].PR = 0.05
	}
	runRouting(t, g, specs, 14)
}

func TestRouteRecvLoadStaysLogarithmic(t *testing.T) {
	// Lemma D.2: hash-routed traffic keeps per-round receive load O(log n).
	g := graph.Grid(9, 9)
	specs := buildInstance(g.N(), 0.2, 0.2, 4, 15)
	m := runRouting(t, g, specs, 16)
	logN := sim.Log2Ceil(g.N())
	if m.MaxGlobalRecv > 8*logN {
		t.Fatalf("max receive load %d exceeds 8 log n = %d (Lemma D.2)", m.MaxGlobalRecv, 8*logN)
	}
}

func TestValidateRejects(t *testing.T) {
	mk := func() []Spec {
		specs := make([]Spec, 4)
		tok := Token{Label: Label{S: 0, R: 3, I: 0}, Value: 5}
		specs[0] = Spec{Send: []Token{tok}, InS: true, KS: 1, KR: 1}
		specs[3] = Spec{Expect: []Label{tok.Label}, InR: true, KS: 1, KR: 1}
		specs[1].KS, specs[1].KR = 1, 1
		specs[2].KS, specs[2].KR = 1, 1
		return specs
	}
	tests := []struct {
		name   string
		break_ func([]Spec)
	}{
		{"sender not in S", func(s []Spec) { s[0].InS = false }},
		{"receiver not in R", func(s []Spec) { s[3].InR = false }},
		{"KS exceeded", func(s []Spec) { s[0].KS = 0 }},
		{"wrong sender label", func(s []Spec) { s[0].Send[0].S = 2 }},
		{"expect without send", func(s []Spec) { s[3].Expect = append(s[3].Expect, Label{S: 1, R: 3, I: 9}); s[3].KR = 2 }},
		{"expect wrong address", func(s []Spec) { s[3].Expect[0].R = 2 }},
		{"duplicate label", func(s []Spec) {
			s[0].Send = append(s[0].Send, s[0].Send[0])
			s[0].KS = 2
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			specs := mk()
			tt.break_(specs)
			if err := Validate(specs); err == nil {
				t.Fatal("Validate accepted a broken instance")
			}
		})
	}
	if err := Validate(mk()); err != nil {
		t.Fatalf("Validate rejected a good instance: %v", err)
	}
}

func TestLabelPackDistinct(t *testing.T) {
	seen := map[uint64]Label{}
	for s := 0; s < 40; s++ {
		for r := 0; r < 40; r++ {
			for i := int64(0); i < 3; i++ {
				l := Label{S: s, R: r, I: i}
				k := l.pack()
				if prev, dup := seen[k]; dup {
					t.Fatalf("labels %+v and %+v pack identically", prev, l)
				}
				seen[k] = l
			}
		}
	}
}

func TestMuFormula(t *testing.T) {
	tests := []struct {
		k    int
		p    float64
		want int
	}{
		{100, 0.5, 2},   // min(10, 2)
		{100, 0.01, 10}, // min(10, 100)
		{4, 0.1, 2},     // min(2, 10)
		{0, 0.5, 1},     // clamped
		{100, 0, 10},    // p unknown -> sqrt(k)
	}
	for _, tt := range tests {
		if got := mu(tt.k, tt.p); got != tt.want {
			t.Fatalf("mu(%d,%v) = %d, want %d", tt.k, tt.p, got, tt.want)
		}
	}
}

func TestDeterministicRouting(t *testing.T) {
	g := graph.Grid(6, 6)
	specs := buildInstance(g.N(), 0.2, 0.2, 2, 17)
	m1 := runRouting(t, g, specs, 18)
	m2 := runRouting(t, g, specs, 18)
	if m1.Rounds != m2.Rounds || m1.GlobalMsgs != m2.GlobalMsgs {
		t.Fatalf("identical runs diverged: %+v vs %+v", m1, m2)
	}
}

// Property: random consistent instances on random connected graphs always
// deliver completely.
func TestQuickRoutingAlwaysDelivers(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	f := func(seed int64, nRaw, tokRaw uint8) bool {
		n := 24 + int(nRaw%40)
		tokens := 1 + int(tokRaw%5)
		rng := rand.New(rand.NewSource(seed))
		g := graph.SparseConnected(n, 1.0, rng)
		specs := buildInstance(n, 0.25, 0.25, tokens, seed+1)
		if err := Validate(specs); err != nil {
			return false
		}
		got := make([][]Token, n)
		_, err := sim.Run(g, sim.Config{Seed: seed}, func(env *sim.Env) {
			got[env.ID()] = Route(env, specs[env.ID()], Params{})
		})
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if len(got[v]) != len(specs[v].Expect) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Failure injection: an inconsistent instance (a label expected but never
// sent) must not deadlock or corrupt other deliveries — the fixed schedules
// simply leave the orphan label unanswered.
func TestRouteInconsistentInstanceDegradesGracefully(t *testing.T) {
	g := graph.Grid(6, 6)
	n := g.N()
	specs := buildInstance(n, 0.2, 0.2, 3, 99)
	// Orphan label: receiver expects a token nobody sends.
	var victim int
	for v := range specs {
		if specs[v].InR {
			victim = v
			break
		}
	}
	orphan := Label{S: 0, R: victim, I: 999}
	specs[victim].Expect = append(specs[victim].Expect, orphan)
	specs[victim].KR++

	got := make([][]Token, n)
	_, err := sim.Run(g, sim.Config{Seed: 101}, func(env *sim.Env) {
		got[env.ID()] = Route(env, specs[env.ID()], Params{})
	})
	if err != nil {
		t.Fatal(err)
	}
	// The orphan is missing; everything else arrived.
	for v := 0; v < n; v++ {
		wantCount := len(specs[v].Expect)
		if v == victim {
			wantCount--
		}
		if len(got[v]) != wantCount {
			t.Fatalf("node %d received %d tokens, want %d", v, len(got[v]), wantCount)
		}
	}
	for _, tok := range got[victim] {
		if tok.Label == orphan {
			t.Fatal("orphan label was somehow delivered")
		}
	}
}
