package routing

import "testing"

// TestHashTableShrinkOnReset pins the shrink policy: a table blown up by
// one giant fill returns to a small capacity on the next reset, small
// tables never shrink, and steady-state loads near the table's capacity
// don't thrash between shrink and grow.
func TestHashTableShrinkOnReset(t *testing.T) {
	var s u64set
	const big = 1 << 16
	for i := uint64(0); i < big; i++ {
		s.add(i * 3)
	}
	peak := len(s.tab)
	if peak < big {
		t.Fatalf("peak capacity %d below fill %d", peak, big)
	}
	// The reset right after the giant fill keeps capacity (the table was
	// genuinely full); the reset after the next small fill is what detects
	// the overprovisioning and shrinks.
	s.reset()
	if len(s.tab) != peak {
		t.Errorf("reset after a full table resized it: %d -> %d", peak, len(s.tab))
	}
	for i := uint64(0); i < 1000; i++ {
		if !s.add(i) {
			t.Fatalf("key %d reported present in an empty table", i)
		}
	}
	s.reset()
	if len(s.tab) >= peak {
		t.Errorf("reset after a small fill kept capacity %d (peak %d)", len(s.tab), peak)
	}
	if len(s.tab) < minTableSize {
		t.Errorf("shrunk below the minimum table size: %d", len(s.tab))
	}
	// The shrunk table still works and grows back on demand.
	for i := uint64(0); i < 1000; i++ {
		if !s.add(i) {
			t.Fatalf("key %d reported present in the shrunk table", i)
		}
	}
	if s.used != 1000 {
		t.Fatalf("used = %d after 1000 inserts", s.used)
	}

	// Deterministic policy: shrunkSize depends only on (used, cap).
	if got := shrunkSize(0, shrinkMinCap/2); got != 0 {
		t.Errorf("small table shrank: %d", got)
	}
	if got := shrunkSize(shrinkMinCap/shrinkDivisor, shrinkMinCap); got != 0 {
		t.Errorf("table at the occupancy threshold shrank: %d", got)
	}
	if got := shrunkSize(10, 1<<20); got == 0 || got > 1<<20/shrinkDivisor {
		t.Errorf("huge sparse table kept too much: %d", got)
	}

	// Steady state: a load that refills to the same size must not shrink
	// on every reset (the shrunk size admits the refill below the grow
	// trigger).
	var m u64map
	for i := uint64(0); i < big; i++ {
		m.put(i, int64(i))
	}
	peakM := len(m.keys)
	m.reset() // full: keeps capacity
	m.put(7, 7)
	m.reset() // sparse: shrinks both arrays
	if len(m.keys) >= peakM {
		t.Errorf("map reset after a small fill kept capacity %d (peak %d)", len(m.keys), peakM)
	}
	shrunk := len(m.keys)
	fill := shrunk / shrinkDivisor // just at the keep threshold
	for round := 0; round < 3; round++ {
		for i := 0; i < fill; i++ {
			m.put(uint64(i), 1)
		}
		if len(m.keys) != shrunk {
			t.Fatalf("round %d: steady-state load resized the table: %d -> %d", round, shrunk, len(m.keys))
		}
		m.reset()
		if len(m.keys) != shrunk {
			t.Fatalf("round %d: steady-state reset resized the table: %d -> %d", round, shrunk, len(m.keys))
		}
	}

	// u64map shrinks both arrays together.
	if len(m.keys) != len(m.vals) {
		t.Errorf("keys and vals diverged: %d vs %d", len(m.keys), len(m.vals))
	}
}
