package routing

// Open-addressed hash containers for packed labels. The flood dedup sets
// are the protocol's hottest data structure (every record is checked once
// per neighbor arrival), and they are cleared and refilled to a similar
// size every Route call — a reusable flat table with a multiplicative hash
// beats the generic map by a large constant factor and stops allocating
// after the first call.

// hashU64 spreads a packed label over the table. The table index is taken
// from the LOW bits of the result, and packed labels vary mostly in their
// HIGH bits (S sits at bit 44), so this must be a full-avalanche mix — a
// plain multiply would park every label in one probe chain. splitmix64
// finalizer.
func hashU64(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xBF58476D1CE4E5B9
	k ^= k >> 27
	k *= 0x94D049BB133111EB
	k ^= k >> 31
	return k
}

// Shrink-on-reset policy, shared by u64set and u64map. The tables are
// reused across Route calls, so one giant instance would otherwise pin its
// peak capacity for the session's whole lifetime. A table is reallocated
// smaller at reset when it is at least shrinkMinCap words AND its last
// fill used less than 1/shrinkDivisor of the capacity — both conditions
// are pure functions of (used, len), so shrinking is deterministic and
// identical across engines and runs. Tables below shrinkMinCap (32 KiB of
// keys) never shrink: reallocating them saves nothing measurable, and the
// no-shrink floor keeps steady-state workloads allocation-free.
const (
	shrinkMinCap  = 4096
	shrinkDivisor = 8
	minTableSize  = 64
)

// shrunkSize returns the new capacity for a table of size cap whose last
// fill had `used` live entries, or 0 to keep the current table. The chosen
// power of two keeps a refill of the same size below 1/4 load, well under
// the 3/4 grow trigger, so alternating loads don't thrash.
func shrunkSize(used, cap int) int {
	if cap < shrinkMinCap || used*shrinkDivisor >= cap {
		return 0
	}
	size := minTableSize
	for size < used*4 {
		size <<= 1
	}
	return size
}

// u64set is a linear-probe set of uint64 keys. Keys are stored offset by
// one so the zero word means "empty"; pack() values stay below 2^58, so
// the offset cannot wrap.
type u64set struct {
	tab  []uint64
	used int
}

// reset empties the set, keeping capacity unless the shrink policy fires.
func (s *u64set) reset() {
	if size := shrunkSize(s.used, len(s.tab)); size > 0 {
		s.tab = make([]uint64, size)
		s.used = 0
		return
	}
	if s.used > 0 {
		clear(s.tab)
		s.used = 0
	}
}

// add inserts k and reports whether it was absent.
func (s *u64set) add(k uint64) bool {
	if s.used*4 >= len(s.tab)*3 {
		s.grow()
	}
	v := k + 1
	mask := uint64(len(s.tab) - 1)
	i := hashU64(k) & mask
	for {
		switch s.tab[i] {
		case 0:
			s.tab[i] = v
			s.used++
			return true
		case v:
			return false
		}
		i = (i + 1) & mask
	}
}

func (s *u64set) grow() {
	old := s.tab
	size := 64
	if len(old) > 0 {
		size = len(old) * 2
	}
	s.tab = make([]uint64, size)
	s.used = 0
	for _, v := range old {
		if v != 0 {
			s.reinsert(v)
		}
	}
}

func (s *u64set) reinsert(v uint64) {
	mask := uint64(len(s.tab) - 1)
	i := hashU64(v-1) & mask
	for s.tab[i] != 0 {
		i = (i + 1) & mask
	}
	s.tab[i] = v
	s.used++
}

// u64map is a linear-probe map from uint64 keys to int64 values, with the
// same storage scheme as u64set.
type u64map struct {
	keys []uint64
	vals []int64
	used int
}

// reset empties the map, keeping capacity unless the shrink policy fires.
func (m *u64map) reset() {
	if size := shrunkSize(m.used, len(m.keys)); size > 0 {
		m.keys = make([]uint64, size)
		m.vals = make([]int64, size)
		m.used = 0
		return
	}
	if m.used > 0 {
		clear(m.keys)
		m.used = 0
	}
}

// put inserts or overwrites k.
func (m *u64map) put(k uint64, val int64) {
	if m.used*4 >= len(m.keys)*3 {
		m.grow()
	}
	v := k + 1
	mask := uint64(len(m.keys) - 1)
	i := hashU64(k) & mask
	for {
		switch m.keys[i] {
		case 0:
			m.keys[i] = v
			m.vals[i] = val
			m.used++
			return
		case v:
			m.vals[i] = val
			return
		}
		i = (i + 1) & mask
	}
}

// get looks k up.
func (m *u64map) get(k uint64) (int64, bool) {
	if m.used == 0 {
		return 0, false
	}
	v := k + 1
	mask := uint64(len(m.keys) - 1)
	i := hashU64(k) & mask
	for {
		switch m.keys[i] {
		case 0:
			return 0, false
		case v:
			return m.vals[i], true
		}
		i = (i + 1) & mask
	}
}

// len returns the number of live entries.
func (m *u64map) len() int { return m.used }

func (m *u64map) grow() {
	oldK, oldV := m.keys, m.vals
	size := 64
	if len(oldK) > 0 {
		size = len(oldK) * 2
	}
	m.keys = make([]uint64, size)
	m.vals = make([]int64, size)
	m.used = 0
	for i, v := range oldK {
		if v != 0 {
			m.reinsertKV(v, oldV[i])
		}
	}
}

func (m *u64map) reinsertKV(v uint64, val int64) {
	mask := uint64(len(m.keys) - 1)
	i := hashU64(v-1) & mask
	for m.keys[i] != 0 {
		i = (i + 1) & mask
	}
	m.keys[i] = v
	m.vals[i] = val
	m.used++
}
