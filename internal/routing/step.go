package routing

import (
	"fmt"
	"sort"

	"repro/internal/bitrand"
	"repro/internal/flatmap"
	"repro/internal/helpers"
	"repro/internal/ncc"
	"repro/internal/sim"
)

// Step-machine forms of the token routing protocol (see sim.StepProgram):
// SessionMachine ports NewSession, RouteMachine ports Session.Route, and
// NewRouteProgram composes the two like the package-level Route. Each is a
// faithful port of its goroutine twin — identical messages, randomness
// order, and round count — sharing the Session/family state, the hash, and
// the pure helpers with the goroutine form.

// SessionMachine computes a routing Session without blocking: Algorithm 1
// twice, the hash-seed broadcast, and the cluster-local helper
// announcements. After it finishes, Out holds the session, ready for any
// number of RouteMachine runs.
type SessionMachine struct {
	// Out is the computed session; valid once Step returned true.
	Out *Session

	prog sim.StepProgram
}

// NewSessionMachine builds the collective session machine; all nodes must
// start it in the same round and agree on kS, kR, pS, pR and params,
// exactly like NewSession. With params.Cache set it is the step form of
// the cached construction: the collective agreement aggregation, then
// either a zero-round bind or the full build (re-populating the cache) —
// the same rounds, messages, and branch as the goroutine form.
func NewSessionMachine(env *sim.Env, inS, inR bool, kS, kR int, pS, pR float64, params Params) *SessionMachine {
	p := params.withDefaults()
	n := env.N()
	if n > 1<<14 {
		panic(fmt.Errorf("routing: n = %d exceeds the 2^14 node-ID limit of the label keying (Label.pack)", n))
	}
	muS, muR := derivedMus(p, kS, kR, pS, pR)
	m := &SessionMachine{}
	if p.Cache == nil {
		m.prog = newBuildSessionProg(env, m, inS, inR, muS, muR, p)
		return m
	}
	key := keyOf(p, kS, kR, pS, pR, muS, muR)
	entry := p.Cache.lookup(key)
	var agg *ncc.AggregateMachine
	inner := &SessionMachine{}
	m.prog = sim.Sequence(
		func(env *sim.Env) sim.StepProgram {
			agg = ncc.NewAggregateMachine(env, entry.mismatch(env.ID(), inS, inR), ncc.AggMax)
			return agg
		},
		func(env *sim.Env) sim.StepProgram {
			p.Cache.traceEvent(env, key, agg.Out == 0)
			if agg.Out == 0 {
				return nil
			}
			inner.prog = newBuildSessionProg(env, inner, inS, inR, muS, muR, p)
			return inner
		},
		sim.Finish(func(env *sim.Env) {
			if agg.Out == 0 {
				m.Out = entry.bind(env, muS, muR, p)
				return
			}
			p.Cache.shared(env, key).store(env.ID(), inS, inR, inner.Out)
			m.Out = inner.Out
		}),
	)
	return m
}

// newBuildSessionProg is the uncached session-construction machine,
// writing the finished session to m.Out (the step twin of buildSession).
func newBuildSessionProg(env *sim.Env, m *SessionMachine, inS, inR bool, muS, muR int, p Params) sim.StepProgram {
	n := env.N()
	logN := sim.Log2Ceil(n)
	kHash := p.HashKFactor * logN

	s := &Session{env: env, params: p}
	var helpS, helpR *helpers.Machine
	var bw *ncc.BroadcastWordsMachine
	var annS, annR *announceMachine
	return sim.Sequence(
		// Helper families for senders and receivers (Algorithm 1 twice).
		func(env *sim.Env) sim.StepProgram {
			helpS = helpers.NewMachine(env, inS, muS, p.Helpers)
			return helpS
		},
		func(env *sim.Env) sim.StepProgram {
			helpR = helpers.NewMachine(env, inR, muR, p.Helpers)
			return helpR
		},
		func(env *sim.Env) sim.StepProgram {
			// Node 0 draws the seed; everyone gets it via binomial broadcast
			// (Lemma 2.3).
			var seedWords []int64
			if env.ID() == 0 {
				h := bitrand.NewKWiseHash(kHash, n, env.Rand())
				for _, c := range h.Seed() {
					seedWords = append(seedWords, int64(c))
				}
			}
			bw = ncc.NewBroadcastWordsMachine(env, 0, seedWords, kHash)
			return bw
		},
		sim.Finish(func(env *sim.Env) {
			seed := make([]uint64, len(bw.Out))
			for i, w := range bw.Out {
				seed[i] = uint64(w)
			}
			s.famS = family{res: helpS.Res, mu: muS, items: map[int][]Token{}}
			s.famR = family{res: helpR.Res, mu: muR, items: map[int][]Token{}}
			s.hash = bitrand.FromSeed(seed, n)
		}),
		func(env *sim.Env) sim.StepProgram {
			annS = newAnnounceMachine(env, s.famS.res, muS)
			return annS
		},
		func(env *sim.Env) sim.StepProgram {
			s.famS.helperSets = annS.Sets
			annR = newAnnounceMachine(env, s.famR.res, muR)
			return annR
		},
		sim.Finish(func(env *sim.Env) {
			s.famR.helperSets = annR.Sets
			s.famS.myOwners = helpersOf(env.ID(), s.famS.helperSets)
			s.famR.myOwners = helpersOf(env.ID(), s.famR.helperSets)
			m.Out = s
		}),
	)
}

// Step implements sim.StepProgram.
func (m *SessionMachine) Step(env *sim.Env) bool { return m.prog.Step(env) }

// RouteMachine runs one routing instance over a computed session:
// Algorithm 3's token spreading, Algorithm 4's hash-routed forwarding with
// the aggregated phase lengths, the reply drain, and the final
// cluster-local collection.
type RouteMachine struct {
	// Out is this node's received tokens (sorted); valid once Step returned
	// true.
	Out []Token

	prog sim.StepProgram
}

// NewRouteMachine builds the collective routing machine over s; every node
// must start it in the same round with consistent instance inputs, exactly
// like Session.Route.
func NewRouteMachine(s *Session, send []Token, expect []Label) *RouteMachine {
	env := s.env
	budget := env.GlobalCap()
	hash := s.hash
	inter := &s.inter

	m := &RouteMachine{}
	var spreadS, spreadR *spreadMachine
	var aggSend, aggReq, aggHeld *ncc.AggregateMachine
	var myTokenJobs, myLabelJobs []Token
	var gotTokens []Token
	var replyQueue []reply
	var coll *collectMachine
	ji, li, rq := 0, 0, 0

	// answerSend and answerRecv are shared by the request loop and the
	// drain bursts: pace queued replies at the cap, collect answers.
	answerSend := func(env *sim.Env, sent int) int {
		for ; sent < budget && rq < len(replyQueue); sent++ {
			r := replyQueue[rq]
			rq++
			env.SendGlobal(r.to, kindAnswer, int64(r.tok.S), int64(r.tok.R), r.tok.I, r.tok.Value)
		}
		return sent
	}
	answerRecv := func(in sim.Inbox) {
		for _, gm := range in.Global {
			if gm.Kind == kindAnswer {
				gotTokens = append(gotTokens, Token{
					Label: Label{S: int(gm.F0), R: int(gm.F1), I: gm.F2},
					Value: gm.F3,
				})
			}
		}
	}

	m.prog = sim.Sequence(
		// Algorithm 3, second loop: flood tokens and expected labels to the
		// clusters; helpers pick their balanced share by rank.
		func(env *sim.Env) sim.StepProgram {
			spreadS = newSpreadMachine(env, &s.famS, canonicalTokens(send))
			return spreadS
		},
		func(env *sim.Env) sim.StepProgram {
			myTokenJobs = spreadS.Jobs
			expectTokens := make([]Token, len(expect))
			for i, l := range expect {
				expectTokens[i] = Token{Label: l}
			}
			spreadR = newSpreadMachine(env, &s.famR, canonicalTokens(expectTokens))
			return spreadR
		},
		// Algorithm 4: forward tokens to intermediates; the phase length is
		// the exact global maximum load.
		func(env *sim.Env) sim.StepProgram {
			myLabelJobs = spreadR.Jobs
			aggSend = ncc.NewAggregateMachine(env, int64(len(myTokenJobs)), ncc.AggMax)
			return aggSend
		},
		func(env *sim.Env) sim.StepProgram {
			inter.Reset()
			return &sim.Loop{
				Rounds: ceilDiv(int(aggSend.Out), budget),
				Send: func(env *sim.Env, i int) {
					for c := 0; c < budget && ji < len(myTokenJobs); c++ {
						t := myTokenJobs[ji]
						ji++
						env.SendGlobal(hash.Hash(t.pack()), kindToken, int64(t.S), int64(t.R), t.I, t.Value)
					}
				},
				Recv: func(env *sim.Env, in sim.Inbox, i int) {
					for _, gm := range in.Global {
						if gm.Kind == kindToken {
							inter.Put(Label{S: int(gm.F0), R: int(gm.F1), I: gm.F2}.pack(), gm.F3)
						}
					}
				},
			}
		},
		// Algorithm 4: receiver-helpers request their labels; intermediates
		// answer, pacing replies at the cap.
		func(env *sim.Env) sim.StepProgram {
			aggReq = ncc.NewAggregateMachine(env, int64(len(myLabelJobs)), ncc.AggMax)
			return aggReq
		},
		func(env *sim.Env) sim.StepProgram {
			aggHeld = ncc.NewAggregateMachine(env, int64(inter.Len()), ncc.AggMax)
			return aggHeld
		},
		func(env *sim.Env) sim.StepProgram {
			replyQueue = s.replyQueue[:0]
			return &sim.Loop{
				Rounds: ceilDiv(int(aggReq.Out), budget) + ceilDiv(int(aggHeld.Out), budget) + 1,
				Send: func(env *sim.Env, i int) {
					sent := 0
					for ; sent < budget && li < len(myLabelJobs); sent++ {
						l := myLabelJobs[li].Label
						li++
						env.SendGlobal(hash.Hash(l.pack()), kindRequest, int64(l.S), int64(l.R), l.I, 0)
					}
					answerSend(env, sent)
				},
				Recv: func(env *sim.Env, in sim.Inbox, i int) {
					for _, gm := range in.Global {
						switch gm.Kind {
						case kindRequest:
							l := Label{S: int(gm.F0), R: int(gm.F1), I: gm.F2}
							if v, ok := inter.Get(l.pack()); ok {
								replyQueue = append(replyQueue, reply{to: gm.Src, tok: Token{Label: l, Value: v}})
							}
						case kindAnswer:
							gotTokens = append(gotTokens, Token{
								Label: Label{S: int(gm.F0), R: int(gm.F1), I: gm.F2},
								Value: gm.F3,
							})
						}
					}
				},
			}
		},
		// Flush any replies still queued: aggregate the remaining max and
		// drain in bursts until it reaches zero.
		func(env *sim.Env) sim.StepProgram {
			var agg *ncc.AggregateMachine
			return sim.Chain(func(env *sim.Env) sim.StepProgram {
				if agg != nil {
					left := int(agg.Out)
					agg = nil
					if left == 0 {
						return nil
					}
					return &sim.Loop{
						Rounds: ceilDiv(left, budget),
						Send:   func(env *sim.Env, i int) { answerSend(env, 0) },
						Recv:   func(env *sim.Env, in sim.Inbox, i int) { answerRecv(in) },
					}
				}
				agg = ncc.NewAggregateMachine(env, int64(len(replyQueue)-rq), ncc.AggMax)
				return agg
			})
		},
		// Receivers collect tokens from their helpers (final loop of
		// Algorithm 4).
		func(env *sim.Env) sim.StepProgram {
			s.replyQueue = replyQueue
			coll = newCollectMachine(env, s, gotTokens)
			return coll
		},
		sim.Finish(func(env *sim.Env) { m.Out = canonicalTokens(coll.out) }),
	)
	return m
}

// Step implements sim.StepProgram.
func (m *RouteMachine) Step(env *sim.Env) bool { return m.prog.Step(env) }

// NewRouteProgram is the step form of the package-level Route: session
// construction followed by one routing instance, handing the received
// tokens to done.
func NewRouteProgram(env *sim.Env, spec Spec, params Params, done func([]Token)) sim.StepProgram {
	var sm *SessionMachine
	var rm *RouteMachine
	return sim.Sequence(
		func(env *sim.Env) sim.StepProgram {
			sm = NewSessionMachine(env, spec.InS, spec.InR, spec.KS, spec.KR, spec.PS, spec.PR, params)
			return sm
		},
		func(env *sim.Env) sim.StepProgram {
			rm = NewRouteMachine(sm.Out, spec.Send, spec.Expect)
			return rm
		},
		sim.Finish(func(env *sim.Env) { done(rm.Out) }),
	)
}

// announceMachine is the step form of announceHelpers: 2β rounds of
// cluster-local flooding of (w, helper) pairs so all cluster members agree
// on each H_w.
type announceMachine struct {
	// Sets is the helper directory of this node's cluster (w -> sorted
	// helper IDs); valid once Step returned true.
	Sets map[int][]int

	loop  sim.Loop
	ruler int
	known flatmap.Set
	delta helperAnnounces
}

func newAnnounceMachine(env *sim.Env, res helpers.Result, mu int) *announceMachine {
	beta := 2 * mu * sim.Log2Ceil(env.N())
	a := &announceMachine{Sets: map[int][]int{}, ruler: res.Ruler}
	for _, w := range res.Helps {
		a.record(w, env.ID())
		a.delta = append(a.delta, helperAnnounce{Ruler: res.Ruler, W: w, Helper: env.ID()})
	}
	a.loop = sim.Loop{
		Rounds: 2 * beta,
		Send: func(env *sim.Env, i int) {
			if len(a.delta) > 0 {
				env.BroadcastLocal(a.delta)
			}
		},
		Recv: func(env *sim.Env, in sim.Inbox, i int) {
			var next helperAnnounces
			for _, lm := range in.Local {
				anns, ok := lm.Payload.(helperAnnounces)
				if !ok {
					continue
				}
				for _, an := range anns {
					if an.Ruler != a.ruler {
						continue
					}
					if a.record(an.W, an.Helper) {
						next = append(next, an)
					}
				}
			}
			a.delta = next
		},
	}
	return a
}

// record registers one (w, helper) pair, reporting whether it was new.
func (a *announceMachine) record(w, helper int) bool {
	if a.known.Add(uint64(w)<<32 | uint64(uint32(helper))) {
		a.Sets[w] = append(a.Sets[w], helper)
		return true
	}
	return false
}

// Step implements sim.StepProgram.
func (a *announceMachine) Step(env *sim.Env) bool {
	if a.loop.Step(env) {
		for w := range a.Sets {
			sort.Ints(a.Sets[w])
		}
		return true
	}
	return false
}

// spreadMachine is the step form of family.spread: flood each owner's item
// batch through its cluster for 2β rounds, then pick this helper's share by
// rank.
type spreadMachine struct {
	// Jobs holds the items this node is responsible for as a helper
	// (canonical); valid once Step returned true.
	Jobs []Token

	loop  sim.Loop
	f     *family
	delta tokenBatches
}

func newSpreadMachine(env *sim.Env, f *family, myItems []Token) *spreadMachine {
	beta := 2 * f.mu * sim.Log2Ceil(env.N())
	me := env.ID()
	sp := &spreadMachine{f: f}
	clear(f.items)
	if len(myItems) > 0 {
		f.items[me] = myItems
		sp.delta = append(sp.delta, tokenBatch{Ruler: f.res.Ruler, Owner: me, Items: myItems})
	}
	sp.loop = sim.Loop{
		Rounds: 2 * beta,
		Send: func(env *sim.Env, i int) {
			if len(sp.delta) > 0 {
				env.BroadcastLocal(sp.delta)
			}
		},
		Recv: func(env *sim.Env, in sim.Inbox, i int) {
			var next tokenBatches
			for _, lm := range in.Local {
				tbs, ok := lm.Payload.(tokenBatches)
				if !ok {
					continue
				}
				for _, tb := range tbs {
					if tb.Ruler != f.res.Ruler {
						continue
					}
					if _, seen := f.items[tb.Owner]; seen {
						continue
					}
					f.items[tb.Owner] = tb.Items
					next = append(next, tb)
				}
			}
			sp.delta = next
		},
	}
	return sp
}

// Step implements sim.StepProgram.
func (sp *spreadMachine) Step(env *sim.Env) bool {
	if !sp.loop.Step(env) {
		return false
	}
	// Pick my share: for every owner I help, take items by rank (identical
	// to family.spread's epilogue).
	me := env.ID()
	var mine []Token
	for _, w := range sp.f.myOwners {
		hs := sp.f.helperSets[w]
		rank := sort.SearchInts(hs, me)
		toks := sp.f.items[w]
		for j := rank; j < len(toks); j += len(hs) {
			mine = append(mine, toks[j])
		}
	}
	sp.Jobs = canonicalTokens(mine)
	return true
}

// collectMachine is the step form of Session.collect: flood each helper's
// answered-token batch through the receiver clusters for 2β rounds.
type collectMachine struct {
	out []Token

	loop  sim.Loop
	seen  map[int]bool
	delta deliveredBatches
}

func newCollectMachine(env *sim.Env, s *Session, gotTokens []Token) *collectMachine {
	beta := 2 * s.famR.mu * sim.Log2Ceil(env.N())
	me := env.ID()
	c := &collectMachine{seen: map[int]bool{}}
	ruler := s.famR.res.Ruler
	if len(gotTokens) > 0 {
		c.seen[me] = true
		c.delta = append(c.delta, deliveredBatch{Ruler: ruler, Injector: me, Items: gotTokens})
		for _, t := range gotTokens {
			if t.R == me {
				c.out = append(c.out, t)
			}
		}
	}
	c.loop = sim.Loop{
		Rounds: 2 * beta,
		Send: func(env *sim.Env, i int) {
			if len(c.delta) > 0 {
				env.BroadcastLocal(c.delta)
			}
		},
		Recv: func(env *sim.Env, in sim.Inbox, i int) {
			var next deliveredBatches
			for _, lm := range in.Local {
				dbs, ok := lm.Payload.(deliveredBatches)
				if !ok {
					continue
				}
				for _, db := range dbs {
					if db.Ruler != ruler {
						continue
					}
					if c.seen[db.Injector] {
						continue
					}
					c.seen[db.Injector] = true
					next = append(next, db)
					for _, t := range db.Items {
						if t.R == me {
							c.out = append(c.out, t)
						}
					}
				}
			}
			c.delta = next
		},
	}
	return c
}

// Step implements sim.StepProgram.
func (c *collectMachine) Step(env *sim.Env) bool { return c.loop.Step(env) }

// helperAnnounces is the local-mode payload of the helper-membership flood.
type helperAnnounces []helperAnnounce

// PayloadWords implements sim.WordSized: each announcement is a ruler, an
// owner, and a helper ID.
func (h helperAnnounces) PayloadWords() int64 { return 3 * int64(len(h)) }

// tokenBatches is the local-mode payload of the Routing-Preparation flood.
type tokenBatches []tokenBatch

// PayloadWords implements sim.WordSized: each batch is its ruler and owner
// plus four words per item (label and value).
func (t tokenBatches) PayloadWords() int64 {
	words := int64(0)
	for _, tb := range t {
		words += 2 + 4*int64(len(tb.Items))
	}
	return words
}

// deliveredBatches is the local-mode payload of the final collection flood.
type deliveredBatches []deliveredBatch

// PayloadWords implements sim.WordSized: each batch is its ruler and
// injector plus four words per token.
func (d deliveredBatches) PayloadWords() int64 {
	words := int64(0)
	for _, db := range d {
		words += 2 + 4*int64(len(db.Items))
	}
	return words
}
