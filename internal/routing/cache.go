package routing

import (
	"fmt"
	"sync"

	"repro/internal/bitrand"
	"repro/internal/helpers"
	"repro/internal/ncc"
	"repro/internal/sim"
)

// SessionCache caches the token-independent session state — the helper
// families of Algorithm 1, the cluster-local helper directories, and the
// shared intermediate-choosing hash — across session constructions. The
// paper's cost accounting already reuses Algorithm 1's output across the
// routing instances of one CLIQUE simulation (helper sets depend only on
// S, R and µ, not on the tokens); the cache extends the same argument
// across *runs*: when the same sender/receiver sets recur — repeated
// facade calls on one Network, experiment sweeps, the per-phase sessions
// of a pipeline — the setup rounds are paid once.
//
// Correctness is collective: an entry records every node's (inS, inR)
// membership at creation, and a cached construction first runs one global
// max-aggregation (2·ceil(log2 n) rounds, Lemma B.2) in which each node
// reports whether its own slot still matches. Only a unanimous match binds
// the cached state; any mismatch rebuilds the session from scratch (and
// re-caches it). Every node therefore takes the same branch, round counts
// stay globally consistent on every engine, and the cache never changes
// results — only the number of setup rounds. Runs of the owning Network
// must not overlap (they never do; engines run one barrier loop at a
// time).
type SessionCache struct {
	mu      sync.Mutex
	entries map[sessionKey]*sessionEntry
	order   []sessionKey // insertion order, for deterministic FIFO eviction
	trace   func(event string)
}

// maxSessionEntries bounds the cache: one entry holds O(n·µ) helper
// directories, and a parameter sweep that never repeats a key would
// otherwise grow without bound. Eviction is FIFO on insertion order —
// deterministic, so repeated runs with the same seed keep identical
// hit/miss sequences and therefore identical round counts.
const maxSessionEntries = 16

// NewSessionCache returns an empty cache, ready to be shared by any number
// of sequential runs over the same node set.
func NewSessionCache() *SessionCache {
	return &SessionCache{entries: map[sessionKey]*sessionEntry{}}
}

// SetTrace installs a cache-event hook: fn is invoked (at node 0 only) with
// one line per collective agreement, saying whether the run bound the
// cached session or rebuilt. The sequence is engine-independent; the golden
// round-trace test pins it.
func (c *SessionCache) SetTrace(fn func(event string)) { c.trace = fn }

// traceEvent records one collective agreement outcome (node 0 only, so the
// trace is a single global sequence shared by all execution forms).
func (c *SessionCache) traceEvent(env *sim.Env, key sessionKey, hit bool) {
	if c.trace == nil || env.ID() != 0 {
		return
	}
	verdict := "rebuild"
	if hit {
		verdict = "hit"
	}
	c.trace(fmt.Sprintf("session kS=%d kR=%d µS=%d µR=%d: %s", key.kS, key.kR, key.muS, key.muR, verdict))
}

// sessionKey is the globally known part of a session's identity. The
// per-node membership bits are checked separately (collectively) because
// no single node knows the full S and R sets.
type sessionKey struct {
	kS, kR      int
	pS, pR      float64
	muS, muR    int
	hashKFactor int
	qBoost      int
}

func keyOf(p Params, kS, kR int, pS, pR float64, muS, muR int) sessionKey {
	return sessionKey{
		kS: kS, kR: kR, pS: pS, pR: pR, muS: muS, muR: muR,
		hashKFactor: p.HashKFactor, qBoost: p.Helpers.QBoost,
	}
}

// familySnap is one node's cached view of one helper family. The maps and
// slices are shared read-only between the entry and every Session bound
// from it; only the per-Route items scratch is allocated fresh per bind.
type familySnap struct {
	res        helpers.Result
	helperSets map[int][]int
	myOwners   []int
}

// sessionEntry holds the cached per-node session state. Each node only
// ever reads and writes its own index, so slot access needs no lock: the
// engines' round barriers (within a run) and Run's return (across runs)
// order every write before every later read.
type sessionEntry struct {
	filled []bool
	inS    []bool
	inR    []bool
	famS   []familySnap
	famR   []familySnap
	hash   []*bitrand.KWiseHash
}

func newSessionEntry(n int) *sessionEntry {
	return &sessionEntry{
		filled: make([]bool, n),
		inS:    make([]bool, n),
		inR:    make([]bool, n),
		famS:   make([]familySnap, n),
		famR:   make([]familySnap, n),
		hash:   make([]*bitrand.KWiseHash, n),
	}
}

func (c *SessionCache) lookup(key sessionKey) *sessionEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[key]
}

// shared returns the run-shared entry being (re)populated for key,
// creating it and installing it into the cache exactly once per run:
// env.SharedOnce guarantees all nodes of the run store into the same
// object, replacing any stale entry atomically under the cache lock.
func (c *SessionCache) shared(env *sim.Env, key sessionKey) *sessionEntry {
	v := env.SharedOnce("routing.SessionCache", func() interface{} {
		e := newSessionEntry(env.N())
		c.mu.Lock()
		if _, exists := c.entries[key]; !exists {
			if len(c.order) >= maxSessionEntries {
				oldest := c.order[0]
				c.order = c.order[1:]
				delete(c.entries, oldest)
			}
			c.order = append(c.order, key)
		}
		c.entries[key] = e
		c.mu.Unlock()
		return e
	})
	return v.(*sessionEntry)
}

// mismatch reports whether this node's slot of entry fails to match its
// current membership (1) or matches (0); a nil or unfilled entry always
// mismatches. The value feeds the collective max-aggregation.
func (e *sessionEntry) mismatch(id int, inS, inR bool) int64 {
	if e == nil || !e.filled[id] || e.inS[id] != inS || e.inR[id] != inR {
		return 1
	}
	return 0
}

// store records one node's freshly built session state into its slot.
func (e *sessionEntry) store(id int, inS, inR bool, s *Session) {
	e.inS[id], e.inR[id] = inS, inR
	e.famS[id] = familySnap{res: s.famS.res, helperSets: s.famS.helperSets, myOwners: s.famS.myOwners}
	e.famR[id] = familySnap{res: s.famR.res, helperSets: s.famR.helperSets, myOwners: s.famR.myOwners}
	e.hash[id] = s.hash
	e.filled[id] = true
}

// bind constructs a ready Session from this node's cached slot, consuming
// zero rounds. The Route-call scratch (per-owner item maps, intermediate
// store, reply queue) starts fresh; everything token-independent is
// shared.
func (e *sessionEntry) bind(env *sim.Env, muS, muR int, p Params) *Session {
	id := env.ID()
	return &Session{
		env:    env,
		params: p,
		famS:   family{res: e.famS[id].res, mu: muS, helperSets: e.famS[id].helperSets, myOwners: e.famS[id].myOwners, items: map[int][]Token{}},
		famR:   family{res: e.famR[id].res, mu: muR, helperSets: e.famR[id].helperSets, myOwners: e.famR[id].myOwners, items: map[int][]Token{}},
		hash:   e.hash[id],
	}
}

// session is the cached construction path (goroutine form): the collective
// hit/miss agreement, then either a zero-round bind or a full rebuild that
// re-populates the cache.
func (c *SessionCache) session(env *sim.Env, inS, inR bool, key sessionKey, muS, muR int, p Params) *Session {
	entry := c.lookup(key)
	hit := ncc.Aggregate(env, entry.mismatch(env.ID(), inS, inR), ncc.AggMax) == 0
	c.traceEvent(env, key, hit)
	if hit {
		return entry.bind(env, muS, muR, p)
	}
	s := buildSession(env, inS, inR, muS, muR, p)
	c.shared(env, key).store(env.ID(), inS, inR, s)
	return s
}

// CacheSnapshot is the serializable image of a SessionCache, produced by
// Snapshot and consumed by Restore. Entries preserve insertion order so a
// restored cache keeps the same deterministic FIFO eviction sequence.
type CacheSnapshot struct {
	Entries []SessionEntrySnapshot
}

// SessionKeySnapshot is the exported mirror of a session's globally known
// identity (the in-memory sessionKey).
type SessionKeySnapshot struct {
	KS, KR      int
	PS, PR      float64
	MuS, MuR    int
	HashKFactor int
	QBoost      int
}

// FamilySnapshot is one node's serialized view of one helper family: the
// Algorithm 1 output, the cluster-local helper directory, and the owners
// this node helps.
type FamilySnapshot struct {
	Res        helpers.Result
	HelperSets map[int][]int
	MyOwners   []int
}

// SessionEntrySnapshot is one cached session: its key and every node's
// slot. HashSeed holds each node's k-wise hash coefficients (nil for
// unfilled slots); the hash is reconstructed with bitrand.FromSeed.
type SessionEntrySnapshot struct {
	Key      SessionKeySnapshot
	Filled   []bool
	InS, InR []bool
	FamS     []FamilySnapshot
	FamR     []FamilySnapshot
	HashSeed [][]uint64
}

// Snapshot captures the cache's current contents for persistence. The
// returned snapshot shares the per-node maps and slices with the cache;
// callers must serialize (or deep-copy) it before the cache is used again.
func (c *SessionCache) Snapshot() CacheSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := CacheSnapshot{Entries: make([]SessionEntrySnapshot, 0, len(c.order))}
	for _, key := range c.order {
		e := c.entries[key]
		n := len(e.filled)
		es := SessionEntrySnapshot{
			Key: SessionKeySnapshot{
				KS: key.kS, KR: key.kR, PS: key.pS, PR: key.pR,
				MuS: key.muS, MuR: key.muR,
				HashKFactor: key.hashKFactor, QBoost: key.qBoost,
			},
			Filled:   e.filled,
			InS:      e.inS,
			InR:      e.inR,
			FamS:     make([]FamilySnapshot, n),
			FamR:     make([]FamilySnapshot, n),
			HashSeed: make([][]uint64, n),
		}
		for id := 0; id < n; id++ {
			if !e.filled[id] {
				continue
			}
			es.FamS[id] = FamilySnapshot{Res: e.famS[id].res, HelperSets: e.famS[id].helperSets, MyOwners: e.famS[id].myOwners}
			es.FamR[id] = FamilySnapshot{Res: e.famR[id].res, HelperSets: e.famR[id].helperSets, MyOwners: e.famR[id].myOwners}
			es.HashSeed[id] = e.hash[id].Seed()
		}
		snap.Entries = append(snap.Entries, es)
	}
	return snap
}

// Restore replaces the cache's contents with a snapshot recorded for an
// n-node graph, validating shape. Restoring a snapshot recorded under a
// different seed is safe — the collective membership agreement degrades
// every stale entry to a rebuild — but restoring one from a different
// graph must be prevented by the caller (the facade keys cache files by
// graph fingerprint and seed).
func (c *SessionCache) Restore(snap CacheSnapshot, n int) error {
	entries := map[sessionKey]*sessionEntry{}
	order := make([]sessionKey, 0, len(snap.Entries))
	for i, es := range snap.Entries {
		if len(es.Filled) != n || len(es.InS) != n || len(es.InR) != n ||
			len(es.FamS) != n || len(es.FamR) != n || len(es.HashSeed) != n {
			return fmt.Errorf("routing: cache snapshot entry %d sized for %d nodes, want %d", i, len(es.Filled), n)
		}
		key := sessionKey{
			kS: es.Key.KS, kR: es.Key.KR, pS: es.Key.PS, pR: es.Key.PR,
			muS: es.Key.MuS, muR: es.Key.MuR,
			hashKFactor: es.Key.HashKFactor, qBoost: es.Key.QBoost,
		}
		if _, dup := entries[key]; dup {
			return fmt.Errorf("routing: cache snapshot has duplicate entry for kS=%d kR=%d", es.Key.KS, es.Key.KR)
		}
		e := newSessionEntry(n)
		for id := 0; id < n; id++ {
			if !es.Filled[id] {
				continue
			}
			if es.HashSeed[id] == nil {
				return fmt.Errorf("routing: cache snapshot entry %d node %d filled but has no hash seed", i, id)
			}
			e.filled[id] = true
			e.inS[id], e.inR[id] = es.InS[id], es.InR[id]
			e.famS[id] = familySnap{res: es.FamS[id].Res, helperSets: es.FamS[id].HelperSets, myOwners: es.FamS[id].MyOwners}
			e.famR[id] = familySnap{res: es.FamR[id].Res, helperSets: es.FamR[id].HelperSets, myOwners: es.FamR[id].MyOwners}
			e.hash[id] = bitrand.FromSeed(es.HashSeed[id], n)
		}
		entries[key] = e
		order = append(order, key)
	}
	c.mu.Lock()
	c.entries = entries
	c.order = order
	c.mu.Unlock()
	return nil
}

// Len reports the number of cached entries (for tests and diagnostics).
func (c *SessionCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
