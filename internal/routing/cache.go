package routing

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bitrand"
	"repro/internal/helpers"
	"repro/internal/ncc"
	"repro/internal/persist"
	"repro/internal/sim"
)

// SessionCache caches the token-independent session state — the helper
// families of Algorithm 1, the cluster-local helper directories, and the
// shared intermediate-choosing hash — across session constructions. The
// paper's cost accounting already reuses Algorithm 1's output across the
// routing instances of one CLIQUE simulation (helper sets depend only on
// S, R and µ, not on the tokens); the cache extends the same argument
// across *runs*: when the same sender/receiver sets recur — repeated
// facade calls on one Network, experiment sweeps, the per-phase sessions
// of a pipeline — the setup rounds are paid once.
//
// Correctness is collective: an entry records every node's (inS, inR)
// membership at creation, and a cached construction first runs one global
// max-aggregation (2·ceil(log2 n) rounds, Lemma B.2) in which each node
// reports whether its own slot still matches. Only a unanimous match binds
// the cached state; any mismatch rebuilds the session from scratch (and
// re-caches it). Every node therefore takes the same branch, round counts
// stay globally consistent on every engine, and the cache never changes
// results — only the number of setup rounds. Runs of the owning Network
// must not overlap (they never do; engines run one barrier loop at a
// time).
type SessionCache struct {
	mu      sync.Mutex
	entries map[sessionKey]*sessionEntry
	order   []sessionKey // insertion order, for deterministic FIFO eviction
	trace   func(event string)
}

// maxSessionEntries bounds the cache: one entry holds O(n·µ) helper
// directories, and a parameter sweep that never repeats a key would
// otherwise grow without bound. Eviction is FIFO on insertion order —
// deterministic, so repeated runs with the same seed keep identical
// hit/miss sequences and therefore identical round counts.
const maxSessionEntries = 16

// NewSessionCache returns an empty cache, ready to be shared by any number
// of sequential runs over the same node set.
func NewSessionCache() *SessionCache {
	return &SessionCache{entries: map[sessionKey]*sessionEntry{}}
}

// SetTrace installs a cache-event hook: fn is invoked (at node 0 only) with
// one line per collective agreement, saying whether the run bound the
// cached session or rebuilt. The sequence is engine-independent; the golden
// round-trace test pins it.
func (c *SessionCache) SetTrace(fn func(event string)) { c.trace = fn }

// traceEvent records one collective agreement outcome (node 0 only, so the
// trace is a single global sequence shared by all execution forms).
func (c *SessionCache) traceEvent(env *sim.Env, key sessionKey, hit bool) {
	if c.trace == nil || env.ID() != 0 {
		return
	}
	verdict := "rebuild"
	if hit {
		verdict = "hit"
	}
	c.trace(fmt.Sprintf("session kS=%d kR=%d µS=%d µR=%d: %s", key.kS, key.kR, key.muS, key.muR, verdict))
}

// sessionKey is the globally known part of a session's identity. The
// per-node membership bits are checked separately (collectively) because
// no single node knows the full S and R sets.
type sessionKey struct {
	kS, kR      int
	pS, pR      float64
	muS, muR    int
	hashKFactor int
	qBoost      int
}

func keyOf(p Params, kS, kR int, pS, pR float64, muS, muR int) sessionKey {
	return sessionKey{
		kS: kS, kR: kR, pS: pS, pR: pR, muS: muS, muR: muR,
		hashKFactor: p.HashKFactor, qBoost: p.Helpers.QBoost,
	}
}

// familySnap is one node's cached view of one helper family. The maps and
// slices are shared read-only between the entry and every Session bound
// from it; only the per-Route items scratch is allocated fresh per bind.
type familySnap struct {
	res        helpers.Result
	helperSets map[int][]int
	myOwners   []int
}

// sessionEntry holds the cached per-node session state. Each node only
// ever reads and writes its own index, so slot access needs no lock: the
// engines' round barriers (within a run) and Run's return (across runs)
// order every write before every later read.
type sessionEntry struct {
	filled []bool
	inS    []bool
	inR    []bool
	famS   []familySnap
	famR   []familySnap
	hash   []*bitrand.KWiseHash
}

func newSessionEntry(n int) *sessionEntry {
	return &sessionEntry{
		filled: make([]bool, n),
		inS:    make([]bool, n),
		inR:    make([]bool, n),
		famS:   make([]familySnap, n),
		famR:   make([]familySnap, n),
		hash:   make([]*bitrand.KWiseHash, n),
	}
}

func (c *SessionCache) lookup(key sessionKey) *sessionEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[key]
}

// shared returns the run-shared entry being (re)populated for key,
// creating it and installing it into the cache exactly once per run:
// env.SharedOnce guarantees all nodes of the run store into the same
// object, replacing any stale entry atomically under the cache lock.
func (c *SessionCache) shared(env *sim.Env, key sessionKey) *sessionEntry {
	v := env.SharedOnce("routing.SessionCache", func() interface{} {
		e := newSessionEntry(env.N())
		c.mu.Lock()
		if _, exists := c.entries[key]; !exists {
			if len(c.order) >= maxSessionEntries {
				oldest := c.order[0]
				c.order = c.order[1:]
				delete(c.entries, oldest)
			}
			c.order = append(c.order, key)
		}
		c.entries[key] = e
		c.mu.Unlock()
		return e
	})
	return v.(*sessionEntry)
}

// mismatch reports whether this node's slot of entry fails to match its
// current membership (1) or matches (0); a nil or unfilled entry always
// mismatches. The value feeds the collective max-aggregation.
func (e *sessionEntry) mismatch(id int, inS, inR bool) int64 {
	if e == nil || !e.filled[id] || e.inS[id] != inS || e.inR[id] != inR {
		return 1
	}
	return 0
}

// store records one node's freshly built session state into its slot.
func (e *sessionEntry) store(id int, inS, inR bool, s *Session) {
	e.inS[id], e.inR[id] = inS, inR
	e.famS[id] = familySnap{res: s.famS.res, helperSets: s.famS.helperSets, myOwners: s.famS.myOwners}
	e.famR[id] = familySnap{res: s.famR.res, helperSets: s.famR.helperSets, myOwners: s.famR.myOwners}
	e.hash[id] = s.hash
	e.filled[id] = true
}

// bind constructs a ready Session from this node's cached slot, consuming
// zero rounds. The Route-call scratch (per-owner item maps, intermediate
// store, reply queue) starts fresh; everything token-independent is
// shared.
func (e *sessionEntry) bind(env *sim.Env, muS, muR int, p Params) *Session {
	id := env.ID()
	return &Session{
		env:    env,
		params: p,
		famS:   family{res: e.famS[id].res, mu: muS, helperSets: e.famS[id].helperSets, myOwners: e.famS[id].myOwners, items: map[int][]Token{}},
		famR:   family{res: e.famR[id].res, mu: muR, helperSets: e.famR[id].helperSets, myOwners: e.famR[id].myOwners, items: map[int][]Token{}},
		hash:   e.hash[id],
	}
}

// session is the cached construction path (goroutine form): the collective
// hit/miss agreement, then either a zero-round bind or a full rebuild that
// re-populates the cache.
func (c *SessionCache) session(env *sim.Env, inS, inR bool, key sessionKey, muS, muR int, p Params) *Session {
	entry := c.lookup(key)
	hit := ncc.Aggregate(env, entry.mismatch(env.ID(), inS, inR), ncc.AggMax) == 0
	c.traceEvent(env, key, hit)
	if hit {
		return entry.bind(env, muS, muR, p)
	}
	s := buildSession(env, inS, inR, muS, muR, p)
	c.shared(env, key).store(env.ID(), inS, inR, s)
	return s
}

// CacheSnapshot is the serializable image of a SessionCache, produced by
// Snapshot and consumed by Restore — the seed-dependent "session section"
// of the v2 on-disk warm-start cache. Entries preserve insertion order so
// a restored cache keeps the same deterministic FIFO eviction sequence.
//
// The layout is deduplicated: data that Algorithm 1 makes identical across
// every member of a cluster — the W membership and the cluster-local
// helper directory — is stored once per ruler instead of once per node,
// the broadcast hash seed is stored once per entry instead of once per
// node, and the cluster structure itself (ruler assignment, member
// directories) is not stored at all: it is seed-independent, lives in the
// structural section (helpers.ClusterSnapshot), and is re-attached by
// reference on Restore. MyOwners is recomputed from the directory. A v1
// snapshot stored all of this per node, which multiplied every shared
// structure by the cluster size (~244 MB at n=4096).
type CacheSnapshot struct {
	Entries []SessionEntrySnapshot
}

// SessionKeySnapshot is the exported mirror of a session's globally known
// identity (the in-memory sessionKey).
type SessionKeySnapshot struct {
	KS, KR      int
	PS, PR      float64
	MuS, MuR    int
	HashKFactor int
	QBoost      int
}

// FamilySnapshot is one helper family of one cached session, deduplicated
// per cluster. Rulers lists the clusters that have members among the
// filled slots, in first-seen node order; WMembers, HelperOwners and
// HelperSets are parallel to it. All ID vectors are packed with
// persist.PackSorted.
type FamilySnapshot struct {
	// Rulers lists the cluster rulers with stored per-cluster data.
	Rulers []int
	// WMembers[i] is the packed sorted W membership of Rulers[i]'s cluster.
	WMembers [][]byte
	// HelperOwners[i] packs the sorted owner IDs (the w of each H_w) of
	// Rulers[i]'s helper directory; HelperSets[i][j] packs the sorted
	// helper set of the j-th owner.
	HelperOwners [][]byte
	HelperSets   [][][]byte
	// Helps[id] packs the owners node id helps (per-node data; nil for
	// unfilled slots).
	Helps [][]byte
}

// SessionEntrySnapshot is one cached session: its key, the per-node
// membership bits, the (single, broadcast-shared) hash seed, and the two
// deduplicated families.
type SessionEntrySnapshot struct {
	Key      SessionKeySnapshot
	Filled   []bool
	InS, InR []bool
	// HashSeed holds the k-wise hash coefficients. Node 0 draws the seed
	// and broadcasts it during session construction, so every node's hash
	// is identical — one copy serves all slots.
	HashSeed []uint64
	FamS     FamilySnapshot
	FamR     FamilySnapshot
}

// Snapshot captures the cache's current contents for persistence,
// deduplicating per-cluster state against the structural cluster cache
// the snapshot's references will later be resolved with. Entries whose
// structural dependencies are not (or no longer) present in clusters —
// the two 16-entry caches evict independently, so a wide parameter sweep
// can outlive a session's µ entries — are silently omitted: a session
// that cannot be restored must not be written, or the file set would be
// rejected wholesale on every later load. The packed vectors are fresh
// copies, but bool slices are shared with the cache; callers must
// serialize the snapshot before the cache is used again.
func (c *SessionCache) Snapshot(clusters *helpers.ClusterCache) (CacheSnapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := CacheSnapshot{Entries: make([]SessionEntrySnapshot, 0, len(c.order))}
	for _, key := range c.order {
		e := c.entries[key]
		if !snapshotResolvable(e, key, clusters) {
			continue
		}
		es := SessionEntrySnapshot{
			Key: SessionKeySnapshot{
				KS: key.kS, KR: key.kR, PS: key.pS, PR: key.pR,
				MuS: key.muS, MuR: key.muR,
				HashKFactor: key.hashKFactor, QBoost: key.qBoost,
			},
			Filled: e.filled,
			InS:    e.inS,
			InR:    e.inR,
		}
		for id := range e.filled {
			if e.filled[id] {
				if e.hash[id] == nil {
					return CacheSnapshot{}, fmt.Errorf("routing: snapshot: node %d filled but has no hash", id)
				}
				es.HashSeed = e.hash[id].Seed()
				break
			}
		}
		es.FamS = snapshotFamily(e.famS, e.filled)
		es.FamR = snapshotFamily(e.famR, e.filled)
		snap.Entries = append(snap.Entries, es)
	}
	return snap, nil
}

// snapshotResolvable reports whether every filled slot of e can be
// re-attached from clusters on restore: the µ entries exist, each node's
// slot is populated, and the structural ruler agrees with the one the
// session was built under (both are deterministic, so a disagreement
// means the structural entry is not this session's).
func snapshotResolvable(e *sessionEntry, key sessionKey, clusters *helpers.ClusterCache) bool {
	if clusters == nil {
		return false
	}
	for id, filled := range e.filled {
		if !filled {
			continue
		}
		for _, fam := range []struct {
			mu    int
			ruler int
		}{{key.muS, e.famS[id].res.Ruler}, {key.muR, e.famR[id].res.Ruler}} {
			ruler, _, _, ok := clusters.Structure(fam.mu, id)
			if !ok || ruler != fam.ruler {
				return false
			}
		}
	}
	return true
}

// snapshotFamily dedups one family's per-node slots into the per-cluster
// layout: the first filled member of each cluster contributes the shared
// W membership and helper directory (identical at every member by
// construction — cluster-local flooding), every filled node contributes
// only its own Helps list.
func snapshotFamily(fams []familySnap, filled []bool) FamilySnapshot {
	fs := FamilySnapshot{Helps: make([][]byte, len(fams))}
	seen := map[int]bool{}
	for id, f := range fams {
		if !filled[id] {
			continue
		}
		ruler := f.res.Ruler
		if !seen[ruler] {
			seen[ruler] = true
			fs.Rulers = append(fs.Rulers, ruler)
			fs.WMembers = append(fs.WMembers, persist.PackSorted(f.res.WMembers))
			owners := make([]int, 0, len(f.helperSets))
			for w := range f.helperSets {
				owners = append(owners, w)
			}
			sort.Ints(owners)
			sets := make([][]byte, len(owners))
			for j, w := range owners {
				sets[j] = persist.PackSorted(f.helperSets[w])
			}
			fs.HelperOwners = append(fs.HelperOwners, persist.PackSorted(owners))
			fs.HelperSets = append(fs.HelperSets, sets)
		}
		fs.Helps[id] = persist.PackSorted(f.res.Helps)
	}
	return fs
}

// familyDir is one decoded per-cluster record of a FamilySnapshot.
type familyDir struct {
	wMembers   []int
	helperSets map[int][]int
}

// decodeFamily unpacks a FamilySnapshot's per-cluster tables, validating
// IDs against n.
func decodeFamily(fs FamilySnapshot, n int) (map[int]*familyDir, error) {
	if len(fs.WMembers) != len(fs.Rulers) || len(fs.HelperOwners) != len(fs.Rulers) || len(fs.HelperSets) != len(fs.Rulers) {
		return nil, fmt.Errorf("routing: family snapshot has %d rulers but %d/%d/%d tables",
			len(fs.Rulers), len(fs.WMembers), len(fs.HelperOwners), len(fs.HelperSets))
	}
	dirs := make(map[int]*familyDir, len(fs.Rulers))
	for i, ruler := range fs.Rulers {
		if _, dup := dirs[ruler]; dup {
			return nil, fmt.Errorf("routing: family snapshot has duplicate ruler %d", ruler)
		}
		wm, err := unpackIDs(fs.WMembers[i], n)
		if err != nil {
			return nil, fmt.Errorf("routing: family snapshot ruler %d W members: %w", ruler, err)
		}
		owners, err := unpackIDs(fs.HelperOwners[i], n)
		if err != nil {
			return nil, fmt.Errorf("routing: family snapshot ruler %d owners: %w", ruler, err)
		}
		if len(fs.HelperSets[i]) != len(owners) {
			return nil, fmt.Errorf("routing: family snapshot ruler %d has %d helper sets for %d owners",
				ruler, len(fs.HelperSets[i]), len(owners))
		}
		sets := make(map[int][]int, len(owners))
		for j, w := range owners {
			hs, err := unpackIDs(fs.HelperSets[i][j], n)
			if err != nil {
				return nil, fmt.Errorf("routing: family snapshot ruler %d H_%d: %w", ruler, w, err)
			}
			sets[w] = hs
		}
		dirs[ruler] = &familyDir{wMembers: wm, helperSets: sets}
	}
	return dirs, nil
}

// unpackIDs decodes a packed sorted ID vector and range-checks it.
func unpackIDs(data []byte, n int) ([]int, error) {
	ids, err := persist.UnpackSorted(data)
	if err != nil {
		return nil, err
	}
	if len(ids) > 0 && ids[len(ids)-1] >= n {
		return nil, fmt.Errorf("node ID %d out of range (n=%d)", ids[len(ids)-1], n)
	}
	return ids, nil
}

// Restore replaces the cache's contents with a snapshot recorded for an
// n-node graph, resolving the deduplicated cluster references against the
// structural cache (which the caller must have restored first). A dangling
// reference — a session slot whose µ entry, ruler slot, or cluster
// directory is missing from clusters — is an error, and the caller treats
// it as a cold start. Restoring a snapshot recorded under a different seed
// is safe — the collective membership agreement degrades every stale entry
// to a rebuild — but restoring one from a different graph must be
// prevented by the caller (the facade keys cache files by graph
// fingerprint and seed).
func (c *SessionCache) Restore(snap CacheSnapshot, n int, clusters *helpers.ClusterCache) error {
	if clusters == nil && len(snap.Entries) > 0 {
		return fmt.Errorf("routing: cache snapshot needs a structural cluster cache to resolve against")
	}
	entries := map[sessionKey]*sessionEntry{}
	order := make([]sessionKey, 0, len(snap.Entries))
	for i, es := range snap.Entries {
		if len(es.Filled) != n || len(es.InS) != n || len(es.InR) != n ||
			len(es.FamS.Helps) != n || len(es.FamR.Helps) != n {
			return fmt.Errorf("routing: cache snapshot entry %d sized for %d nodes, want %d", i, len(es.Filled), n)
		}
		key := sessionKey{
			kS: es.Key.KS, kR: es.Key.KR, pS: es.Key.PS, pR: es.Key.PR,
			muS: es.Key.MuS, muR: es.Key.MuR,
			hashKFactor: es.Key.HashKFactor, qBoost: es.Key.QBoost,
		}
		if _, dup := entries[key]; dup {
			return fmt.Errorf("routing: cache snapshot has duplicate entry for kS=%d kR=%d", es.Key.KS, es.Key.KR)
		}
		dirsS, err := decodeFamily(es.FamS, n)
		if err != nil {
			return fmt.Errorf("routing: cache snapshot entry %d: %w", i, err)
		}
		dirsR, err := decodeFamily(es.FamR, n)
		if err != nil {
			return fmt.Errorf("routing: cache snapshot entry %d: %w", i, err)
		}
		e := newSessionEntry(n)
		var hash *bitrand.KWiseHash
		for id := 0; id < n; id++ {
			if !es.Filled[id] {
				continue
			}
			if hash == nil {
				if len(es.HashSeed) == 0 {
					return fmt.Errorf("routing: cache snapshot entry %d has filled slots but no hash seed", i)
				}
				hash = bitrand.FromSeed(es.HashSeed, n)
			}
			famS, err := restoreFamily(clusters, es.Key.MuS, id, dirsS, es.FamS.Helps[id], es.InS[id], n)
			if err != nil {
				return fmt.Errorf("routing: cache snapshot entry %d node %d (S family): %w", i, id, err)
			}
			famR, err := restoreFamily(clusters, es.Key.MuR, id, dirsR, es.FamR.Helps[id], es.InR[id], n)
			if err != nil {
				return fmt.Errorf("routing: cache snapshot entry %d node %d (R family): %w", i, id, err)
			}
			e.famS[id], e.famR[id] = famS, famR
			e.hash[id] = hash
			e.inS[id], e.inR[id] = es.InS[id], es.InR[id]
			e.filled[id] = true
		}
		entries[key] = e
		order = append(order, key)
	}
	c.mu.Lock()
	c.entries = entries
	c.order = order
	c.mu.Unlock()
	return nil
}

// restoreFamily reassembles one node's familySnap from the structural
// cluster cache (ruler assignment, distance, shared member directory) and
// the session snapshot's per-cluster tables. The shared slices and the
// helper-set map are attached by reference — every member of a cluster
// binds the same objects, which is also what keeps the restored cache's
// memory footprint at one copy per cluster.
func restoreFamily(clusters *helpers.ClusterCache, mu, id int, dirs map[int]*familyDir, packedHelps []byte, inW bool, n int) (familySnap, error) {
	ruler, dist, members, ok := clusters.Structure(mu, id)
	if !ok {
		return familySnap{}, fmt.Errorf("dangling reference: no structural entry for µ=%d", mu)
	}
	dir, ok := dirs[ruler]
	if !ok {
		return familySnap{}, fmt.Errorf("dangling reference: no per-cluster data for ruler %d", ruler)
	}
	helps, err := unpackIDs(packedHelps, n)
	if err != nil {
		return familySnap{}, err
	}
	res := helpers.Result{
		Ruler:     ruler,
		RulerDist: dist,
		Members:   members,
		WMembers:  dir.wMembers,
		Helps:     helps,
		InW:       inW,
		Mu:        mu,
	}
	return familySnap{res: res, helperSets: dir.helperSets, myOwners: helpersOf(id, dir.helperSets)}, nil
}

// Len reports the number of cached entries (for tests and diagnostics).
func (c *SessionCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
