package routing

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/helpers"
	"repro/internal/sim"
)

// routePipeline runs one full routing instance through Pipeline (so the
// goroutine and machine forms share one call path) and returns the
// delivered tokens and metrics.
func routePipeline(t *testing.T, g *graph.Graph, specs []Spec, eng sim.Engine, p Params) ([][]Token, sim.Metrics) {
	t.Helper()
	out, m, err := sim.RunPipeline(g, sim.Config{Seed: 9, Engine: eng}, Pipeline(specs, p))
	if err != nil {
		t.Fatal(err)
	}
	return out, m
}

// TestSessionCacheReuseAcrossRuns pins the cache contract on every engine:
// the first cached run pays exactly the 2·ceil(log2 n)-round agreement on
// top of the uncached setup, a repeat run with identical membership reuses
// the session (strictly fewer rounds), and neither changes any delivered
// token.
func TestSessionCacheReuseAcrossRuns(t *testing.T) {
	g := graph.Grid(7, 7)
	n := g.N()
	specs := buildInstance(n, 0.4, 0.4, 2, 5)
	if err := Validate(specs); err != nil {
		t.Fatal(err)
	}
	base, baseM := routePipeline(t, g, specs, sim.EngineLegacy, Params{})
	agreeRounds := 2 * sim.Log2Ceil(n)

	for _, eng := range stepEngines {
		cache := NewSessionCache()
		p := Params{Cache: cache}
		first, firstM := routePipeline(t, g, specs, eng, p)
		second, secondM := routePipeline(t, g, specs, eng, p)
		if !reflect.DeepEqual(first, base) || !reflect.DeepEqual(second, base) {
			t.Errorf("%s: cached runs deliver different tokens than uncached", eng)
		}
		if firstM.Rounds != baseM.Rounds+agreeRounds {
			t.Errorf("%s: first cached run took %d rounds, want uncached %d + agreement %d",
				eng, firstM.Rounds, baseM.Rounds, agreeRounds)
		}
		if secondM.Rounds >= firstM.Rounds {
			t.Errorf("%s: cache hit saved nothing: %d rounds vs %d", eng, secondM.Rounds, firstM.Rounds)
		}
	}
}

// TestSessionCacheMembershipMismatchRebuilds changes one node's membership
// between runs while keeping every globally known parameter identical: the
// collective agreement must detect the stale entry and rebuild (full setup
// cost again), and delivery must stay correct.
func TestSessionCacheMembershipMismatchRebuilds(t *testing.T) {
	g := graph.Grid(7, 7)
	n := g.N()
	specs := buildInstance(n, 0.4, 0.4, 2, 5)

	// A second instance with the same key but one more node in S (a sender
	// with no tokens is legal), so exactly one node's slot mismatches.
	specsB := make([]Spec, n)
	copy(specsB, specs)
	extra := -1
	for v := range specsB {
		if !specsB[v].InS {
			extra = v
			break
		}
	}
	if extra < 0 {
		t.Skip("instance saturated S")
	}
	specsB[extra].InS = true

	_, baseBM := routePipeline(t, g, specsB, sim.EngineLegacy, Params{})
	agreeRounds := 2 * sim.Log2Ceil(n)

	cache := NewSessionCache()
	p := Params{Cache: cache}
	routePipeline(t, g, specs, sim.EngineLegacy, p) // populate
	gotB, rebuildM := routePipeline(t, g, specsB, sim.EngineLegacy, p)
	if rebuildM.Rounds != baseBM.Rounds+agreeRounds {
		t.Errorf("mismatch run took %d rounds, want full rebuild %d + agreement %d",
			rebuildM.Rounds, baseBM.Rounds, agreeRounds)
	}
	for v := range specsB {
		if len(gotB[v]) != len(specsB[v].Expect) {
			t.Fatalf("node %d received %d tokens after rebuild, want %d", v, len(gotB[v]), len(specsB[v].Expect))
		}
	}

	// And the rebuilt entry serves the new membership on the next run.
	_, hitM := routePipeline(t, g, specsB, sim.EngineLegacy, p)
	if hitM.Rounds >= rebuildM.Rounds {
		t.Errorf("post-rebuild hit saved nothing: %d vs %d rounds", hitM.Rounds, rebuildM.Rounds)
	}
}

// TestSessionCacheEviction pins the FIFO bound: distinct keys beyond
// maxSessionEntries evict the oldest entry (routing still correct), and a
// re-keyed construction after eviction rebuilds rather than binding stale
// state.
func TestSessionCacheEviction(t *testing.T) {
	g := graph.Grid(5, 5)
	n := g.N()
	specs := buildInstance(n, 0.5, 0.5, 1, 3)
	cache := NewSessionCache()

	// Distinct HashKFactor values produce distinct keys.
	for hk := 1; hk <= maxSessionEntries+2; hk++ {
		p := Params{Cache: cache, HashKFactor: hk}
		out, _ := routePipeline(t, g, specs, sim.EngineLegacy, p)
		for v := range specs {
			if len(out[v]) != len(specs[v].Expect) {
				t.Fatalf("hk=%d: node %d received %d tokens, want %d", hk, v, len(out[v]), len(specs[v].Expect))
			}
		}
	}
	if got := len(cache.entries); got > maxSessionEntries {
		t.Fatalf("cache holds %d entries, cap %d", got, maxSessionEntries)
	}
	// The first key was evicted: rerunning it must rebuild (uncached
	// rounds + agreement), not bind stale state, and still deliver.
	_, baseM := routePipeline(t, g, specs, sim.EngineLegacy, Params{HashKFactor: 1})
	out, m := routePipeline(t, g, specs, sim.EngineLegacy, Params{Cache: cache, HashKFactor: 1})
	if m.Rounds != baseM.Rounds+2*sim.Log2Ceil(n) {
		t.Errorf("evicted key reran in %d rounds, want rebuild %d + agreement %d",
			m.Rounds, baseM.Rounds, 2*sim.Log2Ceil(n))
	}
	for v := range specs {
		if len(out[v]) != len(specs[v].Expect) {
			t.Fatalf("post-eviction node %d received %d tokens, want %d", v, len(out[v]), len(specs[v].Expect))
		}
	}
}

// TestSessionCacheSnapshotRestore pins the persistence contract at package
// level: a restored snapshot serves a warm run with exactly the same round
// count as an in-memory hit and byte-identical tokens, on every engine —
// and the snapshot survives the gob codec the persist package uses. The
// v2 snapshot is deduplicated against the cluster cache, so the test
// threads a helpers.ClusterCache through the runs and round-trips its
// snapshot alongside.
func TestSessionCacheSnapshotRestore(t *testing.T) {
	g := graph.Grid(7, 7)
	n := g.N()
	specs := buildInstance(n, 0.4, 0.4, 2, 5)

	cache := NewSessionCache()
	clusters := helpers.NewClusterCache()
	params := Params{Cache: cache, Helpers: helpers.Params{Clusters: clusters}}
	routePipeline(t, g, specs, sim.EngineLegacy, params) // populate
	memOut, memM := routePipeline(t, g, specs, sim.EngineLegacy, params)

	// Round-trip both snapshots through gob, as the on-disk codec does.
	sessSnap, err := cache.Snapshot(clusters)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(sessSnap); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(clusters.Snapshot()); err != nil {
		t.Fatal(err)
	}
	dec := gob.NewDecoder(bytes.NewReader(buf.Bytes()))
	var snap CacheSnapshot
	var clusterSnap helpers.ClusterSnapshot
	if err := dec.Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&clusterSnap); err != nil {
		t.Fatal(err)
	}

	for _, eng := range stepEngines {
		restoredClusters := helpers.NewClusterCache()
		if err := restoredClusters.Restore(clusterSnap, n); err != nil {
			t.Fatal(err)
		}
		restored := NewSessionCache()
		if err := restored.Restore(snap, n, restoredClusters); err != nil {
			t.Fatal(err)
		}
		out, m := routePipeline(t, g, specs, eng, Params{Cache: restored, Helpers: helpers.Params{Clusters: restoredClusters}})
		if !reflect.DeepEqual(out, memOut) {
			t.Errorf("%s: warm-disk run delivers different tokens than warm-memory", eng)
		}
		if m != memM {
			t.Errorf("%s: warm-disk metrics %+v differ from warm-memory %+v", eng, m, memM)
		}
	}

	// Shape validation: a snapshot for the wrong n is rejected.
	if err := NewSessionCache().Restore(snap, n+1, clusters); err == nil {
		t.Error("restoring a snapshot recorded for a different node count succeeded")
	}

	// Dangling dedup references are rejected: a session snapshot resolved
	// against an empty cluster cache has nothing to attach its members to.
	if err := NewSessionCache().Restore(snap, n, helpers.NewClusterCache()); err == nil {
		t.Error("restoring against an empty cluster cache succeeded")
	}
}

// TestSnapshotOmitsDanglingSessions pins the eviction-skew guard: the
// session and cluster caches evict independently, so a live session whose
// µ entries are gone from the cluster cache must be omitted from the
// snapshot — writing it would produce a file set every later load rejects
// wholesale.
func TestSnapshotOmitsDanglingSessions(t *testing.T) {
	g := graph.Grid(7, 7)
	n := g.N()
	specs := buildInstance(n, 0.4, 0.4, 2, 5)

	cache := NewSessionCache()
	clusters := helpers.NewClusterCache()
	routePipeline(t, g, specs, sim.EngineLegacy, Params{Cache: cache, Helpers: helpers.Params{Clusters: clusters}})

	full, err := cache.Snapshot(clusters)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Entries) == 0 {
		t.Fatal("populated cache snapshotted empty")
	}

	// Against an empty cluster cache every session dangles: all entries
	// must be dropped, and the result must still restore cleanly.
	empty := helpers.NewClusterCache()
	filtered, err := cache.Snapshot(empty)
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered.Entries) != 0 {
		t.Errorf("snapshot kept %d entries with no structural cache to resolve them", len(filtered.Entries))
	}
	if err := NewSessionCache().Restore(filtered, n, empty); err != nil {
		t.Errorf("filtered snapshot does not restore: %v", err)
	}
	if _, err := cache.Snapshot(nil); err != nil {
		t.Errorf("nil cluster cache: %v", err)
	}
}
