// Package routing implements the token routing protocol of paper §2
// (Algorithms 2-4, Theorem 2.2): given sender nodes S and receiver nodes R,
// where each sender holds at most kS tokens, each receiver expects at most
// kR tokens and knows their labels, deliver every token to its receiver in
// O~(K/n + sqrt(kS) + sqrt(kR)) rounds, K = |S|·kS + |R|·kR.
//
// The protocol (§2.2):
//
//  1. Compute helper families {H_s} and {H'_r} with Algorithm 1
//     (package helpers), µ_S = min(sqrt(kS), 1/p_S), µ_R analogous.
//  2. Routing-Preparation (Algorithm 3): cluster-local flooding lets every
//     sender/receiver learn its helper set, after which tokens
//     (resp. expected labels) are spread balanced over the helpers.
//  3. Routing-Scheme (Algorithm 4): sender-helpers push tokens to
//     pseudo-random intermediate nodes determined by a shared k-wise
//     independent hash of the token label (package bitrand, broadcast as an
//     O(log^2 n)-bit seed per Lemma 2.3); receiver-helpers then request
//     their assigned labels from the same intermediates, which answer.
//  4. Receivers collect their tokens from their helpers by cluster-local
//     flooding.
//
// Deviations from the paper, all constant-factor and documented in
// DESIGN.md: phase lengths that the paper states as w.h.p. bounds are
// computed exactly with O(log n)-round global max-aggregations (Lemma B.2),
// which keeps every run correct (never truncated) while preserving the
// asymptotic round complexity.
package routing

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bitrand"
	"repro/internal/flatmap"
	"repro/internal/helpers"
	"repro/internal/ncc"
	"repro/internal/sim"
)

// Message kinds.
const (
	kindToken   sim.Kind = 0x7d00 + iota // sender-helper -> intermediate
	kindRequest                          // receiver-helper -> intermediate
	kindAnswer                           // intermediate -> receiver-helper
)

// Label identifies one token: sender, receiver, and an index i
// distinguishing multiple tokens between the same pair (paper §2.2).
type Label struct {
	S, R int
	I    int64
}

// Token is a label plus its O(log n)-bit payload.
type Token struct {
	Label
	Value int64
}

// pack encodes a label as a field element for hashing and as the exact key
// of the intermediate token store, staying below the Mersenne prime
// 2^61-1. Injectivity requires IDs < 2^14 (checked by NewSession) and
// I < 2^30 (checked here; clique.Slot caps tags at 2^29, so the CLIQUE
// simulation's I = 2·tag+1 always fits). Out-of-range indices panic,
// surfacing as a run error via sim.Run, rather than silently aliasing.
func (l Label) pack() uint64 {
	if uint64(l.I) >= 1<<30 {
		panic(fmt.Errorf("routing: token index %d exceeds the 2^30 label-key limit", l.I))
	}
	return uint64(l.S)<<44 | uint64(l.R)<<30 | uint64(l.I)
}

// Spec is one node's view of a token routing instance. KS, KR, PS and PR
// must be identical at every node (globally known parameters); Send/Expect
// are the node's own inputs.
type Spec struct {
	// Send holds the tokens this node must send (empty unless a sender).
	Send []Token
	// Expect holds the labels this node must receive (empty unless a
	// receiver). Receivers know their labels per the problem statement.
	Expect []Label
	// InS / InR mark membership in the sender and receiver sets.
	InS, InR bool
	// KS and KR are global upper bounds on tokens per sender / receiver.
	KS, KR int
	// PS and PR are the sampling probabilities of S and R (Theorem 2.2's
	// p_S = n^-eps, p_R = n^-delta); they determine µ_S and µ_R.
	PS, PR float64
}

// Params tunes constants; the zero value is ready to use.
type Params struct {
	// Helpers configures Algorithm 1.
	Helpers helpers.Params
	// MuS / MuR override the derived µ values when positive.
	MuS, MuR int
	// HashKFactor scales the independence parameter k = HashKFactor*logN
	// of the intermediate-choosing hash (Lemma D.2 wants Θ(log n)).
	// Zero means 3.
	HashKFactor int
	// Cache, if non-nil, reuses the token-independent session state across
	// constructions with matching parameters and memberships, paying one
	// 2·ceil(log2 n)-round collective agreement instead of the full helper
	// family / hash-broadcast setup on a hit. See SessionCache.
	Cache *SessionCache
}

func (p Params) withDefaults() Params {
	if p.HashKFactor <= 0 {
		p.HashKFactor = 3
	}
	return p
}

// derivedMus resolves the helper-family sizes µ_S and µ_R from the
// instance parameters, honoring the overrides (shared by every session
// construction path, goroutine and machine, cached and not).
func derivedMus(p Params, kS, kR int, pS, pR float64) (muS, muR int) {
	muS = p.MuS
	if muS <= 0 {
		muS = mu(kS, pS)
	}
	muR = p.MuR
	if muR <= 0 {
		muR = mu(kR, pR)
	}
	return muS, muR
}

// mu computes floor(min(sqrt(k), 1/p)), clamped to >= 1 (Algorithm 2).
func mu(k int, prob float64) int {
	m := math.Sqrt(float64(k))
	if prob > 0 {
		if inv := 1 / prob; inv < m {
			m = inv
		}
	}
	v := int(m)
	if v < 1 {
		v = 1
	}
	return v
}

// helperAnnounce floods helper-set membership inside clusters so that every
// sender (and every helper of it) learns the full, identically-ordered
// helper set.
type helperAnnounce struct {
	Ruler  int
	W      int
	Helper int
}

// tokenBatch carries one owner's complete item batch (its tokens, or its
// expected labels with Value ignored) through its cluster during
// Routing-Preparation. An owner's items enter the flood together at the
// owner and spread by first-arrival forwarding, so they provably travel in
// lockstep; flooding them as one immutable shared batch is
// message-for-message identical to flooding the records individually, but
// needs one dedup check and one stored slice header per (node, owner)
// instead of per record. Items must never be mutated by a receiver.
type tokenBatch struct {
	Ruler int
	Owner int // the sender or receiver the items belong to
	Items []Token
}

// deliveredBatch carries one receiver-helper's answered tokens back
// through the cluster. Helpers hold disjoint label sets (labels are
// partitioned among a receiver's helpers by rank), and a helper injects
// its batch exactly once, so per-injector dedup is equivalent to
// per-label dedup.
type deliveredBatch struct {
	Ruler    int
	Injector int
	Items    []Token
}

// family bundles one helper family (Algorithm 1 output) with its
// cluster-local directory and the per-owner batch directory of the
// current spread call (reused across Route calls).
type family struct {
	res        helpers.Result
	mu         int
	helperSets map[int][]int
	myOwners   []int // owners whose helper set contains this node, sorted
	items      map[int][]Token
}

// Session holds the token-independent state of the protocol: the helper
// families, the cluster-local helper directories, and the shared hash
// function. Algorithm 8 (the CLIQUE simulation) runs one routing instance
// per simulated round over the same sender/receiver sets; reusing the
// session re-uses Algorithm 1's output, which the paper's cost accounting
// permits (helper sets depend only on S, R and µ, not on the tokens).
type Session struct {
	env    *sim.Env
	params Params
	famS   family
	famR   family
	hash   *bitrand.KWiseHash

	// inter parks tokens at this node in its intermediate role, keyed by
	// Label.pack() — injective under the package invariants (IDs < 2^14,
	// I < 2^30; see Label.pack and clique.Slot's tag contract). Reused
	// across Route calls; flatmap's shrink-on-reset policy keeps one giant
	// instance from pinning its peak capacity for the session lifetime.
	inter      flatmap.Map[int64]
	replyQueue []reply
}

// reply is one queued intermediate-to-receiver-helper answer.
type reply struct {
	to  int
	tok Token
}

// NewSession computes helper families for the given sender/receiver
// membership and broadcasts the hash seed. Collective; all nodes must agree
// on kS, kR, pS, pR and params. The protocol's label keys (Label.pack)
// are injective only for node IDs below 2^14, so larger networks are
// rejected (the panic surfaces as a run error via sim.Run).
func NewSession(env *sim.Env, inS, inR bool, kS, kR int, pS, pR float64, params Params) *Session {
	p := params.withDefaults()
	n := env.N()
	if n > 1<<14 {
		panic(fmt.Errorf("routing: n = %d exceeds the 2^14 node-ID limit of the label keying (Label.pack)", n))
	}
	muS, muR := derivedMus(p, kS, kR, pS, pR)
	if p.Cache != nil {
		return p.Cache.session(env, inS, inR, keyOf(p, kS, kR, pS, pR, muS, muR), muS, muR, p)
	}
	return buildSession(env, inS, inR, muS, muR, p)
}

// buildSession is the uncached session construction: Algorithm 1 twice,
// the hash-seed broadcast, and the cluster-local helper announcements.
func buildSession(env *sim.Env, inS, inR bool, muS, muR int, p Params) *Session {
	n := env.N()
	logN := sim.Log2Ceil(n)

	// Helper families for senders and receivers (Algorithm 1 twice).
	resS := helpers.Compute(env, inS, muS, p.Helpers)
	resR := helpers.Compute(env, inR, muR, p.Helpers)

	// Shared hash function. Node 0 draws the seed; everyone gets it via a
	// binomial broadcast (Lemma 2.3: O(log^2 n) bits in O~(1) rounds).
	kHash := p.HashKFactor * logN
	var seedWords []int64
	if env.ID() == 0 {
		h := bitrand.NewKWiseHash(kHash, n, env.Rand())
		for _, c := range h.Seed() {
			seedWords = append(seedWords, int64(c))
		}
	}
	words := ncc.BroadcastWords(env, 0, seedWords, kHash)
	seed := make([]uint64, len(words))
	for i, w := range words {
		seed[i] = uint64(w)
	}

	// Algorithm 3, first loop: cluster-local flooding of helper
	// memberships, separately per family.
	s := &Session{
		env:    env,
		params: p,
		famS:   family{res: resS, mu: muS, items: map[int][]Token{}},
		famR:   family{res: resR, mu: muR, items: map[int][]Token{}},
		hash:   bitrand.FromSeed(seed, n),
	}
	s.famS.helperSets = announceHelpers(env, resS, muS)
	s.famR.helperSets = announceHelpers(env, resR, muR)
	s.famS.myOwners = helpersOf(env.ID(), s.famS.helperSets)
	s.famR.myOwners = helpersOf(env.ID(), s.famR.helperSets)
	return s
}

// Route runs the full token routing protocol collectively. Every node must
// call it in the same round with consistent global fields. It returns the
// tokens this node received (sorted), which is the node's Expect set with
// values filled in when the instance is consistent.
func Route(env *sim.Env, spec Spec, params Params) []Token {
	s := NewSession(env, spec.InS, spec.InR, spec.KS, spec.KR, spec.PS, spec.PR, params)
	return s.Route(spec.Send, spec.Expect)
}

// Pipeline returns the Theorem 2.2 protocol as a sim.Pipeline: specs[v] is
// node v's view of the instance, and the per-node result is the node's
// received tokens. The machine form is NewRouteProgram, so the pipeline is
// step-native on every engine.
func Pipeline(specs []Spec, params Params) sim.Pipeline[[]Token] {
	return sim.Pipeline[[]Token]{
		Run: func(env *sim.Env) []Token {
			return Route(env, specs[env.ID()], params)
		},
		Machine: func(env *sim.Env, done func([]Token)) sim.StepProgram {
			return NewRouteProgram(env, specs[env.ID()], params, done)
		},
	}
}

// Route runs one routing instance over the session's helper families:
// Algorithm 3's token spreading followed by Algorithm 4's hash-routed
// forwarding and the final cluster-local collection.
func (s *Session) Route(send []Token, expect []Label) []Token {
	env := s.env
	budget := env.GlobalCap()
	hash := s.hash

	// Algorithm 3, second loop: flood tokens and expected labels to the
	// clusters; helpers pick their balanced share by rank.
	sendTokens := canonicalTokens(send)
	myTokenJobs := s.famS.spread(env, sendTokens)
	expectTokens := make([]Token, len(expect))
	for i, l := range expect {
		expectTokens[i] = Token{Label: l}
	}
	expectTokens = canonicalTokens(expectTokens)
	myLabelJobs := s.famR.spread(env, expectTokens)

	// Algorithm 4: forward tokens to intermediates. The phase length is the
	// exact global maximum load, aggregated in O(log n) rounds.
	maxSend := int(ncc.Aggregate(env, int64(len(myTokenJobs)), ncc.AggMax))
	fwdRounds := ceilDiv(maxSend, budget)
	inter := &s.inter
	inter.Reset()
	ji := 0
	for round := 0; round < fwdRounds; round++ {
		for s := 0; s < budget && ji < len(myTokenJobs); s++ {
			t := myTokenJobs[ji]
			ji++
			env.SendGlobal(hash.Hash(t.pack()), kindToken, int64(t.S), int64(t.R), t.I, t.Value)
		}
		in := env.Step()
		for _, gm := range in.Global {
			if gm.Kind == kindToken {
				inter.Put(Label{S: int(gm.F0), R: int(gm.F1), I: gm.F2}.pack(), gm.F3)
			}
		}
	}

	// Algorithm 4: receiver-helpers request their labels; the
	// intermediates answer, pacing replies at the cap. Drain time is
	// bounded by the max number of tokens parked at one intermediate.
	maxReq := int(ncc.Aggregate(env, int64(len(myLabelJobs)), ncc.AggMax))
	maxHeld := int(ncc.Aggregate(env, int64(inter.Len()), ncc.AggMax))
	reqRounds := ceilDiv(maxReq, budget) + ceilDiv(maxHeld, budget) + 1

	var gotTokens []Token
	replyQueue := s.replyQueue[:0]
	rq := 0 // head of the reply queue
	li := 0
	for round := 0; round < reqRounds; round++ {
		sent := 0
		for ; sent < budget && li < len(myLabelJobs); sent++ {
			l := myLabelJobs[li].Label
			li++
			env.SendGlobal(hash.Hash(l.pack()), kindRequest, int64(l.S), int64(l.R), l.I, 0)
		}
		// Remaining budget answers queued requests.
		for ; sent < budget && rq < len(replyQueue); sent++ {
			r := replyQueue[rq]
			rq++
			env.SendGlobal(r.to, kindAnswer, int64(r.tok.S), int64(r.tok.R), r.tok.I, r.tok.Value)
		}
		in := env.Step()
		for _, gm := range in.Global {
			switch gm.Kind {
			case kindRequest:
				l := Label{S: int(gm.F0), R: int(gm.F1), I: gm.F2}
				if v, ok := inter.Get(l.pack()); ok {
					replyQueue = append(replyQueue, reply{to: gm.Src, tok: Token{Label: l, Value: v}})
				}
			case kindAnswer:
				gotTokens = append(gotTokens, Token{
					Label: Label{S: int(gm.F0), R: int(gm.F1), I: gm.F2},
					Value: gm.F3,
				})
			}
		}
	}
	// Flush any replies still queued (possible when requests bunched up in
	// the final rounds): drain with a short aggregated extension.
	for {
		left := int(ncc.Aggregate(env, int64(len(replyQueue)-rq), ncc.AggMax))
		if left == 0 {
			break
		}
		for i := 0; i < ceilDiv(left, budget); i++ {
			sent := 0
			for ; sent < budget && rq < len(replyQueue); sent++ {
				r := replyQueue[rq]
				rq++
				env.SendGlobal(r.to, kindAnswer, int64(r.tok.S), int64(r.tok.R), r.tok.I, r.tok.Value)
			}
			in := env.Step()
			for _, gm := range in.Global {
				if gm.Kind == kindAnswer {
					gotTokens = append(gotTokens, Token{
						Label: Label{S: int(gm.F0), R: int(gm.F1), I: gm.F2},
						Value: gm.F3,
					})
				}
			}
		}
	}
	s.replyQueue = replyQueue

	// Receivers collect tokens from their helpers via cluster-local
	// flooding (final loop of Algorithm 4).
	collected := s.collect(env, gotTokens)
	return canonicalTokens(collected)
}

// announceHelpers floods (w, helper) pairs within clusters for 2β rounds so
// that all cluster members agree on each H_w. It returns the helper
// directory of this node's cluster (w -> sorted helper IDs). Dedup is by
// the packed pair (w, helper), both below 2^31.
func announceHelpers(env *sim.Env, res helpers.Result, mu int) map[int][]int {
	n := env.N()
	beta := 2 * mu * sim.Log2Ceil(n)
	pair := func(w, helper int) uint64 { return uint64(w)<<32 | uint64(uint32(helper)) }
	var known flatmap.Set
	sets := map[int][]int{}
	record := func(w, helper int) bool {
		if known.Add(pair(w, helper)) {
			sets[w] = append(sets[w], helper)
			return true
		}
		return false
	}
	var delta helperAnnounces
	for _, w := range res.Helps {
		record(w, env.ID())
		delta = append(delta, helperAnnounce{Ruler: res.Ruler, W: w, Helper: env.ID()})
	}
	for step := 0; step < 2*beta; step++ {
		if len(delta) > 0 {
			env.BroadcastLocal(delta)
		}
		in := env.Step()
		var next helperAnnounces
		for _, lm := range in.Local {
			anns, ok := lm.Payload.(helperAnnounces)
			if !ok {
				continue
			}
			for _, a := range anns {
				if a.Ruler != res.Ruler {
					continue
				}
				if record(a.W, a.Helper) {
					next = append(next, a)
				}
			}
		}
		delta = next
	}
	for w := range sets {
		sort.Ints(sets[w])
	}
	return sets
}

// spread floods each owner's item batch through its cluster for 2β rounds;
// every helper picks the share assigned to it by rank (item j goes to
// helper j mod |H_w|), which both the owner and all helpers compute
// identically from the sorted helper set. It returns the items THIS node
// is responsible for as a helper. myItems must be canonical (sorted,
// deduplicated) and is shared with the cluster, so the caller must not
// mutate it afterwards.
func (f *family) spread(env *sim.Env, myItems []Token) []Token {
	n := env.N()
	beta := 2 * f.mu * sim.Log2Ceil(n)
	me := env.ID()

	clear(f.items)
	var delta tokenBatches
	if len(myItems) > 0 {
		f.items[me] = myItems
		delta = append(delta, tokenBatch{Ruler: f.res.Ruler, Owner: me, Items: myItems})
	}
	for step := 0; step < 2*beta; step++ {
		if len(delta) > 0 {
			env.BroadcastLocal(delta)
		}
		in := env.Step()
		var next tokenBatches
		for _, lm := range in.Local {
			tbs, ok := lm.Payload.(tokenBatches)
			if !ok {
				continue
			}
			for _, tb := range tbs {
				if tb.Ruler != f.res.Ruler {
					continue
				}
				if _, seen := f.items[tb.Owner]; seen {
					continue
				}
				f.items[tb.Owner] = tb.Items
				next = append(next, tb)
			}
		}
		delta = next
	}

	// Pick my share: for every owner I help, take items by rank. Batches
	// are canonical already (the owner floods its canonicalTokens output),
	// so rank selection reads them directly.
	var mine []Token
	for _, w := range f.myOwners {
		hs := f.helperSets[w]
		rank := sort.SearchInts(hs, me)
		toks := f.items[w]
		for j := rank; j < len(toks); j += len(hs) {
			mine = append(mine, toks[j])
		}
	}
	return canonicalTokens(mine)
}

// helpersOf lists the owners w whose helper set contains node id, sorted.
func helpersOf(id int, helperSets map[int][]int) []int {
	var out []int
	for w, hs := range helperSets {
		i := sort.SearchInts(hs, id)
		if i < len(hs) && hs[i] == id {
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}

// collect floods each helper's answered-token batch through the receiver
// clusters for 2β rounds; each receiver keeps the tokens addressed to it
// (final loop of Algorithm 4).
func (s *Session) collect(env *sim.Env, gotTokens []Token) []Token {
	n := env.N()
	beta := 2 * s.famR.mu * sim.Log2Ceil(n)
	me := env.ID()
	seen := map[int]bool{}
	var delta deliveredBatches
	var out []Token
	if len(gotTokens) > 0 {
		seen[me] = true
		delta = append(delta, deliveredBatch{Ruler: s.famR.res.Ruler, Injector: me, Items: gotTokens})
		for _, t := range gotTokens {
			if t.R == me {
				out = append(out, t)
			}
		}
	}
	for step := 0; step < 2*beta; step++ {
		if len(delta) > 0 {
			env.BroadcastLocal(delta)
		}
		in := env.Step()
		var next deliveredBatches
		for _, lm := range in.Local {
			dbs, ok := lm.Payload.(deliveredBatches)
			if !ok {
				continue
			}
			for _, db := range dbs {
				if db.Ruler != s.famR.res.Ruler {
					continue
				}
				if seen[db.Injector] {
					continue
				}
				seen[db.Injector] = true
				next = append(next, db)
				for _, t := range db.Items {
					if t.R == me {
						out = append(out, t)
					}
				}
			}
		}
		delta = next
	}
	return out
}

// canonicalTokens sorts tokens by (S, R, I) and drops duplicates.
func canonicalTokens(ts []Token) []Token {
	out := append([]Token(nil), ts...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.S != b.S {
			return a.S < b.S
		}
		if a.R != b.R {
			return a.R < b.R
		}
		return a.I < b.I
	})
	dedup := out[:0]
	for i, t := range out {
		if i == 0 || t.Label != out[i-1].Label {
			dedup = append(dedup, t)
		}
	}
	return dedup
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// Validate checks an instance assembled from all nodes' specs for
// consistency: every expected label is sent exactly once, senders'
// per-node loads respect KS, receivers' loads respect KR, labels are
// distinct. Tests call it before routing.
func Validate(specs []Spec) error {
	sent := map[Label]bool{}
	for v, sp := range specs {
		if len(sp.Send) > 0 && !sp.InS {
			return fmt.Errorf("routing: node %d sends but is not in S", v)
		}
		if len(sp.Expect) > 0 && !sp.InR {
			return fmt.Errorf("routing: node %d expects but is not in R", v)
		}
		if len(sp.Send) > sp.KS {
			return fmt.Errorf("routing: node %d sends %d > KS=%d", v, len(sp.Send), sp.KS)
		}
		if len(sp.Expect) > sp.KR {
			return fmt.Errorf("routing: node %d expects %d > KR=%d", v, len(sp.Expect), sp.KR)
		}
		for _, t := range sp.Send {
			if t.S != v {
				return fmt.Errorf("routing: node %d sends token labeled with sender %d", v, t.S)
			}
			if sent[t.Label] {
				return fmt.Errorf("routing: duplicate token label %+v", t.Label)
			}
			sent[t.Label] = true
		}
	}
	for v, sp := range specs {
		for _, l := range sp.Expect {
			if l.R != v {
				return fmt.Errorf("routing: node %d expects label addressed to %d", v, l.R)
			}
			if !sent[l] {
				return fmt.Errorf("routing: label %+v expected but never sent", l)
			}
		}
	}
	return nil
}
