// Package serve is the resident query-serving layer: it keeps the output
// of one APSP run — the distance matrix and the derived next-hop
// forwarding tables — in memory behind an HTTP/JSON API, turning the
// batch simulator into the long-lived "efficient IP-routing" service the
// paper's introduction motivates.
//
// The concurrency contract is immutable-publish / atomic-swap: a Tables
// value is never mutated after Publish; reloads build a complete new
// Tables and swap the server's pointer atomically. Every request loads
// the pointer exactly once and answers entirely from that snapshot, so
// under a mid-flight swap each response is consistent with either the old
// or the new table — never a mix (the reload race test pins this under
// the race detector). Compute (HYBRID rounds) and serve (table lookups)
// are fully split: nothing in this package runs rounds.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// BuildInfo records how a Tables value was computed; it is served verbatim
// by /stats so clients (and the CLI end-to-end test) can observe the APSP
// round count and whether the build warm-started from the snapshot cache.
type BuildInfo struct {
	Graph  string `json:"graph"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	Seed   int64  `json:"seed"`
	Engine string `json:"engine"`
	// Rounds is the HYBRID round count of the APSP run that built the
	// tables — lower on a warm start, which is how warm engagement is
	// asserted externally.
	Rounds int `json:"apsp_rounds"`
	// WarmStructural/WarmSeed mirror hybrid.CacheLoadStatus for the load
	// that preceded the build.
	WarmStructural bool `json:"warm_structural"`
	WarmSeed       bool `json:"warm_seed"`
	// BuildMS is the wall-clock cost of the APSP run plus table
	// derivation.
	BuildMS float64 `json:"build_ms"`
}

// Tables is one immutable published generation of serving state: the
// graph it was computed on, the exact distance matrix, and the next-hop
// forwarding tables. Fields must not be mutated after the value is passed
// to New or Publish.
type Tables struct {
	G    *graph.Graph
	Dist [][]int64
	Next [][]int
	Info BuildInfo
}

// NewTables validates the shape of a generation (square n×n tables over
// g's node set) so a malformed publish fails at build time, not on a
// request path.
func NewTables(g *graph.Graph, dist [][]int64, next [][]int, info BuildInfo) (*Tables, error) {
	n := g.N()
	if len(dist) != n || len(next) != n {
		return nil, fmt.Errorf("serve: tables for %d nodes, graph has %d", len(dist), n)
	}
	for v := 0; v < n; v++ {
		if len(dist[v]) != n || len(next[v]) != n {
			return nil, fmt.Errorf("serve: row %d is %d×%d, want %d×%d", v, len(dist[v]), len(next[v]), n, n)
		}
	}
	info.N, info.M = n, g.M()
	return &Tables{G: g, Dist: dist, Next: next, Info: info}, nil
}

// Server answers distance and route queries from the current Tables
// generation. Create with New, swap generations with Publish, mount
// Handler on any http server. All methods are safe for concurrent use.
type Server struct {
	tables atomic.Pointer[Tables]
	start  time.Time

	// rebuild recomputes a fresh Tables generation on demand (nil until
	// SetRebuild); reloadMu serialises rebuilds so concurrent triggers
	// cannot stack APSP runs, and reloads counts completed swaps.
	rebuildMu sync.Mutex
	rebuild   func() (*Tables, error)
	reloadMu  sync.Mutex
	reloads   atomic.Int64

	// Degraded mode: a failed Reload keeps serving the last-good tables
	// but flips degraded and records the error, so /healthz and /stats
	// report the condition while queries keep being answered.
	degraded       atomic.Bool
	lastReloadErr  atomic.Value // of string
	reloadFailures atomic.Int64

	// Resilience knobs (Handler middleware reads these per request, so
	// they can be set before or after the handler is built).
	maxInflight    atomic.Int64 // 0 = unlimited
	inflight       atomic.Int64
	requestTimeout atomic.Int64 // nanoseconds; 0 = no deadline
	chaos          atomic.Value // of chaosBox

	distanceQueries atomic.Int64
	routeQueries    atomic.Int64
	unreachable     atomic.Int64
	badRequests     atomic.Int64
	panics          atomic.Int64
	loadShed        atomic.Int64
	timeouts        atomic.Int64
}

// ChaosHook is the seam the chaos test layer injects faults through. It
// is deliberately a tuple-of-primitives interface so internal/chaos can
// satisfy it structurally without this package importing it (chaos
// already imports dist and persist; a serve import would tangle the
// graph). HTTPFault is consulted once per request with the URL path and
// reports injected latency, a forced connection reset, and a forced
// handler panic; RebuildFault is consulted by Reload before the real
// rebuild runs.
type ChaosHook interface {
	HTTPFault(path string) (delay time.Duration, reset, panics bool)
	RebuildFault() error
}

// chaosBox wraps the hook so atomic.Value always stores one concrete type.
type chaosBox struct{ hook ChaosHook }

// SetChaos installs (or, with nil, removes) the fault-injection hook.
func (s *Server) SetChaos(h ChaosHook) { s.chaos.Store(chaosBox{h}) }

func (s *Server) chaosHook() ChaosHook {
	if v := s.chaos.Load(); v != nil {
		return v.(chaosBox).hook
	}
	return nil
}

// SetMaxInflight bounds concurrently served query requests; beyond it the
// handler sheds load with 429 + Retry-After instead of queueing without
// bound. n <= 0 means unlimited. /healthz and /admin/reload are exempt
// (probes and operators must get through precisely when the server is
// drowning).
func (s *Server) SetMaxInflight(n int) { s.maxInflight.Store(int64(n)) }

// SetRequestTimeout bounds the handler time of query requests; past it
// the client gets 503 with a JSON error body. d <= 0 disables the
// deadline. /admin/reload is exempt (a reload legitimately runs for the
// length of an APSP build).
func (s *Server) SetRequestTimeout(d time.Duration) { s.requestTimeout.Store(int64(d)) }

// Degraded reports whether the last reload failed (the server still
// answers from the last-good tables).
func (s *Server) Degraded() bool { return s.degraded.Load() }

func (s *Server) lastReloadError() string {
	if v := s.lastReloadErr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// Reload errors. ErrNoRebuild means SetRebuild was never called;
// ErrReloadBusy means another reload is still building.
var (
	ErrNoRebuild  = errors.New("serve: no rebuild function registered")
	ErrReloadBusy = errors.New("serve: reload already in progress")
)

// New returns a Server serving t. A nil t starts the server in the
// not-ready state: /healthz answers 503 and queries are refused until the
// first Publish — this is how cmd/hybridserve accepts connections while
// the APSP build is still running.
func New(t *Tables) *Server {
	s := &Server{start: time.Now()}
	if t != nil {
		s.tables.Store(t)
	}
	return s
}

// Publish atomically swaps the serving state to t. In-flight requests
// keep the generation they loaded; new requests see t.
func (s *Server) Publish(t *Tables) {
	if t == nil {
		panic("serve: Publish(nil)")
	}
	s.tables.Store(t)
}

// Tables returns the current generation (nil before the first Publish).
func (s *Server) Tables() *Tables { return s.tables.Load() }

// SetRebuild registers the function Reload uses to compute a fresh
// generation. The owner (cmd/hybridserve) typically closes over the graph
// and engine configuration of the initial build so a reload recomputes
// tables under the exact same parameters.
func (s *Server) SetRebuild(f func() (*Tables, error)) {
	s.rebuildMu.Lock()
	s.rebuild = f
	s.rebuildMu.Unlock()
}

// Reloads returns how many reloads have completed and swapped tables in.
func (s *Server) Reloads() int64 { return s.reloads.Load() }

// Reload recomputes the serving tables via the registered rebuild function
// and publishes the result atomically. Queries keep being answered from
// the old generation for the entire rebuild; only one reload runs at a
// time (a concurrent trigger gets ErrReloadBusy rather than queueing, so
// a signal storm cannot stack APSP runs).
//
// A failed rebuild does NOT take the server down: the last-good tables
// keep serving, the server enters degraded mode (visible on /healthz and
// /stats with the error), and the next successful reload clears it.
func (s *Server) Reload() (*Tables, error) {
	s.rebuildMu.Lock()
	rebuild := s.rebuild
	s.rebuildMu.Unlock()
	if rebuild == nil {
		return nil, ErrNoRebuild
	}
	if !s.reloadMu.TryLock() {
		return nil, ErrReloadBusy
	}
	defer s.reloadMu.Unlock()
	err := error(nil)
	if hook := s.chaosHook(); hook != nil {
		err = hook.RebuildFault()
	}
	var t *Tables
	if err == nil {
		t, err = rebuild()
	}
	if err != nil {
		err = fmt.Errorf("serve: reload: %w", err)
		s.reloadFailures.Add(1)
		s.lastReloadErr.Store(err.Error())
		s.degraded.Store(true)
		return nil, err
	}
	s.Publish(t)
	s.reloads.Add(1)
	s.degraded.Store(false)
	s.lastReloadErr.Store("")
	return t, nil
}

// Handler returns the HTTP API:
//
//	GET /distance?s=<node>&t=<node>  exact distance (or unreachable)
//	GET /route?s=<node>&t=<node>     hop-by-hop shortest path from the
//	                                 next-hop tables, with total weight
//	GET /stats                       build info + query counters
//	GET /healthz                     200 once tables are published, else 503
//	POST /admin/reload               rebuild + atomically swap the tables
//
// Malformed or out-of-range s/t answer 400 with a JSON error body;
// unreachable pairs are a 200 with "unreachable": true, never a 500.
//
// Query endpoints run behind the full resilience chain — panic recovery
// (500 JSON, process survives), load shedding (429 + Retry-After past
// SetMaxInflight), per-request deadline (503 past SetRequestTimeout), and
// the chaos hook. /healthz and /admin/reload skip shedding and deadlines:
// probes must get through under overload, and a reload legitimately runs
// for the length of an APSP build; both still get panic recovery.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/distance", s.handleDistance)
	mux.HandleFunc("/route", s.handleRoute)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/admin/reload", s.handleReload)

	query := s.recoverMW(s.shedMW(s.timeoutMW(s.chaosMW(mux))))
	control := s.recoverMW(s.chaosMW(mux))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz", "/admin/reload":
			control.ServeHTTP(w, r)
		default:
			query.ServeHTTP(w, r)
		}
	})
}

// recoverMW turns a handler panic into a 500 JSON response and a counted
// stat instead of a dead process. http.ErrAbortHandler is re-panicked:
// it is the sanctioned "tear down this connection" signal (the chaos
// reset fault uses it) and net/http both expects and silences it.
func (s *Server) recoverMW(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if err, ok := rec.(error); ok && errors.Is(err, http.ErrAbortHandler) {
				panic(rec)
			}
			s.panics.Add(1)
			// Best effort: if the handler already wrote headers this is a
			// no-op and net/http cuts the connection mid-body, which the
			// client sees as a malformed response — still no process death.
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: fmt.Sprintf("internal error: %v", rec)})
		}()
		next.ServeHTTP(w, r)
	})
}

// shedMW bounds concurrently served requests: past the limit the client
// gets an immediate 429 with Retry-After instead of queueing without
// bound, so overload degrades into fast, honest rejections.
func (s *Server) shedMW(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := s.inflight.Add(1)
		defer s.inflight.Add(-1)
		if max := s.maxInflight.Load(); max > 0 && n > max {
			s.loadShed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "server overloaded, retry later"})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// timeoutBody is the exact 503 body http.TimeoutHandler writes on a
// deadline; timeoutMW's recorder matches it to count timeouts (the only
// other 503 a query endpoint produces — "tables not published yet" — has
// a different body).
const timeoutBody = `{"error":"request timed out"}`

// timeoutRecorder counts deadline 503s written by http.TimeoutHandler.
type timeoutRecorder struct {
	http.ResponseWriter
	srv    *Server
	status int
}

func (t *timeoutRecorder) WriteHeader(code int) {
	t.status = code
	t.ResponseWriter.WriteHeader(code)
}

func (t *timeoutRecorder) Write(b []byte) (int, error) {
	if t.status == http.StatusServiceUnavailable && string(b) == timeoutBody {
		t.srv.timeouts.Add(1)
	}
	return t.ResponseWriter.Write(b)
}

// timeoutMW enforces the per-request deadline via http.TimeoutHandler,
// which buffers handler writes so a timed-out handler racing the 503 can
// never interleave bytes into the response (hand-rolled deadline writers
// get exactly that race wrong). Content-Type is pre-set on the outer
// header because TimeoutHandler's deadline path writes a raw body that
// would otherwise be content-sniffed as text/plain.
func (s *Server) timeoutMW(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := time.Duration(s.requestTimeout.Load())
		if d <= 0 {
			next.ServeHTTP(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		rec := &timeoutRecorder{ResponseWriter: w, srv: s}
		http.TimeoutHandler(next, d, timeoutBody).ServeHTTP(rec, r)
	})
}

// chaosMW applies the injected HTTP faults: latency (cancellable by the
// request context, so an injected delay still honors the deadline), a
// connection reset (via http.ErrAbortHandler), or a handler panic (to
// exercise recoverMW). With no hook installed it is a single atomic load.
func (s *Server) chaosMW(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hook := s.chaosHook()
		if hook == nil {
			next.ServeHTTP(w, r)
			return
		}
		delay, reset, panics := hook.HTTPFault(r.URL.Path)
		if delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
			}
		}
		if reset {
			panic(http.ErrAbortHandler)
		}
		if panics {
			panic("chaos: injected handler panic")
		}
		next.ServeHTTP(w, r)
	})
}

// DistanceResponse is the /distance body.
type DistanceResponse struct {
	S           int   `json:"s"`
	T           int   `json:"t"`
	Distance    int64 `json:"distance"`
	Unreachable bool  `json:"unreachable"`
}

// RouteResponse is the /route body. Path is the node sequence s..t walked
// from the next-hop tables; Weight is its total edge weight, which on
// exact-APSP tables equals the distance.
type RouteResponse struct {
	S           int    `json:"s"`
	T           int    `json:"t"`
	Path        []int  `json:"path,omitempty"`
	Hops        int    `json:"hops"`
	Weight      int64  `json:"weight"`
	Unreachable bool   `json:"unreachable"`
	Error       string `json:"error,omitempty"`
}

// StatsResponse is the /stats body: the published generation's BuildInfo
// plus the server's lifetime query counters.
type StatsResponse struct {
	BuildInfo
	UptimeMS        float64 `json:"uptime_ms"`
	DistanceQueries int64   `json:"distance_queries"`
	RouteQueries    int64   `json:"route_queries"`
	Unreachable     int64   `json:"unreachable"`
	BadRequests     int64   `json:"bad_requests"`
	Reloads         int64   `json:"reloads"`
	// Resilience counters: recovered handler panics, 429-shed requests,
	// deadline 503s, failed reloads, and the degraded flag with the last
	// reload error (empty when healthy).
	Panics          int64  `json:"panics"`
	LoadShed        int64  `json:"load_shed"`
	RequestTimeouts int64  `json:"request_timeouts"`
	ReloadFailures  int64  `json:"reload_failures"`
	Degraded        bool   `json:"degraded"`
	LastReloadError string `json:"last_reload_error"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, a ...any) {
	s.badRequests.Add(1)
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, a...)})
}

// queryPair loads the current generation and parses s/t against its node
// range. It returns tb == nil after writing the response when the request
// cannot proceed (not ready, malformed, out of range).
func (s *Server) queryPair(w http.ResponseWriter, r *http.Request) (tb *Tables, from, to int) {
	tb = s.tables.Load()
	if tb == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "tables not published yet"})
		return nil, 0, 0
	}
	parse := func(name string) (int, bool) {
		raw := r.URL.Query().Get(name)
		if raw == "" {
			s.writeError(w, http.StatusBadRequest, "missing query parameter %q", name)
			return 0, false
		}
		v, err := strconv.Atoi(raw)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "parameter %s=%q is not an integer", name, raw)
			return 0, false
		}
		if v < 0 || v >= tb.Info.N {
			s.writeError(w, http.StatusBadRequest, "node %s=%d out of range [0,%d)", name, v, tb.Info.N)
			return 0, false
		}
		return v, true
	}
	from, ok := parse("s")
	if !ok {
		return nil, 0, 0
	}
	to, ok = parse("t")
	if !ok {
		return nil, 0, 0
	}
	return tb, from, to
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	tb, from, to := s.queryPair(w, r)
	if tb == nil {
		return
	}
	s.distanceQueries.Add(1)
	resp := DistanceResponse{S: from, T: to}
	if d := tb.Dist[from][to]; d >= graph.Inf {
		s.unreachable.Add(1)
		resp.Unreachable = true
	} else {
		resp.Distance = d
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	tb, from, to := s.queryPair(w, r)
	if tb == nil {
		return
	}
	s.routeQueries.Add(1)
	resp := RouteResponse{S: from, T: to}
	if tb.Dist[from][to] >= graph.Inf {
		s.unreachable.Add(1)
		resp.Unreachable = true
		writeJSON(w, http.StatusOK, resp)
		return
	}
	path := graph.FollowRoute(tb.Next, from, to)
	if path == nil {
		// Exact-APSP tables cannot dead-end on a reachable pair; a nil
		// walk means the published generation is internally inconsistent.
		writeJSON(w, http.StatusInternalServerError, RouteResponse{
			S: from, T: to, Error: "forwarding walk failed on published tables",
		})
		return
	}
	weight, ok := graph.PathWeight(tb.G, path)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, RouteResponse{
			S: from, T: to, Error: "forwarding walk left the graph's edge set",
		})
		return
	}
	resp.Path = path
	resp.Hops = len(path) - 1
	resp.Weight = weight
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	tb := s.tables.Load()
	resp := StatsResponse{
		UptimeMS:        float64(time.Since(s.start).Microseconds()) / 1000,
		DistanceQueries: s.distanceQueries.Load(),
		RouteQueries:    s.routeQueries.Load(),
		Unreachable:     s.unreachable.Load(),
		BadRequests:     s.badRequests.Load(),
	}
	if tb != nil {
		resp.BuildInfo = tb.Info
	}
	resp.Reloads = s.reloads.Load()
	resp.Panics = s.panics.Load()
	resp.LoadShed = s.loadShed.Load()
	resp.RequestTimeouts = s.timeouts.Load()
	resp.ReloadFailures = s.reloadFailures.Load()
	resp.Degraded = s.degraded.Load()
	resp.LastReloadError = s.lastReloadError()
	writeJSON(w, http.StatusOK, resp)
}

// ReloadResponse is the /admin/reload success body: the build info of the
// generation that was just swapped in.
type ReloadResponse struct {
	Generation int64   `json:"generation"`
	Rounds     int     `json:"apsp_rounds"`
	BuildMS    float64 `json:"build_ms"`
}

// handleReload triggers a rebuild + atomic swap. POST only (a reload is a
// state change, and GET must stay side-effect free for health probes):
// 405 on other methods, 503 when no rebuild function is registered, 409
// when a reload is already building, 500 when the rebuild itself fails.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "reload requires POST"})
		return
	}
	t, err := s.Reload()
	switch {
	case errors.Is(err, ErrNoRebuild):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrReloadBusy):
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusOK, ReloadResponse{
			Generation: s.reloads.Load(),
			Rounds:     t.Info.Rounds,
			BuildMS:    t.Info.BuildMS,
		})
	}
}

// handleHealthz: 503 "starting" before the first tables, 200 "degraded"
// with the last reload error while the last reload failed (still 200 —
// the server IS answering queries from last-good tables, and a 503 here
// would make load balancers evict a working replica), 200 "ok" otherwise.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.tables.Load() == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "starting"})
		return
	}
	if s.degraded.Load() {
		writeJSON(w, http.StatusOK, map[string]string{
			"status": "degraded",
			"error":  s.lastReloadError(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
