// Handler-level tests of the serving layer: every endpoint's happy path
// and error shape over httptest, with route responses verified
// edge-by-edge against the graph's adjacency, plus the immutable-publish /
// atomic-swap consistency contract under a concurrent reload (run under
// -race in CI).
package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	hybrid "repro"
	"repro/internal/chaos"
	"repro/internal/serve"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// buildTables computes exact APSP + next hops for g sequentially and
// wraps them as a published generation.
func buildTables(t *testing.T, g *hybrid.Graph, info serve.BuildInfo) *serve.Tables {
	t.Helper()
	dist := hybrid.ExactAPSP(g)
	tb, err := serve.NewTables(g, dist, hybrid.NextHops(g, dist), info)
	if err != nil {
		t.Fatalf("NewTables: %v", err)
	}
	return tb
}

func getJSON(t *testing.T, url string, into any) (status int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("GET %s: Content-Type %q, want application/json", url, ct)
	}
	if into != nil {
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("GET %s: body %q does not parse: %v", url, body, err)
		}
	}
	return resp.StatusCode
}

// TestServeDistanceHappy pins /distance on a weighted path where every
// pairwise distance is known in closed form.
func TestServeDistanceHappy(t *testing.T) {
	g := hybrid.NewGraph(4)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 2, 3)
	g.MustAddEdge(2, 3, 5)
	ts := httptest.NewServer(serve.New(buildTables(t, g, serve.BuildInfo{})).Handler())
	defer ts.Close()

	want := map[[2]int]int64{{0, 1}: 2, {0, 2}: 5, {0, 3}: 10, {1, 3}: 8, {2, 2}: 0, {3, 0}: 10}
	for pair, d := range want {
		var resp serve.DistanceResponse
		status := getJSON(t, fmt.Sprintf("%s/distance?s=%d&t=%d", ts.URL, pair[0], pair[1]), &resp)
		if status != http.StatusOK {
			t.Errorf("distance %v: status %d", pair, status)
		}
		if resp.Unreachable || resp.Distance != d || resp.S != pair[0] || resp.T != pair[1] {
			t.Errorf("distance %v = %+v, want %d", pair, resp, d)
		}
	}
}

// TestServeRouteVerified checks every /route response on a weighted grid
// edge-by-edge against Graph.Neighbors: consecutive path nodes must be
// adjacent, the summed edge weights must equal the response weight, and
// that weight must equal Dist[s][t].
func TestServeRouteVerified(t *testing.T) {
	g := hybrid.GridGraph(4, 4)
	g = hybrid.WithRandomWeights(g, 7, newRand(11))
	dist := hybrid.ExactAPSP(g)
	tb, err := serve.NewTables(g, dist, hybrid.NextHops(g, dist), serve.BuildInfo{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(tb).Handler())
	defer ts.Close()

	for s := 0; s < g.N(); s++ {
		for to := 0; to < g.N(); to++ {
			var resp serve.RouteResponse
			status := getJSON(t, fmt.Sprintf("%s/route?s=%d&t=%d", ts.URL, s, to), &resp)
			if status != http.StatusOK {
				t.Fatalf("route %d->%d: status %d (%+v)", s, to, status, resp)
			}
			if resp.Unreachable {
				t.Fatalf("route %d->%d reported unreachable on a connected grid", s, to)
			}
			if len(resp.Path) == 0 || resp.Path[0] != s || resp.Path[len(resp.Path)-1] != to {
				t.Fatalf("route %d->%d path %v does not span the pair", s, to, resp.Path)
			}
			if resp.Hops != len(resp.Path)-1 {
				t.Errorf("route %d->%d: hops %d for path %v", s, to, resp.Hops, resp.Path)
			}
			var total int64
			for i := 1; i < len(resp.Path); i++ {
				u, v := resp.Path[i-1], resp.Path[i]
				found := false
				for _, nb := range g.Neighbors(u) {
					if nb.To == v {
						total += nb.W
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("route %d->%d: step %d-%d is not an edge", s, to, u, v)
				}
			}
			if total != resp.Weight || resp.Weight != dist[s][to] {
				t.Errorf("route %d->%d: walked weight %d, response %d, dist %d",
					s, to, total, resp.Weight, dist[s][to])
			}
		}
	}
}

// TestServeBadRequests pins the 400 shape: missing, non-integer, and
// out-of-range s/t all answer 400 with a JSON error body.
func TestServeBadRequests(t *testing.T) {
	g := hybrid.PathGraph(5)
	srv := serve.New(buildTables(t, g, serve.BuildInfo{}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, q := range []string{
		"s=0", "t=0", "", "s=0&t=abc", "s=x&t=1", "s=-1&t=0", "s=0&t=5", "s=99&t=0",
	} {
		for _, endpoint := range []string{"/distance", "/route"} {
			var body struct {
				Error string `json:"error"`
			}
			status := getJSON(t, ts.URL+endpoint+"?"+q, &body)
			if status != http.StatusBadRequest {
				t.Errorf("%s?%s: status %d, want 400", endpoint, q, status)
			}
			if body.Error == "" {
				t.Errorf("%s?%s: no error field in body", endpoint, q)
			}
		}
	}

	var stats serve.StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.BadRequests == 0 {
		t.Errorf("bad requests not counted: %+v", stats)
	}
}

// TestServeUnreachable pins the explicit unreachable shape on a
// disconnected graph: 200 with "unreachable": true, never a 500.
func TestServeUnreachable(t *testing.T) {
	g := hybrid.NewGraph(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	ts := httptest.NewServer(serve.New(buildTables(t, g, serve.BuildInfo{})).Handler())
	defer ts.Close()

	var d serve.DistanceResponse
	if status := getJSON(t, ts.URL+"/distance?s=0&t=3", &d); status != http.StatusOK {
		t.Errorf("unreachable distance: status %d", status)
	}
	if !d.Unreachable {
		t.Errorf("distance across components = %+v, want unreachable", d)
	}
	var r serve.RouteResponse
	if status := getJSON(t, ts.URL+"/route?s=0&t=2", &r); status != http.StatusOK {
		t.Errorf("unreachable route: status %d", status)
	}
	if !r.Unreachable || len(r.Path) != 0 {
		t.Errorf("route across components = %+v, want unreachable with no path", r)
	}

	var stats serve.StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Unreachable != 2 {
		t.Errorf("unreachable counter %d, want 2", stats.Unreachable)
	}
}

// TestServeHealthzLifecycle pins the not-ready state: before the first
// Publish, /healthz and the query endpoints answer 503; after it, 200.
func TestServeHealthzLifecycle(t *testing.T) {
	srv := serve.New(nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{"/healthz", "/distance?s=0&t=1", "/route?s=0&t=1"} {
		if status := getJSON(t, ts.URL+path, nil); status != http.StatusServiceUnavailable {
			t.Errorf("%s before publish: status %d, want 503", path, status)
		}
	}
	// /stats stays 200 while starting (zero BuildInfo) so dashboards can
	// watch the counters during a long build.
	if status := getJSON(t, ts.URL+"/stats", nil); status != http.StatusOK {
		t.Errorf("/stats before publish: status %d, want 200", status)
	}

	srv.Publish(buildTables(t, hybrid.PathGraph(3), serve.BuildInfo{}))
	if status := getJSON(t, ts.URL+"/healthz", nil); status != http.StatusOK {
		t.Errorf("/healthz after publish: status %d", status)
	}
	var d serve.DistanceResponse
	if status := getJSON(t, ts.URL+"/distance?s=0&t=2", &d); status != http.StatusOK || d.Distance != 2 {
		t.Errorf("query after publish: status %d resp %+v", status, d)
	}
}

// TestServeStatsCounters pins the per-endpoint counters and the BuildInfo
// passthrough.
func TestServeStatsCounters(t *testing.T) {
	g := hybrid.PathGraph(6)
	info := serve.BuildInfo{Graph: "path", Seed: 9, Engine: "step", Rounds: 1234, WarmSeed: true, BuildMS: 1.5}
	ts := httptest.NewServer(serve.New(buildTables(t, g, info)).Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		getJSON(t, ts.URL+"/distance?s=0&t=5", nil)
	}
	getJSON(t, ts.URL+"/route?s=0&t=5", nil)
	getJSON(t, ts.URL+"/distance?s=0&t=99", nil) // bad request

	var stats serve.StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.DistanceQueries != 3 || stats.RouteQueries != 1 || stats.BadRequests != 1 {
		t.Errorf("counters %+v", stats)
	}
	if stats.Graph != "path" || stats.N != 6 || stats.Rounds != 1234 || !stats.WarmSeed || stats.WarmStructural {
		t.Errorf("build info not served: %+v", stats)
	}
	if stats.UptimeMS < 0 {
		t.Errorf("uptime %v", stats.UptimeMS)
	}
}

// TestServeNewTablesRejectsMalformed pins the publish-time validation.
func TestServeNewTablesRejectsMalformed(t *testing.T) {
	g := hybrid.PathGraph(3)
	dist := hybrid.ExactAPSP(g)
	next := hybrid.NextHops(g, dist)
	if _, err := serve.NewTables(g, dist[:2], next, serve.BuildInfo{}); err == nil {
		t.Error("short dist accepted")
	}
	if _, err := serve.NewTables(g, [][]int64{{0}, {0}, {0}}, next, serve.BuildInfo{}); err == nil {
		t.Error("ragged dist accepted")
	}
}

// TestReloadRaceConsistency is the atomic-swap contract under fire: N
// goroutines hammer /distance and /route while the publisher swaps
// between two complete generations (weight-1 and weight-5 copies of one
// grid). Every response must be internally consistent AND match exactly
// one of the two generations — a torn read (weight from one, path from
// the other) fails loudly. CI runs this under -race.
func TestReloadRaceConsistency(t *testing.T) {
	base := hybrid.GridGraph(5, 5)
	heavy := base.Reweight(func(u, v int, w int64) int64 { return 5 * w })
	distA := hybrid.ExactAPSP(base)
	distB := hybrid.ExactAPSP(heavy)
	tbA := buildTables(t, base, serve.BuildInfo{Rounds: 1})
	tbB := buildTables(t, heavy, serve.BuildInfo{Rounds: 2})

	srv := serve.New(tbA)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const workers = 8
	const queriesPerWorker = 150
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := newRand(int64(100 + id))
			client := &http.Client{}
			for q := 0; q < queriesPerWorker; q++ {
				s, to := rng.Intn(base.N()), rng.Intn(base.N())
				wantA, wantB := distA[s][to], distB[s][to]
				if q%2 == 0 {
					var resp serve.DistanceResponse
					doJSON(t, client, fmt.Sprintf("%s/distance?s=%d&t=%d", ts.URL, s, to), &resp)
					if resp.Unreachable || (resp.Distance != wantA && resp.Distance != wantB) {
						t.Errorf("torn distance %d->%d: got %+v, want %d or %d", s, to, resp, wantA, wantB)
						return
					}
				} else {
					var resp serve.RouteResponse
					doJSON(t, client, fmt.Sprintf("%s/route?s=%d&t=%d", ts.URL, s, to), &resp)
					if resp.Unreachable || (resp.Weight != wantA && resp.Weight != wantB) {
						t.Errorf("torn route %d->%d: got %+v, want weight %d or %d", s, to, resp, wantA, wantB)
						return
					}
					// Same topology in both generations: the walk must be
					// a real path whose hop count matches.
					if len(resp.Path) == 0 || resp.Path[0] != s || resp.Path[len(resp.Path)-1] != to || resp.Hops != len(resp.Path)-1 {
						t.Errorf("route %d->%d malformed path %+v", s, to, resp)
						return
					}
				}
			}
		}(w)
	}

	// The reloader: keep swapping generations until every worker is done.
	go func() {
		flip := false
		for {
			select {
			case <-done:
				return
			default:
			}
			if flip {
				srv.Publish(tbA)
			} else {
				srv.Publish(tbB)
			}
			flip = !flip
		}
	}()
	wg.Wait()
	close(done)

	var stats serve.StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if got := stats.DistanceQueries + stats.RouteQueries; got != workers*queriesPerWorker {
		t.Errorf("served %d queries, want %d", got, workers*queriesPerWorker)
	}
}

func doJSON(t *testing.T, client *http.Client, url string, into any) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d body %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, into); err != nil {
		t.Fatalf("GET %s: body %q: %v", url, body, err)
	}
}

// TestReloadEndpoint drives the /admin/reload trigger end to end: method
// gate, not-configured and failure shapes, a successful rebuild + swap
// observed through served distances, and the reload counter in /stats.
func TestReloadEndpoint(t *testing.T) {
	base := hybrid.GridGraph(4, 4)
	heavy := base.Reweight(func(u, v int, w int64) int64 { return 7 * w })
	tbA := buildTables(t, base, serve.BuildInfo{Rounds: 11})
	tbB := buildTables(t, heavy, serve.BuildInfo{Rounds: 22})

	srv := serve.New(tbA)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(into any) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/admin/reload", "", nil)
		if err != nil {
			t.Fatalf("POST /admin/reload: %v", err)
		}
		defer resp.Body.Close()
		if into != nil {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("reload body: %v", err)
			}
		}
		return resp.StatusCode
	}

	// GET must stay side-effect free: 405 before any state changes.
	resp, err := http.Get(ts.URL + "/admin/reload")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /admin/reload = %d, want 405", resp.StatusCode)
	}

	// No rebuild function registered yet: 503, tables untouched.
	if code := post(nil); code != http.StatusServiceUnavailable {
		t.Fatalf("reload without rebuild = %d, want 503", code)
	}

	// A failing rebuild keeps the old generation and answers 500.
	srv.SetRebuild(func() (*serve.Tables, error) { return nil, fmt.Errorf("synthetic build failure") })
	if code := post(nil); code != http.StatusInternalServerError {
		t.Fatalf("failing reload = %d, want 500", code)
	}
	if srv.Tables() != tbA || srv.Reloads() != 0 {
		t.Fatalf("failed reload mutated state: tables=%p reloads=%d", srv.Tables(), srv.Reloads())
	}

	// A successful reload swaps generations atomically and counts.
	srv.SetRebuild(func() (*serve.Tables, error) { return tbB, nil })
	var ok serve.ReloadResponse
	if code := post(&ok); code != http.StatusOK {
		t.Fatalf("reload = %d, want 200", code)
	}
	if ok.Generation != 1 || ok.Rounds != 22 {
		t.Fatalf("reload response %+v, want generation 1 rounds 22", ok)
	}
	var dr serve.DistanceResponse
	if code := getJSON(t, fmt.Sprintf("%s/distance?s=0&t=%d", ts.URL, base.N()-1), &dr); code != http.StatusOK {
		t.Fatalf("distance after reload = %d", code)
	}
	want := hybrid.ExactAPSP(heavy)[0][base.N()-1]
	if dr.Distance != want {
		t.Fatalf("distance after reload = %d, want %d (new generation)", dr.Distance, want)
	}
	var stats serve.StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Reloads != 1 || stats.Rounds != 22 {
		t.Fatalf("stats after reload: reloads=%d rounds=%d, want 1/22", stats.Reloads, stats.Rounds)
	}
}

// TestReloadBusy pins the single-flight contract: while one reload is
// mid-build, a second trigger answers 409 instead of stacking a build,
// and queries keep being served from the old generation.
func TestReloadBusy(t *testing.T) {
	g := hybrid.GridGraph(3, 3)
	tb := buildTables(t, g, serve.BuildInfo{Rounds: 1})
	srv := serve.New(tb)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	inBuild := make(chan struct{})
	release := make(chan struct{})
	srv.SetRebuild(func() (*serve.Tables, error) {
		close(inBuild)
		<-release
		return tb, nil
	})

	firstDone := make(chan error, 1)
	go func() {
		_, err := srv.Reload()
		firstDone <- err
	}()
	<-inBuild

	resp, err := http.Post(ts.URL+"/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("concurrent reload = %d, want 409", resp.StatusCode)
	}
	var dr serve.DistanceResponse
	if code := getJSON(t, ts.URL+"/distance?s=0&t=8", &dr); code != http.StatusOK {
		t.Fatalf("query during reload = %d, want 200", code)
	}

	close(release)
	if err := <-firstDone; err != nil {
		t.Fatalf("first reload: %v", err)
	}
	if srv.Reloads() != 1 {
		t.Fatalf("reloads = %d, want 1", srv.Reloads())
	}
}

// lineGraph builds the 4-node weighted path used by the hardening tests.
func lineGraph() *hybrid.Graph {
	g := hybrid.NewGraph(4)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 2, 3)
	g.MustAddEdge(2, 3, 5)
	return g
}

// TestServePanicRecovery pins the recovery middleware driven through a
// real chaos.Plan (which also proves the Plan satisfies serve.ChaosHook
// structurally): the injected panic answers 500 JSON, the process and the
// next request survive, and /stats counts it.
func TestServePanicRecovery(t *testing.T) {
	srv := serve.New(buildTables(t, lineGraph(), serve.BuildInfo{}))
	srv.SetChaos(chaos.NewPlan().PanicRequests("/distance", 1))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var errResp struct {
		Error string `json:"error"`
	}
	if status := getJSON(t, ts.URL+"/distance?s=0&t=3", &errResp); status != http.StatusInternalServerError {
		t.Fatalf("panicked request: status %d, want 500", status)
	}
	if !strings.Contains(errResp.Error, "panic") {
		t.Errorf("panicked request body: %+v", errResp)
	}

	var resp serve.DistanceResponse
	if status := getJSON(t, ts.URL+"/distance?s=0&t=3", &resp); status != http.StatusOK || resp.Distance != 10 {
		t.Fatalf("request after panic: status %d resp %+v", status, resp)
	}
	var stats serve.StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Panics != 1 {
		t.Errorf("stats.Panics = %d, want 1", stats.Panics)
	}
}

// blockingHook parks matching requests inside the handler until released,
// so tests can hold requests in-flight deterministically.
type blockingHook struct {
	pathSub string
	entered chan struct{}
	release chan struct{}
}

func newBlockingHook(pathSub string) *blockingHook {
	return &blockingHook{pathSub: pathSub, entered: make(chan struct{}, 16), release: make(chan struct{})}
}

func (h *blockingHook) HTTPFault(path string) (time.Duration, bool, bool) {
	if strings.Contains(path, h.pathSub) {
		h.entered <- struct{}{}
		<-h.release
	}
	return 0, false, false
}

func (h *blockingHook) RebuildFault() error { return nil }

// TestServeLoadShed pins the in-flight bound: with one request parked in
// the handler and max-inflight 1, the next query answers 429 with a
// Retry-After header, /healthz still answers (exempt), and releasing the
// parked request restores service.
func TestServeLoadShed(t *testing.T) {
	srv := serve.New(buildTables(t, lineGraph(), serve.BuildInfo{}))
	hook := newBlockingHook("/distance")
	srv.SetChaos(hook)
	srv.SetMaxInflight(1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer close(hook.release)

	done := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/distance?s=0&t=1")
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-hook.entered

	resp, err := http.Get(ts.URL + "/distance?s=0&t=2")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var health map[string]string
	if status := getJSON(t, ts.URL+"/healthz", &health); status != http.StatusOK {
		t.Errorf("/healthz shed under load: status %d", status)
	}

	hook.release <- struct{}{}
	if status := <-done; status != http.StatusOK {
		t.Fatalf("parked request finished with %d", status)
	}
	var stats serve.StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.LoadShed < 1 {
		t.Errorf("stats.LoadShed = %d, want >= 1", stats.LoadShed)
	}
}

// TestServeRequestTimeout pins the per-request deadline: an injected
// delay past the timeout answers 503 with the JSON timeout body (correct
// Content-Type included), and /stats counts it.
func TestServeRequestTimeout(t *testing.T) {
	srv := serve.New(buildTables(t, lineGraph(), serve.BuildInfo{}))
	srv.SetChaos(chaos.NewPlan().DelayRequests("/distance", 5*time.Second, 1))
	srv.SetRequestTimeout(30 * time.Millisecond)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var errResp struct {
		Error string `json:"error"`
	}
	start := time.Now()
	if status := getJSON(t, ts.URL+"/distance?s=0&t=3", &errResp); status != http.StatusServiceUnavailable {
		t.Fatalf("slow request: status %d, want 503", status)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v, deadline not enforced", elapsed)
	}
	if errResp.Error != "request timed out" {
		t.Errorf("timeout body: %+v", errResp)
	}

	var resp serve.DistanceResponse
	if status := getJSON(t, ts.URL+"/distance?s=0&t=3", &resp); status != http.StatusOK {
		t.Fatalf("request after timeout: status %d", status)
	}
	var stats serve.StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.RequestTimeouts != 1 {
		t.Errorf("stats.RequestTimeouts = %d, want 1", stats.RequestTimeouts)
	}
}

// TestServeConnectionReset pins the reset fault: the client observes a
// torn connection (transport error), never a half-valid response, and the
// server keeps serving.
func TestServeConnectionReset(t *testing.T) {
	srv := serve.New(buildTables(t, lineGraph(), serve.BuildInfo{}))
	srv.SetChaos(chaos.NewPlan().ResetRequests("/distance", 1))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/distance?s=0&t=1")
	if err == nil {
		resp.Body.Close()
		t.Fatalf("reset request succeeded with status %d", resp.StatusCode)
	}
	var ok serve.DistanceResponse
	if status := getJSON(t, ts.URL+"/distance?s=0&t=1", &ok); status != http.StatusOK || ok.Distance != 2 {
		t.Fatalf("request after reset: status %d resp %+v", status, ok)
	}
}

// TestServeDegradedMode pins the last-good-tables contract: a failed
// reload answers 500 on /admin/reload but queries keep working from the
// old generation, /healthz and /stats report degraded + the error, and
// the next successful reload clears the condition.
func TestServeDegradedMode(t *testing.T) {
	srv := serve.New(buildTables(t, lineGraph(), serve.BuildInfo{Rounds: 1}))
	srv.SetRebuild(func() (*serve.Tables, error) {
		return buildTables(t, lineGraph(), serve.BuildInfo{Rounds: 2}), nil
	})
	plan := chaos.NewPlan().FailRebuilds(1)
	srv.SetChaos(plan)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failed reload: status %d, want 500", resp.StatusCode)
	}

	var health map[string]string
	if status := getJSON(t, ts.URL+"/healthz", &health); status != http.StatusOK {
		t.Fatalf("/healthz while degraded: status %d, want 200", status)
	}
	if health["status"] != "degraded" || !strings.Contains(health["error"], "injected rebuild failure") {
		t.Errorf("/healthz while degraded: %+v", health)
	}
	var dist serve.DistanceResponse
	if status := getJSON(t, ts.URL+"/distance?s=0&t=3", &dist); status != http.StatusOK || dist.Distance != 10 {
		t.Fatalf("degraded query: status %d resp %+v (last-good tables must keep serving)", status, dist)
	}
	var stats serve.StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if !stats.Degraded || stats.ReloadFailures != 1 || stats.LastReloadError == "" || stats.Rounds != 1 {
		t.Errorf("degraded stats: %+v", stats)
	}

	// The fault budget is spent: the next reload succeeds and clears it.
	resp, err = http.Post(ts.URL+"/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovery reload: status %d", resp.StatusCode)
	}
	if status := getJSON(t, ts.URL+"/healthz", &health); status != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("/healthz after recovery: status %d %+v", status, health)
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Degraded || stats.LastReloadError != "" || stats.Rounds != 2 {
		t.Errorf("recovered stats: %+v", stats)
	}
}

// TestServeGracefulDrain pins shutdown semantics on a real http.Server:
// Shutdown waits for the in-flight request to complete (it still answers
// 200), while new connections are refused once the drain begins.
func TestServeGracefulDrain(t *testing.T) {
	srv := serve.New(buildTables(t, lineGraph(), serve.BuildInfo{}))
	hook := newBlockingHook("/distance")
	srv.SetChaos(hook)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveDone := make(chan error, 1)
	go func() { serveDone <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Get(base + "/distance?s=0&t=3")
		if err != nil {
			inflight <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	<-hook.entered

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- httpSrv.Shutdown(ctx)
	}()

	// The listener closes promptly once Shutdown begins: new connections
	// must be refused while the parked request is still in flight.
	refused := false
	for i := 0; i < 200; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			refused = true
			break
		}
		conn.Close()
		time.Sleep(5 * time.Millisecond)
	}
	if !refused {
		t.Error("new connections still accepted during drain")
	}

	hook.release <- struct{}{}
	if status := <-inflight; status != http.StatusOK {
		t.Fatalf("in-flight request during drain finished with %d, want 200", status)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
}
