// Replay-harness tests: the query stream is a pure function of the seed
// (identical sequence and identical aggregate counts run over run), and
// the BENCH_serve.json schema is golden-filed so a field rename breaks
// loudly (-update to regenerate).
package replay_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	hybrid "repro"
	"repro/internal/serve"
	"repro/internal/serve/replay"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with the observed values")

// startGridServer serves exact tables for a connected grid.
func startGridServer(t *testing.T) (*httptest.Server, int) {
	t.Helper()
	g := hybrid.GridGraph(5, 5)
	dist := hybrid.ExactAPSP(g)
	tb, err := serve.NewTables(g, dist, hybrid.NextHops(g, dist), serve.BuildInfo{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(tb).Handler())
	t.Cleanup(ts.Close)
	return ts, g.N()
}

// TestReplaySequenceDeterministic pins the determinism contract: same
// config ⇒ the identical query sequence; a different seed diverges.
func TestReplaySequenceDeterministic(t *testing.T) {
	cfg := replay.Config{N: 100, Queries: 500, Seed: 7, ZipfS: 1.2, RouteEvery: 4}
	a, b := replay.Sequence(cfg), replay.Sequence(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different query sequences")
	}
	cfg.Seed = 8
	if reflect.DeepEqual(a, replay.Sequence(cfg)) {
		t.Fatal("different seeds produced the identical sequence")
	}
	routes := 0
	for i, q := range a {
		if q.S < 0 || q.S >= 100 || q.T < 0 || q.T >= 100 {
			t.Fatalf("query %d out of range: %+v", i, q)
		}
		if q.Route {
			routes++
		}
	}
	if routes != 125 {
		t.Errorf("route mix %d/500, want every 4th = 125", routes)
	}
}

// TestReplayRunAggregatesDeterministic replays the same config twice
// against a live server: every count in the per-level results must be
// identical; only wall-clock-derived fields may differ.
func TestReplayRunAggregatesDeterministic(t *testing.T) {
	ts, n := startGridServer(t)
	cfg := replay.Config{
		BaseURL: ts.URL, N: n, Queries: 400, Levels: []int{1, 3}, Seed: 42, ZipfS: 1.3, RouteEvery: 5,
	}
	first, err := replay.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := replay.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 2 || len(second) != 2 {
		t.Fatalf("level counts %d/%d, want 2", len(first), len(second))
	}
	strip := func(rs []replay.LevelResult) []replay.LevelResult {
		out := append([]replay.LevelResult(nil), rs...)
		for i := range out {
			out[i].WallMS, out[i].QPS, out[i].P50us, out[i].P95us, out[i].P99us = 0, 0, 0, 0, 0
		}
		return out
	}
	if !reflect.DeepEqual(strip(first), strip(second)) {
		t.Errorf("aggregate counts differ across identical replays:\n%+v\n%+v", strip(first), strip(second))
	}
	for _, lr := range first {
		if lr.Queries != 400 || lr.DistanceQueries+lr.RouteQueries != 400 || lr.Errors != 0 {
			t.Errorf("level %+v inconsistent", lr)
		}
		if lr.Unreachable != 0 {
			t.Errorf("connected grid reported %d unreachable", lr.Unreachable)
		}
		if lr.QPS <= 0 || lr.P50us <= 0 || lr.P95us < lr.P50us || lr.P99us < lr.P95us {
			t.Errorf("level %d latency stats malformed: %+v", lr.Concurrency, lr)
		}
	}
}

// TestReplayCountsUnreachable replays across a disconnected graph: the
// unreachable tally must be deterministic and non-zero.
func TestReplayCountsUnreachable(t *testing.T) {
	g := hybrid.NewGraph(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(3, 4, 1)
	g.MustAddEdge(4, 5, 1)
	dist := hybrid.ExactAPSP(g)
	tb, err := serve.NewTables(g, dist, hybrid.NextHops(g, dist), serve.BuildInfo{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(tb).Handler())
	defer ts.Close()

	cfg := replay.Config{BaseURL: ts.URL, N: 6, Queries: 300, Levels: []int{2}, Seed: 3, RouteEvery: 2}
	first, err := replay.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := replay.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first[0].Unreachable == 0 {
		t.Error("no unreachable pairs observed across two components")
	}
	if first[0].Unreachable != second[0].Unreachable {
		t.Errorf("unreachable tally not deterministic: %d vs %d", first[0].Unreachable, second[0].Unreachable)
	}
}

// TestReplayRejectsBadConfig pins the config validation.
func TestReplayRejectsBadConfig(t *testing.T) {
	for _, cfg := range []replay.Config{
		{N: 1, Queries: 10, Levels: []int{1}},
		{N: 10, Queries: 0, Levels: []int{1}},
		{N: 10, Queries: 10},
		{N: 10, Queries: 10, Levels: []int{0}},
	} {
		if _, err := replay.Run(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// TestReportGoldenSchema golden-files the BENCH_serve.json field set: the
// sorted JSON key paths of a fully-populated Report. A renamed or removed
// field changes the path list and fails here; regenerate deliberately
// with -update.
func TestReportGoldenSchema(t *testing.T) {
	rep := replay.Report{
		Graph: "grid", N: 1024, Seed: 1, Engine: "step",
		WarmStructural: true, WarmSeed: true, APSPRounds: 9711, BuildMS: 2400,
		ReplaySeed: 1, ZipfS: 1.2, TotalQueries: 120000,
		Levels: []replay.LevelResult{{
			Concurrency: 1, Queries: 40000, DistanceQueries: 30000, RouteQueries: 10000,
			Unreachable: 0, Errors: 0, WallMS: 1000, QPS: 40000, P50us: 20, P95us: 40, P99us: 80,
		}},
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var tree any
	if err := json.Unmarshal(data, &tree); err != nil {
		t.Fatal(err)
	}
	paths := jsonPaths("", tree)
	sort.Strings(paths)
	got := strings.Join(paths, "\n") + "\n"

	golden := filepath.Join("testdata", "serve_schema.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Errorf("BENCH_serve.json schema diverged from golden (regenerate with -update if intended):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// jsonPaths flattens a decoded JSON tree into key paths; array elements
// collapse to "[]" so the schema is element-order independent.
func jsonPaths(prefix string, v any) []string {
	switch x := v.(type) {
	case map[string]any:
		var out []string
		for k, child := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			out = append(out, jsonPaths(p, child)...)
		}
		return out
	case []any:
		seen := map[string]bool{}
		var out []string
		for _, child := range x {
			for _, p := range jsonPaths(prefix+"[]", child) {
				if !seen[p] {
					seen[p] = true
					out = append(out, p)
				}
			}
		}
		return out
	default:
		return []string{fmt.Sprintf("%s", prefix)}
	}
}

// TestReplayRetries429 pins the load-shed handling: 429 responses are
// retried with backoff (honoring Retry-After) and counted in Shed429, so
// a replay against an overloaded-but-honest server completes with zero
// errors and full aggregate counts.
func TestReplayRetries429(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// Every third request is shed; its retry succeeds.
		if hits.Add(1)%3 == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"server overloaded, retry later"}`))
			return
		}
		w.Write([]byte(`{"s":0,"t":1,"distance":1,"unreachable":false}`))
	}))
	defer ts.Close()

	res, err := replay.Run(replay.Config{
		BaseURL: ts.URL, N: 8, Queries: 30, Levels: []int{2}, Seed: 1, RouteEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	lr := res[0]
	if lr.Errors != 0 {
		t.Errorf("shed run reported %d errors, want 0", lr.Errors)
	}
	if lr.Shed429 == 0 {
		t.Error("no 429s counted despite the server shedding")
	}
	if lr.DistanceQueries+lr.RouteQueries != 30 {
		t.Errorf("only %d+%d of 30 queries completed", lr.DistanceQueries, lr.RouteQueries)
	}
}

// TestReplayShedExhaustion pins the bound: a server that ALWAYS sheds
// eventually fails the run instead of retrying forever.
func TestReplayShedExhaustion(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()
	_, err := replay.Run(replay.Config{BaseURL: ts.URL, N: 8, Queries: 4, Levels: []int{1}, Seed: 1})
	if err == nil {
		t.Fatal("permanently shedding server did not fail the run")
	}
	if !strings.Contains(err.Error(), "429") {
		t.Errorf("err = %v, want a 429 status failure", err)
	}
}
