// Package replay is the load harness for the resident query server: it
// replays a deterministic zipfian-source query stream against a running
// hybridserve instance at several concurrency levels and reports latency
// percentiles and throughput per level.
//
// Determinism contract: the query sequence is a pure function of
// (Seed, N, Queries, ZipfS, RouteEvery) — it is pre-generated before any
// worker starts, so two runs with the same configuration replay the
// identical queries in the identical per-level sets. Workers drain the
// sequence through an atomic cursor, so which worker fires which query is
// scheduling-dependent, but every aggregate count (queries, route/distance
// mix, unreachable answers) is reproducible; only wall-clock-derived
// fields (latency, qps) vary run to run. The golden-schema test pins the
// report's JSON field set so renames break loudly.
package replay

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes one replay run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// N is the served graph's node count (the query ID space).
	N int
	// Queries is the number of queries replayed at EACH concurrency level.
	Queries int
	// Levels are the worker counts to sweep, e.g. [1, 4, 16].
	Levels []int
	// Seed roots the query-stream randomness.
	Seed int64
	// ZipfS is the zipf skew of the source distribution (must be > 1;
	// defaulted to 1.2 when zero) — a few hot sources dominate, the
	// "popular origin" shape of IP traffic. Targets are uniform.
	ZipfS float64
	// RouteEvery makes every k-th query a /route walk instead of a
	// /distance lookup (0 disables routes; 4 means 1 in 4 is a route).
	RouteEvery int
}

// Query is one replayed request.
type Query struct {
	S, T  int
	Route bool
}

// LevelResult aggregates one concurrency level's replay.
type LevelResult struct {
	Concurrency     int `json:"concurrency"`
	Queries         int `json:"queries"`
	DistanceQueries int `json:"distance_queries"`
	RouteQueries    int `json:"route_queries"`
	Unreachable     int `json:"unreachable"`
	Errors          int `json:"errors"`
	// Shed429 counts load-shed (429) responses that were retried: each one
	// is a server-side rejection the harness absorbed by backing off, so a
	// run against an overloaded-but-honest server still completes with
	// zero Errors.
	Shed429 int     `json:"shed_429"`
	WallMS  float64 `json:"wall_ms"`
	QPS     float64 `json:"qps"`
	P50us   float64 `json:"p50_us"`
	P95us   float64 `json:"p95_us"`
	P99us   float64 `json:"p99_us"`
}

// Report is the BENCH_serve.json schema: the build identity of the server
// under load plus one LevelResult per swept concurrency level.
type Report struct {
	Graph          string  `json:"graph"`
	N              int     `json:"n"`
	Seed           int64   `json:"seed"`
	Engine         string  `json:"engine"`
	WarmStructural bool    `json:"warm_structural"`
	WarmSeed       bool    `json:"warm_seed"`
	APSPRounds     int     `json:"apsp_rounds"`
	BuildMS        float64 `json:"build_ms"`

	ReplaySeed   int64         `json:"replay_seed"`
	ZipfS        float64       `json:"zipf_s"`
	TotalQueries int           `json:"total_queries"`
	Levels       []LevelResult `json:"levels"`
}

// Sequence pre-generates the deterministic query stream for one level:
// zipfian sources, uniform targets, every RouteEvery-th query a route.
func Sequence(cfg Config) []Query {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := cfg.ZipfS
	if s == 0 {
		s = 1.2
	}
	zipf := rand.NewZipf(rng, s, 1, uint64(cfg.N-1))
	qs := make([]Query, cfg.Queries)
	for i := range qs {
		qs[i] = Query{
			S:     int(zipf.Uint64()),
			T:     rng.Intn(cfg.N),
			Route: cfg.RouteEvery > 0 && i%cfg.RouteEvery == 0,
		}
	}
	return qs
}

// Run sweeps the configured concurrency levels, replaying the same
// deterministic query sequence at each, and returns one LevelResult per
// level in Levels order.
func Run(cfg Config) ([]LevelResult, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("replay: need n >= 2, have %d", cfg.N)
	}
	if cfg.Queries <= 0 {
		return nil, fmt.Errorf("replay: need queries > 0, have %d", cfg.Queries)
	}
	if len(cfg.Levels) == 0 {
		return nil, fmt.Errorf("replay: no concurrency levels")
	}
	for _, c := range cfg.Levels {
		if c <= 0 {
			return nil, fmt.Errorf("replay: concurrency level %d invalid", c)
		}
	}
	seq := Sequence(cfg)
	results := make([]LevelResult, 0, len(cfg.Levels))
	for _, c := range cfg.Levels {
		res, err := runLevel(cfg, seq, c)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}

// workerStats is one worker's private tally, merged after the level ends
// so the hot loop shares nothing but the query cursor.
type workerStats struct {
	distance, route, unreachable, errs, shed int
	latencies                                []time.Duration
}

// shedRetries bounds how often one query is retried through 429 load
// shedding before it counts as an error.
const shedRetries = 5

// shedBackoff is the pause before retrying a shed query: the server's
// Retry-After when it parses, otherwise a small linear backoff — capped
// at 50ms either way so a bench against a shedding server backs off
// without stalling for full Retry-After seconds.
func shedBackoff(retryAfter string, attempt int) time.Duration {
	const cap = 50 * time.Millisecond
	if secs, err := strconv.Atoi(retryAfter); err == nil && secs > 0 {
		d := time.Duration(secs) * time.Second
		if d > cap {
			d = cap
		}
		return d
	}
	d := time.Duration(attempt+1) * 2 * time.Millisecond
	if d > cap {
		d = cap
	}
	return d
}

func runLevel(cfg Config, seq []Query, concurrency int) (LevelResult, error) {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: concurrency,
	}}
	defer client.CloseIdleConnections()

	var cursor atomic.Int64
	stats := make([]workerStats, concurrency)
	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(ws *workerStats) {
			defer wg.Done()
			ws.latencies = make([]time.Duration, 0, len(seq)/concurrency+1)
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(seq) {
					return
				}
				q := seq[i]
				endpoint := "/distance"
				if q.Route {
					endpoint = "/route"
				}
				url := fmt.Sprintf("%s%s?s=%d&t=%d", cfg.BaseURL, endpoint, q.S, q.T)
				t0 := time.Now()
				var resp *http.Response
				var err error
				for attempt := 0; ; attempt++ {
					resp, err = client.Get(url)
					if err != nil || resp.StatusCode != http.StatusTooManyRequests || attempt >= shedRetries {
						break
					}
					retryAfter := resp.Header.Get("Retry-After")
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					ws.shed++
					time.Sleep(shedBackoff(retryAfter, attempt))
				}
				lat := time.Since(t0)
				if err != nil {
					ws.errs++
					e := fmt.Errorf("replay: %s: %w", url, err)
					firstErr.CompareAndSwap(nil, &e)
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil || resp.StatusCode != http.StatusOK {
					ws.errs++
					e := fmt.Errorf("replay: %s: status %d body %q", url, resp.StatusCode, body)
					firstErr.CompareAndSwap(nil, &e)
					continue
				}
				ws.latencies = append(ws.latencies, lat)
				if q.Route {
					ws.route++
				} else {
					ws.distance++
				}
				// The handlers mark unreachable pairs in the body; a
				// byte scan avoids a JSON decode on the hot path.
				if containsUnreachableTrue(body) {
					ws.unreachable++
				}
			}
		}(&stats[w])
	}
	wg.Wait()
	wall := time.Since(start)
	if ep := firstErr.Load(); ep != nil {
		return LevelResult{}, *ep
	}

	res := LevelResult{Concurrency: concurrency, Queries: len(seq)}
	var all []time.Duration
	for _, ws := range stats {
		res.DistanceQueries += ws.distance
		res.RouteQueries += ws.route
		res.Unreachable += ws.unreachable
		res.Errors += ws.errs
		res.Shed429 += ws.shed
		all = append(all, ws.latencies...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1000 }
	if len(all) > 0 {
		res.P50us = us(percentile(all, 50))
		res.P95us = us(percentile(all, 95))
		res.P99us = us(percentile(all, 99))
	}
	res.WallMS = float64(wall.Microseconds()) / 1000
	if wall > 0 {
		res.QPS = float64(len(seq)) / wall.Seconds()
	}
	return res, nil
}

// percentile reads the nearest-rank p-th percentile from a sorted slice.
func percentile(sorted []time.Duration, p int) time.Duration {
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}

// containsUnreachableTrue detects the marker the distance/route handlers
// set for unreachable pairs without decoding the whole body.
func containsUnreachableTrue(body []byte) bool {
	return bytes.Contains(body, []byte(`"unreachable":true`))
}
