package sssp

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

func runLocal(t *testing.T, g *graph.Graph, src, rounds int, seed int64) ([]int64, sim.Metrics) {
	t.Helper()
	out := make([]int64, g.N())
	m, err := sim.Run(g, sim.Config{Seed: seed}, func(env *sim.Env) {
		out[env.ID()] = Local(env, env.ID() == src, rounds)
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, m
}

func TestLocalExactAfterSPDRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(40)},
		{"weighted sparse", graph.WithRandomWeights(graph.SparseConnected(60, 1.2, rng), 9, rng)},
		{"grid", graph.Grid(6, 7)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spd := graph.SPD(tt.g)
			got, m := runLocal(t, tt.g, 0, spd, 3)
			want := graph.Dijkstra(tt.g, 0)
			for v := range got {
				if got[v] != want[v] {
					t.Fatalf("d(%d) = %d, want %d", v, got[v], want[v])
				}
			}
			if m.Rounds != spd {
				t.Fatalf("took %d rounds, want exactly SPD = %d", m.Rounds, spd)
			}
			if m.GlobalMsgs != 0 {
				t.Fatalf("LOCAL baseline used %d global messages", m.GlobalMsgs)
			}
		})
	}
}

func TestLocalIncompleteBeforeSPD(t *testing.T) {
	g := graph.Path(30)
	got, _ := runLocal(t, g, 0, 10, 5)
	if got[29] != graph.Inf {
		t.Fatalf("node 29 resolved to %d after 10 rounds; path needs 29", got[29])
	}
	if got[10] != 10 {
		t.Fatalf("node 10 = %d, want 10", got[10])
	}
}

func TestLocalSourceIsZero(t *testing.T) {
	g := graph.Cycle(12)
	got, _ := runLocal(t, g, 7, 6, 7)
	if got[7] != 0 {
		t.Fatalf("source distance = %d, want 0", got[7])
	}
}

func TestLocalAllMultiSource(t *testing.T) {
	g := graph.Grid(5, 5)
	sources := map[int]bool{0: true, 24: true}
	out := make([][]int64, g.N())
	_, err := sim.Run(g, sim.Config{Seed: 9}, func(env *sim.Env) {
		out[env.ID()] = LocalAll(env, sources[env.ID()], 8)
	})
	if err != nil {
		t.Fatal(err)
	}
	d0 := graph.Dijkstra(g, 0)
	d24 := graph.Dijkstra(g, 24)
	for v := 0; v < g.N(); v++ {
		if out[v][0] != d0[v] {
			t.Fatalf("node %d dist to 0 = %d, want %d", v, out[v][0], d0[v])
		}
		if out[v][24] != d24[v] {
			t.Fatalf("node %d dist to 24 = %d, want %d", v, out[v][24], d24[v])
		}
	}
}
