// Package sssp provides the single-source shortest path baselines the
// paper's results are measured against (§1's model comparison and the
// Theorem 1.3 discussion):
//
//   - Local: distributed Bellman-Ford over the LOCAL mode only — exact
//     after SPD(G) rounds (the quantity in [3]'s O~(sqrt(SPD)) algorithm
//     that Theorem 1.3 improves on for large-SPD graphs), and the Θ(D)
//     flooding behavior of any LOCAL-only algorithm.
//   - The HYBRID algorithms themselves live in package kssp
//     (Corollary 4.9 / RealBFSingleSource).
package sssp

import (
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/skeleton"
)

// Local runs `rounds` rounds of LOCAL-mode Bellman-Ford from the source and
// returns this node's distance estimate (graph.Inf if unreached). Exact
// when rounds >= SPD(G). Collective.
func Local(env *sim.Env, isSource bool, rounds int) int64 {
	near, _ := skeleton.LimitedExplore(env, isSource, rounds)
	if isSource {
		return 0
	}
	best := graph.Inf
	for _, d := range near {
		if d < best {
			best = d
		}
	}
	return best
}

// LocalAll is the k-source variant: sourceIDs must be globally known; the
// returned dense vector holds the estimate per source node (graph.Inf for
// sources out of reach, and for non-sources).
func LocalAll(env *sim.Env, isSource bool, rounds int) []int64 {
	near, _ := skeleton.LimitedExplore(env, isSource, rounds)
	return near
}
