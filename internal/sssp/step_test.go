package sssp

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// TestLocalMachinesMatch proves the LOCAL baseline step machines
// byte-identical to Local and LocalAll on every engine.
func TestLocalMachinesMatch(t *testing.T) {
	g := graph.Path(25)
	const rounds = 24
	isSource := func(id int) bool { return id == 3 }

	wantOne := make([]int64, g.N())
	wantAll := make([][]int64, g.N())
	wantM, err := sim.Run(g, sim.Config{Seed: 19, Engine: sim.EngineLegacy}, func(env *sim.Env) {
		wantOne[env.ID()] = Local(env, isSource(env.ID()), rounds)
		wantAll[env.ID()] = LocalAll(env, isSource(env.ID()), rounds)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []sim.Engine{sim.EngineLegacy, sim.EngineSharded, sim.EngineStep} {
		gotOne := make([]int64, g.N())
		gotAll := make([][]int64, g.N())
		gotM, err := sim.RunStep(g, sim.Config{Seed: 19, Engine: eng}, func(env *sim.Env) sim.StepProgram {
			id := env.ID()
			return sim.Sequence(
				func(env *sim.Env) sim.StepProgram {
					return NewLocalMachine(env, isSource(id), rounds, func(d int64) { gotOne[id] = d })
				},
				func(env *sim.Env) sim.StepProgram {
					return NewLocalAllMachine(env, isSource(id), rounds, func(v []int64) { gotAll[id] = v })
				},
			)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantOne, gotOne) || !reflect.DeepEqual(wantAll, gotAll) {
			t.Errorf("engine=%s: results differ", eng)
		}
		if wantM != gotM {
			t.Errorf("engine=%s: metrics differ: %+v vs %+v", eng, wantM, gotM)
		}
	}
}
