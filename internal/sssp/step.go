package sssp

import (
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/skeleton"
)

// Step-machine forms of the LOCAL-mode baselines (see sim.StepProgram),
// faithful ports of Local and LocalAll built on the exploration machine.
// done receives the node's result when the machine finishes.

// NewLocalMachine is the step form of Local: `rounds` rounds of LOCAL-mode
// Bellman-Ford from the source.
func NewLocalMachine(env *sim.Env, isSource bool, rounds int, done func(int64)) sim.StepProgram {
	var explore *skeleton.ExploreMachine
	return sim.Sequence(
		func(env *sim.Env) sim.StepProgram {
			explore = skeleton.NewExploreMachine(env, isSource, rounds)
			return explore
		},
		sim.Finish(func(env *sim.Env) {
			if isSource {
				done(0)
				return
			}
			best := graph.Inf
			for _, d := range explore.Near {
				if d < best {
					best = d
				}
			}
			done(best)
		}),
	)
}

// NewLocalAllMachine is the step form of LocalAll: the k-source variant
// returning the dense per-source estimate vector.
func NewLocalAllMachine(env *sim.Env, isSource bool, rounds int, done func([]int64)) sim.StepProgram {
	var explore *skeleton.ExploreMachine
	return sim.Sequence(
		func(env *sim.Env) sim.StepProgram {
			explore = skeleton.NewExploreMachine(env, isSource, rounds)
			return explore
		},
		sim.Finish(func(env *sim.Env) { done(explore.Near) }),
	)
}
