// Package lowerbound implements the paper's lower-bound apparatus (§6, §7):
// the Figure 1 worst-case graph behind the Ω~(sqrt k) k-SSP bound
// (Theorem 1.5), the Figure 2 family Γ^{a,b}_{k,ℓ,W} encoding 2-party set
// disjointness behind the Ω~(n^(1/3)) diameter bound (Theorem 1.6), machine
// verifiers for the structural Lemmas 7.1 and 7.2, the Alice/Bob column cut
// used by the simulation argument (Lemma 7.3), and the bound arithmetic.
//
// Lower bounds cannot be "measured"; what can be machine-checked are their
// two ingredients: the reduction's correctness (diameter gap ⇔ DISJ — a
// graph property verified exactly) and the information bottleneck (global
// bits crossing the Alice/Bob cut — instrumented by sim.Config.Cut).
package lowerbound

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// GammaParams sizes Γ^{a,b}_{k,ℓ,W} (Figure 2): four k-cliques, matching
// paths of ℓ hops, clique/attachment edges of weight W.
type GammaParams struct {
	K int
	L int
	W int64
}

// N returns the node count of the construction:
// 4k clique nodes + 2k matching paths with ℓ-1 interior nodes each +
// v̂, û + their connecting path's ℓ-1 interior nodes.
func (p GammaParams) N() int {
	return 4*p.K + 2*p.K*(p.L-1) + 2 + (p.L - 1)
}

// Bits returns the size k² of the encoded set-disjointness universe.
func (p GammaParams) Bits() int { return p.K * p.K }

// Gamma is one built instance.
type Gamma struct {
	G      *graph.Graph
	Params GammaParams
	// V1, V2, U1, U2 are the four k-sets; VHat and UHat the apex nodes.
	V1, V2, U1, U2 []int
	VHat, UHat     int
	// Column of each node: 0 = V-side cliques + v̂, L = U-side cliques + û,
	// 1..L-1 the path interiors (Lemma 7.3's simulation columns).
	Column []int
}

// AliceCut returns the bipartition for cut accounting: true for nodes in
// columns 0..L/2-1 (Alice's half in the Lemma 7.3 simulation).
func (g *Gamma) AliceCut() []bool {
	cut := make([]bool, g.G.N())
	for v, c := range g.Column {
		cut[v] = c < g.Params.L/2
	}
	return cut
}

// BuildGamma constructs Γ^{a,b}_{k,ℓ,W} for disjointness inputs
// a, b ∈ {0,1}^(k²): bit i maps to the pair (V1[i/k], V2[i%k]) resp.
// (U1[i/k], U2[i%k]), consistently with the matchings, and the pair is
// connected by a weight-W edge iff the bit is 0 (paper §7, Figure 2).
func BuildGamma(p GammaParams, a, b []bool) (*Gamma, error) {
	if p.K < 1 || p.L < 1 || p.W < 1 {
		return nil, fmt.Errorf("lowerbound: invalid params %+v", p)
	}
	if len(a) != p.Bits() || len(b) != p.Bits() {
		return nil, fmt.Errorf("lowerbound: inputs must have k^2 = %d bits, got %d and %d", p.Bits(), len(a), len(b))
	}
	g := graph.New(p.N())
	col := make([]int, p.N())
	next := 0
	alloc := func(column int) int {
		id := next
		next++
		col[id] = column
		return id
	}
	mkSet := func(column int) []int {
		out := make([]int, p.K)
		for i := range out {
			out[i] = alloc(column)
		}
		return out
	}
	v1 := mkSet(0)
	v2 := mkSet(0)
	u1 := mkSet(p.L)
	u2 := mkSet(p.L)
	vhat := alloc(0)
	uhat := alloc(p.L)

	clique := func(set []int) {
		for i := 0; i < len(set); i++ {
			for j := i + 1; j < len(set); j++ {
				g.MustAddEdge(set[i], set[j], p.W)
			}
		}
	}
	clique(v1)
	clique(v2)
	clique(u1)
	clique(u2)

	// ℓ-hop unit-weight path from x to y, interiors in columns 1..L-1.
	path := func(x, y int) {
		prev := x
		for i := 1; i < p.L; i++ {
			mid := alloc(i)
			g.MustAddEdge(prev, mid, 1)
			prev = mid
		}
		g.MustAddEdge(prev, y, 1)
	}
	for i := 0; i < p.K; i++ {
		path(v1[i], u1[i])
		path(v2[i], u2[i])
	}
	// Apexes: v̂ to all of V1 ∪ V2, û to all of U1 ∪ U2, weight W; the blue
	// path v̂ — û with ℓ unit edges.
	for i := 0; i < p.K; i++ {
		g.MustAddEdge(vhat, v1[i], p.W)
		g.MustAddEdge(vhat, v2[i], p.W)
		g.MustAddEdge(uhat, u1[i], p.W)
		g.MustAddEdge(uhat, u2[i], p.W)
	}
	path(vhat, uhat)

	// Input edges: bit = 0 inserts the red edge.
	for i := 0; i < p.Bits(); i++ {
		x, y := i/p.K, i%p.K
		if !a[i] {
			g.MustAddEdge(v1[x], v2[y], p.W)
		}
		if !b[i] {
			g.MustAddEdge(u1[x], u2[y], p.W)
		}
	}
	return &Gamma{
		G: g, Params: p,
		V1: v1, V2: v2, U1: u1, U2: u2,
		VHat: vhat, UHat: uhat,
		Column: col,
	}, nil
}

// Disjoint reports whether no index has a_i = b_i = 1.
func Disjoint(a, b []bool) bool {
	for i := range a {
		if a[i] && b[i] {
			return false
		}
	}
	return true
}

// RandomInstance draws a random disjointness instance over k2 bits with
// roughly density*k2 one-bits per side; if forceIntersect, one shared index
// is set in both.
func RandomInstance(k2 int, density float64, forceIntersect bool, rng *rand.Rand) ([]bool, []bool) {
	a := make([]bool, k2)
	b := make([]bool, k2)
	for i := range a {
		a[i] = rng.Float64() < density
		// Keep the instance disjoint by construction unless forced.
		if !a[i] {
			b[i] = rng.Float64() < density
		}
	}
	if forceIntersect {
		i := rng.Intn(k2)
		a[i], b[i] = true, true
	}
	return a, b
}

// VerifyLemma71 checks the weighted dichotomy: for W > ℓ, DISJ(a,b) iff
// diameter(Γ) <= W+2ℓ, and otherwise diameter >= 2W+ℓ.
func VerifyLemma71(p GammaParams, a, b []bool) error {
	if p.W <= int64(p.L) {
		return fmt.Errorf("lowerbound: Lemma 7.1 requires W > ℓ (got W=%d, ℓ=%d)", p.W, p.L)
	}
	gm, err := BuildGamma(p, a, b)
	if err != nil {
		return err
	}
	d := graph.WeightedDiameter(gm.G)
	low := p.W + 2*int64(p.L)
	high := 2*p.W + int64(p.L)
	if Disjoint(a, b) {
		if d > low {
			return fmt.Errorf("lowerbound: disjoint instance has diameter %d > W+2ℓ = %d", d, low)
		}
		return nil
	}
	if d < high {
		return fmt.Errorf("lowerbound: intersecting instance has diameter %d < 2W+ℓ = %d", d, high)
	}
	return nil
}

// VerifyLemma72 checks the unweighted dichotomy (W = 1): DISJ(a,b) iff
// diameter(Γ) = ℓ+1, else ℓ+2.
func VerifyLemma72(k, l int, a, b []bool) error {
	gm, err := BuildGamma(GammaParams{K: k, L: l, W: 1}, a, b)
	if err != nil {
		return err
	}
	d := graph.HopDiameter(gm.G)
	if Disjoint(a, b) {
		if d != int64(l)+1 {
			return fmt.Errorf("lowerbound: disjoint instance has D = %d, want ℓ+1 = %d", d, l+1)
		}
		return nil
	}
	if d != int64(l)+2 {
		return fmt.Errorf("lowerbound: intersecting instance has D = %d, want ℓ+2 = %d", d, l+2)
	}
	return nil
}

// GammaSizing returns the (k, ℓ) choice of Theorem 1.6's proof for a target
// network size n: ℓ = Θ((n/log²n)^(1/3)) and k·ℓ = Θ(n).
func GammaSizing(n int) (k, l int) {
	logn := math.Log2(math.Max(float64(n), 2))
	l = int(math.Cbrt(float64(n) / (logn * logn)))
	if l < 2 {
		l = 2
	}
	// Solve N(k, l) ~ n for k: n ≈ 2kl + 2k + l.
	k = (n - l - 1) / (2*l + 2)
	if k < 1 {
		k = 1
	}
	return k, l
}

// DiameterRoundLB evaluates the Theorem 1.6 bound Ω((n/log²n)^(1/3)): the
// number of rounds below which any 2/3-success diameter algorithm would
// violate the set-disjointness communication bound. The constant is the
// proof's: Alice and Bob exchange at most cap·msgBits·n bits per simulated
// round, and must exchange k² bits total within ℓ/2 - 1 rounds.
func DiameterRoundLB(n int) float64 {
	logn := math.Log2(math.Max(float64(n), 2))
	return math.Cbrt(float64(n) / (logn * logn))
}

// KSSPRoundLB evaluates the Theorem 1.5 bound Ω~(sqrt k): with L = sqrt(k),
// the Ω(k) bits of source-assignment entropy must cross a path whose global
// receive capacity is O(L·log²n) bits per round.
func KSSPRoundLB(k, n int) float64 {
	logn := math.Log2(math.Max(float64(n), 2))
	return math.Sqrt(float64(k)) / (logn * logn)
}
