package lowerbound

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Fig1Params sizes the Theorem 1.5 worst-case graph (Figure 1): a path of
// PathLen edges with the observer node b at one end, an attachment node v1
// at distance L from b carrying the sources assigned to S1, and the far end
// v2 carrying the sources assigned to S2.
type Fig1Params struct {
	K       int // number of sources
	L       int // distance of v1 from b; Θ~(sqrt k) in the proof
	PathLen int // path length; Ω(n)
}

// N returns the node count: PathLen+1 path nodes plus K source nodes.
func (p Fig1Params) N() int { return p.PathLen + 1 + p.K }

// Fig1 is one built instance.
type Fig1 struct {
	G       *graph.Graph
	Params  Fig1Params
	B       int   // observer node (path position 0)
	V1, V2  int   // attachment nodes (positions L and PathLen)
	Sources []int // source node IDs, in input order
	// InS1 mirrors the assignment: InS1[i] reports whether source i hangs
	// off v1 (the near attachment) — the secret b must learn.
	InS1 []bool
}

// BuildFig1 constructs the graph for a given source assignment (true = S1).
// All edges have unit weight (the bound holds on unweighted graphs).
func BuildFig1(p Fig1Params, inS1 []bool) (*Fig1, error) {
	if p.K < 1 || p.L < 1 || p.PathLen <= p.L {
		return nil, fmt.Errorf("lowerbound: invalid Figure 1 params %+v", p)
	}
	if len(inS1) != p.K {
		return nil, fmt.Errorf("lowerbound: assignment has %d bits for %d sources", len(inS1), p.K)
	}
	g := graph.New(p.N())
	// Path nodes 0..PathLen; b = 0, v1 = L, v2 = PathLen.
	for i := 0; i < p.PathLen; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	sources := make([]int, p.K)
	for i := 0; i < p.K; i++ {
		s := p.PathLen + 1 + i
		sources[i] = s
		if inS1[i] {
			g.MustAddEdge(s, p.L, 1)
		} else {
			g.MustAddEdge(s, p.PathLen, 1)
		}
	}
	return &Fig1{
		G:       g,
		Params:  p,
		B:       0,
		V1:      p.L,
		V2:      p.PathLen,
		Sources: sources,
		InS1:    append([]bool(nil), inS1...),
	}, nil
}

// Verify checks the structural facts the Theorem 1.5 argument rests on:
// d(b, s) = L+1 for s ∈ S1 and PathLen+1 for s ∈ S2, so learning all
// distances at b reveals the full assignment; and the approximation gap
// d_S2/d_S1 = Θ(n/sqrt(k)) that rules out α-approximations for
// α <= α' ∈ Θ(n/sqrt(k)).
func (f *Fig1) Verify() error {
	d := graph.BFS(f.G, f.B)
	for i, s := range f.Sources {
		want := int64(f.Params.PathLen + 1)
		if f.InS1[i] {
			want = int64(f.Params.L + 1)
		}
		if d[s] != want {
			return fmt.Errorf("lowerbound: d(b, source %d) = %d, want %d", i, d[s], want)
		}
	}
	return nil
}

// ApproxGap returns α' = (PathLen+1)/(L+1), the largest approximation
// factor the construction defeats (Theorem 1.5's Θ(n/sqrt k)).
func (f *Fig1) ApproxGap() float64 {
	return float64(f.Params.PathLen+1) / float64(f.Params.L+1)
}

// EntropyBits returns the Shannon entropy of a uniformly random balanced
// assignment of k sources to S1/S2 — the Ω~(k) bits b must receive:
// log2(C(k, k/2)) ≈ k - O(log k).
func EntropyBits(k int) float64 {
	// log2(k choose k/2) via log-gamma.
	lg := func(x float64) float64 {
		g, _ := math.Lgamma(x)
		return g
	}
	half := float64(k) / 2
	nats := lg(float64(k)+1) - lg(half+1) - lg(float64(k)-half+1)
	return nats / math.Ln2
}

// PathCapacityBits returns the per-round global receive capacity of the
// first L path nodes in bits: L nodes × O(log n) messages × O(log n) bits
// (the Lemma 4.4-of-[3] bottleneck quantity).
func PathCapacityBits(l, n, sendFactor int) float64 {
	logn := math.Log2(math.Max(float64(n), 2))
	return float64(l) * float64(sendFactor) * logn * logn
}

// Fig1Sizing picks (K, L, PathLen) for a target n: L = ceil(sqrt(k)),
// path of ~n/2 edges, k = n/2 sources.
func Fig1Sizing(n int) Fig1Params {
	k := n / 2
	if k < 1 {
		k = 1
	}
	l := int(math.Ceil(math.Sqrt(float64(k))))
	return Fig1Params{K: k, L: l, PathLen: n - 1 - k}
}

// AliceCutFig1 marks the Figure 1 bottleneck cut: b and the first L path
// nodes on one side, everything else (the graph body holding the secret)
// on the other.
func (f *Fig1) AliceCut() []bool {
	cut := make([]bool, f.G.N())
	for v := 0; v <= f.Params.L; v++ {
		cut[v] = true
	}
	return cut
}
