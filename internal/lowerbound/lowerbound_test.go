package lowerbound

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestGammaStructure(t *testing.T) {
	p := GammaParams{K: 3, L: 4, W: 10}
	a := make([]bool, p.Bits())
	b := make([]bool, p.Bits())
	gm, err := BuildGamma(p, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if gm.G.N() != p.N() {
		t.Fatalf("N = %d, want %d", gm.G.N(), p.N())
	}
	if err := gm.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if !gm.G.Connected() {
		t.Fatal("Gamma must be connected")
	}
	// Matching paths: V1[i] to U1[i] at hop distance exactly L.
	for i := 0; i < p.K; i++ {
		d := graph.BFS(gm.G, gm.V1[i])
		if d[gm.U1[i]] != int64(p.L) {
			t.Fatalf("hop(V1[%d], U1[%d]) = %d, want %d", i, i, d[gm.U1[i]], p.L)
		}
	}
	// Apex path: v̂ to û at hop distance L.
	d := graph.BFS(gm.G, gm.VHat)
	if d[gm.UHat] != int64(p.L) {
		t.Fatalf("hop(v̂, û) = %d, want %d", d[gm.UHat], p.L)
	}
	// Columns: cliques at 0 and L.
	for _, v := range gm.V1 {
		if gm.Column[v] != 0 {
			t.Fatalf("V1 node %d in column %d", v, gm.Column[v])
		}
	}
	for _, u := range gm.U2 {
		if gm.Column[u] != p.L {
			t.Fatalf("U2 node %d in column %d", u, gm.Column[u])
		}
	}
}

func TestGammaRejectsBadInput(t *testing.T) {
	p := GammaParams{K: 2, L: 3, W: 5}
	if _, err := BuildGamma(p, make([]bool, 3), make([]bool, 4)); err == nil {
		t.Fatal("accepted wrong-length inputs")
	}
	if _, err := BuildGamma(GammaParams{K: 0, L: 3, W: 5}, nil, nil); err == nil {
		t.Fatal("accepted k=0")
	}
}

func TestLemma71Exhaustive(t *testing.T) {
	// k = 2 (4-bit universe): all 256 (a, b) combinations.
	p := GammaParams{K: 2, L: 3, W: 9}
	for am := 0; am < 16; am++ {
		for bm := 0; bm < 16; bm++ {
			a := bitsOf(am, 4)
			b := bitsOf(bm, 4)
			if err := VerifyLemma71(p, a, b); err != nil {
				t.Fatalf("a=%04b b=%04b: %v", am, bm, err)
			}
		}
	}
}

func TestLemma72Exhaustive(t *testing.T) {
	for am := 0; am < 16; am++ {
		for bm := 0; bm < 16; bm++ {
			if err := VerifyLemma72(2, 4, bitsOf(am, 4), bitsOf(bm, 4)); err != nil {
				t.Fatalf("a=%04b b=%04b: %v", am, bm, err)
			}
		}
	}
}

func bitsOf(mask, n int) []bool {
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = mask&(1<<i) != 0
	}
	return out
}

func TestLemma71RandomLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := GammaParams{K: 5, L: 6, W: 20}
	for trial := 0; trial < 10; trial++ {
		a, b := RandomInstance(p.Bits(), 0.3, trial%2 == 1, rng)
		if err := VerifyLemma71(p, a, b); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestLemma72RandomLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		a, b := RandomInstance(16, 0.4, trial%2 == 0, rng)
		if err := VerifyLemma72(4, 5, a, b); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestLemma71RequiresWGreaterL(t *testing.T) {
	p := GammaParams{K: 2, L: 5, W: 5}
	if err := VerifyLemma71(p, make([]bool, 4), make([]bool, 4)); err == nil {
		t.Fatal("W <= ℓ should be rejected")
	}
}

func TestRandomInstanceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, b := RandomInstance(100, 0.3, false, rng)
	if !Disjoint(a, b) {
		t.Fatal("unforced instance should be disjoint by construction")
	}
	a, b = RandomInstance(100, 0.3, true, rng)
	if Disjoint(a, b) {
		t.Fatal("forced instance must intersect")
	}
}

func TestGammaSizing(t *testing.T) {
	for _, n := range []int{100, 1000, 10000} {
		k, l := GammaSizing(n)
		p := GammaParams{K: k, L: l, W: int64(l) + 1}
		got := p.N()
		if got < n/2 || got > 2*n {
			t.Fatalf("GammaSizing(%d) -> k=%d l=%d builds N=%d, want within [n/2, 2n]", n, k, l, got)
		}
	}
}

func TestDiameterRoundLBMonotone(t *testing.T) {
	prev := 0.0
	for _, n := range []int{100, 1000, 10000, 100000} {
		lb := DiameterRoundLB(n)
		if lb <= prev {
			t.Fatalf("DiameterRoundLB not increasing at n=%d", n)
		}
		prev = lb
	}
	// Spot value: (1e6 / 20²)^(1/3) ≈ 13.6.
	if lb := DiameterRoundLB(1 << 20); lb < 10 || lb > 20 {
		t.Fatalf("DiameterRoundLB(2^20) = %v, want ~13.6", lb)
	}
}

func TestFig1StructureAndVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := Fig1Params{K: 12, L: 4, PathLen: 40}
	inS1 := make([]bool, p.K)
	for i := range inS1 {
		inS1[i] = rng.Intn(2) == 0
	}
	f, err := BuildFig1(p, inS1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.G.N() != p.N() {
		t.Fatalf("N = %d, want %d", f.G.N(), p.N())
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	// The gap defeats approximations up to (PathLen+1)/(L+1).
	if gap := f.ApproxGap(); gap < 8 {
		t.Fatalf("ApproxGap = %v, want > 8 for these params", gap)
	}
}

func TestFig1RejectsBadParams(t *testing.T) {
	if _, err := BuildFig1(Fig1Params{K: 2, L: 10, PathLen: 5}, make([]bool, 2)); err == nil {
		t.Fatal("PathLen <= L should be rejected")
	}
	if _, err := BuildFig1(Fig1Params{K: 2, L: 1, PathLen: 5}, make([]bool, 3)); err == nil {
		t.Fatal("wrong assignment length should be rejected")
	}
}

func TestEntropyBits(t *testing.T) {
	// log2 C(k, k/2) ≈ k - 0.5 log2(k) - 0.5 log2(pi/2); check it is close
	// to k for moderate k.
	for _, k := range []int{16, 64, 256} {
		e := EntropyBits(k)
		if e < float64(k)-2*math.Log2(float64(k)) || e > float64(k) {
			t.Fatalf("EntropyBits(%d) = %v implausible", k, e)
		}
	}
}

func TestBoundArithmetic(t *testing.T) {
	// The Theorem 1.5 argument: entropy / path capacity rounds lower bound
	// must be Θ~(sqrt k).
	n := 4096
	k := n / 2
	l := int(math.Ceil(math.Sqrt(float64(k))))
	rounds := EntropyBits(k) / PathCapacityBits(l, n, 1)
	ratio := rounds / math.Sqrt(float64(k))
	// rounds ≈ k/(sqrt(k) log²n) = sqrt(k)/log²n.
	wantRatio := 1 / math.Pow(math.Log2(float64(n)), 2)
	if ratio < wantRatio/4 || ratio > wantRatio*4 {
		t.Fatalf("bound arithmetic off: rounds/sqrt(k) = %v, want ~%v", ratio, wantRatio)
	}
}

func TestFig1AliceCut(t *testing.T) {
	f, err := BuildFig1(Fig1Params{K: 6, L: 3, PathLen: 20}, make([]bool, 6))
	if err != nil {
		t.Fatal(err)
	}
	cut := f.AliceCut()
	count := 0
	for _, c := range cut {
		if c {
			count++
		}
	}
	if count != f.Params.L+1 {
		t.Fatalf("Alice side has %d nodes, want L+1 = %d", count, f.Params.L+1)
	}
}

func TestGammaAliceCut(t *testing.T) {
	p := GammaParams{K: 2, L: 6, W: 8}
	gm, err := BuildGamma(p, make([]bool, 4), make([]bool, 4))
	if err != nil {
		t.Fatal(err)
	}
	cut := gm.AliceCut()
	// V-side cliques and v̂ must be on Alice's side; U-side and û on Bob's.
	for _, v := range append(append([]int{}, gm.V1...), gm.VHat) {
		if !cut[v] {
			t.Fatalf("node %d (column 0) not on Alice side", v)
		}
	}
	for _, u := range append(append([]int{}, gm.U1...), gm.UHat) {
		if cut[u] {
			t.Fatalf("node %d (column L) on Alice side", u)
		}
	}
}

// Property: the dichotomy of Lemma 7.2 holds for random instances and
// random small sizes.
func TestQuickLemma72(t *testing.T) {
	f := func(seed int64, kRaw, lRaw uint8) bool {
		k := 2 + int(kRaw%3)
		l := 3 + int(lRaw%4)
		rng := rand.New(rand.NewSource(seed))
		a, b := RandomInstance(k*k, 0.35, seed%2 == 0, rng)
		return VerifyLemma72(k, l, a, b) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
