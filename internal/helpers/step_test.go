package helpers

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// TestMachineMatchesCompute proves the Algorithm 1 step machine
// byte-identical to the goroutine form on every engine.
func TestMachineMatchesCompute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.SparseConnected(60, 1.2, rng)
	inW := make([]bool, g.N())
	for i := range inW {
		inW[i] = rng.Float64() < 0.25
	}
	mu := 3

	want := make([]Result, g.N())
	wantM, err := sim.Run(g, sim.Config{Seed: 9, Engine: sim.EngineLegacy}, func(env *sim.Env) {
		want[env.ID()] = Compute(env, inW[env.ID()], mu, Params{})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []sim.Engine{sim.EngineLegacy, sim.EngineSharded, sim.EngineStep} {
		got := make([]Result, g.N())
		gotM, err := sim.RunStep(g, sim.Config{Seed: 9, Engine: eng}, func(env *sim.Env) sim.StepProgram {
			m := NewMachine(env, inW[env.ID()], mu, Params{})
			return sim.Sequence(
				func(*sim.Env) sim.StepProgram { return m },
				sim.Finish(func(env *sim.Env) { got[env.ID()] = m.Res }),
			)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("engine=%s: results differ", eng)
		}
		if wantM != gotM {
			t.Errorf("engine=%s: metrics differ: %+v vs %+v", eng, wantM, gotM)
		}
	}
}
