// Package helpers implements Algorithm 1 of the paper (Compute-Helpers):
// given a set W ⊆ V (each node knows whether it belongs), build a family of
// helper sets {H_w | w ∈ W} satisfying Definition 2.1:
//
//	(1) each H_w has size at least µ,
//	(2) every helper is within O~(µ) hops of its w,
//	(3) every node joins at most O~(1) helper sets.
//
// The construction follows §2.1: compute a (2µ+1, 2µ⌈log n⌉)-ruling set,
// cluster every node with its closest ruler (ties to the smaller ID, which
// keeps clusters connected), learn the full membership of the own cluster by
// local flooding, then join H_w for every w ∈ W in the own cluster
// independently with probability q = min(QBoost·2µ/|C|, 1).
//
// QBoost is a constant-factor tuning knob (paper: 1, i.e. q = 2µ/|C|; we
// default to 2) — Lemma 2.2's w.h.p. guarantees are asymptotic, and the
// boost makes property (1) hold robustly at the laptop-scale n the
// experiment suite runs; it does not change any asymptotic cost because it
// only scales E[|H_w|] and the O~(1) membership count by a constant.
package helpers

import (
	"fmt"

	"repro/internal/flatmap"
	"repro/internal/graph"
	"repro/internal/ruling"
	"repro/internal/sim"
)

// clusterWave announces a ruler through the local network.
type clusterWave struct {
	Ruler int
	Dist  int
}

// memberRec announces one cluster member during intra-cluster flooding.
type memberRec struct {
	ID    int
	Ruler int
	InW   bool
}

// Result is what one node knows after Compute finishes.
type Result struct {
	// Ruler is the ID of this node's cluster ruler; RulerDist its hop
	// distance.
	Ruler     int
	RulerDist int
	// Members lists all nodes of this cluster, sorted by ID.
	Members []int
	// WMembers lists the W-nodes of this cluster, sorted by ID.
	WMembers []int
	// Helps lists the w ∈ W whose helper set H_w this node joined, sorted.
	Helps []int
	// InW records the node's own membership in W.
	InW bool
	// Mu echoes the effective µ parameter.
	Mu int
}

// Params tunes the constants.
type Params struct {
	// QBoost scales the join probability q = min(QBoost*2µ/|C|, 1).
	// Zero means 2.
	QBoost int
	// Clusters, if non-nil, reuses the seed-independent cluster structure
	// (ruling set, ruler assignment, member directories — all deterministic
	// functions of the graph and µ) across constructions with the same µ,
	// paying one 2·ceil(log2 n)-round collective agreement plus a 2β-round
	// W-membership flood instead of the full ruling-set, cluster-formation
	// and member-flood phases on a hit. See ClusterCache.
	Clusters *ClusterCache
}

func (p Params) withDefaults() Params {
	if p.QBoost <= 0 {
		p.QBoost = 2
	}
	return p
}

// Rounds returns the exact round count of Compute for given n and µ:
// the ruling set plus β rounds of cluster formation plus 2β rounds of
// member flooding, β = 2µ⌈log n⌉ (matching Algorithm 1's loop bounds).
func Rounds(n, mu int) int {
	if mu < 1 {
		mu = 1
	}
	beta := 2 * mu * sim.Log2Ceil(n)
	return ruling.Rounds(n, mu) + beta + 2*beta
}

// Compute runs Algorithm 1 collectively. All nodes must call it in the same
// round with the same µ and params; without a cluster cache it takes exactly
// Rounds(n, µ) rounds and uses only the local network. With Params.Clusters
// set it additionally runs the 2·ceil(log2 n)-round collective agreement
// first, and a hit replaces the first two thirds of the construction with
// the cached structure (see ClusterCache).
func Compute(env *sim.Env, inW bool, mu int, params Params) Result {
	p := params.withDefaults()
	if mu < 1 {
		mu = 1
	}
	if p.Clusters != nil {
		return p.Clusters.compute(env, inW, mu, p)
	}
	return computeCold(env, inW, mu, p)
}

// computeCold is the uncached Algorithm 1 construction: the ruling set,
// cluster formation, member flooding, and helper sampling.
func computeCold(env *sim.Env, inW bool, mu int, p Params) Result {
	n := env.N()
	beta := 2 * mu * sim.Log2Ceil(n)

	isRuler := ruling.Compute(env, mu)

	// Phase 2: cluster formation. Rulers start waves; every node tracks the
	// lexicographically smallest (dist, rulerID) it has heard and forwards
	// improvements. β rounds reach every node (domination radius).
	bestDist, bestRuler := n+1, -1
	if isRuler {
		bestDist, bestRuler = 0, env.ID()
	}
	improved := isRuler
	// Waves broadcast as pointers into a rotated pair so the hot loop
	// stages no fresh interface payloads; the slot sent at round r is not
	// rewritten before r+2 (see the delta-buffer comment in
	// skeleton.LimitedExplore for the ownership argument).
	var waveBuf [2]clusterWave
	for step := 0; step < beta; step++ {
		if improved {
			waveBuf[step&1] = clusterWave{Ruler: bestRuler, Dist: bestDist}
			env.BroadcastLocal(&waveBuf[step&1])
			improved = false
		}
		in := env.Step()
		for _, lm := range in.Local {
			w, ok := lm.Payload.(*clusterWave)
			if !ok {
				continue
			}
			d := w.Dist + 1
			if d < bestDist || (d == bestDist && w.Ruler < bestRuler) {
				bestDist, bestRuler = d, w.Ruler
				improved = true
			}
		}
	}

	// Phase 3: learn all members of the own cluster. Nodes flood records of
	// their own cluster for 2β rounds (intra-cluster diameter bound). The
	// dedup directory is a flat map (ID -> InW) and the delta buffers
	// rotate, so steady-state flood rounds allocate nothing.
	var known flatmap.Map[bool]
	known.Put(uint64(env.ID()), inW)
	var bufs [2]memberRecs
	bufs[0] = append(bufs[0], memberRec{ID: env.ID(), Ruler: bestRuler, InW: inW})
	for step := 0; step < 2*beta; step++ {
		if len(bufs[step&1]) > 0 {
			env.BroadcastLocal(&bufs[step&1])
		}
		in := env.Step()
		next := bufs[(step+1)&1][:0]
		for _, lm := range in.Local {
			recs, ok := lm.Payload.(*memberRecs)
			if !ok {
				continue
			}
			for _, r := range *recs {
				if r.Ruler != bestRuler {
					continue // other cluster, not ours to track or forward
				}
				if !known.Has(uint64(r.ID)) {
					known.Put(uint64(r.ID), r.InW)
					next = append(next, r)
				}
			}
		}
		bufs[(step+1)&1] = next
	}

	res := memberResult(bestRuler, bestDist, inW, mu, &known)
	res.Helps = sampleHelps(env, p, mu, len(res.Members), res.WMembers)
	return res
}

// memberResult drains the member directory into a Result (shared by the
// goroutine and step forms of the cold construction). The sorted drain
// yields Members and WMembers in ascending ID order directly.
func memberResult(ruler, dist int, inW bool, mu int, known *flatmap.Map[bool]) Result {
	res := Result{
		Ruler:     ruler,
		RulerDist: dist,
		InW:       inW,
		Mu:        mu,
	}
	for _, k := range known.AppendSortedKeys(nil) {
		id := int(k)
		res.Members = append(res.Members, id)
		if w, _ := known.Get(k); w {
			res.WMembers = append(res.WMembers, id)
		}
	}
	return res
}

// sampleHelps runs phase 4 of Algorithm 1: sample helper memberships with
// q = min(QBoost*2µ/|C|, 1). Every w ∈ W additionally joins its own helper
// set deterministically: that guarantees H_w is never empty even when the
// w.h.p. sampling bound fails at small n, costs each node at most one
// extra membership, and keeps properties (1)-(3) intact (hop(w,w) = 0).
// Shared by the cold and cluster-cached paths of both execution forms; it
// consumes exactly one random draw per non-self W member below the
// saturation bound, so the rand-stream position after Compute is identical
// whichever path ran.
func sampleHelps(env *sim.Env, p Params, mu, clusterSize int, wMembers []int) []int {
	num := p.QBoost * 2 * mu
	var helps []int
	for _, w := range wMembers {
		if w == env.ID() || num >= clusterSize || env.Rand().Intn(clusterSize) < num {
			helps = append(helps, w)
		}
	}
	return helps
}

// CheckFamily verifies Definition 2.1 over a full set of per-node results
// sequentially. results[v] is node v's Result; membership of node x in H_w
// means w ∈ results[x].Helps. maxLoadFactor bounds property (3) as
// |{w : x ∈ H_w}| <= maxLoadFactor * ceil(log2 n); radiusFactor bounds
// property (2) as hop(w, x) <= radiusFactor * µ * ceil(log2 n).
func CheckFamily(g *graph.Graph, results []Result, mu int, maxLoadFactor, radiusFactor int) error {
	n := g.N()
	if len(results) != n {
		return fmt.Errorf("helpers: %d results for %d nodes", len(results), n)
	}
	logN := sim.Log2Ceil(n)

	// Collect H_w from the per-node Helps lists.
	hw := map[int][]int{}
	for x := 0; x < n; x++ {
		for _, w := range results[x].Helps {
			hw[w] = append(hw[w], x)
		}
		if load := len(results[x].Helps); load > maxLoadFactor*logN {
			return fmt.Errorf("helpers: node %d helps %d sets, cap %d (property 3)", x, load, maxLoadFactor*logN)
		}
	}
	for w := 0; w < n; w++ {
		if !results[w].InW {
			if len(hw[w]) > 0 {
				return fmt.Errorf("helpers: node %d not in W but has helpers", w)
			}
			continue
		}
		set := hw[w]
		if len(set) < mu {
			return fmt.Errorf("helpers: |H_%d| = %d < µ = %d (property 1)", w, len(set), mu)
		}
		d := graph.BFS(g, w)
		for _, x := range set {
			if d[x] > int64(radiusFactor*mu*logN) {
				return fmt.Errorf("helpers: helper %d of %d is %d hops away, cap %d (property 2)",
					x, w, d[x], radiusFactor*mu*logN)
			}
		}
	}
	return nil
}

// ClusterCheck verifies the clustering invariants: every node is assigned
// the (dist, id)-lexicographically closest ruler and clusters have size at
// least µ+1 when n > µ.
func ClusterCheck(g *graph.Graph, results []Result, mu int) error {
	n := g.N()
	rulers := map[int]bool{}
	for v := 0; v < n; v++ {
		rulers[results[v].Ruler] = true
	}
	sizes := map[int]int{}
	for v := 0; v < n; v++ {
		sizes[results[v].Ruler]++
	}
	for r := range rulers {
		if results[r].Ruler != r {
			return fmt.Errorf("helpers: ruler %d assigned to cluster %d", r, results[r].Ruler)
		}
		if n > mu && sizes[r] < mu+1 {
			return fmt.Errorf("helpers: cluster %d has %d members, want >= µ+1 = %d", r, sizes[r], mu+1)
		}
	}
	for v := 0; v < n; v++ {
		d := graph.BFS(g, v)
		bestDist, bestRuler := int64(n+1), -1
		for r := range rulers {
			if d[r] < bestDist || (d[r] == bestDist && r < bestRuler) {
				bestDist, bestRuler = d[r], r
			}
		}
		if results[v].Ruler != bestRuler || int64(results[v].RulerDist) != bestDist {
			return fmt.Errorf("helpers: node %d joined (%d,%d), closest is (%d,%d)",
				v, results[v].Ruler, results[v].RulerDist, bestRuler, bestDist)
		}
	}
	return nil
}
