package helpers

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/flatmap"
	"repro/internal/ncc"
	"repro/internal/persist"
	"repro/internal/sim"
)

// ClusterCache caches the seed-independent structure of Algorithm 1 across
// runs: the ruling set, every node's (ruler, distance) assignment, and the
// per-cluster member directories. The ruling-set elimination is the
// deterministic bitwise-ID algorithm of Lemma 2.1 and cluster formation is
// deterministic wave propagation, so for a fixed graph the whole structure
// is a pure function of µ — it does not depend on the seed, on W, or on
// any sampled state. That makes it the reusable core of a warm start: a
// run over the same graph with a *different* seed (or different W sets)
// can still skip the ruling set and cluster formation, and only re-learn
// the W membership of its cluster (a 2β-round flood) and re-sample helper
// memberships.
//
// Correctness is collective, exactly like routing.SessionCache: the cached
// path first runs one global max-aggregation (2·ceil(log2 n) rounds,
// Lemma B.2) in which each node reports whether its slot is populated.
// Only a unanimous yes binds the cached structure; any gap rebuilds from
// scratch (re-populating the cache). Every node therefore takes the same
// branch on every engine. Phases 1-3 of Algorithm 1 consume no randomness,
// so skipping them leaves every node's rand-stream position unchanged —
// the helper sampling that follows draws identically on both paths, and
// results are byte-identical hit or miss.
//
// Bound member slices are shared between the cache and every Result bound
// from it; callers must treat Result.Members of a cache-bound Result as
// immutable (every algorithm in this repository only reads it).
type ClusterCache struct {
	lock    sync.Mutex
	entries map[int]*clusterEntry // keyed by µ
	order   []int                 // insertion order, for deterministic FIFO eviction
	trace   func(event string)
}

// maxClusterEntries bounds the cache. Eviction is FIFO on insertion order —
// deterministic, so repeated seeded runs keep identical hit/miss sequences
// and therefore identical round counts.
const maxClusterEntries = 16

// NewClusterCache returns an empty cache, ready to be shared by any number
// of sequential runs over the same graph.
func NewClusterCache() *ClusterCache {
	return &ClusterCache{entries: map[int]*clusterEntry{}}
}

// SetTrace installs a cache-event hook: fn is invoked (at node 0 only) with
// one line per collective agreement, saying whether the run bound the
// cached structure or rebuilt. The sequence is engine-independent; the
// golden round-trace test pins it.
func (c *ClusterCache) SetTrace(fn func(event string)) { c.trace = fn }

// traceEvent records one collective agreement outcome (node 0 only, so the
// trace is a single global sequence shared by all execution forms).
func (c *ClusterCache) traceEvent(env *sim.Env, mu int, hit bool) {
	if c.trace == nil || env.ID() != 0 {
		return
	}
	verdict := "rebuild"
	if hit {
		verdict = "hit"
	}
	c.trace(fmt.Sprintf("clusters µ=%d: %s", mu, verdict))
}

// clusterEntry holds one µ's cached structure. The per-node slots (ruler,
// dist, filled) are only ever read and written by their own node; the
// member directory is shared across the cluster's nodes and guarded by
// dirLock because every member stores the (identical) list on a miss.
type clusterEntry struct {
	filled []bool
	ruler  []int32
	dist   []int32

	dirLock sync.Mutex
	members map[int][]int // ruler -> sorted member list, one shared copy
}

func newClusterEntry(n int) *clusterEntry {
	return &clusterEntry{
		filled:  make([]bool, n),
		ruler:   make([]int32, n),
		dist:    make([]int32, n),
		members: map[int][]int{},
	}
}

func (c *ClusterCache) lookup(mu int) *clusterEntry {
	c.lock.Lock()
	defer c.lock.Unlock()
	return c.entries[mu]
}

// shared returns the run-shared entry being (re)populated for µ, creating
// it and installing it into the cache exactly once per run (env.SharedOnce
// guarantees all nodes of the run store into the same object; its per-call
// sequence numbering keeps repeated constructions within one run distinct).
func (c *ClusterCache) shared(env *sim.Env, mu int) *clusterEntry {
	v := env.SharedOnce("helpers.ClusterCache", func() interface{} {
		e := newClusterEntry(env.N())
		c.lock.Lock()
		if _, exists := c.entries[mu]; !exists {
			if len(c.order) >= maxClusterEntries {
				oldest := c.order[0]
				c.order = c.order[1:]
				delete(c.entries, oldest)
			}
			c.order = append(c.order, mu)
		}
		c.entries[mu] = e
		c.lock.Unlock()
		return e
	})
	return v.(*clusterEntry)
}

// mismatch reports whether this node's slot of entry is unpopulated (1) or
// ready (0); a nil entry always mismatches. There is no per-seed state to
// compare — the structure is seed-independent — so population is the whole
// check. The value feeds the collective max-aggregation.
func (e *clusterEntry) mismatch(id int) int64 {
	if e == nil || !e.filled[id] {
		return 1
	}
	return 0
}

// store records one node's freshly built structure into its slot, sharing
// the member directory: the first member of each cluster to arrive
// installs its list, later members drop their (identical) copies.
func (e *clusterEntry) store(id int, res Result) {
	e.ruler[id] = int32(res.Ruler)
	e.dist[id] = int32(res.RulerDist)
	e.dirLock.Lock()
	if _, ok := e.members[res.Ruler]; !ok {
		e.members[res.Ruler] = res.Members
	}
	e.dirLock.Unlock()
	e.filled[id] = true
}

// bind returns this node's cached structure, consuming zero rounds. The
// members slice is shared with the cache and must not be mutated.
func (e *clusterEntry) bind(id int) (ruler, dist int, members []int) {
	ruler = int(e.ruler[id])
	e.dirLock.Lock()
	members = e.members[ruler]
	e.dirLock.Unlock()
	return ruler, int(e.dist[id]), members
}

// compute is the cached construction path (goroutine form): the collective
// hit/miss agreement, then either the structural shortcut — cached ruler
// assignment and member directory, a 2β-round W-membership flood, fresh
// helper sampling — or the full Algorithm 1 build that re-populates the
// cache.
func (c *ClusterCache) compute(env *sim.Env, inW bool, mu int, p Params) Result {
	entry := c.lookup(mu)
	hit := ncc.Aggregate(env, entry.mismatch(env.ID()), ncc.AggMax) == 0
	c.traceEvent(env, mu, hit)
	if hit {
		ruler, dist, members := entry.bind(env.ID())
		wm := floodW(env, inW, ruler, 2*clusterBeta(env.N(), mu))
		return finishFromCluster(env, p, mu, ruler, dist, members, wm, inW)
	}
	res := computeCold(env, inW, mu, p)
	c.shared(env, mu).store(env.ID(), res)
	return res
}

// clusterBeta is the β = 2µ·ceil(log2 n) phase length of Algorithm 1.
func clusterBeta(n, mu int) int { return 2 * mu * sim.Log2Ceil(n) }

// finishFromCluster assembles a Result from the cached structure, a
// freshly flooded W membership, and fresh helper sampling — the tail of
// the structural-hit path, shared by both execution forms. It produces
// exactly what computeCold would: the cached phases are deterministic, so
// their output is the same, and sampleHelps draws the same randomness.
func finishFromCluster(env *sim.Env, p Params, mu, ruler, dist int, members, wMembers []int, inW bool) Result {
	res := Result{
		Ruler:     ruler,
		RulerDist: dist,
		Members:   members,
		WMembers:  wMembers,
		InW:       inW,
		Mu:        mu,
	}
	res.Helps = sampleHelps(env, p, mu, len(members), wMembers)
	return res
}

// wRec announces one W member during the structural-hit flood. It carries
// the ruler so receivers can constrain propagation to their own cluster,
// exactly like the member flood it replaces.
type wRec struct {
	ID    int
	Ruler int
}

// wRecs is the local-mode payload of the W-membership flood.
type wRecs []wRec

// PayloadWords implements sim.WordSized: each record is an ID and a ruler
// ID, like a member record.
func (r wRecs) PayloadWords() int64 { return 2 * int64(len(r)) }

// floodW floods W membership inside clusters for `rounds` rounds and
// returns the sorted W members of this node's cluster. It is the
// structural-hit replacement of phase 3: only W nodes inject records (the
// member list itself is cached), propagation is the same
// own-cluster-only forwarding over the same subgraph for the same 2β
// rounds, so it reaches exactly the nodes the member flood would and the
// resulting WMembers list is byte-identical to the cold one. Dedup and
// delta staging follow the member flood's allocation discipline: a flat
// set plus rotated delta buffers (see skeleton.LimitedExplore).
func floodW(env *sim.Env, inW bool, ruler int, rounds int) []int {
	var seen flatmap.Set
	var bufs [2]wRecs
	if inW {
		seen.Add(uint64(env.ID()))
		bufs[0] = append(bufs[0], wRec{ID: env.ID(), Ruler: ruler})
	}
	for step := 0; step < rounds; step++ {
		if len(bufs[step&1]) > 0 {
			env.BroadcastLocal(&bufs[step&1])
		}
		in := env.Step()
		bufs[(step+1)&1] = collectW(env, in, ruler, &seen, bufs[(step+1)&1][:0])
	}
	return sortedSetKeys(&seen)
}

// collectW folds one round's arrivals into seen and returns the fresh
// records to forward, staged into next (shared by both execution forms).
func collectW(env *sim.Env, in sim.Inbox, ruler int, seen *flatmap.Set, next wRecs) wRecs {
	for _, lm := range in.Local {
		recs, ok := lm.Payload.(*wRecs)
		if !ok {
			continue
		}
		for _, r := range *recs {
			if r.Ruler != ruler {
				continue // other cluster, not ours to track or forward
			}
			if !seen.Has(uint64(r.ID)) {
				seen.Add(uint64(r.ID))
				next = append(next, r)
			}
		}
	}
	return next
}

// sortedSetKeys drains a flat set of node IDs in ascending order.
func sortedSetKeys(set *flatmap.Set) []int {
	if set.Len() == 0 {
		return nil
	}
	keys := set.AppendSortedKeys(nil)
	out := make([]int, len(keys))
	for i, k := range keys {
		out[i] = int(k)
	}
	return out
}

// Len reports the number of cached entries (for tests and diagnostics).
func (c *ClusterCache) Len() int {
	c.lock.Lock()
	defer c.lock.Unlock()
	return len(c.entries)
}

// ClusterSnapshot is the serializable image of a ClusterCache — the
// seed-independent "structural section" of the on-disk warm-start cache.
// Entries preserve insertion order so a restored cache keeps the same
// deterministic FIFO eviction sequence. Member directories are stored once
// per cluster as packed sorted ID vectors; per-node slots hold only the
// ruler reference and distance.
type ClusterSnapshot struct {
	Entries []ClusterEntrySnapshot
}

// ClusterEntrySnapshot is one µ's cached structure.
type ClusterEntrySnapshot struct {
	Mu     int
	Filled []bool
	Ruler  []int32
	Dist   []int32
	// Rulers lists the cluster rulers with a stored directory, sorted;
	// Members[i] is the packed (persist.PackSorted) member list of
	// Rulers[i].
	Rulers  []int
	Members [][]byte
}

// Snapshot captures the cache's current contents for persistence. The
// packed member vectors are fresh copies; the snapshot is safe to
// serialize at any point between runs.
func (c *ClusterCache) Snapshot() ClusterSnapshot {
	c.lock.Lock()
	defer c.lock.Unlock()
	snap := ClusterSnapshot{Entries: make([]ClusterEntrySnapshot, 0, len(c.order))}
	for _, mu := range c.order {
		e := c.entries[mu]
		es := ClusterEntrySnapshot{
			Mu:     mu,
			Filled: e.filled,
			Ruler:  e.ruler,
			Dist:   e.dist,
		}
		e.dirLock.Lock()
		es.Rulers = make([]int, 0, len(e.members))
		for r := range e.members {
			es.Rulers = append(es.Rulers, r)
		}
		sort.Ints(es.Rulers)
		es.Members = make([][]byte, len(es.Rulers))
		for i, r := range es.Rulers {
			es.Members[i] = persist.PackSorted(e.members[r])
		}
		e.dirLock.Unlock()
		snap.Entries = append(snap.Entries, es)
	}
	return snap
}

// Restore replaces the cache's contents with a snapshot recorded for an
// n-node graph, validating shape and decoding the packed directories. A
// snapshot from a different graph must be prevented by the caller (the
// facade keys the structural cache file by graph fingerprint); within the
// same graph the structure is seed-independent, which is exactly what
// makes restoring it under a new seed a valid partial warm start.
func (c *ClusterCache) Restore(snap ClusterSnapshot, n int) error {
	entries := map[int]*clusterEntry{}
	order := make([]int, 0, len(snap.Entries))
	for i, es := range snap.Entries {
		if len(es.Filled) != n || len(es.Ruler) != n || len(es.Dist) != n {
			return fmt.Errorf("helpers: cluster snapshot entry %d sized for %d nodes, want %d", i, len(es.Filled), n)
		}
		if len(es.Members) != len(es.Rulers) {
			return fmt.Errorf("helpers: cluster snapshot entry %d has %d directories for %d rulers", i, len(es.Members), len(es.Rulers))
		}
		if _, dup := entries[es.Mu]; dup {
			return fmt.Errorf("helpers: cluster snapshot has duplicate entry for µ=%d", es.Mu)
		}
		e := newClusterEntry(n)
		copy(e.filled, es.Filled)
		copy(e.ruler, es.Ruler)
		copy(e.dist, es.Dist)
		for j, r := range es.Rulers {
			members, err := persist.UnpackSorted(es.Members[j])
			if err != nil {
				return fmt.Errorf("helpers: cluster snapshot entry %d ruler %d: %w", i, r, err)
			}
			if len(members) > 0 && members[len(members)-1] >= n {
				return fmt.Errorf("helpers: cluster snapshot entry %d ruler %d: member %d out of range", i, r, members[len(members)-1])
			}
			e.members[r] = members
		}
		// Every populated slot must resolve to a stored directory, or a
		// structural hit would bind a nil member list.
		for id := 0; id < n; id++ {
			if es.Filled[id] {
				if _, ok := e.members[int(es.Ruler[id])]; !ok {
					return fmt.Errorf("helpers: cluster snapshot entry %d: node %d references ruler %d with no directory", i, id, es.Ruler[id])
				}
			}
		}
		entries[es.Mu] = e
		order = append(order, es.Mu)
	}
	c.lock.Lock()
	c.entries = entries
	c.order = order
	c.lock.Unlock()
	return nil
}

// Structure returns the cached per-node view (ruler, dist, members) for
// one populated slot of one µ entry, for the routing snapshot to resolve
// its dedup references against. It returns ok=false when the entry, the
// slot, or the directory is missing — a dangling reference. The members
// slice is shared with the cache and must not be mutated.
func (c *ClusterCache) Structure(mu, id int) (ruler, dist int, members []int, ok bool) {
	e := c.lookup(mu)
	if e == nil || id < 0 || id >= len(e.filled) || !e.filled[id] {
		return 0, 0, nil, false
	}
	r := int(e.ruler[id])
	e.dirLock.Lock()
	m, found := e.members[r]
	e.dirLock.Unlock()
	if !found {
		return 0, 0, nil, false
	}
	return r, int(e.dist[id]), m, true
}
