package helpers

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// runCompute executes Algorithm 1 on g with W sampled at probability p.
func runCompute(t *testing.T, g *graph.Graph, inW []bool, mu int, seed int64) []Result {
	t.Helper()
	results := make([]Result, g.N())
	m, err := sim.Run(g, sim.Config{Seed: seed}, func(env *sim.Env) {
		results[env.ID()] = Compute(env, inW[env.ID()], mu, Params{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := Rounds(g.N(), mu); m.Rounds != want {
		t.Fatalf("Compute took %d rounds, want exactly %d", m.Rounds, want)
	}
	if m.GlobalMsgs != 0 {
		t.Fatalf("Compute used %d global messages; Algorithm 1 is local-only", m.GlobalMsgs)
	}
	return results
}

func sampleW(n int, p float64, seed int64) []bool {
	rng := rand.New(rand.NewSource(seed))
	w := make([]bool, n)
	for i := range w {
		w[i] = rng.Float64() < p
	}
	return w
}

func TestClusterInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tests := []struct {
		name string
		g    *graph.Graph
		mu   int
	}{
		{"path", graph.Path(50), 2},
		{"grid", graph.Grid(8, 8), 2},
		{"sparse", graph.SparseConnected(60, 1, rng), 2},
		{"cycle", graph.Cycle(48), 3},
		{"barbell", graph.Barbell(12, 16), 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			inW := sampleW(tt.g.N(), 0.3, 7)
			results := runCompute(t, tt.g, inW, tt.mu, 11)
			if err := ClusterCheck(tt.g, results, tt.mu); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestClusterMembersConsistent(t *testing.T) {
	g := graph.Grid(6, 6)
	inW := sampleW(g.N(), 0.25, 5)
	results := runCompute(t, g, inW, 2, 13)

	// Group truth: members by ruler.
	byRuler := map[int][]int{}
	for v, r := range results {
		byRuler[r.Ruler] = append(byRuler[r.Ruler], v)
	}
	for v, r := range results {
		want := byRuler[r.Ruler]
		if len(r.Members) != len(want) {
			t.Fatalf("node %d sees %d cluster members, want %d", v, len(r.Members), len(want))
		}
		seen := map[int]bool{}
		for _, m := range r.Members {
			seen[m] = true
		}
		for _, m := range want {
			if !seen[m] {
				t.Fatalf("node %d missing cluster member %d", v, m)
			}
		}
		// WMembers must be exactly the W-flagged members.
		wCount := 0
		for _, m := range want {
			if inW[m] {
				wCount++
			}
		}
		if len(r.WMembers) != wCount {
			t.Fatalf("node %d sees %d W-members, want %d", v, len(r.WMembers), wCount)
		}
	}
}

func TestHelperFamilyProperties(t *testing.T) {
	// Definition 2.1 on a workload that mirrors the token-routing usage:
	// W sampled with probability p = n^-0.5, µ = min(sqrt(k), 1/p).
	rng := rand.New(rand.NewSource(9))
	g := graph.SparseConnected(144, 1.5, rng)
	n := g.N()
	p := 1.0 / 12.0 // n^-0.5 for n=144
	inW := sampleW(n, p, 21)
	mu := 3 // min(sqrt(k)~3, 1/p=12)
	results := runCompute(t, g, inW, mu, 23)
	if err := CheckFamily(g, results, mu, 6, 6); err != nil {
		t.Fatal(err)
	}
}

func TestHelperFamilyOnGrid(t *testing.T) {
	g := graph.Grid(12, 12)
	inW := sampleW(g.N(), 0.1, 31)
	results := runCompute(t, g, inW, 2, 33)
	if err := CheckFamily(g, results, 2, 6, 6); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyW(t *testing.T) {
	g := graph.Path(30)
	inW := make([]bool, 30)
	results := runCompute(t, g, inW, 2, 41)
	for v, r := range results {
		if len(r.Helps) != 0 || len(r.WMembers) != 0 {
			t.Fatalf("node %d has helper state despite empty W: %+v", v, r)
		}
	}
}

func TestAllNodesInW(t *testing.T) {
	// Degenerate p = 1: everything still validates with a generous load cap
	// (each node helps O(µ·|W∩C|/|C|) = O(µ) sets here).
	g := graph.Grid(5, 5)
	inW := make([]bool, g.N())
	for i := range inW {
		inW[i] = true
	}
	results := runCompute(t, g, inW, 1, 43)
	if err := ClusterCheck(g, results, 1); err != nil {
		t.Fatal(err)
	}
	// Property 1 must still hold.
	hw := map[int]int{}
	for _, r := range results {
		for _, w := range r.Helps {
			hw[w]++
		}
	}
	for w := range inW {
		if hw[w] < 1 {
			t.Fatalf("node %d in W has %d helpers, want >= µ = 1", w, hw[w])
		}
	}
}

func TestHelpersAreClusterLocal(t *testing.T) {
	g := graph.Grid(7, 7)
	inW := sampleW(g.N(), 0.2, 51)
	results := runCompute(t, g, inW, 2, 53)
	for v, r := range results {
		for _, w := range r.Helps {
			if results[w].Ruler != r.Ruler {
				t.Fatalf("node %d (cluster %d) helps %d (cluster %d)", v, r.Ruler, w, results[w].Ruler)
			}
		}
	}
}

func TestRoundsFormula(t *testing.T) {
	// Rounds = ruling (2µ logN) + β + 2β with β = 2µ logN => 8µ logN total.
	n, mu := 64, 2
	logN := sim.Log2Ceil(n)
	if got, want := Rounds(n, mu), 8*mu*logN; got != want {
		t.Fatalf("Rounds(%d,%d) = %d, want %d", n, mu, got, want)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	g := graph.Grid(6, 6)
	inW := sampleW(g.N(), 0.3, 61)
	a := runCompute(t, g, inW, 2, 63)
	b := runCompute(t, g, inW, 2, 63)
	for v := range a {
		if a[v].Ruler != b[v].Ruler || len(a[v].Helps) != len(b[v].Helps) {
			t.Fatalf("node %d results differ between identical runs", v)
		}
		for i := range a[v].Helps {
			if a[v].Helps[i] != b[v].Helps[i] {
				t.Fatalf("node %d helper list differs between identical runs", v)
			}
		}
	}
}
