package helpers

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

var cacheEngines = []sim.Engine{sim.EngineLegacy, sim.EngineSharded, sim.EngineStep}

// computePipeline runs Compute collectively through both execution forms
// (selected by the engine) and returns the per-node results and metrics.
func computePipeline(t *testing.T, g *graph.Graph, inW []bool, mu int, p Params, eng sim.Engine, seed int64) ([]Result, sim.Metrics) {
	t.Helper()
	pipe := sim.Pipeline[Result]{
		Run: func(env *sim.Env) Result {
			return Compute(env, inW[env.ID()], mu, p)
		},
		Machine: func(env *sim.Env, done func(Result)) sim.StepProgram {
			m := NewMachine(env, inW[env.ID()], mu, p)
			return sim.Sequence(
				func(env *sim.Env) sim.StepProgram { return m },
				sim.Finish(func(env *sim.Env) { done(m.Res) }),
			)
		},
	}
	out, m, err := sim.RunPipeline(g, sim.Config{Seed: seed, Engine: eng}, pipe)
	if err != nil {
		t.Fatal(err)
	}
	return out, m
}

// structuralHitRounds is the exact round count of a cluster-cache hit: the
// collective agreement plus the 2β-round W flood (no ruling set, no
// cluster formation, no member flood).
func structuralHitRounds(n, mu int) int {
	return 2*sim.Log2Ceil(n) + 2*clusterBeta(n, mu)
}

// TestClusterCacheReuseAcrossRuns pins the structural cache contract on
// every engine: the first cached run pays exactly the agreement on top of
// the uncached construction, a repeat run binds the cached structure and
// pays only agreement + W flood, and neither changes any node's Result.
func TestClusterCacheReuseAcrossRuns(t *testing.T) {
	g := graph.Grid(7, 7)
	n := g.N()
	const mu = 2
	inW := sampleW(n, 0.3, 7)
	base, baseM := computePipeline(t, g, inW, mu, Params{}, sim.EngineLegacy, 11)
	agreeRounds := 2 * sim.Log2Ceil(n)

	for _, eng := range cacheEngines {
		p := Params{Clusters: NewClusterCache()}
		first, firstM := computePipeline(t, g, inW, mu, p, eng, 11)
		second, secondM := computePipeline(t, g, inW, mu, p, eng, 11)
		if !reflect.DeepEqual(first, base) || !reflect.DeepEqual(second, base) {
			t.Errorf("%s: cached runs produce different results than uncached", eng)
		}
		if firstM.Rounds != baseM.Rounds+agreeRounds {
			t.Errorf("%s: first cached run took %d rounds, want uncached %d + agreement %d",
				eng, firstM.Rounds, baseM.Rounds, agreeRounds)
		}
		if want := structuralHitRounds(n, mu); secondM.Rounds != want {
			t.Errorf("%s: structural hit took %d rounds, want agreement + W flood = %d", eng, secondM.Rounds, want)
		}
	}
}

// TestClusterCacheCrossSeedReuse is the seed-split property at package
// level: the structure cached under one W assignment and seed serves a run
// with a different W and seed — W membership is re-flooded and helper
// sampling redrawn, so the result is byte-identical to that run's own
// uncached output, at structural-hit cost.
func TestClusterCacheCrossSeedReuse(t *testing.T) {
	g := graph.Grid(7, 7)
	n := g.N()
	const mu = 2
	inWA := sampleW(n, 0.3, 7)
	inWB := sampleW(n, 0.4, 8)
	baseB, _ := computePipeline(t, g, inWB, mu, Params{}, sim.EngineLegacy, 12)

	for _, eng := range cacheEngines {
		p := Params{Clusters: NewClusterCache()}
		computePipeline(t, g, inWA, mu, p, eng, 11) // populate under seed 11 / W_A
		gotB, mB := computePipeline(t, g, inWB, mu, p, eng, 12)
		if !reflect.DeepEqual(gotB, baseB) {
			t.Errorf("%s: cross-seed structural hit diverges from the uncached run of the new seed", eng)
		}
		if want := structuralHitRounds(n, mu); mB.Rounds != want {
			t.Errorf("%s: cross-seed run took %d rounds, want structural hit %d", eng, mB.Rounds, want)
		}
	}
}

// TestClusterCacheSnapshotRestore pins the persistence contract: a
// restored snapshot (round-tripped through gob, as the on-disk codec does)
// serves a structural hit identically to the in-memory cache on every
// engine, and shape validation rejects malformed snapshots.
func TestClusterCacheSnapshotRestore(t *testing.T) {
	g := graph.Grid(7, 7)
	n := g.N()
	const mu = 2
	inW := sampleW(n, 0.3, 7)

	cache := NewClusterCache()
	computePipeline(t, g, inW, mu, Params{Clusters: cache}, sim.EngineLegacy, 11) // populate
	memOut, memM := computePipeline(t, g, inW, mu, Params{Clusters: cache}, sim.EngineLegacy, 11)

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cache.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var snap ClusterSnapshot
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&snap); err != nil {
		t.Fatal(err)
	}

	for _, eng := range cacheEngines {
		restored := NewClusterCache()
		if err := restored.Restore(snap, n); err != nil {
			t.Fatal(err)
		}
		out, m := computePipeline(t, g, inW, mu, Params{Clusters: restored}, eng, 11)
		if !reflect.DeepEqual(out, memOut) {
			t.Errorf("%s: restored structural hit differs from warm-memory", eng)
		}
		if m != memM {
			t.Errorf("%s: restored metrics %+v differ from warm-memory %+v", eng, m, memM)
		}
	}

	if err := NewClusterCache().Restore(snap, n+1); err == nil {
		t.Error("restoring a snapshot recorded for a different node count succeeded")
	}

	// A populated slot whose ruler has no stored directory is a dangling
	// reference and must be rejected.
	bad := cache.Snapshot()
	bad.Entries[0].Rulers = nil
	bad.Entries[0].Members = nil
	if err := NewClusterCache().Restore(bad, n); err == nil {
		t.Error("restoring a snapshot with dangling ruler references succeeded")
	}
}

// TestClusterCacheEviction pins the FIFO bound: distinct µ keys beyond
// maxClusterEntries evict the oldest entry, and a re-keyed construction
// after eviction rebuilds rather than binding stale state.
func TestClusterCacheEviction(t *testing.T) {
	g := graph.Grid(5, 5)
	n := g.N()
	inW := sampleW(n, 0.4, 3)
	cache := NewClusterCache()
	for mu := 1; mu <= maxClusterEntries+2; mu++ {
		computePipeline(t, g, inW, mu, Params{Clusters: cache}, sim.EngineLegacy, 11)
	}
	if got := cache.Len(); got > maxClusterEntries {
		t.Fatalf("cache holds %d entries, cap %d", got, maxClusterEntries)
	}
	// µ=1 was evicted: rerunning it must rebuild (uncached + agreement).
	_, baseM := computePipeline(t, g, inW, 1, Params{}, sim.EngineLegacy, 11)
	_, m := computePipeline(t, g, inW, 1, Params{Clusters: cache}, sim.EngineLegacy, 11)
	if m.Rounds != baseM.Rounds+2*sim.Log2Ceil(n) {
		t.Errorf("evicted key reran in %d rounds, want rebuild %d + agreement %d",
			m.Rounds, baseM.Rounds, 2*sim.Log2Ceil(n))
	}
}
