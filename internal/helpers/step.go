package helpers

import (
	"sort"

	"repro/internal/ncc"
	"repro/internal/ruling"
	"repro/internal/sim"
)

// Machine is the step-machine form of Compute (Algorithm 1), built from the
// ruling-set machine and two flood loops. After it finishes, Res holds the
// node's helper-family view. The port is faithful to Compute: identical
// messages, randomness order, and round count on every engine.
type Machine struct {
	// Res is this node's Algorithm 1 output; valid once Step returned true.
	Res Result

	prog sim.StepProgram
}

// NewMachine builds the collective Algorithm 1 machine; all nodes must
// start it in the same round with the same µ and params, exactly like
// Compute. With params.Clusters set it is the step form of the
// cluster-cached construction: the collective agreement aggregation, then
// either the structural shortcut (cached ruler assignment and member
// directory, the 2β-round W flood, fresh helper sampling) or the full
// build re-populating the cache — the same rounds, messages, and branch
// as the goroutine form.
func NewMachine(env *sim.Env, inW bool, mu int, params Params) *Machine {
	p := params.withDefaults()
	if mu < 1 {
		mu = 1
	}
	m := &Machine{}
	if p.Clusters == nil {
		m.prog = newColdProg(env, m, inW, mu, p)
		return m
	}
	entry := p.Clusters.lookup(mu)
	inner := &Machine{}
	var agg *ncc.AggregateMachine
	var wf *wFloodMachine
	var ruler, dist int
	var members []int
	m.prog = sim.Sequence(
		func(env *sim.Env) sim.StepProgram {
			agg = ncc.NewAggregateMachine(env, entry.mismatch(env.ID()), ncc.AggMax)
			return agg
		},
		func(env *sim.Env) sim.StepProgram {
			hit := agg.Out == 0
			p.Clusters.traceEvent(env, mu, hit)
			if hit {
				ruler, dist, members = entry.bind(env.ID())
				wf = newWFloodMachine(env, inW, ruler, 2*clusterBeta(env.N(), mu))
				return wf
			}
			inner.prog = newColdProg(env, inner, inW, mu, p)
			return inner
		},
		sim.Finish(func(env *sim.Env) {
			if agg.Out == 0 {
				m.Res = finishFromCluster(env, p, mu, ruler, dist, members, wf.WMembers(), inW)
				return
			}
			m.Res = inner.Res
			p.Clusters.shared(env, mu).store(env.ID(), inner.Res)
		}),
	)
	return m
}

// wFloodMachine is the step form of floodW: the 2β-round W-membership
// flood of the structural-hit path.
type wFloodMachine struct {
	seen  map[int]bool
	delta wRecs
	loop  sim.Loop
}

func newWFloodMachine(env *sim.Env, inW bool, ruler int, rounds int) *wFloodMachine {
	w := &wFloodMachine{seen: map[int]bool{}}
	if inW {
		w.seen[env.ID()] = true
		w.delta = wRecs{{ID: env.ID(), Ruler: ruler}}
	}
	w.loop = sim.Loop{
		Rounds: rounds,
		Send: func(env *sim.Env, i int) {
			if len(w.delta) > 0 {
				env.BroadcastLocal(w.delta)
			}
		},
		Recv: func(env *sim.Env, in sim.Inbox, i int) {
			w.delta = collectW(env, in, ruler, w.seen)
		},
	}
	return w
}

// Step implements sim.StepProgram.
func (w *wFloodMachine) Step(env *sim.Env) bool { return w.loop.Step(env) }

// WMembers returns the sorted W members of this node's cluster; valid once
// Step returned true.
func (w *wFloodMachine) WMembers() []int { return sortedKeys(w.seen) }

// newColdProg is the uncached Algorithm 1 machine, writing the finished
// result to m.Res (the step twin of computeCold).
func newColdProg(env *sim.Env, m *Machine, inW bool, mu int, p Params) sim.StepProgram {
	n := env.N()
	beta := 2 * mu * sim.Log2Ceil(n)

	var rule *ruling.Machine
	// Phase 2 state: the lexicographically smallest (dist, ruler) heard.
	bestDist, bestRuler := n+1, -1
	improved := false
	// Phase 3 state: the known members of the own cluster.
	var known map[int]memberRec
	var delta memberRecs

	return sim.Sequence(
		func(env *sim.Env) sim.StepProgram {
			rule = ruling.NewMachine(env, mu)
			return rule
		},
		func(env *sim.Env) sim.StepProgram {
			if rule.InSet {
				bestDist, bestRuler = 0, env.ID()
				improved = true
			}
			return &sim.Loop{
				Rounds: beta,
				Send: func(env *sim.Env, i int) {
					if improved {
						env.BroadcastLocal(clusterWave{Ruler: bestRuler, Dist: bestDist})
						improved = false
					}
				},
				Recv: func(env *sim.Env, in sim.Inbox, i int) {
					for _, lm := range in.Local {
						w, ok := lm.Payload.(clusterWave)
						if !ok {
							continue
						}
						d := w.Dist + 1
						if d < bestDist || (d == bestDist && w.Ruler < bestRuler) {
							bestDist, bestRuler = d, w.Ruler
							improved = true
						}
					}
				},
			}
		},
		func(env *sim.Env) sim.StepProgram {
			known = map[int]memberRec{env.ID(): {ID: env.ID(), Ruler: bestRuler, InW: inW}}
			delta = memberRecs{known[env.ID()]}
			return &sim.Loop{
				Rounds: 2 * beta,
				Send: func(env *sim.Env, i int) {
					if len(delta) > 0 {
						env.BroadcastLocal(delta)
					}
				},
				Recv: func(env *sim.Env, in sim.Inbox, i int) {
					var next memberRecs
					for _, lm := range in.Local {
						recs, ok := lm.Payload.(memberRecs)
						if !ok {
							continue
						}
						for _, r := range recs {
							if r.Ruler != bestRuler {
								continue // other cluster, not ours to track or forward
							}
							if _, seen := known[r.ID]; !seen {
								known[r.ID] = r
								next = append(next, r)
							}
						}
					}
					delta = next
				},
			}
		},
		sim.Finish(func(env *sim.Env) {
			res := Result{
				Ruler:     bestRuler,
				RulerDist: bestDist,
				InW:       inW,
				Mu:        mu,
			}
			for id, r := range known {
				res.Members = append(res.Members, id)
				if r.InW {
					res.WMembers = append(res.WMembers, id)
				}
			}
			sort.Ints(res.Members)
			sort.Ints(res.WMembers)
			res.Helps = sampleHelps(env, p, mu, len(res.Members), res.WMembers)
			m.Res = res
		}),
	)
}

// Step implements sim.StepProgram.
func (m *Machine) Step(env *sim.Env) bool { return m.prog.Step(env) }

// PayloadWords implements sim.WordSized: a cluster wave carries a ruler ID
// and a hop distance.
func (clusterWave) PayloadWords() int64 { return 2 }

// memberRecs is the local-mode payload of the intra-cluster member flood: a
// batch of member records.
type memberRecs []memberRec

// PayloadWords implements sim.WordSized: each record is an ID and a ruler
// ID (the InW bit rides along for free).
func (r memberRecs) PayloadWords() int64 { return 2 * int64(len(r)) }
