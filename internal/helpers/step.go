package helpers

import (
	"repro/internal/flatmap"
	"repro/internal/ncc"
	"repro/internal/ruling"
	"repro/internal/sim"
)

// Machine is the step-machine form of Compute (Algorithm 1), built from the
// ruling-set machine and two flood loops. After it finishes, Res holds the
// node's helper-family view. The port is faithful to Compute: identical
// messages, randomness order, and round count on every engine.
type Machine struct {
	// Res is this node's Algorithm 1 output; valid once Step returned true.
	Res Result

	prog sim.StepProgram
}

// NewMachine builds the collective Algorithm 1 machine; all nodes must
// start it in the same round with the same µ and params, exactly like
// Compute. With params.Clusters set it is the step form of the
// cluster-cached construction: the collective agreement aggregation, then
// either the structural shortcut (cached ruler assignment and member
// directory, the 2β-round W flood, fresh helper sampling) or the full
// build re-populating the cache — the same rounds, messages, and branch
// as the goroutine form.
func NewMachine(env *sim.Env, inW bool, mu int, params Params) *Machine {
	p := params.withDefaults()
	if mu < 1 {
		mu = 1
	}
	m := &Machine{}
	if p.Clusters == nil {
		m.prog = newColdProg(env, m, inW, mu, p)
		return m
	}
	entry := p.Clusters.lookup(mu)
	inner := &Machine{}
	var agg *ncc.AggregateMachine
	var wf *wFloodMachine
	var ruler, dist int
	var members []int
	m.prog = sim.Sequence(
		func(env *sim.Env) sim.StepProgram {
			agg = ncc.NewAggregateMachine(env, entry.mismatch(env.ID()), ncc.AggMax)
			return agg
		},
		func(env *sim.Env) sim.StepProgram {
			hit := agg.Out == 0
			p.Clusters.traceEvent(env, mu, hit)
			if hit {
				ruler, dist, members = entry.bind(env.ID())
				wf = newWFloodMachine(env, inW, ruler, 2*clusterBeta(env.N(), mu))
				return wf
			}
			inner.prog = newColdProg(env, inner, inW, mu, p)
			return inner
		},
		sim.Finish(func(env *sim.Env) {
			if agg.Out == 0 {
				m.Res = finishFromCluster(env, p, mu, ruler, dist, members, wf.WMembers(), inW)
				return
			}
			m.Res = inner.Res
			p.Clusters.shared(env, mu).store(env.ID(), inner.Res)
		}),
	)
	return m
}

// wFloodMachine is the step form of floodW: the 2β-round W-membership
// flood of the structural-hit path. Its dedup set and delta buffers follow
// the same allocation discipline as floodW.
type wFloodMachine struct {
	seen flatmap.Set
	bufs [2]wRecs
	loop sim.Loop
}

func newWFloodMachine(env *sim.Env, inW bool, ruler int, rounds int) *wFloodMachine {
	w := &wFloodMachine{}
	if inW {
		w.seen.Add(uint64(env.ID()))
		w.bufs[0] = append(w.bufs[0], wRec{ID: env.ID(), Ruler: ruler})
	}
	w.loop = sim.Loop{
		Rounds: rounds,
		Send: func(env *sim.Env, i int) {
			if len(w.bufs[i&1]) > 0 {
				env.BroadcastLocal(&w.bufs[i&1])
			}
		},
		Recv: func(env *sim.Env, in sim.Inbox, i int) {
			w.bufs[(i+1)&1] = collectW(env, in, ruler, &w.seen, w.bufs[(i+1)&1][:0])
		},
	}
	return w
}

// Step implements sim.StepProgram.
func (w *wFloodMachine) Step(env *sim.Env) bool { return w.loop.Step(env) }

// WMembers returns the sorted W members of this node's cluster; valid once
// Step returned true.
func (w *wFloodMachine) WMembers() []int { return sortedSetKeys(&w.seen) }

// newColdProg is the uncached Algorithm 1 machine, writing the finished
// result to m.Res (the step twin of computeCold).
func newColdProg(env *sim.Env, m *Machine, inW bool, mu int, p Params) sim.StepProgram {
	n := env.N()
	beta := 2 * mu * sim.Log2Ceil(n)

	var rule *ruling.Machine
	// Phase 2 state: the lexicographically smallest (dist, ruler) heard.
	// Waves rotate through waveBuf exactly as in computeCold.
	bestDist, bestRuler := n+1, -1
	improved := false
	var waveBuf [2]clusterWave
	// Phase 3 state: the known members of the own cluster (ID -> InW) plus
	// the rotated delta buffers, mirroring computeCold.
	var known flatmap.Map[bool]
	var bufs [2]memberRecs

	return sim.Sequence(
		func(env *sim.Env) sim.StepProgram {
			rule = ruling.NewMachine(env, mu)
			return rule
		},
		func(env *sim.Env) sim.StepProgram {
			if rule.InSet {
				bestDist, bestRuler = 0, env.ID()
				improved = true
			}
			return &sim.Loop{
				Rounds: beta,
				Send: func(env *sim.Env, i int) {
					if improved {
						waveBuf[i&1] = clusterWave{Ruler: bestRuler, Dist: bestDist}
						env.BroadcastLocal(&waveBuf[i&1])
						improved = false
					}
				},
				Recv: func(env *sim.Env, in sim.Inbox, i int) {
					for _, lm := range in.Local {
						w, ok := lm.Payload.(*clusterWave)
						if !ok {
							continue
						}
						d := w.Dist + 1
						if d < bestDist || (d == bestDist && w.Ruler < bestRuler) {
							bestDist, bestRuler = d, w.Ruler
							improved = true
						}
					}
				},
			}
		},
		func(env *sim.Env) sim.StepProgram {
			known.Put(uint64(env.ID()), inW)
			bufs[0] = append(bufs[0], memberRec{ID: env.ID(), Ruler: bestRuler, InW: inW})
			return &sim.Loop{
				Rounds: 2 * beta,
				Send: func(env *sim.Env, i int) {
					if len(bufs[i&1]) > 0 {
						env.BroadcastLocal(&bufs[i&1])
					}
				},
				Recv: func(env *sim.Env, in sim.Inbox, i int) {
					next := bufs[(i+1)&1][:0]
					for _, lm := range in.Local {
						recs, ok := lm.Payload.(*memberRecs)
						if !ok {
							continue
						}
						for _, r := range *recs {
							if r.Ruler != bestRuler {
								continue // other cluster, not ours to track or forward
							}
							if !known.Has(uint64(r.ID)) {
								known.Put(uint64(r.ID), r.InW)
								next = append(next, r)
							}
						}
					}
					bufs[(i+1)&1] = next
				},
			}
		},
		sim.Finish(func(env *sim.Env) {
			res := memberResult(bestRuler, bestDist, inW, mu, &known)
			res.Helps = sampleHelps(env, p, mu, len(res.Members), res.WMembers)
			m.Res = res
		}),
	)
}

// Step implements sim.StepProgram.
func (m *Machine) Step(env *sim.Env) bool { return m.prog.Step(env) }

// PayloadWords implements sim.WordSized: a cluster wave carries a ruler ID
// and a hop distance.
func (clusterWave) PayloadWords() int64 { return 2 }

// memberRecs is the local-mode payload of the intra-cluster member flood: a
// batch of member records.
type memberRecs []memberRec

// PayloadWords implements sim.WordSized: each record is an ID and a ruler
// ID (the InW bit rides along for free).
func (r memberRecs) PayloadWords() int64 { return 2 * int64(len(r)) }
