package hybridapsp

import (
	"repro/internal/graph"
	"repro/internal/ncc"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/skeleton"
)

// Step-machine forms of the APSP algorithms (see sim.StepProgram): the
// Theorem 1.1 pipeline, the [3] baseline, and the pure-LOCAL baseline,
// composed from the skeleton/ncc/routing machines exactly as the goroutine
// forms compose the blocking calls. done receives the node's distance
// vector when the machine finishes. Each port is faithful — identical
// messages, randomness order, and round count — so the differential tests
// can hold the goroutine forms as oracles.

// NewComputeMachine is the step form of Compute (Theorem 1.1).
func NewComputeMachine(env *sim.Env, params Params, done func([]int64)) sim.StepProgram {
	sp := params.skeletonParams()
	n := env.N()
	h := sp.H(n)

	var skelM *skeleton.ComputeMachine
	var exploreM *skeleton.ExploreMachine
	var pub *publishMachine
	var sessM *routing.SessionMachine
	var routeM *routing.RouteMachine
	var floodM *skeleton.FloodVectorsMachine
	var skel skeleton.Result
	var local []int64
	var members []int
	var dS [][]int64
	var send []routing.Token
	var expect []routing.Label

	return sim.Sequence(
		// Phase 1: skeleton + the all-sources exploration for close pairs.
		func(env *sim.Env) sim.StepProgram {
			skelM = skeleton.NewComputeMachine(env, sp, false)
			return skelM
		},
		func(env *sim.Env) sim.StepProgram {
			skel = skelM.Res
			exploreM = skeleton.NewExploreMachine(env, true, h)
			return exploreM
		},
		// Phase 2: make E_S public knowledge, solve APSP on S locally.
		func(env *sim.Env) sim.StepProgram {
			local = exploreM.Near
			pub = newPublishMachine(env, skel, params.Dissemination)
			return pub
		},
		// Phase 3: token routing — every node sends d(v, s) to each s ∈ V_S.
		func(env *sim.Env) sim.StepProgram {
			members, dS = pub.Members, pub.DS
			rank := make(map[int]int, len(members))
			for i, id := range members {
				rank[id] = i
			}
			send = make([]routing.Token, 0, len(members))
			for i, s := range members {
				send = append(send, routing.Token{
					Label: routing.Label{S: env.ID(), R: s, I: 0},
					Value: bestViaSkeleton(skel, rank, dS, i),
				})
			}
			if skel.InSkeleton {
				expect = make([]routing.Label, 0, n)
				for v := 0; v < n; v++ {
					expect = append(expect, routing.Label{S: v, R: env.ID(), I: 0})
				}
			}
			sessM = routing.NewSessionMachine(env, true, skel.InSkeleton,
				len(members), n, 1.0, sp.SampleProb(n), params.Routing)
			return sessM
		},
		func(env *sim.Env) sim.StepProgram {
			routeM = routing.NewRouteMachine(sessM.Out, send, expect)
			return routeM
		},
		// Phase 4: skeleton nodes flood their distance vectors to radius h.
		func(env *sim.Env) sim.StepProgram {
			got := routeM.Out
			var mine []int64
			if skel.InSkeleton && len(got) > 0 {
				mine = make([]int64, n)
				for v := range mine {
					mine[v] = -1
				}
				for _, t := range got {
					mine[t.S] = t.Value
				}
			}
			floodM = skeleton.NewFloodVectorsMachine(env, mine, h)
			return floodM
		},
		// Final combine: local estimate vs routes through nearby skeletons.
		sim.Finish(func(env *sim.Env) {
			labels := &floodM.Known
			out := local
			for s, ds := range skel.Near {
				vec, ok := labels.Get(uint64(s))
				if !ok {
					continue
				}
				for v := 0; v < n; v++ {
					if dv := vec[v]; dv >= 0 {
						if cand := satAdd(ds, dv); cand < out[v] {
							out[v] = cand
						}
					}
				}
			}
			done(out)
		}),
	)
}

// NewBaselineComputeMachine is the step form of BaselineCompute (the
// O~(n^(2/3)) APSP of [3]).
func NewBaselineComputeMachine(env *sim.Env, params Params, done func([]int64)) sim.StepProgram {
	if params.X <= 0 || params.X >= 1 {
		params.X = 1.0 / 3.0
	}
	sp := params.skeletonParams()
	n := env.N()
	h := sp.H(n)

	var skelM *skeleton.ComputeMachine
	var exploreM *skeleton.ExploreMachine
	var pub *publishMachine
	var aggMax, aggSum *ncc.AggregateMachine
	var diss *ncc.DisseminateMachine
	var skel skeleton.Result
	var local []int64
	var mine []ncc.Token

	return sim.Sequence(
		func(env *sim.Env) sim.StepProgram {
			skelM = skeleton.NewComputeMachine(env, sp, false)
			return skelM
		},
		func(env *sim.Env) sim.StepProgram {
			skel = skelM.Res
			exploreM = skeleton.NewExploreMachine(env, true, h)
			return exploreM
		},
		func(env *sim.Env) sim.StepProgram {
			local = exploreM.Near
			pub = newPublishMachine(env, skel, params.Dissemination)
			return pub
		},
		// Broadcast every dd(v, s) label — the [3] bottleneck step.
		func(env *sim.Env) sim.StepProgram {
			mine = make([]ncc.Token, 0, len(skel.Near))
			for s, d := range skel.Near {
				mine = append(mine, ncc.Token{A: int64(s), B: int64(env.ID()), C: d})
			}
			aggMax = ncc.NewAggregateMachine(env, int64(len(mine)), ncc.AggMax)
			return aggMax
		},
		func(env *sim.Env) sim.StepProgram {
			aggSum = ncc.NewAggregateMachine(env, int64(len(mine)), ncc.AggSum)
			return aggSum
		},
		func(env *sim.Env) sim.StepProgram {
			diss = ncc.NewDisseminateMachine(env, mine, int(aggSum.Out), int(aggMax.Out), params.Dissemination)
			return diss
		},
		sim.Finish(func(env *sim.Env) {
			members, dS := pub.Members, pub.DS
			rank := make(map[int]int, len(members))
			for i, id := range members {
				rank[id] = i
			}
			// Labels: dd(v, s) as a dense (skeleton rank, node) matrix.
			lab := make([]int64, len(members)*n)
			for i := range lab {
				lab[i] = -1
			}
			for _, t := range diss.Out {
				if i, ok := rank[int(t.A)]; ok {
					lab[i*n+int(t.B)] = t.C
				}
			}
			out := local
			for s1, d1 := range skel.Near {
				i, ok := rank[s1]
				if !ok {
					continue
				}
				for j := range members {
					row := lab[j*n : (j+1)*n]
					base := satAdd(d1, dS[i][j])
					if base >= graph.Inf {
						continue
					}
					for v := 0; v < n; v++ {
						if dv := row[v]; dv >= 0 {
							if cand := satAdd(base, dv); cand < out[v] {
								out[v] = cand
							}
						}
					}
				}
			}
			done(out)
		}),
	)
}

// NewLocalComputeMachine is the step form of LocalCompute (the Θ(D)
// LOCAL-only baseline).
func NewLocalComputeMachine(env *sim.Env, rounds int, done func([]int64)) sim.StepProgram {
	var exploreM *skeleton.ExploreMachine
	return sim.Sequence(
		func(env *sim.Env) sim.StepProgram {
			exploreM = skeleton.NewExploreMachine(env, true, rounds)
			return exploreM
		},
		sim.Finish(func(env *sim.Env) { done(exploreM.Near) }),
	)
}

// publishMachine is the step form of publishSkeleton: aggregate the edge
// counts, disseminate E_S, and locally solve APSP on the skeleton graph.
type publishMachine struct {
	// Members is the sorted skeleton member list and DS its all-pairs
	// distance matrix (indices = member ranks); valid once Step returned
	// true.
	Members []int
	DS      [][]int64

	prog sim.StepProgram
}

func newPublishMachine(env *sim.Env, skel skeleton.Result, dp ncc.DisseminateParams) *publishMachine {
	pm := &publishMachine{}
	var mine []ncc.Token
	myEdges := 0
	if skel.InSkeleton {
		mine = append(mine, ncc.Token{A: int64(env.ID()), B: int64(env.ID()), C: 0}) // member marker
		for s, d := range skel.Near {
			if s > env.ID() {
				mine = append(mine, ncc.Token{A: int64(env.ID()), B: int64(s), C: d})
			}
		}
		myEdges = len(mine)
	}
	var aggMax, aggSum *ncc.AggregateMachine
	var diss *ncc.DisseminateMachine
	pm.prog = sim.Sequence(
		func(env *sim.Env) sim.StepProgram {
			aggMax = ncc.NewAggregateMachine(env, int64(myEdges), ncc.AggMax)
			return aggMax
		},
		func(env *sim.Env) sim.StepProgram {
			aggSum = ncc.NewAggregateMachine(env, int64(myEdges), ncc.AggSum)
			return aggSum
		},
		func(env *sim.Env) sim.StepProgram {
			diss = ncc.NewDisseminateMachine(env, mine, int(aggSum.Out), int(aggMax.Out), dp)
			return diss
		},
		sim.Finish(func(env *sim.Env) {
			pm.Members, pm.DS = skeletonAPSPFromTokens(diss.Out)
		}),
	)
	return pm
}

// Step implements sim.StepProgram.
func (pm *publishMachine) Step(env *sim.Env) bool { return pm.prog.Step(env) }

// Pipeline returns the Theorem 1.1 exact APSP as a sim.Pipeline; the
// per-node result is the node's dense distance vector.
func Pipeline(params Params) sim.Pipeline[[]int64] {
	return sim.Pipeline[[]int64]{
		Run: func(env *sim.Env) []int64 {
			return Compute(env, params)
		},
		Machine: func(env *sim.Env, done func([]int64)) sim.StepProgram {
			return NewComputeMachine(env, params, done)
		},
	}
}

// BaselinePipeline returns the O~(n^(2/3)) APSP of [3] as a sim.Pipeline.
func BaselinePipeline(params Params) sim.Pipeline[[]int64] {
	return sim.Pipeline[[]int64]{
		Run: func(env *sim.Env) []int64 {
			return BaselineCompute(env, params)
		},
		Machine: func(env *sim.Env, done func([]int64)) sim.StepProgram {
			return NewBaselineComputeMachine(env, params, done)
		},
	}
}

// LocalPipeline returns the Θ(D) pure-LOCAL flooding baseline as a
// sim.Pipeline.
func LocalPipeline(rounds int) sim.Pipeline[[]int64] {
	return sim.Pipeline[[]int64]{
		Run: func(env *sim.Env) []int64 {
			return LocalCompute(env, rounds)
		},
		Machine: func(env *sim.Env, done func([]int64)) sim.StepProgram {
			return NewLocalComputeMachine(env, rounds, done)
		},
	}
}
