package hybridapsp

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

var stepEngines = []sim.Engine{sim.EngineLegacy, sim.EngineSharded, sim.EngineStep}

// diffAPSP runs the goroutine form as oracle and the step form on every
// engine, requiring byte-identical distance vectors and Metrics.
func diffAPSP(t *testing.T, g *graph.Graph, seed int64,
	oracle func(*sim.Env) []int64,
	machine func(*sim.Env, func([]int64)) sim.StepProgram) {
	t.Helper()
	want := make([][]int64, g.N())
	wantM, err := sim.Run(g, sim.Config{Seed: seed, Engine: sim.EngineLegacy}, func(env *sim.Env) {
		want[env.ID()] = oracle(env)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range stepEngines {
		got := make([][]int64, g.N())
		gotM, err := sim.RunStep(g, sim.Config{Seed: seed, Engine: eng}, func(env *sim.Env) sim.StepProgram {
			id := env.ID()
			return machine(env, func(out []int64) { got[id] = out })
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("engine=%s: distance vectors differ", eng)
		}
		if wantM != gotM {
			t.Errorf("engine=%s: metrics differ: %+v vs %+v", eng, wantM, gotM)
		}
	}
}

// TestComputeMachineMatches proves the Theorem 1.1 step machine
// byte-identical to Compute on every engine (and exact).
func TestComputeMachineMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := graph.WithRandomWeights(graph.Grid(6, 6), 4, rng)
	diffAPSP(t, g, 23,
		func(env *sim.Env) []int64 { return Compute(env, Params{}) },
		func(env *sim.Env, done func([]int64)) sim.StepProgram {
			return NewComputeMachine(env, Params{}, done)
		})
}

// TestBaselineComputeMachineMatches proves the [3] baseline step machine
// byte-identical to BaselineCompute on every engine.
func TestBaselineComputeMachineMatches(t *testing.T) {
	g := graph.Path(30)
	diffAPSP(t, g, 29,
		func(env *sim.Env) []int64 { return BaselineCompute(env, Params{}) },
		func(env *sim.Env, done func([]int64)) sim.StepProgram {
			return NewBaselineComputeMachine(env, Params{}, done)
		})
}

// TestLocalComputeMachineMatches proves the LOCAL baseline step machine
// byte-identical to LocalCompute on every engine.
func TestLocalComputeMachineMatches(t *testing.T) {
	g := graph.Grid(5, 5)
	diffAPSP(t, g, 31,
		func(env *sim.Env) []int64 { return LocalCompute(env, 10) },
		func(env *sim.Env, done func([]int64)) sim.StepProgram {
			return NewLocalComputeMachine(env, 10, done)
		})
}
