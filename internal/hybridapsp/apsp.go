// Package hybridapsp implements the paper's headline result, Theorem 1.1:
// exact all-pairs shortest paths in the HYBRID model in O~(sqrt(n)) rounds,
// together with the O~(n^(2/3)) APSP of Augustine et al. [3] that it
// improves on, and a pure-LOCAL baseline (Θ(D) rounds) for the model
// comparison experiment.
//
// Theorem 1.1's algorithm (§3):
//
//  1. Build a skeleton S with sampling probability 1/sqrt(n)
//     (x = sqrt(n)), learning dd(v, s) to nearby skeleton nodes, and run a
//     second h-round exploration with all nodes as sources so close pairs
//     are solved exactly.
//  2. Make E_S public knowledge by token dissemination (O~(n/x) = O~(sqrt n)
//     rounds); every node locally computes APSP on S.
//  3. Every node v now knows d(v, s) for ALL skeleton nodes s (min over
//     nearby skeletons s1 of dd(v,s1) + d_S(s1,s)). The reverse direction
//     is the bottleneck [3] solved by broadcasting Θ(n²/x) labels; the
//     paper's fix is one token routing instance: every v sends one token
//     per skeleton node s carrying d(v, s) (senders V, receivers V_S,
//     kS = |V_S|, kR = n — Theorem 2.2 gives O~(n/x + sqrt(n)) rounds).
//  4. Each skeleton node floods its n distance labels to its h-hop
//     neighborhood; each node v computes
//     d(v, u) = min(dd_local(v, u), min_{s near v} dd(v,s) + d(s,u)).
//
// Total: O~(x + n/x + sqrt(n)) = O~(sqrt(n)) at x = sqrt(n).
package hybridapsp

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/ncc"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/skeleton"
)

// Params tunes the APSP run. The zero value reproduces Theorem 1.1.
type Params struct {
	// X is the skeleton exponent: sampling probability n^(X-1). Theorem 1.1
	// uses X = 0.5; the [3] baseline uses X = 1/3. Zero means 0.5.
	X float64
	// HFactor forwards to skeleton.Params.
	HFactor float64
	// Routing tunes the token routing protocol.
	Routing routing.Params
	// Dissemination tunes the token dissemination runs.
	Dissemination ncc.DisseminateParams
	// SkeletonCache, if non-nil, reuses skeleton construction results
	// across runs with matching parameters and membership draws (see
	// skeleton.ResultCache); the facade threads the Network's cache here.
	SkeletonCache *skeleton.ResultCache
}

func (p Params) skeletonParams() skeleton.Params {
	x := p.X
	if x <= 0 || x >= 1 {
		x = 0.5
	}
	return skeleton.Params{X: x, HFactor: p.HFactor, Cache: p.SkeletonCache}
}

// Compute runs the Theorem 1.1 algorithm collectively and returns this
// node's exact distances to every node (graph.Inf for unreachable).
func Compute(env *sim.Env, params Params) []int64 {
	sp := params.skeletonParams()
	n := env.N()
	h := sp.H(n)

	// Phase 1: skeleton + the all-sources exploration for close pairs.
	skel := skeleton.Compute(env, sp, false)
	local, _ := skeleton.LimitedExplore(env, true, h)

	// Phase 2: make E_S public knowledge, solve APSP on S locally.
	members, dS := publishSkeleton(env, skel, params.Dissemination)
	rank := make(map[int]int, len(members))
	for i, id := range members {
		rank[id] = i
	}

	// d(v, s) for every skeleton node s, and the connector realizing it.
	distToSkel := make([]int64, len(members))
	for i := range members {
		distToSkel[i] = bestViaSkeleton(skel, rank, dS, i)
	}

	// Phase 3: token routing — every node sends d(v, s) to each s ∈ V_S.
	send := make([]routing.Token, 0, len(members))
	for i, s := range members {
		send = append(send, routing.Token{
			Label: routing.Label{S: env.ID(), R: s, I: 0},
			Value: distToSkel[i],
		})
	}
	var expect []routing.Label
	if skel.InSkeleton {
		expect = make([]routing.Label, 0, n)
		for v := 0; v < n; v++ {
			expect = append(expect, routing.Label{S: v, R: env.ID(), I: 0})
		}
	}
	session := routing.NewSession(env, true, skel.InSkeleton,
		len(members), n, 1.0, sp.SampleProb(n), params.Routing)
	got := session.Route(send, expect)

	// Phase 4: skeleton nodes flood their distance vectors to radius h.
	var mine []int64
	if skel.InSkeleton && len(got) > 0 {
		mine = make([]int64, n)
		for v := range mine {
			mine[v] = -1
		}
		for _, t := range got {
			mine[t.S] = t.Value
		}
	}
	labels := skeleton.FloodVectors(env, mine, h)

	// Final combine: local estimate vs routes through nearby skeletons. The
	// dense exploration vector already holds Inf for unreached nodes, so it
	// doubles as the output accumulator.
	out := local
	for s, ds := range skel.Near {
		vec, ok := labels.Get(uint64(s))
		if !ok {
			continue
		}
		for v := 0; v < n; v++ {
			if dv := vec[v]; dv >= 0 {
				if cand := satAdd(ds, dv); cand < out[v] {
					out[v] = cand
				}
			}
		}
	}
	return out
}

// publishSkeleton makes V_S and E_S public knowledge (token dissemination)
// and returns the sorted member list plus the all-pairs distance matrix of
// the skeleton graph, computed locally by every node (indices = member
// ranks).
func publishSkeleton(env *sim.Env, skel skeleton.Result, dp ncc.DisseminateParams) ([]int, [][]int64) {
	// Edge tokens: the smaller-ID endpoint owns the edge so the published
	// estimate is consistent everywhere (the two endpoints' sandwich
	// estimates may differ; either is valid, one must be chosen). A
	// self-loop marker announces membership for isolated skeleton nodes.
	var mine []ncc.Token
	myEdges := 0
	if skel.InSkeleton {
		mine = append(mine, ncc.Token{A: int64(env.ID()), B: int64(env.ID()), C: 0}) // member marker
		for s, d := range skel.Near {
			if s > env.ID() {
				mine = append(mine, ncc.Token{A: int64(env.ID()), B: int64(s), C: d})
			}
		}
		myEdges = len(mine)
	}
	maxEdges := int(ncc.Aggregate(env, int64(myEdges), ncc.AggMax))
	totalEdges := int(ncc.Aggregate(env, int64(myEdges), ncc.AggSum))
	all := ncc.Disseminate(env, mine, totalEdges, maxEdges, dp)
	return skeletonAPSPFromTokens(all)
}

// skeletonAPSPFromTokens rebuilds the skeleton graph from the disseminated
// edge tokens and solves APSP on it locally — the local tail of
// publishSkeleton, shared with the step form (publishMachine).
func skeletonAPSPFromTokens(all []ncc.Token) ([]int, [][]int64) {
	memberSet := map[int]bool{}
	for _, t := range all {
		memberSet[int(t.A)] = true
		memberSet[int(t.B)] = true
	}
	members := make([]int, 0, len(memberSet))
	for id := range memberSet {
		members = append(members, id)
	}
	sort.Ints(members)
	rank := make(map[int]int, len(members))
	for i, id := range members {
		rank[id] = i
	}

	s := graph.New(len(members))
	for _, t := range all {
		u, v := rank[int(t.A)], rank[int(t.B)]
		if u != v && !s.HasEdge(u, v) {
			s.MustAddEdge(u, v, t.C)
		}
	}
	return members, graph.APSP(s)
}

// bestViaSkeleton returns min over nearby skeleton s1 of dd(v,s1)+d_S(s1,s).
func bestViaSkeleton(skel skeleton.Result, rank map[int]int, dS [][]int64, target int) int64 {
	best := graph.Inf
	for s1, d1 := range skel.Near {
		i, ok := rank[s1]
		if !ok {
			continue
		}
		if cand := satAdd(d1, dS[i][target]); cand < best {
			best = cand
		}
	}
	return best
}

func satAdd(a, b int64) int64 {
	if a >= graph.Inf || b >= graph.Inf {
		return graph.Inf
	}
	return a + b
}

// BaselineCompute runs the O~(n^(2/3)) APSP of [3] (the algorithm
// Theorem 1.1 improves on): identical skeleton machinery at x = n^(2/3)
// (sampling exponent 1/3), but instead of token routing, ALL limited
// distance labels dd(v, s) for (s, v) ∈ V_S × V are broadcast with token
// dissemination — Θ(n²/x) tokens, hence Θ~(n/sqrt(x)) rounds, optimized at
// x = n^(2/3).
func BaselineCompute(env *sim.Env, params Params) []int64 {
	if params.X <= 0 || params.X >= 1 {
		params.X = 1.0 / 3.0
	}
	sp := params.skeletonParams()
	n := env.N()
	h := sp.H(n)

	skel := skeleton.Compute(env, sp, false)
	local, _ := skeleton.LimitedExplore(env, true, h)
	members, dS := publishSkeleton(env, skel, params.Dissemination)
	rank := make(map[int]int, len(members))
	for i, id := range members {
		rank[id] = i
	}

	// Broadcast every dd(v, s) label — the [3] bottleneck step.
	mine := make([]ncc.Token, 0, len(skel.Near))
	for s, d := range skel.Near {
		mine = append(mine, ncc.Token{A: int64(s), B: int64(env.ID()), C: d})
	}
	myCount := len(mine)
	maxCount := int(ncc.Aggregate(env, int64(myCount), ncc.AggMax))
	totalCount := int(ncc.Aggregate(env, int64(myCount), ncc.AggSum))
	all := ncc.Disseminate(env, mine, totalCount, maxCount, params.Dissemination)

	// Labels: dd(v, s) as a dense (skeleton rank, node) matrix, -1 = absent.
	lab := make([]int64, len(members)*n)
	for i := range lab {
		lab[i] = -1
	}
	for _, t := range all {
		if i, ok := rank[int(t.A)]; ok {
			lab[i*n+int(t.B)] = t.C
		}
	}

	// min over s1 near me, s2 near v of dd(me,s1)+d_S(s1,s2)+dd(v,s2); the
	// dense exploration vector doubles as the accumulator.
	out := local
	for s1, d1 := range skel.Near {
		i, ok := rank[s1]
		if !ok {
			continue
		}
		for j := range members {
			row := lab[j*n : (j+1)*n]
			base := satAdd(d1, dS[i][j])
			if base >= graph.Inf {
				continue
			}
			for v := 0; v < n; v++ {
				if dv := row[v]; dv >= 0 {
					if cand := satAdd(base, dv); cand < out[v] {
						out[v] = cand
					}
				}
			}
		}
	}
	return out
}

// LocalCompute is the pure-LOCAL baseline: rounds of whole-graph flooding.
// In the LOCAL model Θ(D) rounds are necessary and sufficient for APSP
// (paper §1); rounds must be at least the hop diameter for exact results.
func LocalCompute(env *sim.Env, rounds int) []int64 {
	local, _ := skeleton.LimitedExplore(env, true, rounds)
	return local // dense, with graph.Inf marking unreached nodes
}
