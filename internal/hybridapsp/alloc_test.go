package hybridapsp

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/skeleton"
)

// TestSteadyStateRoundZeroAlloc is the memory-discipline gate of the round
// loop: once the delta buffers, staging buckets, and inboxes of a grid APSP
// run are warm, advancing the step engine by one full round must allocate
// nothing. Every per-round allocation the flatmap migration removed — fresh
// dedup maps, fresh delta slices, value-interface payload boxing — would
// reappear here as a nonzero count, so the test pins the whole chain:
// skeleton explore scratch, engine delivery, and payload staging.
//
// The measured window sits inside the pipeline's all-sources exploration
// (the dominant phase: h rounds of multi-source Bellman-Ford), past the
// wave's peak so every buffer has seen its maximum occupancy. On the
// unweighted 32x32 grid a node's per-round update count is the number of
// sources at exactly the current hop distance, which peaks no later than
// hop 31 (half the diameter); measuring from hop ~40 onward therefore
// touches only warm capacity.
func TestSteadyStateRoundZeroAlloc(t *testing.T) {
	g := graph.Grid(32, 32)
	n := g.N()
	h := (skeleton.Params{}).H(n)

	st, err := sim.NewStepper(g, sim.Config{Engine: sim.EngineStep, Shards: 1, Seed: 7},
		func(env *sim.Env) sim.StepProgram {
			return NewComputeMachine(env, Params{}, func([]int64) {})
		})
	if err != nil {
		t.Fatal(err)
	}

	// Warm up through phase 1 (skeleton explore, h rounds) and 40 hops into
	// the all-sources exploration.
	if st.Advance(h + 41) {
		t.Fatal("run finished during warmup; measurement window is gone")
	}

	// AllocsPerRun runs the body once extra as its own warmup; 20 measured
	// rounds keeps the window inside the exploration phase (h rounds long).
	allocs := testing.AllocsPerRun(20, func() {
		st.Advance(1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state APSP round allocates: got %v allocs/round, want 0", allocs)
	}

	if _, err := st.Finish(); err != nil {
		t.Fatal(err)
	}
}
