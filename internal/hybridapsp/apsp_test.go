package hybridapsp

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// runAPSP executes an APSP variant on g and checks exactness everywhere.
func runAPSP(t *testing.T, g *graph.Graph, f func(env *sim.Env) []int64, seed int64) sim.Metrics {
	t.Helper()
	n := g.N()
	out := make([][]int64, n)
	m, err := sim.Run(g, sim.Config{Seed: seed}, func(env *sim.Env) {
		out[env.ID()] = f(env)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.APSP(g)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if out[u][v] != want[u][v] {
				t.Fatalf("d(%d,%d) = %d, want %d", u, v, out[u][v], want[u][v])
			}
		}
	}
	return m
}

func TestTheorem11Exact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid 8x8", graph.Grid(8, 8)},
		{"grid weighted", graph.WithRandomWeights(graph.Grid(7, 9), 9, rng)},
		{"sparse 100", graph.SparseConnected(100, 1.5, rng)},
		{"sparse weighted 90", graph.WithRandomWeights(graph.SparseConnected(90, 1.2, rng), 15, rng)},
		{"cycle 64", graph.Cycle(64)},
		{"path 50", graph.Path(50)},
		{"barbell", graph.Barbell(20, 14)},
		{"caterpillar", graph.Caterpillar(12, 3)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			runAPSP(t, tt.g, func(env *sim.Env) []int64 {
				return Compute(env, Params{})
			}, 7)
		})
	}
}

func TestBaselineExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid 8x8", graph.Grid(8, 8)},
		{"sparse weighted", graph.WithRandomWeights(graph.SparseConnected(80, 1.5, rng), 10, rng)},
		{"cycle 48", graph.Cycle(48)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			runAPSP(t, tt.g, func(env *sim.Env) []int64 {
				return BaselineCompute(env, Params{})
			}, 11)
		})
	}
}

func TestLocalBaselineExact(t *testing.T) {
	g := graph.Grid(6, 6)
	d := int(graph.HopDiameter(g))
	runAPSP(t, g, func(env *sim.Env) []int64 {
		return LocalCompute(env, d)
	}, 13)
}

func TestLocalBaselineNeedsDiameterRounds(t *testing.T) {
	// With fewer than D rounds the pure-LOCAL baseline cannot be complete —
	// the Θ(D) lower bound of §1 in action.
	g := graph.Path(30)
	n := g.N()
	out := make([][]int64, n)
	_, err := sim.Run(g, sim.Config{Seed: 17}, func(env *sim.Env) {
		out[env.ID()] = LocalCompute(env, 5)
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0][n-1] != graph.Inf {
		t.Fatal("pure-LOCAL run with 5 rounds resolved a 29-hop pair; impossible")
	}
}

func TestTheorem11SqrtScaling(t *testing.T) {
	// Theorem 1.1 claims O~(sqrt(n)) rounds. At laptop-scale n the polylog
	// factors dominate constants (EXPERIMENTS.md reports the absolute
	// numbers), so the meaningful assertions are (a) an absolute O~ bound
	// with a generous constant and (b) sqrt-like growth: quadrupling n must
	// far less than quadruple the rounds, while the Θ(D) LOCAL baseline
	// quadruples exactly on paths.
	if testing.Short() {
		t.Skip("scaling check skipped in -short mode")
	}
	rounds := map[int]int{}
	for _, n := range []int{96, 384} {
		g := graph.Path(n)
		m := runAPSP(t, g, func(env *sim.Env) []int64 {
			return Compute(env, Params{})
		}, 19)
		rounds[n] = m.Rounds
		logN := float64(sim.Log2Ceil(n))
		bound := 8 * sqrtF(n) * logN * logN
		if float64(m.Rounds) > bound {
			t.Fatalf("n=%d took %d rounds, above the O~(sqrt n) envelope %.0f", n, m.Rounds, bound)
		}
	}
	ratio := float64(rounds[384]) / float64(rounds[96])
	if ratio > 3.0 {
		t.Fatalf("4x nodes grew rounds by %.2fx (%d -> %d); want ~2x (sqrt scaling)",
			ratio, rounds[96], rounds[384])
	}
}

func sqrtF(n int) float64 {
	r := 1.0
	for i := 0; i < 30; i++ {
		r = (r + float64(n)/r) / 2
	}
	return r
}

func TestDeterministicAPSP(t *testing.T) {
	g := graph.Grid(6, 6)
	m1 := runAPSP(t, g, func(env *sim.Env) []int64 { return Compute(env, Params{}) }, 23)
	m2 := runAPSP(t, g, func(env *sim.Env) []int64 { return Compute(env, Params{}) }, 23)
	if m1.Rounds != m2.Rounds || m1.GlobalMsgs != m2.GlobalMsgs {
		t.Fatalf("identical runs diverged: %+v vs %+v", m1, m2)
	}
}

func TestRecvLoadLemmaD2(t *testing.T) {
	g := graph.Grid(9, 9)
	m := runAPSP(t, g, func(env *sim.Env) []int64 { return Compute(env, Params{}) }, 29)
	logN := sim.Log2Ceil(g.N())
	if m.MaxGlobalRecv > 10*logN {
		t.Fatalf("max global receive load %d exceeds 10 log n = %d", m.MaxGlobalRecv, 10*logN)
	}
}
